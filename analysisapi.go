package multigossip

import (
	"fmt"
	"math/rand"
	"time"

	"multigossip/internal/async"
	"multigossip/internal/baseline"
	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/pipeline"
	"multigossip/internal/schedule"
)

// KPortPlan is a gossip schedule under the k-port extension: each
// processor may receive up to Ports messages per round (the paper's model
// is Ports = 1).
type KPortPlan struct {
	network *Network
	sched   *schedule.Schedule
	ports   int
}

// PlanKPortGossip builds a greedy gossip schedule in which every processor
// may receive up to ports messages per round, relaxing the model's
// one-receive rule; the receive lower bound becomes ceil((n-1)/ports).
// With ports = 1 prefer PlanGossip, whose ConcurrentUpDown schedule is
// provably n + r.
func (nw *Network) PlanKPortGossip(ports int) (*KPortPlan, error) {
	s, err := baseline.KPortGossip(nw.g, ports, 0)
	if err != nil {
		return nil, err
	}
	return &KPortPlan{network: nw, sched: s, ports: ports}, nil
}

// Rounds returns the schedule's total communication time.
func (p *KPortPlan) Rounds() int { return p.sched.Time() }

// Ports returns the receive capacity the plan was built for.
func (p *KPortPlan) Ports() int { return p.ports }

// Verify re-validates the schedule under the k-port model and checks
// completion.
func (p *KPortPlan) Verify() error {
	res, err := schedule.Run(p.network.g, p.sched, schedule.Options{RecvPorts: p.ports})
	if err != nil {
		return err
	}
	for v, h := range res.Holds {
		if !h.Full() {
			return fmt.Errorf("multigossip: processor %d incomplete", v)
		}
	}
	return nil
}

// SweepStats reports how much of an n-root BFS sweep the parallel pruned
// engine actually ran. Roots is the number of candidate roots (= number of
// processors); Seeds the sequential double-sweep traversals that bootstrap
// the pruning bounds; Completed the traversals run to completion (seeds
// included); Pruned the roots skipped outright by an eccentricity lower
// bound; ShortCircuited the traversals abandoned mid-flight once their
// frontier depth exceeded the best tree height already found; Workers the
// size of the worker pool. Completed + Pruned + ShortCircuited == Roots
// (up to seed-phase double-visits), so Pruned + ShortCircuited over Roots
// is the fraction of the paper's O(nm) construction the engine avoided.
type SweepStats struct {
	Roots          int
	Seeds          int
	Completed      int
	Pruned         int
	ShortCircuited int
	Workers        int
	// Elapsed is the wall-clock duration of the sweep.
	Elapsed time.Duration
}

func sweepStatsFrom(s graph.SweepStats) SweepStats {
	return SweepStats{
		Roots:          s.Roots,
		Seeds:          s.Seeds,
		Completed:      s.Completed,
		Pruned:         s.Pruned,
		ShortCircuited: s.ShortCircuited,
		Workers:        s.Workers,
		Elapsed:        s.Elapsed,
	}
}

// TreeSweepStats reports the sweep-engine counters for this plan's
// Section 3.1 minimum-depth spanning tree construction — the dominant cost
// of PlanGossip.
func (p *Plan) TreeSweepStats() SweepStats { return sweepStatsFrom(p.sweep) }

// MetricSweepStats reports the counters of the cached full metric sweep
// behind Radius/Diameter/Center/Eccentricities, computing it first if no
// metric has been asked for yet. The network must be connected.
func (nw *Network) MetricSweepStats() SweepStats {
	return sweepStatsFrom(nw.sweepMetrics().Stats)
}

// Analysis tooling on plans: what the schedule costs on real hardware, how
// fragile its optimality is, and how fast it can be repeated.

// Criticality reports the plan's single-drop fragility: the fraction of
// point-to-point deliveries whose loss would leave gossiping incomplete.
// For ConcurrentUpDown plans this is 1.0 — meeting the n + r bound means
// every delivery is load-bearing — while Simple plans retain slack from
// their redundant deliveries. O(deliveries²); intended for small and
// medium networks.
func (p *Plan) Criticality() (critical, deliveries int, err error) {
	if !p.Schedulable() {
		return 0, 0, p.errNoSchedule()
	}
	rep, err := fault.Criticality(p.network, p.schedule())
	if err != nil {
		return 0, 0, err
	}
	return rep.Critical, rep.Deliveries, nil
}

// CoverageUnderLoss estimates the mean fraction of (processor, message)
// pairs still delivered when each transmission is independently lost with
// probability loss, with full fault propagation (a processor that never
// received a message silently skips relaying it).
func (p *Plan) CoverageUnderLoss(loss float64, trials int, seed int64) (float64, error) {
	if !p.Schedulable() {
		return 0, p.errNoSchedule()
	}
	return fault.RandomLoss(p.network, p.schedule(), loss, trials, rand.New(rand.NewSource(seed)))
}

// EstimateMakespan prices the plan on barrier-synchronised hardware: each
// round costs the slowest of its transmissions, drawn uniformly from
// [base, base+jitter] time units, plus the barrier overhead; trials runs
// are averaged. Round counts are what the paper optimises; this converts
// them to wall-clock under a simple latency model.
func (p *Plan) EstimateMakespan(base, jitter, barrier float64, trials int, seed int64) (float64, error) {
	if !p.Schedulable() {
		return 0, p.errNoSchedule()
	}
	res, err := async.Makespan(p.schedule(), async.UniformJitter{Base: base, Jitter: jitter},
		barrier, trials, rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// MinRepeatPeriod returns the smallest round offset at which back-to-back
// executions of the plan compose validly — the steady-state period of
// repeated gossiping. It always lies between n-1 (receive capacity) and
// the plan's latency.
func (p *Plan) MinRepeatPeriod() (int, error) {
	if !p.Schedulable() {
		return 0, p.errNoSchedule()
	}
	s := p.schedule()
	period, err := pipeline.MinPeriod(p.network, s, 3, s.Time()+1)
	if err != nil {
		return 0, err
	}
	if period > s.Time() {
		return 0, fmt.Errorf("multigossip: no feasible repeat period up to the latency (internal error)")
	}
	return period, nil
}
