package multigossip

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	nw := Ring(8)
	plan, err := nw.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 + nw.Radius(); plan.Rounds() != want {
		t.Fatalf("Rounds = %d, want %d", plan.Rounds(), want)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.Radius() != 4 {
		t.Fatalf("Radius = %d, want 4", plan.Radius())
	}
}

func TestNetworkBuilder(t *testing.T) {
	nw := NewNetwork(4)
	if nw.Connected() {
		t.Fatal("edgeless network reported connected")
	}
	nw.AddLink(0, 1)
	nw.AddLink(1, 2)
	nw.AddLink(2, 3)
	nw.AddLink(0, 1) // duplicate
	if !nw.HasLink(1, 0) || nw.Links() != 3 || nw.Processors() != 4 {
		t.Fatalf("builder state wrong: links=%d processors=%d", nw.Links(), nw.Processors())
	}
	if !nw.Connected() || nw.Diameter() != 3 || nw.Radius() != 2 {
		t.Fatalf("metrics wrong: diameter=%d radius=%d", nw.Diameter(), nw.Radius())
	}
	if nw.LowerBound() != 3 {
		t.Fatalf("LowerBound = %d, want 3", nw.LowerBound())
	}
	if !strings.Contains(nw.DOT("N"), "0 -- 1;") {
		t.Fatal("DOT output missing edge")
	}
}

func TestPlanGossipDisconnected(t *testing.T) {
	if _, err := NewNetwork(3).PlanGossip(); err == nil {
		t.Fatal("accepted disconnected network")
	}
}

func TestPlanGossipUnknownAlgorithm(t *testing.T) {
	if _, err := Ring(4).PlanGossip(WithAlgorithm(Algorithm(99))); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestSimpleAlgorithmOption(t *testing.T) {
	nw := Line(9)
	plan, err := nw.PlanGossip(WithAlgorithm(Simple))
	if err != nil {
		t.Fatal(err)
	}
	n, r := 9, nw.Radius()
	if want := 2*n + r - 3; plan.Rounds() != want {
		t.Fatalf("Simple rounds = %d, want %d", plan.Rounds(), want)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanAccessors(t *testing.T) {
	plan, err := Fig4Network().PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() != 19 {
		t.Fatalf("Fig4 rounds = %d, want 19", plan.Rounds())
	}
	round0 := plan.Round(0)
	if len(round0) == 0 {
		t.Fatal("round 0 empty")
	}
	for _, tx := range round0 {
		if len(tx.To) == 0 {
			t.Fatal("transmission without destinations")
		}
	}
	tt := plan.TimetableOf(0)
	if !strings.Contains(tt, "Send to Children") {
		t.Fatalf("timetable malformed:\n%s", tt)
	}
	tree := plan.TreeString()
	if !strings.Contains(tree, "[msg 0, level 0]") {
		t.Fatalf("tree rendering malformed:\n%s", tree)
	}
	if !strings.Contains(plan.Stats(), "time=19") {
		t.Fatalf("stats malformed: %s", plan.Stats())
	}
}

func TestExecuteDistributed(t *testing.T) {
	for _, algo := range []Algorithm{ConcurrentUpDown, Simple} {
		plan, err := Mesh(4, 4).PlanGossip(WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		rounds, err := plan.ExecuteDistributed()
		if err != nil {
			t.Fatalf("algo %d: %v", int(algo), err)
		}
		if rounds != plan.Rounds() {
			t.Fatalf("algo %d: distributed %d rounds, offline %d", int(algo), rounds, plan.Rounds())
		}
	}
}

func TestPlanBroadcast(t *testing.T) {
	nw := SensorField(rand.New(rand.NewSource(8)), 50, 0.2)
	bp, err := nw.PlanBroadcast(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Verify(); err != nil {
		t.Fatal(err)
	}
	if bp.Rounds() > nw.Diameter() {
		t.Fatalf("broadcast rounds %d exceed diameter %d", bp.Rounds(), nw.Diameter())
	}
}

func TestPlanWeightedGossip(t *testing.T) {
	nw := Star(6)
	wp, err := nw.PlanWeightedGossip([]int{2, 1, 3, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if wp.TotalMessages() != 10 {
		t.Fatalf("TotalMessages = %d, want 10", wp.TotalMessages())
	}
	if err := wp.Verify(); err != nil {
		t.Fatal(err)
	}
	if wp.MessageOwner(0) != 0 || wp.MessageOwner(9) == 0 {
		t.Fatal("message ownership wrong")
	}
	if wp.Rounds() > wp.ExpandedRounds() {
		t.Fatal("contraction longer than expansion")
	}
	if len(wp.Round(0)) == 0 {
		t.Fatal("weighted round 0 empty")
	}
	if _, err := nw.PlanWeightedGossip([]int{1}); err == nil {
		t.Fatal("accepted wrong counts length")
	}
}

func TestTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cases := []struct {
		name string
		nw   *Network
		n    int
	}{
		{"Line", Line(5), 5},
		{"Ring", Ring(6), 6},
		{"Star", Star(7), 7},
		{"FullyConnected", FullyConnected(5), 5},
		{"Mesh", Mesh(3, 4), 12},
		{"Torus", Torus(3, 3), 9},
		{"Hypercube", Hypercube(4), 16},
		{"Petersen", PetersenGraph(), 10},
		{"Fig4", Fig4Network(), 16},
		{"Random", RandomNetwork(rng, 20, 0.2), 20},
		{"Sensor", SensorField(rng, 25, 0.25), 25},
		{"RandomTree", RandomTreeNetwork(rng, 15), 15},
	}
	for _, c := range cases {
		if c.nw.Processors() != c.n {
			t.Errorf("%s: processors = %d, want %d", c.name, c.nw.Processors(), c.n)
		}
		if !c.nw.Connected() {
			t.Errorf("%s: not connected", c.name)
		}
		plan, err := c.nw.PlanGossip()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if err := plan.Verify(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if want := c.n + c.nw.Radius(); plan.Rounds() != want {
			t.Errorf("%s: rounds %d, want %d", c.name, plan.Rounds(), want)
		}
	}
}

func TestPlanOptimalLine(t *testing.T) {
	for _, m := range []int{1, 5, 12} {
		plan, err := PlanOptimalLine(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if plan.Rounds() != 3*m {
			t.Fatalf("m=%d: rounds %d, want %d", m, plan.Rounds(), 3*m)
		}
		// One round better than the uniform algorithm.
		uniform, err := Line(2*m + 1).PlanGossip()
		if err != nil {
			t.Fatal(err)
		}
		if uniform.Rounds()-plan.Rounds() != 1 {
			t.Fatalf("m=%d: gap %d, want 1", m, uniform.Rounds()-plan.Rounds())
		}
	}
	if _, err := PlanOptimalLine(0); err == nil {
		t.Fatal("accepted m = 0")
	}
}

func TestSpanningTree(t *testing.T) {
	parents, err := Fig4Network().SpanningTree()
	if err != nil {
		t.Fatal(err)
	}
	if parents[0] != -1 || parents[4] != 0 || parents[9] != 8 {
		t.Fatalf("spanning tree parents wrong: %v", parents)
	}
	if _, err := NewNetwork(2).SpanningTree(); err == nil {
		t.Fatal("accepted disconnected network")
	}
}

func TestGossipStreamSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	nw := RandomTreeNetwork(rng, 400)
	exact, err := nw.GossipStreamSummary(false)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := nw.GossipStreamSummary(true)
	if err != nil {
		t.Fatal(err)
	}
	// On a tree network the approximate construction is exact too.
	if exact.TreeHeight != approx.TreeHeight || exact.TreeHeight != nw.Radius() {
		t.Fatalf("heights exact=%d approx=%d radius=%d", exact.TreeHeight, approx.TreeHeight, nw.Radius())
	}
	if exact.Rounds != 400+exact.TreeHeight {
		t.Fatalf("rounds %d, want n + r", exact.Rounds)
	}
	if exact.Deliveries != 400*399 {
		t.Fatalf("deliveries %d", exact.Deliveries)
	}
	// On a tree network the double-sweep certificate applies, so the
	// approximate summary also proves its tree exact.
	if !exact.ExactTree || !approx.ExactTree {
		t.Fatalf("ExactTree flags wrong: exact=%v approx=%v", exact.ExactTree, approx.ExactTree)
	}
	if _, err := NewNetwork(2).GossipStreamSummary(true); err == nil {
		t.Fatal("accepted disconnected network")
	}
}

// TestStreamSummaryExactTreeAgainstMetrics: with the metric sweep cached,
// ExactTree must equal the actual height-vs-radius comparison — an approx
// tree that happens to be exact reports true, one that is not reports
// false — on a spread of non-tree networks.
func TestStreamSummaryExactTreeAgainstMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nets := []*Network{
		Ring(31),
		Mesh(5, 7),
		PetersenGraph(),
		RandomNetwork(rng, 60, 0.08),
		SensorField(rng, 60, 0.35),
	}
	for i, nw := range nets {
		radius := nw.Radius() // caches the metric sweep
		sum, err := nw.GossipStreamSummary(true)
		if err != nil {
			t.Fatal(err)
		}
		if want := sum.TreeHeight == radius; sum.ExactTree != want {
			t.Fatalf("network %d: ExactTree=%v, but height=%d radius=%d",
				i, sum.ExactTree, sum.TreeHeight, radius)
		}
	}
}

// TestStreamSummaryExactTreeLowerBoundProof: without cached metrics the
// proof falls back to the double-sweep radius lower bound. On a line the
// bound is tight (radius = ceil(diameter/2)), so the approximate tree is
// recognised as exact without ever paying for a full sweep; on a ring
// (radius = diameter) the cheap certificate cannot apply, so the flag
// conservatively stays false until the metric sweep is cached.
func TestStreamSummaryExactTreeLowerBoundProof(t *testing.T) {
	sum, err := Line(64).GossipStreamSummary(true)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TreeHeight != 32 || !sum.ExactTree {
		t.Fatalf("line approx tree height=%d exact=%v, want 32/true", sum.TreeHeight, sum.ExactTree)
	}
	ring := Ring(64)
	unproven, err := ring.GossipStreamSummary(true)
	if err != nil {
		t.Fatal(err)
	}
	if unproven.ExactTree {
		t.Fatal("ring exactness should not be provable by the double-sweep bound alone")
	}
	ring.Radius() // cache the metric sweep: now the comparison is exact
	proven, err := ring.GossipStreamSummary(true)
	if err != nil {
		t.Fatal(err)
	}
	if !proven.ExactTree {
		t.Fatalf("ring approx tree height=%d not recognised as exact against cached radius %d",
			proven.TreeHeight, ring.Radius())
	}
}

// TestConcurrentAddLinkAndMetrics is the -race regression test for the
// AddLink data race: the graph mutation must happen under the same lock
// that guards the metric sweep, so concurrent AddLink and
// Radius/Diameter/Center/Eccentricities calls are safe.
func TestConcurrentAddLinkAndMetrics(t *testing.T) {
	nw := Ring(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				u := (i*13 + w*17) % 64
				v := (u + 2 + i%31) % 64
				if u != v {
					nw.AddLink(u, v)
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch (i + w) % 4 {
				case 0:
					if r := nw.Radius(); r < 1 || r > 32 {
						t.Errorf("radius %d out of range", r)
					}
				case 1:
					if d := nw.Diameter(); d < 1 || d > 32 {
						t.Errorf("diameter %d out of range", d)
					}
				case 2:
					if len(nw.Center()) == 0 {
						t.Error("empty center")
					}
				default:
					if len(nw.Eccentricities()) != 64 {
						t.Error("eccentricities wrong length")
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestLoadNetworkRoundTrip(t *testing.T) {
	orig := PetersenGraph()
	var b strings.Builder
	if err := orig.WriteEdgeList(&b); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNetwork(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Processors() != 10 || back.Links() != 15 {
		t.Fatalf("round trip sizes wrong: n=%d m=%d", back.Processors(), back.Links())
	}
	plan, err := back.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() != 12 {
		t.Fatalf("rounds %d, want 12", plan.Rounds())
	}
	if _, err := LoadNetwork(strings.NewReader("bogus")); err == nil {
		t.Fatal("bogus edge list accepted")
	}
}

func TestRoundOutOfRange(t *testing.T) {
	plan, err := Ring(4).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Round(-1) != nil || plan.Round(plan.Rounds()) != nil {
		t.Fatal("out-of-range rounds should be nil")
	}
	if len(plan.Round(0)) == 0 {
		t.Fatal("round 0 should have transmissions")
	}
}
