package multigossip

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"multigossip/internal/graph"
)

// wheel returns a hub-and-ring network: processor 0 links to every other,
// and 1..n-1 form a ring. Radius 1, so the quality bound is tight and
// graft-degradation scenarios are easy to stage.
func wheel(n int) *Network {
	nw := NewNetwork(n)
	for v := 1; v < n; v++ {
		nw.AddLink(0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		nw.AddLink(v, next)
	}
	return nw
}

func mustDynamic(t *testing.T, nw *Network, opts ...DynamicOption) *DynamicPlanner {
	t.Helper()
	dp, err := NewDynamicPlanner(nw, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func TestDynamicPlannerAddReusesPlan(t *testing.T) {
	dp := mustDynamic(t, Ring(16))
	before := dp.Plan()
	outcome, err := dp.AddLink(0, 8)
	if err != nil || outcome != PatchReused {
		t.Fatalf("add: outcome %v, err %v; want reused", outcome, err)
	}
	after := dp.Plan()
	if after.imp != before.imp {
		t.Error("add rebuilt the compact plan instead of sharing it")
	}
	if !after.network.HasEdge(0, 8) {
		t.Error("rebound plan's snapshot is missing the added link")
	}
	if err := after.Verify(); err != nil {
		t.Errorf("rebound plan failed verification: %v", err)
	}
	if outcome, err := dp.AddLink(0, 8); err != nil || outcome != PatchUnchanged {
		t.Errorf("duplicate add: outcome %v, err %v; want unchanged", outcome, err)
	}
}

func TestDynamicPlannerNonTreeRemovalReuses(t *testing.T) {
	nw := Ring(16)
	nw.AddLink(3, 11) // a chord no minimum-depth tree of the augmented ring needs? not guaranteed — query the plan
	dp := mustDynamic(t, nw)
	tree, _ := dp.Plan().treeLabeled()
	// Find a non-tree link to remove.
	var u, v int = -1, -1
	for _, e := range dp.Plan().network.Edges() {
		if tree.Parent[e.U] != e.V && tree.Parent[e.V] != e.U {
			u, v = e.U, e.V
			break
		}
	}
	if u < 0 {
		t.Fatal("no non-tree link in the augmented ring")
	}
	before := dp.Plan()
	outcome, err := dp.RemoveLink(u, v)
	if err != nil || outcome != PatchReused {
		t.Fatalf("non-tree removal: outcome %v, err %v; want reused", outcome, err)
	}
	if dp.Plan().imp != before.imp {
		t.Error("non-tree removal rebuilt the compact plan")
	}
	if err := dp.Plan().Verify(); err != nil {
		t.Errorf("reused plan failed verification: %v", err)
	}
}

func TestDynamicPlannerGraftsTreeEdge(t *testing.T) {
	dp := mustDynamic(t, Ring(16))
	tree, _ := dp.Plan().treeLabeled()
	var u, v int = -1, -1
	for _, e := range dp.Plan().network.Edges() {
		if tree.Parent[e.U] == e.V || tree.Parent[e.V] == e.U {
			u, v = e.U, e.V
			break
		}
	}
	outcome, err := dp.RemoveLink(u, v)
	if err != nil || outcome != PatchGrafted {
		t.Fatalf("tree-edge removal: outcome %v, err %v; want grafted", outcome, err)
	}
	p := dp.Plan()
	if p.network.HasEdge(u, v) {
		t.Error("grafted plan's snapshot still has the removed link")
	}
	if err := p.Verify(); err != nil {
		t.Errorf("grafted plan failed verification: %v", err)
	}
	if want := p.network.N() + p.radius; p.Rounds() != want {
		t.Errorf("grafted plan runs %d rounds, want n+height = %d", p.Rounds(), want)
	}
}

func TestDynamicPlannerRefusesDisconnection(t *testing.T) {
	dp := mustDynamic(t, Line(8))
	before := dp.Plan()
	outcome, err := dp.RemoveLink(3, 4)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("bridge removal error %v does not wrap ErrDisconnected", err)
	}
	if outcome != PatchUnchanged || dp.Plan() != before {
		t.Error("refused removal disturbed the served plan")
	}
	if outcome, err := dp.RemoveLink(0, 5); err != nil || outcome != PatchUnchanged {
		t.Errorf("absent removal: outcome %v, err %v; want unchanged no-op", outcome, err)
	}
}

// TestDynamicPlannerQualityRebuild stages a graft that degrades the tree
// past the height bound on a quiet link: the planner must rebuild cold and
// reset its baseline.
func TestDynamicPlannerQualityRebuild(t *testing.T) {
	dp := mustDynamic(t, wheel(16))
	if r := dp.Plan().Radius(); r != 1 {
		t.Fatalf("wheel radius %d, want 1", r)
	}
	// First spoke removal grafts 5 under a ring neighbour: height 2, within
	// the 2x bound.
	if outcome, _ := dp.RemoveLink(0, 5); outcome != PatchGrafted {
		t.Fatalf("first spoke removal outcome %v, want grafted", outcome)
	}
	// Removing the adjacent spoke severs {4, 5}; the subtree re-attaches at
	// depth 3 > 2x1, and the link is quiet, so the planner rebuilds.
	outcome, err := dp.RemoveLink(0, 4)
	if err != nil || outcome != PatchRebuilt {
		t.Fatalf("degrading removal: outcome %v, err %v; want rebuilt", outcome, err)
	}
	p := dp.Plan()
	if p.radius != 2 || dp.baseRadius != 2 {
		t.Errorf("rebuild radius %d (baseline %d), want 2", p.radius, dp.baseRadius)
	}
	if err := p.Verify(); err != nil {
		t.Errorf("rebuilt plan failed verification: %v", err)
	}
}

// TestDynamicPlannerFlapHysteresis drives the degrading removal of
// TestDynamicPlannerQualityRebuild off a flapping link under an injected
// clock: within the window the rebuild is suppressed and the degraded (but
// valid) graft is served; past the window the same removal rebuilds. The
// flap history is seeded directly — after any graft or rebuild the toggled
// link leaves the spanning tree, so a naturally flapping link only re-enters
// the tree through a later rebuild, and seeding keeps the scenario
// deterministic.
func TestDynamicPlannerFlapHysteresis(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	run := func(flapping bool) (PatchOutcome, *DynamicPlanner) {
		dp := mustDynamic(t, wheel(16), WithFlapWindow(time.Second), WithClock(now))
		if outcome, _ := dp.RemoveLink(0, 5); outcome != PatchGrafted {
			t.Fatal("setup graft failed")
		}
		if flapping {
			dp.lastTouch[graph.Edge{U: 0, V: 4}] = clock.Add(-100 * time.Millisecond)
		} else {
			dp.lastTouch[graph.Edge{U: 0, V: 4}] = clock.Add(-2 * time.Second)
		}
		outcome, err := dp.RemoveLink(0, 4)
		if err != nil {
			t.Fatal(err)
		}
		return outcome, dp
	}

	outcome, dp := run(true)
	if outcome != PatchSuppressed {
		t.Fatalf("flapping degraded removal outcome %v, want suppressed", outcome)
	}
	served := dp.Plan()
	if served.radius <= dp.maxHeight() {
		t.Errorf("suppressed outcome but height %d within bound %d", served.radius, dp.maxHeight())
	}
	if err := served.Verify(); err != nil {
		t.Errorf("plan served under suppression failed verification: %v", err)
	}

	if outcome, _ := run(false); outcome != PatchRebuilt {
		t.Errorf("quiet degraded removal outcome %v, want rebuilt (hysteresis must require a flap)", outcome)
	}
}

// TestDynamicPlannerFingerprintRestore checks the flap round trip through
// the cache: removing and re-adding a tree link restores the exact original
// plan object, because the XOR fingerprint returns bit-identically.
func TestDynamicPlannerFingerprintRestore(t *testing.T) {
	cache := NewPlanCache()
	dp := mustDynamic(t, Ring(16), WithPlanCache(cache))
	original := dp.Plan()
	tree, _ := original.treeLabeled()
	var u, v int = -1, -1
	for _, e := range original.network.Edges() {
		if tree.Parent[e.U] == e.V || tree.Parent[e.V] == e.U {
			u, v = e.U, e.V
			break
		}
	}
	if outcome, _ := dp.RemoveLink(u, v); outcome != PatchGrafted {
		t.Fatal("tree-edge removal should graft")
	}
	outcome, err := dp.AddLink(u, v)
	if err != nil || outcome != PatchReused {
		t.Fatalf("restoring add: outcome %v, err %v", outcome, err)
	}
	if dp.Plan() != original {
		t.Error("flap round trip did not restore the original cached plan")
	}
}

// TestDynamicPlannerCounters checks the obs registry wiring end to end.
func TestDynamicPlannerCounters(t *testing.T) {
	m := NewMetrics()
	cache := NewPlanCache()
	dp := mustDynamic(t, wheel(16), WithChurnMetrics(m), WithPlanCache(cache))
	dp.AddLink(2, 9)    // reused
	dp.RemoveLink(2, 9) // reused (fingerprint restore)
	dp.RemoveLink(0, 5) // grafted
	dp.RemoveLink(0, 4) // rebuilt (degraded, quiet)
	if _, err := dp.Rebuild(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	want := map[string]int64{
		"churn_reused_total":     2,
		"churn_patched_total":    1,
		"churn_rebuilt_total":    2,
		"churn_suppressed_total": 0,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

// TestChurnSmoke is the make churn-smoke entry point: a seeded flap
// sequence on a ring and a random network (n=1024), with the full
// Plan.Verify certifier on every patch and a model-checked full-coverage
// execution (that is what Verify replays) after every mutation.
func TestChurnSmoke(t *testing.T) {
	const n = 1024
	rng := rand.New(rand.NewSource(42))
	nets := map[string]*Network{
		"ring1024":   Ring(n),
		"random1024": RandomNetwork(rand.New(rand.NewSource(7)), n, 0.004),
	}
	for name, nw := range nets {
		t.Run(name, func(t *testing.T) {
			clock := time.Unix(0, 0)
			cache := NewPlanCache()
			dp, err := NewDynamicPlanner(nw,
				WithPatchVerify(),
				WithPlanCache(cache),
				WithFlapWindow(time.Second),
				WithClock(func() time.Time { return clock }),
			)
			if err != nil {
				t.Fatal(err)
			}
			outcomes := map[PatchOutcome]int{}
			for step := 0; step < 24; step++ {
				clock = clock.Add(time.Duration(rng.Intn(2000)) * time.Millisecond)
				var outcome PatchOutcome
				if step%2 == 0 {
					// Remove an existing link, picked at random.
					edges := nw.snapshotGraph().Edges()
					e := edges[rng.Intn(len(edges))]
					outcome, err = dp.RemoveLink(e.U, e.V)
					if errors.Is(err, ErrDisconnected) {
						err = nil // refused bridge removals are legal no-ops
					}
				} else {
					u, v := rng.Intn(n), rng.Intn(n)
					if u == v {
						continue
					}
					outcome, err = dp.AddLink(u, v)
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				outcomes[outcome]++
				p := dp.Plan()
				if p.Rounds() != n+p.radius {
					t.Fatalf("step %d: %d rounds, want n+height = %d", step, p.Rounds(), n+p.radius)
				}
				// Rebound plans share an already-certified compact core;
				// re-verifying them would re-materialise Θ(n²) deliveries per
				// step for no new information. Every structurally new plan —
				// graft, suppressed graft, rebuild — is fully verified (the
				// graft path additionally self-certifies via WithPatchVerify).
				if outcome == PatchGrafted || outcome == PatchSuppressed || outcome == PatchRebuilt {
					if err := p.Verify(); err != nil {
						t.Fatalf("step %d (%v): served plan failed verification: %v", step, outcome, err)
					}
				}
			}
			if err := dp.Plan().Verify(); err != nil {
				t.Fatalf("final plan failed verification: %v", err)
			}
			if outcomes[PatchGrafted]+outcomes[PatchRebuilt]+outcomes[PatchSuppressed] == 0 {
				t.Error("churn sequence never exercised a structural patch; widen the flap mix")
			}
			t.Logf("%s outcomes: %v", name, outcomes)
		})
	}
}

// TestPatchOutcomeString pins the wire names the serving API exposes.
func TestPatchOutcomeString(t *testing.T) {
	cases := map[PatchOutcome]string{
		PatchUnchanged:   "unchanged",
		PatchReused:      "reused",
		PatchGrafted:     "grafted",
		PatchRebuilt:     "rebuilt",
		PatchSuppressed:  "suppressed",
		PatchOutcome(99): "PatchOutcome(99)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("PatchOutcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

// TestWithHeightFactor checks the quality bound wiring: the factor scales
// the base radius and sub-1 factors clamp to 1 (a bound below the cold
// radius would rebuild on every graft).
func TestWithHeightFactor(t *testing.T) {
	dp := mustDynamic(t, wheel(8), WithHeightFactor(3))
	if got := dp.maxHeight(); got != 3 {
		t.Fatalf("maxHeight %d with factor 3 on radius 1, want 3", got)
	}
	dp = mustDynamic(t, wheel(8), WithHeightFactor(0.25))
	if got := dp.maxHeight(); got != 1 {
		t.Fatalf("maxHeight %d with clamped factor, want 1", got)
	}
}
