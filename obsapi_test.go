package multigossip

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestExecuteTracedFaultFree checks the fault-free traced path: the
// progress curve is monotone, ends at full coverage exactly at CompleteAt,
// and the delivery total matches n(n-1) for ConcurrentUpDown (no waste).
func TestExecuteTracedFaultFree(t *testing.T) {
	nw := Ring(16)
	plan, err := nw.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	tracer := NewTracer()
	rep, err := plan.ExecuteTraced(tracer)
	if err != nil {
		t.Fatal(err)
	}
	n := nw.Processors()
	if rep.Rounds != plan.Rounds() {
		t.Errorf("Rounds = %d, want %d", rep.Rounds, plan.Rounds())
	}
	if rep.WastedDeliveries != 0 {
		t.Errorf("ConcurrentUpDown wasted %d deliveries, want 0", rep.WastedDeliveries)
	}
	if rep.Deliveries != n*(n-1) {
		t.Errorf("Deliveries = %d, want n(n-1) = %d", rep.Deliveries, n*(n-1))
	}
	if rep.CompleteAt != plan.Rounds() {
		t.Errorf("CompleteAt = %d, want %d (every round of n + r is load-bearing)", rep.CompleteAt, plan.Rounds())
	}
	curve := rep.ProgressCurve
	if len(curve) != rep.Rounds {
		t.Fatalf("curve has %d points, want one per round (%d)", len(curve), rep.Rounds)
	}
	prev := n
	for _, pt := range curve {
		if pt.Held < prev {
			t.Fatalf("coverage regressed at round %d: %d < %d", pt.Round, pt.Held, prev)
		}
		prev = pt.Held
	}
	if last := curve[len(curve)-1]; last.Held != n*n || last.Coverage != 1 {
		t.Errorf("final point Held %d Coverage %v, want %d and 1", last.Held, last.Coverage, n*n)
	}
	// The attached tracer saw the same execution.
	if totals := tracer.RoundTotals(); totals.Delivered != rep.Deliveries {
		t.Errorf("tracer saw %d deliveries, report says %d", totals.Delivered, rep.Deliveries)
	}
	if outs := tracer.OutcomeTotals(); outs[Delivered] != int64(rep.Deliveries) {
		t.Errorf("tracer outcome totals %v, want %d delivered", outs, rep.Deliveries)
	}
	// A nil observer works and agrees.
	rep2, err := plan.ExecuteTraced(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Deliveries != rep.Deliveries || len(rep2.ProgressCurve) != len(rep.ProgressCurve) {
		t.Error("nil-observer trace disagrees with observed trace")
	}
}

// chromeDoc is the subset of the trace_event JSON the reconciliation test
// reads back.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeTraceReconcilesWithFaultReport is the acceptance check of the
// observability layer: a ring n=1024 execution under link loss with repair
// exports a Chrome trace whose per-round counter samples reconcile exactly
// with the FaultReport — summed drops equal Dropped, summed new pairs
// equal the coverage gain, and the metrics registry agrees with both.
func TestChromeTraceReconcilesWithFaultReport(t *testing.T) {
	const n = 1024
	nw := Ring(n)
	plan, err := nw.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	tracer := NewTracer()
	metrics := NewMetrics()
	rep, err := plan.ExecuteWithFaults(
		WithLinkLoss(0.01, 7),
		WithObserver(tracer),
		WithObserver(InstrumentMetrics(metrics)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("repair left the ring incomplete: %+v", rep)
	}
	if rep.Dropped == 0 {
		t.Fatal("1% loss on ~10^6 deliveries dropped nothing; the injector is not firing")
	}

	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Reconcile the per-round counter samples against the report.
	var sumDelivered, sumDropped, rounds int
	var phases []string
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "C" && e.Name == "deliveries":
			sumDelivered += int(e.Args["delivered"].(float64))
			sumDropped += int(e.Args["dropped"].(float64))
			rounds++
		case e.Ph == "X" && (e.Name == "schedule" || e.Name == "repair"):
			phases = append(phases, e.Name)
		}
	}
	if len(phases) != 2 {
		t.Errorf("phase spans %v, want [schedule repair] (in some order)", phases)
	}
	if rounds != rep.TotalRounds {
		t.Errorf("trace has %d round counter samples, report ran %d rounds", rounds, rep.TotalRounds)
	}
	if sumDropped != rep.Dropped {
		t.Errorf("trace drops sum to %d, FaultReport.Dropped = %d", sumDropped, rep.Dropped)
	}

	// The tracer's aggregate views agree with its own export and the report.
	totals := tracer.RoundTotals()
	if totals.Delivered != sumDelivered || totals.Dropped != sumDropped {
		t.Errorf("RoundTotals %+v disagree with exported sums (%d, %d)", totals, sumDelivered, sumDropped)
	}
	outs := tracer.OutcomeTotals()
	if int(outs[Delivered]) != sumDelivered {
		t.Errorf("per-delivery outcome total %d != per-round delivered sum %d", outs[Delivered], sumDelivered)
	}
	if dropOutcomes := int(outs[LostInFlight] + outs[ReceiverDown]); dropOutcomes != rep.Dropped {
		t.Errorf("lost+receiver-down outcomes %d != Dropped %d", dropOutcomes, rep.Dropped)
	}

	// New pairs must account exactly for the coverage gain: the execution
	// started with n pairs held and ended complete at n².
	if totals.NewPairs != n*n-n {
		t.Errorf("trace new pairs %d, want n²-n = %d", totals.NewPairs, n*n-n)
	}
	curve := rep.ProgressCurve
	if len(curve) != rep.TotalRounds {
		t.Fatalf("progress curve has %d points, want %d", len(curve), rep.TotalRounds)
	}
	if last := curve[len(curve)-1]; last.Held != n*n || math.Abs(last.Coverage-1) > 1e-12 {
		t.Errorf("curve ends at Held %d Coverage %v, want complete", last.Held, last.Coverage)
	}

	// And the Prometheus-side counters agree with everything above.
	snap := metrics.Snapshot()
	if got := snap.Counters["gossip_delivered_total"]; got != int64(sumDelivered) {
		t.Errorf("gossip_delivered_total = %d, want %d", got, sumDelivered)
	}
	if got := snap.Counters["gossip_dropped_total"]; got != int64(rep.Dropped) {
		t.Errorf("gossip_dropped_total = %d, want %d", got, rep.Dropped)
	}
	if got := snap.Counters["gossip_new_pairs_total"]; got != int64(n*n-n) {
		t.Errorf("gossip_new_pairs_total = %d, want %d", got, n*n-n)
	}
	if got := snap.Counters["gossip_rounds_total"]; got != int64(rep.TotalRounds) {
		t.Errorf("gossip_rounds_total = %d, want %d", got, rep.TotalRounds)
	}
	if got := snap.Counters["gossip_repair_iterations_total"]; got != int64(rep.RepairIterations) {
		t.Errorf("gossip_repair_iterations_total = %d, want %d", got, rep.RepairIterations)
	}
}

// TestFaultReportProgressCurveWithoutObserver checks the curve is always
// collected, and that a fault-free faulty-API run reports a clean curve.
func TestFaultReportProgressCurveWithoutObserver(t *testing.T) {
	plan, err := Ring(12).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Dropped != 0 {
		t.Fatalf("fault-free run reported %+v", rep)
	}
	if len(rep.ProgressCurve) != rep.ScheduleRounds {
		t.Fatalf("curve has %d points, want %d", len(rep.ProgressCurve), rep.ScheduleRounds)
	}
	for _, pt := range rep.ProgressCurve {
		if pt.Dropped != 0 || pt.Skipped != 0 {
			t.Errorf("round %d reports drops in a fault-free run: %+v", pt.Round, pt)
		}
		if pt.NewPairs != pt.Delivered {
			t.Errorf("round %d: %d new pairs != %d deliveries (ConcurrentUpDown never wastes)", pt.Round, pt.NewPairs, pt.Delivered)
		}
	}
	// Quarantine events surface through WithObserver on a permanent fault.
	tracer := NewTracer()
	rep, err = plan.ExecuteWithFaults(WithCrashStop(3, 0), WithObserver(tracer))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DownProcessors) != 1 || rep.DownProcessors[0] != 3 {
		t.Fatalf("crash-stop not quarantined: %+v", rep)
	}
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	sawQuarantine := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "i" && e.Name == "quarantine" {
			sawQuarantine = true
		}
	}
	if !sawQuarantine {
		t.Error("no quarantine instant event in the trace of a crash-stop run")
	}
}
