// Command churnbench measures the dynamic-topology layer and records the
// result in a machine-readable perf record (BENCH_churn.json by default).
//
// The headline number is patch turnaround: the wall time from a RemoveLink
// that severs a spanning-tree edge to holding a valid repaired plan again,
// compared against the cold rebuild the same mutation would have cost
// before the churn layer existed. The patch path runs GraftTree plus an
// O(n) re-derivation and a structural validation; the cold path repeats
// the O(nm) metric sweep. For every topology in {ring, random} and size in
// -sizes the bench probes shuffled edges until it has collected -samples
// grafted removals (re-adding the link after each probe, which restores
// the cached original plan bit-identically via the XOR fingerprint), and
// reports the median and minimum of both paths plus the outcome histogram
// the probing saw. With -min-speedup > 0 the bench fails unless the
// median cold/patch ratio on the largest random case clears the floor —
// the acceptance gate for the churn layer.
//
// The record also carries a deterministic hysteresis trace: on a wheel
// (hub + rim ring), a spoke that was removed and re-added inside the flap
// window and then removed again degrades the grafted tree past the quality
// bound, and the planner must suppress the rebuild (serving the valid,
// degraded plan); the identical sequence with the clock advanced past the
// window must rebuild. Both outcomes are asserted, not just recorded.
//
//	go run ./cmd/churnbench -out BENCH_churn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"multigossip"
	"multigossip/internal/graph"
)

type caseRecord struct {
	Topology      string  `json:"topology"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Radius        int     `json:"radius"`
	ColdMedianNs  int64   `json:"cold_median_ns"`
	ColdMinNs     int64   `json:"cold_min_ns"`
	PatchMedianNs int64   `json:"patch_median_ns"`
	PatchMinNs    int64   `json:"patch_min_ns"`
	Speedup       float64 `json:"speedup"`
	GraftSamples  int     `json:"graft_samples"`
	ReusedProbes  int     `json:"reused_probes"`
	RebuiltProbes int     `json:"rebuilt_probes"`
}

type hysteresisRecord struct {
	N              int    `json:"n"`
	WindowMS       int64  `json:"window_ms"`
	FlapOutcome    string `json:"flap_outcome"`
	FlapRadius     int    `json:"flap_radius"`
	QuietOutcome   string `json:"quiet_outcome"`
	QuietRadius    int    `json:"quiet_radius"`
	QualityBaseRad int    `json:"quality_base_radius"`
}

type report struct {
	Tool       string           `json:"tool"`
	Benchmark  string           `json:"benchmark"`
	GoMaxProcs int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	GoVersion  string           `json:"go_version"`
	Cases      []caseRecord     `json:"cases"`
	Hysteresis hysteresisRecord `json:"hysteresis"`
}

func buildGraph(kind string, n int) *graph.Graph {
	switch kind {
	case "ring":
		return graph.Cycle(n)
	case "random":
		rng := rand.New(rand.NewSource(int64(n)))
		return graph.RandomConnected(rng, n, 8/float64(n))
	}
	panic("unknown topology " + kind)
}

func networkFrom(g *graph.Graph) *multigossip.Network {
	nw := multigossip.NewNetwork(g.N())
	for _, e := range g.Edges() {
		nw.AddLink(e.U, e.V)
	}
	return nw
}

func median(ns []int64) int64 {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[len(ns)/2]
}

func minOf(ns []int64) int64 {
	m := ns[0]
	for _, v := range ns[1:] {
		m = min(m, v)
	}
	return m
}

// measure probes shuffled edges of one topology until it has `samples`
// grafted removals, timing each RemoveLink end to end, and times cold
// rebuilds of the same planner for the baseline.
func measure(kind string, n, samples int) (caseRecord, error) {
	g := buildGraph(kind, n)
	nw := networkFrom(g)
	cache := multigossip.NewPlanCache()
	dp, err := multigossip.NewDynamicPlanner(nw, multigossip.WithPlanCache(cache))
	if err != nil {
		return caseRecord{}, err
	}
	rec := caseRecord{Topology: kind, N: g.N(), M: g.M(), Radius: dp.Plan().Radius()}

	edges := g.Edges()
	rng := rand.New(rand.NewSource(int64(n) + 1))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	var patch []int64
	for _, e := range edges {
		if len(patch) >= samples {
			break
		}
		start := time.Now()
		outcome, err := dp.RemoveLink(e.U, e.V)
		dur := time.Since(start).Nanoseconds()
		if err != nil {
			continue // a bridge: the removal was refused, nothing to restore
		}
		switch outcome {
		case multigossip.PatchGrafted:
			patch = append(patch, dur)
			rec.GraftSamples++
		case multigossip.PatchReused:
			rec.ReusedProbes++
		case multigossip.PatchRebuilt:
			rec.RebuiltProbes++
		}
		// Re-adding restores the original fingerprint, so the planner
		// serves the cached original plan again and the next probe starts
		// from the same baseline.
		if _, err := dp.AddLink(e.U, e.V); err != nil {
			return rec, err
		}
	}
	if len(patch) == 0 {
		return rec, fmt.Errorf("%s n=%d: no grafted removal in %d edges", kind, n, len(edges))
	}

	cold := make([]int64, 0, 3)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := dp.Rebuild(); err != nil {
			return rec, err
		}
		cold = append(cold, time.Since(start).Nanoseconds())
	}

	rec.ColdMedianNs, rec.ColdMinNs = median(cold), minOf(cold)
	rec.PatchMedianNs, rec.PatchMinNs = median(patch), minOf(patch)
	rec.Speedup = float64(rec.ColdMedianNs) / float64(rec.PatchMedianNs)
	return rec, nil
}

// wheelNetwork is hub 0 spoked to every rim vertex 1..n-1, rim closed into
// a ring: radius 1, and a removed spoke grafts through the rim.
func wheelNetwork(n int) *multigossip.Network {
	nw := multigossip.NewNetwork(n)
	for i := 1; i < n; i++ {
		nw.AddLink(0, i)
		if i > 1 {
			nw.AddLink(i-1, i)
		}
	}
	nw.AddLink(n-1, 1)
	return nw
}

// hysteresis runs the deterministic flap trace twice — once inside the
// window, once with the clock advanced past it — and requires suppression
// in the first run and a rebuild in the second.
func hysteresis() (hysteresisRecord, error) {
	const n = 1024
	const window = time.Second
	run := func(quiet bool) (multigossip.PatchOutcome, int, error) {
		now := time.Unix(0, 0)
		dp, err := multigossip.NewDynamicPlanner(wheelNetwork(n),
			multigossip.WithFlapWindow(window),
			multigossip.WithClock(func() time.Time { return now }))
		if err != nil {
			return 0, 0, err
		}
		// Heat the flap detector on spoke {0, 4}: remove, re-add.
		if o, err := dp.RemoveLink(0, 4); err != nil || o != multigossip.PatchGrafted {
			return o, 0, fmt.Errorf("flap heat remove: outcome %v, err %w", o, err)
		}
		now = now.Add(window / 10)
		if _, err := dp.AddLink(0, 4); err != nil {
			return 0, 0, err
		}
		// Settle back to the pristine spoke tree so {0, 4} is a tree edge
		// again, then deepen rim vertex 5's attachment so the next graft of
		// {0, 4} hangs a two-vertex chain and breaks the quality bound.
		if _, err := dp.Rebuild(); err != nil {
			return 0, 0, err
		}
		if o, err := dp.RemoveLink(0, 5); err != nil || o != multigossip.PatchGrafted {
			return o, 0, fmt.Errorf("rim deepen remove: outcome %v, err %w", o, err)
		}
		now = now.Add(window / 10)
		if quiet {
			now = now.Add(2 * window)
		}
		outcome, err := dp.RemoveLink(0, 4)
		return outcome, dp.Plan().Radius(), err
	}
	flap, flapRadius, err := run(false)
	if err != nil {
		return hysteresisRecord{}, err
	}
	if flap != multigossip.PatchSuppressed {
		return hysteresisRecord{}, fmt.Errorf("flapping quality breach: outcome %v, want suppressed", flap)
	}
	quietOutcome, quietRadius, err := run(true)
	if err != nil {
		return hysteresisRecord{}, err
	}
	if quietOutcome != multigossip.PatchRebuilt {
		return hysteresisRecord{}, fmt.Errorf("quiet quality breach: outcome %v, want rebuilt", quietOutcome)
	}
	return hysteresisRecord{
		N:              n,
		WindowMS:       window.Milliseconds(),
		FlapOutcome:    flap.String(),
		FlapRadius:     flapRadius,
		QuietOutcome:   quietOutcome.String(),
		QuietRadius:    quietRadius,
		QualityBaseRad: 1,
	}, nil
}

func parseSizes(val string) []int {
	var ns []int
	for _, f := range strings.Split(val, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 4 {
			fmt.Fprintf(os.Stderr, "churnbench: bad -sizes value %q\n", f)
			os.Exit(2)
		}
		ns = append(ns, n)
	}
	return ns
}

func main() {
	out := flag.String("out", "BENCH_churn.json", "output path for the perf record")
	sizes := flag.String("sizes", "1024,4096", "comma-separated vertex counts")
	samples := flag.Int("samples", 16, "grafted-removal samples per case")
	minSpeedup := flag.Float64("min-speedup", 10, "required cold/patch median ratio on the largest random case (0 disables)")
	flag.Parse()

	rep := report{
		Tool:       "cmd/churnbench",
		Benchmark:  "patch turnaround (GraftTree + O(n) re-derivation) vs cold rebuild (O(nm) sweep) under topology churn, plus the flap-hysteresis trace",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	ns := parseSizes(*sizes)
	fmt.Printf("%-8s %7s %8s %14s %14s %9s %8s %8s %8s\n",
		"topology", "n", "m", "cold med", "patch med", "speedup", "grafts", "reused", "rebuilt")
	var largestRandom *caseRecord
	for _, kind := range []string{"ring", "random"} {
		for _, n := range ns {
			rec, err := measure(kind, n, *samples)
			if err != nil {
				fmt.Fprintf(os.Stderr, "churnbench: %v\n", err)
				os.Exit(1)
			}
			rep.Cases = append(rep.Cases, rec)
			fmt.Printf("%-8s %7d %8d %14s %14s %8.1fx %8d %8d %8d\n",
				rec.Topology, rec.N, rec.M,
				time.Duration(rec.ColdMedianNs), time.Duration(rec.PatchMedianNs),
				rec.Speedup, rec.GraftSamples, rec.ReusedProbes, rec.RebuiltProbes)
			if kind == "random" {
				largestRandom = &rep.Cases[len(rep.Cases)-1]
			}
		}
	}

	h, err := hysteresis()
	if err != nil {
		fmt.Fprintf(os.Stderr, "churnbench: hysteresis: %v\n", err)
		os.Exit(1)
	}
	rep.Hysteresis = h
	fmt.Printf("hysteresis: flapping spoke -> %s (radius %d), quiet spoke -> %s (radius %d)\n",
		h.FlapOutcome, h.FlapRadius, h.QuietOutcome, h.QuietRadius)

	if *minSpeedup > 0 && largestRandom != nil && largestRandom.Speedup < *minSpeedup {
		fmt.Fprintf(os.Stderr, "churnbench: random n=%d patch speedup %.1fx fell below the %.0fx floor\n",
			largestRandom.N, largestRandom.Speedup, *minSpeedup)
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "churnbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
