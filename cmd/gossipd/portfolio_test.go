package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"multigossip"
)

// TestPlanEveryRegisteredAlgorithm requires the server to serve a plan for
// every name the library's registry exports — the wire surface must grow
// with the portfolio automatically, with no per-algorithm server code.
func TestPlanEveryRegisteredAlgorithm(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	for _, name := range multigossip.AlgorithmNames() {
		status, body := post(t, ts.URL, "/plan", map[string]any{
			"topology": "ring", "n": 12, "algorithm": name,
		})
		if status != http.StatusOK {
			t.Fatalf("algorithm %q: status %d: %s", name, status, body)
		}
		var resp planResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("algorithm %q: %v", name, err)
		}
		if resp.Rounds <= 0 {
			t.Fatalf("algorithm %q: rounds %d, want > 0", name, resp.Rounds)
		}
		a, err := multigossip.ParseAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := resp.Algorithm, a.String(); got != want {
			t.Fatalf("algorithm %q: response names %q, want %q", name, got, want)
		}
	}
}

// TestPlanUnknownAlgorithmListsNames requires the 400 for an unknown
// algorithm to enumerate every accepted name, derived from the registry.
// (An earlier server hardcoded "want cud or simple" and kept saying it
// after the portfolio grew past those two.)
func TestPlanUnknownAlgorithmListsNames(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	status, body := post(t, ts.URL, "/plan", map[string]any{
		"topology": "ring", "n": 8, "algorithm": "quantum",
	})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", status, body)
	}
	msg := string(body)
	for _, name := range multigossip.AlgorithmNames() {
		if !strings.Contains(msg, name) {
			t.Fatalf("400 body %q does not list registered name %q", msg, name)
		}
	}
	if strings.Contains(msg, "want cud or simple") {
		t.Fatalf("400 body %q still carries the hardcoded two-algorithm hint", msg)
	}
}

// TestPlanAlgebraicHasNoEnumerableRounds: coded-packet plans report a round
// count but have no transmission schedule, so asking for rounds is a 400
// while the plain plan succeeds.
func TestPlanAlgebraicHasNoEnumerableRounds(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	status, body := post(t, ts.URL, "/plan", map[string]any{
		"topology": "ring", "n": 10, "algorithm": "algebraic",
	})
	if status != http.StatusOK {
		t.Fatalf("plain plan: status %d: %s", status, body)
	}
	for _, req := range []map[string]any{
		{"topology": "ring", "n": 10, "algorithm": "algebraic", "include_rounds": true},
		{"topology": "ring", "n": 10, "algorithm": "algebraic", "rounds_from": 0, "rounds_count": 2},
	} {
		status, body := post(t, ts.URL, "/plan", req)
		if status != http.StatusBadRequest {
			t.Fatalf("rounds request %v: status %d, want 400: %s", req, status, body)
		}
	}
}

// TestPlanAlgoSeedKeysCache: repeating a seed hits the cache, changing it
// misses — randomized plans for distinct seeds are distinct cache entries.
func TestPlanAlgoSeedKeysCache(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	want := []struct {
		seed   int64
		source string
	}{{1, "miss"}, {1, "hit"}, {2, "miss"}}
	for _, step := range want {
		status, body := post(t, ts.URL, "/plan", map[string]any{
			"topology": "ring", "n": 10, "algorithm": "algebraic", "algo_seed": step.seed,
		})
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", step.seed, status, body)
		}
		var resp planResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Source != step.source {
			t.Fatalf("seed %d: source %q, want %q", step.seed, resp.Source, step.source)
		}
	}
}
