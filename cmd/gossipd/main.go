// Command gossipd serves gossip plans over HTTP from a fingerprinted plan
// cache — the production adaptation of the paper's offline algorithm:
// constructing a schedule is O(nm + n²), but the finished plan is immutable
// and reusable, so a serving process pays construction once per distinct
// topology and answers every later request from memory.
//
// API (JSON bodies; see DESIGN.md §11 and §14):
//
//	POST /plan      {"topology":"ring","n":1024}             -> plan summary + cache source
//	POST /execute   {"topology":"ring","n":64,"link_loss":0.01} -> fault report
//	POST /mutate    {"session":"s","topology":"ring","n":64,"mutations":[...]} -> batch churn
//	GET  /healthz   liveness only: process up, HTTP stack answering
//	GET  /readyz    readiness: cache/store/cluster detail, "degraded" after disk failure
//	GET  /metrics   Prometheus text: plancache_*, planstore_* and gossipd_* series
//
// Requests are admitted through a bounded worker pool: -workers requests
// compute concurrently, -queue more may wait, and everything beyond that is
// rejected immediately with 429 so overload degrades by shedding, not by
// collapse. Disconnected networks return 422 with the planner's typed
// error; invalid topology parameters return 400. SIGTERM / SIGINT starts a
// graceful drain: the listener closes, in-flight requests finish (up to
// -drain), and the process exits 0.
//
// -store roots a crash-safe disk tier under the plan cache: plans built
// once persist (checksummed, atomically renamed into place) and a restarted
// process warm-starts from them instead of rebuilding. A failing store
// degrades the process to memory-only serving — visible in /readyz and the
// planstore_degraded gauge — and never costs a request.
//
// -peers + -self put the replica in a cluster: plan requests are routed by
// topology fingerprint over a consistent-hash ring, so each replica's cache
// owns a disjoint key range. A replica that cannot reach the owner serves
// the request itself; a proxied request is marked (X-Gossipd-Forwarded) and
// always served locally by the receiver, so routing is one hop at most.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8423", "listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent requests computed at once")
		queue        = flag.Int("queue", 64, "requests allowed to wait for a worker; beyond this, 429")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-request budget, queue wait included")
		drain        = flag.Duration("drain", 10*time.Second, "graceful shutdown budget after SIGTERM")
		cacheEntries = flag.Int("cache-entries", 512, "plan cache capacity in plans (<=0: unbounded)")
		cacheBytes   = flag.Int64("cache-bytes", 512<<20, "plan cache capacity in estimated bytes (<=0: unbounded)")
		storeDir     = flag.String("store", "", "directory for the crash-safe plan store (empty: memory-only)")
		sessionTTL   = flag.Duration("session-ttl", 0, "evict /mutate sessions idle longer than this (0: never)")
		peersFlag    = flag.String("peers", "", "comma-separated base URLs of all replicas, self included")
		self         = flag.String("self", "", "this replica's base URL as it appears in -peers")
	)
	flag.Parse()

	var peers []string
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	s, err := newServer(serverConfig{
		workers:      *workers,
		queue:        *queue,
		timeout:      *timeout,
		cacheEntries: *cacheEntries,
		cacheBytes:   *cacheBytes,
		storeDir:     *storeDir,
		sessionTTL:   *sessionTTL,
		peers:        peers,
		self:         *self,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(2)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	mode := "standalone"
	if s.ring != nil {
		mode = fmt.Sprintf("cluster of %d (self=%s)", s.ring.Len(), s.self)
	}
	store := "no store"
	if *storeDir != "" {
		store = "store=" + *storeDir
	}
	fmt.Fprintf(os.Stderr, "gossipd: serving on http://%s (workers=%d queue=%d cache=%d plans / %d bytes, %s, %s)\n",
		*addr, *workers, *queue, *cacheEntries, *cacheBytes, store, mode)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "gossipd: drain incomplete:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	}
	st := s.cache.Stats()
	fmt.Fprintf(os.Stderr, "gossipd: drained cleanly (%d hits, %d misses, %d disk hits, %d coalesced, %d evictions, %d plans resident)\n",
		st.Hits, st.Misses, st.DiskHits, st.Coalesced, st.Evictions, st.Entries)
}
