package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	if cfg.workers == 0 {
		cfg.workers = 4
	}
	if cfg.timeout == 0 {
		cfg.timeout = 5 * time.Second
	}
	if cfg.logf == nil {
		cfg.logf = t.Logf
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, path string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestPlanEndpoint checks the basic flow: a cold request constructs
// (source=miss), a repeat serves from cache (source=hit), and both report
// the ring's n + r rounds.
func TestPlanEndpoint(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	req := map[string]any{"topology": "ring", "n": 16}

	var first planResponse
	status, body := post(t, ts.URL, "/plan", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Source != "miss" || first.Rounds != 24 || first.Radius != 8 || first.Processors != 16 {
		t.Fatalf("first response %+v, want miss with 24 rounds, radius 8", first)
	}

	var second planResponse
	status, body = post(t, ts.URL, "/plan", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Source != "hit" {
		t.Fatalf("second response source %q, want hit", second.Source)
	}
	if second.Fingerprint != first.Fingerprint || len(second.Fingerprint) != 16 {
		t.Fatalf("fingerprints %q vs %q, want equal 16-hex strings", first.Fingerprint, second.Fingerprint)
	}
}

// TestPlanIncludeRounds requires include_rounds to carry the full schedule.
func TestPlanIncludeRounds(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	status, body := post(t, ts.URL, "/plan", map[string]any{"topology": "line", "n": 5, "include_rounds": true})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp planResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Schedule) != resp.Rounds {
		t.Fatalf("schedule has %d rounds, response says %d", len(resp.Schedule), resp.Rounds)
	}
	deliveries := 0
	for _, round := range resp.Schedule {
		for _, tx := range round {
			deliveries += len(tx.To)
		}
	}
	if deliveries == 0 {
		t.Fatal("included schedule is empty")
	}
}

// TestPlanRoundWindow checks the streamed round-window mode: the window
// matches the corresponding slice of the full schedule, out-of-range
// windows clamp to empty, and mixing window and include_rounds is a 400.
func TestPlanRoundWindow(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	status, body := post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 12, "include_rounds": true})
	if status != http.StatusOK {
		t.Fatalf("full schedule: status %d: %s", status, body)
	}
	var full planResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}

	status, body = post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 12, "rounds_from": 3, "rounds_count": 4})
	if status != http.StatusOK {
		t.Fatalf("window: status %d: %s", status, body)
	}
	var window planResponse
	if err := json.Unmarshal(body, &window); err != nil {
		t.Fatal(err)
	}
	if window.RoundsFrom == nil || *window.RoundsFrom != 3 || window.RoundsCount == nil || *window.RoundsCount != 4 {
		t.Fatalf("window did not echo rounds_from=3 rounds_count=4: %+v", window)
	}
	if len(window.Schedule) != 4 {
		t.Fatalf("window has %d rounds, want 4", len(window.Schedule))
	}
	for i, round := range window.Schedule {
		wantJSON, _ := json.Marshal(full.Schedule[3+i])
		gotJSON, _ := json.Marshal(round)
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("window round %d differs from full schedule round %d:\n%s\n%s", i, 3+i, gotJSON, wantJSON)
		}
	}

	// A window past the end clamps to empty rather than erroring.
	status, body = post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 12, "rounds_from": 1000, "rounds_count": 5})
	if status != http.StatusOK {
		t.Fatalf("clamped window: status %d: %s", status, body)
	}
	var clamped planResponse
	if err := json.Unmarshal(body, &clamped); err != nil {
		t.Fatal(err)
	}
	if len(clamped.Schedule) != 0 || clamped.RoundsCount == nil || *clamped.RoundsCount != 0 {
		t.Fatalf("out-of-range window not clamped to empty: %+v", clamped)
	}

	status, _ = post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 12, "include_rounds": true, "rounds_count": 2})
	if status != http.StatusBadRequest {
		t.Fatalf("include_rounds + window: status %d, want 400", status)
	}
	status, _ = post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 12, "rounds_from": -1, "rounds_count": 2})
	if status != http.StatusBadRequest {
		t.Fatalf("negative rounds_from: status %d, want 400", status)
	}
}

// TestDisconnectedReturns422 is the acceptance bug path: a disconnected
// network must produce a 422 JSON error — the panic class the Metrics()
// accessor fix removed — on both /plan and /execute.
func TestDisconnectedReturns422(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	disconnected := map[string]any{"processors": 4, "edges": [][2]int{{0, 1}}}
	for _, path := range []string{"/plan", "/execute"} {
		status, body := post(t, ts.URL, path, disconnected)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d (%s), want 422", path, status, body)
		}
		var e apiError
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "not connected") {
			t.Fatalf("%s: error body %q does not name the disconnection", path, body)
		}
	}
}

// TestInvalidRequests maps the malformed-input space to 400s.
func TestInvalidRequests(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	cases := []struct {
		name string
		body any
	}{
		{"unknown topology", map[string]any{"topology": "klein-bottle", "n": 8}},
		{"generator precondition", map[string]any{"topology": "ring", "n": 2}},
		{"negative n", map[string]any{"topology": "line", "n": -4}},
		{"no topology", map[string]any{}},
		{"bad edge index", map[string]any{"processors": 3, "edges": [][2]int{{0, 9}}}},
		{"negative edge index", map[string]any{"processors": 3, "edges": [][2]int{{-1, 2}}}},
		{"both endpoints negative", map[string]any{"edges": [][2]int{{-3, -7}}}},
		{"negative processors", map[string]any{"processors": -2, "edges": [][2]int{{0, 1}}}},
		{"self-loop edge", map[string]any{"processors": 3, "edges": [][2]int{{1, 1}}}},
		{"unknown algorithm", map[string]any{"topology": "ring", "n": 8, "algorithm": "quantum"}},
		{"bad fault option", map[string]any{"topology": "ring", "n": 8, "link_loss": 1.5}},
	}
	for _, c := range cases {
		path := "/plan"
		if c.name == "bad fault option" {
			path = "/execute"
		}
		status, body := post(t, ts.URL, path, c.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, status, body)
		}
	}
	// Non-JSON body.
	resp, err := http.Post(ts.URL+"/plan", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: status %d, want 400", resp.StatusCode)
	}

	// Negative indices must be rejected by validation with a descriptive
	// message, not caught falling out of the library as a panic.
	status, body := post(t, ts.URL, "/plan", map[string]any{"processors": 3, "edges": [][2]int{{-1, 2}}})
	if status != http.StatusBadRequest {
		t.Fatalf("negative index: status %d, want 400", status)
	}
	var e apiError
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "negative processor index") || strings.Contains(e.Error, "panic") {
		t.Errorf("negative index error %q: want a clean validation message naming the negative index", e.Error)
	}
}

// wheelSpec is a wheel topology as an inline edge list: hub 0 linked to
// every rim vertex 1..n-1, rim closed into a ring. Radius 1 through the
// hub; losing a hub spoke still leaves the rim path — the graftable case.
func wheelSpec(n int) map[string]any {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	for i := 1; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	edges = append(edges, [2]int{n - 1, 1})
	return map[string]any{"processors": n, "edges": edges}
}

// TestMutateEndpoint drives one named churn session through the full
// outcome range: creation, a grafted tree repair, a fingerprint-restoring
// flap back to the original plan, and a non-tree removal that reuses the
// plan verbatim — then checks the churn counters surfaced on /metrics.
func TestMutateEndpoint(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	create := wheelSpec(8)
	create["session"] = "wheel"
	status, body := post(t, ts.URL, "/mutate", create)
	if status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, body)
	}
	var created mutateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if !created.Created || created.Radius != 1 || created.Processors != 8 || len(created.Fingerprint) != 16 {
		t.Fatalf("create response %+v, want created radius-1 8-processor session", created)
	}

	mutate := func(op string, u, v int) mutateResponse {
		t.Helper()
		status, body := post(t, ts.URL, "/mutate", map[string]any{
			"session":   "wheel",
			"mutations": []map[string]any{{"op": op, "u": u, "v": v}},
		})
		if status != http.StatusOK {
			t.Fatalf("%s {%d,%d}: status %d: %s", op, u, v, status, body)
		}
		var resp mutateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Created || len(resp.Results) != 1 {
			t.Fatalf("%s {%d,%d}: response %+v, want one result on the existing session", op, u, v, resp)
		}
		return resp
	}

	// Losing a hub spoke severs rim vertex 5 from the tree; the graft
	// reattaches it through a rim link.
	grafted := mutate("remove", 0, 5)
	if grafted.Results[0].Outcome != "grafted" || grafted.Results[0].Error != "" {
		t.Fatalf("spoke removal result %+v, want grafted", grafted.Results[0])
	}
	if grafted.Radius <= created.Radius || grafted.Fingerprint == created.Fingerprint {
		t.Fatalf("graft kept radius %d and fingerprint %s", grafted.Radius, grafted.Fingerprint)
	}

	// Re-adding the spoke restores the original fingerprint bit-identically,
	// so the planner serves the cached original plan again.
	restored := mutate("add", 0, 5)
	if restored.Results[0].Outcome != "reused" || restored.Fingerprint != created.Fingerprint || restored.Radius != 1 {
		t.Fatalf("flap home result %+v (fp %s), want reused with the original fingerprint", restored.Results[0], restored.Fingerprint)
	}

	// A rim link is not a tree edge: the plan survives verbatim.
	rim := mutate("remove", 2, 3)
	if rim.Results[0].Outcome != "reused" || rim.Links != created.Links-1 {
		t.Fatalf("rim removal result %+v with %d links, want reused with one fewer link", rim.Results[0], rim.Links)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"churn_patched_total 1", "churn_reused_total 2"} {
		if !strings.Contains(string(dump), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestMutateRefusedRemoval checks the disconnection path: removing a bridge
// is refused per-mutation (outcome unchanged, error recorded) under an
// overall 200, and later mutations in the batch still apply.
func TestMutateRefusedRemoval(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	status, body := post(t, ts.URL, "/mutate", map[string]any{
		"session": "line", "topology": "line", "n": 4,
		"mutations": []map[string]any{
			{"op": "remove", "u": 1, "v": 2}, // bridge: refused
			{"op": "add", "u": 0, "v": 2},    // still applies
		},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp mutateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results %+v, want 2", resp.Results)
	}
	if resp.Results[0].Outcome != "unchanged" || !strings.Contains(resp.Results[0].Error, "disconnect") {
		t.Fatalf("bridge removal result %+v, want unchanged with a disconnection error", resp.Results[0])
	}
	if resp.Results[1].Outcome != "reused" || resp.Results[1].Error != "" {
		t.Fatalf("chord add result %+v, want reused", resp.Results[1])
	}
	if resp.Links != 4 {
		t.Fatalf("links %d after refused removal + add, want 4", resp.Links)
	}
}

// TestMutateInvalid maps the /mutate error space: missing session name,
// unknown session with no topology, unknown op, and out-of-range or
// negative indices (validated against the session's processor count before
// any mutation applies).
func TestMutateInvalid(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	if status, body := post(t, ts.URL, "/mutate", map[string]any{"session": "s", "topology": "ring", "n": 8}); status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, body)
	}
	cases := []struct {
		name string
		body any
	}{
		{"no session", map[string]any{"topology": "ring", "n": 8}},
		{"unknown session without topology", map[string]any{"session": "ghost"}},
		{"unknown op", map[string]any{"session": "s", "mutations": []map[string]any{{"op": "toggle", "u": 0, "v": 1}}}},
		{"index out of range", map[string]any{"session": "s", "mutations": []map[string]any{{"op": "add", "u": 0, "v": 8}}}},
		{"negative index", map[string]any{"session": "s", "mutations": []map[string]any{{"op": "remove", "u": -1, "v": 1}}}},
		{"self-loop", map[string]any{"session": "s", "mutations": []map[string]any{{"op": "add", "u": 3, "v": 3}}}},
		{"disconnected creation spec", map[string]any{"session": "split", "processors": 4, "edges": [][2]int{{0, 1}}}},
	}
	for _, c := range cases {
		status, body := post(t, ts.URL, "/mutate", c.body)
		want := http.StatusBadRequest
		switch c.name {
		case "disconnected creation spec":
			want = http.StatusUnprocessableEntity
		case "unknown session without topology":
			// The session does not exist and the request carries nothing to
			// create it from: that's a missing resource, not a bad request —
			// exactly what a client holding an expired session name sees.
			want = http.StatusNotFound
		}
		if status != want {
			t.Errorf("%s: status %d (%s), want %d", c.name, status, body, want)
		}
	}
	// The invalid mutations above must not have half-applied: the session's
	// ring still has its original 8 links.
	status, body := post(t, ts.URL, "/mutate", map[string]any{"session": "s"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp mutateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Links != 8 || resp.Created {
		t.Fatalf("session state %+v after rejected batches, want untouched 8-link ring", resp)
	}
}

// TestExecuteEndpoint runs a lossy execution end to end and requires the
// self-healing pipeline to report completion.
func TestExecuteEndpoint(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	status, body := post(t, ts.URL, "/execute", map[string]any{
		"topology": "ring", "n": 32, "link_loss": 0.02, "loss_seed": 7,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp executeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Complete || resp.FinalCoverage != 1 {
		t.Fatalf("lossy ring did not heal: %+v", resp)
	}
	if resp.TotalRounds < resp.ScheduleRounds {
		t.Fatalf("total rounds %d below schedule rounds %d", resp.TotalRounds, resp.ScheduleRounds)
	}

	// Same topology: the execute path must reuse the cached plan.
	status, body = post(t, ts.URL, "/execute", map[string]any{"topology": "ring", "n": 32})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "hit" {
		t.Fatalf("second execute source %q, want hit", resp.Source)
	}
	if !resp.Complete || resp.Dropped != 0 {
		t.Fatalf("fault-free execute: %+v", resp)
	}
}

// TestBackpressure429 fills the admission slots by hand and requires the
// next request to be shed with 429 and counted.
func TestBackpressure429(t *testing.T) {
	s, ts := testServer(t, serverConfig{workers: 1, queue: 1})
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	status, body := post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 8})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", status, body)
	}
	if s.rejected.Value() != 1 {
		t.Fatalf("rejected counter %d, want 1", s.rejected.Value())
	}
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots
	}
	if status, _ := post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 8}); status != http.StatusOK {
		t.Fatalf("status %d after slots freed, want 200", status)
	}
}

// TestWorkerTimeout503 exhausts the execution slots (but not admission)
// and requires a short-budget request to time out with 503.
func TestWorkerTimeout503(t *testing.T) {
	s, ts := testServer(t, serverConfig{workers: 1, queue: 4, timeout: 50 * time.Millisecond})
	s.active <- struct{}{} // a stuck worker
	defer func() { <-s.active }()
	status, body := post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 8})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", status, body)
	}
}

// TestHealthzAndMetrics checks the liveness/readiness split — /healthz
// says only "the process answers", /readyz carries the serving detail —
// and that the Prometheus dump carries both the request counters and the
// plan-cache series, with the cache counters reconciling against the
// requests made.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := testServer(t, serverConfig{})
	for i := 0; i < 3; i++ {
		post(t, ts.URL, "/plan", map[string]any{"topology": "star", "n": 9})
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("health %+v, want ok", health)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready.Status != "ok" || ready.Cache.Misses != 1 || ready.Cache.Hits != 2 {
		t.Fatalf("readyz %+v, want ok with 1 miss and 2 hits", ready)
	}
	if ready.Store != nil || ready.Cluster != nil {
		t.Fatalf("readyz %+v reports a store/cluster on a storeless standalone server", ready)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(dump)
	for _, want := range []string{
		"plancache_hits_total 2",
		"plancache_misses_total 1",
		"plancache_evictions_total 0",
		"gossipd_requests_total 3",
		"gossipd_request_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestConcurrentColdRequests aims a herd at one cold topology and requires
// the singleflight to construct once, with every response complete.
func TestConcurrentColdRequests(t *testing.T) {
	s, ts := testServer(t, serverConfig{workers: 8, queue: 100})
	const herd = 24
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := post(t, ts.URL, "/plan", map[string]any{"topology": "mesh", "rows": 8, "cols": 8})
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, body)
			}
		}()
	}
	wg.Wait()
	st := s.cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d constructions for %d concurrent identical requests, want 1", st.Misses, herd)
	}
	if st.Hits+st.Coalesced != herd-1 {
		t.Fatalf("hits %d + coalesced %d != %d", st.Hits, st.Coalesced, herd-1)
	}
}
