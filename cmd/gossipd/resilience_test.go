// resilience_test.go covers the robustness surface of gossipd: warm starts
// from the disk tier, degraded-store serving, session TTL eviction, and
// consistent-hash routing with failover across replicas.
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartHTTP restarts the server over one store directory and
// requires the second process generation to serve from disk: no rebuild
// (cache misses stay zero), one disk hit, and a plan identical to the one
// the first generation built.
func TestWarmStartHTTP(t *testing.T) {
	dir := t.TempDir()
	req := map[string]any{"topology": "ring", "n": 48, "include_rounds": true}

	_, ts1 := testServer(t, serverConfig{storeDir: dir})
	status, body := post(t, ts1.URL, "/plan", req)
	if status != http.StatusOK {
		t.Fatalf("cold: status %d: %s", status, body)
	}
	var cold planResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Source != "miss" {
		t.Fatalf("cold source %q, want miss", cold.Source)
	}
	ts1.Close()

	// A "restarted" server: fresh process state, same store directory.
	s2, ts2 := testServer(t, serverConfig{storeDir: dir})
	status, body = post(t, ts2.URL, "/plan", req)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d: %s", status, body)
	}
	var warm planResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Source != "disk" {
		t.Fatalf("warm source %q, want disk", warm.Source)
	}
	if warm.Fingerprint != cold.Fingerprint || warm.Rounds != cold.Rounds || warm.Radius != cold.Radius {
		t.Fatalf("warm plan %+v differs from cold %+v", warm, cold)
	}
	coldJSON, _ := json.Marshal(cold.Schedule)
	warmJSON, _ := json.Marshal(warm.Schedule)
	if string(coldJSON) != string(warmJSON) {
		t.Fatal("warm-started schedule is not bit-identical to the cold one")
	}
	st := s2.cache.Stats()
	if st.Misses != 0 || st.DiskHits != 1 {
		t.Fatalf("warm cache stats %+v, want 0 misses and 1 disk hit", st)
	}

	var ready readyResponse
	getJSON(t, ts2.URL+"/readyz", &ready)
	if ready.Status != "ok" || ready.Store == nil || ready.Store.Hits != 1 {
		t.Fatalf("warm readyz %+v, want ok with one store hit", ready)
	}
}

// TestReadyzDegradedStore opens the store somewhere no directory can exist
// (under a regular file) and requires graceful degradation: /plan still
// answers 200 from memory, /healthz stays ok (a restart would not fix the
// disk), and only /readyz + the gauge report the degraded state.
func TestReadyzDegradedStore(t *testing.T) {
	parent := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(parent, []byte("a file, not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, serverConfig{storeDir: filepath.Join(parent, "store")})
	if !s.store.Degraded() {
		t.Fatal("store under a regular file did not degrade")
	}

	status, body := post(t, ts.URL, "/plan", map[string]any{"topology": "ring", "n": 16})
	if status != http.StatusOK {
		t.Fatalf("degraded store cost a request: status %d: %s", status, body)
	}

	var health healthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz %+v: liveness must not reflect disk state", health)
	}
	var ready readyResponse
	getJSON(t, ts.URL+"/readyz", &ready)
	if ready.Status != "degraded" || ready.Store == nil || !ready.Store.Degraded {
		t.Fatalf("readyz %+v, want degraded with store detail", ready)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "planstore_degraded 1") {
		t.Error("metrics dump missing planstore_degraded 1")
	}
}

// TestSessionTTL drives the session map to its cap, expires everything with
// an injected clock, and requires (a) the freed slots to admit new sessions,
// (b) a request naming an expired session without a spec to 404.
func TestSessionTTL(t *testing.T) {
	var mu sync.Mutex
	clock := time.Unix(1000, 0)
	cfg := serverConfig{
		sessionTTL: time.Minute,
		now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return clock
		},
	}
	s, ts := testServer(t, cfg)

	session := func(name string) (int, []byte) {
		return post(t, ts.URL, "/mutate", map[string]any{"session": name, "topology": "ring", "n": 8})
	}
	for i := 0; i < maxChurnSessions; i++ {
		if status, body := session(string(rune('a'+i%26))+string(rune('0'+i/26))); status != http.StatusOK {
			t.Fatalf("session %d: status %d: %s", i, status, body)
		}
	}
	if status, _ := session("overflow"); status != http.StatusTooManyRequests {
		t.Fatalf("session beyond the cap: status %d, want 429", status)
	}

	mu.Lock()
	clock = clock.Add(2 * time.Minute)
	mu.Unlock()

	// Naming an expired session without a topology is a 404 — the state is
	// gone and the client must re-create it.
	status, body := post(t, ts.URL, "/mutate", map[string]any{"session": "a0"})
	if status != http.StatusNotFound {
		t.Fatalf("expired session without spec: status %d (%s), want 404", status, body)
	}
	// The sweep freed every slot: a brand-new session fits again.
	status, body = session("reborn")
	if status != http.StatusOK {
		t.Fatalf("post-expiry create: status %d: %s", status, body)
	}
	var resp mutateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Created {
		t.Fatalf("post-expiry session not created fresh: %+v", resp)
	}
	if got := s.expiredSessions.Value(); got < maxChurnSessions {
		t.Fatalf("expired counter %d, want at least %d", got, maxChurnSessions)
	}
	s.sessionsMu.Lock()
	live := len(s.sessions)
	s.sessionsMu.Unlock()
	if live != 1 {
		t.Fatalf("%d sessions resident after expiry, want 1", live)
	}
}

// TestSessionTTLKeepsActive verifies that use refreshes the TTL: a session
// touched within the window survives a sweep that evicts an idle one.
func TestSessionTTLKeepsActive(t *testing.T) {
	var mu sync.Mutex
	clock := time.Unix(1000, 0)
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	_, ts := testServer(t, serverConfig{
		sessionTTL: time.Minute,
		now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return clock
		},
	})
	create := func(name string) {
		if status, body := post(t, ts.URL, "/mutate", map[string]any{"session": name, "topology": "ring", "n": 8}); status != http.StatusOK {
			t.Fatalf("create %s: status %d: %s", name, status, body)
		}
	}
	create("busy")
	create("idle")
	advance(40 * time.Second)
	if status, _ := post(t, ts.URL, "/mutate", map[string]any{"session": "busy"}); status != http.StatusOK {
		t.Fatal("touching a live session failed")
	}
	advance(40 * time.Second) // idle is now 80s old, busy only 40s
	if status, _ := post(t, ts.URL, "/mutate", map[string]any{"session": "busy"}); status != http.StatusOK {
		t.Fatal("refreshed session expired inside its window")
	}
	if status, _ := post(t, ts.URL, "/mutate", map[string]any{"session": "idle"}); status != http.StatusNotFound {
		t.Fatal("idle session survived past its TTL")
	}
}

// clusterPair builds two replicas that know each other's base URLs. httptest
// assigns URLs only after the handler exists, so each server sits behind a
// handler indirection that is filled in once both URLs are known.
func clusterPair(t *testing.T) (s1, s2 *server, ts1, ts2 *httptest.Server) {
	t.Helper()
	type handlerBox struct{ h http.Handler }
	var h1, h2 atomic.Value
	notReady := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "not wired yet", http.StatusServiceUnavailable)
	})
	h1.Store(handlerBox{notReady})
	h2.Store(handlerBox{notReady})
	ts1 = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h1.Load().(handlerBox).h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts1.Close)
	ts2 = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h2.Load().(handlerBox).h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts2.Close)

	peers := []string{ts1.URL, ts2.URL}
	var err error
	s1, err = newServer(serverConfig{workers: 4, peers: peers, self: ts1.URL, logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s2, err = newServer(serverConfig{workers: 4, peers: peers, self: ts2.URL, logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	h1.Store(handlerBox{s1.handler()})
	h2.Store(handlerBox{s2.handler()})
	return s1, s2, ts1, ts2
}

// ringOwnedBy finds a ring size whose topology the given replica owns.
func ringOwnedBy(t *testing.T, s *server, owner string) map[string]any {
	t.Helper()
	for n := 8; n < 200; n++ {
		nw, err := buildNetwork(topologySpec{Topology: "ring", N: n})
		if err != nil {
			continue
		}
		if s.ring.Owner(nw.Fingerprint()) == owner {
			return map[string]any{"topology": "ring", "n": n}
		}
	}
	t.Fatal("no ring size in [8,200) hashes to the wanted owner — ring is broken")
	return nil
}

// TestClusterProxy routes a request for a peer-owned topology through the
// wrong replica and requires exactly one construction, on the owner.
func TestClusterProxy(t *testing.T) {
	s1, s2, ts1, _ := clusterPair(t)
	req := ringOwnedBy(t, s1, s2.self)

	status, body := post(t, ts1.URL, "/plan", req)
	if status != http.StatusOK {
		t.Fatalf("proxied plan: status %d: %s", status, body)
	}
	var resp planResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "miss" {
		t.Fatalf("first proxied request source %q, want miss (built on the owner)", resp.Source)
	}
	if s1.proxied.Value() != 1 || s1.cache.Stats().Misses != 0 || s2.cache.Stats().Misses != 1 {
		t.Fatalf("proxied=%d, s1 misses=%d, s2 misses=%d: construction did not land on the owner",
			s1.proxied.Value(), s1.cache.Stats().Misses, s2.cache.Stats().Misses)
	}

	// A repeat through the non-owner hits the owner's hot cache.
	status, body = post(t, ts1.URL, "/plan", req)
	if status != http.StatusOK {
		t.Fatalf("second proxied plan: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "hit" {
		t.Fatalf("second proxied request source %q, want hit", resp.Source)
	}

	// Self-owned keys never proxy.
	own := ringOwnedBy(t, s1, s1.self)
	before := s1.proxied.Value()
	if status, body := post(t, ts1.URL, "/plan", own); status != http.StatusOK {
		t.Fatalf("self-owned plan: status %d: %s", status, body)
	}
	if s1.proxied.Value() != before {
		t.Fatal("a self-owned key was proxied")
	}
}

// TestClusterForwardedServesLocally pins the loop-prevention rule: a request
// carrying the forwarded marker is served where it lands, even by a replica
// that does not own the key.
func TestClusterForwardedServesLocally(t *testing.T) {
	s1, s2, ts1, _ := clusterPair(t)
	req := ringOwnedBy(t, s1, s2.self)
	b, _ := json.Marshal(req)

	hr, err := http.NewRequest(http.MethodPost, ts1.URL+"/plan", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(forwardedHeader, s2.self)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status %d", resp.StatusCode)
	}
	if s1.proxied.Value() != 0 || s1.cache.Stats().Misses != 1 || s2.cache.Stats().Misses != 0 {
		t.Fatalf("forwarded request re-routed: proxied=%d, s1 misses=%d, s2 misses=%d",
			s1.proxied.Value(), s1.cache.Stats().Misses, s2.cache.Stats().Misses)
	}
}

// TestClusterFailover kills the owning replica and requires the survivor to
// serve its keys locally: same answers, no 5xx, proxy errors counted.
func TestClusterFailover(t *testing.T) {
	s1, s2, ts1, ts2 := clusterPair(t)
	req := ringOwnedBy(t, s1, s2.self)

	ts2.Close() // the owner dies before ever serving the key

	status, body := post(t, ts1.URL, "/plan", req)
	if status != http.StatusOK {
		t.Fatalf("failover plan: status %d: %s", status, body)
	}
	var resp planResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "miss" {
		t.Fatalf("failover source %q, want a local miss build", resp.Source)
	}
	if s1.proxyErrs.Value() == 0 {
		t.Fatal("proxy failure not counted")
	}
	if s1.cache.Stats().Misses != 1 {
		t.Fatalf("survivor built %d plans, want 1", s1.cache.Stats().Misses)
	}
	// While the owner is down, the survivor's own cache keeps the key warm.
	status, body = post(t, ts1.URL, "/plan", req)
	if status != http.StatusOK {
		t.Fatalf("second failover plan: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "hit" {
		t.Fatalf("second failover source %q, want hit from the survivor's cache", resp.Source)
	}
}
