// server.go is the request-handling half of gossipd: the JSON API, the
// bounded worker pool with 429 backpressure, the plan cache wiring, and the
// request metrics. main.go owns process concerns (flags, listening,
// signal-driven drain).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"multigossip"
	"multigossip/internal/cliutil"
	"multigossip/internal/ring"
)

// serverConfig sizes the serving layer.
type serverConfig struct {
	workers      int           // concurrent plan/execute requests in flight
	queue        int           // extra requests allowed to wait; beyond this, 429
	timeout      time.Duration // per-request budget, queue wait included
	cacheEntries int
	cacheBytes   int64

	// storeDir roots the crash-safe disk tier under the plan cache; empty
	// disables it (memory-only serving, exactly as before).
	storeDir string

	// sessionTTL evicts /mutate sessions idle longer than this; zero keeps
	// sessions for the life of the process.
	sessionTTL time.Duration

	// peers is the cluster membership as base URLs, self included; fewer
	// than two peers means standalone. self must appear in peers verbatim.
	peers []string
	self  string

	// now is the clock (tests inject a fake one); nil means time.Now.
	now func() time.Time
	// logf receives store and cluster event lines; nil logs to stderr.
	logf func(format string, args ...any)
}

// server serves gossip plans from a fingerprinted cache behind a bounded
// worker pool. All state is safe for concurrent use.
type server struct {
	cache   *multigossip.PlanCache
	metrics *multigossip.Metrics
	// store is the disk tier under the cache; nil when -store is unset.
	store *multigossip.PlanStore
	// slots is the admission bound: workers + queue tokens. A request that
	// cannot take a token immediately is rejected with 429 — open-loop
	// clients get instant backpressure instead of an unbounded queue.
	slots chan struct{}
	// active is the execution bound: at most cfg.workers requests compute
	// at once; admitted requests beyond that wait here (or time out).
	active  chan struct{}
	timeout time.Duration
	start   time.Time
	now     func() time.Time
	logf    func(format string, args ...any)

	// ring routes plan requests to their owning replica; nil when the
	// server runs standalone. self is this replica's base URL in the ring.
	ring   *ring.Ring
	self   string
	client *http.Client

	// sessions holds the named churn sessions /mutate drives. sessionsMu
	// guards the map only (lastUse included); each session has its own lock
	// because a DynamicPlanner is not safe for concurrent use.
	sessionsMu sync.Mutex
	sessions   map[string]*churnSession
	sessionTTL time.Duration

	reqs, rejected, clientErrs, serverErrs *multigossip.MetricsCounter
	proxied, proxyErrs, expiredSessions    *multigossip.MetricsCounter
	latency                                *multigossip.MetricsHistogram
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queue < 0 {
		cfg.queue = 0
	}
	if cfg.timeout <= 0 {
		cfg.timeout = 10 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.logf == nil {
		cfg.logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gossipd: "+format+"\n", args...)
		}
	}
	m := multigossip.NewMetrics()
	cacheOpts := []multigossip.CacheOption{
		multigossip.WithCacheCapacity(cfg.cacheEntries),
		multigossip.WithCacheBytes(cfg.cacheBytes),
		multigossip.WithCacheMetrics(m),
	}
	var store *multigossip.PlanStore
	if cfg.storeDir != "" {
		store = multigossip.OpenPlanStore(cfg.storeDir,
			multigossip.WithStoreMetrics(m),
			multigossip.WithStoreLogger(cfg.logf))
		cacheOpts = append(cacheOpts, multigossip.WithCacheStore(store))
	}
	s := &server{
		sessions:   make(map[string]*churnSession),
		cache:      multigossip.NewPlanCache(cacheOpts...),
		metrics:    m,
		store:      store,
		slots:      make(chan struct{}, cfg.workers+cfg.queue),
		active:     make(chan struct{}, cfg.workers),
		timeout:    cfg.timeout,
		start:      time.Now(),
		now:        cfg.now,
		logf:       cfg.logf,
		sessionTTL: cfg.sessionTTL,
		client:     &http.Client{Timeout: cfg.timeout},
		reqs:       m.Counter("gossipd_requests_total"),
		rejected:   m.Counter("gossipd_rejected_total"),
		clientErrs: m.Counter("gossipd_client_errors_total"),
		serverErrs: m.Counter("gossipd_server_errors_total"),
		proxied:    m.Counter("gossipd_proxied_total"),
		proxyErrs:  m.Counter("gossipd_proxy_errors_total"),
		expiredSessions: m.Counter(
			"gossipd_sessions_expired_total"),
		latency: m.Histogram("gossipd_request_seconds",
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
	}
	if len(cfg.peers) > 1 {
		found := false
		for _, p := range cfg.peers {
			if p == cfg.self {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("self %q is not among the peers %v", cfg.self, cfg.peers)
		}
		r, err := ring.New(cfg.peers, 0)
		if err != nil {
			return nil, fmt.Errorf("building cluster ring: %w", err)
		}
		s.ring, s.self = r, cfg.self
	}
	return s, nil
}

// handler returns the routed HTTP handler.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /plan", s.bounded(s.routed(s.handlePlan)))
	mux.HandleFunc("POST /execute", s.bounded(s.routed(s.handleExecute)))
	mux.HandleFunc("POST /mutate", s.bounded(s.handleMutate))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// fail classifies the response and bumps the matching error counter.
func (s *server) fail(w http.ResponseWriter, status int, err error) {
	switch {
	case status == http.StatusTooManyRequests:
		s.rejected.Inc()
	case status >= 500:
		s.serverErrs.Inc()
	default:
		s.clientErrs.Inc()
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// bounded wraps a handler with admission control, the worker pool, the
// per-request timeout, latency metering, and a panic barrier (a library
// panic becomes a 500, never a dead server).
func (s *server) bounded(h func(w http.ResponseWriter, r *http.Request) (status int, err error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Inc()
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		default:
			s.fail(w, http.StatusTooManyRequests, errors.New("server saturated: worker pool and queue are full"))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		select {
		case s.active <- struct{}{}:
			defer func() { <-s.active }()
		case <-ctx.Done():
			s.fail(w, http.StatusServiceUnavailable, errors.New("timed out waiting for a worker"))
			return
		}
		begin := time.Now()
		defer func() {
			s.latency.Observe(time.Since(begin).Seconds())
			if p := recover(); p != nil {
				s.fail(w, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", p))
			}
		}()
		if status, err := h(w, r); err != nil {
			s.fail(w, status, err)
		}
	}
}

// forwardedHeader marks a proxied request so the owning replica serves it
// locally instead of re-routing — one hop, never a loop, even if replicas
// momentarily disagree about membership.
const forwardedHeader = "X-Gossipd-Forwarded"

// servedByHeader names the replica whose cache answered, for observability.
const servedByHeader = "X-Gossipd-Served-By"

// routed wraps a plan-shaped handler with consistent-hash routing: in
// cluster mode, a request whose topology hashes to another replica is
// proxied there, so each replica's cache and disk tier serve a disjoint key
// range and the cluster builds each plan once. Anything that stops the
// proxy — unparseable spec, owner unreachable, owner overloaded — falls back
// to serving locally: routing is an optimisation, never an availability
// dependency.
func (s *server) routed(h func(w http.ResponseWriter, r *http.Request) (int, error)) func(w http.ResponseWriter, r *http.Request) (int, error) {
	return func(w http.ResponseWriter, r *http.Request) (int, error) {
		if s.ring == nil || r.Header.Get(forwardedHeader) != "" {
			return h(w, r)
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			return http.StatusBadRequest, fmt.Errorf("reading request body: %w", err)
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		var spec topologySpec
		if json.Unmarshal(body, &spec) != nil {
			return h(w, r) // let the local handler produce the 400
		}
		nw, err := buildNetwork(spec)
		if err != nil {
			return h(w, r)
		}
		owner := s.ring.Owner(nw.Fingerprint())
		if owner == s.self {
			w.Header().Set(servedByHeader, s.self)
			return h(w, r)
		}
		if s.proxy(w, r, owner, body) == nil {
			return 0, nil
		}
		s.proxyErrs.Inc()
		r.Body = io.NopCloser(bytes.NewReader(body))
		w.Header().Set(servedByHeader, s.self)
		return h(w, r)
	}
}

// proxy forwards the request to the owning replica and streams its response
// back verbatim. Only transport failures return an error (and trigger the
// caller's local fallback); an HTTP error status from the owner is a real
// answer and passes through.
func (s *server) proxy(w http.ResponseWriter, r *http.Request, owner string, body []byte) error {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, s.self)
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	s.proxied.Inc()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set(servedByHeader, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return nil
}

// topologySpec names a network the way the CLI flags do, or carries it
// inline as an edge list over `processors` vertices.
type topologySpec struct {
	Topology   string   `json:"topology"`
	N          int      `json:"n"`
	Rows       int      `json:"rows"`
	Cols       int      `json:"cols"`
	Dim        int      `json:"dim"`
	P          float64  `json:"p"`
	Radio      float64  `json:"radio"`
	Seed       int64    `json:"seed"`
	Processors int      `json:"processors"`
	Edges      [][2]int `json:"edges"`
}

// buildNetwork materialises the spec. Every invalid parameter — negative,
// out-of-range or self-loop edge indices included — comes back as a
// descriptive error before any link is applied, never as a panic. (An
// earlier version validated only the upper bound explicitly and let
// negative indices fall through to the library panic, which the handler's
// recover turned into an opaque 400; checkEdge closes that gap.)
func buildNetwork(spec topologySpec) (*multigossip.Network, error) {
	if len(spec.Edges) > 0 {
		n := spec.Processors
		if n < 0 {
			return nil, fmt.Errorf("invalid processors %d: must be non-negative", n)
		}
		if n == 0 {
			for _, e := range spec.Edges {
				if e[0] >= n {
					n = e[0] + 1
				}
				if e[1] >= n {
					n = e[1] + 1
				}
			}
		}
		for i, e := range spec.Edges {
			if err := checkEdge(e[0], e[1], n); err != nil {
				return nil, fmt.Errorf("invalid edge list: edges[%d]: %w", i, err)
			}
		}
		nw := multigossip.NewNetwork(n)
		for _, e := range spec.Edges {
			nw.AddLink(e[0], e[1])
		}
		return nw, nil
	}
	if spec.Topology == "" {
		return nil, errors.New("request names no topology and no edges")
	}
	return cliutil.Build(spec.Topology, cliutil.Params{
		N: spec.N, Rows: spec.Rows, Cols: spec.Cols, Dim: spec.Dim,
		P: spec.P, Radio: spec.Radio, Seed: spec.Seed,
	})
}

// checkEdge validates one endpoint pair against processor count n.
func checkEdge(u, v, n int) error {
	switch {
	case u < 0 || v < 0:
		return fmt.Errorf("negative processor index in {%d, %d}", u, v)
	case u >= n || v >= n:
		return fmt.Errorf("processor index out of range in {%d, %d}: network has %d processors", u, v, n)
	case u == v:
		return fmt.Errorf("self-loop at processor %d", u)
	}
	return nil
}

// parseAlgorithm resolves the request's algorithm field against the
// library's registry, so the accepted names — and the hint in the 400 for
// unknown ones — grow with the portfolio instead of being hardcoded here.
// (An earlier version listed "cud or simple" inline and silently rejected
// every later algorithm.)
func parseAlgorithm(name string) (multigossip.Algorithm, error) {
	a, err := multigossip.ParseAlgorithm(name)
	if err != nil {
		return 0, fmt.Errorf("unknown algorithm %q (want one of %s)",
			name, strings.Join(multigossip.AlgorithmNames(), ", "))
	}
	return a, nil
}

// planRequest asks for a schedule. include_rounds returns the full
// schedule; rounds_from/rounds_count return just that round window,
// streamed straight from the plan's closed-form evaluation — the response
// cost is proportional to the window, not to the O(n²) schedule, so
// clients can page through a huge plan round by round.
type planRequest struct {
	topologySpec
	Algorithm string `json:"algorithm"`
	// AlgoSeed seeds randomized algorithms (algebraic); deterministic ones
	// ignore it. Distinct from topologySpec.Seed, which seeds random
	// topology generation.
	AlgoSeed      int64 `json:"algo_seed"`
	IncludeRounds bool  `json:"include_rounds"`
	RoundsFrom    int   `json:"rounds_from"`
	RoundsCount   int   `json:"rounds_count"`
}

// roundJSON is one transmission of an included schedule.
type roundJSON struct {
	Message int   `json:"message"`
	From    int   `json:"from"`
	To      []int `json:"to"`
}

// planResponse summarises the plan and how the cache satisfied the request.
type planResponse struct {
	Fingerprint string        `json:"fingerprint"`
	Algorithm   string        `json:"algorithm"`
	Processors  int           `json:"processors"`
	Links       int           `json:"links"`
	Radius      int           `json:"radius"`
	Rounds      int           `json:"rounds"`
	Source      string        `json:"source"`
	PlanMillis  float64       `json:"plan_ms"`
	Schedule    [][]roundJSON `json:"schedule,omitempty"`
	// RoundsFrom/RoundsCount echo the served window when the request asked
	// for one: Schedule[i] is round RoundsFrom+i.
	RoundsFrom  *int `json:"rounds_from,omitempty"`
	RoundsCount *int `json:"rounds_count,omitempty"`
}

// planFor runs the shared plan path of /plan and /execute: build the
// network, consult the cache, map errors to HTTP statuses (400 for bad
// requests, 422 for disconnected networks — the bug class this server must
// answer, not crash on).
func (s *server) planFor(req planRequest) (*multigossip.Plan, planResponse, int, error) {
	algo, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, planResponse{}, http.StatusBadRequest, err
	}
	nw, err := buildNetwork(req.topologySpec)
	if err != nil {
		return nil, planResponse{}, http.StatusBadRequest, err
	}
	begin := time.Now()
	plan, source, err := s.cache.PlanSourced(nw,
		multigossip.WithAlgorithm(algo), multigossip.WithSeed(req.AlgoSeed))
	if err != nil {
		if errors.Is(err, multigossip.ErrDisconnected) {
			return nil, planResponse{}, http.StatusUnprocessableEntity, err
		}
		return nil, planResponse{}, http.StatusInternalServerError, err
	}
	resp := planResponse{
		Fingerprint: fmt.Sprintf("%016x", nw.Fingerprint()),
		Algorithm:   algo.String(),
		Processors:  nw.Processors(),
		Links:       nw.Links(),
		Radius:      plan.Radius(),
		Rounds:      plan.Rounds(),
		Source:      source.String(),
		PlanMillis:  float64(time.Since(begin).Microseconds()) / 1000,
	}
	return plan, resp, http.StatusOK, nil
}

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) (int, error) {
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	plan, resp, status, err := s.planFor(req)
	if err != nil {
		return status, err
	}
	if (req.IncludeRounds || req.RoundsCount > 0 || req.RoundsFrom != 0) && !plan.Schedulable() {
		return http.StatusBadRequest,
			fmt.Errorf("algorithm %s has no transmission schedule to include (coded packets; rounds are reported, not enumerable)", resp.Algorithm)
	}
	switch {
	case req.RoundsCount > 0 || req.RoundsFrom != 0:
		if req.IncludeRounds {
			return http.StatusBadRequest, errors.New("include_rounds and rounds_from/rounds_count are mutually exclusive")
		}
		if req.RoundsFrom < 0 || req.RoundsCount < 0 {
			return http.StatusBadRequest, errors.New("rounds_from and rounds_count must be non-negative")
		}
		from := req.RoundsFrom
		count := req.RoundsCount
		if from > plan.Rounds() {
			from = plan.Rounds()
		}
		if max := plan.Rounds() - from; count > max {
			count = max
		}
		resp.Schedule = appendRounds(plan, from, count)
		resp.RoundsFrom, resp.RoundsCount = &from, &count
	case req.IncludeRounds:
		resp.Schedule = appendRounds(plan, 0, plan.Rounds())
	}
	writeJSON(w, http.StatusOK, resp)
	return 0, nil
}

// appendRounds renders the round window [from, from+count) for the wire.
// It streams through Plan.RoundAppend with one recycled buffer, so an
// implicit-backed plan serves any window without ever materialising the
// full schedule.
func appendRounds(plan *multigossip.Plan, from, count int) [][]roundJSON {
	out := make([][]roundJSON, 0, count)
	var buf []multigossip.Transmission
	for t := from; t < from+count; t++ {
		buf = plan.RoundAppend(t, buf[:0])
		round := make([]roundJSON, len(buf))
		for i, tx := range buf {
			round[i] = roundJSON{Message: tx.Message, From: tx.From, To: append([]int(nil), tx.To...)}
		}
		out = append(out, round)
	}
	return out
}

// executeRequest asks for a (possibly faulty) execution of the plan.
type executeRequest struct {
	planRequest
	LinkLoss  float64  `json:"link_loss"`
	LossSeed  int64    `json:"loss_seed"`
	DeadLinks [][2]int `json:"dead_links"`
	CrashStop []struct {
		Proc int `json:"proc"`
		From int `json:"from"`
	} `json:"crash_stop"`
	CrashWindows []struct {
		Proc int `json:"proc"`
		From int `json:"from"`
		To   int `json:"to"`
	} `json:"crash_windows"`
	RepairBudget  int  `json:"repair_budget"`
	WithoutRepair bool `json:"without_repair"`
}

// executeResponse is the FaultReport over the wire, plus the plan summary.
type executeResponse struct {
	planResponse
	Coverage          float64  `json:"coverage"`
	FinalCoverage     float64  `json:"final_coverage"`
	ReachableCoverage float64  `json:"reachable_coverage"`
	Complete          bool     `json:"complete"`
	Dropped           int      `json:"dropped"`
	Repaired          int      `json:"repaired"`
	ScheduleRounds    int      `json:"schedule_rounds"`
	RepairRounds      int      `json:"repair_rounds"`
	TotalRounds       int      `json:"total_rounds"`
	RepairIterations  int      `json:"repair_iterations"`
	QuarantinedLinks  [][2]int `json:"quarantined_links,omitempty"`
	DownProcessors    []int    `json:"down_processors,omitempty"`
	Stalled           bool     `json:"stalled"`
}

func (s *server) handleExecute(w http.ResponseWriter, r *http.Request) (int, error) {
	var req executeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	plan, resp, status, err := s.planFor(req.planRequest)
	if err != nil {
		return status, err
	}
	var opts []multigossip.FaultOption
	if req.LinkLoss > 0 {
		opts = append(opts, multigossip.WithLinkLoss(req.LinkLoss, req.LossSeed))
	}
	for _, l := range req.DeadLinks {
		opts = append(opts, multigossip.WithDeadLink(l[0], l[1]))
	}
	for _, c := range req.CrashStop {
		opts = append(opts, multigossip.WithCrashStop(c.Proc, c.From))
	}
	for _, c := range req.CrashWindows {
		opts = append(opts, multigossip.WithCrashWindow(c.Proc, c.From, c.To))
	}
	if req.RepairBudget > 0 {
		opts = append(opts, multigossip.WithRepairBudget(req.RepairBudget))
	}
	if req.WithoutRepair {
		opts = append(opts, multigossip.WithoutRepair())
	}
	rep, err := plan.ExecuteWithFaults(opts...)
	if err != nil {
		return http.StatusBadRequest, err
	}
	out := executeResponse{
		planResponse:      resp,
		Coverage:          rep.Coverage,
		FinalCoverage:     rep.FinalCoverage,
		ReachableCoverage: rep.ReachableCoverage,
		Complete:          rep.Complete,
		Dropped:           rep.Dropped,
		Repaired:          rep.Repaired,
		ScheduleRounds:    rep.ScheduleRounds,
		RepairRounds:      rep.RepairRounds,
		TotalRounds:       rep.TotalRounds,
		RepairIterations:  rep.RepairIterations,
		DownProcessors:    rep.DownProcessors,
		Stalled:           rep.Stalled,
	}
	for _, l := range rep.QuarantinedLinks {
		out.QuarantinedLinks = append(out.QuarantinedLinks, [2]int{l.U, l.V})
	}
	writeJSON(w, http.StatusOK, out)
	return 0, nil
}

// maxChurnSessions bounds the named-session map: sessions are created on
// first use and live for the process, so without a cap an open-loop client
// inventing session names would grow the server without bound.
const maxChurnSessions = 64

// churnSession is one named dynamic topology: a network plus the
// DynamicPlanner keeping its plan current. The planner is not safe for
// concurrent use, so every request touching the session holds mu. lastUse
// belongs to the server's TTL sweep and is guarded by sessionsMu, not mu.
type churnSession struct {
	mu      sync.Mutex
	nw      *multigossip.Network
	dp      *multigossip.DynamicPlanner
	lastUse time.Time
}

// mutationSpec is one topology mutation of a /mutate request.
type mutationSpec struct {
	Op string `json:"op"` // "add" or "remove"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// mutateRequest drives a named churn session. The first request for a
// session name must carry a topology spec (inline edges or a named family)
// and may set the flap hysteresis window; later requests address the
// session by name alone and the spec is ignored. Mutations apply in order.
type mutateRequest struct {
	topologySpec
	Session      string         `json:"session"`
	FlapWindowMS int            `json:"flap_window_ms"`
	Mutations    []mutationSpec `json:"mutations"`
}

// mutationResult reports how the planner absorbed one mutation. A refused
// removal (one that would disconnect the network) is not a request error:
// the outcome is "unchanged" and Error carries the refusal, under HTTP 200,
// so a batch keeps applying past it.
type mutationResult struct {
	Op      string `json:"op"`
	U       int    `json:"u"`
	V       int    `json:"v"`
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// mutateResponse summarises the session's served plan after the batch.
// Outcome is the batch's single plan decision — the whole mutation list is
// absorbed by one reuse, one graft or one rebuild, not by a decision per
// mutation.
type mutateResponse struct {
	Session     string           `json:"session"`
	Created     bool             `json:"created"`
	Fingerprint string           `json:"fingerprint"`
	Processors  int              `json:"processors"`
	Links       int              `json:"links"`
	Radius      int              `json:"radius"`
	Rounds      int              `json:"rounds"`
	Outcome     string           `json:"outcome"`
	Results     []mutationResult `json:"results"`
}

// session returns the named churn session, creating it from the request's
// topology spec on first use. Sessions share the server's plan cache (so
// /plan requests for a patched topology hit the patched plan) and metrics
// registry (the churn_* counters aggregate across sessions).
//
// When a session TTL is configured, every call first sweeps sessions idle
// past the TTL — eviction frees their slot against maxChurnSessions. A
// request naming an unknown (or just-expired) session without a topology
// spec is a 404: the client must re-create the session, not mutate a
// topology the server no longer holds.
func (s *server) session(req mutateRequest) (sess *churnSession, created bool, status int, err error) {
	s.sessionsMu.Lock()
	defer s.sessionsMu.Unlock()
	now := s.now()
	if s.sessionTTL > 0 {
		for name, old := range s.sessions {
			if now.Sub(old.lastUse) > s.sessionTTL {
				delete(s.sessions, name)
				s.expiredSessions.Inc()
			}
		}
	}
	if sess, ok := s.sessions[req.Session]; ok {
		sess.lastUse = now
		return sess, false, 0, nil
	}
	if req.Topology == "" && len(req.Edges) == 0 {
		return nil, false, http.StatusNotFound,
			fmt.Errorf("unknown or expired session %q: re-create it with a topology spec", req.Session)
	}
	if len(s.sessions) >= maxChurnSessions {
		return nil, false, http.StatusTooManyRequests,
			fmt.Errorf("session limit reached (%d)", maxChurnSessions)
	}
	nw, err := buildNetwork(req.topologySpec)
	if err != nil {
		return nil, false, http.StatusBadRequest, err
	}
	opts := []multigossip.DynamicOption{
		multigossip.WithPlanCache(s.cache),
		multigossip.WithChurnMetrics(s.metrics),
	}
	if req.FlapWindowMS > 0 {
		opts = append(opts, multigossip.WithFlapWindow(time.Duration(req.FlapWindowMS)*time.Millisecond))
	}
	dp, err := multigossip.NewDynamicPlanner(nw, opts...)
	if err != nil {
		if errors.Is(err, multigossip.ErrDisconnected) {
			return nil, false, http.StatusUnprocessableEntity, err
		}
		return nil, false, http.StatusBadRequest, err
	}
	sess = &churnSession{nw: nw, dp: dp, lastUse: now}
	s.sessions[req.Session] = sess
	return sess, true, 0, nil
}

func (s *server) handleMutate(w http.ResponseWriter, r *http.Request) (int, error) {
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	if req.Session == "" {
		return http.StatusBadRequest, errors.New("request names no session")
	}
	for i, m := range req.Mutations {
		if m.Op != "add" && m.Op != "remove" {
			return http.StatusBadRequest,
				fmt.Errorf("mutations[%d]: unknown op %q (want add or remove)", i, m.Op)
		}
	}
	sess, created, status, err := s.session(req)
	if err != nil {
		return status, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	// Index validation against the session's real processor count, before
	// any mutation applies — a half-applied batch with a 400 at the end
	// would leave the session in a state the client can't see.
	n := sess.nw.Processors()
	for i, m := range req.Mutations {
		if err := checkEdge(m.U, m.V, n); err != nil {
			return http.StatusBadRequest, fmt.Errorf("mutations[%d]: %w", i, err)
		}
	}
	// The whole list goes through one Apply: the planner nets out the damage
	// against the final topology and makes a single reuse/graft/rebuild
	// decision, instead of paying one decision (and one cache churn) per
	// mutation. Refused mutations come back per-entry, not as a request
	// error, so a batch keeps applying past a removal that would disconnect.
	muts := make([]multigossip.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		muts[i] = multigossip.Mutation{Remove: m.Op == "remove", U: m.U, V: m.V}
	}
	outcome, applied, err := sess.dp.Apply(muts)
	if err != nil {
		return http.StatusInternalServerError, err
	}
	results := make([]mutationResult, len(applied))
	for i, a := range applied {
		results[i] = mutationResult{Op: req.Mutations[i].Op, U: a.U, V: a.V}
		switch {
		case a.Err != nil:
			results[i].Outcome = multigossip.PatchUnchanged.String()
			results[i].Error = a.Err.Error()
		case !a.Changed:
			results[i].Outcome = multigossip.PatchUnchanged.String()
		default:
			results[i].Outcome = outcome.String()
		}
	}
	plan := sess.dp.Plan()
	writeJSON(w, http.StatusOK, mutateResponse{
		Session:     req.Session,
		Created:     created,
		Fingerprint: fmt.Sprintf("%016x", sess.nw.Fingerprint()),
		Processors:  sess.nw.Processors(),
		Links:       sess.nw.Links(),
		Radius:      plan.Radius(),
		Rounds:      plan.Rounds(),
		Outcome:     outcome.String(),
		Results:     results,
	})
	return 0, nil
}

// healthResponse is the /healthz body: pure liveness. The process is up and
// the HTTP stack answers — nothing else. Orchestrators restart on a failed
// /healthz, so it must not reflect conditions a restart cannot fix (a dead
// disk would otherwise put the replica in a restart loop).
type healthResponse struct {
	Status   string `json:"status"`
	UptimeMS int64  `json:"uptime_ms"`
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:   "ok",
		UptimeMS: time.Since(s.start).Milliseconds(),
	})
}

// clusterInfo describes this replica's place in the ring.
type clusterInfo struct {
	Self  string   `json:"self"`
	Peers []string `json:"peers"`
}

// readyResponse is the /readyz body: readiness and serving detail. Status is
// "degraded" when the disk tier has stopped writing — still HTTP 200,
// because a degraded replica serves correctly from memory and pulling it
// from rotation would turn a disk failure into lost capacity. Monitors that
// want to page on degradation read the status string (or the
// planstore_degraded gauge in /metrics).
type readyResponse struct {
	Status   string                  `json:"status"`
	UptimeMS int64                   `json:"uptime_ms"`
	Cache    multigossip.CacheStats  `json:"cache"`
	Store    *multigossip.StoreStats `json:"store,omitempty"`
	Cluster  *clusterInfo            `json:"cluster,omitempty"`
	Sessions int                     `json:"sessions"`
}

func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.sessionsMu.Lock()
	nsess := len(s.sessions)
	s.sessionsMu.Unlock()
	resp := readyResponse{
		Status:   "ok",
		UptimeMS: time.Since(s.start).Milliseconds(),
		Cache:    s.cache.Stats(),
		Sessions: nsess,
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
		if s.store.Degraded() {
			resp.Status = "degraded"
		}
	}
	if s.ring != nil {
		resp.Cluster = &clusterInfo{Self: s.self, Peers: s.ring.Members()}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}
