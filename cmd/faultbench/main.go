// Command faultbench measures the self-healing pipeline: it executes
// ConcurrentUpDown plans under Bernoulli link loss, lets the repair engine
// close the residual deficit, and records the coverage-vs-loss-rate curve
// and the repair overhead in a machine-readable record (BENCH_fault.json
// by default).
//
// For every topology in {ring, grid, random}, every size in -sizes and
// every loss rate in -rates it averages -trials seeded executions and
// reports: coverage after the scheduled rounds alone (the raw degradation
// the zero-redundancy schedule suffers), coverage after repair, deliveries
// dropped and pairs repaired, repair rounds and iterations, and the
// overhead of repair relative to the schedule length.
//
// The observability layer hooks in behind two flags: -trace streams every
// execution's rounds, repair iterations and quarantines into one Chrome
// trace_event JSON timeline (chrome://tracing, Perfetto), and -metrics
// dumps the aggregated gossip_* counters and histograms in the Prometheus
// text format.
//
//	go run ./cmd/faultbench -out BENCH_fault.json -trace fault.trace.json -metrics fault.prom
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"

	"multigossip"
)

type record struct {
	Topology             string  `json:"topology"`
	N                    int     `json:"n"`
	M                    int     `json:"m"`
	Radius               int     `json:"radius"`
	Diameter             int     `json:"diameter"`
	LossRate             float64 `json:"loss_rate"`
	Trials               int     `json:"trials"`
	RepairBudget         int     `json:"repair_budget"`
	ScheduleRounds       int     `json:"schedule_rounds"`
	ScheduleDeliveries   int     `json:"schedule_deliveries"`
	MeanCoverageRaw      float64 `json:"mean_coverage_before_repair"`
	MeanCoverageRepaired float64 `json:"mean_coverage_after_repair"`
	MeanDropped          float64 `json:"mean_dropped_deliveries"`
	MeanRepaired         float64 `json:"mean_repaired_pairs"`
	MeanRepairRounds     float64 `json:"mean_repair_rounds"`
	MeanRepairIterations float64 `json:"mean_repair_iterations"`
	RepairOverhead       float64 `json:"repair_overhead"` // repair rounds / schedule rounds
	AllComplete          bool    `json:"all_complete"`
}

// permRecord is one deterministic permanent-fault scenario: a dead link, a
// full isolation, or a crash-stop processor, recovered by the adaptive
// survivor-graph engine. Reachable coverage 1.0 with stalled false means
// the recovery degraded gracefully: every pair the surviving topology
// could still deliver was delivered.
type permRecord struct {
	Topology          string   `json:"topology"`
	N                 int      `json:"n"`
	Scenario          string   `json:"scenario"`
	Faults            string   `json:"faults"`
	RepairBudget      int      `json:"repair_budget"`
	CoverageRaw       float64  `json:"coverage_before_repair"`
	FinalCoverage     float64  `json:"final_coverage"`
	ReachableCoverage float64  `json:"reachable_coverage"`
	UnreachablePairs  int      `json:"unreachable_pairs"`
	QuarantinedLinks  [][2]int `json:"quarantined_links"`
	DownProcessors    []int    `json:"down_processors"`
	Components        int      `json:"components"`
	RepairIterations  int      `json:"repair_iterations"`
	RepairRounds      int      `json:"repair_rounds"`
	Stalled           bool     `json:"stalled"`
}

type report struct {
	Tool            string       `json:"tool"`
	Benchmark       string       `json:"benchmark"`
	GoMaxProcs      int          `json:"gomaxprocs"`
	GoVersion       string       `json:"go_version"`
	Cases           []record     `json:"cases"`
	PermanentFaults []permRecord `json:"permanent_faults"`
}

func buildNetwork(kind string, n int) *multigossip.Network {
	switch kind {
	case "ring":
		return multigossip.Ring(n)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return multigossip.Mesh(side, side)
	case "random":
		rng := rand.New(rand.NewSource(int64(n)))
		return multigossip.RandomNetwork(rng, n, 8/float64(n))
	}
	panic("unknown topology " + kind)
}

func measure(kind string, n int, rates []float64, trials, budget int, watch multigossip.RoundObserver) ([]record, error) {
	nw := buildNetwork(kind, n)
	plan, err := nw.PlanGossip()
	if err != nil {
		return nil, err
	}
	deliveries := 0
	var buf []multigossip.Transmission
	for t := 0; t < plan.Rounds(); t++ {
		buf = plan.RoundAppend(t, buf[:0])
		for _, tx := range buf {
			deliveries += len(tx.To)
		}
	}
	var out []record
	for _, rate := range rates {
		rec := record{
			Topology:           kind,
			N:                  nw.Processors(),
			M:                  nw.Links(),
			Radius:             nw.Radius(),
			Diameter:           nw.Diameter(),
			LossRate:           rate,
			Trials:             trials,
			RepairBudget:       budget,
			ScheduleRounds:     plan.Rounds(),
			ScheduleDeliveries: deliveries,
			AllComplete:        true,
		}
		for trial := 0; trial < trials; trial++ {
			seed := int64(n)*1000 + int64(trial)
			opts := []multigossip.FaultOption{
				multigossip.WithLinkLoss(rate, seed),
				multigossip.WithRepairBudget(budget),
			}
			if watch != nil {
				opts = append(opts, multigossip.WithObserver(watch))
			}
			rep, err := plan.ExecuteWithFaults(opts...)
			if err != nil {
				return nil, err
			}
			rec.MeanCoverageRaw += rep.Coverage
			rec.MeanCoverageRepaired += rep.FinalCoverage
			rec.MeanDropped += float64(rep.Dropped)
			rec.MeanRepaired += float64(rep.Repaired)
			rec.MeanRepairRounds += float64(rep.RepairRounds)
			rec.MeanRepairIterations += float64(rep.RepairIterations)
			rec.AllComplete = rec.AllComplete && rep.Complete
		}
		ft := float64(trials)
		rec.MeanCoverageRaw /= ft
		rec.MeanCoverageRepaired /= ft
		rec.MeanDropped /= ft
		rec.MeanRepaired /= ft
		rec.MeanRepairRounds /= ft
		rec.MeanRepairIterations /= ft
		rec.RepairOverhead = rec.MeanRepairRounds / float64(rec.ScheduleRounds)
		out = append(out, rec)
	}
	return out, nil
}

// measurePermanent runs the deterministic permanent-fault matrix on one
// topology instance: a single dead link of processor 0, every link of
// processor 0 dead (isolating it — observationally a crash, which is how
// the suspicion tracker attributes it), and a crash-stop of processor 0
// before round 0.
func measurePermanent(kind string, n, budget int, watch multigossip.RoundObserver) ([]permRecord, error) {
	nw := buildNetwork(kind, n)
	plan, err := nw.PlanGossip()
	if err != nil {
		return nil, err
	}
	procs := nw.Processors()
	var neigh []int // processor 0's neighbours, by link probing
	for v := 1; v < procs; v++ {
		if nw.HasLink(0, v) {
			neigh = append(neigh, v)
		}
	}
	type scenario struct {
		name, faults string
		opts         []multigossip.FaultOption
	}
	scens := []scenario{
		{
			name:   "dead-link",
			faults: fmt.Sprintf("link (0,%d) permanently dead", neigh[0]),
			opts:   []multigossip.FaultOption{multigossip.WithDeadLink(0, neigh[0])},
		},
		{
			name:   "crash-stop",
			faults: "processor 0 crash-stopped before round 0",
			opts:   []multigossip.FaultOption{multigossip.WithCrashStop(0, 0)},
		},
	}
	isolate := scenario{
		name:   "dead-links-isolate",
		faults: fmt.Sprintf("all %d links of processor 0 permanently dead", len(neigh)),
	}
	for _, v := range neigh {
		isolate.opts = append(isolate.opts, multigossip.WithDeadLink(0, v))
	}
	scens = append(scens, isolate)
	var out []permRecord
	for _, sc := range scens {
		opts := append([]multigossip.FaultOption{multigossip.WithRepairBudget(budget)}, sc.opts...)
		if watch != nil {
			opts = append(opts, multigossip.WithObserver(watch))
		}
		rep, err := plan.ExecuteWithFaults(opts...)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", sc.name, err)
		}
		rec := permRecord{
			Topology:          kind,
			N:                 procs,
			Scenario:          sc.name,
			Faults:            sc.faults,
			RepairBudget:      budget,
			CoverageRaw:       rep.Coverage,
			FinalCoverage:     rep.FinalCoverage,
			ReachableCoverage: rep.ReachableCoverage,
			UnreachablePairs:  len(rep.Unreachable),
			QuarantinedLinks:  make([][2]int, 0, len(rep.QuarantinedLinks)),
			DownProcessors:    rep.DownProcessors,
			Components:        rep.Components,
			RepairIterations:  rep.RepairIterations,
			RepairRounds:      rep.RepairRounds,
			Stalled:           rep.Stalled,
		}
		if rec.DownProcessors == nil {
			rec.DownProcessors = []int{}
		}
		for _, l := range rep.QuarantinedLinks {
			rec.QuarantinedLinks = append(rec.QuarantinedLinks, [2]int{l.U, l.V})
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseList[T any](s string, parse func(string) (T, error)) ([]T, error) {
	var out []T
	for _, f := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	out := flag.String("out", "BENCH_fault.json", "output path for the fault record")
	sizes := flag.String("sizes", "256,1024", "comma-separated processor counts")
	rates := flag.String("rates", "0,0.001,0.01,0.05", "comma-separated per-delivery loss probabilities")
	trials := flag.Int("trials", 3, "seeded executions averaged per (topology, size, rate)")
	budget := flag.Int("budget", 64, "repair iteration budget (each iteration costs at most the diameter in rounds)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline of every execution to this path")
	metricsPath := flag.String("metrics", "", "write the aggregated gossip_* metrics in Prometheus text format to this path")
	flag.Parse()

	ns, err := parseList(*sizes, strconv.Atoi)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultbench: -sizes: %v\n", err)
		os.Exit(2)
	}
	ps, err := parseList(*rates, func(s string) (float64, error) { return strconv.ParseFloat(s, 64) })
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultbench: -rates: %v\n", err)
		os.Exit(2)
	}
	if *trials < 1 {
		fmt.Fprintln(os.Stderr, "faultbench: -trials must be >= 1")
		os.Exit(2)
	}
	if *budget < 1 {
		fmt.Fprintln(os.Stderr, "faultbench: -budget must be >= 1")
		os.Exit(2)
	}

	var tracer *multigossip.Tracer
	var metrics *multigossip.Metrics
	var watch multigossip.RoundObserver
	if *tracePath != "" {
		tracer = multigossip.NewTracer()
		watch = multigossip.MultiObserver(watch, tracer)
	}
	if *metricsPath != "" {
		metrics = multigossip.NewMetrics()
		watch = multigossip.MultiObserver(watch, multigossip.InstrumentMetrics(metrics))
	}

	rep := report{
		Tool:       "cmd/faultbench",
		Benchmark:  "ConcurrentUpDown under Bernoulli link loss: coverage before/after repair and repair overhead",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	fmt.Printf("%-8s %6s %8s %9s %9s %8s %9s %7s %8s\n",
		"topology", "n", "loss", "raw cov", "final", "dropped", "rep.rnds", "iters", "overhead")
	for _, kind := range []string{"ring", "grid", "random"} {
		for _, n := range ns {
			recs, err := measure(kind, n, ps, *trials, *budget, watch)
			if err != nil {
				fmt.Fprintf(os.Stderr, "faultbench: %s n=%d: %v\n", kind, n, err)
				os.Exit(1)
			}
			for _, r := range recs {
				rep.Cases = append(rep.Cases, r)
				fmt.Printf("%-8s %6d %8.4f %9.5f %9.5f %8.1f %9.1f %7.1f %8.4f\n",
					r.Topology, r.N, r.LossRate, r.MeanCoverageRaw, r.MeanCoverageRepaired,
					r.MeanDropped, r.MeanRepairRounds, r.MeanRepairIterations, r.RepairOverhead)
			}
		}
	}

	fmt.Printf("\n%-8s %6s %-18s %9s %9s %9s %7s %6s %6s %7s\n",
		"topology", "n", "scenario", "raw cov", "final", "reach", "unreach", "quar", "comps", "stalled")
	for _, kind := range []string{"ring", "grid", "random"} {
		for _, n := range ns {
			recs, err := measurePermanent(kind, n, *budget, watch)
			if err != nil {
				fmt.Fprintf(os.Stderr, "faultbench: %s n=%d: %v\n", kind, n, err)
				os.Exit(1)
			}
			for _, r := range recs {
				rep.PermanentFaults = append(rep.PermanentFaults, r)
				fmt.Printf("%-8s %6d %-18s %9.5f %9.5f %9.5f %7d %6d %6d %7v\n",
					r.Topology, r.N, r.Scenario, r.CoverageRaw, r.FinalCoverage,
					r.ReachableCoverage, r.UnreachablePairs,
					len(r.QuarantinedLinks)+len(r.DownProcessors), r.Components, r.Stalled)
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "faultbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if tracer != nil {
		if err := writeTo(*tracePath, tracer.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *tracePath)
	}
	if metrics != nil {
		if err := writeTo(*metricsPath, metrics.WritePrometheus); err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: -metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsPath)
	}
}

// writeTo streams an exporter into a freshly created file.
func writeTo(path string, dump func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
