// Command verify checks an externally produced gossip schedule (the JSON
// shape written by `gossip -show json` or Plan.ScheduleJSON) against a
// topology and the communication model, reporting validity, completion
// time, and statistics. This closes the interop loop: any tool can emit
// schedules, and this binary is the referee.
//
//	gossip -topology ring -n 8 -show json > ring.json
//	verify -topology ring -n 8 -in ring.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"multigossip"
	"multigossip/internal/cliutil"
)

func main() {
	var (
		topology = flag.String("topology", "ring", cliutil.Topologies)
		n        = flag.Int("n", 16, "processor count")
		rows     = flag.Int("rows", 4, "mesh/torus rows")
		cols     = flag.Int("cols", 4, "mesh/torus columns")
		dim      = flag.Int("d", 4, "hypercube dimension")
		p        = flag.Float64("p", 0.1, "random network edge probability")
		radio    = flag.Float64("radio", 0.2, "sensor field radio range")
		seed     = flag.Int64("seed", 1, "random topology seed")
		file     = flag.String("file", "", "edge-list file for -topology custom")
		in       = flag.String("in", "", "schedule JSON file (default stdin)")
	)
	flag.Parse()

	nw, err := cliutil.Build(*topology, cliutil.Params{
		N: *n, Rows: *rows, Cols: *cols, Dim: *dim,
		P: *p, Radio: *radio, Seed: *seed, File: *file,
	})
	if err != nil {
		fail(err)
	}

	var data []byte
	if *in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		fail(err)
	}

	report, err := multigossip.VerifyScheduleJSON(nw, data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify: INVALID:", err)
		os.Exit(1)
	}
	fmt.Println(report)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "verify:", err)
	os.Exit(1)
}
