// Command matrixbench runs the algorithm portfolio through a unified
// scenario matrix — every registered algorithm × topology × fault model ×
// size — and records the outcome in a machine-readable perf record
// (BENCH_matrix.json by default).
//
// Every cell is asserted against the algorithm's registered rounds bound:
// the planned schedule (or, for randomized coded gossip, the realized run)
// must finish within Bound(n, radius, diameter, ...) or the tool exits
// non-zero. Fault-free cells additionally re-verify the plan under the
// model; lossy cells execute the plan with link loss and self-healing
// repair and require completion. The matrix is the repo's standing
// evidence that every entry in the registry actually plans, verifies and
// survives faults on every topology class — not just the pair of
// algorithms the seed shipped with.
//
//	go run ./cmd/matrixbench -out BENCH_matrix.json
//	go run ./cmd/matrixbench -smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"multigossip"
	"multigossip/internal/algebraic"
	"multigossip/internal/algo"
	"multigossip/internal/graph"
)

const (
	lossRate  = 0.1
	faultSeed = 42
	algoSeed  = 7
)

type cell struct {
	Algorithm   string `json:"algorithm"`
	Topology    string `json:"topology"`
	FaultModel  string `json:"fault_model"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Radius      int    `json:"radius"`
	Diameter    int    `json:"diameter"`
	Rounds      int    `json:"rounds"`
	Bound       int    `json:"bound"`
	BoundName   string `json:"bound_name"`
	WithinBound bool   `json:"within_bound"`
	Verified    bool   `json:"verified"`
	// Fault-model columns: zero-valued for the fault-free model.
	Coverage      float64 `json:"coverage,omitempty"`
	FinalCoverage float64 `json:"final_coverage,omitempty"`
	RepairRounds  int     `json:"repair_rounds,omitempty"`
	TotalRounds   int     `json:"total_rounds,omitempty"`
	Complete      bool    `json:"complete"`
	PlanMillis    float64 `json:"plan_millis"`
}

type report struct {
	Tool        string   `json:"tool"`
	Benchmark   string   `json:"benchmark"`
	GoVersion   string   `json:"go_version"`
	NumCPU      int      `json:"num_cpu"`
	LossRate    float64  `json:"loss_rate"`
	Algorithms  []string `json:"algorithms"`
	Topologies  []string `json:"topologies"`
	FaultModels []string `json:"fault_models"`
	Sizes       []int    `json:"sizes"`
	Cells       []cell   `json:"cells"`
}

// buildPair constructs the same topology twice: once as the library-facing
// Network (what a serving process plans against) and once as the internal
// graph (what the coded-gossip simulator consumes for lossy cells). The
// random topology retries seeds until connected so every cell is plannable.
func buildPair(kind string, n int) (*multigossip.Network, *graph.Graph) {
	var g *graph.Graph
	switch kind {
	case "ring":
		g = graph.Cycle(n)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		g = graph.Grid(side, side)
	case "random":
		rng := rand.New(rand.NewSource(int64(n)))
		g = graph.RandomConnected(rng, n, 4/float64(n))
	default:
		panic("unknown topology " + kind)
	}
	nw := multigossip.NewNetwork(g.N())
	for _, e := range g.Edges() {
		nw.AddLink(e.U, e.V)
	}
	return nw, g
}

// run evaluates one matrix cell and asserts its rounds bound.
func run(info multigossip.AlgorithmInfo, kind, fm string, n int) (cell, error) {
	nw, g := buildPair(kind, n)
	begin := time.Now()
	plan, err := nw.PlanGossip(
		multigossip.WithAlgorithm(info.ID), multigossip.WithSeed(algoSeed))
	planMS := float64(time.Since(begin).Microseconds()) / 1000
	if err != nil {
		return cell{}, fmt.Errorf("%s/%s/n=%d: plan: %w", info.Name, kind, n, err)
	}
	c := cell{
		Algorithm:  info.Name,
		Topology:   kind,
		FaultModel: fm,
		N:          nw.Processors(),
		M:          nw.Links(),
		Radius:     nw.Radius(),
		Diameter:   nw.Diameter(),
		Rounds:     plan.Rounds(),
		BoundName:  info.BoundName,
		PlanMillis: planMS,
	}
	c.Bound = info.Bound(multigossip.AlgorithmBoundParams{
		N: c.N, Radius: plan.Radius(), Diameter: c.Diameter,
		Messages: c.N, ExpandedRadius: plan.Radius(),
	})
	c.WithinBound = c.Rounds <= c.Bound
	if !c.WithinBound {
		return c, fmt.Errorf("%s/%s/%s/n=%d: %d rounds exceeds %s bound %d",
			info.Name, kind, fm, n, c.Rounds, c.BoundName, c.Bound)
	}
	switch fm {
	case "none":
		if err := plan.Verify(); err != nil {
			return c, fmt.Errorf("%s/%s/n=%d: verify: %w", info.Name, kind, n, err)
		}
		c.Verified, c.Complete = true, true
	case "loss":
		if !info.FaultExecutable {
			// Coded gossip has no transmission schedule to inject faults
			// into; its loss cell reruns the simulator with lossy links and
			// holds the realized run to the same registered bound.
			res, err := algebraic.Run(g, algebraic.Options{Seed: algoSeed, LossRate: lossRate})
			if err != nil {
				return c, fmt.Errorf("%s/%s/n=%d: lossy run: %w", info.Name, kind, n, err)
			}
			c.Rounds, c.TotalRounds = res.Rounds, res.Rounds
			c.Coverage, c.FinalCoverage = 1, 1
			c.WithinBound = c.Rounds <= c.Bound
			c.Verified, c.Complete = true, true
			if !c.WithinBound {
				return c, fmt.Errorf("%s/%s/loss/n=%d: %d realized rounds exceeds bound %d",
					info.Name, kind, n, c.Rounds, c.Bound)
			}
			return c, nil
		}
		rep, err := plan.ExecuteWithFaults(multigossip.WithLinkLoss(lossRate, faultSeed))
		if err != nil {
			return c, fmt.Errorf("%s/%s/n=%d: execute: %w", info.Name, kind, n, err)
		}
		c.Coverage, c.FinalCoverage = rep.Coverage, rep.FinalCoverage
		c.RepairRounds, c.TotalRounds = rep.RepairRounds, rep.TotalRounds
		c.Verified, c.Complete = true, rep.Complete
		if !rep.Complete {
			return c, fmt.Errorf("%s/%s/loss/n=%d: repair did not complete (final coverage %.4f)",
				info.Name, kind, n, rep.FinalCoverage)
		}
	default:
		return c, fmt.Errorf("unknown fault model %q", fm)
	}
	return c, nil
}

func main() {
	out := flag.String("out", "BENCH_matrix.json", "output path for the perf record")
	sizes := flag.String("sizes", "16,36,64", "comma-separated processor counts (squares keep the grid square)")
	smoke := flag.Bool("smoke", false, "small sizes, no record written unless -out is set explicitly")
	flag.Parse()

	if *smoke && *sizes == "16,36,64" {
		*sizes = "9,16"
	}
	var ns []int
	for _, f := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 4 {
			fmt.Fprintf(os.Stderr, "matrixbench: bad size %q (want integers >= 4)\n", f)
			os.Exit(2)
		}
		ns = append(ns, n)
	}

	topologies := []string{"ring", "grid", "random"}
	faultModels := []string{"none", "loss"}
	infos := multigossip.Algorithms()

	rep := report{
		Tool:        "cmd/matrixbench",
		Benchmark:   "algorithm portfolio scenario matrix: registered rounds-bound assertion per cell",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		LossRate:    lossRate,
		Topologies:  topologies,
		FaultModels: faultModels,
		Sizes:       ns,
	}
	for _, info := range infos {
		rep.Algorithms = append(rep.Algorithms, info.Name)
	}

	fmt.Printf("%-16s %-7s %-5s %5s %7s %7s %9s %6s\n",
		"algorithm", "topo", "fault", "n", "rounds", "bound", "complete", "ms")
	failed := 0
	for _, info := range infos {
		for _, kind := range topologies {
			for _, fm := range faultModels {
				for _, n := range ns {
					c, err := run(info, kind, fm, n)
					if err != nil {
						fmt.Fprintf(os.Stderr, "matrixbench: FAIL %v\n", err)
						failed++
					}
					rep.Cells = append(rep.Cells, c)
					fmt.Printf("%-16s %-7s %-5s %5d %7d %7d %9t %6.1f\n",
						c.Algorithm, c.Topology, c.FaultModel, c.N, c.Rounds, c.Bound, c.Complete, c.PlanMillis)
				}
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "matrixbench: %d cell(s) failed their assertion\n", failed)
		os.Exit(1)
	}
	fmt.Printf("matrix: %d algorithms x %d topologies x %d fault models x %d sizes = %d cells, all within bounds\n",
		len(infos), len(topologies), len(faultModels), len(ns), len(rep.Cells))

	if *smoke {
		// Smoke mode only asserts; the checked-in record comes from the
		// full run (make matrix-record).
		return
	}
	// Consistency check: the registry, the matrix and the library agree on
	// the algorithm count (paranoia against a half-registered entry).
	if len(infos) != len(algo.Registry()) {
		fmt.Fprintln(os.Stderr, "matrixbench: facade and registry disagree on algorithm count")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "matrixbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
