// Command experiments regenerates every experiment of the reproduction —
// each figure, table and bound of the paper — and writes the EXPERIMENTS.md
// report to stdout (or to the file given with -o).
//
//	go run ./cmd/experiments -o EXPERIMENTS.md
//
// The suite is deterministic: a fixed seed drives every random workload, so
// consecutive runs produce identical reports.
//
// Profiling hooks: -cpuprofile and -memprofile write pprof profiles of the
// suite run (go tool pprof <file>), and -pprof serves the live
// net/http/pprof endpoints on the given address for the duration of the
// run, e.g.
//
//	go run ./cmd/experiments -parallel -cpuprofile cpu.pprof
//	go run ./cmd/experiments -pprof localhost:6060   # then /debug/pprof/
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"

	"multigossip/internal/expt"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Int64("seed", 0, "override the workload seed (0 = default)")
	parallel := flag.Bool("parallel", false, "run the experiments concurrently (identical output)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the suite run to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (host:port) while the suite runs")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			}
		}()
	}

	suite := expt.NewSuite()
	if *seed != 0 {
		suite.Seed = *seed
	}
	var report string
	if *parallel {
		report = suite.RenderParallel()
	} else {
		report = suite.Render()
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			os.Exit(1)
		}
	}

	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
