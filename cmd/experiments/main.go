// Command experiments regenerates every experiment of the reproduction —
// each figure, table and bound of the paper — and writes the EXPERIMENTS.md
// report to stdout (or to the file given with -o).
//
//	go run ./cmd/experiments -o EXPERIMENTS.md
//
// The suite is deterministic: a fixed seed drives every random workload, so
// consecutive runs produce identical reports.
package main

import (
	"flag"
	"fmt"
	"os"

	"multigossip/internal/expt"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Int64("seed", 0, "override the workload seed (0 = default)")
	parallel := flag.Bool("parallel", false, "run the experiments concurrently (identical output)")
	flag.Parse()

	suite := expt.NewSuite()
	if *seed != 0 {
		suite.Seed = *seed
	}
	var report string
	if *parallel {
		report = suite.RenderParallel()
	} else {
		report = suite.Render()
	}

	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
