package main

import (
	"fmt"
	"time"

	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

func main() {
	for _, n := range []int{2000, 8000, 32000} {
		g := graph.Cycle(n)
		tree, err := spantree.MinDepth(g)
		if err != nil {
			panic(err)
		}
		p := implicit.New(spantree.Label(tree))
		var buf []schedule.Transmission
		start := time.Now()
		total := 0
		for t := 0; t < p.Rounds(); t++ {
			buf = p.RoundAppend(t, buf[:0])
			total += len(buf)
		}
		el := time.Since(start)
		fmt.Printf("ring n=%d rounds=%d height=%d sweep=%v (%v/round) tx=%d\n", n, p.Rounds(), p.Height(), el, el/time.Duration(p.Rounds()), total)
	}
}
