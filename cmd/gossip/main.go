// Command gossip builds and inspects gossip communication schedules under
// the multicasting model from the command line.
//
// Examples:
//
//	gossip -topology ring -n 16                     # plan + summary
//	gossip -topology fig4 -show tree                # Fig. 5 spanning tree
//	gossip -topology fig4 -show table -vertex 4     # paper's Table 3
//	gossip -topology mesh -rows 4 -cols 5 -show rounds
//	gossip -topology sensor -n 50 -radio 0.2 -algo simple -show stats
//	gossip -topology random -n 24 -p 0.1 -show dot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multigossip"
	"multigossip/internal/cliutil"
)

func main() {
	defer cliutil.Recover("gossip")
	var (
		topology = flag.String("topology", "ring", cliutil.Topologies)
		n        = flag.Int("n", 16, "processor count (line/ring/star/complete/random/sensor/tree)")
		rows     = flag.Int("rows", 4, "mesh/torus rows")
		cols     = flag.Int("cols", 4, "mesh/torus columns")
		dim      = flag.Int("d", 4, "hypercube dimension")
		p        = flag.Float64("p", 0.1, "random network edge probability")
		radio    = flag.Float64("radio", 0.2, "sensor field radio range")
		seed     = flag.Int64("seed", 1, "random topology seed")
		file     = flag.String("file", "", "edge-list file for -topology custom")
		algo     = flag.String("algo", "cud", "cud (ConcurrentUpDown, n+r) | simple (2n+r-3)")
		op       = flag.String("op", "gossip", "gossip | broadcast | gather | scatter (source/target via -vertex)")
		show     = flag.String("show", "summary", "summary|rounds|tree|table|stats|dot|json")
		vertex   = flag.Int("vertex", 0, "processor for -show table")
	)
	flag.Parse()

	nw, err := cliutil.Build(*topology, cliutil.Params{
		N: *n, Rows: *rows, Cols: *cols, Dim: *dim,
		P: *p, Radio: *radio, Seed: *seed, File: *file,
	})
	if err != nil {
		fail(err)
	}

	if *op != "gossip" {
		runCollective(nw, *op, *vertex)
		return
	}

	opt := multigossip.WithAlgorithm(multigossip.ConcurrentUpDown)
	switch strings.ToLower(*algo) {
	case "cud", "concurrentupdown":
	case "simple":
		opt = multigossip.WithAlgorithm(multigossip.Simple)
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	plan, err := nw.PlanGossip(opt)
	if err != nil {
		fail(err)
	}
	if err := plan.Verify(); err != nil {
		fail(fmt.Errorf("internal error: produced schedule failed verification: %w", err))
	}

	switch *show {
	case "summary":
		fmt.Printf("topology=%s processors=%d links=%d radius=%d\n",
			*topology, nw.Processors(), nw.Links(), nw.Radius())
		fmt.Printf("algorithm=%s rounds=%d lowerBound=%d\n", *algo, plan.Rounds(), nw.LowerBound())
		fmt.Println("schedule verified: every processor receives all messages")
	case "rounds":
		for t := 0; t < plan.Rounds(); t++ {
			fmt.Printf("t=%d:", t)
			for _, tx := range plan.Round(t) {
				fmt.Printf(" %d->%v:m%d", tx.From, tx.To, tx.Message)
			}
			fmt.Println()
		}
	case "tree":
		fmt.Print(plan.TreeString())
	case "table":
		if *vertex < 0 || *vertex >= nw.Processors() {
			fail(fmt.Errorf("vertex %d out of range", *vertex))
		}
		fmt.Print(plan.TimetableOf(*vertex))
	case "stats":
		fmt.Println(plan.Stats())
	case "dot":
		fmt.Print(nw.DOT("gossip"))
	case "json":
		text, err := plan.ScheduleJSON()
		if err != nil {
			fail(err)
		}
		fmt.Println(text)
	default:
		fail(fmt.Errorf("unknown -show %q", *show))
	}
}

// runCollective plans the non-gossip operations and prints a summary.
func runCollective(nw *multigossip.Network, op string, vertex int) {
	if vertex < 0 || vertex >= nw.Processors() {
		fail(fmt.Errorf("vertex %d out of range", vertex))
	}
	switch strings.ToLower(op) {
	case "broadcast":
		plan, err := nw.PlanBroadcast(vertex)
		if err != nil {
			fail(err)
		}
		if err := plan.Verify(); err != nil {
			fail(err)
		}
		fmt.Printf("broadcast from %d: %d rounds (= eccentricity)\n", vertex, plan.Rounds())
	case "gather":
		plan, err := nw.PlanGather(vertex)
		if err != nil {
			fail(err)
		}
		if err := plan.Verify(); err != nil {
			fail(err)
		}
		fmt.Printf("gather to %d: %d rounds (= n-1, optimal)\n", vertex, plan.Rounds())
	case "scatter":
		plan, err := nw.PlanScatter(vertex)
		if err != nil {
			fail(err)
		}
		if err := plan.Verify(); err != nil {
			fail(err)
		}
		fmt.Printf("scatter from %d: %d rounds (= n-1, optimal)\n", vertex, plan.Rounds())
	default:
		fail(fmt.Errorf("unknown -op %q", op))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gossip:", err)
	os.Exit(1)
}
