// Command planbench measures the implicit O(n) plan encoding against the
// materialised O(n²) schedule and records the comparison in a
// machine-readable perf record (BENCH_plan.json by default).
//
// For every topology in {ring, grid, random} and every size in -sizes it
// builds the minimum-depth spanning tree once, then times three things from
// that tree: constructing the implicit plan (DFS labelling plus the packed
// interval/level/lip arrays), constructing the materialised schedule (the
// full round-by-round builder plus the remap to original ids), and the
// first-round latency of each — the wall time from holding the tree to
// holding round 0's transmissions. It also reports the resident bytes of
// both encodings and their ratio, the headline of the record: the implicit
// plan answers the same queries bit-identically from ~28n bytes while the
// materialised schedule stores Θ(n²) destination ids.
//
// Sizes in -big run the implicit side only (the materialised schedule at
// n = 10⁶ would be ~8 TB): a seeded random recursive tree is labelled and
// encoded in memory, proving million-vertex construction fits comfortably
// in RAM and stays O(n) in both time and space.
//
// With -smoke the command runs the CI differential gate instead of the
// benchmark: on a seeded random connected graph at n = 4096 every round of
// the implicit plan is compared bit-for-bit against the materialised
// builder, a sample of vertex timetables is checked against the
// materialised VertexView, the ≥100x byte-ratio acceptance floor is
// asserted, and an n = 10⁵ implicit plan is constructed and probed. The
// Makefile runs this under GOMEMLIMIT so a space regression in either
// encoding fails the gate.
//
//	go run ./cmd/planbench -out BENCH_plan.json
//	GOMEMLIMIT=1GiB go run ./cmd/planbench -smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

type record struct {
	Topology                 string  `json:"topology"`
	N                        int     `json:"n"`
	M                        int     `json:"m"`
	Height                   int     `json:"height"`
	Rounds                   int     `json:"rounds"`
	ImplicitBytes            int64   `json:"implicit_bytes"`
	MaterialisedBytes        int64   `json:"materialised_bytes"`
	BytesRatio               float64 `json:"bytes_ratio"`
	ImplicitBuildNs          int64   `json:"implicit_build_ns"`
	MaterialisedBuildNs      int64   `json:"materialised_build_ns"`
	ImplicitFirstRoundNs     int64   `json:"implicit_first_round_ns"`
	MaterialisedFirstRoundNs int64   `json:"materialised_first_round_ns"`
	RoundAppendNsPerRound    int64   `json:"round_append_ns_per_round"`
}

type bigRecord struct {
	N              int     `json:"n"`
	Height         int     `json:"height"`
	Rounds         int     `json:"rounds"`
	ImplicitBytes  int64   `json:"implicit_bytes"`
	BytesPerVertex float64 `json:"bytes_per_vertex"`
	BuildNs        int64   `json:"build_ns"`
	FirstRoundNs   int64   `json:"first_round_ns"`
}

type report struct {
	Tool         string      `json:"tool"`
	Benchmark    string      `json:"benchmark"`
	GoMaxProcs   int         `json:"gomaxprocs"`
	NumCPU       int         `json:"num_cpu"`
	GoVersion    string      `json:"go_version"`
	Cases        []record    `json:"cases"`
	ImplicitOnly []bigRecord `json:"implicit_only"`
}

func buildGraph(kind string, n int) *graph.Graph {
	switch kind {
	case "ring":
		return graph.Cycle(n)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return graph.Grid(side, side)
	case "random":
		rng := rand.New(rand.NewSource(int64(n)))
		return graph.RandomConnected(rng, n, 8/float64(n))
	}
	panic("unknown topology " + kind)
}

// randomRecursiveParents is the -big tree generator: vertex i attaches to a
// uniform earlier vertex, giving expected height Θ(log n) so the schedule
// length stays near the paper's n + r bound with small r.
func randomRecursiveParents(rng *rand.Rand, n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
	}
	return parent
}

// materialisedBytes applies the cache accounting to a schedule: the round
// slice headers, the transmission structs, and every destination id.
func materialisedBytes(s *schedule.Schedule) int64 {
	const word = 8
	b := int64(len(s.Rounds)) * 3 * word
	for _, r := range s.Rounds {
		b += int64(len(r)) * 5 * word
		for _, tx := range r {
			b += int64(len(tx.To)) * word
		}
	}
	return b
}

// best times f reps times and returns the fastest run in nanoseconds.
func best(reps int, f func()) int64 {
	fastest := int64(math.MaxInt64)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start).Nanoseconds(); d < fastest {
			fastest = d
		}
	}
	return fastest
}

func materialise(l *spantree.Labeled) *schedule.Schedule {
	return core.RemapToOriginal(core.BuildConcurrentUpDown(l), l)
}

func equalRound(got, want []schedule.Transmission) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func measure(kind string, n, reps int) record {
	g := buildGraph(kind, n)
	tree, err := spantree.MinDepth(g)
	if err != nil {
		panic(err)
	}

	var plan *implicit.Plan
	implicitBuild := best(reps, func() {
		plan = implicit.New(spantree.Label(tree))
	})
	var s *schedule.Schedule
	matBuild := best(reps, func() {
		s = materialise(spantree.Label(tree))
	})

	// First-round latency: tree in hand -> round 0's transmissions readable.
	var buf []schedule.Transmission
	implicitFirst := best(reps, func() {
		p := implicit.New(spantree.Label(tree))
		buf = p.RoundAppend(0, buf[:0])
	})
	var first []schedule.Transmission
	matFirst := best(reps, func() {
		first = materialise(spantree.Label(tree)).Rounds[0]
	})

	// Spot-check equivalence so the record can never describe two encodings
	// that have drifted apart (the test suite owns the exhaustive check).
	for _, t := range []int{0, plan.Rounds() / 2, plan.Rounds() - 1} {
		buf = plan.RoundAppend(t, buf[:0])
		var want []schedule.Transmission
		if t >= 0 && t < len(s.Rounds) {
			want = s.Rounds[t]
		}
		if !equalRound(buf, want) {
			panic(fmt.Sprintf("planbench: %s n=%d round %d diverges from the materialised schedule", kind, n, t))
		}
	}
	_ = first

	// Steady-state query cost averaged over the whole schedule.
	rounds := plan.Rounds()
	start := time.Now()
	for t := 0; t < rounds; t++ {
		buf = plan.RoundAppend(t, buf[:0])
	}
	perRound := time.Since(start).Nanoseconds() / int64(rounds)

	ib, mb := plan.SizeBytes(), materialisedBytes(s)
	return record{
		Topology:                 kind,
		N:                        g.N(),
		M:                        g.M(),
		Height:                   tree.Height,
		Rounds:                   rounds,
		ImplicitBytes:            ib,
		MaterialisedBytes:        mb,
		BytesRatio:               float64(mb) / float64(ib),
		ImplicitBuildNs:          implicitBuild,
		MaterialisedBuildNs:      matBuild,
		ImplicitFirstRoundNs:     implicitFirst,
		MaterialisedFirstRoundNs: matFirst,
		RoundAppendNsPerRound:    perRound,
	}
}

func measureBig(n int) bigRecord {
	rng := rand.New(rand.NewSource(int64(n)))
	parent := randomRecursiveParents(rng, n)
	var plan *implicit.Plan
	buildNs := best(1, func() {
		plan = implicit.New(spantree.Label(spantree.MustFromParents(parent)))
	})
	var buf []schedule.Transmission
	firstNs := best(1, func() {
		buf = plan.RoundAppend(0, buf[:0])
	})
	if len(buf) == 0 {
		panic(fmt.Sprintf("planbench: empty round 0 at n=%d", n))
	}
	return bigRecord{
		N:              plan.N(),
		Height:         plan.Height(),
		Rounds:         plan.Rounds(),
		ImplicitBytes:  plan.SizeBytes(),
		BytesPerVertex: float64(plan.SizeBytes()) / float64(plan.N()),
		BuildNs:        buildNs,
		FirstRoundNs:   firstNs,
	}
}

// smoke is the CI gate: exhaustive round-by-round differential at n = 4096,
// a timetable sample, the 100x byte-ratio floor, and a 10⁵-vertex implicit
// construction. Returns an error instead of writing a record.
func smoke() error {
	const n = 4096
	rng := rand.New(rand.NewSource(n))
	g := graph.RandomConnected(rng, n, 8.0/n)
	tree, err := spantree.MinDepth(g)
	if err != nil {
		return err
	}
	l := spantree.Label(tree)
	plan := implicit.New(l)
	s := materialise(l)
	if plan.Rounds() != s.Time() {
		return fmt.Errorf("rounds %d != materialised %d", plan.Rounds(), s.Time())
	}
	var buf []schedule.Transmission
	for t := 0; t <= plan.Rounds(); t++ {
		buf = plan.RoundAppend(t, buf[:0])
		var want []schedule.Transmission
		if t < len(s.Rounds) {
			want = s.Rounds[t]
		}
		if !equalRound(buf, want) {
			return fmt.Errorf("round %d diverges from the materialised schedule", t)
		}
	}
	origTree := spantree.MustFromParents(treeParentsInOriginalIDs(l))
	for i := 0; i < 8; i++ {
		v := rng.Intn(n)
		if !reflect.DeepEqual(plan.Timetable(v), schedule.VertexView(s, origTree, v)) {
			return fmt.Errorf("timetable of vertex %d diverges from the materialised view", v)
		}
	}
	ib, mb := plan.SizeBytes(), materialisedBytes(s)
	if ratio := mb / ib; ratio < 100 {
		return fmt.Errorf("materialised/implicit byte ratio %dx fell below the 100x floor (implicit %d, materialised %d)", ratio, ib, mb)
	}
	fmt.Printf("plan-smoke: n=%d differential ok over %d rounds; implicit %d B vs materialised %d B (%.0fx)\n",
		n, plan.Rounds()+1, ib, mb, float64(mb)/float64(ib))

	const big = 100_000
	r := measureBig(big)
	fmt.Printf("plan-smoke: n=%d implicit construction ok in %s (%d B, %.1f B/vertex, %d rounds)\n",
		big, time.Duration(r.BuildNs), r.ImplicitBytes, r.BytesPerVertex, r.Rounds)
	return nil
}

// treeParentsInOriginalIDs rebuilds the spanning tree's parent array in
// original vertex ids from the labelling, for VertexView.
func treeParentsInOriginalIDs(l *spantree.Labeled) []int {
	parent := make([]int, l.N())
	for v := range parent {
		c := l.LabelOf[v]
		if p := l.T.Parent[c]; p == -1 {
			parent[v] = -1
		} else {
			parent[v] = l.VertexOf[p]
		}
	}
	return parent
}

func parseSizes(flagName, val string) []int {
	var ns []int
	for _, f := range strings.Split(val, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "planbench: bad -%s value %q\n", flagName, f)
			os.Exit(2)
		}
		ns = append(ns, n)
	}
	return ns
}

func main() {
	out := flag.String("out", "BENCH_plan.json", "output path for the perf record")
	sizes := flag.String("sizes", "1024,4096", "comma-separated vertex counts for the implicit-vs-materialised comparison")
	big := flag.String("big", "100000,1000000", "comma-separated vertex counts for implicit-only construction runs (empty to skip)")
	smokeMode := flag.Bool("smoke", false, "run the CI differential gate instead of the benchmark")
	flag.Parse()

	if *smokeMode {
		if err := smoke(); err != nil {
			fmt.Fprintf(os.Stderr, "planbench: smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep := report{
		Tool:       "cmd/planbench",
		Benchmark:  "implicit O(n) plan encoding vs materialised O(n²) schedule: bytes, construction, first-round latency",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	fmt.Printf("%-8s %7s %7s %12s %14s %8s %13s %13s %12s %14s\n",
		"topology", "n", "rounds", "impl bytes", "mat bytes", "ratio", "impl build", "mat build", "impl rd0", "mat rd0")
	for _, kind := range []string{"ring", "grid", "random"} {
		for _, n := range parseSizes("sizes", *sizes) {
			reps := 3
			if n > 2048 {
				reps = 1
			}
			r := measure(kind, n, reps)
			rep.Cases = append(rep.Cases, r)
			fmt.Printf("%-8s %7d %7d %12d %14d %7.0fx %13d %13d %12d %14d\n",
				r.Topology, r.N, r.Rounds, r.ImplicitBytes, r.MaterialisedBytes, r.BytesRatio,
				r.ImplicitBuildNs, r.MaterialisedBuildNs, r.ImplicitFirstRoundNs, r.MaterialisedFirstRoundNs)
		}
	}
	for _, n := range parseSizes("big", *big) {
		r := measureBig(n)
		rep.ImplicitOnly = append(rep.ImplicitOnly, r)
		fmt.Printf("implicit-only n=%-8d %12d B (%.1f B/vertex)  build %-12s first round %s\n",
			r.N, r.ImplicitBytes, r.BytesPerVertex, time.Duration(r.BuildNs), time.Duration(r.FirstRoundNs))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "planbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
