// Command sweepbench measures the BFS sweep engine against the paper's
// sequential-naive Section 3.1 construction and records the comparison in a
// machine-readable perf record (BENCH_sweep.json by default).
//
// For every topology in {ring, grid, random} and every size in -sizes it
// times the naive loop (a BFS spanning tree from every root, kept if
// shallower) and the pruned parallel sweep behind spantree.MinDepth, and
// reports the engine's observability counters: traversals completed, roots
// pruned by eccentricity lower bounds, traversals short-circuited by the
// best-height cutoff, and the steady-state allocations per traversal of the
// full (unpruned) sweep.
//
// With -trace the run also writes a Chrome trace_event JSON timeline
// (chrome://tracing, Perfetto): one phase span per timed benchmark stage,
// annotated with the measured ns/op and the sweep counters.
//
//	go run ./cmd/sweepbench -out BENCH_sweep.json -trace sweep.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/obs"
	"multigossip/internal/spantree"
)

type record struct {
	Topology            string  `json:"topology"`
	N                   int     `json:"n"`
	M                   int     `json:"m"`
	Radius              int     `json:"radius"`
	NaiveNsOp           int64   `json:"naive_ns_op"`
	PrunedNsOp          int64   `json:"pruned_ns_op"`
	Speedup             float64 `json:"speedup"`
	SeedTraversals      int     `json:"seed_traversals"`
	RootsCompleted      int     `json:"roots_completed"`
	RootsPruned         int     `json:"roots_pruned"`
	RootsShortCircuited int     `json:"roots_short_circuited"`
	Workers             int     `json:"workers"`
	AllocsPerTraversal  float64 `json:"allocs_per_traversal_full_sweep"`
	SweepElapsedNs      int64   `json:"sweep_elapsed_ns"`
}

type report struct {
	Tool       string   `json:"tool"`
	Benchmark  string   `json:"benchmark"`
	GoMaxProcs int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	Cases      []record `json:"cases"`
}

func buildGraph(kind string, n int) *graph.Graph {
	switch kind {
	case "ring":
		return graph.Cycle(n)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return graph.Grid(side, side)
	case "random":
		rng := rand.New(rand.NewSource(int64(n)))
		return graph.RandomConnected(rng, n, 8/float64(n))
	}
	panic("unknown topology " + kind)
}

// naiveMinDepth is the pre-engine O(nm) reference construction.
func naiveMinDepth(g *graph.Graph) *spantree.Tree {
	var best *spantree.Tree
	for root := 0; root < g.N(); root++ {
		t, err := spantree.BFSTree(g, root)
		if err != nil {
			panic(err)
		}
		if best == nil || t.Height < best.Height {
			best = t
		}
	}
	return best
}

func measure(kind string, n int, tracer *obs.Tracer) record {
	g := buildGraph(kind, n)
	span := func(stage string, f func()) {
		if tracer != nil {
			name := fmt.Sprintf("%s %s n=%d", stage, kind, n)
			tracer.BeginPhase(name, "")
			defer tracer.EndPhase(name)
		}
		f()
	}
	var naive, pruned, full testing.BenchmarkResult
	span("naive", func() {
		naive = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naiveMinDepth(g)
			}
		})
	})
	var stats graph.SweepStats
	var height, naiveHeight int
	span("pruned", func() {
		pruned = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, s, err := spantree.MinDepthWithStats(g)
				if err != nil {
					panic(err)
				}
				stats, height = s, tr.Height
			}
		})
	})
	if naiveHeight = naiveMinDepth(g).Height; naiveHeight != height {
		panic(fmt.Sprintf("%s n=%d: pruned height %d != naive height %d", kind, n, height, naiveHeight))
	}
	// Steady-state allocation cost per traversal, measured on the full
	// unpruned sweep where every root runs to completion: total allocations
	// of a sweep divided by its n traversals, so the O(1)-per-sweep setup
	// (CSR + per-worker scratch) amortises out and the per-traversal cost
	// shows as ~0.
	var fullCompleted int
	span("full", func() {
		full = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := g.Sweep(graph.SweepAll)
				if err != nil {
					panic(err)
				}
				fullCompleted = res.Stats.Completed
			}
		})
	})
	return record{
		Topology:            kind,
		N:                   g.N(),
		M:                   g.M(),
		Radius:              height,
		NaiveNsOp:           naive.NsPerOp(),
		PrunedNsOp:          pruned.NsPerOp(),
		Speedup:             float64(naive.NsPerOp()) / float64(pruned.NsPerOp()),
		SeedTraversals:      stats.Seeds,
		RootsCompleted:      stats.Completed,
		RootsPruned:         stats.Pruned,
		RootsShortCircuited: stats.ShortCircuited,
		Workers:             stats.Workers,
		AllocsPerTraversal:  float64(full.AllocsPerOp()) / float64(fullCompleted),
		SweepElapsedNs:      stats.Elapsed.Nanoseconds(),
	}
}

func main() {
	out := flag.String("out", "BENCH_sweep.json", "output path for the perf record")
	sizes := flag.String("sizes", "256,1024,4096", "comma-separated vertex counts")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the benchmark stages to this path")
	flag.Parse()

	var ns []int
	for _, f := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "sweepbench: bad size %q\n", f)
			os.Exit(2)
		}
		ns = append(ns, n)
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}

	rep := report{
		Tool:       "cmd/sweepbench",
		Benchmark:  "spantree.MinDepth: sequential-naive n-BFS loop vs parallel pruned sweep engine",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	fmt.Printf("%-8s %6s %7s %14s %14s %8s %10s %8s %8s %8s\n",
		"topology", "n", "m", "naive ns/op", "pruned ns/op", "speedup", "completed", "pruned", "short", "allocs/t")
	for _, kind := range []string{"ring", "grid", "random"} {
		for _, n := range ns {
			r := measure(kind, n, tracer)
			rep.Cases = append(rep.Cases, r)
			fmt.Printf("%-8s %6d %7d %14d %14d %7.2fx %10d %8d %8d %8.4f\n",
				r.Topology, r.N, r.M, r.NaiveNsOp, r.PrunedNsOp, r.Speedup,
				r.RootsCompleted, r.RootsPruned, r.RootsShortCircuited, r.AllocsPerTraversal)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sweepbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweepbench: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *tracePath)
	}
}
