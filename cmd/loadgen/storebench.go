// storebench.go is loadgen's store/failover benchmark: instead of driving a
// single already-running gossipd, it spawns its own replica fleet over
// per-replica store directories and measures the robustness story end to
// end — cold construction cost, warm-start-from-disk cost after a hard kill
// of every replica, and client-observed availability while one replica dies
// and recovers mid-run.
//
// The kills are SIGKILL on purpose: the store's crash-safety claim is about
// processes that stop between any two instructions, and a graceful drain
// would test nothing. A restarted replica must come back warm (plans load
// from disk, zero rebuilds) and the client's bounded retries must hide the
// outage almost completely (the -assert gate requires >= 99.9% success).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

type storeBenchConfig struct {
	bin      string
	replicas int
	coldKeys int
	n        int
	rate     float64
	failover time.Duration
	retries  int
	seed     int64
	out      string
	assert   bool
	ready    time.Duration
}

// replica is one spawned gossipd process and the state needed to kill and
// resurrect it over the same store directory.
type replica struct {
	addr  string
	url   string
	store string
	cmd   *exec.Cmd
}

type tailQuantiles struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

// storeRecord is the BENCH_store.json shape.
type storeRecord struct {
	Config struct {
		Replicas    int     `json:"replicas"`
		ColdKeys    int     `json:"cold_keys"`
		N           int     `json:"n"`
		Rate        float64 `json:"rate_per_s"`
		FailoverDur string  `json:"failover_duration"`
		Retries     int     `json:"retries"`
		Seed        int64   `json:"seed"`
	} `json:"config"`

	// Cold: every key requested once against empty caches and stores.
	Cold struct {
		Keys          int           `json:"keys"`
		Misses        int64         `json:"misses"`
		LatencyMS     tailQuantiles `json:"latency_ms"`
		ServerPlanMS  tailQuantiles `json:"server_plan_ms"`
		StoreWrites   int64         `json:"store_writes"`
		StoreDegraded bool          `json:"store_degraded"`
	} `json:"cold"`

	// Warm: every replica SIGKILLed and restarted over its store directory,
	// then every key requested once again. Misses must be zero — the whole
	// working set comes back from disk.
	Warm struct {
		Keys         int           `json:"keys"`
		Misses       int64         `json:"misses"`
		DiskHits     int64         `json:"disk_hits"`
		LatencyMS    tailQuantiles `json:"latency_ms"`
		ServerPlanMS tailQuantiles `json:"server_plan_ms"`
		// SpeedupP50 is cold construction p50 over warm disk-load p50, as
		// the server measured both in-handler.
		SpeedupP50 float64 `json:"speedup_p50"`
	} `json:"warm"`

	// Failover: open-loop load with bounded retries while one replica is
	// killed at one third of the run and restarted at two thirds.
	Failover struct {
		Requests      int           `json:"requests"`
		Succeeded     int           `json:"succeeded"`
		SuccessRate   float64       `json:"success_rate"`
		RetriesUsed   int           `json:"retries_used"`
		KilledReplica string        `json:"killed_replica"`
		DownMS        float64       `json:"down_ms"`
		RecoveryMS    float64       `json:"recovery_ms"`
		LatencyMS     tailQuantiles `json:"latency_ms"`
	} `json:"failover"`
}

func runStoreBench(cfg storeBenchConfig) error {
	if cfg.replicas < 1 {
		cfg.replicas = 1
	}
	if cfg.retries < 0 {
		cfg.retries = 0
	}
	root, err := os.MkdirTemp("", "gossipd-storebench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	reps := make([]*replica, cfg.replicas)
	for i := range reps {
		port, err := freePort()
		if err != nil {
			return err
		}
		addr := fmt.Sprintf("127.0.0.1:%d", port)
		reps[i] = &replica{
			addr:  addr,
			url:   "http://" + addr,
			store: filepath.Join(root, fmt.Sprintf("replica-%d", i)),
		}
	}
	peers := make([]string, len(reps))
	for i, r := range reps {
		peers[i] = r.url
	}
	client := &http.Client{Timeout: 30 * time.Second}
	startAll := func() error {
		for _, r := range reps {
			if err := r.start(cfg.bin, peers); err != nil {
				killAll(reps)
				return err
			}
		}
		for _, r := range reps {
			if err := waitReady(client, r.url, cfg.ready); err != nil {
				killAll(reps)
				return err
			}
		}
		return nil
	}
	if err := startAll(); err != nil {
		return err
	}
	defer killAll(reps)

	keys := benchKeys(cfg.coldKeys, cfg.n)
	var rec storeRecord
	rec.Config.Replicas = cfg.replicas
	rec.Config.ColdKeys = cfg.coldKeys
	rec.Config.N = cfg.n
	rec.Config.Rate = cfg.rate
	rec.Config.FailoverDur = cfg.failover.String()
	rec.Config.Retries = cfg.retries
	rec.Config.Seed = cfg.seed

	// ---- Cold phase: construct (and persist) every key once. ----
	base, err := scrapeAll(client, reps)
	if err != nil {
		return err
	}
	coldLat, coldPlan, err := sweepKeys(client, reps, keys, cfg.retries)
	if err != nil {
		return fmt.Errorf("cold sweep: %w", err)
	}
	after, err := scrapeAll(client, reps)
	if err != nil {
		return err
	}
	rec.Cold.Keys = len(keys)
	rec.Cold.Misses = after["plancache_misses_total"] - base["plancache_misses_total"]
	rec.Cold.StoreWrites = after["planstore_writes_total"] - base["planstore_writes_total"]
	rec.Cold.StoreDegraded = after["planstore_degraded"] > 0
	rec.Cold.LatencyMS = tails(coldLat)
	rec.Cold.ServerPlanMS = tails(coldPlan)

	// ---- Warm phase: kill everything hard, restart over the same stores. ----
	killAll(reps)
	if err := startAll(); err != nil {
		return fmt.Errorf("restart after kill: %w", err)
	}
	base, err = scrapeAll(client, reps)
	if err != nil {
		return err
	}
	warmLat, warmPlan, err := sweepKeys(client, reps, keys, cfg.retries)
	if err != nil {
		return fmt.Errorf("warm sweep: %w", err)
	}
	after, err = scrapeAll(client, reps)
	if err != nil {
		return err
	}
	rec.Warm.Keys = len(keys)
	rec.Warm.Misses = after["plancache_misses_total"] - base["plancache_misses_total"]
	rec.Warm.DiskHits = after["plancache_disk_hits_total"] - base["plancache_disk_hits_total"]
	rec.Warm.LatencyMS = tails(warmLat)
	rec.Warm.ServerPlanMS = tails(warmPlan)
	if rec.Warm.ServerPlanMS.P50 > 0 {
		rec.Warm.SpeedupP50 = rec.Cold.ServerPlanMS.P50 / rec.Warm.ServerPlanMS.P50
	}

	// ---- Failover phase: open-loop load; one replica dies and returns. ----
	if cfg.replicas > 1 && cfg.failover > 0 {
		if err := failoverPhase(&rec, client, reps, peers, keys, cfg); err != nil {
			return err
		}
	}

	if cfg.out != "" && cfg.out != "-" && cfg.out != "/dev/null" {
		data, _ := json.MarshalIndent(rec, "", "  ")
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("storebench: cold %d keys (%d builds, plan p50 %.2fms) | warm %d disk hits, %d rebuilds, plan p50 %.3fms (%.0fx) | failover %d/%d ok (%.4f), recovery %.0fms\n",
		rec.Cold.Keys, rec.Cold.Misses, rec.Cold.ServerPlanMS.P50,
		rec.Warm.DiskHits, rec.Warm.Misses, rec.Warm.ServerPlanMS.P50, rec.Warm.SpeedupP50,
		rec.Failover.Succeeded, rec.Failover.Requests, rec.Failover.SuccessRate, rec.Failover.RecoveryMS)

	if cfg.assert {
		switch {
		case rec.Cold.Misses == 0:
			return fmt.Errorf("cold phase constructed nothing")
		case rec.Cold.StoreWrites == 0 || rec.Cold.StoreDegraded:
			return fmt.Errorf("store wrote %d entries, degraded=%v: persistence is not happening",
				rec.Cold.StoreWrites, rec.Cold.StoreDegraded)
		case rec.Warm.Misses != 0:
			return fmt.Errorf("warm start rebuilt %d plans, want 0 (all from disk)", rec.Warm.Misses)
		case rec.Warm.DiskHits == 0:
			return fmt.Errorf("warm start loaded nothing from disk")
		case cfg.replicas > 1 && cfg.failover > 0 && rec.Failover.SuccessRate < 0.999:
			return fmt.Errorf("failover success rate %.4f below 0.999 (%d/%d)",
				rec.Failover.SuccessRate, rec.Failover.Succeeded, rec.Failover.Requests)
		}
	}
	return nil
}

// benchKeys is the deterministic working set: distinct random topologies
// (one per seed) that fingerprint identically across phases and replicas.
func benchKeys(count, n int) []map[string]any {
	keys := make([]map[string]any, count)
	for i := range keys {
		keys[i] = map[string]any{"topology": "random", "n": n, "p": 0.01, "seed": 20_000 + i}
	}
	return keys
}

// sweepKeys requests every key once, spread round-robin over the replicas,
// and returns client latencies and server-reported in-handler plan times.
func sweepKeys(client *http.Client, reps []*replica, keys []map[string]any, retries int) (latMS, planMS []float64, err error) {
	rng := rand.New(rand.NewSource(42))
	for i, key := range keys {
		targets := rotate(replicaURLs(reps), i)
		res := fireRetry(client, targets, key, retries, rng)
		if !res.ok {
			return nil, nil, fmt.Errorf("key %d failed after %d attempts (last status %d)", i, res.attempts, res.status)
		}
		latMS = append(latMS, float64(res.latency.Microseconds())/1000)
		planMS = append(planMS, res.planMS)
	}
	return latMS, planMS, nil
}

func failoverPhase(rec *storeRecord, client *http.Client, reps []*replica, peers []string, keys []map[string]any, cfg storeBenchConfig) error {
	victim := reps[len(reps)-1]
	rec.Failover.KilledReplica = victim.url
	interval := time.Duration(float64(time.Second) / cfg.rate)
	killAt := time.Now().Add(cfg.failover / 3)
	restartAt := time.Now().Add(2 * cfg.failover / 3)
	deadline := time.Now().Add(cfg.failover)

	var (
		mu        sync.Mutex
		latencies []float64
		succeeded int
		requests  int
		retried   int
		wg        sync.WaitGroup
	)
	rng := rand.New(rand.NewSource(cfg.seed))
	var killed, restarted bool
	var killedAt time.Time
	i := 0
	for now := time.Now(); now.Before(deadline); now = time.Now() {
		if !killed && now.After(killAt) {
			victim.kill()
			killed, killedAt = true, time.Now()
		}
		if killed && !restarted && now.After(restartAt) {
			if err := victim.start(cfg.bin, peers); err != nil {
				return fmt.Errorf("restarting victim: %w", err)
			}
			if err := waitReady(client, victim.url, cfg.ready); err != nil {
				return fmt.Errorf("victim never became ready: %w", err)
			}
			restarted = true
			rec.Failover.DownMS = float64(time.Since(killedAt).Microseconds()) / 1000
			rec.Failover.RecoveryMS = float64(time.Since(restartAt).Microseconds()) / 1000
		}
		key := keys[i%len(keys)]
		targets := rotate(replicaURLs(reps), i)
		i++
		seed := rng.Int63()
		wg.Add(1)
		requests++
		go func() {
			defer wg.Done()
			res := fireRetry(client, targets, key, cfg.retries, rand.New(rand.NewSource(seed)))
			mu.Lock()
			defer mu.Unlock()
			if res.ok {
				succeeded++
				latencies = append(latencies, float64(res.latency.Microseconds())/1000)
			}
			retried += res.attempts - 1
		}()
		time.Sleep(time.Until(now.Add(interval)))
	}
	wg.Wait()
	if killed && !restarted {
		// The schedule ran out before the restart mark — still bring the
		// victim back so the record reflects a full cycle.
		if err := victim.start(cfg.bin, peers); err != nil {
			return fmt.Errorf("restarting victim post-run: %w", err)
		}
		begin := time.Now()
		if err := waitReady(client, victim.url, cfg.ready); err != nil {
			return fmt.Errorf("victim never became ready: %w", err)
		}
		rec.Failover.DownMS = float64(time.Since(killedAt).Microseconds()) / 1000
		rec.Failover.RecoveryMS = float64(time.Since(begin).Microseconds()) / 1000
	}
	rec.Failover.Requests = requests
	rec.Failover.Succeeded = succeeded
	if requests > 0 {
		rec.Failover.SuccessRate = float64(succeeded) / float64(requests)
	}
	rec.Failover.RetriesUsed = retried
	rec.Failover.LatencyMS = tails(latencies)
	return nil
}

// attemptResult is the outcome of one logical request after bounded retries.
type attemptResult struct {
	ok       bool
	status   int
	attempts int
	latency  time.Duration
	planMS   float64
}

// fireRetry posts the plan request, retrying with exponential backoff and
// full jitter on exactly the transient failures a replicated deployment
// produces: transport errors (a dead replica's connection refused), 429
// (admission shed) and 502/503 (saturation, drain). Each retry moves to the
// next target, so a request that first hits the dead replica lands on a
// survivor. 4xx application errors are permanent and never retried.
func fireRetry(c *http.Client, targets []string, body map[string]any, retries int, rng *rand.Rand) attemptResult {
	data, _ := json.Marshal(body)
	begin := time.Now()
	backoff := 25 * time.Millisecond
	res := attemptResult{status: -1}
	for attempt := 0; ; attempt++ {
		res.attempts = attempt + 1
		url := targets[attempt%len(targets)]
		resp, err := c.Post(url+"/plan", "application/json", bytes.NewReader(data))
		if err == nil {
			res.status = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				var pr struct {
					PlanMS float64 `json:"plan_ms"`
				}
				if json.NewDecoder(resp.Body).Decode(&pr) == nil {
					res.planMS = pr.PlanMS
				}
				resp.Body.Close()
				res.ok = true
				res.latency = time.Since(begin)
				return res
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if !retryable(resp.StatusCode) {
				res.latency = time.Since(begin)
				return res
			}
		} else {
			res.status = -1
		}
		if attempt >= retries {
			res.latency = time.Since(begin)
			return res
		}
		// Full jitter: sleep uniform in [0, backoff), then double the cap.
		time.Sleep(time.Duration(rng.Int63n(int64(backoff))))
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable
}

func (r *replica) start(bin string, peers []string) error {
	// A deep queue keeps saturation transient: on small machines the whole
	// fleet shares a core or two, and shedding with 429 during the outage
	// spike would charge the benchmark for the machine, not the design.
	args := []string{"-addr", r.addr, "-store", r.store, "-queue", "256"}
	if len(peers) > 1 {
		args = append(args, "-peers", strings.Join(peers, ","), "-self", r.url)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", r.addr, err)
	}
	r.cmd = cmd
	return nil
}

// kill SIGKILLs the replica — a crash, not a drain — and reaps it.
func (r *replica) kill() {
	if r.cmd == nil || r.cmd.Process == nil {
		return
	}
	r.cmd.Process.Signal(syscall.SIGKILL)
	r.cmd.Wait()
	r.cmd = nil
}

func killAll(reps []*replica) {
	for _, r := range reps {
		r.kill()
	}
}

func replicaURLs(reps []*replica) []string {
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.url
	}
	return urls
}

// rotate returns urls shifted by i, so successive requests start their
// attempt sequence on different replicas.
func rotate(urls []string, i int) []string {
	k := i % len(urls)
	return append(urls[k:], urls[:k]...)
}

// scrapeAll sums each metric across live replicas; dead ones are skipped.
func scrapeAll(c *http.Client, reps []*replica) (map[string]int64, error) {
	sum := map[string]int64{}
	live := 0
	for _, r := range reps {
		if r.cmd == nil {
			continue
		}
		m, err := scrape(c, r.url)
		if err != nil {
			return nil, fmt.Errorf("scraping %s: %w", r.addr, err)
		}
		live++
		for k, v := range m {
			sum[k] += v
		}
	}
	if live == 0 {
		return nil, fmt.Errorf("no live replicas to scrape")
	}
	return sum, nil
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

func tails(ms []float64) tailQuantiles {
	q := tailQuantiles{N: len(ms)}
	if len(ms) == 0 {
		return q
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(p float64) float64 { return sorted[int(p*float64(len(sorted)-1))] }
	q.P50, q.P99, q.P999, q.Max = at(0.50), at(0.99), at(0.999), sorted[len(sorted)-1]
	return q
}
