// Command loadgen drives a running gossipd with an open-loop request
// stream and records the serving layer's latency and cache behaviour to a
// JSON benchmark record (BENCH_serve.json).
//
// Arrivals are open-loop: requests fire on a fixed schedule of 1/rate
// seconds regardless of how fast earlier requests complete, the arrival
// model of a server facing independent clients (a closed loop would hide
// overload by slowing down with the server). Each arrival asks for the hot
// topology with probability -hot, otherwise one of -cold-keys distinct
// random topologies in round-robin — hot requests exercise the cache hit
// path, cold ones force constructions and, once the keys outnumber the
// cache, evictions.
//
// After the run loadgen reconciles its own request log against the
// server's /metrics deltas: client-observed hits, misses, disk hits and
// coalesced requests must match the plancache_* counters exactly (valid
// when loadgen is the server's only client). With -assert it exits non-zero
// on any mismatch, on a zero hit rate, or if a disconnected-network probe
// fails to produce HTTP 422 — the serve-smoke gate of `make check`.
//
// With -gossipd pointing at a server binary, loadgen instead runs the
// store/failover benchmark (see storebench.go): it spawns its own replica
// fleet over per-replica store directories, measures cold construction
// against warm-start-from-disk after SIGKILLing every replica, then drives
// open-loop load with bounded jittered retries while one replica is killed
// and resurrected mid-run — writing BENCH_store.json and, with -assert,
// gating on zero warm rebuilds and >= 99.9% client success through the
// outage.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type request struct {
	status  int
	source  string
	latency time.Duration
	planMS  float64
}

type quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
	N   int     `json:"n"`
}

type record struct {
	Config struct {
		URL      string  `json:"url"`
		Duration string  `json:"duration"`
		Rate     float64 `json:"rate_per_s"`
		Hot      float64 `json:"hot_fraction"`
		N        int     `json:"n"`
		ColdKeys int     `json:"cold_keys"`
		Seed     int64   `json:"seed"`
	} `json:"config"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Rejected429 int     `json:"rejected_429"`
	Errors      int     `json:"errors"`
	HitRate     float64 `json:"hit_rate"`
	Sources     map[string]int `json:"sources"`

	LatencyMS     quantiles `json:"latency_ms"`
	HitLatencyMS  quantiles `json:"hit_latency_ms"`
	MissLatencyMS quantiles `json:"miss_latency_ms"`
	// HotColdSpeedupP50 is the client-observed end-to-end p50 speedup of a
	// cache-hit request over a cold construction of the same size.
	HotColdSpeedupP50 float64 `json:"hot_cold_speedup_p50"`
	// ServerPlanMS aggregates the server-reported in-handler plan times.
	ServerHitPlanMS  quantiles `json:"server_hit_plan_ms"`
	ServerMissPlanMS quantiles `json:"server_miss_plan_ms"`

	Server struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		DiskHits  int64 `json:"disk_hits"`
		Coalesced int64 `json:"coalesced"`
		Evictions int64 `json:"evictions"`
		Entries   int64 `json:"entries"`
	} `json:"server_counter_deltas"`
	Reconciled bool `json:"reconciled"`
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8423", "gossipd base URL")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		rate     = flag.Float64("rate", 100, "open-loop arrival rate, requests/second")
		hot      = flag.Float64("hot", 0.9, "fraction of requests for the hot topology key")
		n        = flag.Int("n", 1024, "processor count for every requested topology")
		coldKeys = flag.Int("cold-keys", 64, "distinct cold topology keys cycled round-robin")
		seed     = flag.Int64("seed", 1, "arrival-mix seed")
		out      = flag.String("out", "BENCH_serve.json", "output record path (\"-\" or /dev/null for none)")
		assert   = flag.Bool("assert", false, "exit non-zero unless hit rate > 0, counters reconcile, and the 422 probe passes")
		minSpeed = flag.Float64("min-speedup", 0, "with -assert, minimum hot/cold p50 speedup required (0 disables)")
		ready    = flag.Duration("ready", 10*time.Second, "how long to wait for the server to become healthy")

		// Store/failover benchmark mode: loadgen spawns its own replica
		// fleet instead of driving an already-running server.
		gossipdBin  = flag.String("gossipd", "", "path to a gossipd binary; set to run the store/failover benchmark (spawns replicas)")
		replicas    = flag.Int("replicas", 2, "replica count for the store benchmark")
		retries     = flag.Int("retries", 4, "bounded retries per request on 429/503/transport errors (store benchmark)")
		storeOut    = flag.String("store-out", "BENCH_store.json", "store benchmark output record path")
		failoverDur = flag.Duration("failover-duration", 6*time.Second, "failover phase length (store benchmark)")
	)
	flag.Parse()

	if *gossipdBin != "" {
		err := runStoreBench(storeBenchConfig{
			bin:      *gossipdBin,
			replicas: *replicas,
			coldKeys: *coldKeys,
			n:        *n,
			rate:     *rate,
			failover: *failoverDur,
			retries:  *retries,
			seed:     *seed,
			out:      *storeOut,
			assert:   *assert,
			ready:    *ready,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	client := &http.Client{Timeout: 30 * time.Second}
	if err := waitReady(client, *url, *ready); err != nil {
		fatal(err)
	}

	// Probe the bug path first (before the counter baseline, because a
	// failed construction still counts a server-side miss): a disconnected
	// network must be answered with 422, not a dropped connection from a
	// crashed handler.
	if err := probeDisconnected(client, *url); err != nil {
		if *assert {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "loadgen: warning:", err)
	}

	base, err := scrape(client, *url)
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	interval := time.Duration(float64(time.Second) / *rate)
	deadline := time.Now().Add(*duration)
	var (
		mu   sync.Mutex
		log  []request
		wg   sync.WaitGroup
		cold int
	)
	for now := time.Now(); now.Before(deadline); now = time.Now() {
		body := map[string]any{"topology": "ring", "n": *n}
		if rng.Float64() >= *hot {
			// Cold key: a distinct random topology. The seed picks the edge
			// set, so seed k is the same network — and the same fingerprint —
			// every time it comes around.
			body = map[string]any{"topology": "random", "n": *n, "p": 0.01, "seed": 10_000 + cold%*coldKeys}
			cold++
		}
		wg.Add(1)
		go func(body map[string]any) {
			defer wg.Done()
			r := fire(client, *url, body)
			mu.Lock()
			log = append(log, r)
			mu.Unlock()
		}(body)
		time.Sleep(time.Until(now.Add(interval)))
	}
	wg.Wait()

	final, err := scrape(client, *url)
	if err != nil {
		fatal(err)
	}

	rec := summarize(log)
	rec.Config.URL = *url
	rec.Config.Duration = duration.String()
	rec.Config.Rate = *rate
	rec.Config.Hot = *hot
	rec.Config.N = *n
	rec.Config.ColdKeys = *coldKeys
	rec.Config.Seed = *seed
	rec.Server.Hits = final["plancache_hits_total"] - base["plancache_hits_total"]
	rec.Server.Misses = final["plancache_misses_total"] - base["plancache_misses_total"]
	rec.Server.DiskHits = final["plancache_disk_hits_total"] - base["plancache_disk_hits_total"]
	rec.Server.Coalesced = final["plancache_coalesced_total"] - base["plancache_coalesced_total"]
	rec.Server.Evictions = final["plancache_evictions_total"] - base["plancache_evictions_total"]
	rec.Server.Entries = final["plancache_entries"] - base["plancache_entries"]
	// An entry is resident iff something materialised it (a construction or
	// a disk load) and it has not been evicted since.
	rec.Reconciled = rec.Server.Hits == int64(rec.Sources["hit"]) &&
		rec.Server.Misses == int64(rec.Sources["miss"]) &&
		rec.Server.DiskHits == int64(rec.Sources["disk"]) &&
		rec.Server.Coalesced == int64(rec.Sources["coalesced"]) &&
		rec.Server.Entries == rec.Server.Misses+rec.Server.DiskHits-rec.Server.Evictions

	if *out != "" && *out != "-" && *out != "/dev/null" {
		data, _ := json.MarshalIndent(rec, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("loadgen: %d requests (%d ok, %d shed, %d errors), hit rate %.3f, p50 %.2fms p99 %.2fms, hot/cold p50 speedup %.1fx, reconciled=%v\n",
		rec.Requests, rec.OK, rec.Rejected429, rec.Errors, rec.HitRate,
		rec.LatencyMS.P50, rec.LatencyMS.P99, rec.HotColdSpeedupP50, rec.Reconciled)

	if *assert {
		switch {
		case rec.OK == 0:
			fatal(fmt.Errorf("no successful requests"))
		case rec.Sources["hit"] == 0:
			fatal(fmt.Errorf("zero cache hits across %d requests", rec.Requests))
		case !rec.Reconciled:
			fatal(fmt.Errorf("client log and server counters disagree: client %v, server %+v", rec.Sources, rec.Server))
		case *minSpeed > 0 && rec.HotColdSpeedupP50 < *minSpeed:
			fatal(fmt.Errorf("hot/cold p50 speedup %.1fx below the required %.1fx", rec.HotColdSpeedupP50, *minSpeed))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

func waitReady(c *http.Client, url string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := c.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy within %s: %v", url, budget, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func probeDisconnected(c *http.Client, url string) error {
	body, _ := json.Marshal(map[string]any{"processors": 4, "edges": [][2]int{{0, 1}}})
	resp, err := c.Post(url+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("disconnected probe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		return fmt.Errorf("disconnected probe: status %d, want 422", resp.StatusCode)
	}
	return nil
}

func fire(c *http.Client, url string, body map[string]any) request {
	data, _ := json.Marshal(body)
	begin := time.Now()
	resp, err := c.Post(url+"/plan", "application/json", bytes.NewReader(data))
	if err != nil {
		return request{status: -1, latency: time.Since(begin)}
	}
	defer resp.Body.Close()
	r := request{status: resp.StatusCode, latency: time.Since(begin)}
	if resp.StatusCode == http.StatusOK {
		var pr struct {
			Source string  `json:"source"`
			PlanMS float64 `json:"plan_ms"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&pr); err == nil {
			r.source = pr.Source
			r.planMS = pr.PlanMS
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return r
}

// scrape fetches /metrics and parses the flat "name value" samples.
func scrape(c *http.Client, url string) (map[string]int64, error) {
	resp, err := c.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		if v, err := strconv.ParseInt(value, 10, 64); err == nil {
			out[name] = v
		}
	}
	return out, nil
}

func summarize(log []request) record {
	rec := record{Sources: map[string]int{}}
	rec.Requests = len(log)
	var all, hits, misses []time.Duration
	var hitPlan, missPlan []float64
	for _, r := range log {
		switch {
		case r.status == http.StatusOK:
			rec.OK++
			rec.Sources[r.source]++
			all = append(all, r.latency)
			switch r.source {
			case "hit":
				hits = append(hits, r.latency)
				hitPlan = append(hitPlan, r.planMS)
			case "miss":
				misses = append(misses, r.latency)
				missPlan = append(missPlan, r.planMS)
			}
		case r.status == http.StatusTooManyRequests:
			rec.Rejected429++
		default:
			rec.Errors++
		}
	}
	if rec.OK > 0 {
		rec.HitRate = float64(rec.Sources["hit"]) / float64(rec.OK)
	}
	rec.LatencyMS = quantileMS(all)
	rec.HitLatencyMS = quantileMS(hits)
	rec.MissLatencyMS = quantileMS(misses)
	rec.ServerHitPlanMS = quantileF(hitPlan)
	rec.ServerMissPlanMS = quantileF(missPlan)
	if rec.HitLatencyMS.P50 > 0 {
		rec.HotColdSpeedupP50 = rec.MissLatencyMS.P50 / rec.HitLatencyMS.P50
	}
	return rec
}

func quantileMS(ds []time.Duration) quantiles {
	fs := make([]float64, len(ds))
	for i, d := range ds {
		fs[i] = float64(d.Microseconds()) / 1000
	}
	return quantileF(fs)
}

func quantileF(fs []float64) quantiles {
	q := quantiles{N: len(fs)}
	if len(fs) == 0 {
		return q
	}
	sort.Float64s(fs)
	at := func(p float64) float64 {
		i := int(p * float64(len(fs)-1))
		return fs[i]
	}
	q.P50, q.P90, q.P99, q.Max = at(0.50), at(0.90), at(0.99), fs[len(fs)-1]
	return q
}
