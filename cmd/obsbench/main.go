// Command obsbench measures what the observability layer costs and records
// the result in a machine-readable perf record (BENCH_obs.json by default).
//
// On a ring of -n processors it builds the ConcurrentUpDown plan once and
// times the fault executor under Bernoulli link loss in five
// configurations: the plain untraced entry point (fault.ExecuteInjected),
// the traced entry point with a nil observer (the refactored hot path all
// executions now share — the record asserts it prices identically to
// untraced), and with the three shipped sinks attached: a
// ProgressCollector (per-round curve only), a Tracer (timeline + atomic
// outcome totals) and an Instrument-ed metrics Registry. The fault-free
// validator (schedule.Run) is timed untraced and observed too.
//
//	go run ./cmd/obsbench -out BENCH_obs.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/obs"
	"multigossip/internal/schedule"
)

type caseRecord struct {
	Name     string `json:"name"`
	NsOp     int64  `json:"ns_op"`
	AllocsOp int64  `json:"allocs_op"`
	BytesOp  int64  `json:"bytes_op"`
	// OverheadVsUntraced is NsOp over the matching untraced baseline's NsOp
	// minus one: 0.01 means 1% slower.
	OverheadVsUntraced float64 `json:"overhead_vs_untraced"`
}

type report struct {
	Tool       string       `json:"tool"`
	Benchmark  string       `json:"benchmark"`
	Topology   string       `json:"topology"`
	N          int          `json:"n"`
	Rounds     int          `json:"rounds"`
	LossRate   float64      `json:"loss_rate"`
	GoMaxProcs int          `json:"gomaxprocs"`
	GoVersion  string       `json:"go_version"`
	Cases      []caseRecord `json:"cases"`
}

func bench(name string, baseline int64, f func()) caseRecord {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	rec := caseRecord{
		Name:     name,
		NsOp:     res.NsPerOp(),
		AllocsOp: res.AllocsPerOp(),
		BytesOp:  res.AllocedBytesPerOp(),
	}
	if baseline > 0 {
		rec.OverheadVsUntraced = float64(rec.NsOp)/float64(baseline) - 1
	}
	return rec
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "output path for the perf record")
	n := flag.Int("n", 1024, "ring size")
	loss := flag.Float64("loss", 0.01, "per-delivery loss probability for the fault executor cases")
	flag.Parse()

	g := graph.Cycle(*n)
	res, err := core.Gossip(g, core.ConcurrentUpDown)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
	s := res.Schedule
	inj := fault.LinkLoss{P: *loss, Seed: 42}

	rep := report{
		Tool:       "cmd/obsbench",
		Benchmark:  "observability overhead on the fault executor and the schedule validator",
		Topology:   "ring",
		N:          *n,
		Rounds:     s.Time(),
		LossRate:   *loss,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	// Fault executor family. Every traced case reuses one long-lived sink,
	// the way a bench harness or server would.
	untraced := bench("fault/untraced", 0, func() {
		if _, _, err := fault.ExecuteInjected(g, s, inj, nil, 0); err != nil {
			panic(err)
		}
	})
	rep.Cases = append(rep.Cases, untraced)
	rep.Cases = append(rep.Cases, bench("fault/nil-observer", untraced.NsOp, func() {
		if _, _, err := fault.ExecuteTraced(g, s, inj, nil, 0, nil, nil); err != nil {
			panic(err)
		}
	}))
	progress := obs.NewProgressCollector(*n, *n**n)
	rep.Cases = append(rep.Cases, bench("fault/progress", untraced.NsOp, func() {
		if _, _, err := fault.ExecuteTraced(g, s, inj, nil, 0, nil, progress); err != nil {
			panic(err)
		}
	}))
	tracer := obs.NewTracer()
	rep.Cases = append(rep.Cases, bench("fault/tracer", untraced.NsOp, func() {
		if _, _, err := fault.ExecuteTraced(g, s, inj, nil, 0, nil, tracer); err != nil {
			panic(err)
		}
	}))
	registry := obs.NewRegistry()
	instrument := obs.Instrument(registry)
	rep.Cases = append(rep.Cases, bench("fault/metrics", untraced.NsOp, func() {
		if _, _, err := fault.ExecuteTraced(g, s, inj, nil, 0, nil, instrument); err != nil {
			panic(err)
		}
	}))

	// Fault-free validator family.
	vUntraced := bench("validate/untraced", 0, func() {
		if _, err := schedule.Run(g, s, schedule.Options{}); err != nil {
			panic(err)
		}
	})
	rep.Cases = append(rep.Cases, vUntraced)
	rep.Cases = append(rep.Cases, bench("validate/metrics", vUntraced.NsOp, func() {
		if _, err := schedule.Run(g, s, schedule.Options{Observer: instrument}); err != nil {
			panic(err)
		}
	}))

	fmt.Printf("%-22s %14s %10s %12s %10s\n", "case", "ns/op", "allocs/op", "bytes/op", "overhead")
	for _, c := range rep.Cases {
		fmt.Printf("%-22s %14d %10d %12d %9.2f%%\n", c.Name, c.NsOp, c.AllocsOp, c.BytesOp, 100*c.OverheadVsUntraced)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "obsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
