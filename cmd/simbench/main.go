// Command simbench measures the sharded event-loop simulator (internal/sim)
// and records the result in a machine-readable perf record (BENCH_sim.json
// by default).
//
// The benchmark runs the online ConcurrentUpDown protocol as n compact
// state machines — no goroutine per node, no materialised schedule — and
// reports rounds/sec and ns/node-event for each case:
//
//   - million-node sync runs (star and a 1000-ary tree) with leaf fan-out
//     folding, the configuration that makes n = 10⁶ tractable on one
//     machine: leaf deliveries are accounted arithmetically, so simulator
//     work scales with internal-node traffic instead of n(n-1);
//   - exact (fold-off) sync runs on seeded random recursive trees, where
//     every one of the n(n-1) point deliveries is individually simulated;
//   - async event-driven runs under a uniform per-link latency model.
//
// With -smoke the command runs the CI differential gate instead: on a
// seeded random connected graph at n = 4096 the simulator streams every
// round through a sink and each transmission is compared bit-for-bit
// against the plan's closed-form timetable (implicit.RoundAppend), then
// async runs under deterministic, uniform and heavy-tail latency models
// must deliver all n(n-1) messages within the n + 2r + maxLatency·height
// completion bound.
//
//	go run ./cmd/simbench -out BENCH_sim.json
//	go run ./cmd/simbench -smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/schedule"
	"multigossip/internal/sim"
	"multigossip/internal/spantree"
)

type record struct {
	Engine           string  `json:"engine"` // sync | async
	Topology         string  `json:"topology"`
	N                int     `json:"n"`
	Height           int     `json:"height"`
	Shards           int     `json:"shards"`
	Fold             bool    `json:"fold"`
	MaxLatency       int     `json:"max_latency,omitempty"`
	CompleteAt       int     `json:"complete_at"`
	Deliveries       int64   `json:"deliveries"`
	FoldedDeliveries int64   `json:"folded_deliveries"`
	Transmissions    int64   `json:"transmissions"`
	Events           int64   `json:"events"`
	WallNs           int64   `json:"wall_ns"`
	RoundsPerSec     float64 `json:"rounds_per_sec"`
	NsPerNodeEvent   float64 `json:"ns_per_node_event"`
}

type report struct {
	Tool       string   `json:"tool"`
	Benchmark  string   `json:"benchmark"`
	GoMaxProcs int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	Cases      []record `json:"cases"`
}

// starParents and karyParents build the bench trees directly as parent
// arrays: at n = 10⁶ that skips an O(n+m) graph + spanning-tree sweep the
// benchmark is not trying to measure.
func starParents(n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = 0
	}
	return parent
}

func karyParents(n, k int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = (i - 1) / k
	}
	return parent
}

// randomRecursiveParents attaches vertex i to a uniform earlier vertex:
// expected height Θ(log n), the planbench -big generator.
func randomRecursiveParents(rng *rand.Rand, n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
	}
	return parent
}

func planFor(parents []int) *implicit.Plan {
	return implicit.New(spantree.Label(spantree.MustFromParents(parents)))
}

func runCase(topology string, p *implicit.Plan, o sim.Options) record {
	start := time.Now()
	res, err := sim.Run(p.Topo(), o)
	wall := time.Since(start).Nanoseconds()
	if err != nil {
		panic(fmt.Sprintf("simbench: %s n=%d: %v", topology, p.N(), err))
	}
	n := int64(p.N())
	if res.Deliveries != n*(n-1) {
		panic(fmt.Sprintf("simbench: %s n=%d: %d deliveries, want %d", topology, p.N(), res.Deliveries, n*(n-1)))
	}
	if !o.Async && res.CompleteAt != p.Rounds() {
		panic(fmt.Sprintf("simbench: %s n=%d: completed at %d, plan says %d", topology, p.N(), res.CompleteAt, p.Rounds()))
	}
	engine := "sync"
	maxLat := 0
	if o.Async {
		engine = "async"
		maxLat = int(o.Latency.Max())
	}
	return record{
		Engine:           engine,
		Topology:         topology,
		N:                p.N(),
		Height:           p.Height(),
		Shards:           res.Shards,
		Fold:             res.Fold,
		MaxLatency:       maxLat,
		CompleteAt:       res.CompleteAt,
		Deliveries:       res.Deliveries,
		FoldedDeliveries: res.Folded,
		Transmissions:    res.Sends,
		Events:           res.Events,
		WallNs:           wall,
		RoundsPerSec:     float64(res.CompleteAt) / (float64(wall) / 1e9),
		NsPerNodeEvent:   float64(wall) / float64(res.Events),
	}
}

// smoke is the CI gate: the simulator's live transmissions, streamed
// round by round through a sink, must be bit-identical to the plan's
// closed-form schedule, and async completion must respect the
// n + 2r + maxLatency·height bound under every latency model.
func smoke() error {
	const n = 4096
	rng := rand.New(rand.NewSource(n))
	g := graph.RandomConnected(rng, n, 8.0/n)
	tree, err := spantree.MinDepth(g)
	if err != nil {
		return err
	}
	p := implicit.New(spantree.Label(tree))
	topo := p.Topo()

	// Sync differential: translate each sunk round from canonical labels
	// to original ids and compare against implicit.RoundAppend. The sink
	// keeps memory O(n): no full schedule is ever materialised.
	var want, got []schedule.Transmission
	rounds := 0
	lastT := -1
	checkEmpty := func(t int) error {
		if want = p.RoundAppend(t, want[:0]); len(want) != 0 {
			return fmt.Errorf("sync: simulator silent at round %d but the plan schedules %d transmissions", t, len(want))
		}
		return nil
	}
	sink := func(t int, round []schedule.Transmission) error {
		for lastT++; lastT < t; lastT++ {
			if err := checkEmpty(lastT); err != nil {
				return err
			}
		}
		got = got[:0]
		for _, tx := range round {
			to := make([]int, len(tx.To))
			for i, d := range tx.To {
				to[i] = int(topo.VertexOf[d])
			}
			sort.Ints(to)
			got = append(got, schedule.Transmission{
				Msg: int(topo.VertexOf[tx.Msg]), From: int(topo.VertexOf[tx.From]), To: to,
			})
		}
		sort.Slice(got, func(i, j int) bool { return got[i].From < got[j].From })
		want = p.RoundAppend(t, want[:0])
		for i := range want {
			sort.Ints(want[i].To)
		}
		sort.Slice(want, func(i, j int) bool { return want[i].From < want[j].From })
		if len(got) != len(want) {
			return fmt.Errorf("sync: round %d has %d transmissions, plan says %d", t, len(got), len(want))
		}
		for i := range got {
			w := want[i]
			if got[i].Msg != w.Msg || got[i].From != w.From || len(got[i].To) != len(w.To) {
				return fmt.Errorf("sync: round %d transmission %d diverges: got %+v want %+v", t, i, got[i], w)
			}
			for k := range w.To {
				if got[i].To[k] != w.To[k] {
					return fmt.Errorf("sync: round %d transmission %d diverges: got %+v want %+v", t, i, got[i], w)
				}
			}
		}
		rounds++
		return nil
	}
	res, err := sim.Run(topo, sim.Options{Sink: sink})
	if err != nil {
		return fmt.Errorf("sync: %v", err)
	}
	for lastT++; lastT < p.Rounds(); lastT++ {
		if err := checkEmpty(lastT); err != nil {
			return err
		}
	}
	if res.CompleteAt != p.Rounds() {
		return fmt.Errorf("sync: completed at %d, plan says %d", res.CompleteAt, p.Rounds())
	}
	if res.Deliveries != int64(n)*int64(n-1) {
		return fmt.Errorf("sync: %d deliveries, want %d", res.Deliveries, n*(n-1))
	}
	fmt.Printf("sim-smoke: n=%d sync differential ok: %d rounds bit-identical to the closed-form schedule (%d transmissions)\n",
		n, rounds, res.Sends)

	// Async gate: full coverage within n + 2r + maxLat·height under each
	// latency model family.
	r := p.Height()
	for _, lat := range []sim.Latency{sim.Deterministic(1), sim.Uniform(6, 42), sim.HeavyTail(12, 42)} {
		ares, err := sim.Run(topo, sim.Options{Async: true, Latency: lat})
		if err != nil {
			return fmt.Errorf("async maxLat=%d: %v", lat.Max(), err)
		}
		if ares.Deliveries != int64(n)*int64(n-1) {
			return fmt.Errorf("async maxLat=%d: %d deliveries, want %d", lat.Max(), ares.Deliveries, n*(n-1))
		}
		bound := n + 2*r + int(lat.Max())*p.Height()
		if ares.CompleteAt > bound {
			return fmt.Errorf("async maxLat=%d: completed at %d > n+2r+maxLat*h = %d", lat.Max(), ares.CompleteAt, bound)
		}
		fmt.Printf("sim-smoke: n=%d async maxLat=%-2d complete at %d <= bound %d\n", n, lat.Max(), ares.CompleteAt, bound)
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output path for the perf record")
	smokeMode := flag.Bool("smoke", false, "run the CI differential gate instead of the benchmark")
	flag.Parse()

	if *smokeMode {
		if err := smoke(); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep := report{
		Tool:       "cmd/simbench",
		Benchmark:  "sharded event-loop simulator: online ConcurrentUpDown as packed per-node state machines",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	add := func(r record) {
		rep.Cases = append(rep.Cases, r)
		fmt.Printf("%-5s %-16s n=%-8d rounds=%-8d %10.0f rounds/sec  %7.1f ns/node-event  (folded %d of %d deliveries, %s)\n",
			r.Engine, r.Topology, r.N, r.CompleteAt, r.RoundsPerSec, r.NsPerNodeEvent,
			r.FoldedDeliveries, r.Deliveries, time.Duration(r.WallNs))
	}

	// Million-node sync runs: leaf fan-out folding keeps simulator work
	// proportional to internal-node traffic, so n = 10⁶ completes on one
	// machine.
	add(runCase("star", planFor(starParents(1_000_000)), sim.Options{}))
	add(runCase("kary-1000", planFor(karyParents(1_000_000, 1000)), sim.Options{}))

	// Exact runs: folding off, every point delivery individually simulated.
	for _, n := range []int{16_384, 32_768} {
		rng := rand.New(rand.NewSource(int64(n)))
		add(runCase("random-recursive", planFor(randomRecursiveParents(rng, n)), sim.Options{Fold: sim.FoldOff}))
	}

	// Async event-driven runs under a uniform latency model.
	for _, n := range []int{4096, 16_384} {
		rng := rand.New(rand.NewSource(int64(n)))
		p := planFor(randomRecursiveParents(rng, n))
		add(runCase("random-recursive", p, sim.Options{Async: true, Latency: sim.Uniform(4, uint64(n))}))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
