package multigossip

import (
	"encoding/json"
	"fmt"
	"io"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// LoadNetwork reads a network in the edge-list text format:
//
//	# comments allowed
//	n 5
//	0 1
//	1 2
//
// the same format WriteEdgeList emits, so topologies round-trip between
// runs and external tools.
func LoadNetwork(r io.Reader) (*Network, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return fromGraph(g), nil
}

// WriteEdgeList serialises the network in the edge-list text format.
func (nw *Network) WriteEdgeList(w io.Writer) error { return nw.g.Write(w) }

// VerifyScheduleJSON decodes a schedule from the library's JSON shape and
// validates it on the network as a gossip schedule: model rules (one send,
// one receive, links exist, messages held) and completion (every processor
// ends with every message). On success it returns a one-line report with
// the total time, completion time, and transmission statistics; any
// violation is returned as an error naming the offending round.
func VerifyScheduleJSON(nw *Network, data []byte) (string, error) {
	var s schedule.Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return "", fmt.Errorf("multigossip: decoding schedule: %w", err)
	}
	res, err := schedule.CheckGossip(nw.g, &s)
	if err != nil {
		return "", err
	}
	st := schedule.Measure(&s)
	return fmt.Sprintf("VALID gossip schedule: n=%d time=%d completeAt=%d wasted=%d %s",
		s.N, s.Time(), res.CompleteAt, res.WastedDeliveries, st.String()), nil
}
