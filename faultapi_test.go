package multigossip

import (
	"math/rand"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/repair"
)

// namedNetworks returns a small instance of every named topology
// constructor, the set the acceptance property tests sweep.
func namedNetworks() map[string]*Network {
	rng := rand.New(rand.NewSource(5))
	return map[string]*Network{
		"line":      Line(7),
		"ring":      Ring(9),
		"star":      Star(8),
		"complete":  FullyConnected(6),
		"mesh":      Mesh(3, 4),
		"torus":     Torus(3, 3),
		"hypercube": Hypercube(3),
		"petersen":  PetersenGraph(),
		"fig4":      Fig4Network(),
		"random":    RandomNetwork(rng, 12, 0.3),
		"sensor":    SensorField(rng, 12, 0.5),
		"tree":      RandomTreeNetwork(rng, 12),
	}
}

func TestExecuteWithFaultsFaultFree(t *testing.T) {
	plan, err := Ring(8).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Coverage != 1 || rep.FinalCoverage != 1 {
		t.Fatalf("fault-free execution incomplete: %+v", rep)
	}
	if rep.Dropped != 0 || rep.Repaired != 0 || rep.RepairRounds != 0 || rep.RepairIterations != 0 {
		t.Fatalf("fault-free execution paid for repair: %+v", rep)
	}
	if rep.TotalRounds != plan.Rounds() || rep.ScheduleRounds != plan.Rounds() {
		t.Fatalf("round accounting wrong: %+v", rep)
	}
}

// TestExecuteWithFaultsHealsEverySingleDrop: every delivery of a
// ConcurrentUpDown schedule is critical (Plan.Criticality is 1.0), yet
// repair restores full coverage after any single drop, in at most
// diameter-per-iteration extra rounds.
func TestExecuteWithFaultsHealsEverySingleDrop(t *testing.T) {
	for name, nw := range namedNetworks() {
		plan, err := nw.PlanGossip()
		if err != nil {
			t.Fatal(err)
		}
		diameter := nw.Diameter()
		for r := 0; r < plan.Rounds(); r++ {
			for txIdx, tx := range plan.Round(r) {
				for _, d := range tx.To {
					rep, err := plan.ExecuteWithFaults(WithDroppedDelivery(r, txIdx, d))
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if rep.Coverage >= 1 {
						t.Fatalf("%s: dropping (%d,%d,%d) left coverage %v — CUD deliveries are all critical",
							name, r, txIdx, d, rep.Coverage)
					}
					if !rep.Complete || rep.FinalCoverage != 1 {
						t.Fatalf("%s: drop (%d,%d,%d) not healed: %+v", name, r, txIdx, d, rep)
					}
					if rep.RepairRounds > diameter*rep.RepairIterations {
						t.Fatalf("%s: overhead %d rounds in %d iterations exceeds diameter %d per iteration",
							name, rep.RepairRounds, rep.RepairIterations, diameter)
					}
					if rep.Repaired < 1 || rep.Dropped < 1 {
						t.Fatalf("%s: accounting wrong: %+v", name, rep)
					}
					if rep.TotalRounds != rep.ScheduleRounds+rep.RepairRounds {
						t.Fatalf("%s: round accounting wrong: %+v", name, rep)
					}
				}
			}
		}
	}
}

// TestExecuteWithFaultsHealsRandomLoss: seeded 1% Bernoulli loss — striking
// repair rounds too — is healed to coverage 1.0 on every named topology.
func TestExecuteWithFaultsHealsRandomLoss(t *testing.T) {
	for name, nw := range namedNetworks() {
		plan, err := nw.PlanGossip()
		if err != nil {
			t.Fatal(err)
		}
		diameter := nw.Diameter()
		rep, err := plan.ExecuteWithFaults(WithLinkLoss(0.01, 11))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Complete || rep.FinalCoverage != 1 {
			t.Fatalf("%s: 1%% loss not healed: %+v", name, rep)
		}
		if rep.RepairRounds > diameter*rep.RepairIterations {
			t.Fatalf("%s: overhead %d rounds in %d iterations exceeds diameter %d per iteration",
				name, rep.RepairRounds, rep.RepairIterations, diameter)
		}
	}
}

func TestExecuteWithFaultsCrashWindow(t *testing.T) {
	plan, err := Mesh(4, 4).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults(WithCrashWindow(5, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage >= 1 {
		t.Fatalf("crashing a processor for 6 rounds lost nothing: %+v", rep)
	}
	if !rep.Complete || rep.FinalCoverage != 1 {
		t.Fatalf("crash window not healed: %+v", rep)
	}
}

func TestExecuteWithFaultsWithoutRepair(t *testing.T) {
	plan, err := Ring(9).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults(WithDroppedDelivery(0, 0, plan.Round(0)[0].To[0]), WithoutRepair())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete || rep.FinalCoverage != rep.Coverage || rep.Coverage >= 1 {
		t.Fatalf("WithoutRepair still repaired: %+v", rep)
	}
	if rep.RepairRounds != 0 || rep.TotalRounds != rep.ScheduleRounds {
		t.Fatalf("WithoutRepair round accounting wrong: %+v", rep)
	}
}

// TestExecuteWithFaultsRepairBudget: a budget of one iteration may leave a
// heavy loss unhealed, but the report must say so honestly.
func TestExecuteWithFaultsRepairBudget(t *testing.T) {
	plan, err := Ring(32).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	full, err := plan.ExecuteWithFaults(WithLinkLoss(0.2, 3))
	if err != nil {
		t.Fatal(err)
	}
	capped, err := plan.ExecuteWithFaults(WithLinkLoss(0.2, 3), WithRepairBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if capped.RepairIterations > 1 {
		t.Fatalf("budget 1 ran %d iterations", capped.RepairIterations)
	}
	if capped.FinalCoverage > full.FinalCoverage {
		t.Fatalf("capped repair beat full repair: %v > %v", capped.FinalCoverage, full.FinalCoverage)
	}
	if full.Coverage != capped.Coverage {
		t.Fatalf("same seed gave different raw coverage: %v vs %v — loss model not deterministic",
			full.Coverage, capped.Coverage)
	}
}

func TestExecuteWithFaultsRejectsBadOptions(t *testing.T) {
	plan, err := Ring(8).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]FaultOption{
		"negative delivery":   WithDroppedDelivery(-1, 0, 0),
		"loss below range":    WithLinkLoss(-0.1, 1),
		"loss above range":    WithLinkLoss(1.1, 1),
		"negative crash proc": WithCrashWindow(-1, 0, 5),
		"inverted window":     WithCrashWindow(0, 5, 2),
		"zero budget":         WithRepairBudget(0),
	} {
		if _, err := plan.ExecuteWithFaults(opt); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := plan.ExecuteWithFaults(WithCrashWindow(8, 0, 5)); err == nil {
		t.Fatal("out-of-range crash processor accepted")
	}
}

// TestExecuteWithFaultsCrashStop is the crash-stop acceptance property:
// for every processor v of every named topology, crash-stopping v before
// round 0 makes the recovery quarantine exactly v, finish for the live
// partition within three iterations of the quarantine, and report coverage
// 1.0 over the reachable ceiling. When the network minus v stays connected
// the unreachable set is exactly v's 2(n-1) cross pairs, so FinalCoverage
// is (n^2-2(n-1))/n^2 exactly.
func TestExecuteWithFaultsCrashStop(t *testing.T) {
	for name, nw := range namedNetworks() {
		plan, err := nw.PlanGossip()
		if err != nil {
			t.Fatal(err)
		}
		n := nw.Processors()
		for v := 0; v < n; v++ {
			rep, err := plan.ExecuteWithFaults(WithCrashStop(v, 0))
			if err != nil {
				t.Fatalf("%s crash %d: %v", name, v, err)
			}
			if rep.Stalled {
				t.Fatalf("%s crash %d: recovery stalled: %+v", name, v, rep)
			}
			if len(rep.DownProcessors) != 1 || rep.DownProcessors[0] != v {
				t.Fatalf("%s crash %d: DownProcessors %v, want [%d]", name, v, rep.DownProcessors, v)
			}
			if len(rep.QuarantinedLinks) != 0 {
				t.Fatalf("%s crash %d: crash misattributed to links %v", name, v, rep.QuarantinedLinks)
			}
			if rep.ReachableCoverage != 1.0 {
				t.Fatalf("%s crash %d: ReachableCoverage %v, want exactly 1.0", name, v, rep.ReachableCoverage)
			}
			if rep.Complete {
				t.Fatalf("%s crash %d: claimed full completion despite a dead processor", name, v)
			}
			if rep.RepairIterations > repair.DefaultQuarantineThreshold+3 {
				t.Fatalf("%s crash %d: %d repair iterations, want <= %d",
					name, v, rep.RepairIterations, repair.DefaultQuarantineThreshold+3)
			}
			// Does removing v leave the survivors connected?
			rest := graph.New(n)
			for _, e := range nw.g.Edges() {
				if e.U != v && e.V != v {
					rest.AddEdge(e.U, e.V)
				}
			}
			liveComps := 0
			for _, c := range rest.Components() {
				if len(c) > 1 || c[0] != v {
					liveComps++
				}
			}
			if liveComps != 1 {
				continue
			}
			if rep.Components != 2 {
				t.Fatalf("%s crash %d: %d survivor components, want 2", name, v, rep.Components)
			}
			if len(rep.Unreachable) != 2*(n-1) {
				t.Fatalf("%s crash %d: %d unreachable pairs, want %d",
					name, v, len(rep.Unreachable), 2*(n-1))
			}
			for _, pr := range rep.Unreachable {
				if pr.Processor != v && pr.Message != v {
					t.Fatalf("%s crash %d: pair %v unreachable without involving the crash", name, v, pr)
				}
			}
			want := float64(n*n-2*(n-1)) / float64(n*n)
			if rep.FinalCoverage != want {
				t.Fatalf("%s crash %d: FinalCoverage %v, want exactly %v", name, v, rep.FinalCoverage, want)
			}
		}
	}
}

// TestExecuteWithFaultsDeadLinkRing: a dead link on a ring is not a cut
// edge, so recovery quarantines it and routes the deficit the long way
// around to full completion.
func TestExecuteWithFaultsDeadLinkRing(t *testing.T) {
	plan, err := Ring(9).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults(WithDeadLink(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.FinalCoverage != 1 || rep.ReachableCoverage != 1 {
		t.Fatalf("dead ring link not routed around: %+v", rep)
	}
	if len(rep.DownProcessors) != 0 {
		t.Fatalf("dead link misattributed to processors %v", rep.DownProcessors)
	}
	if rep.Stalled {
		t.Fatalf("recovery stalled: %+v", rep)
	}
}

// TestExecuteWithFaultsDeadLinkPartition: severing the only bridge of a
// line degrades gracefully — both sides finish internally, the bridge is
// quarantined, and the report names exactly the cross-partition pairs.
func TestExecuteWithFaultsDeadLinkPartition(t *testing.T) {
	const n = 7
	plan, err := Line(n).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults(WithDeadLink(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete || rep.Stalled {
		t.Fatalf("partitioned run reported Complete=%v Stalled=%v", rep.Complete, rep.Stalled)
	}
	if len(rep.QuarantinedLinks) != 1 || rep.QuarantinedLinks[0] != (Link{U: 3, V: 4}) {
		t.Fatalf("quarantined %v, want exactly [{3 4}]", rep.QuarantinedLinks)
	}
	if rep.Components != 2 {
		t.Fatalf("%d survivor components, want 2", rep.Components)
	}
	if rep.ReachableCoverage != 1.0 {
		t.Fatalf("ReachableCoverage %v, want 1.0", rep.ReachableCoverage)
	}
	if want := 2 * 4 * 3; len(rep.Unreachable) != want {
		t.Fatalf("%d unreachable pairs, want %d", len(rep.Unreachable), want)
	}
	for _, pr := range rep.Unreachable {
		left := pr.Processor <= 3
		msgLeft := pr.Message <= 3
		if left == msgLeft {
			t.Fatalf("pair %v reported unreachable but crosses no partition", pr)
		}
	}
}

// TestExecuteWithFaultsQuarantineThreshold: threshold 1 amputates the dead
// link after a single failed iteration, so recovery is strictly faster
// than at the default threshold.
func TestExecuteWithFaultsQuarantineThreshold(t *testing.T) {
	plan, err := Ring(9).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := plan.ExecuteWithFaults(WithDeadLink(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := plan.ExecuteWithFaults(WithDeadLink(0, 1), WithQuarantineThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Complete {
		t.Fatalf("threshold 1 did not complete: %+v", fast)
	}
	if fast.RepairIterations >= slow.RepairIterations {
		t.Fatalf("threshold 1 took %d iterations, default took %d — no speedup",
			fast.RepairIterations, slow.RepairIterations)
	}
}

// TestExecuteWithFaultsWithoutRepairReachable: with repair disabled the
// survivor machinery never runs, and ReachableCoverage mirrors Coverage.
func TestExecuteWithFaultsWithoutRepairReachable(t *testing.T) {
	plan, err := Line(7).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults(WithDeadLink(3, 4), WithoutRepair())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReachableCoverage != rep.Coverage {
		t.Fatalf("ReachableCoverage %v != Coverage %v with repair disabled",
			rep.ReachableCoverage, rep.Coverage)
	}
	if len(rep.QuarantinedLinks) != 0 || len(rep.DownProcessors) != 0 || rep.Components != 0 {
		t.Fatalf("repair-disabled report shows survivor state: %+v", rep)
	}
}

func TestExecuteWithFaultsRejectsBadPermanentFaults(t *testing.T) {
	plan, err := Ring(8).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]FaultOption{
		"negative dead link":   WithDeadLink(-1, 2),
		"self-loop dead link":  WithDeadLink(3, 3),
		"negative crash-stop":  WithCrashStop(-1, 0),
		"negative crash round": WithCrashStop(0, -1),
		"zero quarantine":      WithQuarantineThreshold(0),
	} {
		if _, err := plan.ExecuteWithFaults(opt); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := plan.ExecuteWithFaults(WithDeadLink(0, 8)); err == nil {
		t.Fatal("out-of-range dead link accepted")
	}
	if _, err := plan.ExecuteWithFaults(WithDeadLink(0, 4)); err == nil {
		t.Fatal("dead link on a non-link accepted")
	}
	if _, err := plan.ExecuteWithFaults(WithCrashStop(8, 0)); err == nil {
		t.Fatal("out-of-range crash-stop accepted")
	}
}
