package multigossip

import (
	"math/rand"
	"testing"
)

// namedNetworks returns a small instance of every named topology
// constructor, the set the acceptance property tests sweep.
func namedNetworks() map[string]*Network {
	rng := rand.New(rand.NewSource(5))
	return map[string]*Network{
		"line":      Line(7),
		"ring":      Ring(9),
		"star":      Star(8),
		"complete":  FullyConnected(6),
		"mesh":      Mesh(3, 4),
		"torus":     Torus(3, 3),
		"hypercube": Hypercube(3),
		"petersen":  PetersenGraph(),
		"fig4":      Fig4Network(),
		"random":    RandomNetwork(rng, 12, 0.3),
		"sensor":    SensorField(rng, 12, 0.5),
		"tree":      RandomTreeNetwork(rng, 12),
	}
}

func TestExecuteWithFaultsFaultFree(t *testing.T) {
	plan, err := Ring(8).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Coverage != 1 || rep.FinalCoverage != 1 {
		t.Fatalf("fault-free execution incomplete: %+v", rep)
	}
	if rep.Dropped != 0 || rep.Repaired != 0 || rep.RepairRounds != 0 || rep.RepairIterations != 0 {
		t.Fatalf("fault-free execution paid for repair: %+v", rep)
	}
	if rep.TotalRounds != plan.Rounds() || rep.ScheduleRounds != plan.Rounds() {
		t.Fatalf("round accounting wrong: %+v", rep)
	}
}

// TestExecuteWithFaultsHealsEverySingleDrop: every delivery of a
// ConcurrentUpDown schedule is critical (Plan.Criticality is 1.0), yet
// repair restores full coverage after any single drop, in at most
// diameter-per-iteration extra rounds.
func TestExecuteWithFaultsHealsEverySingleDrop(t *testing.T) {
	for name, nw := range namedNetworks() {
		plan, err := nw.PlanGossip()
		if err != nil {
			t.Fatal(err)
		}
		diameter := nw.Diameter()
		for r := 0; r < plan.Rounds(); r++ {
			for txIdx, tx := range plan.Round(r) {
				for _, d := range tx.To {
					rep, err := plan.ExecuteWithFaults(WithDroppedDelivery(r, txIdx, d))
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if rep.Coverage >= 1 {
						t.Fatalf("%s: dropping (%d,%d,%d) left coverage %v — CUD deliveries are all critical",
							name, r, txIdx, d, rep.Coverage)
					}
					if !rep.Complete || rep.FinalCoverage != 1 {
						t.Fatalf("%s: drop (%d,%d,%d) not healed: %+v", name, r, txIdx, d, rep)
					}
					if rep.RepairRounds > diameter*rep.RepairIterations {
						t.Fatalf("%s: overhead %d rounds in %d iterations exceeds diameter %d per iteration",
							name, rep.RepairRounds, rep.RepairIterations, diameter)
					}
					if rep.Repaired < 1 || rep.Dropped < 1 {
						t.Fatalf("%s: accounting wrong: %+v", name, rep)
					}
					if rep.TotalRounds != rep.ScheduleRounds+rep.RepairRounds {
						t.Fatalf("%s: round accounting wrong: %+v", name, rep)
					}
				}
			}
		}
	}
}

// TestExecuteWithFaultsHealsRandomLoss: seeded 1% Bernoulli loss — striking
// repair rounds too — is healed to coverage 1.0 on every named topology.
func TestExecuteWithFaultsHealsRandomLoss(t *testing.T) {
	for name, nw := range namedNetworks() {
		plan, err := nw.PlanGossip()
		if err != nil {
			t.Fatal(err)
		}
		diameter := nw.Diameter()
		rep, err := plan.ExecuteWithFaults(WithLinkLoss(0.01, 11))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Complete || rep.FinalCoverage != 1 {
			t.Fatalf("%s: 1%% loss not healed: %+v", name, rep)
		}
		if rep.RepairRounds > diameter*rep.RepairIterations {
			t.Fatalf("%s: overhead %d rounds in %d iterations exceeds diameter %d per iteration",
				name, rep.RepairRounds, rep.RepairIterations, diameter)
		}
	}
}

func TestExecuteWithFaultsCrashWindow(t *testing.T) {
	plan, err := Mesh(4, 4).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults(WithCrashWindow(5, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage >= 1 {
		t.Fatalf("crashing a processor for 6 rounds lost nothing: %+v", rep)
	}
	if !rep.Complete || rep.FinalCoverage != 1 {
		t.Fatalf("crash window not healed: %+v", rep)
	}
}

func TestExecuteWithFaultsWithoutRepair(t *testing.T) {
	plan, err := Ring(9).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteWithFaults(WithDroppedDelivery(0, 0, plan.Round(0)[0].To[0]), WithoutRepair())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete || rep.FinalCoverage != rep.Coverage || rep.Coverage >= 1 {
		t.Fatalf("WithoutRepair still repaired: %+v", rep)
	}
	if rep.RepairRounds != 0 || rep.TotalRounds != rep.ScheduleRounds {
		t.Fatalf("WithoutRepair round accounting wrong: %+v", rep)
	}
}

// TestExecuteWithFaultsRepairBudget: a budget of one iteration may leave a
// heavy loss unhealed, but the report must say so honestly.
func TestExecuteWithFaultsRepairBudget(t *testing.T) {
	plan, err := Ring(32).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	full, err := plan.ExecuteWithFaults(WithLinkLoss(0.2, 3))
	if err != nil {
		t.Fatal(err)
	}
	capped, err := plan.ExecuteWithFaults(WithLinkLoss(0.2, 3), WithRepairBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if capped.RepairIterations > 1 {
		t.Fatalf("budget 1 ran %d iterations", capped.RepairIterations)
	}
	if capped.FinalCoverage > full.FinalCoverage {
		t.Fatalf("capped repair beat full repair: %v > %v", capped.FinalCoverage, full.FinalCoverage)
	}
	if full.Coverage != capped.Coverage {
		t.Fatalf("same seed gave different raw coverage: %v vs %v — loss model not deterministic",
			full.Coverage, capped.Coverage)
	}
}

func TestExecuteWithFaultsRejectsBadOptions(t *testing.T) {
	plan, err := Ring(8).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]FaultOption{
		"negative delivery":   WithDroppedDelivery(-1, 0, 0),
		"loss below range":    WithLinkLoss(-0.1, 1),
		"loss above range":    WithLinkLoss(1.1, 1),
		"negative crash proc": WithCrashWindow(-1, 0, 5),
		"inverted window":     WithCrashWindow(0, 5, 2),
		"zero budget":         WithRepairBudget(0),
	} {
		if _, err := plan.ExecuteWithFaults(opt); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := plan.ExecuteWithFaults(WithCrashWindow(8, 0, 5)); err == nil {
		t.Fatal("out-of-range crash processor accepted")
	}
}
