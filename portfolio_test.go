package multigossip

import (
	"math/rand"
	"strings"
	"testing"

	"multigossip/internal/algo"
	"multigossip/internal/beep"
	"multigossip/internal/core"
)

// TestAlgorithmEnumsAgree pins the enum unification: the public Algorithm,
// the internal core.Algorithm and the registry ID are one type, and the
// re-exported constants carry the registry's values and names. Before the
// registry existed, multigossip and core each declared their own enum and
// a third copy of the names lived in gossipd — three lists that could (and
// did) silently drift.
func TestAlgorithmEnumsAgree(t *testing.T) {
	// Compile-time: all three are the same type (assignment needs no cast).
	var a Algorithm = algo.Pipelined
	var c core.Algorithm = a
	_ = c

	pairs := []struct {
		pub  Algorithm
		reg  algo.ID
		name string
	}{
		{ConcurrentUpDown, algo.ConcurrentUpDown, "ConcurrentUpDown"},
		{Simple, algo.Simple, "Simple"},
		{Pipelined, algo.Pipelined, "Pipelined"},
		{Algebraic, algo.Algebraic, "Algebraic"},
		{Weighted, algo.Weighted, "Weighted"},
		{Beep, algo.Beep, "Beep"},
	}
	for _, p := range pairs {
		if p.pub != p.reg {
			t.Errorf("%s: public value %d != registry value %d", p.name, p.pub, p.reg)
		}
		if got := p.pub.String(); got != p.name {
			t.Errorf("String() = %q, want %q", got, p.name)
		}
		if got, err := ParseAlgorithm(strings.ToLower(p.name)); err != nil || got != p.pub {
			t.Errorf("ParseAlgorithm(%q) = %v, %v, want %v", strings.ToLower(p.name), got, err, p.pub)
		}
	}
	if core.ConcurrentUpDown != ConcurrentUpDown || core.Simple != Simple {
		t.Error("core re-exports disagree with the public constants")
	}
}

// TestPlanBuildersCoverRegistry requires the facade's builder table to
// cover the registry exactly — the check package algo cannot perform
// itself (builders live above it in the import graph).
func TestPlanBuildersCoverRegistry(t *testing.T) {
	reg := algo.Registry()
	if len(planBuilders) != len(reg) {
		t.Fatalf("planBuilders has %d entries, registry has %d", len(planBuilders), len(reg))
	}
	for _, info := range reg {
		if _, ok := planBuilders[info.ID]; !ok {
			t.Errorf("registered algorithm %s has no plan builder", info.Name)
		}
	}
}

// TestParseAlgorithm checks default, aliases, whitespace and the unknown
// hint listing every registered name.
func TestParseAlgorithm(t *testing.T) {
	if a, err := ParseAlgorithm(""); err != nil || a != ConcurrentUpDown {
		t.Fatalf("ParseAlgorithm(\"\") = %v, %v, want ConcurrentUpDown", a, err)
	}
	for name, want := range map[string]Algorithm{
		"cud": ConcurrentUpDown, " CUD ": ConcurrentUpDown,
		"flood": Pipelined, "rlnc": Algebraic, "coded": Algebraic,
		"weightedgossip": Weighted, "radio": Beep, "collision": Beep,
	} {
		if a, err := ParseAlgorithm(name); err != nil || a != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v, want %v", name, a, err, want)
		}
	}
	_, err := ParseAlgorithm("quantum")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for _, name := range AlgorithmNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestPortfolioPlansVerify plans every registered algorithm on several
// topologies, re-verifies each plan under the model and holds it to the
// registry's rounds bound — the library-level version of the scenario
// matrix's per-cell assertion.
func TestPortfolioPlansVerify(t *testing.T) {
	nets := map[string]*Network{
		"ring13":  Ring(13),
		"mesh4x5": Mesh(4, 5),
		"star9":   Star(9),
	}
	for _, info := range Algorithms() {
		for name, nw := range nets {
			t.Run(info.Name+"/"+name, func(t *testing.T) {
				plan, err := nw.PlanGossip(WithAlgorithm(info.ID), WithSeed(3))
				if err != nil {
					t.Fatal(err)
				}
				if got := plan.Algorithm(); got != info.ID {
					t.Fatalf("Algorithm() = %v, want %v", got, info.ID)
				}
				if err := plan.Verify(); err != nil {
					t.Fatalf("Verify: %v", err)
				}
				n, r := nw.Processors(), plan.Radius()
				bound := info.Bound(AlgorithmBoundParams{
					N: n, Radius: r, Diameter: nw.Diameter(), Messages: n, ExpandedRadius: r,
				})
				if plan.Rounds() > bound {
					t.Fatalf("%d rounds exceeds %s bound %d", plan.Rounds(), info.BoundName, bound)
				}
				if info.ExactBound && plan.Rounds() != bound {
					t.Fatalf("%d rounds, want exactly %s = %d", plan.Rounds(), info.BoundName, bound)
				}
				if plan.Schedulable() != info.Schedulable {
					t.Fatalf("Schedulable() = %t, registry says %t", plan.Schedulable(), info.Schedulable)
				}
			})
		}
	}
}

// TestBeepPlanIsCollisionValid re-validates the Beep plan's schedule under
// the stricter radio model: every transmission floods the sender's whole
// neighbourhood, and a processor hearing two transmitters receives nothing.
func TestBeepPlanIsCollisionValid(t *testing.T) {
	nw := Mesh(4, 4)
	plan, err := nw.PlanGossip(WithAlgorithm(Beep))
	if err != nil {
		t.Fatal(err)
	}
	if err := beep.Validate(plan.network, plan.sched); err != nil {
		t.Fatalf("beep validation: %v", err)
	}
}

// TestAlgebraicPlanSurface pins the non-schedulable plan contract: rounds
// are reported, the schedule-shaped surface degrades explicitly instead of
// panicking, and schedule-consuming operations return errors naming the
// limitation.
func TestAlgebraicPlanSurface(t *testing.T) {
	nw := Ring(10)
	plan, err := nw.PlanGossip(WithAlgorithm(Algebraic), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Schedulable() {
		t.Fatal("algebraic plan claims a transmission schedule")
	}
	if plan.Rounds() <= 0 {
		t.Fatalf("Rounds = %d, want > 0", plan.Rounds())
	}
	if plan.Seed() != 11 {
		t.Fatalf("Seed = %d, want 11", plan.Seed())
	}
	if got := plan.Round(0); got != nil {
		t.Fatalf("Round(0) = %v, want nil", got)
	}
	if err := plan.Verify(); err != nil {
		t.Fatalf("Verify (re-simulation): %v", err)
	}
	if !strings.Contains(plan.Stats(), "seed 11") {
		t.Fatalf("Stats() = %q, want the realized-run summary with the seed", plan.Stats())
	}
	if _, err := plan.ExecuteWithFaults(); err == nil {
		t.Fatal("ExecuteWithFaults succeeded on a coded plan")
	}
	if _, err := plan.MarshalJSON(); err == nil {
		t.Fatal("MarshalJSON succeeded on a coded plan")
	}
	if _, _, err := plan.Criticality(); err == nil {
		t.Fatal("Criticality succeeded on a coded plan")
	}
}

// TestSeedKeysPlanCache: the cache must treat two seeds of a randomized
// algorithm as distinct plans, and must ignore the seed for deterministic
// ones (same plan, one entry).
func TestSeedKeysPlanCache(t *testing.T) {
	pc := NewPlanCache()
	nw := Ring(12)
	if _, src, err := pc.PlanSourced(nw, WithAlgorithm(Algebraic), WithSeed(1)); err != nil || src != CacheMiss {
		t.Fatalf("first algebraic: %v, %v", src, err)
	}
	if _, src, err := pc.PlanSourced(nw, WithAlgorithm(Algebraic), WithSeed(1)); err != nil || src != CacheHit {
		t.Fatalf("repeat seed: source %v, want hit (%v)", src, err)
	}
	if _, src, err := pc.PlanSourced(nw, WithAlgorithm(Algebraic), WithSeed(2)); err != nil || src != CacheMiss {
		t.Fatalf("new seed: source %v, want miss (%v)", src, err)
	}
	if _, src, err := pc.PlanSourced(nw, WithSeed(1)); err != nil || src != CacheMiss {
		t.Fatalf("first cud: %v, %v", src, err)
	}
	if _, src, err := pc.PlanSourced(nw, WithSeed(99)); err != nil || src != CacheHit {
		t.Fatalf("cud with different seed: source %v, want hit — deterministic plans ignore the seed (%v)", src, err)
	}
}

// TestPortfolioRandomTrees runs every deterministic schedulable algorithm
// over seeded random trees and checks completion within bounds — tree
// inputs hit the arbitration-heavy paths (pipelined) and the collision
// admission (beep) hardest.
func TestPortfolioRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(28)
		nw := RandomTreeNetwork(rng, n)
		for _, info := range Algorithms() {
			if !info.Deterministic {
				continue
			}
			plan, err := nw.PlanGossip(WithAlgorithm(info.ID))
			if err != nil {
				t.Fatalf("seed %d n %d %s: %v", seed, n, info.Name, err)
			}
			if err := plan.Verify(); err != nil {
				t.Fatalf("seed %d n %d %s: verify: %v", seed, n, info.Name, err)
			}
			r := plan.Radius()
			bound := info.Bound(AlgorithmBoundParams{
				N: n, Radius: r, Diameter: nw.Diameter(), Messages: n, ExpandedRadius: r,
			})
			if plan.Rounds() > bound {
				t.Fatalf("seed %d n %d %s: %d rounds exceeds bound %d", seed, n, info.Name, plan.Rounds(), bound)
			}
		}
	}
}
