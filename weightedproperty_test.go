package multigossip

import (
	"math/rand"
	"sync"
	"testing"
)

// TestWeightedPlanRoundOutOfRange is the regression test for the
// out-of-range panic: Round used to index the contracted schedule
// unchecked, so a negative round or one past the end crashed the caller.
// Both must return empty now, and RoundAppend must leave dst untouched.
func TestWeightedPlanRoundOutOfRange(t *testing.T) {
	plan, err := Ring(5).PlanWeightedGossip([]int{1, 2, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []int{-1, -100, plan.Rounds(), plan.Rounds() + 7} {
		if got := plan.Round(tc); len(got) != 0 {
			t.Errorf("Round(%d) = %d transmissions, want none", tc, len(got))
		}
	}
	scratch := plan.Round(0)
	if len(scratch) == 0 {
		t.Fatal("round 0 is empty")
	}
	if got := plan.RoundAppend(plan.Rounds(), scratch); len(got) != len(scratch) {
		t.Errorf("RoundAppend past the end grew dst from %d to %d", len(scratch), len(got))
	}
	if got := plan.RoundAppend(-3, scratch); len(got) != len(scratch) {
		t.Errorf("RoundAppend(-3) grew dst from %d to %d", len(scratch), len(got))
	}
	if plan.MessageOwner(-1) != -1 || plan.MessageOwner(plan.TotalMessages()) != -1 {
		t.Error("MessageOwner out of range must return -1")
	}
}

// TestWeightedTheorem1Exact asserts the paper's Theorem 1 equality on the
// chain expansion — ExpandedRounds == TotalMessages + ExpandedRadius,
// exactly, not just as an upper bound — across named topologies with
// non-uniform counts and across seeded random trees.
func TestWeightedTheorem1Exact(t *testing.T) {
	check := func(t *testing.T, nw *Network, counts []int) {
		t.Helper()
		plan, err := nw.PlanWeightedGossip(counts)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if got, want := plan.ExpandedRounds(), plan.TotalMessages()+plan.ExpandedRadius(); got != want {
			t.Fatalf("ExpandedRounds = %d, want N + R = %d + %d = %d",
				got, plan.TotalMessages(), plan.ExpandedRadius(), want)
		}
		if plan.Rounds() > plan.ExpandedRounds() {
			t.Fatalf("contracted %d rounds exceeds expanded %d", plan.Rounds(), plan.ExpandedRounds())
		}
	}

	named := []struct {
		name string
		nw   *Network
	}{
		{"ring9", Ring(9)},
		{"line7", Line(7)},
		{"mesh3x4", Mesh(3, 4)},
		{"star8", Star(8)},
		{"torus3x3", Torus(3, 3)},
		{"hypercube3", Hypercube(3)},
		{"complete6", FullyConnected(6)},
		{"petersen", PetersenGraph()},
		{"fig4", Fig4Network()},
	}
	for _, tc := range named {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.nw.Processors()
			counts := make([]int, n)
			for i := range counts {
				counts[i] = 1 + (i % 3) // mixed 1..3
			}
			check(t, tc.nw, counts)
		})
	}
	t.Run("random-trees", func(t *testing.T) {
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(22)
			nw := RandomTreeNetwork(rng, n)
			counts := make([]int, n)
			for i := range counts {
				counts[i] = 1 + rng.Intn(4)
			}
			check(t, nw, counts)
		}
	})
}

// TestWeightedPlanConcurrentReaders is the -race certificate for sharing
// one WeightedPlan between goroutines: cached weighted plans are served to
// concurrent requests exactly like Plan, so every read-only method must be
// safe without external locking.
func TestWeightedPlanConcurrentReaders(t *testing.T) {
	plan, err := Mesh(3, 3).PlanWeightedGossip([]int{1, 2, 1, 3, 1, 1, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var scratch []Transmission
			for i := 0; i < 50; i++ {
				scratch = plan.RoundAppend(i%(plan.Rounds()+2)-1, scratch[:0])
				_ = plan.Round(i % plan.Rounds())
				_ = plan.TimetableOf(i % 9)
				_ = plan.MessageOwner(i % plan.TotalMessages())
				_ = plan.Rounds()
				_ = plan.ExpandedRounds()
				if i%10 == g {
					if err := plan.Verify(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWeightedPlanExecuteWithFaults runs the weighted schedule through the
// fault-injection and self-healing stack: lossy links must end complete
// after repair, and the coverage fractions must account for all
// TotalMessages (not just n) messages.
func TestWeightedPlanExecuteWithFaults(t *testing.T) {
	plan, err := Ring(8).PlanWeightedGossip([]int{2, 1, 1, 3, 1, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}

	clean, err := plan.ExecuteWithFaults()
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Complete || clean.Coverage != 1 || clean.RepairRounds != 0 {
		t.Fatalf("fault-free execution: %+v, want complete full coverage with no repair", clean)
	}
	if clean.ScheduleRounds != plan.Rounds() {
		t.Fatalf("ScheduleRounds = %d, want %d", clean.ScheduleRounds, plan.Rounds())
	}

	lossy, err := plan.ExecuteWithFaults(WithLinkLoss(0.2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !lossy.Complete {
		t.Fatalf("lossy execution did not heal: %+v", lossy)
	}
	if lossy.Dropped == 0 {
		t.Fatal("20% link loss dropped nothing — injection did not reach the weighted schedule")
	}
	if lossy.Coverage >= 1 {
		t.Fatalf("schedule-only coverage %v under loss, want < 1", lossy.Coverage)
	}

	norep, err := plan.ExecuteWithFaults(WithLinkLoss(0.5, 3), WithoutRepair())
	if err != nil {
		t.Fatal(err)
	}
	if norep.Complete || norep.RepairRounds != 0 {
		t.Fatalf("repair disabled: %+v, want incomplete with no repair rounds", norep)
	}

	if _, err := plan.ExecuteWithFaults(WithCrashWindow(99, 0, 2)); err == nil {
		t.Fatal("crash processor out of range accepted")
	}
	if _, err := plan.ExecuteWithFaults(WithDeadLink(0, 4)); err == nil {
		t.Fatal("dead non-link accepted")
	}
}

// TestWeightedPlanCache covers the weighted cache tier: same (topology,
// counts) hits, different counts miss, and the convenience wrapper returns
// the shared cached plan.
func TestWeightedPlanCache(t *testing.T) {
	pc := NewPlanCache()
	nw := Ring(7)
	counts := []int{1, 2, 1, 1, 3, 1, 1}

	p1, src, err := pc.WeightedPlanSourced(nw, counts)
	if err != nil || src != CacheMiss {
		t.Fatalf("first: source %v, err %v", src, err)
	}
	p2, src, err := pc.WeightedPlanSourced(nw, counts)
	if err != nil || src != CacheHit {
		t.Fatalf("repeat: source %v, err %v", src, err)
	}
	if p1 != p2 {
		t.Fatal("cache hit returned a different plan")
	}
	other := []int{1, 2, 1, 1, 3, 1, 2}
	if _, src, err = pc.WeightedPlanSourced(nw, other); err != nil || src != CacheMiss {
		t.Fatalf("different counts: source %v, err %v — counts must key the entry", src, err)
	}
	p3, err := pc.WeightedPlan(nw, counts)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("wrapper missed the cached plan")
	}
	if _, _, err := pc.WeightedPlanSourced(NewNetwork(3), []int{1, 1, 1}); err == nil {
		t.Fatal("disconnected weighted plan cached without error")
	}
}
