package multigossip

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestRemoveLinkAbsentIsNoop(t *testing.T) {
	nw := Ring(8)
	fp := nw.Fingerprint()
	if err := nw.RemoveLink(0, 4); err != nil {
		t.Fatalf("removing an absent link: %v", err)
	}
	if nw.Links() != 8 {
		t.Errorf("absent-link removal changed the link count to %d", nw.Links())
	}
	if nw.Fingerprint() != fp {
		t.Error("absent-link removal changed the fingerprint")
	}
}

func TestRemoveLinkBridgeRollsBack(t *testing.T) {
	nw := Line(6) // every link of a line is a bridge
	err := nw.RemoveLink(2, 3)
	if err == nil {
		t.Fatal("bridge removal succeeded")
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("bridge removal error %v does not wrap ErrDisconnected", err)
	}
	if !nw.HasLink(2, 3) {
		t.Error("bridge removal was not rolled back")
	}
	if !nw.Connected() {
		t.Error("network disconnected after rolled-back removal")
	}
	if r := nw.Radius(); r != 3 {
		t.Errorf("radius %d after rolled-back removal, want 3", r)
	}
}

func TestRemoveLinkFingerprintBitIdentical(t *testing.T) {
	nw := Ring(16)
	orig := nw.Fingerprint()

	// Remove an existing link and re-add it: the fingerprint must come back
	// bit for bit, because the XOR delta self-cancels.
	if err := nw.RemoveLink(3, 4); err != nil {
		t.Fatal(err)
	}
	removed := nw.Fingerprint()
	if removed == orig {
		t.Error("fingerprint unchanged by a real removal")
	}
	nw.AddLink(3, 4)
	if got := nw.Fingerprint(); got != orig {
		t.Errorf("fingerprint %#x after remove-then-re-add, want original %#x", got, orig)
	}

	// The incrementally maintained value must also agree with a from-scratch
	// computation over the same topology.
	nw.AddLink(0, 8)
	fresh := Ring(16)
	fresh.AddLink(0, 8)
	if nw.Fingerprint() != fresh.Fingerprint() {
		t.Error("incremental fingerprint diverged from the from-scratch value")
	}
}

// TestRemoveLinkMetricsStayExact churns a random network with interleaved
// metric reads and cross-checks every read against a freshly built network
// of the same topology, exercising both the repair path and the fallback.
func TestRemoveLinkMetricsStayExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	nw := RandomNetwork(rng, 48, 0.12)
	for step := 0; step < 30; step++ {
		u, v := rng.Intn(48), rng.Intn(48)
		if u == v {
			continue
		}
		if nw.HasLink(u, v) {
			if err := nw.RemoveLink(u, v); err != nil && !errors.Is(err, ErrDisconnected) {
				t.Fatal(err)
			}
		} else {
			nw.AddLink(u, v)
		}
		got, err := nw.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		fresh := NewNetwork(48)
		for u := 0; u < 48; u++ {
			for v := u + 1; v < 48; v++ {
				if nw.HasLink(u, v) {
					fresh.AddLink(u, v)
				}
			}
		}
		want, err := fresh.Metrics()
		if err != nil {
			t.Fatal(err)
		}
		if got.Radius != want.Radius || got.Diameter != want.Diameter {
			t.Fatalf("step %d: metrics (r=%d,d=%d), fresh network says (r=%d,d=%d)",
				step, got.Radius, got.Diameter, want.Radius, want.Diameter)
		}
	}
}

// TestConcurrentChurnAndAccessors is the -race regression test for the
// unlocked read-accessor bug: HasLink, Links and Connected used to read the
// graph without the mutation lock, racing AddLink. It hammers every
// accessor against concurrent AddLink/RemoveLink churn.
func TestConcurrentChurnAndAccessors(t *testing.T) {
	nw := Ring(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				u := (i*13 + w*17) % 64
				v := (u + 2 + i%31) % 64
				if u == v {
					continue
				}
				if i%3 == 0 {
					_ = nw.RemoveLink(u, v) // may fail on a bridge; rollback keeps it legal
				} else {
					nw.AddLink(u, v)
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch (i + w) % 5 {
				case 0:
					nw.HasLink(i%64, (i+1)%64)
				case 1:
					if nw.Links() < 0 {
						t.Error("negative link count")
					}
				case 2:
					if !nw.Connected() {
						t.Error("network disconnected under rollback-guarded churn")
					}
				case 3:
					nw.Fingerprint()
				default:
					if r := nw.Radius(); r < 1 || r > 32 {
						t.Errorf("radius %d out of range", r)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
