package multigossip

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentTracedExecutions hammers one shared Plan from many
// goroutines mixing the fault-free traced path, faulty executions with
// repair, and plain verification, all recording into one shared Tracer and
// one shared Metrics registry while other goroutines concurrently snapshot
// and export them. Run under -race (make check does) this is the data-race
// certificate for the observability layer.
func TestConcurrentTracedExecutions(t *testing.T) {
	nw := Ring(24)
	plan, err := nw.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	n := nw.Processors()
	tracer := NewTracer()
	metrics := NewMetrics()
	instrument := InstrumentMetrics(metrics)
	shared := MultiObserver(tracer, instrument)

	const workers = 4
	const iters = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := plan.ExecuteTraced(shared); err != nil {
					errs <- err
				}
				if _, err := plan.ExecuteWithFaults(
					WithLinkLoss(0.02, int64(w*100+i)),
					WithObserver(shared),
				); err != nil {
					errs <- err
				}
				if err := plan.Verify(); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots and exports while executions record.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = metrics.Snapshot()
			_ = tracer.OutcomeTotals()
			_ = tracer.RoundTotals()
			var buf bytes.Buffer
			if err := tracer.WriteChromeTrace(&buf); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every fault-free pass delivers n(n-1) pairs; the faulty passes add a
	// nondeterministic amount on top, so assert the exact floor.
	runs := workers * iters
	snap := metrics.Snapshot()
	if min := int64(runs * n * (n - 1)); snap.Counters["gossip_delivered_total"] < min {
		t.Errorf("gossip_delivered_total = %d, want >= %d", snap.Counters["gossip_delivered_total"], min)
	}
	if snap.Counters["gossip_outcome_lost_in_flight_total"] == 0 {
		t.Error("no lost deliveries recorded despite 2% link loss")
	}
	if totals := tracer.RoundTotals(); int64(totals.Delivered) != snap.Counters["gossip_delivered_total"] {
		t.Errorf("tracer delivered %d, metrics %d — the shared sinks diverged",
			totals.Delivered, snap.Counters["gossip_delivered_total"])
	}
}
