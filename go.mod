module multigossip

go 1.22
