package multigossip

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/schedule"
	"multigossip/internal/trace"
)

// namedTopologies is the differential-test matrix: every public topology
// constructor at a representative size.
func namedTopologies() map[string]*Network {
	rng := rand.New(rand.NewSource(1))
	return map[string]*Network{
		"line":       Line(16),
		"line2":      Line(2),
		"ring":       Ring(17),
		"star":       Star(16),
		"complete":   FullyConnected(9),
		"mesh":       Mesh(4, 6),
		"torus":      Torus(4, 5),
		"hypercube":  Hypercube(4),
		"petersen":   PetersenGraph(),
		"fig4":       Fig4Network(),
		"random":     RandomNetwork(rng, 40, 0.15),
		"sensor":     SensorField(rng, 36, 0.35),
		"randomtree": RandomTreeNetwork(rng, 48),
	}
}

// TestImplicitPlanMatchesMaterialised is the public-level acceptance test:
// on every named topology, the implicit-backed plan's Round(t) and
// TimetableOf(v) are bit-identical to the materialised schedule the same
// pipeline produces.
func TestImplicitPlanMatchesMaterialised(t *testing.T) {
	for name, nw := range namedTopologies() {
		t.Run(name, func(t *testing.T) {
			plan, err := nw.PlanGossip()
			if err != nil {
				t.Fatal(err)
			}
			if plan.imp == nil {
				t.Fatal("ConcurrentUpDown plan is not implicit-backed")
			}
			res, err := core.Gossip(nw.g, core.ConcurrentUpDown)
			if err != nil {
				t.Fatal(err)
			}
			oracle := res.Schedule
			if got, want := plan.Rounds(), oracle.Time(); got != want {
				t.Fatalf("Rounds() = %d, oracle %d", got, want)
			}
			for time := 0; time <= oracle.Time(); time++ {
				got := plan.Round(time)
				var want []Transmission
				if time < len(oracle.Rounds) {
					for _, tx := range oracle.Rounds[time] {
						want = append(want, Transmission{Message: tx.Msg, From: tx.From, To: append([]int(nil), tx.To...)})
					}
				}
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("round %d:\ngot  %v\nwant %v", time, got, want)
				}
			}
			for v := 0; v < nw.Processors(); v++ {
				got := plan.TimetableOf(v)
				want := trace.FormatTimetable(schedule.VertexView(oracle, res.Tree, v))
				if got != want {
					t.Fatalf("timetable of %d:\ngot:\n%s\nwant:\n%s", v, got, want)
				}
			}
			// The differential reads above must not have materialised.
			if plan.sched != nil {
				t.Fatal("Round/TimetableOf materialised the schedule")
			}
		})
	}
}

// TestPlanLazyMaterialisationStateMachine pins the state transitions: an
// implicit-backed plan starts with no tree, labelling or schedule; tree
// views build on TreeString; the schedule builds only on Verify (or
// another full-replay operation); Simple plans are eager throughout.
func TestPlanLazyMaterialisationStateMachine(t *testing.T) {
	nw := Ring(24)
	plan, err := nw.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	if plan.imp == nil || plan.sched != nil || plan.tree != nil || plan.labeled != nil {
		t.Fatal("fresh ConcurrentUpDown plan is not in the implicit-only state")
	}
	_ = plan.Rounds()
	_ = plan.Round(3)
	_ = plan.RoundAppend(4, nil)
	_ = plan.TimetableOf(5)
	if plan.sched != nil || plan.tree != nil {
		t.Fatal("query path materialised state it does not need")
	}
	_ = plan.TreeString()
	if plan.tree == nil || plan.labeled == nil {
		t.Fatal("TreeString did not build the tree views")
	}
	if plan.sched != nil {
		t.Fatal("TreeString materialised the schedule")
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.sched == nil {
		t.Fatal("Verify did not materialise the schedule")
	}
	if got, want := plan.sched.Time(), plan.imp.Rounds(); got != want {
		t.Fatalf("materialised time %d != implicit rounds %d", got, want)
	}

	simple, err := nw.PlanGossip(WithAlgorithm(Simple))
	if err != nil {
		t.Fatal(err)
	}
	if simple.imp != nil || simple.sched == nil || simple.tree == nil || simple.labeled == nil {
		t.Fatal("Simple plan is not eagerly materialised")
	}
	if err := simple.Verify(); err != nil {
		t.Fatal(err)
	}
}

// materialisedFootprint applies SizeBytes' materialised-branch accounting
// to a schedule, for comparing against the implicit footprint.
func materialisedFootprint(p *Plan) int64 {
	const word = 8
	s := p.schedule()
	b := int64(len(s.Rounds)) * 3 * word
	for _, r := range s.Rounds {
		b += int64(len(r)) * 5 * word
		for _, tx := range r {
			b += int64(len(tx.To)) * word
		}
	}
	b += int64(p.network.N()) * 6 * word
	b += int64(p.network.N()) * 2 * word
	b += int64(p.network.M()) * 2 * word
	return b
}

// TestPlanSizeBytesRegression pins both cache footprints so neither form's
// accounting can silently regress: the implicit plan's SizeBytes stays
// O(n) (within a fixed window), and the materialised schedule of the same
// topology remains ≥100x larger.
func TestPlanSizeBytesRegression(t *testing.T) {
	n := 1024
	nw := Ring(n)
	plan, err := nw.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	implicitBytes := plan.SizeBytes()
	// Packed arrays are ~28n plus the graph snapshot (~32n on a ring).
	if lo, hi := int64(28*n), int64(80*n); implicitBytes < lo || implicitBytes > hi {
		t.Fatalf("implicit SizeBytes = %d, want within [%d, %d]", implicitBytes, lo, hi)
	}
	matBytes := materialisedFootprint(plan)
	// A ring schedule delivers n-1 messages to each of n processors, so the
	// materialised footprint is ~8n² bytes.
	if lo := int64(n) * int64(n-1) * 8; matBytes < lo {
		t.Fatalf("materialised footprint = %d, want >= %d", matBytes, lo)
	}
	if ratio := matBytes / implicitBytes; ratio < 100 {
		t.Fatalf("materialised/implicit = %dx, want >= 100x (implicit %d, materialised %d)",
			ratio, implicitBytes, matBytes)
	}
	// SizeBytes reports the insert-time footprint: still the compact size
	// even after lazy materialisation (the documented accounting caveat).
	if got := plan.SizeBytes(); got != implicitBytes {
		t.Fatalf("SizeBytes changed after materialisation: %d -> %d", implicitBytes, got)
	}
}

// TestPlanCacheChargesSizer verifies the cache's byte accounting asks the
// plan for its real footprint: the cached bytes equal SizeBytes exactly,
// and the implicit entry is orders of magnitude below the old
// schedule-sized estimate.
func TestPlanCacheChargesSizer(t *testing.T) {
	nw := Ring(256)
	pc := NewPlanCache()
	plan, err := pc.Plan(nw)
	if err != nil {
		t.Fatal(err)
	}
	stats := pc.Stats()
	if stats.Bytes != plan.SizeBytes() {
		t.Fatalf("cache charges %d bytes, plan reports %d", stats.Bytes, plan.SizeBytes())
	}
	if stats.Bytes > 64<<10 {
		t.Fatalf("implicit cache entry is %d bytes; expected a compact O(n) footprint", stats.Bytes)
	}

	simple, err := pc.Plan(nw, WithAlgorithm(Simple))
	if err != nil {
		t.Fatal(err)
	}
	stats = pc.Stats()
	if got, want := stats.Bytes, plan.SizeBytes()+simple.SizeBytes(); got != want {
		t.Fatalf("cache charges %d bytes for both entries, want %d", got, want)
	}
	if simple.SizeBytes() < 100*plan.SizeBytes() {
		t.Fatalf("materialised entry (%d) is not >=100x the implicit entry (%d)",
			simple.SizeBytes(), plan.SizeBytes())
	}
}

// TestRoundAppendMatchesRound checks the append variant returns the same
// transmissions as Round and honours recycled buffers.
func TestRoundAppendMatchesRound(t *testing.T) {
	plan, err := Mesh(5, 5).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	var buf []Transmission
	for time := -1; time <= plan.Rounds(); time++ {
		buf = plan.RoundAppend(time, buf[:0])
		want := plan.Round(time)
		if len(want) == 0 && len(buf) == 0 {
			continue
		}
		if !reflect.DeepEqual(buf, want) {
			t.Fatalf("round %d: RoundAppend %v != Round %v", time, buf, want)
		}
	}
}

func benchmarkPlan(b *testing.B, n int) *Plan {
	b.Helper()
	plan, err := Ring(n).PlanGossip()
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkPlanRound measures the fresh-allocation query path; compare
// with BenchmarkPlanRoundAppend for the satellite's alloc reduction.
func BenchmarkPlanRound(b *testing.B) {
	for _, n := range []int{256, 1024} {
		plan := benchmarkPlan(b, n)
		rounds := plan.Rounds()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = plan.Round(i % rounds)
			}
		})
	}
}

func BenchmarkPlanRoundAppend(b *testing.B) {
	for _, n := range []int{256, 1024} {
		plan := benchmarkPlan(b, n)
		rounds := plan.Rounds()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var buf []Transmission
			for i := 0; i < b.N; i++ {
				buf = plan.RoundAppend(i%rounds, buf[:0])
			}
		})
	}
}
