package multigossip

import (
	"multigossip/internal/obs"
	"multigossip/internal/schedule"
)

// Observability: watch a plan execute round by round instead of reading a
// post-hoc report. Attach a RoundObserver to Plan.ExecuteTraced or to
// ExecuteWithFaults (via WithObserver) and it receives structured events —
// phases, rounds with aggregated stats, individual delivery outcomes,
// repair iterations, quarantines — as the execution advances. The package
// ships three sinks: NewTracer (Chrome trace_event timelines for
// chrome://tracing and Perfetto), NewMetrics + InstrumentMetrics
// (Prometheus-style counters and histograms), and the progress curves every
// FaultReport now carries. Custom sinks embed NopObserver and override the
// events they care about; MultiObserver fans events out to several sinks.
//
// Observation is engineered to be free when unused: executors skip all
// emission behind one nil check, so an untraced Execute path is unchanged,
// and the provided sinks record per-delivery events through atomics only.

// RoundObserver receives structured events from an observed execution. See
// the internal obs package for the event contract; implementations must be
// safe for concurrent use when shared across executions, and Delivery is
// the hot path (once per point-to-point delivery).
type RoundObserver = obs.RoundObserver

// RoundStats aggregates the fate of one executed round's deliveries.
type RoundStats = obs.RoundStats

// RepairStats describes one plan-execute-remeasure repair iteration.
type RepairStats = obs.RepairStats

// DeliveryOutcome classifies what happened to one scheduled delivery.
type DeliveryOutcome = obs.Outcome

// Delivery outcomes, in the order executors decide them.
const (
	// Delivered: the message arrived and entered the hold set.
	Delivered = obs.Delivered
	// LostInFlight: a fault injector dropped the delivery on the link.
	LostInFlight = obs.LostInFlight
	// ReceiverDown: sent, but the receiver was crashed.
	ReceiverDown = obs.ReceiverDown
	// SenderDown: skipped entirely because the sender was crashed.
	SenderDown = obs.SenderDown
	// SenderMissing: skipped because the sender never received the message.
	SenderMissing = obs.SenderMissing
	// Superseded: arrived after another delivery already won the round.
	Superseded = obs.Superseded
)

// NopObserver is an embeddable no-op RoundObserver: embed it to implement
// only the events a custom sink cares about.
type NopObserver = obs.Nop

// MultiObserver combines observers into one that fans every event out in
// order. Nil entries are dropped; it returns nil when nothing remains, so
// the executors' fast path still applies.
func MultiObserver(observers ...RoundObserver) RoundObserver {
	return obs.Multi(observers...)
}

// RoundProgress is one point of an execution's per-round progress curve.
type RoundProgress = obs.RoundProgress

// Tracer is a RoundObserver that records a timeline of phases, rounds,
// repair iterations and quarantines, exported with WriteChromeTrace in the
// Chrome trace_event JSON format (chrome://tracing, Perfetto). Safe for
// concurrent use; per-delivery events cost one atomic add.
type Tracer = obs.Tracer

// NewTracer returns an empty Tracer whose clock starts now.
func NewTracer() *Tracer { return obs.NewTracer() }

// Metrics is an atomic metrics registry: named counters, gauges and
// fixed-bucket histograms with a point-in-time Snapshot and a
// Prometheus-text WritePrometheus dump.
type Metrics = obs.Registry

// MetricsCounter is the handle Metrics.Counter returns: a monotonically
// increasing counter recorded through atomics.
type MetricsCounter = obs.Counter

// MetricsGauge is the handle Metrics.Gauge returns.
type MetricsGauge = obs.Gauge

// MetricsHistogram is the handle Metrics.Histogram returns: a fixed-bucket
// histogram with an implicit +Inf bucket.
type MetricsHistogram = obs.Histogram

// MetricsSnapshot is a point-in-time copy of every metric in a Metrics
// registry.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// InstrumentMetrics returns a RoundObserver that records execution events
// into m under gossip_* metric names: per-round and per-outcome delivery
// counters, repair dynamics, and a per-round delivered histogram.
func InstrumentMetrics(m *Metrics) RoundObserver { return obs.Instrument(m) }

// TraceReport summarises one observed fault-free execution.
type TraceReport struct {
	// Rounds is the number of rounds executed (= Plan.Rounds()).
	Rounds int
	// Deliveries is the total number of point-to-point deliveries made.
	Deliveries int
	// WastedDeliveries counts deliveries of already-held messages (zero for
	// ConcurrentUpDown, positive for Simple).
	WastedDeliveries int
	// CompleteAt is the earliest round after which every processor held
	// every message.
	CompleteAt int
	// ProgressCurve is the per-round holds-coverage curve: how the fraction
	// of (processor, message) pairs held grew round by round.
	ProgressCurve []RoundProgress
}

// ExecuteTraced replays the plan fault-free under full model validation
// with the observer attached: the observer receives a "schedule" phase
// span, BeginRound/EndRound for every round with aggregated stats, and one
// Delivered event per delivery. A nil observer is allowed — the report's
// progress curve is still collected. The same Plan may be traced
// concurrently from several goroutines as long as the observer is safe for
// concurrent use.
func (p *Plan) ExecuteTraced(observer RoundObserver) (TraceReport, error) {
	if !p.Schedulable() {
		return TraceReport{}, p.errNoSchedule()
	}
	n := p.network.N()
	progress := obs.NewProgressCollector(n, n*n)
	ro := obs.Multi(observer, progress)
	ro.BeginPhase("schedule", p.algo.String())
	res, err := schedule.Run(p.network, p.schedule(), schedule.Options{Observer: ro})
	ro.EndPhase("schedule")
	if err != nil {
		return TraceReport{}, err
	}
	curve := progress.Curve()
	deliveries := 0
	for _, r := range curve {
		deliveries += r.Delivered
	}
	return TraceReport{
		Rounds:           p.schedule().Time(),
		Deliveries:       deliveries,
		WastedDeliveries: res.WastedDeliveries,
		CompleteAt:       res.CompleteAt,
		ProgressCurve:    curve,
	}, nil
}
