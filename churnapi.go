package multigossip

// Churn layer: plan maintenance under topology mutation. A gossip plan is
// expensive to build (an O(nm) metric sweep dominates) but structurally
// thin: every transmission of a ConcurrentUpDown schedule travels a
// spanning-tree edge, so most single-link mutations leave the schedule
// untouched. DynamicPlanner exploits that. An added link, or a removed link
// the tree never used, keeps the compact implicit plan verbatim and only
// rebinds it to the new topology snapshot; a removed tree edge is repaired
// by repair.GraftTree — sever the orphaned subtree, re-attach it through a
// surviving crossing link, O(n + m) — and the plan is re-derived from the
// grafted tree in O(n) more. Cold rebuilds remain only for quality (a graft
// that degraded the tree height past the configured factor) and for plans
// with no compact form (algorithm Simple).
//
// Patched plans are published to the PlanCache under the mutated topology's
// fingerprint, so other cache users hit them; because the fingerprint is an
// XOR over edge hashes, a link flap that lands back on a cached topology
// restores its exact key and the planner serves the original plan again.
//
// Flap hysteresis rides on the same observation: a link that toggles twice
// within the configured window is suspect, so quality rebuilds it would
// otherwise trigger are suppressed — the planner keeps serving the valid
// (if degraded) patched plan until the link holds still.

import (
	"fmt"
	"time"

	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/obs"
	"multigossip/internal/repair"
	"multigossip/internal/spantree"
)

// PatchOutcome classifies how a DynamicPlanner absorbed one mutation.
type PatchOutcome int

const (
	// PatchUnchanged: the mutation was a no-op (duplicate add, absent or
	// refused remove); the served plan is untouched.
	PatchUnchanged PatchOutcome = iota
	// PatchReused: the plan survived the mutation verbatim — the changed
	// link is not a spanning-tree edge, or the mutated topology's
	// fingerprint matched a cached plan (a flap landing back home).
	PatchReused
	// PatchGrafted: a spanning-tree edge was lost; the tree was grafted
	// around it and the plan re-derived from the repaired tree.
	PatchGrafted
	// PatchRebuilt: the plan was rebuilt cold — the patch failed
	// validation, degraded the tree past the quality bound, or the
	// algorithm has no patchable form.
	PatchRebuilt
	// PatchSuppressed: the patch degraded the tree past the quality bound,
	// but the link is flapping, so the rebuild was suppressed and the
	// degraded (still valid) plan is served until the link holds still.
	PatchSuppressed
)

// String names the outcome in the lowercase form the serving API exposes.
func (o PatchOutcome) String() string {
	switch o {
	case PatchUnchanged:
		return "unchanged"
	case PatchReused:
		return "reused"
	case PatchGrafted:
		return "grafted"
	case PatchRebuilt:
		return "rebuilt"
	case PatchSuppressed:
		return "suppressed"
	}
	return fmt.Sprintf("PatchOutcome(%d)", int(o))
}

type dynamicConfig struct {
	cache        *PlanCache
	window       time.Duration
	now          func() time.Time
	heightFactor float64
	fullVerify   bool
	reg          *obs.Registry
}

// DynamicOption configures NewDynamicPlanner.
type DynamicOption func(*dynamicConfig)

// WithPlanCache publishes every plan the planner serves — cold-built,
// rebound or grafted — into pc under the topology fingerprint, and lets
// the planner restore a cached plan when a flap returns the topology to a
// fingerprint pc already holds.
func WithPlanCache(pc *PlanCache) DynamicOption {
	return func(c *dynamicConfig) { c.cache = pc }
}

// WithFlapWindow enables hysteresis: a link mutated twice within w is
// flapping, and quality rebuilds triggered by it are suppressed. Zero (the
// default) disables suppression.
func WithFlapWindow(w time.Duration) DynamicOption {
	return func(c *dynamicConfig) { c.window = w }
}

// WithClock injects the planner's time source, for tests and simulations
// that drive hysteresis deterministically. The default is time.Now.
func WithClock(now func() time.Time) DynamicOption {
	return func(c *dynamicConfig) { c.now = now }
}

// WithHeightFactor sets the quality bound: a grafted tree whose height
// exceeds factor times the last cold build's radius triggers a rebuild
// (subject to hysteresis). The default is 2 — the height any O(m)
// double-sweep rebuild already guarantees, so serving worse than that is
// never the right trade. Factors below 1 are clamped to 1.
func WithHeightFactor(factor float64) DynamicOption {
	return func(c *dynamicConfig) { c.heightFactor = max(factor, 1) }
}

// WithPatchVerify runs the full Plan.Verify certifier on every patched plan
// before serving it, falling back to a cold rebuild if certification fails.
// The default validates structurally only (every tree edge present in the
// topology) because a full verification replays Θ(n²) deliveries — more
// than the graft it certifies costs by orders of magnitude. The churn smoke
// test runs with this enabled.
func WithPatchVerify() DynamicOption {
	return func(c *dynamicConfig) { c.fullVerify = true }
}

// WithChurnMetrics registers the planner's counters in m:
// churn_reused_total, churn_patched_total, churn_rebuilt_total,
// churn_suppressed_total.
func WithChurnMetrics(m *Metrics) DynamicOption {
	return func(c *dynamicConfig) { c.reg = m }
}

// DynamicPlanner keeps one gossip plan current across topology churn,
// patching instead of rebuilding wherever the mutation permits. It owns its
// network's mutations: route every AddLink/RemoveLink through the planner
// (concurrent direct mutation of the underlying Network would invalidate
// the plan the planner believes it is serving). The planner itself is not
// safe for concurrent use; serving layers wrap it in their session lock.
type DynamicPlanner struct {
	nw           *Network
	cache        *PlanCache
	window       time.Duration
	now          func() time.Time
	heightFactor float64
	fullVerify   bool

	reused, patched, rebuilt, suppressed *obs.Counter

	plan       *Plan
	baseRadius int                      // radius of the last cold build
	lastTouch  map[graph.Edge]time.Time // per-link last mutation time
}

// NewDynamicPlanner builds the initial plan for nw (always cold, always
// ConcurrentUpDown — the only algorithm with a patchable compact form) and
// returns a planner that keeps it current under churn. The network must be
// connected and non-empty.
func NewDynamicPlanner(nw *Network, opts ...DynamicOption) (*DynamicPlanner, error) {
	cfg := dynamicConfig{now: time.Now, heightFactor: 2}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = obs.NewRegistry()
	}
	dp := &DynamicPlanner{
		nw:           nw,
		cache:        cfg.cache,
		window:       cfg.window,
		now:          cfg.now,
		heightFactor: cfg.heightFactor,
		fullVerify:   cfg.fullVerify,
		reused:       cfg.reg.Counter("churn_reused_total"),
		patched:      cfg.reg.Counter("churn_patched_total"),
		rebuilt:      cfg.reg.Counter("churn_rebuilt_total"),
		suppressed:   cfg.reg.Counter("churn_suppressed_total"),
		lastTouch:    make(map[graph.Edge]time.Time),
	}
	if err := dp.rebuild(); err != nil {
		return nil, err
	}
	return dp, nil
}

// Plan returns the currently served plan. It is always valid for the
// network's current topology; after suppressed rebuilds it may be degraded
// (taller tree than the radius warrants) but never wrong.
func (dp *DynamicPlanner) Plan() *Plan { return dp.plan }

// Rebuild forces a cold rebuild, resetting the quality baseline. Serving
// layers call it to settle a long-suppressed degradation at a time of their
// choosing.
func (dp *DynamicPlanner) Rebuild() (*Plan, error) {
	if err := dp.rebuild(); err != nil {
		return nil, err
	}
	dp.rebuilt.Inc()
	return dp.plan, nil
}

// rebuild cold-builds from the current topology and resets the baseline.
func (dp *DynamicPlanner) rebuild() error {
	p, err := planGossip(dp.nw.snapshotGraph(), planConfig{algo: ConcurrentUpDown})
	if err != nil {
		return err
	}
	dp.plan = p
	dp.baseRadius = p.radius
	dp.publish()
	return nil
}

// publish stores the served plan in the attached cache under the current
// topology fingerprint.
func (dp *DynamicPlanner) publish() {
	if dp.cache != nil {
		dp.cache.put(dp.nw.Fingerprint(), ConcurrentUpDown, dp.plan)
	}
}

// flapping records a mutation of link e at the current time and reports
// whether the link was already mutated within the hysteresis window.
func (dp *DynamicPlanner) flapping(e graph.Edge) bool {
	now := dp.now()
	last, seen := dp.lastTouch[e]
	dp.lastTouch[e] = now
	return dp.window > 0 && seen && now.Sub(last) < dp.window
}

// Mutation is one topology change in a batch: an added link (Remove false)
// or a removed link (Remove true).
type Mutation struct {
	Remove bool
	U, V   int
}

// MutationResult reports how one mutation of a batch landed on the
// topology. Changed is false for no-ops (duplicate adds, removals of absent
// links) and refusals; Err is non-nil exactly for refusals (a removal that
// would disconnect the network).
type MutationResult struct {
	Mutation
	Changed bool
	Err     error
}

// AddLink adds link {u, v} and reports how the served plan absorbed it. An
// added link never invalidates a tree-borne schedule, so the plan is reused
// (rebound to the new snapshot) — or, when the new fingerprint matches a
// cached plan, restored from the cache. Duplicate adds change nothing.
func (dp *DynamicPlanner) AddLink(u, v int) (PatchOutcome, error) {
	out, res, err := dp.Apply([]Mutation{{U: u, V: v}})
	if err != nil {
		return out, err
	}
	return out, res[0].Err
}

// RemoveLink removes link {u, v} and reports how the served plan absorbed
// it. Removing an absent link is a no-op; a removal that would disconnect
// the network is refused by the Network itself (the link stays, the plan
// stays, the wrapped ErrDisconnected is returned). A surviving removal
// reuses the plan when the link was not a tree edge, grafts the tree when
// it was, and rebuilds cold only when the patch fails or degrades the tree
// past the quality bound on a non-flapping link.
func (dp *DynamicPlanner) RemoveLink(u, v int) (PatchOutcome, error) {
	out, res, err := dp.Apply([]Mutation{{Remove: true, U: u, V: v}})
	if err != nil {
		return out, err
	}
	return out, res[0].Err
}

// Apply applies a batch of mutations to the topology and absorbs the net
// effect into the served plan with ONE patch decision, where looping over
// AddLink/RemoveLink would pay one graft or rebuild per mutation. The
// per-mutation results report what each change did to the topology
// (refusals and no-ops are per-mutation outcomes, not batch failures); the
// returned PatchOutcome describes the single plan transition:
//
//   - PatchUnchanged: no mutation survived (all duplicates, absences or
//     refusals) — the plan and topology are untouched.
//   - PatchReused: the final topology either matches a cached fingerprint
//     (a flap sequence landing back home) or lost no tree edge — however
//     many links the batch added or removed, the schedule never used them.
//   - PatchGrafted: at least one tree edge was lost; the tree was grafted
//     around every lost edge in one pass over the final topology and the
//     plan re-derived once.
//   - PatchSuppressed / PatchRebuilt: as for single mutations, decided once
//     against the final grafted height (a batch counts as flapping when any
//     of its lost tree edges is).
//
// The error return is reserved for planner failure (a cold rebuild that
// cannot complete); per-mutation refusals live in the results.
func (dp *DynamicPlanner) Apply(muts []Mutation) (PatchOutcome, []MutationResult, error) {
	results := make([]MutationResult, len(muts))
	flapped := make(map[graph.Edge]bool)
	changed := false
	for i, m := range muts {
		results[i].Mutation = m
		if m.Remove {
			if !dp.nw.HasLink(m.U, m.V) {
				continue // the planner owns mutations, so this is race-free
			}
			if err := dp.nw.RemoveLink(m.U, m.V); err != nil {
				results[i].Err = err
				continue
			}
		} else if !dp.nw.AddLink(m.U, m.V) {
			continue
		}
		results[i].Changed = true
		changed = true
		e := graph.Edge{U: min(m.U, m.V), V: max(m.U, m.V)}
		if dp.flapping(e) {
			flapped[e] = true
		}
	}
	if !changed {
		return PatchUnchanged, results, nil
	}
	if cached, ok := dp.cachedForCurrent(); ok {
		dp.plan = cached
		dp.baseRadius = cached.radius
		dp.reused.Inc()
		return PatchReused, results, nil
	}

	// The net damage is judged against the final topology, not mutation by
	// mutation: a tree edge removed and re-added within the batch was never
	// lost at all.
	tree, _ := dp.plan.treeLabeled()
	g := dp.nw.snapshotGraph()
	var lost []graph.Edge
	flap := false
	for v, parent := range tree.Parent {
		if parent >= 0 && !g.HasEdge(v, parent) {
			e := graph.Edge{U: min(v, parent), V: max(v, parent)}
			lost = append(lost, e)
			flap = flap || flapped[e]
		}
	}
	if len(lost) == 0 {
		// The schedule never used any changed link.
		out, err := dp.reuse()
		return out, results, err
	}

	grafted := tree
	graftOK := true
	for _, e := range lost {
		if grafted.Parent[e.U] != e.V && grafted.Parent[e.V] != e.U {
			continue // an earlier graft already rerouted this edge
		}
		repaired, err := repair.GraftTree(g, grafted, e.U, e.V)
		if err != nil {
			graftOK = false
			break
		}
		grafted = repaired
	}
	if graftOK {
		candidate := planFromTree(g, grafted, dp.plan.sweep)
		if err := dp.validate(candidate); err == nil {
			if grafted.Height <= dp.maxHeight() {
				dp.plan = candidate
				dp.publish()
				dp.patched.Inc()
				return PatchGrafted, results, nil
			}
			if flap {
				dp.plan = candidate
				dp.publish()
				dp.suppressed.Inc()
				return PatchSuppressed, results, nil
			}
		}
	}
	// Graft unavailable, uncertified, or too degraded on quiet links.
	if err := dp.rebuild(); err != nil {
		return PatchUnchanged, results, err
	}
	dp.rebuilt.Inc()
	return PatchRebuilt, results, nil
}

// reuse rebinds the served plan's compact form onto the current topology
// snapshot and publishes it. The planner only ever serves implicit-backed
// ConcurrentUpDown plans, so the compact core is always there to share.
func (dp *DynamicPlanner) reuse() (PatchOutcome, error) {
	// No validation needed: the mutation provably missed every tree edge
	// (an add removes nothing; a non-tree removal leaves the tree whole),
	// so the rebound plan's tree is a subgraph of the new topology by
	// construction.
	dp.plan = &Plan{
		network: dp.nw.snapshotGraph(),
		algo:    dp.plan.algo,
		radius:  dp.plan.radius,
		sweep:   dp.plan.sweep,
		imp:     dp.plan.imp,
	}
	dp.publish()
	dp.reused.Inc()
	return PatchReused, nil
}

// maxHeight is the quality bound grafted trees must stay under.
func (dp *DynamicPlanner) maxHeight() int {
	return int(dp.heightFactor * float64(dp.baseRadius))
}

// validate certifies a candidate plan before it is served: structurally
// always (every tree edge must exist in the candidate's topology — O(n)),
// and with the full Plan.Verify replay when WithPatchVerify is on.
func (dp *DynamicPlanner) validate(p *Plan) error {
	tree, _ := p.treeLabeled()
	for v, parent := range tree.Parent {
		if parent >= 0 && !p.network.HasEdge(v, parent) {
			return fmt.Errorf("multigossip: patched tree edge %d-%d missing from topology", v, parent)
		}
	}
	if dp.fullVerify {
		return p.Verify()
	}
	return nil
}

// planFromTree derives a fresh implicit-backed plan from a repaired
// spanning tree: O(n) label and packing work, no sweep. The radius field
// records the tree height actually used, which after a graft may exceed
// the topology's true radius — the planner's quality policy, not the
// plan, is responsible for closing that gap.
func planFromTree(g *graph.Graph, tree *spantree.Tree, sweep graph.SweepStats) *Plan {
	return &Plan{
		network: g,
		algo:    ConcurrentUpDown,
		radius:  tree.Height,
		sweep:   sweep,
		imp:     implicit.New(spantree.Label(tree)),
	}
}

// cachedForCurrent looks the current topology fingerprint up in the
// attached cache. A hit means some earlier plan — typically the one a flap
// departed from — covers the exact current edge set.
func (dp *DynamicPlanner) cachedForCurrent() (*Plan, bool) {
	if dp.cache == nil {
		return nil, false
	}
	return dp.cache.lookup(dp.nw.Fingerprint(), ConcurrentUpDown)
}
