package multigossip

import (
	"errors"
	"testing"
)

// TestMetricsConnected checks the error-returning accessor agrees with the
// legacy panicking accessors on a connected network.
func TestMetricsConnected(t *testing.T) {
	nw := Mesh(3, 4)
	m, err := nw.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Radius != nw.Radius() || m.Diameter != nw.Diameter() {
		t.Fatalf("Metrics()=(r=%d,d=%d), accessors=(r=%d,d=%d)", m.Radius, m.Diameter, nw.Radius(), nw.Diameter())
	}
	if len(m.Eccentricities) != nw.Processors() {
		t.Fatalf("%d eccentricities for %d processors", len(m.Eccentricities), nw.Processors())
	}
	center := nw.Center()
	if len(m.Center) != len(center) {
		t.Fatalf("Metrics center %v != accessor center %v", m.Center, center)
	}
	for i := range center {
		if m.Center[i] != center[i] {
			t.Fatalf("Metrics center %v != accessor center %v", m.Center, center)
		}
	}
}

// TestMetricsDisconnected is the bug this accessor exists for: a
// disconnected network must yield a typed error from Metrics while the
// legacy accessors keep their documented panic.
func TestMetricsDisconnected(t *testing.T) {
	nw := NewNetwork(4)
	nw.AddLink(0, 1) // {2,3} isolated
	if _, err := nw.Metrics(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Metrics error %v, want ErrDisconnected", err)
	}
	// Legacy contract unchanged: Radius panics, and the panic value wraps
	// the same sentinel so even recover-based callers can classify it.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Radius on a disconnected network did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrDisconnected) {
			t.Fatalf("panic value %v does not wrap ErrDisconnected", r)
		}
	}()
	nw.Radius()
}

// TestPlanGossipDisconnectedTyped pins PlanGossip's disconnection error to
// the exported sentinel the serving layer maps to HTTP 422.
func TestPlanGossipDisconnectedTyped(t *testing.T) {
	if _, err := NewNetwork(3).PlanGossip(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("PlanGossip error %v, want ErrDisconnected", err)
	}
}

// TestMetricsInvalidation checks AddLink invalidates the cached sweep for
// Metrics just as it does for the legacy accessors.
func TestMetricsInvalidation(t *testing.T) {
	nw := Line(9)
	m, err := nw.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Radius != 4 {
		t.Fatalf("line radius %d, want 4", m.Radius)
	}
	nw.AddLink(0, 8) // close the line into a ring
	m, err = nw.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Radius != 4 || m.Diameter != 4 {
		t.Fatalf("ring metrics (r=%d, d=%d), want (4, 4)", m.Radius, m.Diameter)
	}
	if m.Diameter == 8 {
		t.Fatal("Metrics served the stale pre-AddLink sweep")
	}
}
