package multigossip

import (
	"strings"
	"sync"
	"testing"
)

// TestSharedPlanConcurrentUse is the serving-layer aliasing audit locked in
// as a test: one cached plan is shared, unsynchronized, by goroutines
// running every read entry point a server exercises — Round, TimetableOf,
// Verify, Stats, ExecuteTraced and ExecuteWithFaults (with and without
// faults and repair). None of these may mutate the plan's schedule, tree or
// network, so under -race this test doubles as the proof that cached plans
// are safe to serve concurrently. Determinism is asserted too: every
// goroutine must see bit-identical results.
func TestSharedPlanConcurrentUse(t *testing.T) {
	pc := NewPlanCache()
	plan, err := pc.Plan(Fig4Network())
	if err != nil {
		t.Fatal(err)
	}
	again, err := pc.Plan(Fig4Network())
	if err != nil {
		t.Fatal(err)
	}
	if again != plan {
		t.Fatal("second request did not share the cached plan")
	}

	wantRound := plan.Round(3)
	wantTable := plan.TimetableOf(4)
	wantStats := plan.Stats()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				round := plan.Round(3)
				if len(round) != len(wantRound) {
					t.Errorf("worker %d: round 3 has %d transmissions, want %d", w, len(round), len(wantRound))
					return
				}
				for j, tx := range round {
					// Mutating the returned copy must never reach the plan.
					if len(tx.To) > 0 {
						tx.To[0] = -1
					}
					_ = j
				}
				if got := plan.TimetableOf(4); got != wantTable {
					t.Errorf("worker %d: timetable diverged", w)
					return
				}
				if got := plan.Stats(); got != wantStats {
					t.Errorf("worker %d: stats diverged", w)
					return
				}
				if err := plan.Verify(); err != nil {
					t.Errorf("worker %d: shared plan failed verification: %v", w, err)
					return
				}
				rep, err := plan.ExecuteTraced(nil)
				if err != nil {
					t.Errorf("worker %d: ExecuteTraced: %v", w, err)
					return
				}
				if rep.Rounds != plan.Rounds() {
					t.Errorf("worker %d: traced %d rounds, want %d", w, rep.Rounds, plan.Rounds())
					return
				}
				switch w % 3 {
				case 0: // fault-free execution with repair enabled
					fr, err := plan.ExecuteWithFaults()
					if err != nil || !fr.Complete {
						t.Errorf("worker %d: fault-free execute: complete=%v err=%v", w, fr.Complete, err)
						return
					}
				case 1: // lossy execution, self-healing
					fr, err := plan.ExecuteWithFaults(WithLinkLoss(0.05, int64(w*100+i)))
					if err != nil || !fr.Complete {
						t.Errorf("worker %d: lossy execute: complete=%v err=%v", w, fr.Complete, err)
						return
					}
				case 2: // raw degradation, no repair
					fr, err := plan.ExecuteWithFaults(WithDroppedDelivery(0, 0, plan.Round(0)[0].To[0]), WithoutRepair())
					if err != nil || fr.Complete {
						t.Errorf("worker %d: dropped delivery still complete=%v err=%v", w, fr.Complete, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// After the storm the plan must be bit-identical to its pre-storm self.
	if got := plan.TimetableOf(4); got != wantTable {
		t.Fatal("concurrent use mutated the shared plan's timetable")
	}
	if got := plan.Round(3); len(got) > 0 && len(wantRound) > 0 {
		for j := range got {
			if got[j].From != wantRound[j].From || got[j].Message != wantRound[j].Message {
				t.Fatal("concurrent use mutated the shared plan's rounds")
			}
			for k := range got[j].To {
				if got[j].To[k] != wantRound[j].To[k] {
					t.Fatal("a caller's write to a Round copy reached the plan")
				}
			}
		}
	}
	if err := plan.Verify(); err != nil {
		t.Fatalf("shared plan no longer verifies: %v", err)
	}
	if !strings.Contains(plan.Stats(), "rounds") && plan.Stats() != wantStats {
		t.Fatal("stats mutated")
	}
}
