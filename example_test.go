package multigossip_test

import (
	"fmt"

	"multigossip"
)

// The package-level example mirrors the paper's headline result: planning
// gossip on any connected network finishes in exactly n + r rounds.
func Example() {
	nw := multigossip.Ring(8)
	plan, err := nw.PlanGossip()
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", plan.Rounds())
	fmt.Println("verified:", plan.Verify() == nil)
	// Output:
	// rounds: 12
	// verified: true
}

func ExampleNetwork_PlanGossip() {
	// Build a custom network: a 4-processor path.
	nw := multigossip.NewNetwork(4)
	nw.AddLink(0, 1)
	nw.AddLink(1, 2)
	nw.AddLink(2, 3)
	plan, err := nw.PlanGossip()
	if err != nil {
		panic(err)
	}
	// n + r = 4 + 2.
	fmt.Println(plan.Rounds())
	// Output: 6
}

func ExampleNetwork_PlanGossip_simple() {
	plan, err := multigossip.Line(9).PlanGossip(multigossip.WithAlgorithm(multigossip.Simple))
	if err != nil {
		panic(err)
	}
	// Lemma 1: 2n + r - 3 = 18 + 4 - 3.
	fmt.Println(plan.Rounds())
	// Output: 19
}

func ExampleNetwork_PlanBroadcast() {
	bp, err := multigossip.Mesh(3, 3).PlanBroadcast(0)
	if err != nil {
		panic(err)
	}
	// The corner's eccentricity in a 3x3 mesh.
	fmt.Println(bp.Rounds())
	// Output: 4
}

func ExamplePlanOptimalLine() {
	plan, err := multigossip.PlanOptimalLine(4) // the 9-processor line
	if err != nil {
		panic(err)
	}
	// n + r - 1 = 9 + 4 - 1: one round better than the uniform algorithm.
	fmt.Println(plan.Rounds())
	// Output: 12
}

func ExampleNetwork_PlanGather() {
	ga, err := multigossip.Star(6).PlanGather(0)
	if err != nil {
		panic(err)
	}
	// The hub absorbs one message per round: n - 1 rounds.
	fmt.Println(ga.Rounds())
	// Output: 5
}

func ExampleNetwork_PlanMulticasts() {
	nw := multigossip.Ring(6)
	plan, err := nw.PlanMulticasts([]multigossip.Multicast{
		{Origin: 0, Dests: []int{2, 3}},
		{Origin: 4, Dests: []int{1}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Verify() == nil, plan.Rounds() >= plan.LowerBound())
	// Output: true true
}
