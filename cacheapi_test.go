package multigossip

import (
	"errors"
	"sync"
	"testing"
)

// TestNetworkFingerprint checks the public fingerprint contract: equal for
// isomorphic insertion orders of one edge set, different after AddLink, and
// cached across calls.
func TestNetworkFingerprint(t *testing.T) {
	a := NewNetwork(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		a.AddLink(e[0], e[1])
	}
	b := NewNetwork(5)
	for _, e := range [][2]int{{4, 0}, {2, 1}, {3, 2}, {1, 0}, {3, 4}} {
		b.AddLink(e[0], e[1])
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("insertion order changed the fingerprint: %#x vs %#x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != Ring(5).Fingerprint() {
		t.Fatal("hand-built ring and generator ring fingerprint differently")
	}
	before := a.Fingerprint()
	a.AddLink(0, 2)
	if a.Fingerprint() == before {
		t.Fatal("AddLink did not change the fingerprint")
	}
}

// TestPlanCacheHitMiss plans one topology through two distinct Network
// values and requires a miss then a hit returning the identical plan.
func TestPlanCacheHitMiss(t *testing.T) {
	pc := NewPlanCache()
	p1, src1, err := pc.PlanSourced(Ring(16))
	if err != nil {
		t.Fatal(err)
	}
	if src1 != CacheMiss {
		t.Fatalf("first request source %v, want miss", src1)
	}
	p2, src2, err := pc.PlanSourced(Ring(16))
	if err != nil {
		t.Fatal(err)
	}
	if src2 != CacheHit {
		t.Fatalf("second request source %v, want hit", src2)
	}
	if p1 != p2 {
		t.Fatal("hit did not return the cached plan value")
	}
	if p1.Rounds() != 16+8 {
		t.Fatalf("cached plan rounds %d, want 24", p1.Rounds())
	}
	if s := pc.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes <= 0 {
		t.Fatalf("stats %+v, want 1 hit, 1 miss, 1 entry, positive bytes", s)
	}
}

// TestPlanCacheAlgorithmKeys requires ConcurrentUpDown and Simple plans of
// one network to occupy distinct cache entries.
func TestPlanCacheAlgorithmKeys(t *testing.T) {
	pc := NewPlanCache()
	cud, err := pc.Plan(Ring(8))
	if err != nil {
		t.Fatal(err)
	}
	simple, err := pc.Plan(Ring(8), WithAlgorithm(Simple))
	if err != nil {
		t.Fatal(err)
	}
	if cud.Rounds() == simple.Rounds() {
		t.Fatalf("both algorithms returned %d rounds; keys collided", cud.Rounds())
	}
	if s := pc.Stats(); s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("stats %+v, want 2 misses and 2 entries", s)
	}
	if !pc.Contains(Ring(8)) || !pc.Contains(Ring(8), WithAlgorithm(Simple)) || pc.Contains(Ring(9)) {
		t.Fatal("Contains disagrees with the cached keys")
	}
}

// TestPlanCacheDisconnected requires a disconnected network to return the
// typed error without caching anything.
func TestPlanCacheDisconnected(t *testing.T) {
	pc := NewPlanCache()
	if _, err := pc.Plan(NewNetwork(4)); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("error %v, want ErrDisconnected", err)
	}
	if s := pc.Stats(); s.Entries != 0 {
		t.Fatalf("failed construction cached: %+v", s)
	}
	// The same network made connected afterwards plans fine (fresh key or
	// not, the failure must not poison the cache).
	nw := NewNetwork(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		nw.AddLink(e[0], e[1])
	}
	if _, err := pc.Plan(nw); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheSnapshotIsolation mutates the source network after a cached
// construction and requires the cached plan to stay valid and the mutated
// network to key to a fresh entry.
func TestPlanCacheSnapshotIsolation(t *testing.T) {
	pc := NewPlanCache()
	nw := Ring(12)
	p, err := pc.Plan(nw)
	if err != nil {
		t.Fatal(err)
	}
	nw.AddLink(0, 6) // mutate after caching
	if err := p.Verify(); err != nil {
		t.Fatalf("cached plan corrupted by a later AddLink: %v", err)
	}
	if _, src, err := pc.PlanSourced(nw); err != nil || src != CacheMiss {
		t.Fatalf("mutated network src=%v err=%v, want a fresh miss", src, err)
	}
	if _, src, err := pc.PlanSourced(Ring(12)); err != nil || src != CacheHit {
		t.Fatalf("original topology src=%v err=%v, want hit", src, err)
	}
}

// TestPlanCacheConcurrentDedup fires 100 concurrent requests for one cold
// topology and requires exactly one construction.
func TestPlanCacheConcurrentDedup(t *testing.T) {
	pc := NewPlanCache()
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			p, err := pc.Plan(Mesh(8, 8))
			if err != nil {
				t.Error(err)
				return
			}
			if p.Rounds() == 0 {
				t.Error("empty plan from cache")
			}
		}()
	}
	close(gate)
	wg.Wait()
	if s := pc.Stats(); s.Misses != 1 || s.Hits+s.Coalesced != 99 || s.Inflight != 0 {
		t.Fatalf("stats %+v, want exactly one construction for 100 concurrent requests", s)
	}
}

// TestPlanCacheEviction bounds the cache to two plans and checks LRU
// eviction through the public API.
func TestPlanCacheEviction(t *testing.T) {
	pc := NewPlanCache(WithCacheCapacity(2))
	for _, n := range []int{8, 9, 10} {
		if _, err := pc.Plan(Ring(n)); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Contains(Ring(8)) {
		t.Fatal("least recently used plan survived eviction")
	}
	s := pc.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction and 2 entries", s)
	}
}

// TestPlanCacheMetricsRegistry routes cache counters into a public Metrics
// registry and checks they appear in the Prometheus dump.
func TestPlanCacheMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	pc := NewPlanCache(WithCacheMetrics(m))
	if _, err := pc.Plan(Ring(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Plan(Ring(8)); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Counters["plancache_misses_total"] != 1 || snap.Counters["plancache_hits_total"] != 1 {
		t.Fatalf("registry counters %v, want plancache_{hits,misses}_total = 1", snap.Counters)
	}
}
