package multigossip

import "testing"

func TestPlanCriticality(t *testing.T) {
	cud, err := Line(7).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	critical, deliveries, err := cud.Criticality()
	if err != nil {
		t.Fatal(err)
	}
	if critical != deliveries || deliveries != 7*6 {
		t.Fatalf("CUD criticality %d/%d, want fully critical with n(n-1) deliveries", critical, deliveries)
	}
	simple, err := Line(7).PlanGossip(WithAlgorithm(Simple))
	if err != nil {
		t.Fatal(err)
	}
	sc, sd, err := simple.Criticality()
	if err != nil {
		t.Fatal(err)
	}
	if sc >= sd {
		t.Fatalf("Simple should retain slack: %d/%d", sc, sd)
	}
}

func TestPlanCoverageUnderLoss(t *testing.T) {
	plan, err := Mesh(3, 3).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	full, err := plan.CoverageUnderLoss(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full != 1 {
		t.Fatalf("lossless coverage %v, want 1", full)
	}
	lossy, err := plan.CoverageUnderLoss(0.1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lossy >= full {
		t.Fatalf("10%% loss did not reduce coverage: %v", lossy)
	}
	if _, err := plan.CoverageUnderLoss(-1, 3, 1); err == nil {
		t.Fatal("negative loss accepted")
	}
}

func TestPlanEstimateMakespan(t *testing.T) {
	plan, err := Star(16).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := plan.EstimateMakespan(1, 0, 0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.5 * float64(plan.Rounds()); flat != want {
		t.Fatalf("flat makespan %v, want %v", flat, want)
	}
	jit, err := plan.EstimateMakespan(1, 1, 0.5, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if jit <= flat {
		t.Fatalf("jitter did not increase makespan: %v vs %v", jit, flat)
	}
	if _, err := plan.EstimateMakespan(1, 0, -1, 1, 1); err == nil {
		t.Fatal("negative barrier accepted")
	}
}

func TestPlanMinRepeatPeriod(t *testing.T) {
	plan, err := Star(10).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	period, err := plan.MinRepeatPeriod()
	if err != nil {
		t.Fatal(err)
	}
	n := 10
	if period < n-1 || period > plan.Rounds() {
		t.Fatalf("period %d outside [n-1, latency] = [%d, %d]", period, n-1, plan.Rounds())
	}
}

func TestPlanKPortGossip(t *testing.T) {
	nw := FullyConnected(13)
	prev := 1 << 30
	for _, ports := range []int{1, 2, 4} {
		plan, err := nw.PlanKPortGossip(ports)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("ports=%d: %v", ports, err)
		}
		if plan.Ports() != ports {
			t.Fatalf("Ports() = %d, want %d", plan.Ports(), ports)
		}
		if ports > 1 && plan.Rounds() >= prev {
			t.Fatalf("ports=%d: rounds %d not below %d", ports, plan.Rounds(), prev)
		}
		prev = plan.Rounds()
	}
	if _, err := nw.PlanKPortGossip(0); err == nil {
		t.Fatal("zero ports accepted")
	}
}

func TestPlanTreeSweepStats(t *testing.T) {
	plan, err := Mesh(12, 12).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	s := plan.TreeSweepStats()
	if s.Roots != 144 || s.Workers < 1 || s.Seeds < 1 {
		t.Fatalf("implausible tree sweep stats %+v", s)
	}
	if s.Completed+s.Pruned+s.ShortCircuited != s.Roots {
		t.Fatalf("tree sweep stats do not cover all roots: %+v", s)
	}
	if s.Pruned+s.ShortCircuited == 0 {
		t.Fatalf("pruning never fired on a 12x12 mesh: %+v", s)
	}
}

func TestNetworkMetricSweepSharedAndInvalidated(t *testing.T) {
	nw := Mesh(4, 5)
	r, d := nw.Radius(), nw.Diameter()
	if r != 4 || d != 7 {
		t.Fatalf("mesh 4x5 radius/diameter = %d/%d, want 4/7", r, d)
	}
	s := nw.MetricSweepStats()
	if s.Roots != 20 || s.Completed != 20 {
		t.Fatalf("metric sweep stats %+v, want all 20 roots completed", s)
	}
	ecc := nw.Eccentricities()
	if len(ecc) != 20 || ecc[0] != 7 {
		t.Fatalf("eccentricities %v, want corner ecc 7", ecc)
	}
	centers := nw.Center()
	for _, c := range centers {
		if ecc[c] != r {
			t.Fatalf("center %d has ecc %d != radius %d", c, ecc[c], r)
		}
	}
	// Mutating the network must invalidate the cached sweep: the shortcut
	// link drops the corner's eccentricity from 7.
	nw.AddLink(0, 19)
	if e := nw.Eccentricities()[0]; e >= 7 {
		t.Fatalf("corner eccentricity %d not reduced by shortcut link (stale cache?)", e)
	}
}
