package multigossip

import (
	"strings"
	"testing"
)

// TestSimulateMatchesPlan checks the public simulation entry point against
// the plan's own closed forms: the live distributed execution must finish
// at exactly n + r with n(n-1) deliveries.
func TestSimulateMatchesPlan(t *testing.T) {
	for _, nw := range []*Network{Line(9), Star(12), Ring(10), Mesh(4, 4)} {
		plan, err := nw.PlanGossip()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := plan.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		n := nw.Processors()
		if rep.CompleteAt != plan.Rounds() {
			t.Fatalf("n=%d: simulated completion %d, plan says %d", n, rep.CompleteAt, plan.Rounds())
		}
		if rep.Deliveries != int64(n)*int64(n-1) {
			t.Fatalf("n=%d: %d deliveries, want %d", n, rep.Deliveries, n*(n-1))
		}
		if rep.Transmissions <= 0 || rep.Events < rep.Transmissions {
			t.Fatalf("n=%d: implausible counters %+v", n, rep)
		}
	}
}

// TestSimulateObserver wires the existing observability surface into the
// simulator: metrics and the trace timeline must see the run unchanged.
func TestSimulateObserver(t *testing.T) {
	plan, err := Star(10).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	tr := NewTracer()
	rep, err := plan.Simulate(WithSimObserver(MultiObserver(InstrumentMetrics(m), tr)), WithSimShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FoldedDeliveries != 0 {
		t.Fatalf("folding must be disabled under an observer, got %d folded", rep.FoldedDeliveries)
	}
	snap := m.Snapshot()
	if got := snap.Counters["gossip_delivered_total"]; got != rep.Deliveries {
		t.Fatalf("metrics saw %d deliveries, report says %d", got, rep.Deliveries)
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "simulate") {
		t.Fatal("trace timeline missing the simulate phase span")
	}
}

// TestSimulateAsync runs the async engine through the public API under
// each latency constructor and checks the multiset-level invariants.
func TestSimulateAsync(t *testing.T) {
	plan, err := Mesh(5, 5).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	n := 25
	for _, lat := range []LinkLatency{nil, DeterministicLatency(2), UniformLatency(4, 7), HeavyTailLatency(8, 7)} {
		rep, err := plan.Simulate(WithSimAsync(lat))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Async {
			t.Fatal("report not flagged async")
		}
		if rep.Deliveries != int64(n)*int64(n-1) {
			t.Fatalf("%d deliveries, want %d", rep.Deliveries, n*(n-1))
		}
		maxLat := 1
		if lat != nil {
			maxLat = int(lat.Max())
		}
		bound := n + 2*plan.Radius() + maxLat*plan.Radius()
		if lat != nil && lat.Max() == 2 { // all-links-slow deterministic model
			bound = n + 2*plan.Radius() + 2*maxLat*plan.Radius()
		}
		if rep.CompleteAt > bound {
			t.Fatalf("async completed at %d > bound %d", rep.CompleteAt, bound)
		}
	}
}

// TestSimulateRequiresCUD: Simple plans have no per-node closed-form
// program to simulate.
func TestSimulateRequiresCUD(t *testing.T) {
	plan, err := Line(6).PlanGossip(WithAlgorithm(Simple))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Simulate(); err == nil {
		t.Fatal("Simulate accepted a Simple plan")
	}
}

// TestSimulateMaxRounds: an impossible cap must surface as an error, not
// a silent partial result.
func TestSimulateMaxRounds(t *testing.T) {
	plan, err := Line(12).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Simulate(WithSimMaxRounds(3)); err == nil {
		t.Fatal("cap of 3 rounds accepted for a 12-node line")
	}
}
