package multigossip

import (
	"math/rand"

	"multigossip/internal/graph"
)

// Topology constructors for the network families used throughout the
// paper's discussion and this repository's experiments. All return ready
// Networks; random variants take an explicit *rand.Rand for reproducibility.

// Line returns the straight-line network 0-1-...-(n-1), the paper's
// lower-bound instance: with n = 2m+1 processors every schedule needs at
// least n + r - 1 rounds.
func Line(n int) *Network { return fromGraph(graph.Path(n)) }

// Ring returns the cycle C_n (n >= 3), the Fig. 1 network N1.
func Ring(n int) *Network { return fromGraph(graph.Cycle(n)) }

// Star returns K_{1,n-1} with processor 0 as hub — the topology where
// multicasting beats the telephone model by the largest factor.
func Star(n int) *Network { return fromGraph(graph.Star(n)) }

// FullyConnected returns the complete network K_n (the paper's earlier
// multimessage multicasting work targets this case).
func FullyConnected(n int) *Network { return fromGraph(graph.Complete(n)) }

// Mesh returns the rows x cols grid.
func Mesh(rows, cols int) *Network { return fromGraph(graph.Grid(rows, cols)) }

// Torus returns the rows x cols wraparound grid.
func Torus(rows, cols int) *Network { return fromGraph(graph.Torus(rows, cols)) }

// Hypercube returns the d-dimensional hypercube on 2^d processors.
func Hypercube(d int) *Network { return fromGraph(graph.Hypercube(d)) }

// PetersenGraph returns the Fig. 2 network N2: non-Hamiltonian, yet
// gossiping completes in n - 1 = 9 rounds.
func PetersenGraph() *Network { return fromGraph(graph.Petersen()) }

// Fig4Network returns the reconstructed 16-processor network of Fig. 4,
// whose minimum-depth spanning tree is the paper's Fig. 5 tree.
func Fig4Network() *Network { return fromGraph(graph.Fig4()) }

// RandomNetwork returns a connected random network: each possible link is
// present with probability p, then connectivity is repaired.
func RandomNetwork(rng *rand.Rand, n int, p float64) *Network {
	return fromGraph(graph.RandomConnected(rng, n, p))
}

// SensorField returns a connected random geometric network: n sensors
// uniform in the unit square, linked within the given radio radius — the
// wireless setting that motivates multicasting in the paper (a single
// transmission reaches every receiver in range).
func SensorField(rng *rand.Rand, n int, radio float64) *Network {
	return fromGraph(graph.RandomGeometric(rng, n, radio))
}

// RandomTreeNetwork returns a uniformly random labelled tree on n processors.
func RandomTreeNetwork(rng *rand.Rand, n int) *Network {
	return fromGraph(graph.RandomTree(rng, n))
}
