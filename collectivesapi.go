package multigossip

import (
	"encoding/json"
	"fmt"

	"multigossip/internal/collectives"
	"multigossip/internal/graph"
	"multigossip/internal/mmc"
	"multigossip/internal/schedule"
)

// The collective operations sit on the same tree machinery as gossiping
// and cover the applications the paper cites (sorting, matrix
// multiplication, DFT, linear solvers): Gather funnels all messages to one
// processor, Scatter distributes personalised messages from one processor,
// and PlanMulticasts schedules the general multimessage multicasting
// problem that gossiping is the all-destinations special case of.

// GatherPlan is an all-to-one accumulation schedule.
type GatherPlan struct {
	network *graph.Graph
	sched   *schedule.Schedule
	target  int
}

// PlanGather builds a schedule delivering every processor's message to
// dst in exactly n - 1 rounds (optimal: dst receives one per round).
func (nw *Network) PlanGather(dst int) (*GatherPlan, error) {
	s, err := collectives.Gather(nw.g, dst)
	if err != nil {
		return nil, err
	}
	return &GatherPlan{network: nw.g, sched: s, target: dst}, nil
}

// Rounds returns the gather's total communication time.
func (p *GatherPlan) Rounds() int { return p.sched.Time() }

// Verify re-validates the schedule and that the target holds everything.
func (p *GatherPlan) Verify() error { return collectives.VerifyGather(p.network, p.sched, p.target) }

// ScatterPlan is a one-to-all personalised distribution schedule.
type ScatterPlan struct {
	network *graph.Graph
	sched   *schedule.Schedule
	source  int
}

// PlanScatter builds a schedule by which src delivers a distinct message
// to every processor (message m goes to processor m) in exactly n - 1
// rounds, the time reversal of the gather.
func (nw *Network) PlanScatter(src int) (*ScatterPlan, error) {
	s, err := collectives.Scatter(nw.g, src)
	if err != nil {
		return nil, err
	}
	return &ScatterPlan{network: nw.g, sched: s, source: src}, nil
}

// Rounds returns the scatter's total communication time.
func (p *ScatterPlan) Rounds() int { return p.sched.Time() }

// Verify re-validates the schedule and per-destination delivery.
func (p *ScatterPlan) Verify() error { return collectives.VerifyScatter(p.network, p.sched, p.source) }

// Multicast is one demand of a multimessage multicasting instance:
// the message held by Origin must reach every processor in Dests.
type Multicast struct {
	Origin int
	Dests  []int
}

// MulticastPlan is a schedule for a batch of multicasts with forwarding.
type MulticastPlan struct {
	inst  *mmc.Instance
	sched *schedule.Schedule
}

// PlanMulticasts schedules an arbitrary batch of multicast demands under
// the same communication model (greedy BFS-tree routing with round
// packing). Gossiping is the special case where every processor multicasts
// to everyone; use PlanGossip for that case — it is provably n + r.
func (nw *Network) PlanMulticasts(batch []Multicast) (*MulticastPlan, error) {
	msgs := make([]mmc.Message, len(batch))
	for i, b := range batch {
		msgs[i] = mmc.Message{Origin: b.Origin, Dests: append([]int(nil), b.Dests...)}
	}
	inst := &mmc.Instance{G: nw.g, Msgs: msgs}
	s, err := mmc.Schedule(inst, 0)
	if err != nil {
		return nil, err
	}
	return &MulticastPlan{inst: inst, sched: s}, nil
}

// Rounds returns the batch schedule's total communication time.
func (p *MulticastPlan) Rounds() int { return p.sched.Time() }

// LowerBound returns a cheap lower bound for the batch (receive
// bottlenecks and distances).
func (p *MulticastPlan) LowerBound() int { return mmc.LowerBound(p.inst) }

// Verify re-validates the schedule and every demanded delivery.
func (p *MulticastPlan) Verify() error { return mmc.Verify(p.inst, p.sched) }

// MarshalJSON exports the gossip plan's schedule in the library's stable
// JSON shape (versioned flat transmission list), for external tooling.
func (p *Plan) MarshalJSON() ([]byte, error) {
	if !p.Schedulable() {
		return nil, p.errNoSchedule()
	}
	return json.Marshal(p.schedule())
}

// ScheduleJSON renders the plan's schedule as JSON text.
func (p *Plan) ScheduleJSON() (string, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("multigossip: encoding schedule: %w", err)
	}
	return string(data), nil
}
