package multigossip

import (
	"multigossip/internal/algo"
	"multigossip/internal/obs"
	"multigossip/internal/plancache"
)

// Serving layer: plan reuse across requests. Constructing a plan costs an
// O(nm) metric sweep plus an O(n²) schedule build, but the finished Plan is
// immutable and safe to share between goroutines (Round, TimetableOf,
// ExecuteTraced and ExecuteWithFaults never mutate it — see the plan
// sharing race test). PlanCache exploits that: it content-addresses
// networks by Network.Fingerprint, keeps finished plans in a bounded LRU,
// and collapses concurrent misses for one topology into a single
// construction. A process serving many gossip requests pays construction
// once per distinct (topology, algorithm) pair.

// CacheSource classifies how a PlanCache request was satisfied: CacheMiss
// (this call constructed the plan), CacheHit (served from memory),
// CacheCoalesced (attached to another caller's in-flight construction) or
// CacheDisk (loaded from an attached PlanStore, skipping construction).
type CacheSource = plancache.Source

// CacheSource values.
const (
	CacheMiss      = plancache.Miss
	CacheHit       = plancache.Hit
	CacheCoalesced = plancache.Coalesced
	CacheDisk      = plancache.Disk
)

// CacheStats is a point-in-time snapshot of a PlanCache's counters.
// Hits + Misses + DiskHits + Coalesced equals the requests answered so far,
// and Entries equals successful Misses plus DiskHits minus Evictions.
type CacheStats = plancache.Stats

type cacheConfig struct {
	entries int
	bytes   int64
	reg     *obs.Registry
	store   *PlanStore
}

// CacheOption configures NewPlanCache.
type CacheOption func(*cacheConfig)

// WithCacheCapacity bounds the cache to at most n plans (default 512;
// zero or negative disables the entry bound).
func WithCacheCapacity(n int) CacheOption {
	return func(c *cacheConfig) { c.entries = n }
}

// WithCacheBytes bounds the cache to approximately max bytes of plan data,
// using a per-plan size estimate (default 512 MiB; zero or negative
// disables the byte bound). A single plan larger than the bound still
// caches, as the lone entry.
func WithCacheBytes(max int64) CacheOption {
	return func(c *cacheConfig) { c.bytes = max }
}

// WithCacheMetrics registers the cache's counters and gauges in m under
// plancache_* names (plancache_hits_total, plancache_misses_total,
// plancache_coalesced_total, plancache_evictions_total, plancache_entries,
// plancache_bytes, plancache_inflight), alongside whatever else the caller
// records there — one registry can feed a single /metrics endpoint.
func WithCacheMetrics(m *Metrics) CacheOption {
	return func(c *cacheConfig) { c.reg = m }
}

// WithCacheStore attaches a disk tier under the LRU: a memory miss first
// tries the store (counted as CacheDisk on success), and every plan this
// cache constructs is written through for later processes to warm-start
// from. Store failures never surface here — a degraded store just turns
// the cache back into the memory-only cache it was without one.
func WithCacheStore(ps *PlanStore) CacheOption {
	return func(c *cacheConfig) { c.store = ps }
}

// PlanCache is a concurrent, bounded, content-addressed cache of gossip
// plans. Safe for concurrent use by any number of goroutines; the plans it
// returns are shared, not copied, which is safe because plans are
// immutable.
type PlanCache struct {
	c *plancache.Cache[*Plan]
	// w caches weighted plans under (fingerprint ⊕ counts-hash, Weighted).
	// A separate generic instance because the value type differs; it shares
	// the entry/byte budget shape but registers no metrics of its own (the
	// plancache_* names belong to c).
	w *plancache.Cache[*WeightedPlan]
}

// NewPlanCache returns an empty plan cache (512 plans / 512 MiB estimated
// bytes by default).
func NewPlanCache(opts ...CacheOption) *PlanCache {
	cfg := cacheConfig{entries: 512, bytes: 512 << 20}
	for _, o := range opts {
		o(&cfg)
	}
	c := plancache.New[*Plan](cfg.entries, cfg.bytes, cfg.reg)
	if cfg.store != nil {
		c.AttachTier2(cfg.store)
	}
	return &PlanCache{
		c: c,
		w: plancache.New[*WeightedPlan](cfg.entries, cfg.bytes, nil),
	}
}

// Plan returns a gossip plan for the network, reusing a cached plan for any
// network with the same fingerprint and algorithm. On a miss it snapshots
// the network (so later AddLink calls cannot reach the cached plan) and
// constructs via PlanGossip; concurrent misses for one key construct once.
// Construction errors — ErrDisconnected in particular — are returned to
// every waiting caller and are not cached, so a later request retries.
func (pc *PlanCache) Plan(nw *Network, opts ...PlanOption) (*Plan, error) {
	p, _, err := pc.PlanSourced(nw, opts...)
	return p, err
}

// PlanSourced is Plan plus the cache outcome, for servers that report or
// meter hit rates per request.
func (pc *PlanCache) PlanSourced(nw *Network, opts ...PlanOption) (*Plan, CacheSource, error) {
	cfg := planConfig{algo: ConcurrentUpDown}
	for _, o := range opts {
		o(&cfg)
	}
	key := cacheKey(nw.Fingerprint(), cfg)
	return pc.c.Get(key, func() (*Plan, int64, error) {
		p, err := nw.snapshot().PlanGossip(opts...)
		if err != nil {
			return nil, 0, err
		}
		// Plan implements plancache.Sizer, so the cache charges
		// p.SizeBytes() — the build-time estimate here is a fallback only.
		return p, p.SizeBytes(), nil
	})
}

// lookup fetches the plan cached under (fingerprint, algo) without
// building on a miss; the churn layer probes with it before patching.
func (pc *PlanCache) lookup(fp uint64, algo Algorithm) (*Plan, bool) {
	return pc.c.Lookup(plancache.Key{Fingerprint: fp, Algo: int(algo)})
}

// put publishes an externally built plan — a DynamicPlanner's patched or
// rebound plan — under (fingerprint, algo). Patched plans are re-keyed by
// the mutated topology's fingerprint, so a later Plan request for the same
// edge set hits the patch instead of rebuilding; like every cached plan
// they are immutable and shared, never copied.
func (pc *PlanCache) put(fp uint64, algo Algorithm, p *Plan) {
	pc.c.Put(plancache.Key{Fingerprint: fp, Algo: int(algo)}, p, p.SizeBytes())
}

// Contains reports whether a plan for the network under the given options
// is cached, without touching LRU order or the hit/miss counters.
func (pc *PlanCache) Contains(nw *Network, opts ...PlanOption) bool {
	cfg := planConfig{algo: ConcurrentUpDown}
	for _, o := range opts {
		o(&cfg)
	}
	return pc.c.Peek(cacheKey(nw.Fingerprint(), cfg))
}

// cacheKey derives the plancache key for a plan request: the registry
// algorithm value plus the topology fingerprint, with the seed mixed into
// the fingerprint half for non-deterministic algorithms — two seeds of one
// topology are distinct plans and must not collide.
func cacheKey(fp uint64, cfg planConfig) plancache.Key {
	if algo.Registered(cfg.algo) && !algo.ByID(cfg.algo).Deterministic {
		fp ^= mixSeed(uint64(cfg.seed) ^ 0x5eed)
	}
	return plancache.Key{Fingerprint: fp, Algo: int(cfg.algo)}
}

// mixSeed finalises a seed into cache-key bits (splitmix64 finaliser).
func mixSeed(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WeightedPlanSourced returns a weighted gossip plan for the network and
// counts, reusing a cached plan for any (topology, counts) pair already
// built. Weighted plans cache in their own tier keyed by the topology
// fingerprint mixed with a counts hash, under the registry's Weighted
// value; concurrent misses for one key construct once, and errors are
// returned to every waiting caller without being cached.
func (pc *PlanCache) WeightedPlanSourced(nw *Network, counts []int) (*WeightedPlan, CacheSource, error) {
	fp := nw.Fingerprint()
	h := mixSeed(uint64(len(counts)) ^ 0xc0a475)
	for _, c := range counts {
		h = mixSeed(h ^ uint64(c))
	}
	key := plancache.Key{Fingerprint: fp ^ h, Algo: int(Weighted)}
	return pc.w.Get(key, func() (*WeightedPlan, int64, error) {
		p, err := nw.PlanWeightedGossip(counts)
		if err != nil {
			return nil, 0, err
		}
		return p, p.SizeBytes(), nil
	})
}

// WeightedPlan is WeightedPlanSourced without the cache outcome.
func (pc *PlanCache) WeightedPlan(nw *Network, counts []int) (*WeightedPlan, error) {
	p, _, err := pc.WeightedPlanSourced(nw, counts)
	return p, err
}

// Stats snapshots the cache counters.
func (pc *PlanCache) Stats() CacheStats { return pc.c.Stats() }

// SizeBytes reports the plan's resident size — the plancache.Sizer
// contract, which the cache's byte bound charges instead of a flat
// estimate. Implicit-backed ConcurrentUpDown plans cost their packed O(n)
// arrays plus the graph snapshot: kilobytes where the materialised form
// costs megabytes, which is what lets one cache hold thousands of
// topologies. Materialised (Simple) plans cost the full schedule — one
// Transmission header plus the To slice per multicast — plus the tree,
// labels and snapshot.
//
// The size is measured once, at cache insert. An implicit-backed plan
// that is later asked to Verify, Stats or ExecuteWithFaults materialises
// its schedule lazily and from then on occupies more memory than the
// cache accounted for; serving paths that only read Rounds, Round,
// RoundAppend and TimetableOf never trigger that growth.
func (p *Plan) SizeBytes() int64 {
	const word = 8
	b := int64(p.network.N()) * 2 * word // adjacency index of the snapshot
	b += int64(p.network.M()) * 2 * word // adjacency lists (both directions)
	if p.imp != nil {
		return b + p.imp.SizeBytes()
	}
	if p.sched == nil {
		return b + 8*word // Algebraic: the realized Result and seed only
	}
	s := p.sched
	b += int64(len(s.Rounds)) * 3 * word // round slice headers
	for _, r := range s.Rounds {
		b += int64(len(r)) * 5 * word // Msg, From, To header
		for _, tx := range r {
			b += int64(len(tx.To)) * word
		}
	}
	b += int64(p.network.N()) * 6 * word // parents, levels, labels, ecc
	return b
}
