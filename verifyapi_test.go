package multigossip

import (
	"strings"
	"testing"
)

func TestVerifyScheduleJSONAcceptsOwnPlans(t *testing.T) {
	nw := Ring(7)
	plan, err := nw.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	text, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	report, err := VerifyScheduleJSON(nw, []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "VALID") || !strings.Contains(report, "time=10") {
		t.Fatalf("report unexpected: %s", report)
	}
}

func TestVerifyScheduleJSONRejects(t *testing.T) {
	nw := Ring(7)
	if _, err := VerifyScheduleJSON(nw, []byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// A valid schedule for the wrong topology: ring schedule on a line.
	plan, err := Ring(7).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	text, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyScheduleJSON(Line(7), []byte(text)); err == nil {
		t.Fatal("ring schedule accepted on a line network")
	}
	// Truncated schedule: strip the closing rounds by decoding, cutting,
	// re-encoding — simpler: a schedule from a smaller network.
	small, err := Ring(6).PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	smallText, err := small.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyScheduleJSON(Ring(7), []byte(smallText)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
