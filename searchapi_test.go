package multigossip

import "testing"

func TestOptimalRoundsModels(t *testing.T) {
	// The Fig. 3 separation through the public API.
	n3 := NewNetwork(5)
	for _, hub := range []int{0, 1} {
		for _, leaf := range []int{2, 3, 4} {
			n3.AddLink(hub, leaf)
		}
	}
	multi, err := n3.OptimalRounds(MulticastModel, 8)
	if err != nil {
		t.Fatal(err)
	}
	tel, err := n3.OptimalRounds(TelephoneModel, 8)
	if err != nil {
		t.Fatal(err)
	}
	if multi != 4 || tel != 6 {
		t.Fatalf("optima multicast=%d telephone=%d, want 4, 6", multi, tel)
	}
	if _, err := FullyConnected(20).OptimalRounds(MulticastModel, 3); err == nil {
		t.Fatal("oversized exact search accepted")
	}
}

func TestGreedyRoundsPetersen(t *testing.T) {
	best, err := PetersenGraph().GreedyRounds(MulticastModel, 42, 600)
	if err != nil {
		t.Fatal(err)
	}
	if best < 9 || best > 11 {
		t.Fatalf("Petersen greedy best = %d, want within [9, 11]", best)
	}
	if _, err := NewNetwork(3).GreedyRounds(MulticastModel, 1, 1); err == nil {
		t.Fatal("disconnected network accepted")
	}
}

func TestPlanPetersenTelephone(t *testing.T) {
	plan, err := PlanPetersenTelephone()
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() != 9 {
		t.Fatalf("rounds %d, want 9 = n - 1", plan.Rounds())
	}
}

func TestHamiltonianCircuitAndRotationAPI(t *testing.T) {
	ring := Ring(9)
	circuit, ok := ring.HamiltonianCircuit()
	if !ok || len(circuit) != 9 {
		t.Fatalf("ring circuit not found: %v %v", circuit, ok)
	}
	plan, err := ring.PlanRingRotation(circuit)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() != 8 {
		t.Fatalf("rotation rounds %d, want 8", plan.Rounds())
	}
	if _, ok := PetersenGraph().HamiltonianCircuit(); ok {
		t.Fatal("Petersen reported Hamiltonian")
	}
	if _, err := ring.PlanRingRotation([]int{0, 1, 2}); err == nil {
		t.Fatal("bad circuit accepted")
	}
}
