// Quickstart: build a network, plan gossiping, verify, and inspect.
//
// This is the 30-line tour of the public API: a 12-processor ring is
// planned with ConcurrentUpDown, which always finishes in n + r rounds —
// here 12 + 6 = 18, within 1.5x of the optimal 11 the ring also admits by
// rotation (see examples/petersen for reaching that optimum).
package main

import (
	"fmt"
	"log"

	"multigossip"
)

func main() {
	// A network is processors plus links; topology helpers cover the
	// standard families, or build your own with NewNetwork/AddLink.
	nw := multigossip.Ring(12)

	plan, err := nw.PlanGossip() // ConcurrentUpDown by default
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		log.Fatal(err) // never happens: plans are valid by construction
	}

	fmt.Printf("network: %d processors, %d links, radius %d\n",
		nw.Processors(), nw.Links(), nw.Radius())
	fmt.Printf("gossip completes in %d rounds (n + r = %d + %d); lower bound %d\n",
		plan.Rounds(), nw.Processors(), nw.Radius(), nw.LowerBound())

	fmt.Println("\nspanning tree the schedule communicates over:")
	fmt.Print(plan.TreeString())

	fmt.Println("first three rounds of the schedule:")
	for t := 0; t < 3; t++ {
		fmt.Printf("  t=%d:", t)
		for _, tx := range plan.Round(t) {
			fmt.Printf(" processor %d multicasts message %d to %v;", tx.From, tx.Message, tx.To)
		}
		fmt.Println()
	}
}
