// Collectives: the application patterns the paper cites — sorting, matrix
// multiplication, DFT, linear solvers — decompose into the collective
// operations this library schedules on the same tree machinery:
//
//   - Gather:  all partial results to one coordinator (n - 1 rounds),
//   - Scatter: personalised work items from the coordinator (n - 1 rounds),
//   - Gossip:  an all-reduce — every processor ends with every operand
//     (n + r rounds, Theorem 1),
//   - PlanMulticasts: irregular communication phases, where each message
//     has its own destination set (the general multimessage multicasting
//     problem of which gossiping is the special case).
//
// The example stages a toy distributed matrix-vector iteration on a grid:
// scatter rows, compute, gossip the partial products, gather a checksum.
package main

import (
	"fmt"
	"log"

	"multigossip"
)

func main() {
	nw := multigossip.Mesh(4, 4)
	n := nw.Processors()
	fmt.Printf("cluster: 4x4 mesh, %d processors, radius %d\n\n", n, nw.Radius())

	// Phase 1 — scatter: the coordinator (processor 0) hands each worker
	// its row block; message m is addressed to processor m.
	scatter, err := nw.PlanScatter(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := scatter.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scatter row blocks:     %2d rounds (optimal: the source emits one distinct block per round)\n", scatter.Rounds())

	// Phase 2 — all-reduce: every worker's partial product must reach
	// every other worker; that is gossiping, and Theorem 1 prices it.
	gossip, err := nw.PlanGossip()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-reduce partials:    %2d rounds (n + r = %d + %d)\n", gossip.Rounds(), n, nw.Radius())

	// Phase 3 — gather: a convergence checksum funnels back to the
	// coordinator.
	gather, err := nw.PlanGather(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := gather.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gather checksums:       %2d rounds (optimal: the target absorbs one per round)\n", gather.Rounds())

	// Phase 4 — an irregular halo exchange: boundary processors multicast
	// to their specific neighbours; this is the general multimessage
	// multicasting problem.
	batch := []multigossip.Multicast{
		{Origin: 5, Dests: []int{1, 4, 6, 9}},
		{Origin: 6, Dests: []int{2, 5, 7, 10}},
		{Origin: 9, Dests: []int{5, 8, 10, 13}},
		{Origin: 10, Dests: []int{6, 9, 11, 14}},
		{Origin: 0, Dests: []int{15}},
	}
	halo, err := nw.PlanMulticasts(batch)
	if err != nil {
		log.Fatal(err)
	}
	if err := halo.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("irregular halo exchange: %d rounds (lower bound %d)\n\n", halo.Rounds(), halo.LowerBound())

	perIter := gossip.Rounds() + halo.Rounds()
	fmt.Printf("steady-state iteration cost: %d rounds (setup: scatter %d + gather %d, amortised over the run)\n",
		perIter, scatter.Rounds(), gather.Rounds())
}
