// Petersen: the worked examples of Figs. 1-3.
//
// Fig. 1 (N1): on a Hamiltonian ring, rotating every message clockwise
// completes gossiping in the optimal n - 1 rounds.
//
// Fig. 2 (N2): the Petersen graph has no Hamiltonian circuit, yet
// gossiping still completes in n - 1 = 9 rounds — a schedule this example
// recovers by randomized search.
//
// Fig. 3 (N3): some non-Hamiltonian networks separate the models: K_{2,3}
// gossips in n - 1 = 4 rounds under multicasting, but needs 6 under the
// telephone model (both certified by exact search).
package main

import (
	"fmt"
	"log"

	"multigossip"
)

func main() {
	// --- Fig. 1: ring rotation is optimal ---
	ring := multigossip.Ring(8)
	circuit, ok := ring.HamiltonianCircuit()
	if !ok {
		log.Fatal("ring unexpectedly has no Hamiltonian circuit")
	}
	rot, err := ring.PlanRingRotation(circuit)
	if err != nil {
		log.Fatal(err)
	}
	if err := rot.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 1  ring n=8: rotation gossips in %d rounds (lower bound %d)\n",
		rot.Rounds(), ring.LowerBound())

	// --- Fig. 2: Petersen graph, no circuit, still n-1 ---
	pet := multigossip.PetersenGraph()
	if _, ok := pet.HamiltonianCircuit(); ok {
		log.Fatal("Petersen graph reported Hamiltonian")
	}
	best, err := pet.GreedyRounds(multigossip.MulticastModel, 42, 600)
	if err != nil {
		log.Fatal(err)
	}
	telephone, err := multigossip.PlanPetersenTelephone()
	if err != nil {
		log.Fatal(err)
	}
	if err := telephone.Verify(); err != nil {
		log.Fatal(err)
	}
	cud, err := pet.PlanGossip()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 2  Petersen n=10: no Hamiltonian circuit; search found %d multicast rounds and the constructed telephone schedule takes %d (paper: 9 for both); ConcurrentUpDown guarantees %d = n + r\n",
		best, telephone.Rounds(), cud.Rounds())

	// --- Fig. 3: multicast/telephone separation on K_{2,3} ---
	n3 := multigossip.NewNetwork(5)
	for _, hub := range []int{0, 1} {
		for _, leaf := range []int{2, 3, 4} {
			n3.AddLink(hub, leaf)
		}
	}
	if _, ok := n3.HamiltonianCircuit(); ok {
		log.Fatal("K_{2,3} reported Hamiltonian")
	}
	multi, err := n3.OptimalRounds(multigossip.MulticastModel, 8)
	if err != nil {
		log.Fatal(err)
	}
	tel, err := n3.OptimalRounds(multigossip.TelephoneModel, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 3  K_{2,3} n=5: multicast optimum %d (= n-1), telephone optimum %d — multicasting is strictly more powerful\n",
		multi, tel)
}
