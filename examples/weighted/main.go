// Weighted: the Section 4 weighted gossiping extension.
//
// Each processor holds one or more messages (a sensor with a backlog, a
// node aggregating several inputs). The paper's reduction replaces a
// processor holding l messages with a chain of l virtual processors and
// runs the ordinary algorithm on the expansion; the splitting is then
// "mimicked" — chain-internal hops collapse to no-ops, and the contracted
// schedule still obeys the one-send/one-receive model on the real network.
package main

import (
	"fmt"
	"log"

	"multigossip"
)

func main() {
	// A 6-processor mesh where processors carry different backlogs.
	nw := multigossip.Mesh(2, 3)
	counts := []int{3, 1, 2, 1, 4, 1} // 12 messages in total

	plan, err := nw.PlanWeightedGossip(counts)
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d processors; backlogs %v; %d messages in total\n",
		nw.Processors(), counts, plan.TotalMessages())
	fmt.Printf("chain-expanded schedule: %d rounds (= N + expanded radius, Theorem 1 on the expansion)\n",
		plan.ExpandedRounds())
	fmt.Printf("contracted schedule on the real network: %d rounds, verified complete\n",
		plan.Rounds())

	fmt.Println("\nmessage origins:")
	for m := 0; m < plan.TotalMessages(); m++ {
		fmt.Printf("  message %2d originates at processor %d\n", m, plan.MessageOwner(m))
	}

	fmt.Println("\nfirst four rounds of the contracted schedule:")
	for t := 0; t < 4 && t < plan.Rounds(); t++ {
		fmt.Printf("  t=%d:", t)
		for _, tx := range plan.Round(t) {
			fmt.Printf(" %d->%v:m%d", tx.From, tx.To, tx.Message)
		}
		fmt.Println()
	}
}
