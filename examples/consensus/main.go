// Consensus: executing a gossip plan on the data plane.
//
// The other examples plan and verify schedules; this one actually moves
// data with one. Every sensor holds a reading; after the n + r rounds of
// a ConcurrentUpDown plan, every sensor holds all n readings and computes
// the same global average — distributed average consensus in one gossip
// operation, the pattern behind the paper's "solving linear equations"
// application and modern decentralised aggregation alike.
//
// The example replays the plan round by round, shipping real float64
// payloads along each transmission, and proves (a) every processor ends
// with all readings, (b) all computed averages agree bit-for-bit, and
// (c) the agreed value equals the centrally computed one.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multigossip"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	nw := multigossip.SensorField(rng, 36, 0.25)
	n := nw.Processors()

	plan, err := nw.PlanGossip()
	if err != nil {
		log.Fatal(err)
	}

	// Each sensor's local reading, indexed by the message that carries it.
	readings := make([]float64, n)
	for i := range readings {
		readings[i] = 15 + 10*rng.Float64() // temperatures, say
	}

	// The data plane: known[v][m] is v's copy of reading m (NaN-free
	// presence tracked separately). Execute the plan literally.
	known := make([][]float64, n)
	have := make([][]bool, n)
	for v := 0; v < n; v++ {
		known[v] = make([]float64, n)
		have[v] = make([]bool, n)
		known[v][v] = readings[v]
		have[v][v] = true
	}
	for t := 0; t < plan.Rounds(); t++ {
		type delivery struct {
			to, msg int
			value   float64
		}
		var arriving []delivery
		for _, tx := range plan.Round(t) {
			if !have[tx.From][tx.Message] {
				log.Fatalf("round %d: processor %d asked to send reading %d it does not hold", t, tx.From, tx.Message)
			}
			for _, d := range tx.To {
				arriving = append(arriving, delivery{d, tx.Message, known[tx.From][tx.Message]})
			}
		}
		for _, a := range arriving {
			known[a.to][a.msg] = a.value
			have[a.to][a.msg] = true
		}
	}

	// Every processor computes its average; all must agree exactly.
	centre := 0.0
	for _, r := range readings {
		centre += r
	}
	centre /= float64(n)

	first := 0.0
	for v := 0; v < n; v++ {
		sum := 0.0
		for m := 0; m < n; m++ {
			if !have[v][m] {
				log.Fatalf("processor %d is missing reading %d after the plan", v, m)
			}
			sum += known[v][m]
		}
		avg := sum / float64(n)
		if v == 0 {
			first = avg
		} else if avg != first {
			log.Fatalf("processor %d computed %v, processor 0 computed %v", v, avg, first)
		}
	}
	fmt.Printf("%d sensors reached consensus in %d rounds (n + r = %d + %d)\n",
		n, plan.Rounds(), n, plan.Radius())
	fmt.Printf("agreed average %.6f, centrally computed %.6f, equal: %v\n",
		first, centre, first == centre)
}
