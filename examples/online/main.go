// Online: the Section 4 distributed adaptation, executed for real.
//
// "The only global information they need is the value of i, j, and k."
// Each processor runs as its own goroutine knowing just its DFS tuple and
// tree neighbourhood; a synchronous round engine (the paper's software
// barrier) carries the messages. The run must match the offline schedule
// transmission for transmission — ExecuteDistributed errors out otherwise.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multigossip"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		nw   *multigossip.Network
	}{
		{"Fig. 4 network (n=16)", multigossip.Fig4Network()},
		{"hypercube d=5 (n=32)", multigossip.Hypercube(5)},
		{"random network (n=48)", multigossip.RandomNetwork(rng, 48, 0.1)},
		{"sensor field (n=40)", multigossip.SensorField(rng, 40, 0.22)},
	} {
		plan, err := tc.nw.PlanGossip()
		if err != nil {
			log.Fatal(err)
		}
		rounds, err := plan.ExecuteDistributed()
		if err != nil {
			log.Fatalf("%s: distributed run failed: %v", tc.name, err)
		}
		fmt.Printf("%-24s %d goroutines gossiped in %d rounds — identical to the offline schedule (n + r = %d)\n",
			tc.name, tc.nw.Processors(), rounds, plan.Rounds())
	}
}
