// Sensornet: gossiping in a wireless sensor field (Section 2 motivation).
//
// Multicasting "arises naturally in wireless communications where a
// transmission with power r^alpha reaches all receivers at a distance r":
// one radio send informs every sensor in range, which is exactly the model
// this library schedules for. This example drops sensors uniformly in the
// unit square, links those in radio range, and then
//
//  1. broadcasts a sink announcement (rounds = eccentricity of the sink),
//  2. plans all-to-all gossip — how sensor readings reach every node —
//     comparing ConcurrentUpDown against the Simple baseline, and
//  3. reuses the same spanning tree for repeated gossip, the amortisation
//     argument the paper makes for doing tree gossip well.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"multigossip"
)

func main() {
	rng := rand.New(rand.NewSource(2001))
	const sensors = 60
	nw := multigossip.SensorField(rng, sensors, 0.18)
	fmt.Printf("sensor field: %d sensors, %d radio links, radius %d, diameter %d\n",
		nw.Processors(), nw.Links(), nw.Radius(), nw.Diameter())

	// 1. Broadcast from the sink (sensor 0).
	bcast, err := nw.PlanBroadcast(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := bcast.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sink broadcast: %d rounds (one per BFS level)\n", bcast.Rounds())

	// 2. All-to-all gossip: every sensor learns every reading.
	cud, err := nw.PlanGossip()
	if err != nil {
		log.Fatal(err)
	}
	simple, err := nw.PlanGossip(multigossip.WithAlgorithm(multigossip.Simple))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gossip, ConcurrentUpDown: %d rounds (n + r; lower bound %d)\n",
		cud.Rounds(), nw.LowerBound())
	fmt.Printf("gossip, Simple baseline:  %d rounds (2n + r - 3)\n", simple.Rounds())
	fmt.Printf("schedule stats: %s\n", cud.Stats())

	// 3. Repeated gossip on a static field: the tree is built once (the
	// paper: "the construction of the tree is performed only when there is
	// a change in the network"); each sensing epoch replays the same n + r
	// round schedule.
	const epochs = 24
	fmt.Printf("%d sensing epochs: %d total rounds with ConcurrentUpDown vs %d with Simple (saving %d)\n",
		epochs, epochs*cud.Rounds(), epochs*simple.Rounds(), epochs*(simple.Rounds()-cud.Rounds()))
}
