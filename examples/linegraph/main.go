// Linegraph: the paper's lower-bound instance (Sections 1 and 4).
//
// On the straight line with n = 2m+1 processors, the centre can absorb the
// n messages no earlier than time n - 1, and the last one still needs m
// more hops to the ends, so every schedule takes at least n + r - 1 rounds.
// ConcurrentUpDown delivers n + r — one round from optimal, and the paper
// notes that closing the gap requires a non-uniform protocol. This example
// sweeps m and prints the gap, then shows the Table-1-style timetable of
// the centre processor.
package main

import (
	"fmt"
	"log"

	"multigossip"
)

func main() {
	fmt.Println("   m      n      r   lower(n+r-1)   ConcurrentUpDown   gap")
	for _, m := range []int{1, 2, 4, 8, 16, 64, 256} {
		n := 2*m + 1
		nw := multigossip.Line(n)
		plan, err := nw.PlanGossip()
		if err != nil {
			log.Fatal(err)
		}
		lower := n + m - 1
		fmt.Printf("%4d  %5d  %5d  %13d  %17d  %4d\n",
			m, n, plan.Radius(), lower, plan.Rounds(), plan.Rounds()-lower)
	}

	// The centre of the 9-processor line is the spanning tree root: watch
	// it absorb messages at full receive rate, the bottleneck the lower
	// bound argument is built on.
	nw := multigossip.Line(9)
	plan, err := nw.PlanGossip()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntimetable of the centre processor (vertex 4) on the 9-line:")
	fmt.Print(plan.TimetableOf(4))
}
