// Scale: planning gossip for networks far beyond what a materialised
// schedule allows.
//
// A gossip schedule is a Θ(n²) object — at n = 50,000 that is 2.5 billion
// deliveries, hundreds of gigabytes materialised. But the paper's
// construction is closed-form per vertex, so the schedule can be generated
// and verified as a stream with O(n) state. This example plans gossip for
// a 5,000-sensor field tree, streaming and count-verifying every round,
// and reports what the same machinery costs at larger n (pure arithmetic:
// rounds = n + r; deliveries = n(n-1)).
//
// The spanning tree uses the O(m) double-sweep construction (exact on
// trees) instead of the paper's O(mn) exhaustive search, which would
// dominate at this scale.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"multigossip"
)

func main() {
	rng := rand.New(rand.NewSource(12))
	n := 5000
	nw := multigossip.RandomTreeNetwork(rng, n)

	start := time.Now()
	sum, err := nw.GossipStreamSummary(true)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("network: random tree, n = %d\n", sum.Processors)
	fmt.Printf("spanning tree height (= radius, exact on trees): %d\n", sum.TreeHeight)
	fmt.Printf("schedule streamed & count-verified in %v:\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  rounds        %d  (n + r)\n", sum.Rounds)
	fmt.Printf("  transmissions %d\n", sum.Transmissions)
	fmt.Printf("  deliveries    %d  (= n(n-1): every processor receives every message exactly once)\n", sum.Deliveries)
	fmt.Printf("  max fanout    %d\n", sum.MaxFanout)

	fmt.Println("\nthe same plan at larger n (closed form; the stream scales linearly in deliveries):")
	for _, big := range []int{20_000, 100_000, 1_000_000} {
		fmt.Printf("  n = %9d: rounds ~ n + r, deliveries = %d\n", big, big*(big-1))
	}
}
