package multigossip

import (
	"multigossip/internal/spantree"
	"multigossip/internal/stream"
)

// StreamSummary reports a streamed gossip plan: the schedule was generated
// and verified round by round in O(n) memory, never materialised.
type StreamSummary struct {
	Processors    int
	TreeHeight    int // n + TreeHeight rounds total
	Rounds        int
	Transmissions int
	Deliveries    int
	MaxFanout     int
	// ExactTree reports that the spanning tree height is proven equal to
	// the network radius. It is always true for the exhaustive
	// construction (whose height is the radius by definition). For the
	// approximate construction the proof is cheap, not exhaustive: the
	// height is compared against the cached metric sweep when one exists,
	// and otherwise against the double-sweep radius lower bound
	// ceil(d(u,w)/2) — so an approximate tree that happens to be exact may
	// still report false when neither cheap certificate applies.
	ExactTree bool
}

// GossipStreamSummary plans gossiping without materialising the Θ(n²)
// schedule: it builds a spanning tree, streams the ConcurrentUpDown rounds
// with O(n) state, and count-verifies the invariants (single send/receive
// per round, tree edges only, exactly n-1 receives everywhere, n + height
// rounds). With approxTree the tree comes from the O(m) double-sweep
// (exact on tree networks, height within [r, 2r] in general) instead of
// the paper's O(mn) exhaustive construction — the right trade at n in the
// tens of thousands, where the exhaustive construction is the bottleneck.
func (nw *Network) GossipStreamSummary(approxTree bool) (StreamSummary, error) {
	var (
		tr  *spantree.Tree
		err error
	)
	if approxTree {
		tr, err = spantree.ApproxMinDepth(nw.g)
	} else {
		tr, err = spantree.MinDepth(nw.g)
	}
	if err != nil {
		return StreamSummary{}, err
	}
	l := spantree.Label(tr)
	sum, err := stream.Verify(l)
	if err != nil {
		return StreamSummary{}, err
	}
	out := StreamSummary{
		Processors:    nw.g.N(),
		TreeHeight:    tr.Height,
		Rounds:        sum.Rounds,
		Transmissions: sum.Transmissions,
		Deliveries:    sum.Deliveries,
		MaxFanout:     sum.MaxFanout,
		ExactTree:     !approxTree || nw.provenRadius(tr.Height),
	}
	return out, nil
}

// provenRadius reports whether height is provably the network radius
// without paying for a full metric sweep: it compares against the cached
// sweep when one exists, and otherwise checks height against the O(m)
// double-sweep radius lower bound (a BFS-tree height is always >= the
// radius, so meeting a lower bound proves equality). The network must be
// connected.
func (nw *Network) provenRadius(height int) bool {
	nw.mu.Lock()
	cached := nw.metrics
	nw.mu.Unlock()
	if cached != nil {
		return height == cached.Radius
	}
	// Double sweep: the farthest vertex u from 0, then the farthest w from
	// u. d(u, w) lower-bounds the diameter, and radius >= ceil(diameter/2).
	dist0 := nw.g.BFS(0)
	u := 0
	for v, d := range dist0 {
		if d > dist0[u] {
			u = v
		}
	}
	distU := nw.g.BFS(u)
	dw := 0
	for _, d := range distU {
		if d > dw {
			dw = d
		}
	}
	return height <= (dw+1)/2
}
