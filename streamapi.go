package multigossip

import (
	"multigossip/internal/spantree"
	"multigossip/internal/stream"
)

// StreamSummary reports a streamed gossip plan: the schedule was generated
// and verified round by round in O(n) memory, never materialised.
type StreamSummary struct {
	Processors    int
	TreeHeight    int // n + TreeHeight rounds total
	Rounds        int
	Transmissions int
	Deliveries    int
	MaxFanout     int
	ExactTree     bool // true when the spanning tree height equals the radius
}

// GossipStreamSummary plans gossiping without materialising the Θ(n²)
// schedule: it builds a spanning tree, streams the ConcurrentUpDown rounds
// with O(n) state, and count-verifies the invariants (single send/receive
// per round, tree edges only, exactly n-1 receives everywhere, n + height
// rounds). With approxTree the tree comes from the O(m) double-sweep
// (exact on tree networks, height within [r, 2r] in general) instead of
// the paper's O(mn) exhaustive construction — the right trade at n in the
// tens of thousands, where the exhaustive construction is the bottleneck.
func (nw *Network) GossipStreamSummary(approxTree bool) (StreamSummary, error) {
	var (
		tr  *spantree.Tree
		err error
	)
	if approxTree {
		tr, err = spantree.ApproxMinDepth(nw.g)
	} else {
		tr, err = spantree.MinDepth(nw.g)
	}
	if err != nil {
		return StreamSummary{}, err
	}
	l := spantree.Label(tr)
	sum, err := stream.Verify(l)
	if err != nil {
		return StreamSummary{}, err
	}
	out := StreamSummary{
		Processors:    nw.g.N(),
		TreeHeight:    tr.Height,
		Rounds:        sum.Rounds,
		Transmissions: sum.Transmissions,
		Deliveries:    sum.Deliveries,
		MaxFanout:     sum.MaxFanout,
		ExactTree:     !approxTree,
	}
	return out, nil
}
