package multigossip

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// storeRing returns a connected ring network of n processors with a few
// chords so plans are not degenerate.
func storeRing(n int) *Network {
	nw := NewNetwork(n)
	for i := 0; i < n; i++ {
		nw.AddLink(i, (i+1)%n)
	}
	nw.AddLink(0, n/2)
	nw.AddLink(1, n/3)
	return nw
}

// TestStoreWarmStartBitIdentical is the crash/restart drill: build through a
// store-backed cache, throw the cache (and the "process") away, open a
// fresh cache over the same directory, and require the plan to come back
// from disk — zero constructions — with every round bit-identical to the
// pre-crash plan's.
func TestStoreWarmStartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	nw := storeRing(64)

	cold := NewPlanCache(WithCacheStore(OpenPlanStore(dir)))
	before, src, err := cold.PlanSourced(nw)
	if err != nil || src != CacheMiss {
		t.Fatalf("cold plan: %v, %v", src, err)
	}

	store := OpenPlanStore(dir)
	warm := NewPlanCache(WithCacheStore(store))
	after, src, err := warm.PlanSourced(nw)
	if err != nil {
		t.Fatalf("warm plan: %v", err)
	}
	if src != CacheDisk {
		t.Fatalf("warm source = %v, want CacheDisk", src)
	}
	if st := warm.Stats(); st.Misses != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats %+v, want zero rebuilds and one disk hit", st)
	}
	if st := store.Stats(); st.Hits != 1 {
		t.Fatalf("store stats %+v, want one hit", st)
	}

	if before.Rounds() != after.Rounds() {
		t.Fatalf("rounds %d vs %d across restart", before.Rounds(), after.Rounds())
	}
	for r := 0; r < before.Rounds(); r++ {
		if !reflect.DeepEqual(before.Round(r), after.Round(r)) {
			t.Fatalf("round %d differs across restart", r)
		}
	}
	if err := after.Verify(); err != nil {
		t.Fatalf("restored plan failed verification: %v", err)
	}
}

// TestStoreCorruptEntryRebuilds flips a payload bit on disk and requires the
// checksum to catch it: the corrupted entry quarantines, the request falls
// through to a rebuild, and the rebuilt plan is served and re-persisted.
func TestStoreCorruptEntryRebuilds(t *testing.T) {
	dir := t.TempDir()
	nw := storeRing(32)

	cold := NewPlanCache(WithCacheStore(OpenPlanStore(dir)))
	if _, err := cold.Plan(nw); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries on disk: %v (%v)", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x10
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	store := OpenPlanStore(dir)
	warm := NewPlanCache(WithCacheStore(store))
	p, src, err := warm.PlanSourced(nw)
	if err != nil {
		t.Fatalf("plan after corruption: %v", err)
	}
	if src != CacheMiss {
		t.Fatalf("source = %v, want CacheMiss (corrupt entry must rebuild, not serve)", src)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Quarantined != 1 || st.Hits != 0 {
		t.Fatalf("store stats %+v, want the corrupt entry quarantined and no hit", st)
	}
	q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(q) != 1 {
		t.Fatalf("quarantine holds %v, want the bad entry", q)
	}
	// The rebuild wrote through, so the next process warm-starts again.
	if _, src, _ := NewPlanCache(WithCacheStore(OpenPlanStore(dir))).PlanSourced(nw); src != CacheDisk {
		t.Fatalf("post-recovery source = %v, want CacheDisk", src)
	}
}

// TestStoreSemanticForgeryDropped hand-crafts an entry whose checksum is
// valid but whose payload decodes to a topology with a different
// fingerprint — the store tier cannot see this, the decode layer must.
func TestStoreSemanticForgeryDropped(t *testing.T) {
	dir := t.TempDir()
	victim := storeRing(32)
	other := storeRing(48)

	// Persist a plan for `other`, then copy its bytes onto `victim`'s key
	// with a fresh, valid checksum (Save computes it).
	cold := NewPlanCache(WithCacheStore(OpenPlanStore(dir)))
	if _, err := cold.Plan(other); err != nil {
		t.Fatal(err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "*.plan"))
	if len(entries) != 1 {
		t.Fatalf("entries: %v", entries)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	forged := OpenPlanStore(dir)
	forged.s.Save(victim.Fingerprint(), int(ConcurrentUpDown), raw[32:])

	store := OpenPlanStore(dir)
	warm := NewPlanCache(WithCacheStore(store))
	p, src, err := warm.PlanSourced(victim)
	if err != nil {
		t.Fatal(err)
	}
	if src != CacheMiss {
		t.Fatalf("source = %v, want CacheMiss for a fingerprint-mismatched payload", src)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Quarantined != 1 {
		t.Fatalf("store stats %+v, want the forged entry quarantined via Drop", st)
	}
}

// TestStoreSimplePlansNotPersisted checks the materialised baseline stays
// memory-only: a Simple plan neither writes the store nor loads from it.
func TestStoreSimplePlansNotPersisted(t *testing.T) {
	dir := t.TempDir()
	nw := storeRing(16)
	store := OpenPlanStore(dir)
	pc := NewPlanCache(WithCacheStore(store))
	if _, err := pc.Plan(nw, WithAlgorithm(Simple)); err != nil {
		t.Fatal(err)
	}
	if store.Entries() != 0 {
		t.Fatalf("%d entries on disk after a Simple plan, want none", store.Entries())
	}
	if _, src, err := NewPlanCache(WithCacheStore(OpenPlanStore(dir))).PlanSourced(nw, WithAlgorithm(Simple)); err != nil || src != CacheMiss {
		t.Fatalf("Simple replan = %v, %v; want a plain rebuild", src, err)
	}
}

// TestStoreDegradedKeepsServing opens a store over an unwritable directory
// and requires the cache to behave exactly as if no store were attached.
func TestStoreDegradedKeepsServing(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; chmod 0555 does not block writes")
	}
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	if err := os.Mkdir(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	store := OpenPlanStore(dir)
	if !store.Degraded() {
		t.Fatal("store over an unwritable directory must open degraded")
	}
	pc := NewPlanCache(WithCacheStore(store))
	nw := storeRing(24)
	p, src, err := pc.PlanSourced(nw)
	if err != nil || src != CacheMiss {
		t.Fatalf("degraded-store plan = %v, %v", src, err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, src, err := pc.PlanSourced(nw); err != nil || src != CacheHit {
		t.Fatalf("second request = %v, %v; memory tier must be unaffected", src, err)
	}
}

// TestPlanBytesRoundtrip exercises the payload codec directly across
// topology shapes, including the canonical-encoding property.
func TestPlanBytesRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 5, 33, 100} {
		nw := NewNetwork(n)
		for i := 0; i < n-1; i++ {
			nw.AddLink(i, i+1)
		}
		for i := 0; i < n/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				nw.AddLink(u, v)
			}
		}
		p, err := nw.PlanGossip()
		if err != nil {
			t.Fatal(err)
		}
		enc := encodePlanBytes(p)
		q, err := decodePlanBytes(enc, nw.Fingerprint(), ConcurrentUpDown)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !bytes.Equal(encodePlanBytes(q), enc) {
			t.Fatalf("n=%d: re-encoding the decoded plan changed the bytes", n)
		}
		if q.Rounds() != p.Rounds() || q.Radius() != p.Radius() {
			t.Fatalf("n=%d: shape drift across roundtrip", n)
		}
		for r := 0; r < p.Rounds(); r++ {
			if !reflect.DeepEqual(p.Round(r), q.Round(r)) {
				t.Fatalf("n=%d: round %d differs", n, r)
			}
		}
	}
}

// TestPlanBytesRejects maps malformed payloads to errPlanBytes: every case
// is something a checksum-passing but buggy or hostile writer could emit.
func TestPlanBytesRejects(t *testing.T) {
	nw := storeRing(16)
	p, err := nw.PlanGossip()
	if err != nil {
		t.Fatal(err)
	}
	good := encodePlanBytes(p)
	fp := nw.Fingerprint()

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := map[string][]byte{
		"empty":          {},
		"header only":    good[:8],
		"truncated plan": good[:len(good)-9],
		"self loop": mutate(func(b []byte) []byte {
			copy(b[12:16], b[8:12]) // first edge becomes (u,u)
			return b
		}),
		"vertex out of range": mutate(func(b []byte) []byte {
			b[12], b[13], b[14], b[15] = 0xFF, 0xFF, 0xFF, 0x7F
			return b
		}),
		"duplicate edge": mutate(func(b []byte) []byte {
			copy(b[16:24], b[8:16])
			return b
		}),
	}
	for name, data := range cases {
		if _, err := decodePlanBytes(data, fp, ConcurrentUpDown); !errors.Is(err, errPlanBytes) {
			t.Errorf("%s: err = %v, want errPlanBytes", name, err)
		}
	}
	if _, err := decodePlanBytes(good, fp+1, ConcurrentUpDown); !errors.Is(err, errPlanBytes) {
		t.Errorf("wrong fingerprint: err = %v, want errPlanBytes", err)
	}
	if _, err := decodePlanBytes(good, fp, Simple); !errors.Is(err, errPlanBytes) {
		t.Errorf("wrong algorithm: err = %v, want errPlanBytes", err)
	}
	// Tree edge not in topology: rebuild the payload with one graph edge
	// removed so the plan's spanning tree references a missing link.
	treeU, treeV := -1, -1
	for v := 0; v < 16; v++ {
		if par := p.imp.ParentOriginal(v); par >= 0 {
			treeU, treeV = v, par
			break
		}
	}
	slim := NewNetwork(16)
	for _, e := range p.network.Edges() {
		if (e.U == treeU && e.V == treeV) || (e.U == treeV && e.V == treeU) {
			continue
		}
		slim.AddLink(e.U, e.V)
	}
	slimPlan := &Plan{network: slim.snapshotGraph(), algo: ConcurrentUpDown, radius: p.radius, imp: p.imp}
	if _, err := decodePlanBytes(encodePlanBytes(slimPlan), slim.Fingerprint(), ConcurrentUpDown); !errors.Is(err, errPlanBytes) {
		t.Errorf("missing tree edge: err = %v, want errPlanBytes", err)
	}
}

// FuzzStorePlanDecode asserts the full store decode path — graph section
// plus implicit plan — never panics, and that accepted payloads are
// genuinely well-formed (they re-encode canonically and verify).
func FuzzStorePlanDecode(f *testing.F) {
	nw := storeRing(12)
	if p, err := nw.PlanGossip(); err == nil {
		f.Add(encodePlanBytes(p), nw.Fingerprint())
	}
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, fp uint64) {
		p, err := decodePlanBytes(data, fp, ConcurrentUpDown)
		if err != nil {
			return
		}
		if !bytes.Equal(encodePlanBytes(p), data) {
			t.Fatal("accepted payload does not round-trip")
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("accepted payload fails plan verification: %v", err)
		}
	})
}

// TestStoreMetricsExposed checks the planstore_* series land in the same
// registry the rest of the serving stack reports through.
func TestStoreMetricsExposed(t *testing.T) {
	m := NewMetrics()
	store := OpenPlanStore(t.TempDir(), WithStoreMetrics(m), WithStoreLogger(t.Logf))
	pc := NewPlanCache(WithCacheStore(store), WithCacheMetrics(m))
	if _, err := pc.Plan(storeRing(16)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	out := buf.String()
	for _, series := range []string{"planstore_writes_total 1", "planstore_degraded 0", "plancache_disk_hits_total 0"} {
		if !bytes.Contains(buf.Bytes(), []byte(series)) {
			t.Errorf("metrics missing %q:\n%s", series, out)
		}
	}
}
