package multigossip_test

// The benchmark harness regenerates every experiment of the reproduction
// (one benchmark per figure/table/bound of the paper — see DESIGN.md's
// experiment index) and additionally measures the asymptotic cost of each
// pipeline stage. Run everything with:
//
//	go test -bench=. -benchmem .
//
// Experiment benchmarks execute the corresponding expt.Suite entry per
// iteration and fail the run if an experiment stops reproducing; stage
// benchmarks time tree construction, labelling, both schedule builders,
// validation, and the distributed executor across sizes.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"multigossip/internal/baseline"
	"multigossip/internal/core"
	"multigossip/internal/expt"
	"multigossip/internal/graph"
	"multigossip/internal/online"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
	"multigossip/internal/stream"
)

// benchExperiment runs one experiment per iteration, asserting reproduction.
func benchExperiment(b *testing.B, run func(*expt.Suite) *expt.Table) {
	b.Helper()
	suite := expt.NewSuite()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if table := run(suite); !table.Pass {
			b.Fatalf("%s stopped reproducing:\n%s", table.ID, table.Markdown())
		}
	}
}

func BenchmarkE1RingRotation(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E1RingRotation)
}

func BenchmarkE2Petersen(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E2Petersen)
}

func BenchmarkE3Separation(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E3Separation)
}

func BenchmarkE4TreeConstruction(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E4TreeConstruction)
}

func BenchmarkE5Table1(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E5Table1)
}

func BenchmarkE6Table2(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E6Table2)
}

func BenchmarkE7Table3(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E7Table3)
}

func BenchmarkE8Table4(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E8Table4)
}

func BenchmarkE9SimpleBound(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E9SimpleBound)
}

func BenchmarkE10CUDBound(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E10CUDBound)
}

func BenchmarkE11OddLine(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E11OddLine)
}

func BenchmarkE12ApproxRatio(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E12ApproxRatio)
}

func BenchmarkE13Broadcast(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E13Broadcast)
}

func BenchmarkE14TelephoneSeparation(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E14TelephoneSeparation)
}

func BenchmarkE15MinDepthTree(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E15MinDepthTree)
}

func BenchmarkE16Weighted(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E16Weighted)
}

func BenchmarkE17Online(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E17Online)
}

func BenchmarkE18Comparative(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E18Comparative)
}

func BenchmarkE19LineOptimal(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E19LineOptimal)
}

func BenchmarkE20RootAblation(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E20RootAblation)
}

func BenchmarkE21Fragility(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E21Fragility)
}

func BenchmarkE22FanoutSweep(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E22FanoutSweep)
}

func BenchmarkE23OptimalityGap(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E23OptimalityGap)
}

func BenchmarkE24BarrierMakespan(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E24BarrierMakespan)
}

func BenchmarkE25PipelineThroughput(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E25PipelineThroughput)
}

func BenchmarkE26Randomized(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E26Randomized)
}

func BenchmarkE27KPortSweep(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E27KPortSweep)
}

func BenchmarkE28MillionNodeSim(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E28MillionNodeSim)
}

func BenchmarkE29Portfolio(b *testing.B) {
	benchExperiment(b, (*expt.Suite).E29Portfolio)
}

// --- pipeline stage benchmarks ---

// randomLabeledTree builds a labelled random tree of n vertices.
func randomLabeledTree(b *testing.B, n int) *spantree.Labeled {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	g := graph.RandomTree(rng, n)
	tr, err := spantree.BFSTree(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	return spantree.Label(tr)
}

func BenchmarkStageMinDepthTree(b *testing.B) {
	// The O(mn) step of Section 3.1: n BFS traversals.
	for _, n := range []int{64, 128, 256} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomConnected(rng, n, 0.05)
		b.Run(fmt.Sprintf("n=%d/m=%d", n, g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := spantree.MinDepth(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStageDFSLabel(b *testing.B) {
	for _, n := range []int{1024, 8192, 65536} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomTree(rng, n)
		tr, err := spantree.BFSTree(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spantree.Label(tr)
			}
		})
	}
}

func BenchmarkStageBuildConcurrentUpDown(b *testing.B) {
	// The O(n) schedule construction per vertex; the whole build is O(n^2)
	// in emitted transmissions (each of n messages crosses each level once).
	for _, n := range []int{128, 512, 1024} {
		l := randomLabeledTree(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.BuildConcurrentUpDown(l)
			}
		})
	}
}

func BenchmarkStageBuildSimple(b *testing.B) {
	for _, n := range []int{128, 512, 1024} {
		l := randomLabeledTree(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.BuildSimple(l)
			}
		})
	}
}

func BenchmarkStageGreedyUpDown(b *testing.B) {
	for _, n := range []int{256, 1024} {
		l := randomLabeledTree(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.GreedyUpDown(l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStageValidate(b *testing.B) {
	for _, n := range []int{256, 1024} {
		l := randomLabeledTree(b, n)
		s := core.BuildConcurrentUpDown(l)
		g := l.T.Graph()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.CheckGossip(g, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStageTelephoneGossip(b *testing.B) {
	for _, n := range []int{32, 64} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomConnected(rng, n, 0.1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.TelephoneGossip(g, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStageOnlineRun(b *testing.B) {
	// Goroutine-per-processor distributed execution.
	for _, n := range []int{64, 256} {
		l := randomLabeledTree(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := online.Run(l, online.NewConcurrentUpDown(l), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStageEndToEnd(b *testing.B) {
	// Full pipeline on a random connected graph: min-depth tree + label +
	// build, amortised over many gossip executions in practice.
	for _, n := range []int{64, 128} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomConnected(rng, n, 0.08)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Gossip(g, core.ConcurrentUpDown); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- sweep engine benchmarks (see BENCH_sweep.json, cmd/sweepbench) ---

// sweepBenchGraph builds the three sweep benchmark topologies: a ring (all
// eccentricities tie, the engine's worst case), a square grid (widely
// varying eccentricities, pruning's best case), and a sparse random graph
// with average degree ~8 (small diameter, where early exit is weak but the
// engine's CSR layout and allocation-free traversals still pay).
func sweepBenchGraph(kind string, n int) *graph.Graph {
	switch kind {
	case "ring":
		return graph.Cycle(n)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return graph.Grid(side, side)
	case "random":
		rng := rand.New(rand.NewSource(int64(n)))
		return graph.RandomConnected(rng, n, 8/float64(n))
	default:
		panic("unknown sweep benchmark topology " + kind)
	}
}

var sweepBenchSizes = []int{256, 1024, 4096}

// naiveMinDepthSweep is the paper's literal O(nm) Section 3.1 loop, the
// sequential-naive baseline the engine is measured against.
func naiveMinDepthSweep(g *graph.Graph) (*spantree.Tree, error) {
	var best *spantree.Tree
	for root := 0; root < g.N(); root++ {
		t, err := spantree.BFSTree(g, root)
		if err != nil {
			return nil, err
		}
		if best == nil || t.Height < best.Height {
			best = t
		}
	}
	return best, nil
}

func BenchmarkSweepMinDepthNaive(b *testing.B) {
	for _, kind := range []string{"ring", "grid", "random"} {
		for _, n := range sweepBenchSizes {
			g := sweepBenchGraph(kind, n)
			b.Run(fmt.Sprintf("%s/n=%d", kind, g.N()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := naiveMinDepthSweep(g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSweepMinDepthPruned(b *testing.B) {
	for _, kind := range []string{"ring", "grid", "random"} {
		for _, n := range sweepBenchSizes {
			g := sweepBenchGraph(kind, n)
			b.Run(fmt.Sprintf("%s/n=%d", kind, g.N()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tr, stats, err := spantree.MinDepthWithStats(g)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						traversals := stats.Completed + stats.ShortCircuited
						b.ReportMetric(float64(traversals), "traversals")
						_ = tr
					}
				}
			})
		}
	}
}

func BenchmarkSweepEccentricitiesAll(b *testing.B) {
	// The unpruned full sweep behind Eccentricities/Diameter: n exact
	// traversals fanned over the worker pool on the CSR layout.
	for _, n := range sweepBenchSizes {
		g := sweepBenchGraph("random", n)
		b.Run(fmt.Sprintf("random/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.Sweep(graph.SweepAll); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStageStreamGenerator(b *testing.B) {
	// O(n)-memory streaming of the full schedule; reported per schedule.
	for _, n := range []int{1024, 4096} {
		l := randomLabeledTree(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stream.Verify(l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
