package multigossip

import (
	"fmt"

	"multigossip/internal/fault"
	"multigossip/internal/obs"
	"multigossip/internal/repair"
)

// FaultReport summarises one faulty execution of a plan and the repair
// rounds that followed it.
type FaultReport struct {
	// Coverage is the fraction of (processor, message) pairs delivered by
	// the scheduled rounds alone, with full fault propagation.
	Coverage float64
	// FinalCoverage is the fraction held after repair (equal to Coverage
	// when repair is disabled or nothing was missing).
	FinalCoverage float64
	// Dropped counts deliveries lost in flight, in the scheduled and the
	// repair rounds together. Deliveries a faulty upstream prevented from
	// being sent at all are not counted — they were never in flight.
	Dropped int
	// Repaired counts the (processor, message) pairs the repair rounds
	// restored.
	Repaired int
	// ScheduleRounds is the length of the original plan, RepairRounds the
	// extra rounds repair executed, and TotalRounds their sum.
	ScheduleRounds int
	RepairRounds   int
	TotalRounds    int
	// RepairIterations is the number of plan-execute-remeasure iterations
	// the repair engine ran; each executes at most the network diameter
	// rounds.
	RepairIterations int
	// Complete reports whether every processor holds every message at the
	// end.
	Complete bool

	// ReachableCoverage is the fraction of reachable pairs held at the
	// end: a missing pair counts as reachable when its message still has a
	// holder in the destination's component of the survivor network (the
	// network minus quarantined links and down processors). 1.0 means the
	// execution is complete up to reachability — under a partition that is
	// the best any recovery can achieve. With repair disabled it equals
	// Coverage.
	ReachableCoverage float64
	// Unreachable lists the missing pairs beyond the reachable ceiling,
	// ordered by (Processor, Message). Empty unless a permanent fault
	// partitioned the survivor network.
	Unreachable []Pair
	// QuarantinedLinks and DownProcessors are the permanent faults the
	// repair engine diagnosed and amputated from the survivor network,
	// ordered. Both are empty with repair disabled.
	QuarantinedLinks []Link
	DownProcessors   []int
	// Components is the number of connected components of the final
	// survivor network (a down processor is its own singleton); values
	// above 1 mean the execution degraded gracefully under partition.
	// Zero when repair is disabled.
	Components int
	// Stalled reports that repair gave up early: iterations stopped making
	// progress on reachable pairs with nothing left to quarantine.
	Stalled bool

	// ProgressCurve is the per-round holds-coverage curve of the whole
	// execution, scheduled and repair rounds together under absolute round
	// indices. Each point carries the round's delivery stats and the
	// cumulative fraction of (processor, message) pairs held after it. It is
	// always collected, with or without WithObserver.
	ProgressCurve []RoundProgress
}

// Pair is one (processor, message) pair of the gossip problem: Processor
// should learn Message.
type Pair struct {
	Processor, Message int
}

// Link is an undirected network link between processors U and V.
type Link struct {
	U, V int
}

type faultConfig struct {
	injectors  fault.Compose
	repair     bool
	maxIters   int
	quarantine int
	observer   obs.RoundObserver
	validation error
}

// FaultOption configures ExecuteWithFaults.
type FaultOption func(*faultConfig)

// WithDroppedDelivery marks one delivery of the plan as lost in flight: the
// destination dest of transmission index tx in round round (the indices of
// Plan.Round). Repeat the option to drop several deliveries.
func WithDroppedDelivery(round, tx, dest int) FaultOption {
	return func(c *faultConfig) {
		if round < 0 || tx < 0 || dest < 0 {
			c.validation = fmt.Errorf("multigossip: negative delivery coordinates (%d, %d, %d)", round, tx, dest)
			return
		}
		c.injectors = append(c.injectors, fault.DropSet{{Round: round, Tx: tx, Dest: dest}: true})
	}
}

// WithLinkLoss loses every delivery independently with the given
// probability — the Bernoulli lossy-link model. Decisions are derived from
// the seed by hashing, so a run is deterministic and repair retries of the
// same link in later rounds draw fresh coins.
func WithLinkLoss(p float64, seed int64) FaultOption {
	return func(c *faultConfig) {
		if p < 0 || p > 1 {
			c.validation = fmt.Errorf("multigossip: loss probability %v out of [0,1]", p)
			return
		}
		c.injectors = append(c.injectors, fault.LinkLoss{P: p, Seed: seed})
	}
}

// WithCrashWindow crashes processor proc for rounds from <= t < to: it
// neither sends nor receives in the window, keeps what it already held, and
// rejoins afterwards. Rounds are numbered across the whole execution, so a
// window reaching past the schedule length crashes the processor during
// repair too.
func WithCrashWindow(proc, from, to int) FaultOption {
	return func(c *faultConfig) {
		if proc < 0 {
			c.validation = fmt.Errorf("multigossip: negative crash processor %d", proc)
			return
		}
		if from < 0 || to < from {
			c.validation = fmt.Errorf("multigossip: bad crash window [%d, %d)", from, to)
			return
		}
		c.injectors = append(c.injectors, fault.CrashWindow{Proc: proc, From: from, To: to})
	}
}

// WithCrashStop crashes processor proc permanently from round from on: it
// neither sends nor receives from that round forward and never rejoins —
// the classic crash-stop model. The repair engine detects the silence,
// quarantines the processor out of the survivor network, and completes the
// gossip for the live partition; the report's DownProcessors, Unreachable
// and ReachableCoverage describe the degradation.
func WithCrashStop(proc, from int) FaultOption {
	return func(c *faultConfig) {
		if proc < 0 {
			c.validation = fmt.Errorf("multigossip: negative crash processor %d", proc)
			return
		}
		if from < 0 {
			c.validation = fmt.Errorf("multigossip: negative crash round %d", from)
			return
		}
		c.injectors = append(c.injectors, fault.CrashStop(proc, from))
	}
}

// WithDeadLink severs the network link between processors u and v
// permanently: every delivery across it, in either direction and in both
// the scheduled and the repair rounds, is lost. The repair engine
// quarantines the link after repeated failures and replans over the
// surviving topology, routing around it when the network remains connected
// and degrading to the reachable ceiling when it does not. The link must
// exist in the plan's network.
func WithDeadLink(u, v int) FaultOption {
	return func(c *faultConfig) {
		if u < 0 || v < 0 || u == v {
			c.validation = fmt.Errorf("multigossip: bad dead link (%d, %d)", u, v)
			return
		}
		c.injectors = append(c.injectors, fault.DeadLink{U: u, V: v})
	}
}

// WithQuarantineThreshold sets how many consecutive failed repair
// iterations a link or processor survives before the repair engine
// quarantines it as permanently faulty (default
// repair.DefaultQuarantineThreshold). Lower values amputate faster but
// risk quarantining a merely lossy link; higher values tolerate longer
// fault bursts at the cost of more wasted iterations.
func WithQuarantineThreshold(k int) FaultOption {
	return func(c *faultConfig) {
		if k < 1 {
			c.validation = fmt.Errorf("multigossip: quarantine threshold %d < 1", k)
			return
		}
		c.quarantine = k
	}
}

// WithObserver attaches a RoundObserver to the execution: it receives
// "schedule" and "repair" phase spans, BeginRound/EndRound with aggregated
// stats for every round (repair rounds under absolute indices continuing
// the schedule's), one Delivery event per scheduled delivery with its
// outcome, and RepairIteration/Quarantine events from the repair engine.
// Repeated options stack: every observer receives every event. Combine
// with NewTracer or InstrumentMetrics for ready-made sinks.
func WithObserver(o RoundObserver) FaultOption {
	return func(c *faultConfig) { c.observer = obs.Multi(c.observer, o) }
}

// WithoutRepair disables the repair engine: the report describes the raw
// degradation of the schedule under the injected faults.
func WithoutRepair() FaultOption {
	return func(c *faultConfig) { c.repair = false }
}

// WithRepairBudget bounds the repair engine's retry loop to at most iters
// plan-execute iterations (default repair.DefaultMaxIterations). Each
// iteration appends at most the network diameter rounds.
func WithRepairBudget(iters int) FaultOption {
	return func(c *faultConfig) {
		if iters < 1 {
			c.validation = fmt.Errorf("multigossip: repair budget %d < 1", iters)
			return
		}
		c.maxIters = iters
	}
}

// ExecuteWithFaults replays the plan under injected faults — explicit
// delivery drops, Bernoulli link loss, processor crash windows, permanent
// dead links and crash-stop processors — with full fault propagation: a
// processor that never received a message silently skips its scheduled
// relays of it. It then runs the self-healing loop: compute the residual
// deficit (which processors miss which messages), greedily synthesize
// repair rounds that respect the communication model over any network link
// (one multicast per sender and at most one receive per processor per
// round), execute them under the same fault model, and iterate while
// messages are still missing, up to the repair budget. Every synthesized
// repair batch is re-validated against the model rules before it runs.
//
// Transient faults are ridden out by retrying. Permanent faults are
// detected by suspicion tracking — consecutive failed delivery attempts
// per link and per processor — and quarantined (see
// WithQuarantineThreshold), after which repair replans over the survivor
// network. When quarantine partitions the network, the loop terminates
// once every still-reachable pair is delivered and the report records the
// degradation: ReachableCoverage, Unreachable, QuarantinedLinks,
// DownProcessors and Components.
//
// The returned report gives coverage before and after repair, the
// dropped and repaired delivery counts, and the rounds spent. With no
// options the execution is fault-free and the report is trivially
// complete. The zero-redundancy ConcurrentUpDown schedule loses coverage
// under any fault (see Plan.Criticality); this is the closed-loop
// counterpart that wins it back.
func (p *Plan) ExecuteWithFaults(opts ...FaultOption) (FaultReport, error) {
	if !p.Schedulable() {
		return FaultReport{}, p.errNoSchedule()
	}
	cfg := faultConfig{repair: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.validation != nil {
		return FaultReport{}, cfg.validation
	}
	var inj fault.Injector
	if len(cfg.injectors) > 0 {
		inj = cfg.injectors
	}
	s := p.schedule()
	for _, c := range cfg.injectors {
		switch f := c.(type) {
		case fault.CrashWindow:
			if f.Proc >= s.N {
				return FaultReport{}, fmt.Errorf("multigossip: crash processor %d out of range [0,%d)", f.Proc, s.N)
			}
		case fault.DeadLink:
			if f.U >= s.N || f.V >= s.N {
				return FaultReport{}, fmt.Errorf("multigossip: dead link (%d, %d) out of range [0,%d)", f.U, f.V, s.N)
			}
			if !p.network.HasEdge(f.U, f.V) {
				return FaultReport{}, fmt.Errorf("multigossip: dead link (%d, %d) is not a network link", f.U, f.V)
			}
		}
	}
	n := p.network.N()
	progress := obs.NewProgressCollector(n, n*n)
	ro := obs.Multi(cfg.observer, progress)
	ro.BeginPhase("schedule", p.algo.String())
	holds, dropped, err := fault.ExecuteTraced(p.network, s, inj, nil, 0, nil, ro)
	ro.EndPhase("schedule")
	if err != nil {
		return FaultReport{}, err
	}
	rep := FaultReport{
		Coverage:       fault.Coverage(holds),
		ScheduleRounds: s.Time(),
		Dropped:        dropped,
	}
	if !cfg.repair {
		rep.FinalCoverage = rep.Coverage
		rep.ReachableCoverage = rep.Coverage
		rep.TotalRounds = rep.ScheduleRounds
		rep.Complete = repair.MissingPairs(holds) == 0
		rep.ProgressCurve = progress.Curve()
		return rep, nil
	}
	ro.BeginPhase("repair", "")
	out, err := repair.Run(p.network, holds, repair.Options{
		MaxIterations:       cfg.maxIters,
		Injector:            inj,
		RoundOffset:         s.Time(),
		Validate:            true,
		QuarantineThreshold: cfg.quarantine,
		Observer:            ro,
	})
	ro.EndPhase("repair")
	if err != nil {
		return FaultReport{}, err
	}
	rep.Dropped += out.Dropped
	rep.Repaired = out.Repaired
	rep.RepairRounds = out.Rounds
	rep.RepairIterations = out.Iterations
	rep.TotalRounds = rep.ScheduleRounds + out.Rounds
	rep.FinalCoverage = fault.Coverage(out.Holds)
	rep.Complete = out.Complete
	rep.ReachableCoverage = out.ReachableCoverage
	for _, pr := range out.Unreachable {
		rep.Unreachable = append(rep.Unreachable, Pair{Processor: pr.Processor, Message: pr.Message})
	}
	for _, e := range out.QuarantinedLinks {
		rep.QuarantinedLinks = append(rep.QuarantinedLinks, Link{U: e.U, V: e.V})
	}
	rep.DownProcessors = out.DownProcessors
	rep.Components = out.Components
	rep.Stalled = out.Stalled
	rep.ProgressCurve = progress.Curve()
	return rep, nil
}
