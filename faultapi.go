package multigossip

import (
	"fmt"

	"multigossip/internal/fault"
	"multigossip/internal/repair"
)

// FaultReport summarises one faulty execution of a plan and the repair
// rounds that followed it.
type FaultReport struct {
	// Coverage is the fraction of (processor, message) pairs delivered by
	// the scheduled rounds alone, with full fault propagation.
	Coverage float64
	// FinalCoverage is the fraction held after repair (equal to Coverage
	// when repair is disabled or nothing was missing).
	FinalCoverage float64
	// Dropped counts deliveries lost in flight, in the scheduled and the
	// repair rounds together. Deliveries a faulty upstream prevented from
	// being sent at all are not counted — they were never in flight.
	Dropped int
	// Repaired counts the (processor, message) pairs the repair rounds
	// restored.
	Repaired int
	// ScheduleRounds is the length of the original plan, RepairRounds the
	// extra rounds repair executed, and TotalRounds their sum.
	ScheduleRounds int
	RepairRounds   int
	TotalRounds    int
	// RepairIterations is the number of plan-execute-remeasure iterations
	// the repair engine ran; each executes at most the network diameter
	// rounds.
	RepairIterations int
	// Complete reports whether every processor holds every message at the
	// end.
	Complete bool
}

type faultConfig struct {
	injectors  fault.Compose
	repair     bool
	maxIters   int
	validation error
}

// FaultOption configures ExecuteWithFaults.
type FaultOption func(*faultConfig)

// WithDroppedDelivery marks one delivery of the plan as lost in flight: the
// destination dest of transmission index tx in round round (the indices of
// Plan.Round). Repeat the option to drop several deliveries.
func WithDroppedDelivery(round, tx, dest int) FaultOption {
	return func(c *faultConfig) {
		if round < 0 || tx < 0 || dest < 0 {
			c.validation = fmt.Errorf("multigossip: negative delivery coordinates (%d, %d, %d)", round, tx, dest)
			return
		}
		c.injectors = append(c.injectors, fault.DropSet{{Round: round, Tx: tx, Dest: dest}: true})
	}
}

// WithLinkLoss loses every delivery independently with the given
// probability — the Bernoulli lossy-link model. Decisions are derived from
// the seed by hashing, so a run is deterministic and repair retries of the
// same link in later rounds draw fresh coins.
func WithLinkLoss(p float64, seed int64) FaultOption {
	return func(c *faultConfig) {
		if p < 0 || p > 1 {
			c.validation = fmt.Errorf("multigossip: loss probability %v out of [0,1]", p)
			return
		}
		c.injectors = append(c.injectors, fault.LinkLoss{P: p, Seed: seed})
	}
}

// WithCrashWindow crashes processor proc for rounds from <= t < to: it
// neither sends nor receives in the window, keeps what it already held, and
// rejoins afterwards. Rounds are numbered across the whole execution, so a
// window reaching past the schedule length crashes the processor during
// repair too.
func WithCrashWindow(proc, from, to int) FaultOption {
	return func(c *faultConfig) {
		if proc < 0 {
			c.validation = fmt.Errorf("multigossip: negative crash processor %d", proc)
			return
		}
		if from < 0 || to < from {
			c.validation = fmt.Errorf("multigossip: bad crash window [%d, %d)", from, to)
			return
		}
		c.injectors = append(c.injectors, fault.CrashWindow{Proc: proc, From: from, To: to})
	}
}

// WithoutRepair disables the repair engine: the report describes the raw
// degradation of the schedule under the injected faults.
func WithoutRepair() FaultOption {
	return func(c *faultConfig) { c.repair = false }
}

// WithRepairBudget bounds the repair engine's retry loop to at most iters
// plan-execute iterations (default repair.DefaultMaxIterations). Each
// iteration appends at most the network diameter rounds.
func WithRepairBudget(iters int) FaultOption {
	return func(c *faultConfig) {
		if iters < 1 {
			c.validation = fmt.Errorf("multigossip: repair budget %d < 1", iters)
			return
		}
		c.maxIters = iters
	}
}

// ExecuteWithFaults replays the plan under injected faults — explicit
// delivery drops, Bernoulli link loss, processor crash windows — with full
// fault propagation: a processor that never received a message silently
// skips its scheduled relays of it. It then runs the self-healing loop:
// compute the residual deficit (which processors miss which messages),
// greedily synthesize repair rounds that respect the communication model
// over any network link (one multicast per sender and at most one receive
// per processor per round), execute them under the same fault model, and
// iterate while messages are still missing, up to the repair budget. Every
// synthesized repair batch is re-validated against the model rules before
// it runs.
//
// The returned report gives coverage before and after repair, the
// dropped and repaired delivery counts, and the rounds spent. With no
// options the execution is fault-free and the report is trivially
// complete. The zero-redundancy ConcurrentUpDown schedule loses coverage
// under any fault (see Plan.Criticality); this is the closed-loop
// counterpart that wins it back.
func (p *Plan) ExecuteWithFaults(opts ...FaultOption) (FaultReport, error) {
	cfg := faultConfig{repair: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.validation != nil {
		return FaultReport{}, cfg.validation
	}
	var inj fault.Injector
	if len(cfg.injectors) > 0 {
		inj = cfg.injectors
	}
	s := p.result.Schedule
	for _, c := range cfg.injectors {
		if cw, ok := c.(fault.CrashWindow); ok && cw.Proc >= s.N {
			return FaultReport{}, fmt.Errorf("multigossip: crash processor %d out of range [0,%d)", cw.Proc, s.N)
		}
	}
	holds, dropped, err := fault.ExecuteInjected(p.network, s, inj, nil, 0)
	if err != nil {
		return FaultReport{}, err
	}
	rep := FaultReport{
		Coverage:       fault.Coverage(holds),
		ScheduleRounds: s.Time(),
		Dropped:        dropped,
	}
	if !cfg.repair {
		rep.FinalCoverage = rep.Coverage
		rep.TotalRounds = rep.ScheduleRounds
		rep.Complete = repair.MissingPairs(holds) == 0
		return rep, nil
	}
	out, err := repair.Run(p.network, holds, repair.Options{
		MaxIterations: cfg.maxIters,
		Injector:      inj,
		RoundOffset:   s.Time(),
		Validate:      true,
	})
	if err != nil {
		return FaultReport{}, err
	}
	rep.Dropped += out.Dropped
	rep.Repaired = out.Repaired
	rep.RepairRounds = out.Rounds
	rep.RepairIterations = out.Iterations
	rep.TotalRounds = rep.ScheduleRounds + out.Rounds
	rep.FinalCoverage = fault.Coverage(out.Holds)
	rep.Complete = out.Complete
	return rep, nil
}
