package multigossip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/plancache"
	"multigossip/internal/planstore"
)

// Disk tier: crash-safe plan persistence. A PlanStore is the second tier
// under a PlanCache — plans built once survive process restarts, so a
// restarted server warm-starts from disk instead of re-running the O(nm)
// construction per topology. Attach with WithCacheStore; the cache then
// consults the store inside each miss's singleflight and writes built plans
// through.
//
// Only ConcurrentUpDown plans persist: their implicit O(n) form encodes in
// ~8 bytes per vertex plus the topology, while a materialised Simple
// schedule would cost O(n²) on disk for a plan the paper treats as a
// baseline. A Simple plan simply never writes, and its misses rebuild.

// StoreStats is a point-in-time snapshot of a PlanStore's counters.
type StoreStats = planstore.Stats

// errPlanBytes wraps every store-payload decoding failure.
var errPlanBytes = errors.New("multigossip: malformed stored plan")

type storeConfig struct {
	reg  *Metrics
	logf func(format string, args ...any)
}

// StoreOption configures OpenPlanStore.
type StoreOption func(*storeConfig)

// WithStoreMetrics registers the store's counters and gauges in m under
// planstore_* names (planstore_hits_total, planstore_misses_total,
// planstore_writes_total, planstore_write_errors_total,
// planstore_quarantined_total, planstore_degraded).
func WithStoreMetrics(m *Metrics) StoreOption {
	return func(c *storeConfig) { c.reg = m }
}

// WithStoreLogger routes the store's event log (degradation, quarantines)
// to logf; by default events are dropped.
func WithStoreLogger(logf func(format string, args ...any)) StoreOption {
	return func(c *storeConfig) { c.logf = logf }
}

// PlanStore is a disk-backed, content-addressed store of gossip plans keyed
// by (network fingerprint, algorithm). Entries are written crash-safely
// (temp file, fsync, atomic rename) and checksummed; a corrupt entry is
// quarantined and rebuilt, never served. A store whose directory stops
// accepting writes degrades to read-only and the serving stack continues
// from memory — opening a store can therefore never make a server less
// available than it was without one.
//
// Safe for concurrent use, including by multiple processes sharing one
// directory: equal keys hold equal bytes, so concurrent writers are
// idempotent.
type PlanStore struct {
	s *planstore.Store
}

// OpenPlanStore roots a plan store at dir, creating it as needed. Problems
// with the directory (permissions, read-only filesystem, full disk) yield
// an already-degraded store rather than an error.
func OpenPlanStore(dir string, opts ...StoreOption) *PlanStore {
	cfg := storeConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	return &PlanStore{s: planstore.Open(dir, cfg.reg, cfg.logf)}
}

// Degraded reports whether the store has stopped writing after a disk
// failure. Reads continue either way.
func (ps *PlanStore) Degraded() bool { return ps.s.Degraded() }

// Stats snapshots the store counters.
func (ps *PlanStore) Stats() StoreStats { return ps.s.Stats() }

// Entries counts the entry files currently on disk.
func (ps *PlanStore) Entries() int { return ps.s.Entries() }

// Load implements plancache.Tier2: it returns the decoded plan under key,
// or reports a miss. Corrupt entries — bad checksum, malformed plan bytes,
// a topology that does not hash to the key's fingerprint, a tree edge
// absent from the topology — are quarantined by the store tier and decoded
// failures deleted the same way, so no bad entry is read twice.
func (ps *PlanStore) Load(key plancache.Key) (*Plan, int64, bool) {
	payload, err := ps.s.Load(key.Fingerprint, key.Algo)
	if err != nil {
		return nil, 0, false
	}
	p, err := decodePlanBytes(payload, key.Fingerprint, Algorithm(key.Algo))
	if err != nil {
		// The bytes passed the checksum but not semantic validation — a
		// writer bug or a quarantine-worthy forgery either way. Re-saving
		// nothing and dropping the entry turns it into a clean rebuild.
		ps.s.Drop(key.Fingerprint, key.Algo, err)
		return nil, 0, false
	}
	return p, p.SizeBytes(), true
}

// Store implements plancache.Tier2: it persists a freshly built plan.
// Simple (materialised) plans and write failures are both silently skipped;
// the store's own metrics record the latter, and a degraded store makes
// this a cheap no-op.
func (ps *PlanStore) Store(key plancache.Key, p *Plan) {
	if p.imp == nil {
		return
	}
	ps.s.Save(key.Fingerprint, key.Algo, encodePlanBytes(p))
}

// encodePlanBytes serialises a ConcurrentUpDown plan: the topology snapshot
// (vertex count, edge count, then each edge as two uint32s in canonical
// (u<v, sorted) order) followed by the implicit plan's wire form. The
// topology rides along because a Plan answers Verify, ExecuteWithFaults and
// SizeBytes against its own graph — and because re-fingerprinting the
// decoded topology is the store's end-to-end integrity check.
func encodePlanBytes(p *Plan) []byte {
	edges := p.network.Edges()
	buf := make([]byte, 0, 8+8*len(edges)+p.imp.EncodedLen())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.network.N()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
	}
	return p.imp.AppendBinary(buf)
}

// decodePlanBytes parses a stored plan and validates it end to end: the
// edge list must be canonical and self-consistent, the rebuilt topology
// must hash to the fingerprint the entry is keyed by, the implicit plan
// must decode (implicit.Decode re-derives and checks its full structural
// contract), and every tree edge of the plan must exist in the topology.
// No input can make it panic; anything malformed reports errPlanBytes.
//
// The decoded plan's sweep statistics are zero — a plan loaded from disk
// ran no sweep in this process.
func decodePlanBytes(data []byte, fp uint64, algo Algorithm) (*Plan, error) {
	if algo != ConcurrentUpDown {
		return nil, fmt.Errorf("%w: algorithm %d has no stored form", errPlanBytes, int(algo))
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: %d bytes, want at least 8", errPlanBytes, len(data))
	}
	n64 := int64(binary.LittleEndian.Uint32(data[0:4]))
	m64 := int64(binary.LittleEndian.Uint32(data[4:8]))
	// Bound the claimed sizes by the input length before any allocation.
	if n64 < 1 || m64 < 0 || int64(len(data)) < 8+8*m64 {
		return nil, fmt.Errorf("%w: n=%d m=%d does not fit %d bytes", errPlanBytes, n64, m64, len(data))
	}
	n, m := int(n64), int(m64)

	g := graph.New(n)
	prevU, prevV := -1, -1
	for i := 0; i < m; i++ {
		u := int(binary.LittleEndian.Uint32(data[8+8*i:]))
		v := int(binary.LittleEndian.Uint32(data[12+8*i:]))
		// Canonical order (strictly ascending (u,v), u<v) is part of the
		// format: it rejects duplicate edges for free and guarantees one
		// serialisation per topology.
		if u >= v || v >= n || (u < prevU || (u == prevU && v <= prevV)) {
			return nil, fmt.Errorf("%w: edge %d (%d,%d) breaks canonical order", errPlanBytes, i, u, v)
		}
		prevU, prevV = u, v
		g.AddEdge(u, v)
	}
	if got := g.Fingerprint(); got != fp {
		return nil, fmt.Errorf("%w: topology fingerprint %016x, entry keyed %016x", errPlanBytes, got, fp)
	}

	imp, err := implicit.Decode(data[8+8*m:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errPlanBytes, err)
	}
	if imp.N() != n {
		return nil, fmt.Errorf("%w: plan over %d vertices, topology has %d", errPlanBytes, imp.N(), n)
	}
	for v := 0; v < n; v++ {
		if par := imp.ParentOriginal(v); par >= 0 && !g.HasEdge(v, par) {
			return nil, fmt.Errorf("%w: tree edge %d-%d not in topology", errPlanBytes, v, par)
		}
	}
	return &Plan{network: g, algo: algo, radius: imp.Height(), imp: imp}, nil
}
