package multigossip

import (
	"strings"
	"testing"
)

// TestStreamSummaryExactPathNamedTopologies checks the exhaustive-tree
// stream path on named topologies: the streamed plan takes exactly
// n + height rounds, the tree height is the network radius (so ExactTree
// holds by construction), and the counts are internally consistent.
func TestStreamSummaryExactPathNamedTopologies(t *testing.T) {
	cases := []struct {
		name string
		nw   *Network
	}{
		{"ring9", Ring(9)},
		{"line7", Line(7)},
		{"star8", Star(8)},
		{"mesh4x4", Mesh(4, 4)},
		{"hypercube4", Hypercube(4)},
		{"petersen", PetersenGraph()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sum, err := tc.nw.GossipStreamSummary(false)
			if err != nil {
				t.Fatal(err)
			}
			n := tc.nw.Processors()
			if sum.Processors != n {
				t.Errorf("Processors = %d, want %d", sum.Processors, n)
			}
			if !sum.ExactTree {
				t.Error("exhaustive construction must report ExactTree")
			}
			if sum.TreeHeight != tc.nw.Radius() {
				t.Errorf("TreeHeight = %d, want radius %d", sum.TreeHeight, tc.nw.Radius())
			}
			if sum.Rounds != n+sum.TreeHeight {
				t.Errorf("Rounds = %d, want n + height = %d", sum.Rounds, n+sum.TreeHeight)
			}
			// Streaming must agree with the materialised plan on the total.
			plan, err := tc.nw.PlanGossip()
			if err != nil {
				t.Fatal(err)
			}
			if sum.Rounds != plan.Rounds() {
				t.Errorf("streamed Rounds = %d, materialised plan has %d", sum.Rounds, plan.Rounds())
			}
			// Every processor learns the other n-1 messages exactly once.
			if want := n * (n - 1); sum.Deliveries != want {
				t.Errorf("Deliveries = %d, want n(n-1) = %d", sum.Deliveries, want)
			}
			if sum.Transmissions <= 0 || sum.Transmissions > sum.Deliveries {
				t.Errorf("Transmissions = %d out of (0, %d]", sum.Transmissions, sum.Deliveries)
			}
			if sum.MaxFanout < 1 {
				t.Errorf("MaxFanout = %d, want >= 1", sum.MaxFanout)
			}
		})
	}
}

// TestStreamSummaryApproxCachedMetrics drives the provenRadius cached-sweep
// branch: once a metric has been asked for, the approximate tree's height
// is certified against the cached radius, so an approx tree of the right
// height reports ExactTree even where the double-sweep bound alone could
// not prove it (an even ring's bound is r-1 < r).
func TestStreamSummaryApproxCachedMetrics(t *testing.T) {
	nw := Ring(6)
	if r := nw.Radius(); r != 3 { // caches the metric sweep
		t.Fatalf("Ring(6) radius = %d, want 3", r)
	}
	sum, err := nw.GossipStreamSummary(true)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TreeHeight != 3 {
		t.Fatalf("approx tree height = %d, want 3 (any BFS tree of C6)", sum.TreeHeight)
	}
	if !sum.ExactTree {
		t.Error("cached radius 3 should certify the height-3 approx tree as exact")
	}
	if sum.Rounds != 6+3 {
		t.Errorf("Rounds = %d, want 9", sum.Rounds)
	}
}

// TestStreamSummaryApproxUncertified pins the conservative answer on a
// fresh even ring: the approx tree is exact (any BFS tree of C6 has height
// 3 = r) but without a cached sweep the only cheap certificate is the
// double-sweep bound ceil(d(u,w)/2) = 2 < 3, so ExactTree must be false.
func TestStreamSummaryApproxUncertified(t *testing.T) {
	sum, err := Ring(6).GossipStreamSummary(true)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TreeHeight != 3 {
		t.Fatalf("approx tree height = %d, want 3", sum.TreeHeight)
	}
	if sum.ExactTree {
		t.Error("no cheap certificate applies on a fresh even ring; ExactTree must be false")
	}
}

// TestStreamSummaryApproxDoubleSweepProof drives the other provenRadius
// branch: on a fresh path network the double-sweep bound is tight
// (ceil((n-1)/2) = radius), so the approximate tree is certified without
// ever paying for a full sweep.
func TestStreamSummaryApproxDoubleSweepProof(t *testing.T) {
	for _, n := range []int{7, 9, 15} {
		sum, err := Line(n).GossipStreamSummary(true)
		if err != nil {
			t.Fatal(err)
		}
		if want := (n - 1 + 1) / 2; sum.TreeHeight != want {
			t.Fatalf("Line(%d) approx height = %d, want %d", n, sum.TreeHeight, want)
		}
		if !sum.ExactTree {
			t.Errorf("Line(%d): double-sweep bound proves the midpoint tree exact", n)
		}
		if sum.Rounds != n+sum.TreeHeight {
			t.Errorf("Line(%d) Rounds = %d, want %d", n, sum.Rounds, n+sum.TreeHeight)
		}
	}
}

// TestStreamSummaryDisconnected checks both tree constructions surface the
// disconnection instead of streaming a partial gossip.
func TestStreamSummaryDisconnected(t *testing.T) {
	nw := NewNetwork(4)
	nw.AddLink(0, 1) // 2 and 3 isolated
	for _, approx := range []bool{false, true} {
		if _, err := nw.GossipStreamSummary(approx); err == nil {
			t.Errorf("approx=%v: no error on a disconnected network", approx)
		} else if !strings.Contains(err.Error(), "unreachable") && !strings.Contains(err.Error(), "disconnected") {
			t.Errorf("approx=%v: error %q does not name the disconnection", approx, err)
		}
	}
}
