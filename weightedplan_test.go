package multigossip

import (
	"strings"
	"testing"
)

// TestWeightedPlanRingMixedCounts exercises the full public surface of the
// Section 4 weighted plan on a ring with uneven message counts.
func TestWeightedPlanRingMixedCounts(t *testing.T) {
	nw := Ring(6)
	counts := []int{1, 2, 1, 3, 1, 1}
	plan, err := nw.PlanWeightedGossip(counts)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if plan.TotalMessages() != total {
		t.Errorf("TotalMessages = %d, want %d", plan.TotalMessages(), total)
	}
	// Theorem 1 on the chain expansion: N + R rounds for N messages and
	// expanded radius R >= 1, and contraction can only shorten the schedule.
	if plan.ExpandedRounds() <= total {
		t.Errorf("ExpandedRounds = %d, want > TotalMessages %d", plan.ExpandedRounds(), total)
	}
	if plan.Rounds() < 1 || plan.Rounds() > plan.ExpandedRounds() {
		t.Errorf("Rounds = %d out of [1, ExpandedRounds %d]", plan.Rounds(), plan.ExpandedRounds())
	}
	// Message ownership must reproduce the counts vector exactly.
	perOwner := make([]int, nw.Processors())
	for m := 0; m < total; m++ {
		owner := plan.MessageOwner(m)
		if owner < 0 || owner >= nw.Processors() {
			t.Fatalf("MessageOwner(%d) = %d out of range", m, owner)
		}
		perOwner[owner]++
	}
	for v, c := range counts {
		if perOwner[v] != c {
			t.Errorf("processor %d owns %d messages, want %d", v, perOwner[v], c)
		}
	}
	// The contracted rounds must respect the model shape: one send per
	// sender per round, ring links only, senders distinct from receivers.
	deliveries := 0
	for r := 0; r < plan.Rounds(); r++ {
		sent := map[int]bool{}
		for _, tx := range plan.Round(r) {
			if sent[tx.From] {
				t.Fatalf("round %d: processor %d multicasts twice", r, tx.From)
			}
			sent[tx.From] = true
			if tx.Message < 0 || tx.Message >= total {
				t.Fatalf("round %d: message %d out of range", r, tx.Message)
			}
			for _, d := range tx.To {
				if d == tx.From {
					t.Fatalf("round %d: self-delivery at %d", r, d)
				}
				if !nw.HasLink(tx.From, d) {
					t.Fatalf("round %d: %d->%d is not a ring link", r, tx.From, d)
				}
				deliveries++
			}
		}
	}
	// Every processor must learn every message it does not own: at least
	// sum over v of (total - counts[v]) deliveries.
	minDeliveries := 0
	for _, c := range counts {
		minDeliveries += total - c
	}
	if deliveries < minDeliveries {
		t.Errorf("%d deliveries over all rounds, want >= %d", deliveries, minDeliveries)
	}
}

// TestWeightedPlanUnitCountsMatchesTheorem pins the degenerate case: all
// counts 1 makes the expansion the identity, so the expanded schedule is
// the plain ConcurrentUpDown run at exactly n + r rounds.
func TestWeightedPlanUnitCountsMatchesTheorem(t *testing.T) {
	for _, tc := range []struct {
		name string
		nw   *Network
	}{
		{"ring5", Ring(5)},
		{"line6", Line(6)},
		{"star7", Star(7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.nw.Processors()
			counts := make([]int, n)
			for i := range counts {
				counts[i] = 1
			}
			plan, err := tc.nw.PlanWeightedGossip(counts)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if want := n + tc.nw.Radius(); plan.ExpandedRounds() != want {
				t.Errorf("ExpandedRounds = %d, want n + r = %d", plan.ExpandedRounds(), want)
			}
			if plan.TotalMessages() != n {
				t.Errorf("TotalMessages = %d, want %d", plan.TotalMessages(), n)
			}
			for m := 0; m < n; m++ {
				if plan.MessageOwner(m) == -1 {
					t.Errorf("message %d unowned", m)
				}
			}
		})
	}
}

// TestWeightedPlanErrors checks every input validation of the public entry
// point.
func TestWeightedPlanErrors(t *testing.T) {
	cases := []struct {
		name   string
		nw     *Network
		counts []int
		want   string
	}{
		{"empty network", NewNetwork(0), nil, "empty"},
		{"counts length mismatch", Ring(4), []int{1, 1}, "counts"},
		{"zero count", Ring(4), []int{1, 0, 1, 1}, "count"},
		{"negative count", Ring(4), []int{1, 1, -2, 1}, "count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.nw.PlanWeightedGossip(tc.counts)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
