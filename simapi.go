package multigossip

import (
	"fmt"

	"multigossip/internal/sim"
)

// Distributed simulation: run the online ConcurrentUpDown protocol as n
// compact state machines over a sharded event-loop instead of replaying
// the precomputed schedule. Plan.Simulate drives internal/sim — each
// processor derives every transmission from its O(1) local labels and the
// messages it receives, so the run is a genuine distributed execution
// whose transmissions provably coincide with the offline construction
// (the differential battery in internal/sim and `make sim-smoke` gate
// exactly that). The engine's leaf fan-out folding and packed mailboxes
// take it to a million nodes on one machine; see cmd/simbench.

// LinkLatency assigns each spanning-tree link an integer delay in ticks
// for asynchronous simulation. Implementations must be pure and return
// values in [1, Max()]; the three provided models are deterministic per
// (seed, edge) so async runs reproduce exactly.
type LinkLatency = sim.Latency

// DeterministicLatency is the constant-delay model: every link takes d
// ticks (d < 1 clamps to 1).
func DeterministicLatency(d int) LinkLatency { return sim.Deterministic(d) }

// UniformLatency draws each link's delay uniformly from [1, max], hashed
// from (seed, edge).
func UniformLatency(max int, seed uint64) LinkLatency { return sim.Uniform(max, seed) }

// HeavyTailLatency draws each link's delay from a bounded Pareto(α=1) on
// [1, max]: most links fast, a heavy straggler tail.
func HeavyTailLatency(max int, seed uint64) LinkLatency { return sim.HeavyTail(max, seed) }

// SimReport summarises one simulated execution.
type SimReport struct {
	// CompleteAt is the tick at which the last (processor, message) pair
	// arrived. In synchronous mode this is exactly Plan.Rounds() = n + r,
	// the paper's bound, measured live rather than read off the plan.
	CompleteAt int
	// Deliveries is every point-to-point delivery, n(n-1) in total,
	// including those accounted arithmetically through folding.
	Deliveries int64
	// FoldedDeliveries is the subset of Deliveries absorbed by leaf
	// fan-out folding (0 when folding was off or inapplicable).
	FoldedDeliveries int64
	// Transmissions counts multicasts, the paper's unit of communication
	// cost.
	Transmissions int64
	// Events counts simulator work items (transmissions plus mailbox
	// entries applied) — the denominator of simbench's ns/node-event.
	Events int64
	// Shards is the number of mailbox shards the run used.
	Shards int
	// Async reports which engine ran.
	Async bool
}

type simConfig struct {
	o sim.Options
}

// SimOption configures Plan.Simulate.
type SimOption func(*simConfig)

// WithSimShards sets the number of mailbox shards / workers (default
// GOMAXPROCS, clamped to [1, n]).
func WithSimShards(s int) SimOption { return func(c *simConfig) { c.o.Shards = s } }

// WithSimObserver attaches a RoundObserver to the simulation: BeginRound/
// EndRound per tick, one Delivery per point-to-point delivery (original
// vertex ids, the same conventions as ExecuteTraced), wrapped in a
// "simulate" phase span. Attaching an observer disables leaf fan-out
// folding, since folded deliveries have no per-delivery events.
func WithSimObserver(o RoundObserver) SimOption { return func(c *simConfig) { c.o.Observer = o } }

// WithSimAsync switches to the asynchronous event-driven engine: no round
// barrier, every delivery charged its link's latency under l (nil means
// DeterministicLatency(1)), one transmission per processor per tick.
func WithSimAsync(l LinkLatency) SimOption {
	return func(c *simConfig) {
		c.o.Async = true
		c.o.Latency = l
	}
}

// WithSimMaxRounds caps the simulated ticks (<= 0 keeps the engine
// defaults). The engine fails fast with a stuck-vertex diagnostic on
// livelock regardless of the cap.
func WithSimMaxRounds(m int) SimOption { return func(c *simConfig) { c.o.MaxRounds = m } }

// Simulate executes the plan's gossip protocol as a distributed
// simulation: every processor is a compact state machine acting only on
// its local labels and incoming messages. It requires a ConcurrentUpDown
// plan (Simple has no per-node closed-form program). The synchronous
// engine's transmissions are identical to Plan.Round's schedule; the
// asynchronous engine delivers the same message multiset under per-link
// latencies. Safe for concurrent use on one Plan as long as any observer
// is.
func (p *Plan) Simulate(opts ...SimOption) (SimReport, error) {
	if p.imp == nil {
		return SimReport{}, fmt.Errorf("multigossip: Simulate requires a ConcurrentUpDown plan, not %v", p.algo)
	}
	var cfg simConfig
	for _, o := range opts {
		o(&cfg)
	}
	mode := "sync"
	if cfg.o.Async {
		mode = "async"
	}
	if ob := cfg.o.Observer; ob != nil {
		ob.BeginPhase("simulate", mode)
		defer ob.EndPhase("simulate")
	}
	res, err := sim.Run(p.imp.Topo(), cfg.o)
	if err != nil {
		return SimReport{}, err
	}
	return SimReport{
		CompleteAt:       res.CompleteAt,
		Deliveries:       res.Deliveries,
		FoldedDeliveries: res.Folded,
		Transmissions:    res.Sends,
		Events:           res.Events,
		Shards:           res.Shards,
		Async:            cfg.o.Async,
	}, nil
}
