package multigossip

import (
	"fmt"
	"math/rand"

	"multigossip/internal/baseline"
	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/search"
)

// Model selects the communication model for the schedule searchers.
type Model int

const (
	// MulticastModel is the paper's model (multicast send, single receive).
	MulticastModel Model = iota
	// TelephoneModel restricts every transmission to one destination.
	TelephoneModel
)

func (m Model) internal() search.Model {
	if m == TelephoneModel {
		return search.Telephone
	}
	return search.Multicast
}

// OptimalRounds computes the exact minimum gossip time on a small network
// (at most 16 processors; practical for about 6) by branch and bound,
// deepening up to maxRounds. It returns maxRounds+1 when the optimum
// exceeds the cap. This is how the repository certifies the paper's Fig. 1
// and Fig. 3 optimality claims.
func (nw *Network) OptimalRounds(model Model, maxRounds int) (int, error) {
	opt, _, err := search.Exact(nw.g, model.internal(), maxRounds, 0)
	return opt, err
}

// GreedyRounds searches for a short gossip schedule with a seeded
// randomized greedy (restarts attempts) and returns the best round count
// found — an upper bound on the optimum that matches it on small dense
// networks such as the Petersen graph.
func (nw *Network) GreedyRounds(model Model, seed int64, restarts int) (int, error) {
	s, err := search.Greedy(nw.g, model.internal(), rand.New(rand.NewSource(seed)), restarts)
	if err != nil {
		return 0, err
	}
	if _, err := schedule.CheckGossip(nw.g, s); err != nil {
		return 0, fmt.Errorf("multigossip: greedy produced an invalid schedule: %w", err)
	}
	return s.Time(), nil
}

// HamiltonianCircuit searches for a Hamiltonian circuit (bounded
// backtracking) and returns it in visiting order, or ok=false when none
// was found within the budget.
func (nw *Network) HamiltonianCircuit() (circuit []int, ok bool) {
	return graph.HamiltonianCircuit(nw.g, 0)
}

// PlanRingRotation builds the Fig. 1 rotation schedule along a Hamiltonian
// circuit of the network: n - 1 rounds, which meets the trivial lower
// bound. The circuit must visit every processor once using network links.
func (nw *Network) PlanRingRotation(circuit []int) (*RotationPlan, error) {
	s, err := baseline.RingRotation(nw.g, circuit)
	if err != nil {
		return nil, err
	}
	return &RotationPlan{network: nw.g, sched: s}, nil
}

// RotationPlan is an optimal ring-rotation gossip schedule.
type RotationPlan struct {
	network *graph.Graph
	sched   *schedule.Schedule
}

// Rounds returns the rotation schedule's total communication time (n - 1).
func (p *RotationPlan) Rounds() int { return p.sched.Time() }

// Verify re-validates the schedule and completion.
func (p *RotationPlan) Verify() error {
	_, err := schedule.CheckGossip(p.network, p.sched)
	return err
}

// PlanPetersenTelephone returns the explicit 9-round telephone-model
// gossip schedule on the Petersen graph (PetersenGraph() vertex layout),
// certifying the paper's Fig. 2 claim that the n - 1 bound is attainable
// there even without multicasting. The schedule is optimal: every
// processor receives a new message in every round.
func PlanPetersenTelephone() (*RotationPlan, error) {
	s, err := baseline.PetersenNineRounds()
	if err != nil {
		return nil, err
	}
	return &RotationPlan{network: PetersenGraph().g, sched: s}, nil
}

// PlanOptimalLine builds the provably optimal gossip schedule for the
// straight line with n = 2m+1 processors: n + r - 1 rounds, one better
// than PlanGossip's uniform n + r. It implements the non-uniform
// alternating-subtree protocol the paper's Section 4 sketches (see
// core.BuildLineOptimal for the closed form). The schedule is defined on
// Line(2m+1) vertex numbering.
func PlanOptimalLine(m int) (*RotationPlan, error) {
	s, err := core.BuildLineOptimal(m)
	if err != nil {
		return nil, err
	}
	return &RotationPlan{network: Line(2*m + 1).g, sched: s}, nil
}
