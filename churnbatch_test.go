package multigossip

import (
	"errors"
	"testing"
)

// TestApplyBatchSingleGraftDecision removes two tree edges in one batch and
// requires ONE patch decision: a single PatchGrafted outcome, a single
// increment of the patched counter, and a served plan repaired around both
// losses at once.
func TestApplyBatchSingleGraftDecision(t *testing.T) {
	m := NewMetrics()
	// A generous height factor keeps the quality policy out of the way:
	// this test is about one decision per batch, not graft degradation.
	dp := mustDynamic(t, wheel(16), WithChurnMetrics(m), WithPatchVerify(), WithHeightFactor(8))
	tree, _ := dp.Plan().treeLabeled()
	var lost [][2]int
	for _, e := range dp.Plan().network.Edges() {
		if tree.Parent[e.U] == e.V || tree.Parent[e.V] == e.U {
			lost = append(lost, [2]int{e.U, e.V})
			if len(lost) == 2 {
				break
			}
		}
	}
	if len(lost) != 2 {
		t.Fatal("wheel plan has fewer than two tree edges?")
	}

	outcome, results, err := dp.Apply([]Mutation{
		{Remove: true, U: lost[0][0], V: lost[0][1]},
		{Remove: true, U: lost[1][0], V: lost[1][1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != PatchGrafted {
		t.Fatalf("batch outcome = %v, want grafted", outcome)
	}
	for i, r := range results {
		if !r.Changed || r.Err != nil {
			t.Fatalf("result %d = %+v, want applied cleanly", i, r)
		}
	}
	p := dp.Plan()
	for _, e := range lost {
		if p.network.HasEdge(e[0], e[1]) {
			t.Errorf("snapshot still has removed link %v", e)
		}
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("batched graft failed verification: %v", err)
	}
	snap := m.Snapshot()
	if got := snap.Counters["churn_patched_total"]; got != 1 {
		t.Errorf("churn_patched_total = %d after one batch, want 1 (one decision, not one per mutation)", got)
	}
}

// TestApplyBatchRemoveReAdd flaps a tree edge inside one batch: the final
// topology is identical to the starting one, so the plan must be reused
// verbatim — no graft, no rebuild, same compact core.
func TestApplyBatchRemoveReAdd(t *testing.T) {
	dp := mustDynamic(t, Ring(16))
	before := dp.Plan()
	tree, _ := before.treeLabeled()
	var u, v int = -1, -1
	for _, e := range before.network.Edges() {
		if tree.Parent[e.U] == e.V || tree.Parent[e.V] == e.U {
			u, v = e.U, e.V
			break
		}
	}
	outcome, results, err := dp.Apply([]Mutation{
		{Remove: true, U: u, V: v},
		{U: u, V: v},
	})
	if err != nil || outcome != PatchReused {
		t.Fatalf("remove+re-add batch = %v, %v; want reused", outcome, err)
	}
	if !results[0].Changed || !results[1].Changed {
		t.Fatalf("results %+v, want both applied", results)
	}
	if dp.Plan().imp != before.imp {
		t.Error("a net no-op batch rebuilt the compact plan")
	}
	if err := dp.Plan().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchMixedAddsAndNonTreeRemovals applies adds plus a non-tree
// removal: nothing the schedule uses changes, so one reuse covers the lot.
func TestApplyBatchMixedAddsAndNonTreeRemovals(t *testing.T) {
	nw := Ring(16)
	nw.AddLink(3, 11)
	dp := mustDynamic(t, nw)
	tree, _ := dp.Plan().treeLabeled()
	var nu, nv int = -1, -1
	for _, e := range dp.Plan().network.Edges() {
		if tree.Parent[e.U] != e.V && tree.Parent[e.V] != e.U {
			nu, nv = e.U, e.V
			break
		}
	}
	if nu < 0 {
		t.Fatal("no non-tree link")
	}
	before := dp.Plan()
	outcome, results, err := dp.Apply([]Mutation{
		{U: 1, V: 9},
		{U: 2, V: 14},
		{Remove: true, U: nu, V: nv},
	})
	if err != nil || outcome != PatchReused {
		t.Fatalf("batch = %v, %v; want reused", outcome, err)
	}
	for i, r := range results {
		if !r.Changed {
			t.Fatalf("result %d not applied: %+v", i, r)
		}
	}
	if dp.Plan().imp != before.imp {
		t.Error("reuse batch rebuilt the compact plan")
	}
	if p := dp.Plan(); !p.network.HasEdge(1, 9) || !p.network.HasEdge(2, 14) || p.network.HasEdge(nu, nv) {
		t.Error("rebound snapshot does not reflect the batch")
	}
}

// TestApplyBatchRefusalIsPerMutation puts a disconnecting removal in the
// middle of a batch: that one mutation reports its error, the others apply,
// and the batch still resolves to one valid plan decision.
func TestApplyBatchRefusalIsPerMutation(t *testing.T) {
	dp := mustDynamic(t, Line(8)) // every link is a bridge
	outcome, results, err := dp.Apply([]Mutation{
		{U: 0, V: 7},              // close the line into a ring
		{Remove: true, U: 3, V: 4} /* now removable */, {Remove: true, U: 4, V: 5}, // would re-disconnect
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Changed || results[0].Err != nil {
		t.Fatalf("add result %+v", results[0])
	}
	if !results[1].Changed || results[1].Err != nil {
		t.Fatalf("first removal result %+v, want applied (ring tolerates one cut)", results[1])
	}
	if results[2].Changed || !errors.Is(results[2].Err, ErrDisconnected) {
		t.Fatalf("second removal result %+v, want refused with ErrDisconnected", results[2])
	}
	if outcome == PatchUnchanged {
		t.Fatalf("outcome = %v; applied mutations must produce a plan transition", outcome)
	}
	if err := dp.Plan().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchNoopsAndEmpty pins the do-nothing paths.
func TestApplyBatchNoopsAndEmpty(t *testing.T) {
	dp := mustDynamic(t, Ring(8))
	before := dp.Plan()

	outcome, results, err := dp.Apply(nil)
	if err != nil || outcome != PatchUnchanged || len(results) != 0 {
		t.Fatalf("empty batch = %v, %v, %d results", outcome, err, len(results))
	}

	outcome, results, err = dp.Apply([]Mutation{
		{U: 0, V: 1},               // duplicate add
		{Remove: true, U: 2, V: 6}, // absent link
	})
	if err != nil || outcome != PatchUnchanged {
		t.Fatalf("all-no-op batch = %v, %v; want unchanged", outcome, err)
	}
	if results[0].Changed || results[1].Changed {
		t.Fatalf("no-op mutations reported Changed: %+v", results)
	}
	if dp.Plan() != before {
		t.Error("a no-op batch replaced the served plan")
	}
}
