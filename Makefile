# Development targets. `make check` is the PR gate: vet, build, the full
# test suite under the race detector (the sweep engine runs a worker pool on
# every MinDepth/Radius/Diameter call, so every PR must exercise it under
# -race), a one-iteration sweep benchmark smoke, and a small faultbench run
# proving the fault-injection / repair pipeline end to end.

GO ?= go

.PHONY: check vet staticcheck build test race cover bench-smoke fault-smoke fuzz-smoke bench sweep-record fault-record obs-record experiments

check: vet staticcheck build race cover bench-smoke fault-smoke fuzz-smoke

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skipped gracefully where the binary is not
# installed (CI installs it; see .github/workflows/ci.yml).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Atomic-mode coverage over the library packages (cmd/ mains and examples/
# are exercised by the smokes, not unit tests) with a floor at the recorded
# baseline. Raise COVER_MIN when coverage rises; never lower it.
COVER_MIN ?= 91.9
COVER_PKGS = $(shell $(GO) list ./... | grep -v '/cmd/' | grep -v '/examples/')

cover:
	$(GO) test -covermode=atomic -coverprofile=cover.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit !(t+0 >= min+0) }' || \
		{ echo "coverage $$total% fell below the $(COVER_MIN)% baseline"; exit 1; }

# One iteration of every Sweep* benchmark: proves the naive and pruned paths
# still run and agree without paying full measurement time.
bench-smoke:
	$(GO) test -run='^$$' -bench=Sweep -benchtime=1x . ./internal/graph

# Small end-to-end run of the self-healing pipeline: inject loss, repair,
# and require the record machinery to work, without paying full bench time.
fault-smoke:
	$(GO) run ./cmd/faultbench -sizes 64 -rates 0.01 -trials 1 -out /dev/null

# Ten seconds of coverage-guided fuzzing of the repair planner's
# model-safety invariant: every emitted schedule must replay cleanly under
# schedule.Run from the hold-state it was planned for.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPlanRounds -fuzztime=10s ./internal/repair

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Regenerate the BENCH_sweep.json perf record (naive vs pruned sweep across
# ring/grid/random at n in {256, 1024, 4096}).
sweep-record:
	$(GO) run ./cmd/sweepbench -out BENCH_sweep.json

# Regenerate the BENCH_fault.json robustness record (coverage vs loss rate
# and repair overhead across ring/grid/random at n in {256, 1024}).
fault-record:
	$(GO) run ./cmd/faultbench -out BENCH_fault.json

# Regenerate the BENCH_obs.json observability-overhead record (untraced vs
# nil-observer vs sink-attached execution on a ring at n = 1024).
obs-record:
	$(GO) run ./cmd/obsbench -out BENCH_obs.json

experiments:
	$(GO) run ./cmd/experiments
