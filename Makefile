# Development targets. `make check` is the PR gate: vet, build, the full
# test suite under the race detector (the sweep engine runs a worker pool on
# every MinDepth/Radius/Diameter call, so every PR must exercise it under
# -race), a one-iteration sweep benchmark smoke, and a small faultbench run
# proving the fault-injection / repair pipeline end to end.

GO ?= go

.PHONY: check vet build test race bench-smoke fault-smoke bench sweep-record fault-record experiments

check: vet build race bench-smoke fault-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every Sweep* benchmark: proves the naive and pruned paths
# still run and agree without paying full measurement time.
bench-smoke:
	$(GO) test -run='^$$' -bench=Sweep -benchtime=1x . ./internal/graph

# Small end-to-end run of the self-healing pipeline: inject loss, repair,
# and require the record machinery to work, without paying full bench time.
fault-smoke:
	$(GO) run ./cmd/faultbench -sizes 64 -rates 0.01 -trials 1 -out /dev/null

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Regenerate the BENCH_sweep.json perf record (naive vs pruned sweep across
# ring/grid/random at n in {256, 1024, 4096}).
sweep-record:
	$(GO) run ./cmd/sweepbench -out BENCH_sweep.json

# Regenerate the BENCH_fault.json robustness record (coverage vs loss rate
# and repair overhead across ring/grid/random at n in {256, 1024}).
fault-record:
	$(GO) run ./cmd/faultbench -out BENCH_fault.json

experiments:
	$(GO) run ./cmd/experiments
