# Development targets. `make check` is the PR gate: vet, build, the full
# test suite under the race detector (the sweep engine runs a worker pool on
# every MinDepth/Radius/Diameter call, so every PR must exercise it under
# -race), a one-iteration sweep benchmark smoke, and a small faultbench run
# proving the fault-injection / repair pipeline end to end.

GO ?= go

.PHONY: check vet staticcheck build test race cover bench-smoke fault-smoke fuzz-smoke serve-smoke plan-smoke churn-smoke store-smoke sim-smoke matrix-smoke bench sweep-record fault-record obs-record serve-record plan-record churn-record store-record sim-record matrix-record experiments

check: vet staticcheck build race cover bench-smoke fault-smoke fuzz-smoke serve-smoke plan-smoke churn-smoke store-smoke sim-smoke matrix-smoke

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skipped gracefully where the binary is not
# installed (CI installs it; see .github/workflows/ci.yml).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Atomic-mode coverage over the library packages (cmd/ mains and examples/
# are exercised by the smokes, not unit tests) with a floor at the recorded
# baseline. Raise COVER_MIN when coverage rises; never lower it.
COVER_MIN ?= 92.1
COVER_PKGS = $(shell $(GO) list ./... | grep -v '/cmd/' | grep -v '/examples/')

cover:
	$(GO) test -covermode=atomic -coverprofile=cover.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit !(t+0 >= min+0) }' || \
		{ echo "coverage $$total% fell below the $(COVER_MIN)% baseline"; exit 1; }

# One iteration of every Sweep* benchmark: proves the naive and pruned paths
# still run and agree without paying full measurement time.
bench-smoke:
	$(GO) test -run='^$$' -bench=Sweep -benchtime=1x . ./internal/graph

# Small end-to-end run of the self-healing pipeline: inject loss, repair,
# and require the record machinery to work, without paying full bench time.
fault-smoke:
	$(GO) run ./cmd/faultbench -sizes 64 -rates 0.01 -trials 1 -out /dev/null

# Serving-layer smoke: boot gossipd, drive it for two seconds with an
# open-loop loadgen burst that asserts a non-zero cache hit rate, exact
# hit/miss/coalesced reconciliation between its request log and the
# server's /metrics counters, and a 422 (not a crash) on the
# disconnected-network probe — then SIGTERM the server and require a clean
# drain (exit 0).
SERVE_ADDR ?= 127.0.0.1:18473

serve-smoke:
	@mkdir -p bin
	$(GO) build -o bin/gossipd ./cmd/gossipd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	@set -e; \
	./bin/gossipd -addr $(SERVE_ADDR) -workers 4 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	./bin/loadgen -url http://$(SERVE_ADDR) -duration 2s -rate 100 -n 128 -cold-keys 8 -assert -out /dev/null; \
	kill -TERM $$pid; \
	wait $$pid; \
	echo "serve-smoke: clean drain"

# Ten seconds each of coverage-guided fuzzing: the repair planner's
# model-safety invariant (every emitted schedule must replay cleanly under
# schedule.Run from the hold-state it was planned for), the implicit plan's
# equivalence invariant (closed-form rounds and timetables must be
# bit-identical to the materialising builder on random connected graphs),
# the plan codec's no-panic invariant (arbitrary bytes — the store's
# threat model after disk corruption — must decode to a valid plan or a
# clean error, never a crash), and the async simulator's invariants on
# fuzzer-chosen trees and seeded latency models (no panic, no double
# receive, full coverage, bounded completion).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPlanRounds -fuzztime=10s ./internal/repair
	$(GO) test -run='^$$' -fuzz=FuzzImplicitRound -fuzztime=10s ./internal/implicit
	$(GO) test -run='^$$' -fuzz=FuzzPlanDecode -fuzztime=10s ./internal/implicit
	$(GO) test -run='^$$' -fuzz=FuzzSimAsync -fuzztime=10s ./internal/sim

# Store gate: the crash-safety unit tests (torn/truncated/bit-flipped
# entries quarantined, warm start bit-identical, degraded-store serving),
# then a short end-to-end run of the replicated store benchmark: spawn two
# replicas over real store directories, build a key set, SIGKILL everything,
# require a zero-rebuild warm start from disk, and kill/resurrect one
# replica under open-loop load requiring >= 99.9% client success with
# bounded retries.
store-smoke:
	@mkdir -p bin
	$(GO) test ./internal/planstore
	$(GO) test -run 'Store|Tier2|Codec' ./internal/plancache ./internal/implicit .
	$(GO) build -o bin/gossipd ./cmd/gossipd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	./bin/loadgen -gossipd bin/gossipd -replicas 2 -cold-keys 12 -n 256 \
		-rate 100 -failover-duration 4s -retries 5 -assert -store-out /dev/null

# Churn gate: seeded add/remove flaps on a ring and a random graph at
# n = 1024 driven through the DynamicPlanner with WithPatchVerify, so every
# grafted or rebuilt plan is certified by the full Plan.Verify replay and
# the final plan executes to full coverage. The test also asserts that
# structural patches actually occurred (a run that only reused plans proves
# nothing about grafting).
churn-smoke:
	$(GO) test -run='^TestChurnSmoke$$' .

# Differential gate for the implicit plan encoding: every round of a seeded
# random n = 4096 plan compared bit-for-bit against the materialised
# builder, the >=100x byte-ratio acceptance floor, and an n = 10^5 implicit
# construction — all under GOMEMLIMIT so a space regression in either
# encoding fails loudly.
plan-smoke:
	GOMEMLIMIT=1GiB $(GO) run ./cmd/planbench -smoke

# Differential gate for the sharded event-loop simulator: a seeded random
# n = 4096 simulation streamed round-by-round through a sink and held
# bit-identical to the plan's closed-form schedule (O(n) memory, no
# materialisation), then async runs under deterministic, uniform and
# heavy-tail latency models asserting full coverage within the
# n + 2r + maxLatency*height completion bound.
sim-smoke:
	$(GO) run ./cmd/simbench -smoke

# Portfolio gate: every registered algorithm × {ring, grid, random} ×
# {fault-free, 10% link loss} at small sizes, each cell asserted against
# the algorithm's registered rounds bound (fault-free cells re-verify
# under the model; lossy cells must heal to completion).
matrix-smoke:
	$(GO) run ./cmd/matrixbench -smoke

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Regenerate the BENCH_sweep.json perf record (naive vs pruned sweep across
# ring/grid/random at n in {256, 1024, 4096}).
sweep-record:
	$(GO) run ./cmd/sweepbench -out BENCH_sweep.json

# Regenerate the BENCH_fault.json robustness record (coverage vs loss rate
# and repair overhead across ring/grid/random at n in {256, 1024}).
fault-record:
	$(GO) run ./cmd/faultbench -out BENCH_fault.json

# Regenerate the BENCH_obs.json observability-overhead record (untraced vs
# nil-observer vs sink-attached execution on a ring at n = 1024).
obs-record:
	$(GO) run ./cmd/obsbench -out BENCH_obs.json

# Regenerate the BENCH_serve.json serving record: a 20-second open-loop
# run at n = 1024 with a 96/4 hot/cold key mix against a deliberately
# small cache (8 plans / 256 MiB) so evictions appear in the record, and a
# 10x hot-over-cold p50 floor asserted. The rate is sized so cold
# constructions (~0.3-1 s each at n = 1024) keep offered CPU load below
# one core — an overloaded server measures its queue, not its cache.
serve-record:
	@mkdir -p bin
	$(GO) build -o bin/gossipd ./cmd/gossipd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	@set -e; \
	./bin/gossipd -addr $(SERVE_ADDR) -workers 4 -queue 128 -cache-entries 8 -cache-bytes 268435456 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	./bin/loadgen -url http://$(SERVE_ADDR) -duration 20s -rate 30 -hot 0.96 -n 1024 -cold-keys 48 -assert -min-speedup 10 -out BENCH_serve.json; \
	kill -TERM $$pid; \
	wait $$pid

# Regenerate the BENCH_store.json resilience record: a two-replica cluster
# over real store directories — cold construction cost vs warm-start-from-
# disk cost after SIGKILLing the whole fleet, then a 30-second open-loop
# failover run (kill one replica at T/3, resurrect it at 2T/3) with bounded
# jittered retries and the 99.9% success floor asserted.
store-record:
	@mkdir -p bin
	$(GO) build -o bin/gossipd ./cmd/gossipd
	$(GO) build -o bin/loadgen ./cmd/loadgen
	./bin/loadgen -gossipd bin/gossipd -replicas 2 -cold-keys 32 -n 512 \
		-rate 100 -failover-duration 30s -retries 5 -assert -store-out BENCH_store.json

# Regenerate the BENCH_plan.json plan-encoding record: implicit O(n) plans
# vs materialised O(n²) schedules (bytes, construction time, first-round
# latency) at n in {1024, 4096}, plus implicit-only construction runs at
# n in {10^5, 10^6}. The full ring/grid materialisations take minutes.
plan-record:
	$(GO) run ./cmd/planbench -out BENCH_plan.json

# Regenerate the BENCH_churn.json churn record: patch turnaround vs cold
# rebuild on ring/random at n in {1024, 4096} with the 10x floor asserted
# on the largest random case, plus the deterministic flap-hysteresis trace
# (suppressed within the window, rebuilt outside it).
churn-record:
	$(GO) run ./cmd/churnbench -out BENCH_churn.json

# Regenerate the BENCH_sim.json simulator record: million-node sync runs
# (star and 1000-ary tree, leaf fan-out folding), exact fold-off runs at
# n in {16384, 32768} where every point delivery is simulated, and async
# event-driven runs under a uniform latency model.
sim-record:
	$(GO) run ./cmd/simbench -out BENCH_sim.json

# Regenerate the BENCH_matrix.json scenario-matrix record: the full
# portfolio (6 algorithms) × ring/grid/random × fault-free/lossy at
# n in {16, 36, 64}, every cell asserted within its registered bound.
matrix-record:
	$(GO) run ./cmd/matrixbench -out BENCH_matrix.json

experiments:
	$(GO) run ./cmd/experiments
