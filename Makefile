# Development targets. `make check` is the PR gate: vet, build, the full
# test suite under the race detector (the sweep engine runs a worker pool on
# every MinDepth/Radius/Diameter call, so every PR must exercise it under
# -race), and a one-iteration sweep benchmark smoke.

GO ?= go

.PHONY: check vet build test race bench-smoke bench sweep-record experiments

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every Sweep* benchmark: proves the naive and pruned paths
# still run and agree without paying full measurement time.
bench-smoke:
	$(GO) test -run='^$$' -bench=Sweep -benchtime=1x . ./internal/graph

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# Regenerate the BENCH_sweep.json perf record (naive vs pruned sweep across
# ring/grid/random at n in {256, 1024, 4096}).
sweep-record:
	$(GO) run ./cmd/sweepbench -out BENCH_sweep.json

experiments:
	$(GO) run ./cmd/experiments
