package multigossip

import (
	"errors"
	"fmt"

	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/obs"
	"multigossip/internal/repair"
	"multigossip/internal/schedule"
	"multigossip/internal/trace"
	"multigossip/internal/weighted"
)

// WeightedPlan is a schedule for the weighted gossiping problem of
// Section 4: processor v starts with counts[v] >= 1 messages and every
// message must reach every processor. Like Plan it is immutable and safe
// to share between goroutines.
type WeightedPlan struct {
	network *graph.Graph // private topology snapshot
	plan    *weighted.Plan
}

// PlanWeightedGossip solves weighted gossiping by the paper's chain
// splitting: each processor with l messages is expanded into a chain of l
// virtual processors, ConcurrentUpDown runs on the expansion, and the
// schedule is contracted back (the splitting is "mimicked"). The expanded
// schedule takes exactly N + R rounds for N total messages and expanded
// radius R (Theorem 1 on the expansion). Like PlanGossip it plans against
// a private snapshot of the topology, so it is safe to run concurrently
// with link churn.
func (nw *Network) PlanWeightedGossip(counts []int) (*WeightedPlan, error) {
	g := nw.snapshotGraph()
	p, err := weighted.Gossip(g, counts)
	if err != nil {
		if errors.Is(err, graph.ErrDisconnected) {
			return nil, ErrDisconnected
		}
		return nil, err
	}
	return &WeightedPlan{network: g, plan: p}, nil
}

// Rounds returns the contracted schedule's total communication time.
func (p *WeightedPlan) Rounds() int { return p.plan.Schedule.Time() }

// TotalMessages returns the number of messages across all processors.
func (p *WeightedPlan) TotalMessages() int { return p.plan.TotalMessages }

// ExpandedRounds returns the chain-expanded schedule's total time, which is
// exactly TotalMessages + ExpandedRadius by Theorem 1.
func (p *WeightedPlan) ExpandedRounds() int { return p.plan.Expanded.Time() }

// ExpandedRadius returns the radius of the chain-expanded network.
func (p *WeightedPlan) ExpandedRadius() int { return p.plan.ExpandedRadius }

// MessageOwner returns the processor at which message m originates, or -1
// for a message id outside [0, TotalMessages).
func (p *WeightedPlan) MessageOwner(m int) int {
	if m < 0 || m >= len(p.plan.MsgOwner) {
		return -1
	}
	return p.plan.MsgOwner[m]
}

// Round returns the transmissions of round t of the contracted schedule.
// Out-of-range rounds — negative or past the end — return nil, matching
// Plan.Round. (An earlier version indexed the schedule unchecked and
// panicked on both.)
func (p *WeightedPlan) Round(t int) []Transmission {
	return p.RoundAppend(t, nil)
}

// RoundAppend appends the transmissions of round t to dst and returns the
// extended slice — the allocation-free counterpart of Round, with the same
// scratch-reuse contract as Plan.RoundAppend. Out-of-range rounds append
// nothing.
func (p *WeightedPlan) RoundAppend(t int, dst []Transmission) []Transmission {
	if t < 0 || t >= len(p.plan.Schedule.Rounds) {
		return dst
	}
	for _, tx := range p.plan.Schedule.Rounds[t] {
		dst = appendTransmission(dst, tx.Msg, tx.From, tx.To)
	}
	return dst
}

// TimetableOf renders processor v's rows of the contracted schedule. The
// contraction has no per-vertex tree role (chain-internal hops are
// mimicked away), so the flat send/receive view is used.
func (p *WeightedPlan) TimetableOf(v int) string {
	return trace.FormatTimetable(schedule.FlatView(p.plan.Schedule, v))
}

// Verify re-validates the contracted schedule under the model with the
// weighted initial hold sets and checks completion.
func (p *WeightedPlan) Verify() error {
	res, err := schedule.Run(p.network, p.plan.Schedule, schedule.Options{Initial: p.plan.InitialHolds()})
	if err != nil {
		return err
	}
	for v, h := range res.Holds {
		if !h.Full() {
			return fmt.Errorf("multigossip: processor %d is missing %d messages", v, len(h.Missing()))
		}
	}
	return nil
}

// SizeBytes reports the plan's resident size — the plancache.Sizer
// contract for the weighted cache tier. Both the contracted and the
// expanded schedule are charged; weighted plans are always materialised.
func (p *WeightedPlan) SizeBytes() int64 {
	const word = 8
	b := int64(p.network.N())*2*word + int64(p.network.M())*2*word
	for _, s := range []*schedule.Schedule{p.plan.Schedule, p.plan.Expanded} {
		b += int64(len(s.Rounds)) * 3 * word
		for _, r := range s.Rounds {
			b += int64(len(r)) * 5 * word
			for _, tx := range r {
				b += int64(len(tx.To)) * word
			}
		}
	}
	b += int64(len(p.plan.MsgOwner)) * word
	return b
}

// ExecuteWithFaults replays the weighted plan under injected faults with
// full fault propagation, then runs the same self-healing loop as
// Plan.ExecuteWithFaults: compute which processors miss which messages,
// synthesize model-valid repair rounds, execute them under the same fault
// model, and iterate within the repair budget. The repair engine is
// message-count agnostic, so the weighted instance (NMsg > N, weighted
// initial holds) reuses it unchanged; coverage fractions are over
// Processors() x TotalMessages() pairs.
func (p *WeightedPlan) ExecuteWithFaults(opts ...FaultOption) (FaultReport, error) {
	cfg := faultConfig{repair: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.validation != nil {
		return FaultReport{}, cfg.validation
	}
	var inj fault.Injector
	if len(cfg.injectors) > 0 {
		inj = cfg.injectors
	}
	s := p.plan.Schedule
	for _, c := range cfg.injectors {
		switch f := c.(type) {
		case fault.CrashWindow:
			if f.Proc >= s.N {
				return FaultReport{}, fmt.Errorf("multigossip: crash processor %d out of range [0,%d)", f.Proc, s.N)
			}
		case fault.DeadLink:
			if f.U >= s.N || f.V >= s.N {
				return FaultReport{}, fmt.Errorf("multigossip: dead link (%d, %d) out of range [0,%d)", f.U, f.V, s.N)
			}
			if !p.network.HasEdge(f.U, f.V) {
				return FaultReport{}, fmt.Errorf("multigossip: dead link (%d, %d) is not a network link", f.U, f.V)
			}
		}
	}
	n := p.network.N()
	progress := obs.NewProgressCollector(n, n*p.plan.TotalMessages)
	ro := obs.Multi(cfg.observer, progress)
	ro.BeginPhase("schedule", "Weighted")
	holds, dropped, err := fault.ExecuteTraced(p.network, s, inj, p.plan.InitialHolds(), 0, nil, ro)
	ro.EndPhase("schedule")
	if err != nil {
		return FaultReport{}, err
	}
	rep := FaultReport{
		Coverage:       fault.Coverage(holds),
		ScheduleRounds: s.Time(),
		Dropped:        dropped,
	}
	if !cfg.repair {
		rep.FinalCoverage = rep.Coverage
		rep.ReachableCoverage = rep.Coverage
		rep.TotalRounds = rep.ScheduleRounds
		rep.Complete = repair.MissingPairs(holds) == 0
		rep.ProgressCurve = progress.Curve()
		return rep, nil
	}
	ro.BeginPhase("repair", "")
	out, err := repair.Run(p.network, holds, repair.Options{
		MaxIterations:       cfg.maxIters,
		Injector:            inj,
		RoundOffset:         s.Time(),
		Validate:            true,
		QuarantineThreshold: cfg.quarantine,
		Observer:            ro,
	})
	ro.EndPhase("repair")
	if err != nil {
		return FaultReport{}, err
	}
	rep.Dropped += out.Dropped
	rep.Repaired = out.Repaired
	rep.RepairRounds = out.Rounds
	rep.RepairIterations = out.Iterations
	rep.TotalRounds = rep.ScheduleRounds + out.Rounds
	rep.FinalCoverage = fault.Coverage(out.Holds)
	rep.Complete = out.Complete
	rep.ReachableCoverage = out.ReachableCoverage
	for _, pr := range out.Unreachable {
		rep.Unreachable = append(rep.Unreachable, Pair{Processor: pr.Processor, Message: pr.Message})
	}
	for _, e := range out.QuarantinedLinks {
		rep.QuarantinedLinks = append(rep.QuarantinedLinks, Link{U: e.U, V: e.V})
	}
	rep.DownProcessors = out.DownProcessors
	rep.Components = out.Components
	rep.Stalled = out.Stalled
	rep.ProgressCurve = progress.Curve()
	return rep, nil
}
