package multigossip

import (
	"fmt"

	"multigossip/internal/schedule"
	"multigossip/internal/weighted"
)

// WeightedPlan is a schedule for the weighted gossiping problem of
// Section 4: processor v starts with counts[v] >= 1 messages and every
// message must reach every processor.
type WeightedPlan struct {
	network *Network
	plan    *weighted.Plan
}

// PlanWeightedGossip solves weighted gossiping by the paper's chain
// splitting: each processor with l messages is expanded into a chain of l
// virtual processors, ConcurrentUpDown runs on the expansion, and the
// schedule is contracted back (the splitting is "mimicked"). The expanded
// schedule takes exactly N + R rounds for N total messages and expanded
// radius R.
func (nw *Network) PlanWeightedGossip(counts []int) (*WeightedPlan, error) {
	p, err := weighted.Gossip(nw.g, counts)
	if err != nil {
		return nil, err
	}
	return &WeightedPlan{network: nw, plan: p}, nil
}

// Rounds returns the contracted schedule's total communication time.
func (p *WeightedPlan) Rounds() int { return p.plan.Schedule.Time() }

// TotalMessages returns the number of messages across all processors.
func (p *WeightedPlan) TotalMessages() int { return p.plan.TotalMessages }

// ExpandedRounds returns the chain-expanded schedule's total time, which is
// exactly TotalMessages + expanded radius by Theorem 1.
func (p *WeightedPlan) ExpandedRounds() int { return p.plan.Expanded.Time() }

// MessageOwner returns the processor at which message m originates.
func (p *WeightedPlan) MessageOwner(m int) int { return p.plan.MsgOwner[m] }

// Round returns the transmissions of round t of the contracted schedule.
func (p *WeightedPlan) Round(t int) []Transmission {
	round := p.plan.Schedule.Rounds[t]
	out := make([]Transmission, len(round))
	for i, tx := range round {
		out[i] = Transmission{Message: tx.Msg, From: tx.From, To: append([]int(nil), tx.To...)}
	}
	return out
}

// Verify re-validates the contracted schedule under the model with the
// weighted initial hold sets and checks completion.
func (p *WeightedPlan) Verify() error {
	res, err := schedule.Run(p.network.g, p.plan.Schedule, schedule.Options{Initial: p.plan.InitialHolds()})
	if err != nil {
		return err
	}
	for v, h := range res.Holds {
		if !h.Full() {
			return fmt.Errorf("multigossip: processor %d is missing %d messages", v, len(h.Missing()))
		}
	}
	return nil
}
