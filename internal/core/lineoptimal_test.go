package core

import (
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// TestLineOptimalMeetsLowerBound machine-verifies the Section 4 claim that
// a non-uniform protocol saves one round on the line: for every m up to 60
// the alternating schedule is valid, complete, waste-free and takes exactly
// n + r - 1 = 3m rounds — the paper's own lower bound, so each schedule is
// certified optimal without any search.
func TestLineOptimalMeetsLowerBound(t *testing.T) {
	for m := 1; m <= 60; m++ {
		n := 2*m + 1
		s, err := BuildLineOptimal(m)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.Path(n)
		res, err := schedule.Run(g, s, schedule.Options{RequireUseful: true})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for p, h := range res.Holds {
			if !h.Full() {
				t.Fatalf("m=%d: processor %d missing %v", m, p, h.Missing())
			}
		}
		if s.Time() != LineOptimalTime(m) {
			t.Fatalf("m=%d: time %d, want %d", m, s.Time(), 3*m)
		}
		if s.Time() != n+m-1 {
			t.Fatalf("m=%d: closed form disagrees with n+r-1", m)
		}
	}
}

// TestLineOptimalBeatsCUDByOne: the non-uniform schedule is exactly one
// round shorter than ConcurrentUpDown on every odd line.
func TestLineOptimalBeatsCUDByOne(t *testing.T) {
	for _, m := range []int{1, 3, 7, 20} {
		n := 2*m + 1
		opt, err := BuildLineOptimal(m)
		if err != nil {
			t.Fatal(err)
		}
		cud, err := Gossip(graph.Path(n), ConcurrentUpDown)
		if err != nil {
			t.Fatal(err)
		}
		if cud.Schedule.Time()-opt.Time() != 1 {
			t.Fatalf("m=%d: CUD %d vs optimal %d, want gap 1", m, cud.Schedule.Time(), opt.Time())
		}
	}
}

func TestLineOptimalRejectsBadM(t *testing.T) {
	if _, err := BuildLineOptimal(0); err == nil {
		t.Fatal("accepted m = 0")
	}
	if _, err := BuildLineOptimal(-3); err == nil {
		t.Fatal("accepted negative m")
	}
}

// TestLineOptimalNonUniform documents the asymmetry the paper predicts:
// the left and right chains run different protocols (the right chain
// pushes its own message down at time 0; the left chain trails its own
// messages after the opposite stream).
func TestLineOptimalNonUniform(t *testing.T) {
	m := 4
	s, err := BuildLineOptimal(m)
	if err != nil {
		t.Fatal(err)
	}
	// b_1 = m+1 sends its own message toward b_2 at time 0.
	foundRight := false
	for _, tx := range s.Rounds[0] {
		if tx.From == m+1 && tx.Msg == m+1 && tx.To[0] == m+2 {
			foundRight = true
		}
	}
	if !foundRight {
		t.Fatal("right chain does not lead with its own message at time 0")
	}
	// a_1 = m-1 sends its own message toward a_2 only at time 2m.
	for t0, round := range s.Rounds {
		for _, tx := range round {
			if tx.From == m-1 && tx.Msg == m-1 && tx.To[0] == m-2 {
				if t0 != 2*m {
					t.Fatalf("left chain sends its own message down at %d, want %d", t0, 2*m)
				}
				return
			}
		}
	}
	t.Fatal("left chain never sends its own message down")
}
