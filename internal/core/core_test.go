package core

import (
	"math/rand"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// buildLabeled roots g (a tree as an undirected graph) at root and labels it.
func buildLabeled(t *testing.T, g *graph.Graph, root int) *spantree.Labeled {
	t.Helper()
	tr, err := spantree.BFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	return spantree.Label(tr)
}

func fig5Labeled(t *testing.T) *spantree.Labeled {
	t.Helper()
	return spantree.Label(spantree.MustFromParents(graph.Fig5TreeParents()))
}

func TestCUDFig5TotalTime(t *testing.T) {
	l := fig5Labeled(t)
	s := BuildConcurrentUpDown(l)
	if want := 16 + 3; s.Time() != want {
		t.Fatalf("Time = %d, want %d", s.Time(), want)
	}
	res, err := schedule.CheckGossip(l.T.Graph(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.WastedDeliveries != 0 {
		t.Fatalf("ConcurrentUpDown wasted %d deliveries", res.WastedDeliveries)
	}
}

// timetable compares one row of a vertex timetable against expected
// (time, message) pairs, requiring every other slot to be empty.
func checkRow(t *testing.T, name string, got []int, want map[int]int) {
	t.Helper()
	for time, msg := range got {
		w, ok := want[time]
		if !ok {
			w = schedule.NoMessage
		}
		if msg != w {
			t.Errorf("%s[t=%d] = %d, want %d", name, time, msg, w)
		}
	}
}

// seq fills want[t0+d] = m0+d for d = 0..count-1.
func seq(want map[int]int, t0, m0, count int) map[int]int {
	if want == nil {
		want = map[int]int{}
	}
	for d := 0; d < count; d++ {
		want[t0+d] = m0 + d
	}
	return want
}

// TestCUDTable1 reproduces the paper's Table 1: the schedule of the root
// (message 0) in Fig. 5. The root receives messages 1..15 from its children
// at times 1..15 and multicasts message m to the children lacking it at
// time m, finishing with its own message 0 at time 16 = n.
func TestCUDTable1(t *testing.T) {
	l := fig5Labeled(t)
	s := BuildConcurrentUpDown(l)
	vt := schedule.VertexView(s, l.T, 0)
	checkRow(t, "RecvChild", vt.RecvChild, seq(nil, 1, 1, 15))
	checkRow(t, "SendChild", vt.SendChild, seq(map[int]int{16: 0}, 1, 1, 15))
	checkRow(t, "RecvParent", vt.RecvParent, nil)
	checkRow(t, "SendParent", vt.SendParent, nil)
}

// TestCUDTable2 reproduces Table 2: the vertex holding message 1
// (interval [1,3], level 1, first child of the root).
func TestCUDTable2(t *testing.T) {
	l := fig5Labeled(t)
	s := BuildConcurrentUpDown(l)
	vt := schedule.VertexView(s, l.T, 1)
	// Receives messages 4..15 from the root at times 5..16 and message 0 at 17.
	checkRow(t, "RecvParent", vt.RecvParent, seq(map[int]int{17: 0}, 5, 4, 12))
	// Receives its children's messages 2, 3 at times 1, 2.
	checkRow(t, "RecvChild", vt.RecvChild, seq(nil, 1, 2, 2))
	// Sends 1 (lip) at 0, then 2, 3 at 1, 2.
	checkRow(t, "SendParent", vt.SendParent, seq(map[int]int{0: 1}, 1, 2, 2))
	// Sends 2@1, 3@2, then its own delayed s-message 1@3 (the i = k case),
	// then forwards 4..15 at 5..16 and 0 at 17.
	want := seq(map[int]int{1: 2, 2: 3, 3: 1, 17: 0}, 5, 4, 12)
	checkRow(t, "SendChild", vt.SendChild, want)
}

// TestCUDTable3 reproduces Table 3: the vertex holding message 4
// (interval [4,10], level 1), whose o-messages 2 and 3 are the delayed ones.
func TestCUDTable3(t *testing.T) {
	l := fig5Labeled(t)
	s := BuildConcurrentUpDown(l)
	vt := schedule.VertexView(s, l.T, 4)
	checkRow(t, "RecvParent", vt.RecvParent,
		seq(map[int]int{2: 1, 3: 2, 4: 3, 17: 0}, 12, 11, 5))
	// l-message 5 at time 1; r-messages 6..10 at times 5..9.
	checkRow(t, "RecvChild", vt.RecvChild, seq(map[int]int{1: 5}, 5, 6, 5))
	// rip-messages 4..10 at times 3..9 (no lip: 4 != 0+1).
	checkRow(t, "SendParent", vt.SendParent, seq(nil, 3, 4, 7))
	// b-messages 4..10 at 3..9; forward 1@2; delayed 2@10, 3@11; tail
	// 11..15 at 12..16 and 0@17.
	want := seq(map[int]int{2: 1, 10: 2, 11: 3, 17: 0}, 3, 4, 7)
	want = seq(want, 12, 11, 5)
	checkRow(t, "SendChild", vt.SendChild, want)
}

// TestCUDTable4 reproduces Table 4: the vertex holding message 8
// (interval [8,10], level 2), whose delayed o-messages are 6 and 7.
func TestCUDTable4(t *testing.T) {
	l := fig5Labeled(t)
	s := BuildConcurrentUpDown(l)
	vt := schedule.VertexView(s, l.T, 8)
	// From parent (vertex 4): 1@3, 4@4, 5@5, 6@6, 7@7, then 2@11, 3@12,
	// 11..15 @ 13..17, 0@18.
	want := map[int]int{3: 1, 4: 4, 5: 5, 6: 6, 7: 7, 11: 2, 12: 3, 18: 0}
	want = seq(want, 13, 11, 5)
	checkRow(t, "RecvParent", vt.RecvParent, want)
	// l-message 9 at 1, r-message 10 at 8.
	checkRow(t, "RecvChild", vt.RecvChild, map[int]int{1: 9, 8: 10})
	// rip 8..10 at 6..8.
	checkRow(t, "SendParent", vt.SendParent, seq(nil, 6, 8, 3))
	// b: 8@6, 9@7, 10@8; forwards 1@3, 4@4, 5@5; delayed 6@9, 7@10; then
	// 2@11, 3@12, 11..15 @ 13..17, 0@18.
	wantSend := map[int]int{3: 1, 4: 4, 5: 5, 6: 8, 7: 9, 8: 10, 9: 6, 10: 7, 11: 2, 12: 3, 18: 0}
	wantSend = seq(wantSend, 13, 11, 5)
	checkRow(t, "SendChild", vt.SendChild, wantSend)
}

func TestCUDTrivialTrees(t *testing.T) {
	// n = 1: nothing to do.
	one := spantree.Label(spantree.MustFromParents([]int{-1}))
	if s := BuildConcurrentUpDown(one); s.Time() != 0 {
		t.Fatalf("n=1: time %d, want 0", s.Time())
	}
	// n = 2: root and leaf, time n + r = 3.
	two := spantree.Label(spantree.MustFromParents([]int{-1, 0}))
	s := BuildConcurrentUpDown(two)
	if _, err := schedule.CheckGossip(two.T.Graph(), s); err != nil {
		t.Fatal(err)
	}
	if s.Time() != 3 {
		t.Fatalf("n=2: time %d, want 3", s.Time())
	}
}

// TestCUDExhaustiveSmallTrees checks validity, completion, the exact n + r
// bound, and zero waste on every labelled tree with up to 7 vertices,
// rooted at every vertex (135,913 rooted trees).
func TestCUDExhaustiveSmallTrees(t *testing.T) {
	maxN := 7
	if testing.Short() {
		maxN = 6
	}
	for n := 2; n <= maxN; n++ {
		count := 0
		graph.AllTrees(n, func(g *graph.Graph) bool {
			count++
			for root := 0; root < n; root++ {
				l := buildLabeled(t, g, root)
				s := BuildConcurrentUpDown(l)
				res, err := schedule.Run(l.T.Graph(), s, schedule.Options{RequireUseful: true})
				if err != nil {
					t.Fatalf("n=%d root=%d tree=%v: %v", n, root, g, err)
				}
				for p, h := range res.Holds {
					if !h.Full() {
						t.Fatalf("n=%d root=%d tree=%v: processor %d missing %v", n, root, g, p, h.Missing())
					}
				}
				if want := n + l.T.Height; s.Time() != want {
					t.Fatalf("n=%d root=%d tree=%v: time %d, want %d", n, root, g, s.Time(), want)
				}
			}
			return true
		})
		if count == 0 {
			t.Fatalf("n=%d: no trees enumerated", n)
		}
	}
}

// TestSimpleExhaustiveSmallTrees checks Lemma 1 the same way: validity,
// completion, and the exact 2n + r - 3 bound.
func TestSimpleExhaustiveSmallTrees(t *testing.T) {
	maxN := 7
	if testing.Short() {
		maxN = 6
	}
	for n := 2; n <= maxN; n++ {
		graph.AllTrees(n, func(g *graph.Graph) bool {
			for root := 0; root < n; root++ {
				l := buildLabeled(t, g, root)
				s := BuildSimple(l)
				if _, err := schedule.CheckGossip(l.T.Graph(), s); err != nil {
					t.Fatalf("n=%d root=%d tree=%v: %v", n, root, g, err)
				}
				if want := SimpleTime(n, l.T.Height); s.Time() != want {
					t.Fatalf("n=%d root=%d tree=%v: time %d, want %d", n, root, g, s.Time(), want)
				}
			}
			return true
		})
	}
}

func TestCUDRandomLargeTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sizes := []int{50, 137, 400}
	if testing.Short() {
		sizes = []int{50}
	}
	for _, n := range sizes {
		for iter := 0; iter < 5; iter++ {
			g := graph.RandomTree(rng, n)
			l := buildLabeled(t, g, rng.Intn(n))
			s := BuildConcurrentUpDown(l)
			res, err := schedule.Run(l.T.Graph(), s, schedule.Options{RequireUseful: true})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			for p, h := range res.Holds {
				if !h.Full() {
					t.Fatalf("n=%d: processor %d incomplete", n, p)
				}
			}
			if want := n + l.T.Height; s.Time() != want {
				t.Fatalf("n=%d: time %d, want %d", n, s.Time(), want)
			}
		}
	}
}

func TestPathTreesBothAlgorithms(t *testing.T) {
	// Paths rooted at an end are the deepest trees (r = n-1) and exercise
	// the i = k leftmost-path special case at every vertex.
	for _, n := range []int{2, 3, 5, 16, 33} {
		g := graph.Path(n)
		l := buildLabeled(t, g, 0)
		cud := BuildConcurrentUpDown(l)
		if _, err := schedule.Run(l.T.Graph(), cud, schedule.Options{RequireUseful: true}); err != nil {
			t.Fatalf("CUD path n=%d: %v", n, err)
		}
		if cud.Time() != n+(n-1) {
			t.Fatalf("CUD path n=%d: time %d, want %d", n, cud.Time(), n+n-1)
		}
		simple := BuildSimple(l)
		if _, err := schedule.CheckGossip(l.T.Graph(), simple); err != nil {
			t.Fatalf("Simple path n=%d: %v", n, err)
		}
		if simple.Time() != SimpleTime(n, n-1) {
			t.Fatalf("Simple path n=%d: time %d", n, simple.Time())
		}
	}
}

func TestStarTrees(t *testing.T) {
	// Stars rooted at the hub: r = 1, the shallowest non-trivial trees.
	for _, n := range []int{3, 4, 10, 65} {
		l := buildLabeled(t, graph.Star(n), 0)
		s := BuildConcurrentUpDown(l)
		if _, err := schedule.Run(l.T.Graph(), s, schedule.Options{RequireUseful: true}); err != nil {
			t.Fatalf("star n=%d: %v", n, err)
		}
		if s.Time() != n+1 {
			t.Fatalf("star n=%d: time %d, want %d", n, s.Time(), n+1)
		}
	}
}

func TestGossipPipelineOnGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := []*graph.Graph{
		graph.Cycle(9), graph.Grid(4, 4), graph.Hypercube(4), graph.Petersen(),
		graph.Fig4(), graph.Wheel(9), graph.N3StandIn(),
		graph.RandomConnected(rng, 30, 0.12),
		graph.RandomGeometric(rng, 40, 0.25),
	}
	for _, g := range graphs {
		for _, algo := range []Algorithm{ConcurrentUpDown, Simple} {
			res, err := Gossip(g, algo)
			if err != nil {
				t.Fatalf("%v/%v: %v", g, algo, err)
			}
			// The schedule must be valid on the original network (it only
			// uses spanning-tree edges) and complete.
			if _, err := schedule.CheckGossip(g, res.Schedule); err != nil {
				t.Fatalf("%v/%v: %v", g, algo, err)
			}
			if res.Radius != g.Radius() {
				t.Fatalf("%v: radius %d, want %d", g, res.Radius, g.Radius())
			}
			var want int
			if algo == ConcurrentUpDown {
				want = ConcurrentUpDownTime(g.N(), res.Radius)
			} else {
				want = SimpleTime(g.N(), res.Radius)
			}
			if res.Schedule.Time() != want {
				t.Fatalf("%v/%v: time %d, want %d", g, algo, res.Schedule.Time(), want)
			}
		}
	}
}

func TestGossipEmptyGraph(t *testing.T) {
	if _, err := Gossip(graph.New(0), ConcurrentUpDown); err == nil {
		t.Fatal("Gossip accepted empty network")
	}
}

func TestRemapToOriginalPermutes(t *testing.T) {
	// A tree whose ids are shuffled relative to DFS order; the remapped
	// schedule must be valid on the original graph with original ids.
	tr := spantree.MustFromParents([]int{3, 5, 0, -1, 0, 3})
	l := spantree.Label(tr)
	canon := BuildConcurrentUpDown(l)
	orig := RemapToOriginal(canon, l)
	if _, err := schedule.CheckGossip(tr.Graph(), orig); err != nil {
		t.Fatal(err)
	}
	if orig.Time() != canon.Time() {
		t.Fatalf("remap changed time: %d vs %d", orig.Time(), canon.Time())
	}
}

func TestAlgorithmString(t *testing.T) {
	if ConcurrentUpDown.String() != "ConcurrentUpDown" || Simple.String() != "Simple" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm has empty name")
	}
}

// TestCUDLowerBoundGap measures the paper's Section 4 discussion: on the
// odd line the optimum is n + r - 1 and ConcurrentUpDown achieves n + r,
// exactly one round away.
func TestCUDLowerBoundGap(t *testing.T) {
	for m := 1; m <= 8; m++ {
		n := 2*m + 1
		g := graph.Path(n)
		res, err := Gossip(g, ConcurrentUpDown)
		if err != nil {
			t.Fatal(err)
		}
		lower := n + m - 1 // n + r - 1 with r = m
		if got := res.Schedule.Time(); got != lower+1 {
			t.Fatalf("line n=%d: time %d, want lower bound %d + 1", n, got, lower)
		}
	}
}
