package core

import (
	"fmt"

	"multigossip/internal/schedule"
)

// BuildLineOptimal constructs an optimal gossip schedule for the straight
// line with n = 2m+1 processors: total communication time exactly
// n + r - 1 = 3m, meeting the paper's Section 1 lower bound.
//
// Section 4 states that ConcurrentUpDown's n + r on the line can be
// improved by one unit, but that "the protocol for each processor will not
// be uniform and the algorithm will be much more complex. The reason is
// that one needs to alternate the delivery of messages from different
// subtrees." This is that non-uniform protocol, worked out in closed form.
//
// Layout: processors 0..2m along the line, the centre c = m is the root;
// the left chain vertex at depth d is a_d = m-d holding message L_d, the
// right chain vertex is b_d = m+d holding message R_d. The up streams
// alternate at the root — L_e arrives at odd time 2e-1, R_e at even time
// 2e — so the root forwards to the opposite chain with zero idle rounds:
//
//	root:  message 0 to both children at time 0; L_e to b_1 at 2e-1;
//	       R_e to a_1 at 2e.
//	a_d:   up: L_e to a_{d-1} at 2e-1-d (e = d..m).
//	       down to a_{d+1}: msg0 at d; R_e at 2e+d; L_e (e <= d) at
//	       2m+d-2e+1 — the shallow left messages trail the R stream.
//	b_d:   up: R_e to b_{d-1} at 2e-d (e = d..m).
//	       down to b_{d+1}: R_e (e <= d) at d-e — own and shallow right
//	       messages lead before the up window; L_e at 2e+d-1; msg0 at 2m+d.
//
// The two chains' protocols differ (left trails its own messages, right
// leads with them) — exactly the non-uniformity the paper predicts. Every
// schedule this builder produces is machine-verified optimal by the tests
// for all m up to 60 and certified against exact search for small m.
func BuildLineOptimal(m int) (*schedule.Schedule, error) {
	if m < 1 {
		return nil, fmt.Errorf("core: line optimal needs m >= 1, got %d", m)
	}
	n := 2*m + 1
	c := m
	left := func(d int) int { return m - d }  // a_d, holds message m-d
	right := func(d int) int { return m + d } // b_d, holds message m+d
	s := schedule.New(n)

	// Root: its own message to both children, then alternate forwards.
	s.AddSend(0, c, c, left(1), right(1))
	for e := 1; e <= m; e++ {
		s.AddSend(2*e-1, left(e), c, right(1)) // L_e onward to the right
		s.AddSend(2*e, right(e), c, left(1))   // R_e onward to the left
	}

	for d := 1; d <= m; d++ {
		// Up streams.
		for e := d; e <= m; e++ {
			s.AddSend(2*e-1-d, left(e), left(d), left(d-1))
			s.AddSend(2*e-d, right(e), right(d), right(d-1))
		}
		if d == m {
			continue // leaves have no down duties
		}
		// Left chain down stream.
		s.AddSend(d, c, left(d), left(d+1))
		for e := 1; e <= m; e++ {
			s.AddSend(2*e+d, right(e), left(d), left(d+1))
		}
		for e := 1; e <= d; e++ {
			s.AddSend(2*m+d-2*e+1, left(e), left(d), left(d+1))
		}
		// Right chain down stream.
		for e := 1; e <= d; e++ {
			s.AddSend(d-e, right(e), right(d), right(d+1))
		}
		for e := 1; e <= m; e++ {
			s.AddSend(2*e+d-1, left(e), right(d), right(d+1))
		}
		s.AddSend(2*m+d, c, right(d), right(d+1))
	}
	return s, nil
}

// LineOptimalTime returns the closed-form optimal gossip time of the odd
// line with n = 2m+1 processors: n + r - 1 = 3m.
func LineOptimalTime(m int) int { return 3 * m }
