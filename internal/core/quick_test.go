package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// randomLabeled derives a labelled random tree from quick-generated raw
// values: a Prüfer-style random tree rooted at a random vertex.
func randomLabeled(seed int64, rawN, rawRoot uint8) *spantree.Labeled {
	n := 2 + int(rawN)%48
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomTree(rng, n)
	tr, err := spantree.BFSTree(g, int(rawRoot)%n)
	if err != nil {
		panic(err)
	}
	return spantree.Label(tr)
}

// TestQuickCUDInvariants is the central property test of the reproduction:
// on arbitrary rooted random trees, ConcurrentUpDown yields a schedule that
// (a) satisfies the model with zero wasted deliveries, (b) completes, and
// (c) takes exactly n + height rounds.
func TestQuickCUDInvariants(t *testing.T) {
	prop := func(seed int64, rawN, rawRoot uint8) bool {
		l := randomLabeled(seed, rawN, rawRoot)
		s := BuildConcurrentUpDown(l)
		res, err := schedule.Run(l.T.Graph(), s, schedule.Options{RequireUseful: true})
		if err != nil {
			return false
		}
		for _, h := range res.Holds {
			if !h.Full() {
				return false
			}
		}
		return s.Time() == l.N()+l.T.Height
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimpleInvariants: the same for Lemma 1's algorithm.
func TestQuickSimpleInvariants(t *testing.T) {
	prop := func(seed int64, rawN, rawRoot uint8) bool {
		l := randomLabeled(seed, rawN, rawRoot)
		s := BuildSimple(l)
		if _, err := schedule.CheckGossip(l.T.Graph(), s); err != nil {
			return false
		}
		return s.Time() == SimpleTime(l.N(), l.T.Height)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCUDPerVertexWindows checks the fine-grained timing facts the
// Theorem 1 proof relies on, directly against the generated schedule:
// every non-root vertex sends its rip-messages m at exactly time m - k,
// its lip-message at time 0, and never receives two messages in one round
// (the validator covers the latter; here we check the exact send times).
func TestQuickCUDPerVertexWindows(t *testing.T) {
	prop := func(seed int64, rawN, rawRoot uint8) bool {
		l := randomLabeled(seed, rawN, rawRoot)
		s := BuildConcurrentUpDown(l)
		tr := l.T
		// sendUp[v][m] = time v sent m to its parent, -1 if never.
		n := l.N()
		sendUp := make(map[[2]int]int)
		for time, round := range s.Rounds {
			for _, tx := range round {
				for _, d := range tx.To {
					if d == tr.Parent[tx.From] {
						sendUp[[2]int{tx.From, tx.Msg}] = time + 1 // offset so 0 means absent
					}
				}
			}
		}
		for v := 1; v < n; v++ {
			k := tr.Level[v]
			i, j := l.Interval(v)
			w := l.LipCount(v)
			if w == 1 {
				if sendUp[[2]int{v, i}] != 1 { // sent at time 0
					return false
				}
			}
			for m := i + w; m <= j; m++ {
				if sendUp[[2]int{v, m}] != m-k+1 {
					return false
				}
			}
			// Nothing else ever goes up.
			for m := 0; m < n; m++ {
				if m < i || m > j {
					if sendUp[[2]int{v, m}] != 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemapPreservesValidity: remapping a canonical schedule through
// any labelling keeps it valid and the same length.
func TestQuickRemapPreservesValidity(t *testing.T) {
	prop := func(seed int64, rawN, rawRoot uint8) bool {
		l := randomLabeled(seed, rawN, rawRoot)
		canon := BuildConcurrentUpDown(l)
		orig := RemapToOriginal(canon, l)
		if orig.Time() != canon.Time() {
			return false
		}
		// Rebuild the tree in original vertex ids through VertexOf.
		og := graph.New(l.N())
		for v := 0; v < l.N(); v++ {
			if p := l.T.Parent[v]; p >= 0 {
				og.AddEdge(l.VertexOf[v], l.VertexOf[p])
			}
		}
		_, err := schedule.CheckGossip(og, orig)
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
