package core

import (
	"fmt"

	"multigossip/internal/algo"
	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// Algorithm aliases the registry's ID type: core and the public facade
// share one algorithm identity (name, value, capability flags) defined
// once in internal/algo, so the two enums that used to live here and in
// multigossip.go cannot drift apart.
type Algorithm = algo.ID

// Re-exported registry values for the two algorithms this package builds
// tree schedules for.
const (
	// ConcurrentUpDown is the paper's main algorithm: n + r rounds.
	ConcurrentUpDown = algo.ConcurrentUpDown
	// Simple is the baseline of Lemma 1: 2n + r - 3 rounds.
	Simple = algo.Simple
)

// Result bundles everything the pipeline produces for a network.
type Result struct {
	Schedule *schedule.Schedule // gossip schedule in original vertex ids
	Tree     *spantree.Tree     // minimum-depth spanning tree (original ids)
	Labeled  *spantree.Labeled  // DFS labelling of Tree
	Radius   int                // tree height == network radius
	Sweep    graph.SweepStats   // work the §3.1 root sweep actually did
}

// Gossip runs the paper's full pipeline on an arbitrary connected network:
// minimum-depth spanning tree, DFS labelling, then the chosen schedule
// builder on the tree. The returned schedule uses the network's original
// vertex identifiers, with message m identified with its originating
// processor; it is guaranteed valid on the tree network and therefore on g.
func Gossip(g *graph.Graph, a Algorithm) (*Result, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty network")
	}
	tree, sweep, err := spantree.MinDepthWithStats(g)
	if err != nil {
		return nil, fmt.Errorf("core: building minimum-depth spanning tree: %w", err)
	}
	build, ok := GossipOnTree(tree)[a]
	if !ok {
		return nil, fmt.Errorf("core: no tree schedule builder for algorithm %v", a)
	}
	res := build()
	res.Sweep = sweep
	return res, nil
}

// GossipImplicit runs the pipeline's tree and labelling stages on an
// arbitrary connected network and stops there, returning the compact
// implicit ConcurrentUpDown plan: O(n) words, no schedule materialisation.
// The implicit plan answers the same round and timetable queries as
// BuildConcurrentUpDown bit for bit, and Plan.Labeled reconstructs the
// labelled tree whenever a caller genuinely needs the materialised form.
func GossipImplicit(g *graph.Graph) (*implicit.Plan, graph.SweepStats, error) {
	if g.N() == 0 {
		return nil, graph.SweepStats{}, fmt.Errorf("core: empty network")
	}
	tree, sweep, err := spantree.MinDepthWithStats(g)
	if err != nil {
		return nil, graph.SweepStats{}, fmt.Errorf("core: building minimum-depth spanning tree: %w", err)
	}
	return implicit.New(spantree.Label(tree)), sweep, nil
}

// GossipOnTree returns lazy constructors for each algorithm on a fixed
// tree, so callers that need several schedules on the same tree (the
// comparative experiments) pay for tree construction and labelling once.
func GossipOnTree(tree *spantree.Tree) map[Algorithm]func() *Result {
	labeled := spantree.Label(tree)
	build := func(algo Algorithm) func() *Result {
		return func() *Result {
			var canon *schedule.Schedule
			switch algo {
			case ConcurrentUpDown:
				canon = BuildConcurrentUpDown(labeled)
			case Simple:
				canon = BuildSimple(labeled)
			default:
				panic(fmt.Sprintf("core: unknown algorithm %d", int(algo)))
			}
			return &Result{
				Schedule: RemapToOriginal(canon, labeled),
				Tree:     tree,
				Labeled:  labeled,
				Radius:   tree.Height,
			}
		}
	}
	return map[Algorithm]func() *Result{
		ConcurrentUpDown: build(ConcurrentUpDown),
		Simple:           build(Simple),
	}
}

// RemapToOriginal translates a schedule expressed in canonical DFS labels
// back to the original vertex identifiers of the labelled tree: both
// processors and messages map through VertexOf, because message label m
// originates at original vertex VertexOf[m] and messages are identified
// with their origin in the basic gossiping problem.
func RemapToOriginal(canon *schedule.Schedule, l *spantree.Labeled) *schedule.Schedule {
	out := schedule.New(canon.N)
	for t, round := range canon.Rounds {
		for _, tx := range round {
			dests := make([]int, len(tx.To))
			for i, d := range tx.To {
				dests[i] = l.VertexOf[d]
			}
			out.AddSend(t, l.VertexOf[tx.Msg], l.VertexOf[tx.From], dests...)
		}
	}
	// Preserve trailing empty rounds (none are ever produced, but keep the
	// length contract explicit).
	for len(out.Rounds) < len(canon.Rounds) {
		out.Rounds = append(out.Rounds, nil)
	}
	return out
}
