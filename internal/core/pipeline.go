package core

import (
	"fmt"

	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// Algorithm selects which schedule builder the pipeline runs on the
// minimum-depth spanning tree.
type Algorithm int

const (
	// ConcurrentUpDown is the paper's main algorithm: n + r rounds.
	ConcurrentUpDown Algorithm = iota
	// Simple is the baseline of Lemma 1: 2n + r - 3 rounds.
	Simple
)

// String returns the algorithm name as used in reports.
func (a Algorithm) String() string {
	switch a {
	case ConcurrentUpDown:
		return "ConcurrentUpDown"
	case Simple:
		return "Simple"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Result bundles everything the pipeline produces for a network.
type Result struct {
	Schedule *schedule.Schedule // gossip schedule in original vertex ids
	Tree     *spantree.Tree     // minimum-depth spanning tree (original ids)
	Labeled  *spantree.Labeled  // DFS labelling of Tree
	Radius   int                // tree height == network radius
	Sweep    graph.SweepStats   // work the §3.1 root sweep actually did
}

// Gossip runs the paper's full pipeline on an arbitrary connected network:
// minimum-depth spanning tree, DFS labelling, then the chosen schedule
// builder on the tree. The returned schedule uses the network's original
// vertex identifiers, with message m identified with its originating
// processor; it is guaranteed valid on the tree network and therefore on g.
func Gossip(g *graph.Graph, algo Algorithm) (*Result, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty network")
	}
	tree, sweep, err := spantree.MinDepthWithStats(g)
	if err != nil {
		return nil, fmt.Errorf("core: building minimum-depth spanning tree: %w", err)
	}
	res := GossipOnTree(tree)[algo]()
	res.Sweep = sweep
	return res, nil
}

// GossipImplicit runs the pipeline's tree and labelling stages on an
// arbitrary connected network and stops there, returning the compact
// implicit ConcurrentUpDown plan: O(n) words, no schedule materialisation.
// The implicit plan answers the same round and timetable queries as
// BuildConcurrentUpDown bit for bit, and Plan.Labeled reconstructs the
// labelled tree whenever a caller genuinely needs the materialised form.
func GossipImplicit(g *graph.Graph) (*implicit.Plan, graph.SweepStats, error) {
	if g.N() == 0 {
		return nil, graph.SweepStats{}, fmt.Errorf("core: empty network")
	}
	tree, sweep, err := spantree.MinDepthWithStats(g)
	if err != nil {
		return nil, graph.SweepStats{}, fmt.Errorf("core: building minimum-depth spanning tree: %w", err)
	}
	return implicit.New(spantree.Label(tree)), sweep, nil
}

// GossipOnTree returns lazy constructors for each algorithm on a fixed
// tree, so callers that need several schedules on the same tree (the
// comparative experiments) pay for tree construction and labelling once.
func GossipOnTree(tree *spantree.Tree) map[Algorithm]func() *Result {
	labeled := spantree.Label(tree)
	build := func(algo Algorithm) func() *Result {
		return func() *Result {
			var canon *schedule.Schedule
			switch algo {
			case ConcurrentUpDown:
				canon = BuildConcurrentUpDown(labeled)
			case Simple:
				canon = BuildSimple(labeled)
			default:
				panic(fmt.Sprintf("core: unknown algorithm %d", int(algo)))
			}
			return &Result{
				Schedule: RemapToOriginal(canon, labeled),
				Tree:     tree,
				Labeled:  labeled,
				Radius:   tree.Height,
			}
		}
	}
	return map[Algorithm]func() *Result{
		ConcurrentUpDown: build(ConcurrentUpDown),
		Simple:           build(Simple),
	}
}

// RemapToOriginal translates a schedule expressed in canonical DFS labels
// back to the original vertex identifiers of the labelled tree: both
// processors and messages map through VertexOf, because message label m
// originates at original vertex VertexOf[m] and messages are identified
// with their origin in the basic gossiping problem.
func RemapToOriginal(canon *schedule.Schedule, l *spantree.Labeled) *schedule.Schedule {
	out := schedule.New(canon.N)
	for t, round := range canon.Rounds {
		for _, tx := range round {
			dests := make([]int, len(tx.To))
			for i, d := range tx.To {
				dests[i] = l.VertexOf[d]
			}
			out.AddSend(t, l.VertexOf[tx.Msg], l.VertexOf[tx.From], dests...)
		}
	}
	// Preserve trailing empty rounds (none are ever produced, but keep the
	// length contract explicit).
	for len(out.Rounds) < len(canon.Rounds) {
		out.Rounds = append(out.Rounds, nil)
	}
	return out
}
