package core

import (
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// BuildSimple constructs the schedule of algorithm Simple (Lemma 1) on a
// DFS-labelled tree: first pipeline every message up so the root holds all
// n messages at time n - 1 (message m, originating at level k_m, moves one
// level per round and reaches the root exactly at time m), then pipeline
// every message down, the root sending message m to all its children at
// time n - 2 + m and every inner vertex forwarding immediately. Total
// communication time 2n + height - 3 for every tree with n >= 2.
//
// Down-phase multicasts go to all children, including the subtree that
// already owns the message — the paper's Simple does the same; the wasted
// deliveries are what ConcurrentUpDown eliminates.
func BuildSimple(l *spantree.Labeled) *schedule.Schedule {
	t := l.T
	n := l.N()
	s := schedule.New(n)
	if n <= 1 {
		return s
	}

	// Up phase: non-root vertex v at level k relays every message of its
	// subtree interval [i..j] to its parent at time m - k (its own message
	// i starts the relay; descendants' messages stream through in label
	// order without conflicts).
	for v := 1; v < n; v++ {
		k := t.Level[v]
		i, j := l.Interval(v)
		for m := i; m <= j; m++ {
			s.AddSend(m-k, m, v, t.Parent[v])
		}
	}

	// Down phase: the root multicasts message m to all children at time
	// n - 2 + m; a vertex at level k therefore receives it at time
	// n - 2 + m + k and, if it has children, forwards it the same time unit.
	for _, v := range bfsOrder(t) {
		if len(t.Children[v]) == 0 {
			continue
		}
		k := t.Level[v]
		for m := 0; m < n; m++ {
			s.AddSend(n-2+m+k, m, v, t.Children[v]...)
		}
	}
	return s
}

// SimpleTime returns the closed-form total communication time of algorithm
// Simple, 2n + r - 3, which the tests check against the built schedule.
func SimpleTime(n, r int) int {
	if n <= 1 {
		return 0
	}
	return 2*n + r - 3
}

// ConcurrentUpDownTime returns the closed-form total communication time of
// ConcurrentUpDown, n + r (Theorem 1).
func ConcurrentUpDownTime(n, r int) int {
	if n <= 1 {
		return 0
	}
	return n + r
}
