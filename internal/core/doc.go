// Package core implements the paper's contribution: construction of
// gossiping communication schedules on arbitrary networks under the
// multicasting model.
//
// The pipeline follows Section 3 exactly:
//
//  1. build a minimum-depth spanning tree T of the network (height = radius
//     r, package spantree);
//  2. label messages in DFS preorder so the subtree of vertex v holds the
//     contiguous interval [i..j] (spantree.Label);
//  3. run algorithms Propagate-Up (steps U1-U4) and Propagate-Down (steps
//     D1-D3) concurrently at every vertex; overlapping the two schedules —
//     procedure ConcurrentUpDown — yields total communication time n + r
//     (Theorem 1).
//
// The package also provides algorithm Simple (Lemma 1): pipeline all
// messages to the root, then pipeline everything back down, for a total
// communication time of 2n + r - 3. Simple is the baseline the paper
// improves on; it is retained both as a comparison point and because its
// correctness argument is elementary.
//
// Every schedule built here is deterministic given the network, so the
// construction can run offline on one processor (the paper's offline
// setting) or be re-derived locally by each processor from the tuple
// (i, j, k, w, n) — package online exercises that distributed variant.
package core
