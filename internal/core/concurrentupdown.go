package core

import (
	"fmt"
	"sort"

	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// BuildConcurrentUpDown constructs the ConcurrentUpDown schedule of
// Theorem 1 on a DFS-labelled tree: total communication time exactly
// n + height for every tree with at least two vertices (and 0 for the
// trivial single-vertex tree). Vertex and message identifiers are canonical
// DFS labels; use Gossip to run the full pipeline on an arbitrary network
// with original identifiers.
//
// The construction is rule-based rather than simulated: Propagate-Up send
// times come straight from steps U3-U4; Propagate-Down b-message times from
// step D3 with its i = k special case; and o-message forwards from steps
// D1-D2, computed top-down so that each vertex's forwarding times derive
// from the arrival times its parent's sends induce. Where Propagate-Up and
// Propagate-Down both transmit at the same time the theorem guarantees it
// is the same message; the builder asserts this and merges the two into a
// single multicast to {parent} ∪ children.
func BuildConcurrentUpDown(l *spantree.Labeled) *schedule.Schedule {
	t := l.T
	n := l.N()
	s := schedule.New(n)
	if n <= 1 {
		return s
	}

	// pending[v] collects v's transmissions keyed by send time before they
	// are merged and emitted.
	type sendRec struct {
		msg      int
		toParent bool
		children []int
	}
	pending := make([]map[int]*sendRec, n)
	for v := range pending {
		pending[v] = make(map[int]*sendRec)
	}
	// record merges a transmission into v's plan. Child destination slices
	// are shared, not copied: every caller passes either nil, the vertex's
	// immutable Children slice, or a freshly built exclusion slice, and the
	// only merge in ConcurrentUpDown (a U4 up-send coinciding with its D3
	// down-send) has one side without children.
	record := func(v, time, msg int, toParent bool, children []int) {
		if !toParent && len(children) == 0 {
			return
		}
		rec, ok := pending[v][time]
		if !ok {
			pending[v][time] = &sendRec{msg: msg, toParent: toParent, children: children}
			return
		}
		if rec.msg != msg {
			panic(fmt.Sprintf("core: vertex %d would send messages %d and %d at time %d", v, rec.msg, msg, time))
		}
		rec.toParent = rec.toParent || toParent
		if len(children) > 0 {
			if rec.children == nil {
				rec.children = children
			} else {
				merged := make([]int, 0, len(rec.children)+len(children))
				merged = append(merged, rec.children...)
				merged = append(merged, children...)
				rec.children = merged
			}
		}
	}

	// Propagate-Up (U3, U4): every non-root vertex sends its lip-message at
	// time 0 and its rip-messages m at times m - k.
	for v := 1; v < n; v++ {
		k := t.Level[v]
		i, j := l.Interval(v)
		w := l.LipCount(v)
		if w == 1 {
			record(v, 0, i, true, nil)
		}
		for m := i + w; m <= j; m++ {
			record(v, m-k, m, true, nil)
		}
	}

	// Propagate-Down (D3 + D2), top-down in BFS order so a vertex's
	// o-message arrivals are known from its parent's already-recorded sends.
	// arrivalsFromParent[v] lists (time, msg) pairs delivered by the parent.
	type arrival struct{ time, msg int }
	arrivals := make([][]arrival, n)

	order := bfsOrder(t)
	for _, v := range order {
		kids := t.Children[v]
		k := t.Level[v]
		i, j := l.Interval(v)

		if len(kids) > 0 {
			// Step D3: b-messages m = i..j at times m - k, message i to all
			// children and every other m to all children except its owner;
			// on the leftmost DFS path (i == k) message i moves to j - k + 1.
			for m := i; m <= j; m++ {
				time := m - k
				if v == t.Root {
					// Root: message 0 is deferred to time n (the paper's
					// Table 1: the root sends message m at time m for
					// m >= 1 and its own message 0 at time n). This is the
					// i = k special case, since the root always has i = k = 0.
					if m == 0 {
						time = n // == j - k + 1 at the root
					}
				} else if m == i && i == k {
					time = j - k + 1
				}
				dests := kids
				if owner := l.Owner(v, m); owner != -1 {
					dests = excluding(kids, owner)
				}
				record(v, time, m, false, dests)
			}

			// Step D2: forward o-messages received from the parent at their
			// arrival time, except arrivals at times i-k and i-k+1, which
			// are held back until j-k+1 and j-k+2 while D3 occupies the
			// vertex. When i == k the paper guarantees no arrival occupies
			// those slots, freeing j-k+1 for the relocated s-message.
			var delayed []arrival
			for _, a := range arrivals[v] {
				if a.time == i-k || a.time == i-k+1 {
					delayed = append(delayed, a)
					continue
				}
				record(v, a.time, a.msg, false, kids)
			}
			if len(delayed) > 2 {
				panic(fmt.Sprintf("core: vertex %d has %d delayed o-messages", v, len(delayed)))
			}
			for idx, a := range delayed {
				record(v, j-k+1+idx, a.msg, false, kids)
			}
		}

		// Propagate arrival times to the children for the next BFS level.
		times := make([]int, 0, len(pending[v]))
		for time := range pending[v] {
			times = append(times, time)
		}
		sort.Ints(times)
		for _, time := range times {
			rec := pending[v][time]
			for _, c := range rec.children {
				arrivals[c] = append(arrivals[c], arrival{time + 1, rec.msg})
			}
		}
	}

	// Emit the merged schedule. AddSend copies its destination slice, so a
	// single scratch buffer serves every transmission.
	var scratch []int
	for v := 0; v < n; v++ {
		times := make([]int, 0, len(pending[v]))
		for time := range pending[v] {
			times = append(times, time)
		}
		sort.Ints(times)
		for _, time := range times {
			rec := pending[v][time]
			scratch = scratch[:0]
			// Canonical DFS labels order the parent below every child, so
			// parent-first destinations stay sorted and AddSend skips its sort.
			if rec.toParent {
				scratch = append(scratch, t.Parent[v])
			}
			scratch = append(scratch, rec.children...)
			s.AddSend(time, rec.msg, v, scratch...)
		}
	}
	return s
}

// bfsOrder returns the vertices of t in level order starting at the root.
func bfsOrder(t *spantree.Tree) []int {
	order := make([]int, 0, t.N())
	order = append(order, t.Root)
	for head := 0; head < len(order); head++ {
		order = append(order, t.Children[order[head]]...)
	}
	return order
}

// excluding returns kids without the single element x.
func excluding(kids []int, x int) []int {
	out := make([]int, 0, len(kids)-1)
	for _, c := range kids {
		if c != x {
			out = append(out, c)
		}
	}
	return out
}
