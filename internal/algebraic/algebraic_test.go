package algebraic

import (
	"errors"
	"math/rand"
	"testing"

	"multigossip/internal/algo"
	"multigossip/internal/graph"
)

func TestRunCompletesWithinBound(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path16":   graph.Path(16),
		"cycle17":  graph.Cycle(17),
		"grid5x5":  graph.Grid(5, 5),
		"star12":   graph.Star(12),
		"complete": graph.Complete(9),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			bound := algo.ByID(algo.Algebraic).Bound(algo.BoundParams{
				N: g.N(), Diameter: g.Diameter(),
			})
			for seed := int64(0); seed < 5; seed++ {
				res, err := Run(g, Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Rounds <= 0 || res.Rounds > bound {
					t.Fatalf("seed %d: %d rounds outside (0, %d]", seed, res.Rounds, bound)
				}
				if res.Innovative < g.N()*(g.N()-1) {
					t.Fatalf("seed %d: only %d innovative receptions for %d needed",
						seed, res.Innovative, g.N()*(g.N()-1))
				}
			}
		})
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	g := graph.Grid(4, 5)
	a, err := Run(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(g, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical results (suspicious rng)")
	}
}

func TestRunUnderLoss(t *testing.T) {
	g := graph.Cycle(20)
	res, err := Run(g, Options{Seed: 3, LossRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Fatal("20% loss over hundreds of packets lost nothing")
	}
	lossless, err := Run(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < lossless.Rounds {
		t.Logf("note: lossy run finished faster (%d < %d) — possible but rare", res.Rounds, lossless.Rounds)
	}
}

func TestRunTrivialAndErrors(t *testing.T) {
	if res, err := Run(graph.Path(1), Options{}); err != nil || res.Rounds != 0 {
		t.Fatalf("singleton: (%+v, %v)", res, err)
	}
	if _, err := Run(graph.New(0), Options{}); err == nil {
		t.Fatal("empty network accepted")
	}
	if _, err := Run(graph.Path(4), Options{LossRate: 1.5}); err == nil {
		t.Fatal("loss rate 1.5 accepted")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	if _, err := Run(disc, Options{}); !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("disconnected network: %v", err)
	}
	// Total loss can never complete; the MaxRounds guard must fire.
	if _, err := Run(graph.Path(4), Options{LossRate: 1, MaxRounds: 10}); err == nil {
		t.Fatal("loss rate 1 completed")
	}
}

func TestExpectedRounds(t *testing.T) {
	g := graph.RandomTree(rand.New(rand.NewSource(5)), 24)
	mean, err := ExpectedRounds(g, Options{Seed: 100}, 8)
	if err != nil {
		t.Fatal(err)
	}
	bound := algo.ByID(algo.Algebraic).Bound(algo.BoundParams{N: g.N(), Diameter: g.Diameter()})
	if mean <= 0 || mean > float64(bound) {
		t.Fatalf("mean %v outside (0, %d]", mean, bound)
	}
	if _, err := ExpectedRounds(g, Options{}, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestBasisRankGrowth(t *testing.T) {
	b := newBasis(130) // force multi-word vectors
	words := (130 + 63) / 64
	for i := 0; i < 130; i++ {
		e := make([]uint64, words)
		e[i/64] |= 1 << uint(i%64)
		if !b.insert(e) {
			t.Fatalf("unit vector %d rejected as dependent", i)
		}
	}
	if b.rank != 130 {
		t.Fatalf("rank %d after 130 independent inserts", b.rank)
	}
	dep := make([]uint64, words)
	dep[0] = 3 // e0 ^ e1, in the span
	if b.insert(dep) {
		t.Fatal("dependent vector grew the rank")
	}
}
