// Package algebraic implements randomized network-coded gossip over GF(2)
// — the algebraic gossip of Haeupler ("Tighter Worst-Case Bounds on
// Algebraic Gossip") adapted to the paper's multicasting model, as the
// portfolio's randomized baseline.
//
// Every processor starts with its own message, identified with the unit
// coefficient vector e_v. In every round each processor multicasts one
// coded packet — a uniformly random non-zero GF(2) combination of the
// coefficient vectors spanning its received subspace — to all of its
// neighbours. The model's receive-at-most-one rule becomes the contention
// rule: a processor offered several packets in one round accepts exactly
// one, chosen uniformly at random, and the rest are lost. Gossip completes
// when every processor's subspace has full rank n (at which point it can
// decode every message).
//
// Unlike the deterministic planners there is no schedule: the exchanged
// packets are linear combinations that no single Transmission can express,
// and the round count is a random variable. Runs are seeded and exactly
// reproducible; ExpectedRounds estimates the mean over independent trials,
// which is what the scenario matrix reports against Haeupler's O(n + D)
// guarantee.
package algebraic

import (
	"fmt"

	"multigossip/internal/graph"
)

// Options configures one seeded run.
type Options struct {
	// Seed derives every random choice; equal seeds replay identically.
	Seed int64
	// LossRate drops each arriving packet independently with this
	// probability before contention resolution — the Bernoulli lossy-link
	// model the deterministic planners face through ExecuteWithFaults.
	// Randomized coded gossip needs no repair engine: it simply keeps
	// sending, which is the property the fault cells of the matrix record.
	LossRate float64
	// MaxRounds aborts a run that has not completed (<= 0: 64n + 64).
	MaxRounds int
}

// Result summarises one run.
type Result struct {
	Rounds     int // rounds until every processor reached full rank
	Deliveries int // packets accepted by receivers
	Innovative int // accepted packets that grew the receiver's subspace
	Collisions int // packets lost to the receive-at-most-one rule
	Lost       int // packets dropped by the loss model
}

// splitmix64 is the keyed hash behind every random decision; the same
// generator the fault and simulation layers use for determinism.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a tiny splitmix64 stream.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// basis is one processor's received subspace in row-echelon form over
// GF(2): row[p] is nil or a vector whose lowest set bit is p.
type basis struct {
	rows  [][]uint64
	rank  int
	words int
}

func newBasis(n int) *basis {
	return &basis{rows: make([][]uint64, n), words: (n + 63) / 64}
}

// insert reduces vec against the basis and adopts it if innovative,
// reporting whether the rank grew. vec is consumed.
func (b *basis) insert(vec []uint64) bool {
	for {
		p := firstBit(vec)
		if p < 0 {
			return false // reduced to zero: dependent
		}
		if b.rows[p] == nil {
			b.rows[p] = vec
			b.rank++
			return true
		}
		xorInto(vec, b.rows[p])
	}
}

// combine writes a uniformly random non-zero vector of the basis's
// rowspace into dst. At least one row exists (every processor holds its
// own message).
func (b *basis) combine(dst []uint64, r *rng) {
	for i := range dst {
		dst[i] = 0
	}
	for {
		any := false
		for _, row := range b.rows {
			if row == nil {
				continue
			}
			if r.next()&1 == 1 {
				xorInto(dst, row)
				any = true
			}
		}
		if any && firstBit(dst) >= 0 {
			return
		}
		// All-coins-tails or a cancelling draw: redraw (probability <= 1/2
		// per attempt, so this terminates quickly).
	}
}

func firstBit(v []uint64) int {
	for i, w := range v {
		if w != 0 {
			for b := 0; b < 64; b++ {
				if w&(1<<uint(b)) != 0 {
					return i*64 + b
				}
			}
		}
	}
	return -1
}

func xorInto(dst, src []uint64) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Run simulates one seeded algebraic gossip execution on connected g.
func Run(g *graph.Graph, opt Options) (Result, error) {
	n := g.N()
	if n == 0 {
		return Result{}, fmt.Errorf("algebraic: empty network")
	}
	if opt.LossRate < 0 || opt.LossRate > 1 {
		return Result{}, fmt.Errorf("algebraic: loss rate %v out of [0,1]", opt.LossRate)
	}
	if !g.IsConnected() {
		return Result{}, graph.ErrDisconnected
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64*n + 64
	}
	return run(g, opt, maxRounds)
}

func run(g *graph.Graph, opt Options, maxRounds int) (Result, error) {
	n := g.N()
	words := (n + 63) / 64
	r := &rng{state: splitmix64(uint64(opt.Seed)*0x9e3779b97f4a7c15 + 0xc0ded)}
	nodes := make([]*basis, n)
	for v := 0; v < n; v++ {
		nodes[v] = newBasis(n)
		e := make([]uint64, words)
		e[v/64] |= 1 << uint(v%64)
		nodes[v].insert(e)
	}
	full := 0
	if n == 1 {
		return Result{}, nil
	}

	res := Result{}
	packets := make([][]uint64, n) // the packet each processor multicasts this round
	incoming := make([][]int, n)   // senders offering a packet to each processor
	for v := range packets {
		packets[v] = make([]uint64, words)
	}
	for t := 0; ; t++ {
		if t >= maxRounds {
			return res, fmt.Errorf("algebraic: no completion after %d rounds (seed %d, loss %v)", maxRounds, opt.Seed, opt.LossRate)
		}
		// Transmit: every processor codes one packet and multicasts it to
		// its whole neighbourhood.
		for v := 0; v < n; v++ {
			nodes[v].combine(packets[v], r)
		}
		for v := 0; v < n; v++ {
			incoming[v] = incoming[v][:0]
		}
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(v) {
				if opt.LossRate > 0 && r.float64() < opt.LossRate {
					res.Lost++
					continue
				}
				incoming[u] = append(incoming[u], v)
			}
		}
		// Receive: at most one accepted packet per processor per round.
		for v := 0; v < n; v++ {
			offers := incoming[v]
			if len(offers) == 0 {
				continue
			}
			pick := offers[r.intn(len(offers))]
			res.Collisions += len(offers) - 1
			res.Deliveries++
			vec := make([]uint64, words)
			copy(vec, packets[pick])
			had := nodes[v].rank
			if nodes[v].insert(vec) {
				res.Innovative++
				if had+1 == n {
					full++
				}
			}
		}
		if full == n {
			res.Rounds = t + 1
			return res, nil
		}
	}
}

// ExpectedRounds runs `trials` independent seeded executions (seeds
// opt.Seed, opt.Seed+1, ...) and returns the mean completion round — the
// expected-rounds figure the matrix reports for the randomized baseline.
func ExpectedRounds(g *graph.Graph, opt Options, trials int) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("algebraic: trials %d < 1", trials)
	}
	sum := 0
	for i := 0; i < trials; i++ {
		o := opt
		o.Seed = opt.Seed + int64(i)
		res, err := Run(g, o)
		if err != nil {
			return 0, err
		}
		sum += res.Rounds
	}
	return float64(sum) / float64(trials), nil
}
