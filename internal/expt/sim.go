package expt

import (
	"fmt"
	"math/rand"

	"multigossip/internal/implicit"
	"multigossip/internal/sim"
	"multigossip/internal/spantree"
)

// E28MillionNodeSim scales the Section 4 online protocol to a million
// processors: internal/sim runs ConcurrentUpDown as packed per-node state
// machines over sharded mailboxes, so each vertex acts only on its
// (i, j, k, w, n) labels and the messages it receives, and completion at
// exactly n + r is measured live rather than read off the schedule. Leaf
// fan-out folding accounts leaf deliveries arithmetically (a leaf only
// absorbs), which is what makes n = 10⁶ — a 10¹²-delivery run —
// tractable on one machine; the fold-off row simulates every point
// delivery individually, and the async row drops the round barrier under
// a uniform per-link latency model.
func (s *Suite) E28MillionNodeSim() *Table {
	t := &Table{
		ID:         "E28",
		Title:      "Extension — million-node distributed simulation of the online protocol",
		PaperClaim: "(§4) \"the information needed by each vertex ... is its label i, the value hi = j, its level k, and lip number w\" — the online variant needs O(1) local state, so nothing but simulator throughput caps n",
		Header:     []string{"engine", "topology", "n", "n+r", "complete at", "deliveries", "folded"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		plan *implicit.Plan
		opts sim.Options
	}{
		{"star (folded)", implicitStar(1_000_000), sim.Options{}},
		{"random recursive (exact)", implicitRecursive(rng, 8192), sim.Options{Fold: sim.FoldOff}},
		{"random recursive (async, uniform lat<=4)", implicitRecursive(rng, 4096),
			sim.Options{Async: true, Latency: sim.Uniform(4, uint64(s.Seed))}},
	}
	for _, c := range cases {
		n := c.plan.N()
		res, err := sim.Run(c.plan.Topo(), c.opts)
		if err != nil {
			t.Pass = false
			t.Rows = append(t.Rows, []string{"sync", c.name, itoa(n), "err: " + err.Error(), "", "", ""})
			continue
		}
		engine := "sync"
		if c.opts.Async {
			engine = "async"
		}
		if res.Deliveries != int64(n)*int64(n-1) {
			t.Pass = false
		}
		if !c.opts.Async && res.CompleteAt != c.plan.Rounds() {
			t.Pass = false
		}
		t.Rows = append(t.Rows, []string{
			engine, c.name, itoa(n), itoa(c.plan.Rounds()), itoa(res.CompleteAt),
			fmt.Sprintf("%d", res.Deliveries), fmt.Sprintf("%d", res.Folded),
		})
	}
	t.Notes = []string{
		"- the sync rows complete at exactly n + r, the Theorem 1 bound, measured from live message passing: every relay asserts its data dependency, so this is a simulation of the protocol, not a replay of the schedule",
		"- folding is behaviour-preserving (leaves only absorb); the exact row pushes all n(n-1) point deliveries through the mailboxes individually",
		"- the async row keeps full coverage without the round barrier; throughput (the n = 10⁶ star: 10¹² deliveries in ~0.25 s on one core) is recorded in BENCH_sim.json (`make sim-record`)",
	}
	return t
}

func implicitStar(n int) *implicit.Plan {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = 0
	}
	return implicit.New(spantree.Label(spantree.MustFromParents(parent)))
}

func implicitRecursive(rng *rand.Rand, n int) *implicit.Plan {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
	}
	return implicit.New(spantree.Label(spantree.MustFromParents(parent)))
}
