package expt

import (
	"math/rand"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/search"
	"multigossip/internal/spantree"
)

// E19LineOptimal verifies the Section 4 remark that a non-uniform protocol
// saves the last round on the line: the alternating-subtree schedule
// implemented in core.BuildLineOptimal meets the n + r - 1 lower bound
// exactly, so it is certified optimal without search.
func (s *Suite) E19LineOptimal() *Table {
	t := &Table{
		ID:         "E19",
		Title:      "Section 4 — non-uniform optimal line schedule (extension)",
		PaperClaim: "one may improve the performance of our algorithm by one unit, but the protocol will not be uniform: one needs to alternate the delivery of messages from different subtrees",
		Header:     []string{"m", "n", "lower bound n+r-1", "non-uniform schedule", "ConcurrentUpDown", "valid"},
		Pass:       true,
	}
	for _, m := range []int{1, 2, 4, 8, 32, 128} {
		n := 2*m + 1
		opt, err := core.BuildLineOptimal(m)
		if err != nil {
			t.Pass = false
			continue
		}
		g := graph.Path(n)
		res, verr := schedule.Run(g, opt, schedule.Options{RequireUseful: true})
		valid := verr == nil
		if valid {
			for _, h := range res.Holds {
				if !h.Full() {
					valid = false
				}
			}
		}
		cud, err := core.Gossip(g, core.ConcurrentUpDown)
		if err != nil {
			t.Pass = false
			continue
		}
		lower := n + m - 1
		t.Pass = t.Pass && valid && opt.Time() == lower && cud.Schedule.Time() == lower+1
		t.Rows = append(t.Rows, []string{
			itoa(m), itoa(n), itoa(lower), itoa(opt.Time()), itoa(cud.Schedule.Time()), yes(valid),
		})
	}
	// Exact-search cross-check on the smallest case.
	if opt, _, err := search.Exact(graph.Path(3), search.Multicast, 5, 0); err != nil || opt != 3 {
		t.Pass = false
	} else {
		t.Notes = append(t.Notes, "- exact search confirms the m=1 optimum is 3 = n + r - 1, matching the non-uniform schedule")
	}
	t.Notes = append(t.Notes,
		"- the protocol is indeed non-uniform: the right chain leads with its own message at time 0 while the left chain trails its own messages behind the opposite stream (asserted by TestLineOptimalNonUniform)")
	return t
}

// E20RootAblation ablates the Section 3.1 minimum-depth tree construction:
// ConcurrentUpDown's time is n + height(tree), so rooting the BFS tree
// anywhere other than a centre vertex costs exactly the eccentricity gap —
// up to a factor-2 radius penalty at a peripheral root.
func (s *Suite) E20RootAblation() *Table {
	t := &Table{
		ID:         "E20",
		Title:      "Ablation — why the minimum-depth spanning tree matters",
		PaperClaim: "the first step constructs a minimum-depth spanning tree (height = radius); any other root pays n + ecc(root) instead of n + r",
		Header:     []string{"family", "n", "r", "CUD @ centre root", "CUD @ worst root", "penalty rounds"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	for _, f := range families(96) {
		g := f.gen(rng)
		n := g.N()
		// Centre root via MinDepth.
		best, err := spantree.MinDepth(g)
		if err != nil {
			t.Pass = false
			continue
		}
		// Worst root: the vertex of maximum eccentricity.
		worstRoot, worstEcc := 0, -1
		for v := 0; v < n; v++ {
			if e := g.Eccentricity(v); e > worstEcc {
				worstRoot, worstEcc = v, e
			}
		}
		worst, err := spantree.BFSTree(g, worstRoot)
		if err != nil {
			t.Pass = false
			continue
		}
		centreTime := core.BuildConcurrentUpDown(spantree.Label(best)).Time()
		worstTime := core.BuildConcurrentUpDown(spantree.Label(worst)).Time()
		okRow := centreTime == n+best.Height && worstTime == n+worst.Height && centreTime <= worstTime
		t.Pass = t.Pass && okRow
		t.Rows = append(t.Rows, []string{
			f.name, itoa(n), itoa(best.Height), itoa(centreTime), itoa(worstTime), itoa(worstTime - centreTime),
		})
	}
	t.Notes = append(t.Notes,
		"- the penalty equals diameter - radius, up to r extra rounds (e.g. rooting a line at its end); on low-diameter families (hypercube, de Bruijn) the construction barely matters — exactly the paper's O(mn) tree step paying off only when eccentricities spread",
		"- the lip-message ablation is covered by GreedyUpDown in E18: without the time-0 lip sends the down stream stalls behind the up stream at every level")
	return t
}
