package expt

import (
	"fmt"
	"math/rand"

	"multigossip/internal/baseline"
	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/online"
	"multigossip/internal/schedule"
	"multigossip/internal/search"
	"multigossip/internal/spantree"
	"multigossip/internal/weighted"
)

// E14TelephoneSeparation quantifies Section 2's motivation: multicasting
// allows solutions with far fewer communication steps than the telephone
// model, most dramatically on high-fanout topologies.
func (s *Suite) E14TelephoneSeparation() *Table {
	t := &Table{
		ID:         "E14",
		Title:      "Section 2 — multicast vs. telephone model",
		PaperClaim: "multicasting allows communications to be performed much faster than the telephone model",
		Header:     []string{"network", "n", "ConcurrentUpDown (multicast)", "telephone greedy", "speedup"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"star n=64", graph.Star(64)},
		{"binary tree n=63", graph.KAryTree(63, 2)},
		{"4-ary tree n=85", graph.KAryTree(85, 4)},
		{"grid 8x8", graph.Grid(8, 8)},
		{"random G(64, 0.08)", graph.RandomConnected(rng, 64, 0.08)},
		{"sensor field n=64", graph.RandomGeometric(rng, 64, 0.17)},
	}
	for _, c := range cases {
		cud, err := core.Gossip(c.g, core.ConcurrentUpDown)
		if err != nil {
			t.Pass = false
			continue
		}
		tel, err := baseline.TelephoneGossip(c.g, 0)
		if err != nil {
			t.Pass = false
			continue
		}
		speedup := float64(tel.Time()) / float64(cud.Schedule.Time())
		// The shape claim: multicast never loses, and wins clearly on
		// high-fanout networks.
		t.Pass = t.Pass && tel.Time() >= cud.Schedule.Time()
		t.Rows = append(t.Rows, []string{
			c.name, itoa(c.g.N()), itoa(cud.Schedule.Time()), itoa(tel.Time()),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	return t
}

// E16Weighted exercises the Section 4 extension: weighted gossiping by
// chain splitting, validated end to end.
func (s *Suite) E16Weighted() *Table {
	t := &Table{
		ID:         "E16",
		Title:      "Section 4 — weighted gossiping via chain splitting",
		PaperClaim: "replace a processor with l messages by a chain of l processors; in practice one only mimics the splitting",
		Header:     []string{"network", "n", "total messages N", "expanded radius R", "expanded time (N+R)", "contracted time", "valid"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path n=9", graph.Path(9)},
		{"star n=12", graph.Star(12)},
		{"cycle n=16", graph.Cycle(16)},
		{"random G(20, 0.2)", graph.RandomConnected(rng, 20, 0.2)},
	}
	for _, c := range cases {
		counts := make([]int, c.g.N())
		for v := range counts {
			counts[v] = 1 + rng.Intn(4)
		}
		plan, err := weighted.Gossip(c.g, counts)
		if err != nil {
			t.Pass = false
			continue
		}
		res, verr := schedule.Run(c.g, plan.Schedule, schedule.Options{Initial: plan.InitialHolds()})
		valid := verr == nil
		if valid {
			for _, h := range res.Holds {
				if !h.Full() {
					valid = false
				}
			}
		}
		exact := plan.Expanded.Time() == plan.TotalMessages+plan.ExpandedRadius
		t.Pass = t.Pass && valid && exact
		t.Rows = append(t.Rows, []string{
			c.name, itoa(c.g.N()), itoa(plan.TotalMessages), itoa(plan.ExpandedRadius),
			itoa(plan.Expanded.Time()), itoa(plan.Schedule.Time()), yes(valid),
		})
	}
	return t
}

// E17Online verifies the Section 4 online adaptation: processors knowing
// only (i, j, k, w, n) and their tree neighbourhood reproduce the offline
// schedule exactly, executing as one goroutine each.
func (s *Suite) E17Online() *Table {
	t := &Table{
		ID:         "E17",
		Title:      "Section 4 — online (distributed) execution matches offline",
		PaperClaim: "the only global information needed is the value of i, j, and k; once disseminated, each processor may send its messages at the specified times",
		Header:     []string{"network", "n", "rounds", "identical to offline", "valid"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Fig. 4 network", graph.Fig4()},
		{"path n=17", graph.Path(17)},
		{"star n=32", graph.Star(32)},
		{"hypercube d=5", graph.Hypercube(5)},
		{"random tree n=64", graph.RandomTree(rng, 64)},
		{"random G(48, 0.1)", graph.RandomConnected(rng, 48, 0.1)},
	}
	for _, c := range cases {
		tr, err := spantree.MinDepth(c.g)
		if err != nil {
			t.Pass = false
			continue
		}
		l := spantree.Label(tr)
		got, err := online.Run(l, online.NewConcurrentUpDown(l), 0)
		if err != nil {
			t.Pass = false
			t.Rows = append(t.Rows, []string{c.name, itoa(c.g.N()), "-", "NO", "NO"})
			continue
		}
		want := core.BuildConcurrentUpDown(l)
		got.Normalize()
		want.Normalize()
		same := got.Equal(want)
		_, verr := schedule.CheckGossip(l.T.Graph(), got)
		t.Pass = t.Pass && same && verr == nil
		t.Rows = append(t.Rows, []string{c.name, itoa(c.g.N()), itoa(got.Time()), yes(same), yes(verr == nil)})
	}
	return t
}

// E18Comparative is the headline comparison: every algorithm on every
// family against the lower bound. The expected shape: ConcurrentUpDown
// tracks n + r; GreedyUpDown (the UpDown [15] reconstruction) lands between
// n + r and Simple's 2n + r - 3; the telephone baseline trails everything.
func (s *Suite) E18Comparative() *Table {
	t := &Table{
		ID:         "E18",
		Title:      "Comparative — lower bound vs. CUD vs. UpDown[15] vs. Simple vs. telephone",
		PaperClaim: "ConcurrentUpDown (n+r) improves on UpDown [15] (n-1+r plus a 2(r-1)+1 second phase) and on Simple (2n+r-3); multicasting beats the telephone model",
		Header:     []string{"family", "n", "r", "lower bound", "CUD (n+r)", "GreedyUpDown", "Simple", "telephone", "ordered"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	for _, f := range families(96) {
		g := f.gen(rng)
		tr, err := spantree.MinDepth(g)
		if err != nil {
			t.Pass = false
			continue
		}
		l := spantree.Label(tr)
		builders := core.GossipOnTree(tr)
		cud := builders[core.ConcurrentUpDown]().Schedule.Time()
		simple := builders[core.Simple]().Schedule.Time()
		gud, err := baseline.GreedyUpDown(l)
		if err != nil {
			t.Pass = false
			continue
		}
		tel, err := baseline.TelephoneGossip(g, 0)
		if err != nil {
			t.Pass = false
			continue
		}
		lower := search.LowerBound(g)
		// The defensible orderings: nothing beats the lower bound, CUD and
		// GreedyUpDown never exceed Simple, and CUD meets n + r exactly.
		ordered := lower <= cud && cud <= simple && gud.Time() <= simple &&
			gud.Time() >= lower && cud == g.N()+tr.Height
		t.Pass = t.Pass && ordered
		t.Rows = append(t.Rows, []string{
			f.name, itoa(g.N()), itoa(tr.Height), itoa(lower),
			itoa(cud), itoa(gud.Time()), itoa(simple), itoa(tel.Time()), yes(ordered),
		})
	}
	t.Notes = append(t.Notes,
		"- GreedyUpDown typically lands between n + r and 2n + r - 3 but can save one round over CUD on stars (it releases the root's own message early instead of at time n)",
		"- the telephone baseline runs on the *full* graph while the tree algorithms confine themselves to the spanning tree, so on cycle-like topologies (cycle, grid, hypercube) telephone-on-graph can beat multicast-on-tree; on high-fanout or sparse-tree topologies multicast wins by a wide margin (see E14)")
	return t
}
