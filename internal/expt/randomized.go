package expt

import (
	"fmt"
	"math/rand"

	"multigossip/internal/baseline"
	"multigossip/internal/core"
	"multigossip/internal/graph"
)

// E26Randomized compares the paper's offline scheduling against
// uncoordinated randomized push gossip (the approach of the cited
// randomized-broadcast line of work) under the same receive constraint:
// simultaneous pushes to one processor collide and all but one are lost.
// The gap is the value of coordination — moderate on expanders, an order
// of magnitude on hub topologies.
func (s *Suite) E26Randomized() *Table {
	t := &Table{
		ID:         "E26",
		Title:      "Extension — scheduled gossip vs. uncoordinated randomized push",
		PaperClaim: "(Section 2 context) randomized broadcast [6] needs no schedule, but under the one-receive rule uncoordinated pushes collide; offline scheduling (this paper) pays a one-time O(n) construction for collision-free n + r rounds",
		Header:     []string{"network", "n", "CUD (n+r)", "informed push (mean)", "blind push (mean)", "informed/CUD"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"complete n=16", graph.Complete(16)},
		{"cycle n=16", graph.Cycle(16)},
		{"star n=16", graph.Star(16)},
		{"grid 4x4", graph.Grid(4, 4)},
		{"random G(16, 0.3)", graph.RandomConnected(rng, 16, 0.3)},
	}
	for _, c := range cases {
		cud, err := core.Gossip(c.g, core.ConcurrentUpDown)
		if err != nil {
			t.Pass = false
			continue
		}
		informed, _, err := baseline.RandomizedMean(c.g, baseline.InformedPush, rng, 15, 200_000)
		if err != nil {
			t.Pass = false
			continue
		}
		blind, _, err := baseline.RandomizedMean(c.g, baseline.BlindPush, rng, 15, 200_000)
		if err != nil {
			t.Pass = false
			continue
		}
		sched := cud.Schedule.Time()
		// Shape claims: randomized never beats the scheduled rounds on
		// average, and blind never beats informed on these topologies.
		t.Pass = t.Pass && informed >= float64(sched) && blind >= informed
		t.Rows = append(t.Rows, []string{
			c.name, itoa(c.g.N()), itoa(sched),
			fmt.Sprintf("%.1f", informed), fmt.Sprintf("%.1f", blind),
			fmt.Sprintf("%.2fx", informed/float64(sched)),
		})
	}
	t.Notes = append(t.Notes,
		"- informed push assumes free knowledge of the receiver's holdings and still loses to the schedule through collisions and duplicate choices",
		"- blind push on the star is Θ(n² log n): the hub serves one random leaf per round with a mostly-redundant message — the strongest argument for the offline schedule")
	return t
}
