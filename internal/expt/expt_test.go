package expt

import (
	"strings"
	"testing"
)

// TestAllExperimentsReproduce runs the full suite and requires every
// experiment to report REPRODUCED — this is the repository's end-to-end
// statement that every figure, table and bound of the paper checks out.
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	suite := NewSuite()
	for _, table := range suite.All() {
		if !table.Pass {
			t.Errorf("%s (%s): MISMATCH\n%s", table.ID, table.Title, table.Markdown())
		}
		if table.ID == "" || table.Title == "" || table.PaperClaim == "" {
			t.Errorf("%s: incomplete metadata", table.ID)
		}
	}
}

func TestSuiteOrderAndIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	tables := NewSuite().All()
	if len(tables) != 29 {
		t.Fatalf("suite has %d experiments, want 29", len(tables))
	}
	for i, table := range tables {
		want := "E" + itoa(i+1)
		if table.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, table.ID, want)
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	table := &Table{
		ID: "E0", Title: "demo", PaperClaim: "claim",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"- note"},
		Pass:   true,
	}
	md := table.Markdown()
	for _, want := range []string{"## E0 — demo", "**Paper:** claim", "| a | b |", "| 1 | 2 |", "- note", "REPRODUCED"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	table.Pass = false
	if !strings.Contains(table.Markdown(), "MISMATCH") {
		t.Error("failed table not marked MISMATCH")
	}
}

func TestRenderContainsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	out := NewSuite().Render()
	for i := 1; i <= 27; i++ {
		if !strings.Contains(out, "## E"+itoa(i)+" ") {
			t.Errorf("render missing experiment E%d", i)
		}
	}
	if !strings.Contains(out, "# EXPERIMENTS") {
		t.Error("render missing preamble")
	}
}

// TestParallelMatchesSerial: the concurrent suite must produce byte-equal
// reports to the serial one (every experiment is independently seeded),
// which also proves the experiments are deterministic.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	serial := NewSuite().All()
	parallel := NewSuite().AllParallel()
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Markdown() != parallel[i].Markdown() {
			t.Errorf("%s: parallel output differs from serial", serial[i].ID)
		}
	}
}
