package expt

import (
	"fmt"
	"math/rand"

	"multigossip/internal/async"
	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/pipeline"
	"multigossip/internal/spantree"
)

// E24BarrierMakespan estimates wall-clock makespan on barrier-synchronised
// hardware (the paper's Meiko CS-2 framing: "synchronization may be
// achieved ... through software barriers") with jittered link latencies.
// Fewer rounds win proportionally, and jitter widens the gap because every
// round pays a max-of-k latency draw.
func (s *Suite) E24BarrierMakespan() *Table {
	t := &Table{
		ID:         "E24",
		Title:      "Extension — barrier-synchronised makespan under latency jitter",
		PaperClaim: "(Section 2 framing) rounds are synchronised by software barriers, so total wall-clock time is rounds x (slowest link + barrier); the n + r round count is what the algorithm optimises",
		Header:     []string{"network", "algorithm", "rounds", "makespan (no jitter)", "makespan (jitter=1)", "vs CUD"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"star n=64", graph.Star(64)},
		{"grid 8x8", graph.Grid(8, 8)},
		{"random tree n=64", graph.RandomTree(rng, 64)},
	}
	for _, c := range cases {
		tr, err := spantree.MinDepth(c.g)
		if err != nil {
			t.Pass = false
			continue
		}
		builders := core.GossipOnTree(tr)
		cudFlat := 0.0
		for _, algo := range []core.Algorithm{core.ConcurrentUpDown, core.Simple} {
			sched := builders[algo]().Schedule
			flat, err := async.Makespan(sched, async.UniformJitter{Base: 1}, 0.2, 1, rng)
			if err != nil {
				t.Pass = false
				continue
			}
			jit, err := async.Makespan(sched, async.UniformJitter{Base: 1, Jitter: 1}, 0.2, 25, rng)
			if err != nil {
				t.Pass = false
				continue
			}
			if algo == core.ConcurrentUpDown {
				cudFlat = flat.Makespan
			}
			ratio := flat.Makespan / cudFlat
			// Shape: Simple costs more in proportion to its round count.
			if algo == core.Simple && flat.Makespan <= cudFlat {
				t.Pass = false
			}
			if jit.Makespan <= flat.Makespan {
				t.Pass = false // jitter can only slow a round down
			}
			t.Rows = append(t.Rows, []string{
				c.name, algo.String(), itoa(sched.Time()),
				fmt.Sprintf("%.1f", flat.Makespan), fmt.Sprintf("%.1f", jit.Makespan),
				fmt.Sprintf("%.2fx", ratio),
			})
		}
	}
	t.Notes = append(t.Notes,
		"- with unit latencies the makespan ratio equals the round-count ratio (2n+r-3)/(n+r) — about 2x for shallow networks, exactly what Theorem 1 buys",
		"- under jitter each round costs a max over its concurrent transmissions, so dense rounds pay slightly more per round but far fewer rounds still dominate")
	return t
}

// E25PipelineThroughput measures steady-state throughput of repeated
// gossiping: the minimum feasible period between successive operations.
// ConcurrentUpDown's receive slots are nearly dense — the very property
// that makes it meet n + r — so the period is close to the latency:
// throughput ~ 1/latency, and the paper's amortisation argument (reuse the
// tree, re-run the schedule) is the right one; there is no hidden
// pipelining capacity to exploit.
func (s *Suite) E25PipelineThroughput() *Table {
	t := &Table{
		ID:         "E25",
		Title:      "Extension — steady-state period of repeated gossiping",
		PaperClaim: "\"in many applications, one has to execute the gossiping algorithms a large number of times\" (Section 4) — what is the minimum period between successive operations?",
		Header:     []string{"network", "n", "latency n+r", "receive bound n-1", "min period", "period/latency"},
		Pass:       true,
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"star n=16", graph.Star(16)},
		{"path n=15", graph.Path(15)},
		{"cycle n=16", graph.Cycle(16)},
		{"grid 4x4", graph.Grid(4, 4)},
		{"binary tree n=15", graph.KAryTree(15, 2)},
	}
	for _, c := range cases {
		tr, err := spantree.MinDepth(c.g)
		if err != nil {
			t.Pass = false
			continue
		}
		sched := core.GossipOnTree(tr)[core.ConcurrentUpDown]().Schedule
		p, err := pipeline.MinPeriod(c.g, sched, 3, sched.Time()+1)
		if err != nil {
			t.Pass = false
			continue
		}
		n := c.g.N()
		ok := p >= n-1 && p <= sched.Time()
		t.Pass = t.Pass && ok
		t.Rows = append(t.Rows, []string{
			c.name, itoa(n), itoa(sched.Time()), itoa(n - 1), itoa(p),
			fmt.Sprintf("%.2f", float64(p)/float64(sched.Time())),
		})
	}
	t.Notes = append(t.Notes,
		"- the min period always lands between the receive-capacity bound n-1 and the latency n+r; the gap to the latency is at most r+1, so back-to-back repetition loses almost nothing",
		"- measured by overlaying 3 shifted copies and machine-validating the composition under the model")
	return t
}
