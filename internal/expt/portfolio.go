package expt

import (
	"fmt"
	"math/rand"

	"multigossip"
)

// E29Portfolio runs every algorithm in the planner registry over the
// scenario matrix's topology classes and holds each schedule to its
// registered rounds bound. The paper proves n + r for ConcurrentUpDown
// and 2n + r - 3 for Simple; the portfolio places those two inside a
// field of competing models — pipelined tree floods, randomized GF(2)
// network coding, Section 4's weighted gossiping run with unit counts,
// and the collision-constrained beep variant — all planned through one
// registry, one cache keyspace and one serving surface.
func (s *Suite) E29Portfolio() *Table {
	t := &Table{
		ID:         "E29",
		Title:      "Extension — algorithm portfolio over one scenario matrix",
		PaperClaim: "(§5) \"It would be interesting to study our problems under different communication models\" — every registered algorithm must plan, verify and stay within its registered rounds bound on every topology class",
		Header:     []string{"algorithm", "topology", "n", "r", "rounds", "bound", "bound form", "verified"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	nets := []struct {
		name string
		nw   *multigossip.Network
	}{
		{"ring", multigossip.Ring(16)},
		{"grid", multigossip.Mesh(4, 4)},
		{"random tree", multigossip.RandomTreeNetwork(rng, 16)},
	}
	for _, info := range multigossip.Algorithms() {
		for _, tc := range nets {
			plan, err := tc.nw.PlanGossip(
				multigossip.WithAlgorithm(info.ID), multigossip.WithSeed(s.Seed))
			if err != nil {
				t.Pass = false
				t.Rows = append(t.Rows, []string{info.Name, tc.name, "err: " + err.Error(), "", "", "", "", ""})
				continue
			}
			verified := plan.Verify() == nil
			n, r := tc.nw.Processors(), plan.Radius()
			bound := info.Bound(multigossip.AlgorithmBoundParams{
				N: n, Radius: r, Diameter: tc.nw.Diameter(), Messages: n, ExpandedRadius: r,
			})
			within := plan.Rounds() <= bound
			if !verified || !within {
				t.Pass = false
			}
			t.Rows = append(t.Rows, []string{
				info.Name, tc.name, itoa(n), itoa(r), itoa(plan.Rounds()),
				itoa(bound), info.BoundName, fmt.Sprint(verified),
			})
		}
	}
	t.Notes = []string{
		"- one registry (internal/algo) carries each entry's identity, accepted names, capability flags and bound; the public Algorithm and core enums are type aliases of it, and gossipd's `algorithm=` parser and its unknown-name hint derive from it",
		"- ConcurrentUpDown and Weighted (unit counts collapse the chain expansion to the identity) meet n + r exactly; Simple meets 2n + r - 3 exactly; the Algebraic rows are a seeded randomized baseline whose realized rounds sit far below the registered high-probability bound",
		"- the full matrix — 6 algorithms × {ring, grid, random} × {fault-free, 10% link loss} × n ∈ {16, 36, 64}, lossy cells healed to completion — is recorded in BENCH_matrix.json (`make matrix-record`) and gated per PR by `make matrix-smoke`",
	}
	return t
}
