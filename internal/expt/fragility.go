package expt

import (
	"fmt"
	"math/rand"

	"multigossip/internal/core"
	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/spantree"
)

// E21Fragility quantifies the flip side of optimality: ConcurrentUpDown's
// zero-waste schedule (E10) has no redundancy, so under the (lossless)
// model it is optimal but every single delivery is critical; Simple's
// wasted deliveries buy measurable slack. The paper's model is lossless —
// this experiment is an extension characterising what the optimality
// costs if the assumption is relaxed.
func (s *Suite) E21Fragility() *Table {
	t := &Table{
		ID:         "E21",
		Title:      "Extension — single-drop criticality: optimal means zero slack",
		PaperClaim: "(implied by Theorem 1 + the model) ConcurrentUpDown performs no redundant delivery, so in a lossless model it is n + r optimal; consequently every delivery is load-bearing",
		Header:     []string{"network", "algorithm", "deliveries", "critical", "fraction", "coverage @ 2% loss"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path n=9", graph.Path(9)},
		{"star n=10", graph.Star(10)},
		{"binary tree n=15", graph.KAryTree(15, 2)},
		{"random tree n=14", graph.RandomTree(rng, 14)},
	}
	for _, c := range cases {
		tr, err := spantree.MinDepth(c.g)
		if err != nil {
			t.Pass = false
			continue
		}
		builders := core.GossipOnTree(tr)
		for _, algo := range []core.Algorithm{core.ConcurrentUpDown, core.Simple} {
			sched := builders[algo]().Schedule
			rep, err := fault.Criticality(c.g, sched)
			if err != nil {
				t.Pass = false
				continue
			}
			cov, err := fault.RandomLoss(c.g, sched, 0.02, 40, rng)
			if err != nil {
				t.Pass = false
				continue
			}
			// The shape claims: CUD is fully critical; Simple never more so.
			if algo == core.ConcurrentUpDown && rep.Fraction != 1.0 {
				t.Pass = false
			}
			if algo == core.Simple && rep.Fraction >= 1.0 {
				t.Pass = false // Simple always re-delivers into owner subtrees
			}
			t.Rows = append(t.Rows, []string{
				c.name, algo.String(), itoa(rep.Deliveries), itoa(rep.Critical),
				fmt.Sprintf("%.3f", rep.Fraction), fmt.Sprintf("%.3f", cov),
			})
		}
	}
	t.Notes = append(t.Notes,
		"- ConcurrentUpDown: criticality 1.000 everywhere — the n + r bound is achieved precisely because nothing is sent twice",
		"- Simple tolerates drops of deliveries into subtrees that already hold the message (its up-relay duplicates); the tolerance grows with tree depth")
	return t
}
