package expt

import (
	"math/rand"

	"multigossip/internal/baseline"
	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// E27KPortSweep studies the k-port extension of the model: letting each
// processor receive up to k messages per round relaxes the constraint the
// paper's n-1 lower bound rests on. On dense topologies the time tracks
// the relaxed receive bound ceil((n-1)/k); on sparse ones distance terms
// take over and extra ports stop helping — the dual of the fanout sweep
// in E22.
func (s *Suite) E27KPortSweep() *Table {
	t := &Table{
		ID:         "E27",
		Title:      "Extension — k-port receive sweep: relaxing the one-receive rule",
		PaperClaim: "(model rule 1) \"each processor may receive at most one message\" — the n-1 receive bottleneck; k ports relax it to ceil((n-1)/k)",
		Header:     []string{"network", "bound k=1", "ports=1", "ports=2", "ports=4", "ports=8", "CUD (1-port, n+r)"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"complete n=33", graph.Complete(33)},
		{"star n=33", graph.Star(33)},
		{"grid 6x6", graph.Grid(6, 6)},
		{"random G(32, 0.2)", graph.RandomConnected(rng, 32, 0.2)},
		{"path n=17", graph.Path(17)},
	}
	for _, c := range cases {
		n := c.g.N()
		row := []string{c.name, itoa(n - 1)}
		prev := 1 << 30
		ok := true
		for _, ports := range []int{1, 2, 4, 8} {
			sched, err := baseline.KPortGossip(c.g, ports, 0)
			if err != nil {
				ok = false
				row = append(row, "err")
				continue
			}
			res, verr := schedule.Run(c.g, sched, schedule.Options{RecvPorts: ports})
			if verr != nil {
				ok = false
			} else {
				for _, h := range res.Holds {
					if !h.Full() {
						ok = false
					}
				}
			}
			lower := (n - 2 + ports) / ports
			if sched.Time() < lower || sched.Time() > prev+2 {
				ok = false
			}
			prev = sched.Time()
			row = append(row, itoa(sched.Time()))
		}
		cud, err := core.Gossip(c.g, core.ConcurrentUpDown)
		if err != nil {
			ok = false
			row = append(row, "err")
		} else {
			row = append(row, itoa(cud.Schedule.Time()))
		}
		t.Pass = t.Pass && ok
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"- on K_n the measured times halve per port doubling, tracking ceil((n-1)/k) exactly — there the receive rule is the only binding constraint",
		"- the star does NOT improve: every message flows through the hub, which still sends one multicast per round, so the hub's send capacity (~n rounds) binds regardless of receive ports",
		"- on the path the distance terms dominate and ports barely help: the paper's n + r is already within a constant of optimal regardless of ports")
	return t
}
