package expt

import (
	"fmt"
	"math/rand"

	"multigossip/internal/baseline"
	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/search"
	"multigossip/internal/spantree"
	"multigossip/internal/trace"
)

// E1RingRotation reproduces Fig. 1: on a Hamiltonian ring the rotation
// schedule completes gossiping in the optimal n - 1 rounds.
func (s *Suite) E1RingRotation() *Table {
	t := &Table{
		ID:         "E1",
		Title:      "Fig. 1 — gossiping on the ring N1 by rotation",
		PaperClaim: "on network N1 each processor forwards to its clockwise neighbour; total communication time n - 1, which is optimal",
		Header:     []string{"n", "rotation rounds", "lower bound n-1", "valid", "optimal"},
		Pass:       true,
	}
	for _, n := range []int{8, 16, 64, 256, 1024} {
		g := graph.Cycle(n)
		circuit := make([]int, n)
		for i := range circuit {
			circuit[i] = i
		}
		sched, err := baseline.RingRotation(g, circuit)
		valid := err == nil
		if valid {
			_, err = schedule.CheckGossip(g, sched)
			valid = err == nil
		}
		optimal := valid && sched.Time() == n-1
		t.Pass = t.Pass && optimal
		t.Rows = append(t.Rows, []string{itoa(n), itoa(sched.Time()), itoa(n - 1), yes(valid), yes(optimal)})
	}
	// Exact certification on small rings.
	for _, n := range []int{4, 5} {
		opt, _, err := search.Exact(graph.Cycle(n), search.Multicast, n+2, 0)
		cert := err == nil && opt == n-1
		t.Pass = t.Pass && cert
		t.Notes = append(t.Notes, fmt.Sprintf("- exact search certifies C%d optimum = %d (= n-1): %s", n, opt, yes(cert)))
	}
	return t
}

// E2Petersen reproduces Fig. 2: the Petersen graph has no Hamiltonian
// circuit yet admits gossiping in n - 1 = 9 rounds.
func (s *Suite) E2Petersen() *Table {
	t := &Table{
		ID:         "E2",
		Title:      "Fig. 2 — the Petersen graph N2",
		PaperClaim: "the Petersen graph has no Hamiltonian circuit, but gossiping can be performed in n - 1 = 9 steps (even under the telephone model)",
		Header:     []string{"quantity", "paper", "measured"},
		Pass:       true,
	}
	g := graph.Petersen()
	_, ham := graph.HamiltonianCircuit(g, 0)
	t.Rows = append(t.Rows, []string{"Hamiltonian circuit exists", "no", noOrYes(ham)})
	t.Pass = t.Pass && !ham

	rng := rand.New(rand.NewSource(s.Seed))
	multi, err := search.Greedy(g, search.Multicast, rng, 600)
	if err != nil {
		t.Pass = false
		t.Notes = append(t.Notes, "- multicast greedy failed: "+err.Error())
	} else {
		t.Rows = append(t.Rows, []string{"multicast gossip rounds", "9", itoa(multi.Time())})
		t.Pass = t.Pass && multi.Time() == 9
	}
	tel, err := baseline.PetersenNineRounds()
	if err != nil {
		t.Pass = false
		t.Notes = append(t.Notes, "- constructed telephone schedule failed validation: "+err.Error())
	} else {
		t.Rows = append(t.Rows, []string{"telephone gossip rounds (constructed, certified)", "9", itoa(tel.Time())})
		t.Pass = t.Pass && tel.Time() == 9
		t.Notes = append(t.Notes, "- the 9-round telephone schedule is constructed explicitly from the Petersen 2-factor (rotate outer+inner 5-cycles, spoke-exchange, rotate the cross messages) and machine-verified: unicasts only, every vertex receives a new message in every round, so n-1 is met with equality")
	}
	cud, err := core.Gossip(g, core.ConcurrentUpDown)
	if err == nil {
		t.Rows = append(t.Rows, []string{"ConcurrentUpDown rounds (n + r)", "12", itoa(cud.Schedule.Time())})
		t.Pass = t.Pass && cud.Schedule.Time() == 12
	}
	return t
}

// E3Separation reproduces Fig. 3 via the certified stand-in (DESIGN.md,
// substitution 1): a non-Hamiltonian network where multicast gossiping
// meets the n - 1 bound but the telephone model cannot.
func (s *Suite) E3Separation() *Table {
	t := &Table{
		ID:         "E3",
		Title:      "Fig. 3 — network N3: multicast n-1, telephone > n-1 (stand-in K_{2,3})",
		PaperClaim: "N3 has no Hamiltonian circuit; gossiping takes n - 1 steps under multicasting but not under the telephone model",
		Header:     []string{"quantity", "required", "measured (exact)"},
		Pass:       true,
	}
	g := graph.N3StandIn()
	_, ham := graph.HamiltonianCircuit(g, 0)
	t.Rows = append(t.Rows, []string{"Hamiltonian circuit exists", "no", noOrYes(ham)})
	t.Pass = t.Pass && !ham
	multi, _, err := search.Exact(g, search.Multicast, 8, 0)
	if err != nil {
		t.Pass = false
		t.Notes = append(t.Notes, "- exact multicast search failed: "+err.Error())
		return t
	}
	t.Rows = append(t.Rows, []string{"multicast optimum", "n-1 = 4", itoa(multi)})
	t.Pass = t.Pass && multi == 4
	tel, _, err := search.Exact(g, search.Telephone, 8, 0)
	if err != nil {
		t.Pass = false
		t.Notes = append(t.Notes, "- exact telephone search failed: "+err.Error())
		return t
	}
	t.Rows = append(t.Rows, []string{"telephone optimum", "> 4", itoa(tel)})
	t.Pass = t.Pass && tel > 4
	return t
}

// fig5 returns the reconstructed Fig. 5 labelled tree.
func fig5() *spantree.Labeled {
	return spantree.Label(spantree.MustFromParents(graph.Fig5TreeParents()))
}

// E4TreeConstruction reproduces Figs. 4 and 5: building the minimum-depth
// spanning tree of the 16-processor network and labelling it in DFS order.
func (s *Suite) E4TreeConstruction() *Table {
	t := &Table{
		ID:         "E4",
		Title:      "Figs. 4 & 5 — minimum-depth spanning tree and DFS labels",
		PaperClaim: "n BFS traversals yield a spanning tree of height = radius (here 3); messages are labelled 0..15 in DFS order",
		Header:     []string{"quantity", "paper", "measured"},
		Pass:       true,
	}
	g := graph.Fig4()
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Pass = false
		return t
	}
	t.Rows = append(t.Rows, []string{"network radius", "3", itoa(g.Radius())})
	t.Rows = append(t.Rows, []string{"tree height", "3", itoa(tr.Height)})
	t.Pass = t.Pass && g.Radius() == 3 && tr.Height == 3
	l := spantree.Label(tr)
	identity := true
	for v := 0; v < l.N(); v++ {
		if l.LabelOf[v] != v {
			identity = false
		}
	}
	t.Rows = append(t.Rows, []string{"DFS labels match Fig. 5 vertex numbers", "yes", yes(identity)})
	t.Pass = t.Pass && identity
	t.Notes = append(t.Notes, "```", trace.FormatTree(tr, func(v int) string {
		return fmt.Sprintf("[msg %d, level %d]", l.LabelOf[v], tr.Level[v])
	}), "```")
	return t
}

// tableExperiment regenerates one of the paper's per-vertex schedule tables.
func (s *Suite) tableExperiment(id string, vertex int, claim string) *Table {
	t := &Table{
		ID:         id,
		Title:      fmt.Sprintf("Table %s — ConcurrentUpDown timetable of the vertex with message %d in Fig. 5", id[1:], vertex),
		PaperClaim: claim,
		Pass:       true,
	}
	l := fig5()
	sched := core.BuildConcurrentUpDown(l)
	if _, err := schedule.CheckGossip(l.T.Graph(), sched); err != nil {
		t.Pass = false
		t.Notes = append(t.Notes, "- schedule invalid: "+err.Error())
		return t
	}
	if sched.Time() != 19 {
		t.Pass = false
	}
	vt := schedule.VertexView(sched, l.T, vertex)
	t.Notes = append(t.Notes, "```", trace.FormatTimetable(vt), "```",
		fmt.Sprintf("- total communication time %d = n + r = 16 + 3 (cell-for-cell agreement with the paper is asserted by the golden tests in internal/core)", sched.Time()))
	return t
}

// E5Table1 regenerates the paper's Table 1 (the root's schedule).
func (s *Suite) E5Table1() *Table {
	return s.tableExperiment("E5", 0,
		"the root receives message i at time i and multicasts it the same time unit; its own message 0 goes out at time n = 16")
}

// E6Table2 regenerates Table 2 (vertex with message 1).
func (s *Suite) E6Table2() *Table {
	return s.tableExperiment("E6", 1,
		"the first child of the root sends its lip-message 1 at time 0, relays 2 and 3, and forwards o-messages 4..15 and 0 as they arrive; its delayed s-message goes down at time 3")
}

// E7Table3 regenerates Table 3 (vertex with message 4).
func (s *Suite) E7Table3() *Table {
	return s.tableExperiment("E7", 4,
		"messages 2 and 3 are the delayed o-messages at this vertex, going down at times 10 and 11 after the b-message window")
}

// E8Table4 regenerates Table 4 (vertex with message 8).
func (s *Suite) E8Table4() *Table {
	return s.tableExperiment("E8", 8,
		"messages 6 and 7 are the delayed o-messages at this vertex; the schedule runs to time 18 = n + k with k = 2")
}
