// Package expt is the experiment harness: every figure and table of the
// paper, plus each proved bound, is an experiment that regenerates the
// corresponding artefact and reports paper-vs-measured rows. cmd/experiments
// renders the full suite into EXPERIMENTS.md; bench_test.go wraps each
// experiment as a benchmark so `go test -bench` regenerates everything.
package expt

import (
	"fmt"
	"strings"
	"sync"
)

// Table is one experiment's report.
type Table struct {
	ID         string   // e.g. "E10"
	Title      string   // short description
	PaperClaim string   // what the paper states
	Header     []string // column names
	Rows       [][]string
	Notes      []string // free-form lines (e.g. regenerated paper tables)
	Pass       bool     // whether the measured shape matches the claim
}

// Markdown renders the table as a Markdown section.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "**Paper:** %s\n\n", t.PaperClaim)
	status := "REPRODUCED"
	if !t.Pass {
		status = "MISMATCH"
	}
	fmt.Fprintf(&b, "**Status:** %s\n\n", status)
	if len(t.Header) > 0 {
		b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
		seps := make([]string, len(t.Header))
		for i := range seps {
			seps[i] = "---"
		}
		b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
		for _, row := range t.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		b.WriteString("\n")
	}
	for _, note := range t.Notes {
		b.WriteString(note + "\n")
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}

// Suite runs experiments reproducibly from a fixed seed.
type Suite struct {
	Seed int64
}

// NewSuite returns a Suite with the default seed used by EXPERIMENTS.md.
func NewSuite() *Suite { return &Suite{Seed: 20010425} } // IPDPS 2001 vintage

// All runs every experiment in order.
func (s *Suite) All() []*Table {
	return []*Table{
		s.E1RingRotation(),
		s.E2Petersen(),
		s.E3Separation(),
		s.E4TreeConstruction(),
		s.E5Table1(),
		s.E6Table2(),
		s.E7Table3(),
		s.E8Table4(),
		s.E9SimpleBound(),
		s.E10CUDBound(),
		s.E11OddLine(),
		s.E12ApproxRatio(),
		s.E13Broadcast(),
		s.E14TelephoneSeparation(),
		s.E15MinDepthTree(),
		s.E16Weighted(),
		s.E17Online(),
		s.E18Comparative(),
		s.E19LineOptimal(),
		s.E20RootAblation(),
		s.E21Fragility(),
		s.E22FanoutSweep(),
		s.E23OptimalityGap(),
		s.E24BarrierMakespan(),
		s.E25PipelineThroughput(),
		s.E26Randomized(),
		s.E27KPortSweep(),
		s.E28MillionNodeSim(),
		s.E29Portfolio(),
	}
}

// AllParallel runs every experiment concurrently (one goroutine each) and
// returns them in suite order. Experiments are independent — each seeds
// its own random source from s.Seed — so the results are identical to
// All()'s; the suite wall-clock drops to the slowest single experiment.
func (s *Suite) AllParallel() []*Table {
	runs := []func() *Table{
		s.E1RingRotation, s.E2Petersen, s.E3Separation, s.E4TreeConstruction,
		s.E5Table1, s.E6Table2, s.E7Table3, s.E8Table4,
		s.E9SimpleBound, s.E10CUDBound, s.E11OddLine, s.E12ApproxRatio,
		s.E13Broadcast, s.E14TelephoneSeparation, s.E15MinDepthTree,
		s.E16Weighted, s.E17Online, s.E18Comparative, s.E19LineOptimal,
		s.E20RootAblation, s.E21Fragility, s.E22FanoutSweep,
		s.E23OptimalityGap, s.E24BarrierMakespan, s.E25PipelineThroughput,
		s.E26Randomized, s.E27KPortSweep, s.E28MillionNodeSim,
		s.E29Portfolio,
	}
	out := make([]*Table, len(runs))
	var wg sync.WaitGroup
	for i, run := range runs {
		wg.Add(1)
		go func(i int, run func() *Table) {
			defer wg.Done()
			out[i] = run()
		}(i, run)
	}
	wg.Wait()
	return out
}

const preamble = `# EXPERIMENTS — paper vs. measured

Regenerate with ` + "`go run ./cmd/experiments > EXPERIMENTS.md`" + ` or inspect
individual experiments via ` + "`go test -bench 'BenchmarkE' -benchmem .`" + `.
The paper is analytical; its artefacts are worked examples (Figs. 1-5,
Tables 1-4) and proved bounds (Lemma 1, Theorem 1, the line lower bound,
the 1.5-approximation remark). Each experiment regenerates one artefact and
compares against the stated claim. Absolute wall-clock numbers are
irrelevant (the substrate is a simulator); the reproduced quantity is the
schedule length in communication rounds, which is exact.

`

// Render produces the complete EXPERIMENTS.md body.
func (s *Suite) Render() string {
	return render(s.All())
}

// RenderParallel is Render with the experiments computed concurrently; the
// output is byte-identical because the experiments are deterministic and
// independently seeded.
func (s *Suite) RenderParallel() string {
	return render(s.AllParallel())
}

func render(tables []*Table) string {
	var b strings.Builder
	b.WriteString(preamble)
	for _, t := range tables {
		b.WriteString(t.Markdown())
	}
	return b.String()
}

func itoa(x int) string { return fmt.Sprint(x) }

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// noOrYes renders an existence fact plainly ("no"/"yes"), for rows whose
// expected answer is "no".
func noOrYes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
