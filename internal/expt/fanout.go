package expt

import (
	"fmt"
	"math/rand"

	"multigossip/internal/baseline"
	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// E22FanoutSweep interpolates between the telephone model and the paper's
// unrestricted multicast by capping the multicast fanout: in the wireless
// framing of Section 2, the cap is how many receivers one transmission's
// power reaches. The sweep shows where the multicast advantage saturates —
// high-fanout topologies (stars) keep improving all the way, while bounded
// -degree topologies saturate at their maximum degree.
func (s *Suite) E22FanoutSweep() *Table {
	t := &Table{
		ID:         "E22",
		Title:      "Extension — fanout-capped multicast: telephone → multicast interpolation",
		PaperClaim: "(Section 2 framing) multicasting is a powerful primitive; a transmission with power r^alpha reaches all receivers within distance r — the cap measures how much of that power the schedule actually needs",
		Header:     []string{"network", "fanout 1 (telephone)", "fanout 2", "fanout 4", "fanout 8", "unbounded greedy", "CUD (n+r)"},
		Pass:       true,
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"star n=32", graph.Star(32)},
		{"binary tree n=31", graph.KAryTree(31, 2)},
		{"grid 6x6", graph.Grid(6, 6)},
		{"random G(32, 0.15)", graph.RandomConnected(rng, 32, 0.15)},
	}
	for _, c := range cases {
		row := []string{c.name}
		times := make([]int, 0, 5)
		ok := true
		for _, fanout := range []int{1, 2, 4, 8, c.g.N()} {
			sched, err := baseline.CappedGossip(c.g, fanout, 0)
			if err != nil {
				ok = false
				row = append(row, "err")
				continue
			}
			if _, err := schedule.CheckGossip(c.g, sched); err != nil {
				ok = false
			}
			times = append(times, sched.Time())
			row = append(row, itoa(sched.Time()))
		}
		cud, err := core.Gossip(c.g, core.ConcurrentUpDown)
		if err != nil {
			ok = false
			row = append(row, "err")
		} else {
			row = append(row, itoa(cud.Schedule.Time()))
		}
		// Shape: times non-increasing in the cap (greedy noise tolerance of
		// a couple of rounds).
		for i := 1; i < len(times); i++ {
			if times[i] > times[i-1]+2 {
				ok = false
			}
		}
		t.Pass = t.Pass && ok
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("- on the star the telephone time is quadratic ((n-1)^2) and halves with every doubling of the cap until it approaches n + 1 — the strongest version of the paper's Section 2 separation"),
		"- bounded-degree topologies saturate once the cap reaches the maximum degree: extra transmit power buys nothing, which is why the paper's unbounded-subset primitive loses nothing on such networks")
	return t
}
