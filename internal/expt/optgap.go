package expt

import (
	"fmt"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/search"
	"multigossip/internal/spantree"
)

// E23OptimalityGap measures how far ConcurrentUpDown's n + r sits from the
// true optimum, exhaustively: for every labelled tree on 4 and 5 vertices
// the exact branch-and-bound optimum is computed and compared. The paper
// proves the gap is at most r (since the optimum is at least n - 1 and at
// least n + r - 1 on lines); this experiment shows the actual distribution.
func (s *Suite) E23OptimalityGap() *Table {
	t := &Table{
		ID:         "E23",
		Title:      "Extension — exact optimality gap of n + r on all small trees",
		PaperClaim: "(Theorem 1 + Section 4) the schedule is within 1.5x of optimal; on lines it is within one round — how tight is n + r in general?",
		Header:     []string{"n", "trees", "gap 0", "gap 1", "gap 2", "gap >= 3", "max gap", "mean optimum", "mean n+r"},
		Pass:       true,
	}
	// n = 4 and 5 exhaustively; n = 6 on a deterministic 1-in-8 sample of
	// the 1296 labelled trees (the full sweep takes ~12 s and adds nothing:
	// a complete offline run observed the same max gap of 2).
	for _, n := range []int{4, 5, 6} {
		stride := 1
		if n == 6 {
			stride = 8
		}
		gapCount := map[int]int{}
		trees, sumOpt, sumCUD, maxGap := 0, 0, 0, 0
		seen := 0
		ok := true
		graph.AllTrees(n, func(g *graph.Graph) bool {
			seen++
			if (seen-1)%stride != 0 {
				return true
			}
			trees++
			tr, err := spantree.MinDepth(g)
			if err != nil {
				ok = false
				return false
			}
			cud := core.BuildConcurrentUpDown(spantree.Label(tr)).Time()
			opt, _, err := search.Exact(g, search.Multicast, cud, 0)
			if err != nil {
				ok = false
				return false
			}
			gap := cud - opt
			if gap < 0 {
				ok = false // CUD can never beat the optimum
				return false
			}
			if gap > maxGap {
				maxGap = gap
			}
			if gap >= 3 {
				gapCount[3]++
			} else {
				gapCount[gap]++
			}
			sumOpt += opt
			sumCUD += cud
			return true
		})
		t.Pass = t.Pass && ok && trees > 0
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(trees), itoa(gapCount[0]), itoa(gapCount[1]), itoa(gapCount[2]),
			itoa(gapCount[3]), itoa(maxGap),
			fmt.Sprintf("%.2f", float64(sumOpt)/float64(trees)),
			fmt.Sprintf("%.2f", float64(sumCUD)/float64(trees)),
		})
	}
	t.Notes = append(t.Notes,
		"- gap 0 means ConcurrentUpDown is exactly optimal on that tree; the maximum observed gap stays at or below the radius, consistent with the n-1 <= opt <= n+r squeeze",
		"- n = 4, 5 are exhaustive over every labelled tree (Cayley: n^{n-2} of them); n = 6 is a deterministic 1-in-8 sample, each instance solved to optimality by branch and bound")
	return t
}
