package pipelined

import (
	"fmt"
	"math/rand"
	"testing"

	"multigossip/internal/algo"
	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// buildOn runs the full pipeline on g: minimum-depth tree, labelling,
// pipelined flood schedule, remapped to original ids.
func buildOn(t *testing.T, g *graph.Graph) (*schedule.Schedule, int) {
	t.Helper()
	tree, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatalf("MinDepth: %v", err)
	}
	l := spantree.Label(tree)
	return core.RemapToOriginal(Build(l), l), tree.Height
}

func namedTopologies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path16":    graph.Path(16),
		"cycle17":   graph.Cycle(17),
		"star12":    graph.Star(12),
		"grid5x5":   graph.Grid(5, 5),
		"torus4x4":  graph.Torus(4, 4),
		"hyper4":    graph.Hypercube(4),
		"wheel10":   graph.Wheel(10),
		"spider3x5": graph.Spider(3, 5),
		"complete9": graph.Complete(9),
		"ternary27": graph.KAryTree(27, 3),
	}
}

func TestBuildCompletesOnNamedTopologies(t *testing.T) {
	for name, g := range namedTopologies() {
		t.Run(name, func(t *testing.T) {
			s, radius := buildOn(t, g)
			if _, err := schedule.CheckGossip(g, s); err != nil {
				t.Fatalf("invalid schedule: %v", err)
			}
			bound := algo.ByID(algo.Pipelined).Bound(algo.BoundParams{
				N: g.N(), Radius: radius,
			})
			if s.Time() > bound {
				t.Fatalf("schedule takes %d rounds, registered bound is %d", s.Time(), bound)
			}
		})
	}
}

func TestBuildCompletesOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(60)
		g := graph.RandomTree(rng, n)
		s, radius := buildOn(t, g)
		if _, err := schedule.CheckGossip(g, s); err != nil {
			t.Fatalf("trial %d (n=%d): invalid schedule: %v", i, n, err)
		}
		bound := algo.ByID(algo.Pipelined).Bound(algo.BoundParams{N: n, Radius: radius})
		if s.Time() > bound {
			t.Fatalf("trial %d (n=%d): %d rounds exceeds bound %d", i, n, s.Time(), bound)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := graph.Grid(4, 6)
	a, _ := buildOn(t, g)
	b, _ := buildOn(t, g)
	if !a.Equal(b) {
		t.Fatal("two builds on the same network differ")
	}
}

func TestBuildTrivial(t *testing.T) {
	for n := 1; n <= 2; n++ {
		g := graph.Path(n)
		s, _ := buildOn(t, g)
		if _, err := schedule.CheckGossip(g, s); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestNoGatherPhase certifies the structural claim that motivates the
// algorithm: floods start everywhere at once instead of gathering to the
// root first. In round 0 every vertex with a neighbour receives some
// message — Simple's first round delivers only along the leaf fringe of
// the gather, and nothing leaves the root until round n - 2.
func TestNoGatherPhase(t *testing.T) {
	g := graph.Path(9)
	s, _ := buildOn(t, g)
	received := make([]bool, g.N())
	for _, tx := range s.Rounds[0] {
		for _, d := range tx.To {
			received[d] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		if !received[v] {
			t.Fatalf("vertex %d received nothing in round 0", v)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := graph.RandomTree(rand.New(rand.NewSource(int64(n))), n)
		tree, err := spantree.MinDepth(g)
		if err != nil {
			b.Fatal(err)
		}
		l := spantree.Label(tree)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Build(l)
			}
		})
	}
}
