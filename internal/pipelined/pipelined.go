// Package pipelined implements pipelined gossiping in the spirit of
// De Florio & Blondia, "The Algorithm of Pipelined Gossiping": gossiping is
// organised as n concurrent broadcasts pipelined through the network, with
// no gather phase at all. Every message floods outward from its own
// originator along the minimum-depth spanning tree, and the floods share
// the tree by store-and-forward pipelining: a vertex buffers the messages
// it still owes its neighbours and forwards the highest-priority one per
// round.
//
// This sits structurally between the paper's two schedules. Simple and
// ConcurrentUpDown both serialise through the root (every message travels
// origin → root → everywhere); the pipelined floods instead use only the
// unique tree path between origin and destination, so no vertex is a
// global bottleneck and the schedule degrades gracefully when the tree is
// shallow and wide. The price is arbitration: two floods crossing one
// vertex contend for its single send slot, which the builder resolves
// deterministically by label priority (lowest message label first, the
// paper's DFS order). The priority rule yields the progress certificate the
// registry bound relies on: the globally smallest pending label always
// wins every receiver it targets, so every round delivers at least one new
// (processor, message) pair and the builder terminates within n(n-1)
// rounds; measured schedules sit near n + O(r).
package pipelined

import (
	"fmt"

	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// flood is one pending forwarding obligation: vertex `at` owes message
// `msg` to the tree neighbours in `to` (the neighbours it has not yet
// delivered to).
type flood struct {
	msg int
	to  []int
}

// Build constructs the pipelined flood schedule on a DFS-labelled tree, in
// canonical label ids (message m originates at canonical vertex m). Wrap
// with core.RemapToOriginal for original vertex identifiers.
func Build(l *spantree.Labeled) *schedule.Schedule {
	t := l.T
	n := l.N()
	s := schedule.New(n)
	if n <= 1 {
		return s
	}

	// neighbours[v] is v's tree neighbourhood: parent (if any) + children.
	neighbours := make([][]int, n)
	for v := 0; v < n; v++ {
		if v != t.Root {
			neighbours[v] = append(neighbours[v], t.Parent[v])
		}
		neighbours[v] = append(neighbours[v], t.Children[v]...)
	}

	// pending[v] holds v's obligations ordered by ascending label (the
	// priority order); queued[v] marks labels already in pending[v] so a
	// message is never queued twice at one vertex.
	pending := make([][]*flood, n)
	queued := make([][]bool, n)
	for v := 0; v < n; v++ {
		queued[v] = make([]bool, n)
		enqueue(pending, queued, v, &flood{msg: v, to: append([]int(nil), neighbours[v]...)})
	}
	remaining := 0
	for v := 0; v < n; v++ {
		remaining += len(pending[v][0].to)
	}

	// Round construction: every vertex with pending work proposes its
	// smallest-label obligation to that obligation's remaining targets;
	// every proposed target accepts the smallest label offered to it
	// (receive-at-most-one). In a tree each (message, destination) pair has
	// exactly one possible sender — the next hop on the unique origin path
	// — so no two proposals ever tie on a label.
	offer := make([]int, n)    // best label offered to each vertex this round
	offerBy := make([]int, n)  // the proposing vertex behind offer
	accepted := make([]int, n) // label each vertex accepted, -1 if none
	for t0 := 0; remaining > 0; t0++ {
		if t0 > n*n {
			// Unreachable by the progress certificate below; a violation
			// is a builder bug, not an input condition.
			panic(fmt.Sprintf("pipelined: no completion after %d rounds with %d deliveries left", t0, remaining))
		}
		for v := 0; v < n; v++ {
			offer[v], offerBy[v], accepted[v] = -1, -1, -1
		}
		// Proposal pass: smallest-label obligation per vertex.
		for v := 0; v < n; v++ {
			if len(pending[v]) == 0 {
				continue
			}
			f := pending[v][0]
			for _, d := range f.to {
				if offer[d] == -1 || f.msg < offer[d] {
					offer[d], offerBy[d] = f.msg, v
				}
			}
		}
		// Acceptance pass: each target takes its best offer.
		progress := false
		for d := 0; d < n; d++ {
			if offer[d] >= 0 {
				accepted[d] = offer[d]
				progress = true
			}
		}
		if !progress {
			panic("pipelined: stalled with deliveries remaining")
		}
		// Commit pass: senders multicast to the accepting subset of their
		// targets; rejected targets stay queued for retry. Onward floods
		// spawned by this round's receptions are buffered and enqueued only
		// after the loop — enqueueing them inline would reorder a later
		// sender's queue under it, making it silently skip the obligation it
		// proposed.
		type arrival struct {
			at, msg int
			from    int
		}
		var arrivals []arrival
		for v := 0; v < n; v++ {
			if len(pending[v]) == 0 {
				continue
			}
			f := pending[v][0]
			var sent []int
			var kept []int
			for _, d := range f.to {
				if accepted[d] == f.msg && offerBy[d] == v {
					sent = append(sent, d)
				} else {
					kept = append(kept, d)
				}
			}
			if len(sent) == 0 {
				continue
			}
			s.AddSend(t0, f.msg, v, sent...)
			remaining -= len(sent)
			f.to = kept
			if len(f.to) == 0 {
				pending[v] = pending[v][1:]
			}
			for _, d := range sent {
				arrivals = append(arrivals, arrival{at: d, msg: f.msg, from: v})
			}
		}
		// Each recipient extends the flood to its own remaining tree
		// neighbourhood (everyone but the vertex it came from).
		for _, a := range arrivals {
			var onward []int
			for _, w := range neighbours[a.at] {
				if w != a.from {
					onward = append(onward, w)
				}
			}
			if len(onward) > 0 && !queued[a.at][a.msg] {
				enqueue(pending, queued, a.at, &flood{msg: a.msg, to: onward})
				remaining += len(onward)
			}
		}
	}
	return s
}

// enqueue inserts f into v's pending queue keeping ascending label order.
func enqueue(pending [][]*flood, queued [][]bool, v int, f *flood) {
	queued[v][f.msg] = true
	q := pending[v]
	i := len(q)
	for i > 0 && q[i-1].msg > f.msg {
		i--
	}
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = f
	pending[v] = q
}
