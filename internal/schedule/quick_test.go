package schedule

import (
	"testing"
	"testing/quick"

	"multigossip/internal/graph"
)

// TestQuickBitsetSetHasClear: for arbitrary operation sequences the bitset
// agrees with a reference map.
func TestQuickBitsetSetHasClear(t *testing.T) {
	prop := func(rawN uint8, ops []uint16) bool {
		n := 1 + int(rawN)
		b := NewBitset(n)
		ref := make(map[int]bool)
		for _, op := range ops {
			i := int(op>>1) % n
			if op&1 == 0 {
				b.Set(i)
				ref[i] = true
			} else {
				b.Clear(i)
				delete(ref, i)
			}
		}
		count := 0
		for i := 0; i < n; i++ {
			if b.Has(i) != ref[i] {
				return false
			}
			if ref[i] {
				count++
			}
		}
		if b.Count() != count || b.Full() != (count == n) {
			return false
		}
		if len(b.Missing()) != n-count {
			return false
		}
		c := b.Clone()
		c.Set(0)
		return b.Count() == count || b.Has(0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRingScheduleAlwaysValid: the Fig. 1 rotation schedule on C_n is
// valid, complete and optimal for every n, and any truncation of it is
// incomplete (no round is redundant).
func TestQuickRingScheduleAlwaysValid(t *testing.T) {
	prop := func(rawN uint8) bool {
		n := 3 + int(rawN)%60
		s := ringSchedule(n)
		g := graph.Cycle(n)
		res, err := CheckGossip(g, s)
		if err != nil || res.CompleteAt != n-1 {
			return false
		}
		cut := s.Clone()
		cut.Rounds = cut.Rounds[:n-2]
		if _, err := CheckGossip(g, cut); err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCorruptionAlwaysDetected: flipping any single transmission of a
// valid schedule to a random wrong message, sender, or destination is
// either still valid (rare, e.g. a now-wasted delivery) or rejected — it
// must never panic, and changing the message of a round-0 transmission to
// one the sender cannot hold must always be rejected.
func TestQuickCorruptionAlwaysDetected(t *testing.T) {
	prop := func(rawN, rawIdx, rawMsg uint8) bool {
		n := 3 + int(rawN)%20
		g := graph.Cycle(n)
		s := ringSchedule(n)
		idx := int(rawIdx) % len(s.Rounds[0])
		tx := &s.Rounds[0][idx]
		wrong := int(rawMsg) % n
		if wrong == tx.From {
			wrong = (wrong + 1) % n
		}
		tx.Msg = wrong // at round 0 a processor holds only its own message
		_, err := Run(g, s, Options{})
		return err != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
