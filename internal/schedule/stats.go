package schedule

import "fmt"

// Stats aggregates the measurable properties of a schedule that the
// experiment harness reports alongside the total communication time.
type Stats struct {
	Time            int     // total communication time (rounds)
	Transmissions   int     // multicast send operations
	Deliveries      int     // point-to-point message deliveries
	MaxFanout       int     // largest multicast destination set
	AvgFanout       float64 // deliveries / transmissions
	SendSlotsUsed   int     // (processor, round) pairs with a send
	RecvSlotsUsed   int     // (processor, round) pairs with a receive
	SendUtilization float64 // SendSlotsUsed / (N * Time)
	RecvUtilization float64 // RecvSlotsUsed / (N * Time)
}

// Measure computes Stats from the schedule alone (no validation).
func Measure(s *Schedule) Stats {
	st := Stats{Time: s.Time()}
	for _, round := range s.Rounds {
		st.Transmissions += len(round)
		st.SendSlotsUsed += len(round)
		for _, tx := range round {
			st.Deliveries += len(tx.To)
			st.RecvSlotsUsed += len(tx.To)
			if len(tx.To) > st.MaxFanout {
				st.MaxFanout = len(tx.To)
			}
		}
	}
	if st.Transmissions > 0 {
		st.AvgFanout = float64(st.Deliveries) / float64(st.Transmissions)
	}
	if slots := s.N * st.Time; slots > 0 {
		st.SendUtilization = float64(st.SendSlotsUsed) / float64(slots)
		st.RecvUtilization = float64(st.RecvSlotsUsed) / float64(slots)
	}
	return st
}

// String renders the stats on one line.
func (st Stats) String() string {
	return fmt.Sprintf("time=%d tx=%d deliveries=%d maxFanout=%d avgFanout=%.2f sendUtil=%.2f recvUtil=%.2f",
		st.Time, st.Transmissions, st.Deliveries, st.MaxFanout, st.AvgFanout, st.SendUtilization, st.RecvUtilization)
}
