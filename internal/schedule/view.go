package schedule

import (
	"multigossip/internal/spantree"
)

// VertexTimetable is the per-processor view of a tree schedule in the
// format of the paper's Tables 1-4: four rows indexed by time, holding the
// message label involved or NoMessage. Send rows are indexed by the time
// the message is sent; receive rows by the time it arrives (send time + 1).
type VertexTimetable struct {
	Vertex     int
	RecvParent []int // message received from the parent at each time
	RecvChild  []int // message received from a child at each time
	SendParent []int // message sent to the parent at each time
	SendChild  []int // message sent to one or more children at each time
}

// NoMessage marks an empty timetable slot.
const NoMessage = -1

// VertexView extracts the timetable of vertex v from a schedule defined on
// the tree network t (schedule vertex ids must match tree vertex ids).
// Rows have length s.Time()+1 so the latest possible arrival is included.
func VertexView(s *Schedule, t *spantree.Tree, v int) *VertexTimetable {
	rows := s.Time() + 1
	vt := &VertexTimetable{
		Vertex:     v,
		RecvParent: filled(rows, NoMessage),
		RecvChild:  filled(rows, NoMessage),
		SendParent: filled(rows, NoMessage),
		SendChild:  filled(rows, NoMessage),
	}
	for time, round := range s.Rounds {
		for _, tx := range round {
			if tx.From == v {
				for _, d := range tx.To {
					if d == t.Parent[v] {
						vt.SendParent[time] = tx.Msg
					} else {
						vt.SendChild[time] = tx.Msg
					}
				}
			}
			for _, d := range tx.To {
				if d != v {
					continue
				}
				if tx.From == t.Parent[v] {
					vt.RecvParent[time+1] = tx.Msg
				} else {
					vt.RecvChild[time+1] = tx.Msg
				}
			}
		}
	}
	return vt
}

// FlatView extracts the timetable of vertex v from a schedule with no
// underlying spanning tree (the collision-constrained planner, contracted
// weighted schedules): every send lands in the SendChild row and every
// reception in the RecvChild row, and the parent rows stay empty — the
// renderer's peer rows double as the flat send/receive rows.
func FlatView(s *Schedule, v int) *VertexTimetable {
	rows := s.Time() + 1
	vt := &VertexTimetable{
		Vertex:     v,
		RecvParent: filled(rows, NoMessage),
		RecvChild:  filled(rows, NoMessage),
		SendParent: filled(rows, NoMessage),
		SendChild:  filled(rows, NoMessage),
	}
	for time, round := range s.Rounds {
		for _, tx := range round {
			if tx.From == v {
				vt.SendChild[time] = tx.Msg
			}
			for _, d := range tx.To {
				if d == v {
					vt.RecvChild[time+1] = tx.Msg
				}
			}
		}
	}
	return vt
}

func filled(n, x int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = x
	}
	return s
}
