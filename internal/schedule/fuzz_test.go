package schedule

import (
	"encoding/json"
	"testing"

	"multigossip/internal/graph"
)

// FuzzUnmarshalJSON: arbitrary bytes must never panic the decoder, and
// anything it accepts must re-encode and decode to an equal schedule.
func FuzzUnmarshalJSON(f *testing.F) {
	seed := ringSchedule(5)
	data, err := json.Marshal(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{"version":1,"processors":2,"messages":2,"time":1,"sends":[{"t":0,"msg":0,"from":0,"to":[1]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var s Schedule
		if err := json.Unmarshal(raw, &s); err != nil {
			return // rejected: fine
		}
		re, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("accepted schedule failed to re-encode: %v", err)
		}
		var s2 Schedule
		if err := json.Unmarshal(re, &s2); err != nil {
			t.Fatalf("re-encoded schedule failed to decode: %v", err)
		}
		s.Normalize()
		s2.Normalize()
		if !s.Equal(&s2) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}

// FuzzValidator: structurally arbitrary schedules derived from fuzz bytes
// must never panic Run; they are either cleanly rejected or simulated.
func FuzzValidator(f *testing.F) {
	f.Add(5, []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(3, []byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, rawN int, ops []byte) {
		n := 2 + abs(rawN)%8
		g := graph.Cycle(max(3, n))
		n = g.N()
		s := New(n)
		for i := 0; i+3 < len(ops); i += 4 {
			tm := int(ops[i]) % 12
			msg := int(ops[i+1]) % n
			from := int(ops[i+2]) % n
			to := int(ops[i+3]) % n
			if to == from {
				to = (to + 1) % n
			}
			s.AddSend(tm, msg, from, to)
		}
		_, _ = Run(g, s, Options{})                    // must not panic
		_, _ = Run(g, s, Options{RequireUseful: true}) // nor in strict mode
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
