package schedule

import (
	"encoding/json"
	"strings"
	"testing"

	"multigossip/internal/graph"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := ringSchedule(6)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	orig.Normalize()
	back.Normalize()
	if !orig.Equal(&back) {
		t.Fatalf("round trip changed the schedule:\n%s\nvs\n%s", orig, &back)
	}
	if _, err := CheckGossip(graph.Cycle(6), &back); err != nil {
		t.Fatal(err)
	}
}

func TestJSONPreservesTrailingEmptyRounds(t *testing.T) {
	s := New(2)
	s.AddSend(0, 0, 0, 1)
	s.Rounds = append(s.Rounds, nil, nil) // two silent rounds
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Time() != 3 {
		t.Fatalf("Time = %d after round trip, want 3", back.Time())
	}
}

func TestJSONRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"badVersion": `{"version":9,"processors":2,"messages":2,"time":1,"sends":[]}`,
		"negative":   `{"version":1,"processors":-1,"messages":2,"time":1,"sends":[]}`,
		"lateSend":   `{"version":1,"processors":2,"messages":2,"time":1,"sends":[{"t":5,"msg":0,"from":0,"to":[1]}]}`,
		"noDests":    `{"version":1,"processors":2,"messages":2,"time":1,"sends":[{"t":0,"msg":0,"from":0,"to":[]}]}`,
		"notJSON":    `{{{`,
	}
	for name, data := range cases {
		var s Schedule
		if err := json.Unmarshal([]byte(data), &s); err == nil {
			t.Errorf("%s: corrupt JSON accepted", name)
		}
	}
}

func TestJSONShape(t *testing.T) {
	s := New(3)
	s.AddSend(0, 1, 1, 0, 2)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{`"version":1`, `"processors":3`, `"sends":[`, `"to":[0,2]`} {
		if !strings.Contains(text, want) {
			t.Errorf("JSON missing %s: %s", want, text)
		}
	}
}
