package schedule

import (
	"fmt"

	"multigossip/internal/graph"
	"multigossip/internal/obs"
)

// Options configure validation and simulation.
type Options struct {
	// Initial gives each processor's starting hold set. When nil, processor
	// p holds exactly message p, the basic gossiping instance (requires
	// NMsg == N). The slices are not modified.
	Initial []*Bitset
	// RequireUseful, when set, rejects any delivery of a message the
	// destination already holds. The paper's model permits such deliveries
	// (algorithm Simple makes them); ConcurrentUpDown never should, and its
	// tests turn this on as a strictness probe.
	RequireUseful bool
	// RecvPorts is the number of messages a processor may receive per
	// round. Zero means 1, the paper's model; larger values validate the
	// k-port extension studied in experiment E27.
	RecvPorts int
	// Observer, when non-nil, receives BeginRound/EndRound events (with
	// aggregated RoundStats) and per-delivery Delivered events as the
	// simulation advances — the fault-free side of the observability layer.
	// Round indices are the schedule's own (no offset).
	Observer obs.RoundObserver
}

// Result reports the outcome of simulating a schedule.
type Result struct {
	Holds            []*Bitset // final hold set per processor
	WastedDeliveries int       // deliveries of already-held messages
	CompleteAt       int       // earliest time every processor holds all messages, or -1
}

// Run validates s against the communication model on network g and
// simulates the hold sets. It enforces, for every round:
//
//  1. each processor sends at most one message (distinct senders),
//  2. each processor receives at most one message (disjoint destination sets),
//  3. every destination is adjacent to its sender in g,
//  4. the sender holds the message at send time, where the hold set at time
//     t already includes the message received at time t (receive happens
//     before send within a time unit).
//
// On success it returns the final hold sets and statistics; the first
// violation aborts with a descriptive error naming the round.
func Run(g *graph.Graph, s *Schedule, opts Options) (*Result, error) {
	if g.N() != s.N {
		return nil, fmt.Errorf("schedule: graph has %d processors, schedule %d", g.N(), s.N)
	}
	holds, err := initialHolds(s, opts.Initial)
	if err != nil {
		return nil, err
	}
	res := &Result{Holds: holds, CompleteAt: -1}
	if allFull(holds) {
		res.CompleteAt = 0
	}
	ports := opts.RecvPorts
	if ports <= 0 {
		ports = 1
	}
	sentBy := make([]int, s.N) // round when the processor last sent, -1 if not
	recvBy := make([]int, s.N) // round when the processor last received
	recvCount := make([]int, s.N)
	for i := range sentBy {
		sentBy[i] = -1
		recvBy[i] = -1
	}
	ro := opts.Observer
	for t, round := range s.Rounds {
		if ro != nil {
			ro.BeginRound(t)
		}
		var stats obs.RoundStats
		// Check the round before applying its deliveries: sends at time t
		// use hold sets that already absorbed deliveries from round t-1.
		for _, tx := range round {
			if tx.From < 0 || tx.From >= s.N {
				return nil, fmt.Errorf("schedule: round %d: sender %d out of range", t, tx.From)
			}
			if tx.Msg < 0 || tx.Msg >= s.NMsg {
				return nil, fmt.Errorf("schedule: round %d: message %d out of range", t, tx.Msg)
			}
			if sentBy[tx.From] == t {
				return nil, fmt.Errorf("schedule: round %d: processor %d sends twice", t, tx.From)
			}
			sentBy[tx.From] = t
			if !holds[tx.From].Has(tx.Msg) {
				return nil, fmt.Errorf("schedule: round %d: processor %d sends message %d it does not hold", t, tx.From, tx.Msg)
			}
			if len(tx.To) == 0 {
				return nil, fmt.Errorf("schedule: round %d: processor %d multicast with empty destination set", t, tx.From)
			}
			for _, d := range tx.To {
				if d < 0 || d >= s.N {
					return nil, fmt.Errorf("schedule: round %d: destination %d out of range", t, d)
				}
				if d == tx.From {
					return nil, fmt.Errorf("schedule: round %d: processor %d sends to itself", t, d)
				}
				if !g.HasEdge(tx.From, d) {
					return nil, fmt.Errorf("schedule: round %d: no link %d-%d in the network", t, tx.From, d)
				}
				if recvBy[d] != t {
					recvBy[d] = t
					recvCount[d] = 0
				}
				recvCount[d]++
				if recvCount[d] > ports {
					if ports == 1 {
						return nil, fmt.Errorf("schedule: round %d: processor %d receives two messages", t, d)
					}
					return nil, fmt.Errorf("schedule: round %d: processor %d exceeds %d receive ports", t, d, ports)
				}
				if holds[d].Has(tx.Msg) {
					res.WastedDeliveries++
					if opts.RequireUseful {
						return nil, fmt.Errorf("schedule: round %d: processor %d already holds message %d", t, d, tx.Msg)
					}
				}
			}
		}
		// Apply deliveries: messages sent at round t are held from time t+1.
		for _, tx := range round {
			for _, d := range tx.To {
				if ro != nil {
					if !holds[d].Has(tx.Msg) {
						stats.NewPairs++
					}
					stats.Delivered++
					ro.Delivery(t, tx.From, d, tx.Msg, obs.Delivered)
				}
				holds[d].Set(tx.Msg)
			}
		}
		if ro != nil {
			ro.EndRound(t, stats)
		}
		if res.CompleteAt == -1 && allFull(holds) {
			res.CompleteAt = t + 1
		}
	}
	return res, nil
}

func initialHolds(s *Schedule, initial []*Bitset) ([]*Bitset, error) {
	holds := make([]*Bitset, s.N)
	if initial == nil {
		if s.NMsg != s.N {
			return nil, fmt.Errorf("schedule: default initial holds need NMsg == N, got %d != %d", s.NMsg, s.N)
		}
		for p := range holds {
			holds[p] = NewBitset(s.NMsg)
			holds[p].Set(p)
		}
		return holds, nil
	}
	if len(initial) != s.N {
		return nil, fmt.Errorf("schedule: %d initial hold sets for %d processors", len(initial), s.N)
	}
	for p, h := range initial {
		if h.Len() != s.NMsg {
			return nil, fmt.Errorf("schedule: initial hold set %d sized %d, want %d", p, h.Len(), s.NMsg)
		}
		holds[p] = h.Clone()
	}
	return holds, nil
}

func allFull(holds []*Bitset) bool {
	for _, h := range holds {
		if !h.Full() {
			return false
		}
	}
	return true
}

// CheckGossip validates s on g and verifies that it solves the basic
// gossiping problem: after the last round every processor holds all n
// messages. It returns the simulation result on success.
func CheckGossip(g *graph.Graph, s *Schedule) (*Result, error) {
	res, err := Run(g, s, Options{})
	if err != nil {
		return nil, err
	}
	for p, h := range res.Holds {
		if !h.Full() {
			return nil, fmt.Errorf("schedule: incomplete gossip: processor %d is missing messages %v", p, h.Missing())
		}
	}
	return res, nil
}
