package schedule

import (
	"encoding/json"
	"fmt"
)

// jsonSchedule is the stable on-disk shape: version marker plus a flat
// list of sends, one per transmission, so other tools can consume it
// without knowing Go types.
type jsonSchedule struct {
	Version int        `json:"version"`
	N       int        `json:"processors"`
	NMsg    int        `json:"messages"`
	Time    int        `json:"time"`
	Sends   []jsonSend `json:"sends"`
}

type jsonSend struct {
	T    int   `json:"t"`
	Msg  int   `json:"msg"`
	From int   `json:"from"`
	To   []int `json:"to"`
}

const jsonVersion = 1

// MarshalJSON encodes the schedule as a versioned flat transmission list.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := jsonSchedule{Version: jsonVersion, N: s.N, NMsg: s.NMsg, Time: s.Time()}
	for t, round := range s.Rounds {
		for _, tx := range round {
			out.Sends = append(out.Sends, jsonSend{T: t, Msg: tx.Msg, From: tx.From, To: tx.To})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a schedule previously written by MarshalJSON,
// restoring round structure and validating basic shape (the model rules
// are checked separately by Run against a network).
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in jsonSchedule
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Version != jsonVersion {
		return fmt.Errorf("schedule: unsupported version %d", in.Version)
	}
	if in.N < 0 || in.NMsg < 0 || in.Time < 0 {
		return fmt.Errorf("schedule: negative sizes in JSON")
	}
	restored := Schedule{N: in.N, NMsg: in.NMsg}
	for _, snd := range in.Sends {
		if snd.T < 0 || snd.T >= in.Time {
			return fmt.Errorf("schedule: send at time %d outside [0,%d)", snd.T, in.Time)
		}
		if len(snd.To) == 0 {
			return fmt.Errorf("schedule: send without destinations at time %d", snd.T)
		}
		restored.AddSend(snd.T, snd.Msg, snd.From, snd.To...)
	}
	for len(restored.Rounds) < in.Time {
		restored.Rounds = append(restored.Rounds, nil)
	}
	*s = restored
	return nil
}
