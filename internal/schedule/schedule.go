// Package schedule defines the communication model of the paper and the
// machinery around it: communication rounds and schedules, a validator that
// enforces the two multicast rules, a hold-set simulator that checks
// completion, per-vertex timetable views matching the paper's Tables 1-4,
// and aggregate statistics.
//
// A message sent during round t (said to be "sent at time t") is received
// at time t+1. Receives happen before sends within a time unit, so a
// message received at time t may be forwarded during round t.
package schedule

import (
	"fmt"
	"sort"
)

// Transmission is one tuple (m, l, D) of a communication round: processor
// From multicasts message Msg to the destination set To.
type Transmission struct {
	Msg  int   // message label (= originating processor in the basic problem)
	From int   // sending processor
	To   []int // destination processors, sorted, non-empty
}

// Round is the set of transmissions sharing a time unit.
type Round []Transmission

// Schedule is a sequence of communication rounds over n processors and
// nmsg messages. Round t holds the transmissions sent at time t.
type Schedule struct {
	N      int // processors
	NMsg   int // messages (== N in the basic gossiping problem)
	Rounds []Round
}

// New returns an empty schedule for n processors and n messages.
func New(n int) *Schedule { return &Schedule{N: n, NMsg: n} }

// NewWithMessages returns an empty schedule for n processors and nmsg
// messages (used by the weighted-gossiping contraction).
func NewWithMessages(n, nmsg int) *Schedule { return &Schedule{N: n, NMsg: nmsg} }

// Time returns the total communication time: the number of rounds, i.e.
// one past the latest time at which there is a communication (a message
// sent at round T-1 arrives at time T).
func (s *Schedule) Time() int { return len(s.Rounds) }

// AddSend records that processor from multicasts msg to the destinations
// during round t, growing the schedule as needed. Destinations are stored
// sorted. It panics on an empty destination set so silent no-ops cannot
// hide scheduling bugs.
func (s *Schedule) AddSend(t, msg, from int, to ...int) {
	if len(to) == 0 {
		panic(fmt.Sprintf("schedule: empty destination set at t=%d msg=%d from=%d", t, msg, from))
	}
	for len(s.Rounds) <= t {
		s.Rounds = append(s.Rounds, nil)
	}
	dests := append([]int(nil), to...)
	// The schedule builders emit destinations in nearly sorted order, so a
	// sortedness check avoids the sort in the common case (this path runs
	// Θ(n²) times per schedule).
	for i := 1; i < len(dests); i++ {
		if dests[i-1] > dests[i] {
			sort.Ints(dests)
			break
		}
	}
	s.Rounds[t] = append(s.Rounds[t], Transmission{Msg: msg, From: from, To: dests})
}

// Transmissions returns the total number of multicast transmissions.
func (s *Schedule) Transmissions() int {
	total := 0
	for _, r := range s.Rounds {
		total += len(r)
	}
	return total
}

// Deliveries returns the total number of point-to-point message deliveries
// (each destination of each transmission counts once).
func (s *Schedule) Deliveries() int {
	total := 0
	for _, r := range s.Rounds {
		for _, tx := range r {
			total += len(tx.To)
		}
	}
	return total
}

// Clone returns a deep copy, used by the failure-injection tests to corrupt
// schedules without destroying the original.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{N: s.N, NMsg: s.NMsg, Rounds: make([]Round, len(s.Rounds))}
	for t, r := range s.Rounds {
		c.Rounds[t] = make(Round, len(r))
		for i, tx := range r {
			c.Rounds[t][i] = Transmission{Msg: tx.Msg, From: tx.From, To: append([]int(nil), tx.To...)}
		}
	}
	return c
}

// Normalize sorts each round's transmissions by sender, giving schedules a
// canonical form for comparison in tests (offline vs online runs).
func (s *Schedule) Normalize() {
	for _, r := range s.Rounds {
		sort.Slice(r, func(i, j int) bool { return r[i].From < r[j].From })
	}
}

// Equal reports whether two normalized schedules are identical.
func (s *Schedule) Equal(o *Schedule) bool {
	if s.N != o.N || s.NMsg != o.NMsg || len(s.Rounds) != len(o.Rounds) {
		return false
	}
	for t := range s.Rounds {
		if len(s.Rounds[t]) != len(o.Rounds[t]) {
			return false
		}
		for i := range s.Rounds[t] {
			a, b := s.Rounds[t][i], o.Rounds[t][i]
			if a.Msg != b.Msg || a.From != b.From || len(a.To) != len(b.To) {
				return false
			}
			for j := range a.To {
				if a.To[j] != b.To[j] {
					return false
				}
			}
		}
	}
	return true
}

// String renders one line per round: "t=3: 5->{1,2}:m4  7->{0}:m6".
func (s *Schedule) String() string {
	out := fmt.Sprintf("schedule{n=%d, time=%d}\n", s.N, s.Time())
	for t, r := range s.Rounds {
		out += fmt.Sprintf("t=%d:", t)
		for _, tx := range r {
			out += fmt.Sprintf(" %d->%v:m%d", tx.From, tx.To, tx.Msg)
		}
		out += "\n"
	}
	return out
}
