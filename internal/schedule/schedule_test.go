package schedule

import (
	"strings"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/spantree"
)

// ringSchedule builds the paper's Fig. 1 optimal schedule on C_n: in round
// t every processor sends to its clockwise neighbour the message it
// received in round t-1 (its own in round 0). Total time n-1.
func ringSchedule(n int) *Schedule {
	s := New(n)
	for t := 0; t < n-1; t++ {
		for p := 0; p < n; p++ {
			msg := ((p-t)%n + n) % n // message that started t hops counter-clockwise
			s.AddSend(t, msg, p, (p+1)%n)
		}
	}
	return s
}

func TestRingScheduleOptimal(t *testing.T) {
	for _, n := range []int{3, 4, 8, 17} {
		g := graph.Cycle(n)
		s := ringSchedule(n)
		res, err := CheckGossip(g, s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if s.Time() != n-1 {
			t.Fatalf("n=%d: time %d, want %d", n, s.Time(), n-1)
		}
		if res.CompleteAt != n-1 {
			t.Fatalf("n=%d: CompleteAt %d, want %d", n, res.CompleteAt, n-1)
		}
		if res.WastedDeliveries != 0 {
			t.Fatalf("n=%d: %d wasted deliveries", n, res.WastedDeliveries)
		}
	}
}

func TestAddSendGrowsAndSorts(t *testing.T) {
	s := New(4)
	s.AddSend(2, 1, 0, 3, 1, 2)
	if s.Time() != 3 {
		t.Fatalf("Time = %d, want 3", s.Time())
	}
	tx := s.Rounds[2][0]
	if tx.To[0] != 1 || tx.To[1] != 2 || tx.To[2] != 3 {
		t.Fatalf("destinations not sorted: %v", tx.To)
	}
}

func TestAddSendEmptyDestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddSend with no destinations did not panic")
		}
	}()
	New(3).AddSend(0, 0, 0)
}

func TestReceiveBeforeSendSemantics(t *testing.T) {
	// P3: 0-1-2. Message 0 sent 0->1 at round 0 arrives at time 1 and may
	// be forwarded by 1 at round 1.
	g := graph.Path(3)
	s := New(3)
	s.AddSend(0, 0, 0, 1)
	s.AddSend(1, 0, 1, 2)
	s.AddSend(1, 1, 0, 1) // hmm-free filler: 0 sends its own msg? no: msg 1 not held by 0
	if _, err := Run(g, s, Options{}); err == nil {
		t.Fatal("validator accepted a send of an unheld message")
	}
	// Remove the bad send; the forward of a just-received message is legal.
	s = New(3)
	s.AddSend(0, 0, 0, 1)
	s.AddSend(1, 0, 1, 2)
	if _, err := Run(g, s, Options{}); err != nil {
		t.Fatalf("receive-before-send forward rejected: %v", err)
	}
	// Forwarding one round too early must fail.
	s = New(3)
	s.AddSend(0, 0, 0, 1)
	s.AddSend(0, 0, 1, 2)
	if _, err := Run(g, s, Options{}); err == nil {
		t.Fatal("validator accepted forwarding before arrival")
	}
}

func TestValidatorRejections(t *testing.T) {
	g := graph.Cycle(5)
	base := ringSchedule(5)
	if _, err := CheckGossip(g, base); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}

	corrupt := func(name string, mutate func(*Schedule), wantSub string) {
		s := base.Clone()
		mutate(s)
		_, err := Run(g, s, Options{})
		if err == nil {
			t.Errorf("%s: corruption not detected", name)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	corrupt("doubleSend", func(s *Schedule) {
		s.AddSend(0, 0, 0, 4) // processor 0 already sends in round 0
	}, "sends twice")
	corrupt("phantomEdge", func(s *Schedule) {
		s.Rounds[0][0].To = []int{2} // 0-2 is not a ring edge
	}, "no link")
	corrupt("unheldMessage", func(s *Schedule) {
		s.Rounds[0][0].Msg = 3 // processor 0 does not hold message 3 at t=0
	}, "does not hold")
	corrupt("selfSend", func(s *Schedule) {
		s.Rounds[0][0].To = []int{0}
	}, "sends to itself")
	corrupt("badSender", func(s *Schedule) {
		s.Rounds[0][0].From = 9
	}, "out of range")
	corrupt("badMessage", func(s *Schedule) {
		s.Rounds[0][0].Msg = 17
	}, "out of range")
	corrupt("badDest", func(s *Schedule) {
		s.Rounds[0][0].To = []int{-2}
	}, "out of range")
}

func TestDoubleReceiveRejected(t *testing.T) {
	g := graph.Complete(3)
	s := New(3)
	s.AddSend(0, 0, 0, 2)
	s.AddSend(0, 1, 1, 2) // processor 2 would receive two messages at time 1
	if _, err := Run(g, s, Options{}); err == nil || !strings.Contains(err.Error(), "receives two") {
		t.Fatalf("double receive not detected: %v", err)
	}
}

func TestIncompleteGossipDetected(t *testing.T) {
	g := graph.Cycle(5)
	s := ringSchedule(5)
	s.Rounds = s.Rounds[:len(s.Rounds)-1] // truncate the last round
	if _, err := CheckGossip(g, s); err == nil || !strings.Contains(err.Error(), "missing messages") {
		t.Fatalf("truncation not detected: %v", err)
	}
}

func TestWastedDeliveriesCountedAndRejectedWhenStrict(t *testing.T) {
	g := graph.Path(2)
	s := New(2)
	s.AddSend(0, 0, 0, 1)
	s.AddSend(1, 0, 0, 1) // resend: processor 1 already holds message 0
	res, err := Run(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WastedDeliveries != 1 {
		t.Fatalf("WastedDeliveries = %d, want 1", res.WastedDeliveries)
	}
	if _, err := Run(g, s, Options{RequireUseful: true}); err == nil {
		t.Fatal("strict mode accepted a wasted delivery")
	}
}

func TestCustomInitialHolds(t *testing.T) {
	// Two processors, three messages: 0 holds {0,1}, 1 holds {2}.
	g := graph.Path(2)
	s := NewWithMessages(2, 3)
	init := []*Bitset{NewBitset(3), NewBitset(3)}
	init[0].Set(0)
	init[0].Set(1)
	init[1].Set(2)
	s.AddSend(0, 0, 0, 1)
	s.AddSend(1, 1, 0, 1)
	s.AddSend(1, 2, 1, 0)
	res, err := Run(g, s, Options{Initial: init})
	if err != nil {
		t.Fatal(err)
	}
	for p, h := range res.Holds {
		if !h.Full() {
			t.Fatalf("processor %d missing %v", p, h.Missing())
		}
	}
	if res.CompleteAt != 2 {
		t.Fatalf("CompleteAt = %d, want 2", res.CompleteAt)
	}
	// Mismatched sizes must error.
	if _, err := Run(g, s, Options{Initial: init[:1]}); err == nil {
		t.Fatal("accepted wrong initial count")
	}
	bad := []*Bitset{NewBitset(2), NewBitset(2)}
	if _, err := Run(g, s, Options{Initial: bad}); err == nil {
		t.Fatal("accepted wrong initial bitset size")
	}
}

func TestDefaultInitialNeedsSquare(t *testing.T) {
	g := graph.Path(2)
	s := NewWithMessages(2, 3)
	if _, err := Run(g, s, Options{}); err == nil {
		t.Fatal("default initial holds accepted NMsg != N")
	}
}

func TestGraphSizeMismatch(t *testing.T) {
	if _, err := Run(graph.Path(3), New(4), Options{}); err == nil {
		t.Fatal("accepted mismatched graph and schedule sizes")
	}
}

func TestCloneAndEqualAndNormalize(t *testing.T) {
	s := ringSchedule(4)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Rounds[0][0].Msg = 3
	if s.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	// Normalize sorts by sender.
	a := New(3)
	a.AddSend(0, 2, 2, 1)
	a.AddSend(0, 0, 0, 1)
	b := New(3)
	b.AddSend(0, 0, 0, 1)
	b.AddSend(0, 2, 2, 1)
	a.Normalize()
	b.Normalize()
	if !a.Equal(b) {
		t.Fatal("normalized schedules differ")
	}
}

func TestCountsAndStats(t *testing.T) {
	s := New(4)
	s.AddSend(0, 0, 0, 1, 2, 3)
	s.AddSend(1, 1, 1, 0)
	if s.Transmissions() != 2 || s.Deliveries() != 4 {
		t.Fatalf("tx=%d deliveries=%d", s.Transmissions(), s.Deliveries())
	}
	st := Measure(s)
	if st.Time != 2 || st.MaxFanout != 3 || st.AvgFanout != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.RecvUtilization != 0.5 { // 4 deliveries over 4*2 slots
		t.Fatalf("RecvUtilization = %v, want 0.5", st.RecvUtilization)
	}
	if !strings.Contains(st.String(), "time=2") {
		t.Fatalf("Stats.String missing time: %s", st)
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || b.Count() != 0 || b.Full() {
		t.Fatal("fresh bitset wrong")
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 3 {
		t.Fatal("Clear failed")
	}
	c := b.Clone()
	c.Set(1)
	if b.Has(1) {
		t.Fatal("clone aliased")
	}
	for i := 0; i < 130; i++ {
		b.Set(i)
	}
	if !b.Full() || len(b.Missing()) != 0 {
		t.Fatal("Full/Missing wrong")
	}
	b.Clear(100)
	if m := b.Missing(); len(m) != 1 || m[0] != 100 {
		t.Fatalf("Missing = %v", m)
	}
}

func TestVertexView(t *testing.T) {
	// Star tree rooted at 0 with children 1,2. Schedule: 1 sends m1 up at
	// round 0; 0 multicasts m1 to 2 at round 1; 2 sends m2 up at round 1;
	// 0 multicasts m2 to 1 at round 2; 0 sends m0 to both at round 3.
	tr := spantree.MustFromParents([]int{-1, 0, 0})
	g := tr.Graph()
	s := New(3)
	s.AddSend(0, 1, 1, 0)
	s.AddSend(1, 1, 0, 2)
	s.AddSend(1, 2, 2, 0)
	s.AddSend(2, 2, 0, 1)
	s.AddSend(3, 0, 0, 1, 2)
	if _, err := CheckGossip(g, s); err != nil {
		t.Fatal(err)
	}
	root := VertexView(s, tr, 0)
	if root.RecvChild[1] != 1 || root.RecvChild[2] != 2 {
		t.Fatalf("root RecvChild = %v", root.RecvChild)
	}
	if root.SendChild[1] != 1 || root.SendChild[2] != 2 || root.SendChild[3] != 0 {
		t.Fatalf("root SendChild = %v", root.SendChild)
	}
	leaf := VertexView(s, tr, 1)
	if leaf.SendParent[0] != 1 {
		t.Fatalf("leaf SendParent = %v", leaf.SendParent)
	}
	if leaf.RecvParent[3] != 2 || leaf.RecvParent[4] != 0 {
		t.Fatalf("leaf RecvParent = %v", leaf.RecvParent)
	}
	if leaf.RecvChild[1] != NoMessage {
		t.Fatalf("leaf RecvChild should be empty: %v", leaf.RecvChild)
	}
}

func TestScheduleString(t *testing.T) {
	s := New(2)
	s.AddSend(0, 0, 0, 1)
	out := s.String()
	if !strings.Contains(out, "t=0:") || !strings.Contains(out, "0->[1]:m0") {
		t.Fatalf("String output unexpected:\n%s", out)
	}
}

func TestBitsetCountAndNot(t *testing.T) {
	a := NewBitset(130)
	b := NewBitset(130)
	for _, i := range []int{0, 5, 63, 64, 100, 129} {
		a.Set(i)
	}
	for _, i := range []int{5, 64, 129} {
		b.Set(i)
	}
	if got := a.CountAndNot(b); got != 3 {
		t.Fatalf("CountAndNot = %d, want 3 (bits 0, 63, 100)", got)
	}
	if got := b.CountAndNot(a); got != 0 {
		t.Fatalf("b \\ a = %d, want 0 (b is a subset)", got)
	}
	if got := a.CountAndNot(NewBitset(130)); got != a.Count() {
		t.Fatalf("a \\ empty = %d, want %d", got, a.Count())
	}
}
