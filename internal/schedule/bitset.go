package schedule

import "math/bits"

// Bitset is a fixed-capacity bitset used for hold sets h_v: bit m is set
// when the processor holds message m. With n processors each holding up to
// n messages the simulator keeps n bitsets of n bits, so the representation
// matters: one machine word covers 64 messages.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset with capacity for bits 0..n-1.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether bit i is set.
func (b *Bitset) Has(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether every bit 0..n-1 is set.
func (b *Bitset) Full() bool { return b.Count() == b.n }

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...), n: b.n}
}

// FirstAndNot returns the lowest index set in b and clear in o, or -1 when
// there is none — the first message a processor holding b could supply to a
// processor holding o. Both bitsets must have the same capacity.
func (b *Bitset) FirstAndNot(o *Bitset) int {
	for i, w := range b.words {
		if x := w &^ o.words[i]; x != 0 {
			m := i*64 + bits.TrailingZeros64(x)
			if m < b.n {
				return m
			}
			return -1
		}
	}
	return -1
}

// Or sets every bit of o into b. Both bitsets must have the same capacity.
func (b *Bitset) Or(o *Bitset) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// CountAndNot returns the number of indices set in b and clear in o — the
// count of messages a holder of b could still supply to a holder of o.
// Both bitsets must have the same capacity.
func (b *Bitset) CountAndNot(o *Bitset) int {
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w &^ o.words[i])
	}
	return c
}

// Missing returns the indices of unset bits, ascending.
func (b *Bitset) Missing() []int {
	var out []int
	for i := 0; i < b.n; i++ {
		if !b.Has(i) {
			out = append(out, i)
		}
	}
	return out
}
