package beep

import (
	"math/rand"
	"testing"

	"multigossip/internal/algo"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

func namedTopologies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path16":    graph.Path(16),
		"cycle17":   graph.Cycle(17),
		"star12":    graph.Star(12),
		"grid5x5":   graph.Grid(5, 5),
		"torus4x4":  graph.Torus(4, 4),
		"hyper4":    graph.Hypercube(4),
		"spider3x4": graph.Spider(3, 4),
		"complete8": graph.Complete(8),
	}
}

func checkAll(t *testing.T, g *graph.Graph, s *schedule.Schedule) {
	t.Helper()
	if _, err := schedule.CheckGossip(g, s); err != nil {
		t.Fatalf("base-model validity: %v", err)
	}
	if err := Validate(g, s); err != nil {
		t.Fatalf("collision-model validity: %v", err)
	}
	bound := algo.ByID(algo.Beep).Bound(algo.BoundParams{N: g.N()})
	if s.Time() > bound {
		t.Fatalf("%d rounds exceeds registered bound %d", s.Time(), bound)
	}
}

func TestGossipOnNamedTopologies(t *testing.T) {
	for name, g := range namedTopologies() {
		t.Run(name, func(t *testing.T) {
			s, err := Gossip(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			checkAll(t, g, s)
		})
	}
}

func TestGossipOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(40)
		var g *graph.Graph
		if i%2 == 0 {
			g = graph.RandomTree(rng, n)
		} else {
			g = graph.RandomConnected(rng, n, 0.15)
		}
		s, err := Gossip(g, 0)
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", i, n, err)
		}
		checkAll(t, g, s)
	}
}

func TestGossipDeterministic(t *testing.T) {
	g := graph.Grid(4, 5)
	a, err := Gossip(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Gossip(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("two builds on the same network differ")
	}
}

func TestGossipTrivialAndErrors(t *testing.T) {
	s, err := Gossip(graph.Path(1), 0)
	if err != nil || s.Time() != 0 {
		t.Fatalf("singleton: (%d rounds, %v)", s.Time(), err)
	}
	if _, err := Gossip(graph.New(0), 0); err == nil {
		t.Fatal("empty network accepted")
	}
	disc := graph.New(3)
	disc.AddEdge(0, 1)
	if _, err := Gossip(disc, 0); err == nil {
		t.Fatal("disconnected network accepted")
	}
	if _, err := Gossip(graph.Path(8), 2); err == nil {
		t.Fatal("2-round budget somehow sufficed for an 8-path")
	}
}

// TestValidateRejectsCollisions feeds Validate a hand-built schedule where
// one receiver hears two simultaneous transmitters — valid in the base
// model (one of them targets it), impossible in the radio model.
func TestValidateRejectsCollisions(t *testing.T) {
	g := graph.Path(3) // 0-1-2: vertex 1 hears both ends
	s := schedule.New(3)
	s.AddSend(0, 0, 0, 1)
	s.AddSend(0, 2, 2, 1)
	if err := Validate(g, s); err == nil {
		t.Fatal("Validate accepted a receiver under two transmitters")
	}
}

func TestValidateRejectsTransmittingReceiver(t *testing.T) {
	g := graph.Path(2)
	s := schedule.New(2)
	s.AddSend(0, 0, 0, 1)
	s.AddSend(0, 1, 1, 0)
	if err := Validate(g, s); err == nil {
		t.Fatal("Validate accepted half-duplex violation")
	}
}

func TestValidateRejectsNonEdge(t *testing.T) {
	g := graph.Path(3)
	s := schedule.New(3)
	s.AddSend(0, 0, 0, 2) // 0 and 2 are not adjacent
	if err := Validate(g, s); err == nil {
		t.Fatal("Validate accepted a transmission across a non-link")
	}
}
