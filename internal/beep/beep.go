// Package beep builds gossip schedules under the collision-constrained
// (radio) variant of the communication model, after Hounkanli & Pelc
// ("Deterministic Broadcasting and Gossiping with Beeps") and Wu & Chrobak
// ("A Gossiping Protocol for Sparse Ad-Hoc Radio Networks"): a transmitting
// processor cannot aim its multicast — the transmission reaches every
// neighbour — and the receive-at-most-one rule hardens into a collision
// rule: a processor within range of two or more simultaneous transmitters
// hears noise and receives nothing, and a transmitting processor cannot
// receive at all that round (half-duplex).
//
// The planner is a deterministic greedy: each round it picks, for every
// candidate transmitter, the held message its neighbourhood misses most,
// then admits transmitters in descending gain order, admitting one only if
// the deliveries it newly enables outweigh the deliveries its interference
// destroys. While any (processor, message) deficit remains, some edge
// crosses it, so the first admitted transmitter always delivers at least
// one new pair — the per-round progress certificate behind the registered
// n(n-1) worst-case bound (measured schedules sit near n + O(r)).
//
// The emitted schedule records only the effective deliveries (transmitter,
// message, the neighbours that heard it alone and lacked it), so it is
// simultaneously a valid schedule of the paper's base model and — as
// Validate certifies — realisable under the collision rule.
package beep

import (
	"fmt"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// Gossip builds a collision-valid gossip schedule on connected g.
// maxRounds <= 0 defaults to the certified n(n-1) worst case.
func Gossip(g *graph.Graph, maxRounds int) (*schedule.Schedule, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("beep: empty network")
	}
	if !g.IsConnected() {
		return nil, graph.ErrDisconnected
	}
	if maxRounds <= 0 {
		maxRounds = n*(n-1) + 1
	}
	s := schedule.New(n)
	if n == 1 {
		return s, nil
	}

	holds := make([]*schedule.Bitset, n)
	for v := 0; v < n; v++ {
		holds[v] = schedule.NewBitset(n)
		holds[v].Set(v)
	}
	remaining := n * (n - 1)

	msgOf := make([]int, n)     // chosen message per candidate transmitter
	gainOf := make([]int, n)    // its initial (interference-free) gain
	order := make([]int, 0, n)  // candidates in admission order
	transmit := make([]bool, n) // admitted transmitter set
	coverCnt := make([]int, n)  // transmitting neighbours per processor
	coverBy := make([]int, n)   // the transmitter behind coverCnt==1
	for t := 0; remaining > 0; t++ {
		if t >= maxRounds {
			return nil, fmt.Errorf("beep: no completion after %d rounds with %d pairs missing", t, remaining)
		}
		// Candidate pass: for each processor, the held message the most
		// neighbours are missing.
		order = order[:0]
		for u := 0; u < n; u++ {
			best, bestGain := -1, 0
			for m := 0; m < n; m++ {
				if !holds[u].Has(m) {
					continue
				}
				gain := 0
				for _, v := range g.Neighbors(u) {
					if !holds[v].Has(m) {
						gain++
					}
				}
				if gain > bestGain {
					best, bestGain = m, gain
				}
			}
			msgOf[u], gainOf[u] = best, bestGain
			if best >= 0 {
				order = append(order, u)
			}
		}
		// Admission pass: descending gain, stable by id; admit when newly
		// enabled deliveries outweigh deliveries destroyed by the added
		// interference.
		insertionSortByGain(order, gainOf)
		for v := 0; v < n; v++ {
			transmit[v], coverCnt[v], coverBy[v] = false, 0, -1
		}
		admitted := 0
		for _, u := range order {
			gain, loss := 0, 0
			for _, v := range g.Neighbors(u) {
				if transmit[v] {
					continue // a transmitter hears nothing anyway
				}
				switch coverCnt[v] {
				case 0:
					if !holds[v].Has(msgOf[u]) {
						gain++
					}
				case 1:
					// v was hearing exactly coverBy[v]; u's signal
					// destroys that reception if it was useful.
					w := coverBy[v]
					if !holds[v].Has(msgOf[w]) {
						loss++
					}
				}
			}
			// Transmitting forfeits u's own reception this round.
			if coverCnt[u] == 1 && !holds[u].Has(msgOf[coverBy[u]]) {
				loss++
			}
			if gain <= loss || (admitted == 0 && gain == 0) {
				continue
			}
			transmit[u] = true
			admitted++
			for _, v := range g.Neighbors(u) {
				coverCnt[v]++
				if coverCnt[v] == 1 {
					coverBy[v] = u
				}
			}
		}
		// Delivery pass: a processor hearing exactly one transmitter, not
		// transmitting itself, receives that message; record the innovative
		// receptions as the transmitter's To set.
		progress := false
		for u := 0; u < n; u++ {
			if !transmit[u] {
				continue
			}
			var to []int
			for _, v := range g.Neighbors(u) {
				if transmit[v] || coverCnt[v] != 1 {
					continue
				}
				if holds[v].Has(msgOf[u]) {
					continue
				}
				to = append(to, v)
			}
			if len(to) == 0 {
				continue
			}
			s.AddSend(t, msgOf[u], u, to...)
			for _, v := range to {
				holds[v].Set(msgOf[u])
			}
			remaining -= len(to)
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("beep: round %d made no progress with %d pairs missing", t, remaining)
		}
	}
	return s, nil
}

// insertionSortByGain orders candidates by descending gain, ties by
// ascending id — deterministic and stable.
func insertionSortByGain(order []int, gain []int) {
	for i := 1; i < len(order); i++ {
		u := order[i]
		j := i
		for j > 0 && (gain[order[j-1]] < gain[u] || (gain[order[j-1]] == gain[u] && order[j-1] > u)) {
			order[j] = order[j-1]
			j--
		}
		order[j] = u
	}
}

// Validate certifies that s is realisable under the collision rule on g:
// every To set lies inside the sender's neighbourhood, and in every round
// each recorded receiver hears exactly one of the round's transmitters and
// is not itself transmitting. (Base-model validity — senders hold what
// they send, completion — is schedule.CheckGossip's job; this check is the
// extra constraint the radio model adds.)
func Validate(g *graph.Graph, s *schedule.Schedule) error {
	n := g.N()
	transmitters := make(map[int]bool, n)
	heard := make([]int, n)
	for t, round := range s.Rounds {
		for k := range transmitters {
			delete(transmitters, k)
		}
		for v := 0; v < n; v++ {
			heard[v] = 0
		}
		for _, tx := range round {
			if transmitters[tx.From] {
				return fmt.Errorf("beep: round %d: processor %d transmits twice", t, tx.From)
			}
			transmitters[tx.From] = true
			for _, d := range tx.To {
				if !g.HasEdge(tx.From, d) {
					return fmt.Errorf("beep: round %d: %d -> %d is not a link", t, tx.From, d)
				}
			}
		}
		// Count how many transmitters each processor hears.
		for u := range transmitters {
			for _, v := range g.Neighbors(u) {
				heard[v]++
			}
		}
		for _, tx := range round {
			for _, d := range tx.To {
				if transmitters[d] {
					return fmt.Errorf("beep: round %d: receiver %d is itself transmitting", t, d)
				}
				if heard[d] != 1 {
					return fmt.Errorf("beep: round %d: receiver %d hears %d transmitters", t, d, heard[d])
				}
			}
		}
	}
	return nil
}
