package obs

import "sync"

// RoundProgress is one point of an execution's per-round progress curve.
type RoundProgress struct {
	// Round is the absolute round index.
	Round int
	// Delivered, Dropped, Skipped, Superseded and NewPairs are the round's
	// delivery stats (see RoundStats).
	Delivered, Dropped, Skipped, Superseded, NewPairs int
	// Held is the cumulative number of (processor, message) pairs held
	// after the round, and Coverage its fraction of all pairs.
	Held     int
	Coverage float64
}

// ProgressCollector is a RoundObserver that folds EndRound events into a
// per-round holds-coverage progress curve — the per-round progress signal
// the algebraic-gossip literature analyses gossip through. It ignores
// per-delivery events entirely, so attaching it costs O(rounds), not
// O(deliveries).
type ProgressCollector struct {
	Nop
	mu          sync.Mutex
	initialHeld int
	totalPairs  int
	rounds      []RoundProgress // indexed by absolute round
	seen        []bool
}

// NewProgressCollector returns a collector for an execution that starts
// with initialHeld pairs already held out of totalPairs (the basic gossip
// instance starts with n of n² pairs: every processor holds its own
// message).
func NewProgressCollector(initialHeld, totalPairs int) *ProgressCollector {
	return &ProgressCollector{initialHeld: initialHeld, totalPairs: totalPairs}
}

// EndRound implements RoundObserver. Stats for the same absolute round
// accumulate, so a collector spanning schedule and repair phases merges
// re-executions of a round index rather than losing them.
func (c *ProgressCollector) EndRound(absRound int, stats RoundStats) {
	if absRound < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.rounds) <= absRound {
		c.rounds = append(c.rounds, RoundProgress{Round: len(c.rounds)})
		c.seen = append(c.seen, false)
	}
	r := &c.rounds[absRound]
	r.Delivered += stats.Delivered
	r.Dropped += stats.Dropped
	r.Skipped += stats.Skipped
	r.Superseded += stats.Superseded
	r.NewPairs += stats.NewPairs
	c.seen[absRound] = true
}

// Curve returns the progress curve: one entry per observed round in round
// order, with cumulative Held and Coverage filled in. Rounds never
// observed (possible when an observer is attached mid-pipeline) are
// omitted.
func (c *ProgressCollector) Curve() []RoundProgress {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RoundProgress, 0, len(c.rounds))
	held := c.initialHeld
	for i, r := range c.rounds {
		if !c.seen[i] {
			continue
		}
		held += r.NewPairs
		r.Held = held
		if c.totalPairs > 0 {
			r.Coverage = float64(held) / float64(c.totalPairs)
		}
		out = append(out, r)
	}
	return out
}
