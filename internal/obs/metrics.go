package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are atomic and
// allocation-free; callers resolve the handle once (Registry.Counter) and
// record through it on the hot path.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for the Prometheus dump to stay well-formed).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// bucket at the end. Observe is atomic and allocation-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds; Counts has one extra final
	// entry for the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot is a point-in-time copy of every metric in a Registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Registry is a named collection of counters, gauges and histograms.
// Metric lookup takes a lock and may allocate; recording through the
// returned handles is lock-free. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given finite bucket upper bounds on first use (later calls ignore
// bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.buckets)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sumBits.Load()),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WritePrometheus dumps the registry in the Prometheus text exposition
// format (version 0.0.4): one TYPE comment and sample per metric, with
// histogram buckets rendered cumulatively under le labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %v\n%s_count %d\n", name, h.Sum, name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// instrument is the RoundObserver that records execution events into a
// Registry. Handles are resolved once at construction; every event records
// through atomics only.
type instrument struct {
	Nop
	rounds, delivered, dropped, skipped, superseded, newPairs *Counter
	repairIters, repairRounds, quarLinks, quarProcs           *Counter
	outcomes                                                  [NumOutcomes]*Counter
	roundDelivered                                            *Histogram
}

// DefaultRoundBuckets are the delivery-count buckets Instrument uses for
// the per-round delivered histogram.
var DefaultRoundBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// Instrument returns a RoundObserver recording into r under the
// gossip_* metric names: per-round delivery counters
// (gossip_delivered_total, gossip_dropped_total, gossip_skipped_total,
// gossip_superseded_total, gossip_new_pairs_total, gossip_rounds_total),
// per-outcome delivery counters (gossip_outcome_<name>_total), repair
// dynamics (gossip_repair_iterations_total, gossip_repair_rounds_total,
// gossip_quarantined_links_total, gossip_quarantined_processors_total) and
// a per-round delivered histogram (gossip_round_delivered).
func Instrument(r *Registry) RoundObserver {
	ins := &instrument{
		rounds:         r.Counter("gossip_rounds_total"),
		delivered:      r.Counter("gossip_delivered_total"),
		dropped:        r.Counter("gossip_dropped_total"),
		skipped:        r.Counter("gossip_skipped_total"),
		superseded:     r.Counter("gossip_superseded_total"),
		newPairs:       r.Counter("gossip_new_pairs_total"),
		repairIters:    r.Counter("gossip_repair_iterations_total"),
		repairRounds:   r.Counter("gossip_repair_rounds_total"),
		quarLinks:      r.Counter("gossip_quarantined_links_total"),
		quarProcs:      r.Counter("gossip_quarantined_processors_total"),
		roundDelivered: r.Histogram("gossip_round_delivered", DefaultRoundBuckets),
	}
	for o := 0; o < NumOutcomes; o++ {
		ins.outcomes[o] = r.Counter("gossip_outcome_" + Outcome(o).String() + "_total")
	}
	return ins
}

func (i *instrument) EndRound(_ int, s RoundStats) {
	i.rounds.Inc()
	i.delivered.Add(int64(s.Delivered))
	i.dropped.Add(int64(s.Dropped))
	i.skipped.Add(int64(s.Skipped))
	i.superseded.Add(int64(s.Superseded))
	i.newPairs.Add(int64(s.NewPairs))
	i.roundDelivered.Observe(float64(s.Delivered))
}

func (i *instrument) Delivery(_, _, _, _ int, outcome Outcome) {
	if int(outcome) < NumOutcomes {
		i.outcomes[outcome].Inc()
	}
}

func (i *instrument) RepairIteration(_ int, s RepairStats) {
	i.repairIters.Inc()
	i.repairRounds.Add(int64(s.PlannedRounds))
}

func (i *instrument) Quarantine(_ int, links [][2]int, processors []int) {
	i.quarLinks.Add(int64(len(links)))
	i.quarProcs.Add(int64(len(processors)))
}
