package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOutcomeString(t *testing.T) {
	want := map[Outcome]string{
		Delivered:     "delivered",
		LostInFlight:  "lost_in_flight",
		ReceiverDown:  "receiver_down",
		SenderDown:    "sender_down",
		SenderMissing: "sender_missing",
		Superseded:    "superseded",
	}
	if len(want) != NumOutcomes {
		t.Fatalf("test covers %d outcomes, NumOutcomes is %d", len(want), NumOutcomes)
	}
	for o, name := range want {
		if o.String() != name {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), name)
		}
	}
	if got := Outcome(99).String(); got != "unknown" {
		t.Errorf("out-of-range outcome stringifies as %q, want unknown", got)
	}
}

// eventLog records raw events for fan-out assertions.
type eventLog struct {
	Nop
	mu     sync.Mutex
	events []string
}

func (l *eventLog) BeginRound(r int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, "begin")
}

func (l *eventLog) Delivery(_, _, _, _ int, o Outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, o.String())
}

func TestMultiDropsNilsAndCollapses(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	a := &eventLog{}
	if got := Multi(nil, a, nil); got != RoundObserver(a) {
		t.Error("Multi with one live observer should return it unwrapped")
	}
	b := &eventLog{}
	m := Multi(a, b)
	m.BeginRound(0)
	m.Delivery(0, 1, 2, 3, LostInFlight)
	m.EndRound(0, RoundStats{})
	m.BeginPhase("p", "d")
	m.EndPhase("p")
	m.RepairIteration(0, RepairStats{})
	m.Quarantine(0, nil, nil)
	for name, l := range map[string]*eventLog{"a": a, "b": b} {
		if len(l.events) != 2 || l.events[0] != "begin" || l.events[1] != "lost_in_flight" {
			t.Errorf("observer %s saw %v, want [begin lost_in_flight]", name, l.events)
		}
	}
}

func TestProgressCollectorCurve(t *testing.T) {
	// An execution starting with 3 of 9 pairs held: round 0 delivers 2 new
	// pairs, round 2 delivers 1 (round 1 never reported — attached
	// mid-pipeline), and round 0 is executed twice (schedule + repair reuse
	// of the index) adding 1 more.
	c := NewProgressCollector(3, 9)
	c.EndRound(0, RoundStats{Delivered: 2, NewPairs: 2})
	c.EndRound(2, RoundStats{Delivered: 3, NewPairs: 1, Dropped: 1})
	c.EndRound(0, RoundStats{Delivered: 1, NewPairs: 1})
	c.EndRound(-1, RoundStats{NewPairs: 100}) // ignored
	curve := c.Curve()
	if len(curve) != 2 {
		t.Fatalf("curve has %d points, want 2 (round 1 unobserved): %+v", len(curve), curve)
	}
	r0, r2 := curve[0], curve[1]
	if r0.Round != 0 || r0.Delivered != 3 || r0.NewPairs != 3 || r0.Held != 6 {
		t.Errorf("round 0 point %+v, want merged Delivered 3, NewPairs 3, Held 6", r0)
	}
	if math.Abs(r0.Coverage-6.0/9.0) > 1e-12 {
		t.Errorf("round 0 coverage %v, want 6/9", r0.Coverage)
	}
	if r2.Round != 2 || r2.Held != 7 || r2.Dropped != 1 {
		t.Errorf("round 2 point %+v, want Held 7, Dropped 1", r2)
	}
	if math.Abs(r2.Coverage-7.0/9.0) > 1e-12 {
		t.Errorf("round 2 coverage %v, want 7/9", r2.Coverage)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if r.Counter("c") != c {
		t.Error("Counter lookup not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if s.Counters["c"] != 5 {
		t.Errorf("counter = %d, want 5", s.Counters["c"])
	}
	if s.Gauges["g"] != 5 {
		t.Errorf("gauge = %d, want 5", s.Gauges["g"])
	}
	hs := s.Histograms["h"]
	if hs.Count != 4 || hs.Sum != 106.5 {
		t.Errorf("histogram count %d sum %v, want 4 and 106.5", hs.Count, hs.Sum)
	}
	// Buckets are per-bucket counts: le=1 gets {0.5, 1}, le=10 gets {5},
	// +Inf gets {100}.
	if len(hs.Counts) != 3 || hs.Counts[0] != 2 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Errorf("bucket counts %v, want [2 1 1]", hs.Counts)
	}
}

func TestRegistryConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			h := r.Histogram("lat", DefaultRoundBuckets)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 50))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["hits"] != 8000 {
		t.Errorf("hits = %d, want 8000", s.Counters["hits"])
	}
	if s.Histograms["lat"].Count != 8000 {
		t.Errorf("observations = %d, want 8000", s.Histograms["lat"].Count)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("gossip_delivered_total").Add(12)
	r.Gauge("gossip_live").Set(3)
	h := r.Histogram("gossip_round_delivered", []float64{1, 2})
	h.Observe(1)
	h.Observe(1.5)
	h.Observe(9)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gossip_delivered_total counter\ngossip_delivered_total 12\n",
		"# TYPE gossip_live gauge\ngossip_live 3\n",
		"# TYPE gossip_round_delivered histogram\n",
		"gossip_round_delivered_bucket{le=\"1\"} 1\n",
		"gossip_round_delivered_bucket{le=\"2\"} 2\n",
		"gossip_round_delivered_bucket{le=\"+Inf\"} 3\n",
		"gossip_round_delivered_sum 11.5\n",
		"gossip_round_delivered_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestInstrumentRecordsEvents(t *testing.T) {
	r := NewRegistry()
	ins := Instrument(r)
	ins.BeginRound(0)
	ins.Delivery(0, 1, 2, 3, Delivered)
	ins.Delivery(0, 4, 5, 6, LostInFlight)
	ins.EndRound(0, RoundStats{Delivered: 1, Dropped: 1, NewPairs: 1})
	ins.BeginRound(1)
	ins.Delivery(1, 1, 2, 3, Delivered)
	ins.EndRound(1, RoundStats{Delivered: 1, Skipped: 2, Superseded: 1, NewPairs: 1})
	ins.RepairIteration(0, RepairStats{PlannedRounds: 4})
	ins.Quarantine(0, [][2]int{{0, 1}}, []int{5, 6})
	s := r.Snapshot()
	want := map[string]int64{
		"gossip_rounds_total":                 2,
		"gossip_delivered_total":              2,
		"gossip_dropped_total":                1,
		"gossip_skipped_total":                2,
		"gossip_superseded_total":             1,
		"gossip_new_pairs_total":              2,
		"gossip_outcome_delivered_total":      2,
		"gossip_outcome_lost_in_flight_total": 1,
		"gossip_repair_iterations_total":      1,
		"gossip_repair_rounds_total":          4,
		"gossip_quarantined_links_total":      1,
		"gossip_quarantined_processors_total": 2,
	}
	for name, v := range want {
		if s.Counters[name] != v {
			t.Errorf("%s = %d, want %d", name, s.Counters[name], v)
		}
	}
	if s.Histograms["gossip_round_delivered"].Count != 2 {
		t.Errorf("round histogram count %d, want 2", s.Histograms["gossip_round_delivered"].Count)
	}
}

func TestTracerTimelineAndChromeExport(t *testing.T) {
	tr := NewTracer()
	// Deterministic clock: each call advances 1ms.
	var tick time.Duration
	base := tr.start
	tr.now = func() time.Time {
		tick += time.Millisecond
		return base.Add(tick)
	}
	tr.BeginPhase("schedule", "ConcurrentUpDown")
	tr.BeginRound(0)
	tr.Delivery(0, 0, 1, 0, Delivered)
	tr.Delivery(0, 1, 2, 1, LostInFlight)
	tr.EndRound(0, RoundStats{Delivered: 1, Dropped: 1, NewPairs: 1})
	tr.BeginRound(1)
	tr.EndRound(1, RoundStats{Delivered: 2, NewPairs: 2})
	tr.EndPhase("schedule")
	tr.RepairIteration(0, RepairStats{PlannedRounds: 3, DeficitBefore: 2, DeficitAfter: 0})
	tr.Quarantine(1, [][2]int{{2, 3}}, []int{4})
	tr.EndRound(7, RoundStats{}) // unmatched: zero-length span
	tr.EndPhase("ghost")         // unmatched: zero-length span

	if got := tr.OutcomeTotals(); got[Delivered] != 1 || got[LostInFlight] != 1 {
		t.Errorf("outcome totals %v", got)
	}
	if total := tr.RoundTotals(); total.Delivered != 3 || total.Dropped != 1 || total.NewPairs != 3 {
		t.Errorf("round totals %+v", total)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Ph+"/"+e.Name]++
	}
	for key, want := range map[string]int{
		"X/schedule":         1,
		"X/ghost":            1,
		"X/round":            3,
		"C/deliveries":       3,
		"i/repair-iteration": 1,
		"i/quarantine":       1,
	} {
		if counts[key] != want {
			t.Errorf("%s events: %d, want %d (all: %v)", key, counts[key], want, counts)
		}
	}
	// Spot-check the round args survive the round trip.
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "round" && e.Args["round"] == float64(0) {
			if e.Args["delivered"] != float64(1) || e.Args["dropped"] != float64(1) {
				t.Errorf("round 0 args %v", e.Args)
			}
		}
		if e.Ph == "X" && e.Name == "schedule" {
			if e.Dur <= 0 {
				t.Errorf("schedule span has non-positive duration %v", e.Dur)
			}
			if e.Args["detail"] != "ConcurrentUpDown" {
				t.Errorf("schedule detail %v", e.Args["detail"])
			}
		}
	}
}
