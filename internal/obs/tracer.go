package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer is a RoundObserver that records a timeline of phases, rounds,
// repair iterations and quarantines and exports it in the Chrome
// trace_event JSON format, loadable in chrome://tracing and Perfetto.
//
// Per-delivery events are not individually recorded — a ring at n = 1024
// already carries ~10⁶ deliveries, which no trace viewer wants — they are
// folded into lock-free per-outcome totals (OutcomeTotals) and into the
// per-round RoundStats arriving with EndRound. The round records are
// stored as fixed-size structs in a growable slice, so steady-state
// recording allocates only on slice growth; JSON is built at export time.
//
// A Tracer is safe for concurrent use. Rounds of concurrent executions
// sharing a Tracer are merged by round index at export.
type Tracer struct {
	mu         sync.Mutex
	start      time.Time
	now        func() time.Time
	rounds     []roundSpan
	phases     []phaseSpan
	repairs    []repairMark
	quars      []quarantineMark
	openRounds map[int]time.Duration
	openPhases map[string]openPhase
	outcomes   [NumOutcomes]atomic.Int64
}

type roundSpan struct {
	round      int
	begin, end time.Duration
	stats      RoundStats
}

type phaseSpan struct {
	name, detail string
	begin, end   time.Duration
}

type openPhase struct {
	detail string
	begin  time.Duration
}

type repairMark struct {
	iter  int
	at    time.Duration
	stats RepairStats
}

type quarantineMark struct {
	iter  int
	at    time.Duration
	links [][2]int
	procs []int
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	t := &Tracer{
		now:        time.Now,
		openRounds: make(map[int]time.Duration),
		openPhases: make(map[string]openPhase),
	}
	t.start = t.now()
	return t
}

func (t *Tracer) since() time.Duration { return t.now().Sub(t.start) }

// BeginPhase implements RoundObserver.
func (t *Tracer) BeginPhase(phase, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.openPhases[phase] = openPhase{detail: detail, begin: t.since()}
}

// EndPhase implements RoundObserver. An EndPhase without a matching
// BeginPhase is recorded as a zero-length span ending now.
func (t *Tracer) EndPhase(phase string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.since()
	open, ok := t.openPhases[phase]
	if !ok {
		open = openPhase{begin: end}
	}
	delete(t.openPhases, phase)
	t.phases = append(t.phases, phaseSpan{name: phase, detail: open.detail, begin: open.begin, end: end})
}

// BeginRound implements RoundObserver.
func (t *Tracer) BeginRound(absRound int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.openRounds[absRound] = t.since()
}

// EndRound implements RoundObserver.
func (t *Tracer) EndRound(absRound int, stats RoundStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.since()
	begin, ok := t.openRounds[absRound]
	if !ok {
		begin = end
	}
	delete(t.openRounds, absRound)
	t.rounds = append(t.rounds, roundSpan{round: absRound, begin: begin, end: end, stats: stats})
}

// Delivery implements RoundObserver: the hot path, an atomic add only.
func (t *Tracer) Delivery(_, _, _, _ int, outcome Outcome) {
	if int(outcome) < NumOutcomes {
		t.outcomes[outcome].Add(1)
	}
}

// RepairIteration implements RoundObserver.
func (t *Tracer) RepairIteration(iter int, stats RepairStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.repairs = append(t.repairs, repairMark{iter: iter, at: t.since(), stats: stats})
}

// Quarantine implements RoundObserver.
func (t *Tracer) Quarantine(iter int, links [][2]int, processors []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.quars = append(t.quars, quarantineMark{
		iter:  iter,
		at:    t.since(),
		links: append([][2]int(nil), links...),
		procs: append([]int(nil), processors...),
	})
}

// OutcomeTotals returns the total per-outcome delivery counts observed so
// far, indexed by Outcome.
func (t *Tracer) OutcomeTotals() [NumOutcomes]int64 {
	var out [NumOutcomes]int64
	for i := range out {
		out[i] = t.outcomes[i].Load()
	}
	return out
}

// RoundTotals returns the RoundStats summed over every recorded round.
func (t *Tracer) RoundTotals() RoundStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total RoundStats
	for _, r := range t.rounds {
		total.add(r.stats)
	}
	return total
}

// traceEvent is one entry of the Chrome trace_event format's JSON array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the trace_event specification.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const (
	tracePid    = 1
	tidPhases   = 1
	tidRounds   = 2
	tidRepair   = 3
	counterName = "deliveries"
)

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports the recorded timeline as trace_event JSON:
// phase spans and round spans as complete ("X") events, one counter ("C")
// sample per round carrying the round's delivered/dropped/new-pair totals,
// and repair iterations and quarantines as instant ("i") events. Load the
// output in chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.phases)+2*len(t.rounds)+len(t.repairs)+len(t.quars)+3)
	for _, p := range t.phases {
		events = append(events, traceEvent{
			Name: p.name, Cat: "phase", Ph: "X",
			Ts: us(p.begin), Dur: us(p.end - p.begin),
			Pid: tracePid, Tid: tidPhases,
			Args: map[string]any{"detail": p.detail},
		})
	}
	for _, r := range t.rounds {
		events = append(events,
			traceEvent{
				Name: "round", Cat: "round", Ph: "X",
				Ts: us(r.begin), Dur: us(r.end - r.begin),
				Pid: tracePid, Tid: tidRounds,
				Args: map[string]any{
					"round":      r.round,
					"delivered":  r.stats.Delivered,
					"dropped":    r.stats.Dropped,
					"skipped":    r.stats.Skipped,
					"superseded": r.stats.Superseded,
					"new_pairs":  r.stats.NewPairs,
				},
			},
			traceEvent{
				Name: counterName, Ph: "C",
				Ts:  us(r.end),
				Pid: tracePid, Tid: tidRounds,
				Args: map[string]any{
					"delivered": r.stats.Delivered,
					"dropped":   r.stats.Dropped,
				},
			},
		)
	}
	for _, m := range t.repairs {
		events = append(events, traceEvent{
			Name: "repair-iteration", Cat: "repair", Ph: "i",
			Ts:  us(m.at),
			Pid: tracePid, Tid: tidRepair, S: "t",
			Args: map[string]any{
				"iteration":      m.iter,
				"planned_rounds": m.stats.PlannedRounds,
				"deficit_before": m.stats.DeficitBefore,
				"deficit_after":  m.stats.DeficitAfter,
				"quarantined":    m.stats.Quarantined,
			},
		})
	}
	for _, q := range t.quars {
		events = append(events, traceEvent{
			Name: "quarantine", Cat: "repair", Ph: "i",
			Ts:  us(q.at),
			Pid: tracePid, Tid: tidRepair, S: "g",
			Args: map[string]any{
				"iteration":  q.iter,
				"links":      q.links,
				"processors": q.procs,
			},
		})
	}
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
