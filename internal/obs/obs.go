// Package obs is the execution observability layer: structured per-round
// events, an atomic metrics registry, and trace exporters. The paper's
// n + r bound is a claim about per-round behaviour — receive before send,
// one receive per processor, contiguous DFS intervals — yet validators can
// only assert it post-hoc. This package makes a running schedule watchable:
// the executors in package schedule, fault and repair emit RoundObserver
// events as they go, and the provided sinks aggregate them into per-round
// progress curves (ProgressCollector), counters and histograms (Registry
// via Instrument), and Chrome trace_event timelines (Tracer) loadable in
// chrome://tracing or Perfetto.
//
// The layer is built to cost nothing when unused and almost nothing when
// used: executors skip all emission behind a single nil check, and the hot
// per-delivery path of every provided sink records through atomics only —
// no locks, no allocation. Per-round and per-phase events may allocate
// (they are O(rounds), not O(deliveries)).
package obs

// Outcome classifies what happened to one scheduled point-to-point
// delivery. It is the canonical outcome enumeration; package fault aliases
// its DeliveryOutcome to it.
type Outcome uint8

const (
	// Delivered: the message arrived and was absorbed into the hold set.
	Delivered Outcome = iota
	// LostInFlight: the fault injector dropped the delivery on the link.
	LostInFlight
	// ReceiverDown: the transmission was sent but the receiver was crashed.
	ReceiverDown
	// SenderDown: the whole transmission was skipped because the sender was
	// crashed; nothing entered the link.
	SenderDown
	// SenderMissing: the transmission was skipped because the sender never
	// received the message (upstream fault propagation).
	SenderMissing
	// Superseded: the message arrived but the receiver had already accepted
	// another delivery this round; the later arrival is discarded.
	Superseded

	// NumOutcomes is the number of Outcome values, for sizing counter arrays.
	NumOutcomes = int(Superseded) + 1
)

var outcomeNames = [NumOutcomes]string{
	"delivered", "lost_in_flight", "receiver_down",
	"sender_down", "sender_missing", "superseded",
}

// String returns the snake_case outcome name used by exporters.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// RoundStats aggregates the fate of one executed round's deliveries.
type RoundStats struct {
	// Delivered counts deliveries absorbed into hold sets this round.
	Delivered int
	// Dropped counts deliveries lost in flight (injector drops and crashed
	// receivers) — the same notion the executors' dropped return value uses.
	Dropped int
	// Skipped counts deliveries never sent because the sender was crashed
	// or never held the message (upstream fault propagation).
	Skipped int
	// Superseded counts same-round receiver conflicts discarded.
	Superseded int
	// NewPairs counts (processor, message) pairs newly held after the
	// round — the round's contribution to the coverage progress curve.
	NewPairs int
}

// add accumulates o into s.
func (s *RoundStats) add(o RoundStats) {
	s.Delivered += o.Delivered
	s.Dropped += o.Dropped
	s.Skipped += o.Skipped
	s.Superseded += o.Superseded
	s.NewPairs += o.NewPairs
}

// RepairStats describes one plan-execute-remeasure iteration of the repair
// engine.
type RepairStats struct {
	// PlannedRounds is the number of rounds the iteration planned and ran.
	PlannedRounds int
	// DeficitBefore and DeficitAfter are the missing-pair counts on either
	// side of the iteration.
	DeficitBefore, DeficitAfter int
	// Quarantined reports that the iteration's failures pushed the
	// suspicion tracker past its threshold (a Quarantine event follows).
	Quarantined bool
}

// RoundObserver receives structured events from an observed execution.
// Executors call it with absolute round indices (repair rounds appended
// after a T-round schedule report rounds T, T+1, ...), so one observer
// spans an entire execute-repair pipeline.
//
// Implementations must be safe for concurrent use when shared across
// executions; Delivery is the hot path (called once per point-to-point
// delivery) and should avoid locks and allocation.
type RoundObserver interface {
	// BeginPhase/EndPhase bracket a named stage of the pipeline ("schedule",
	// "repair", a sweep, ...). detail is free-form context for exporters.
	BeginPhase(phase, detail string)
	EndPhase(phase string)
	// BeginRound/EndRound bracket one communication round; EndRound carries
	// the round's aggregated delivery stats.
	BeginRound(absRound int)
	EndRound(absRound int, stats RoundStats)
	// Delivery reports the fate of one scheduled delivery.
	Delivery(absRound, from, to, msg int, outcome Outcome)
	// RepairIteration reports one completed repair iteration.
	RepairIteration(iter int, stats RepairStats)
	// Quarantine reports an amputation of the survivor topology: the links
	// and processors the repair engine diagnosed as permanently faulty.
	Quarantine(iter int, links [][2]int, processors []int)
}

// Nop is an embeddable no-op RoundObserver: embed it to implement only the
// events a sink cares about.
type Nop struct{}

func (Nop) BeginPhase(string, string)            {}
func (Nop) EndPhase(string)                      {}
func (Nop) BeginRound(int)                       {}
func (Nop) EndRound(int, RoundStats)             {}
func (Nop) Delivery(int, int, int, int, Outcome) {}
func (Nop) RepairIteration(int, RepairStats)     {}
func (Nop) Quarantine(int, [][2]int, []int)      {}

// multi fans events out to several observers.
type multi []RoundObserver

func (m multi) BeginPhase(phase, detail string) {
	for _, o := range m {
		o.BeginPhase(phase, detail)
	}
}
func (m multi) EndPhase(phase string) {
	for _, o := range m {
		o.EndPhase(phase)
	}
}
func (m multi) BeginRound(absRound int) {
	for _, o := range m {
		o.BeginRound(absRound)
	}
}
func (m multi) EndRound(absRound int, stats RoundStats) {
	for _, o := range m {
		o.EndRound(absRound, stats)
	}
}
func (m multi) Delivery(absRound, from, to, msg int, outcome Outcome) {
	for _, o := range m {
		o.Delivery(absRound, from, to, msg, outcome)
	}
}
func (m multi) RepairIteration(iter int, stats RepairStats) {
	for _, o := range m {
		o.RepairIteration(iter, stats)
	}
}
func (m multi) Quarantine(iter int, links [][2]int, processors []int) {
	for _, o := range m {
		o.Quarantine(iter, links, processors)
	}
}

// Multi combines observers into one that fans every event out in order.
// Nil entries are dropped; Multi returns nil when nothing remains (so the
// executors' nil fast path still applies) and the observer itself when
// exactly one remains.
func Multi(observers ...RoundObserver) RoundObserver {
	var out multi
	for _, o := range observers {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
