package implicit_test

import (
	"math/rand"
	"reflect"
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// oracle materialises the ConcurrentUpDown schedule for the same tree in
// original vertex identifiers — the ground truth every implicit query must
// match bit for bit.
func oracle(l *spantree.Labeled) *schedule.Schedule {
	return core.RemapToOriginal(core.BuildConcurrentUpDown(l), l)
}

// assertEquivalent checks every query of the implicit plan against the
// materialised schedule: round count, every round's transmission list, and
// every vertex's timetable rows.
func assertEquivalent(t *testing.T, name string, tree *spantree.Tree) {
	t.Helper()
	l := spantree.Label(tree)
	if err := l.Verify(); err != nil {
		t.Fatalf("%s: bad labelling: %v", name, err)
	}
	p := implicit.New(l)
	s := oracle(l)
	origTree := treeInOriginalIDs(l)

	if got, want := p.Rounds(), s.Time(); got != want {
		t.Fatalf("%s: Rounds() = %d, schedule time = %d", name, got, want)
	}
	if got, want := p.N(), tree.N(); got != want {
		t.Fatalf("%s: N() = %d, want %d", name, got, want)
	}
	if got, want := p.Height(), tree.Height; got != want {
		t.Fatalf("%s: Height() = %d, want %d", name, got, want)
	}

	for time := 0; time < p.Rounds(); time++ {
		got := p.RoundAppend(time, nil)
		var want []schedule.Transmission
		if time < len(s.Rounds) {
			want = s.Rounds[time]
		}
		if len(got) != len(want) {
			t.Fatalf("%s: round %d has %d transmissions, want %d\ngot  %v\nwant %v",
				name, time, len(got), len(want), got, want)
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Msg != w.Msg || g.From != w.From || !reflect.DeepEqual(g.To, w.To) {
				t.Fatalf("%s: round %d transmission %d = %v, want %v", name, time, i, g, w)
			}
		}
	}
	// Out-of-range rounds are empty and leave dst untouched.
	if got := p.RoundAppend(p.Rounds(), nil); len(got) != 0 {
		t.Fatalf("%s: RoundAppend past the end returned %v", name, got)
	}
	if got := p.RoundAppend(-1, nil); len(got) != 0 {
		t.Fatalf("%s: RoundAppend(-1) returned %v", name, got)
	}

	for v := 0; v < tree.N(); v++ {
		got := p.Timetable(v)
		want := schedule.VertexView(s, origTree, v)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: timetable of vertex %d differs\ngot  %+v\nwant %+v", name, v, got, want)
		}
	}
}

// treeInOriginalIDs rebuilds the labelled tree in original vertex ids, the
// form VertexView expects alongside the remapped schedule.
func treeInOriginalIDs(l *spantree.Labeled) *spantree.Tree {
	n := l.N()
	parent := make([]int, n)
	for c := 0; c < n; c++ {
		if p := l.T.Parent[c]; p == -1 {
			parent[l.VertexOf[c]] = -1
		} else {
			parent[l.VertexOf[c]] = l.VertexOf[p]
		}
	}
	return spantree.MustFromParents(parent)
}

// chain returns the path 0-1-2-...-(n-1) rooted at 0: every vertex lies on
// the leftmost DFS path, so the i = k relocation applies at every level.
func chain(n int) *spantree.Tree {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	return spantree.MustFromParents(parent)
}

// star returns the root-with-all-leaves tree on n vertices.
func star(n int) *spantree.Tree {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = 0
	}
	return spantree.MustFromParents(parent)
}

// randomTree returns a random tree on n vertices whose vertex ids are a
// random permutation, so canonical labels differ from original ids and the
// remapping paths are exercised.
func randomTree(rng *rand.Rand, n int) *spantree.Tree {
	perm := rng.Perm(n)
	parent := make([]int, n)
	parent[perm[0]] = -1
	for i := 1; i < n; i++ {
		parent[perm[i]] = perm[rng.Intn(i)]
	}
	return spantree.MustFromParents(parent)
}

func TestTwoVertexTree(t *testing.T) {
	assertEquivalent(t, "two-vertex", chain(2))
}

func TestSingleVertexTree(t *testing.T) {
	tree := chain(1)
	p := implicit.New(spantree.Label(tree))
	if p.Rounds() != 0 {
		t.Fatalf("single vertex: Rounds() = %d, want 0", p.Rounds())
	}
	if got := p.RoundAppend(0, nil); len(got) != 0 {
		t.Fatalf("single vertex: RoundAppend(0) = %v", got)
	}
	vt := p.Timetable(0)
	for _, row := range [][]int{vt.RecvParent, vt.RecvChild, vt.SendParent, vt.SendChild} {
		if len(row) != 1 || row[0] != schedule.NoMessage {
			t.Fatalf("single vertex: non-empty timetable %+v", vt)
		}
	}
}

func TestChains(t *testing.T) {
	for n := 2; n <= 14; n++ {
		assertEquivalent(t, "chain", chain(n))
	}
}

func TestStars(t *testing.T) {
	for n := 2; n <= 14; n++ {
		assertEquivalent(t, "star", star(n))
	}
}

func TestFig5Tree(t *testing.T) {
	assertEquivalent(t, "fig5", spantree.MustFromParents(graph.Fig5TreeParents()))
}

// TestBroomTrees exercises mixed shapes: a chain whose last vertex fans out
// into leaves (deep leftmost path feeding captures below) and its mirror
// (a star whose last leaf continues into a chain).
func TestBroomTrees(t *testing.T) {
	for handle := 1; handle <= 5; handle++ {
		for brush := 1; brush <= 5; brush++ {
			n := handle + brush
			parent := make([]int, n)
			parent[0] = -1
			for v := 1; v < handle; v++ {
				parent[v] = v - 1
			}
			for v := handle; v < n; v++ {
				parent[v] = handle - 1
			}
			assertEquivalent(t, "broom", spantree.MustFromParents(parent))
		}
	}
}

func TestRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(60)
		assertEquivalent(t, "random", randomTree(rng, n))
	}
}

func TestRandomTreesLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		assertEquivalent(t, "random-large", randomTree(rng, 150+rng.Intn(100)))
	}
}

func TestNamedGraphTopologies(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"fig4":      graph.Fig4(),
		"petersen":  graph.Petersen(),
		"path16":    graph.Path(16),
		"cycle17":   graph.Cycle(17),
		"star16":    graph.Star(16),
		"complete9": graph.Complete(9),
		"grid5x6":   graph.Grid(5, 6),
		"hypercube": graph.Hypercube(4),
	}
	for name, g := range graphs {
		tree, err := spantree.MinDepth(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertEquivalent(t, name, tree)
	}
}

func TestLabeledReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tree := randomTree(rng, 2+rng.Intn(80))
		l := spantree.Label(tree)
		p := implicit.New(l)

		got := p.Labeled()
		if err := got.Verify(); err != nil {
			t.Fatalf("reconstructed labelling invalid: %v", err)
		}
		if !reflect.DeepEqual(got.VertexOf, l.VertexOf) ||
			!reflect.DeepEqual(got.LabelOf, l.LabelOf) ||
			!reflect.DeepEqual(got.Hi, l.Hi) ||
			!reflect.DeepEqual(got.T.Parent, l.T.Parent) {
			t.Fatalf("reconstructed labelling differs from input")
		}

		origTree := p.OriginalTree()
		if !reflect.DeepEqual(origTree.Parent, tree.Parent) {
			t.Fatalf("reconstructed original tree differs: %v vs %v", origTree.Parent, tree.Parent)
		}
		if origTree.Height != tree.Height || origTree.Root != tree.Root {
			t.Fatalf("reconstructed original tree shape differs")
		}
	}
}

func TestSizeBytesIsLinear(t *testing.T) {
	for _, n := range []int{16, 256, 4096} {
		p := implicit.New(spantree.Label(chain(n)))
		got := p.SizeBytes()
		// 7 int32 arrays of ~n entries plus the lip bitset and headers.
		lo, hi := int64(28*n), int64(32*n+512)
		if got < lo || got > hi {
			t.Fatalf("n=%d: SizeBytes() = %d, want within [%d, %d]", n, got, lo, hi)
		}
	}
}

func TestRoundAppendReusesBuffer(t *testing.T) {
	p := implicit.New(spantree.Label(star(16)))
	buf := make([]schedule.Transmission, 0, 64)
	for time := 0; time < p.Rounds(); time++ {
		buf = buf[:0]
		buf = p.RoundAppend(time, buf)
		if cap(buf) > 64 {
			// Star rounds hold at most two transmissions; the buffer must
			// never be reallocated.
			t.Fatalf("round %d grew the buffer to cap %d", time, cap(buf))
		}
	}
}
