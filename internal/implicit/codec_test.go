package implicit

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// decodePlanFor builds a plan, encodes it, and decodes the bytes back.
func codecRoundtrip(t *testing.T, g *graph.Graph) (*Plan, *Plan) {
	t.Helper()
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	p := New(spantree.Label(tr))
	enc := p.AppendBinary(nil)
	if len(enc) != p.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(enc), p.EncodedLen())
	}
	q, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return p, q
}

// TestCodecRoundtrip requires a decoded plan to answer every round and every
// timetable bit-identically to the plan it was encoded from, across tree
// shapes that exercise each closed-form rule.
func TestCodecRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tops := map[string]*graph.Graph{
		"ring32":  graph.Cycle(32),
		"star17":  graph.Star(17),
		"line25":  graph.Path(25),
		"grid5x5": graph.Grid(5, 5),
		"random":  graph.RandomConnected(rng, 48, 0.08),
	}
	for name, g := range tops {
		p, q := codecRoundtrip(t, g)
		if p.N() != q.N() || p.Height() != q.Height() || p.Rounds() != q.Rounds() {
			t.Fatalf("%s: shape mismatch: n %d/%d height %d/%d", name, p.N(), q.N(), p.Height(), q.Height())
		}
		var a, b []schedule.Transmission
		for r := 0; r < p.Rounds(); r++ {
			a = p.RoundAppend(r, a[:0])
			b = q.RoundAppend(r, b[:0])
			if len(a) != len(b) {
				t.Fatalf("%s round %d: %d vs %d transmissions", name, r, len(a), len(b))
			}
			for i := range a {
				if a[i].Msg != b[i].Msg || a[i].From != b[i].From || !equalInts(a[i].To, b[i].To) {
					t.Fatalf("%s round %d tx %d: %+v vs %+v", name, r, i, a[i], b[i])
				}
			}
		}
		for v := 0; v < p.N(); v++ {
			if !timetablesEqual(p.Timetable(v), q.Timetable(v)) {
				t.Fatalf("%s: timetable of %d differs after roundtrip", name, v)
			}
		}
		// A second encode of the decoded plan must be byte-identical: the
		// format has one canonical serialisation per plan.
		if !bytes.Equal(p.AppendBinary(nil), q.AppendBinary(nil)) {
			t.Fatalf("%s: re-encoding the decoded plan changed the bytes", name)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func timetablesEqual(a, b *schedule.VertexTimetable) bool {
	return a.Vertex == b.Vertex &&
		equalInts(a.RecvParent, b.RecvParent) && equalInts(a.RecvChild, b.RecvChild) &&
		equalInts(a.SendParent, b.SendParent) && equalInts(a.SendChild, b.SendChild)
}

// TestCodecRejects maps the malformed-input space to clean ErrCodec errors:
// every case here is a real corruption class the disk tier can hand the
// decoder after a checksum collision or a buggy writer.
func TestCodecRejects(t *testing.T) {
	g := graph.Cycle(16)
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	good := New(spantree.Label(tr)).AppendBinary(nil)

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:8],
		"truncated": good[:len(good)-5],
		"bad magic": mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b }),
		"huge n": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 1<<31-1)
			return b
		}),
		"zero n": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 0)
			return b
		}),
		"wrong height": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 99)
			return b
		}),
		"non-root label 0": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 3)
			return b
		}),
		"forward parent": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12+4:], 7) // label 1's parent must be 0
			return b
		}),
		"permutation repeat": mutate(func(b []byte) []byte {
			n := int(binary.LittleEndian.Uint32(b[4:]))
			perm := b[12+4*n:]
			copy(perm[4:8], perm[0:4])
			return b
		}),
		"permutation out of range": mutate(func(b []byte) []byte {
			n := int(binary.LittleEndian.Uint32(b[4:]))
			binary.LittleEndian.PutUint32(b[12+4*n:], uint32(n))
			return b
		}),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: Decode err = %v, want ErrCodec", name, err)
		}
	}
}

// TestCodecNonContiguousSubtree builds a parent array that is parent-ordered
// but not a DFS preorder (the subtree of label 1 is {1, 3}, skipping 2) and
// requires the contiguity check to reject it — the interval arithmetic of
// the closed forms would silently mis-route messages otherwise.
func TestCodecNonContiguousSubtree(t *testing.T) {
	buf := append([]byte(nil), codecMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, 4) // n
	buf = binary.LittleEndian.AppendUint32(buf, 2) // height of this parent array
	for _, par := range []uint32{rootMark, 0, 0, 1} {
		buf = binary.LittleEndian.AppendUint32(buf, par)
	}
	for v := uint32(0); v < 4; v++ {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	if _, err := Decode(buf); !errors.Is(err, ErrCodec) {
		t.Fatalf("Decode err = %v, want ErrCodec for non-contiguous subtree", err)
	}
}

// TestParentOriginal checks the tree-edge accessor the store's decode
// validation walks.
func TestParentOriginal(t *testing.T) {
	g := graph.Star(9)
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	l := spantree.Label(tr)
	p := New(l)
	roots := 0
	for v := 0; v < p.N(); v++ {
		par := p.ParentOriginal(v)
		if par == -1 {
			roots++
			continue
		}
		if !g.HasEdge(v, par) {
			t.Fatalf("tree edge %d-%d not in topology", v, par)
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots, want 1", roots)
	}
}

// FuzzPlanDecode is the store-robustness gate: no byte string, however
// corrupt, may make the decoder panic, and anything it accepts must be a
// plan whose re-encoding round-trips and whose rounds evaluate without
// panicking.
func FuzzPlanDecode(f *testing.F) {
	g := graph.Cycle(12)
	if tr, err := spantree.MinDepth(g); err == nil {
		f.Add(New(spantree.Label(tr)).AppendBinary(nil))
	}
	f.Add([]byte{})
	f.Add(codecMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(p.AppendBinary(nil), data) {
			t.Fatalf("accepted input does not round-trip")
		}
		var buf []schedule.Transmission
		for r := 0; r < p.Rounds() && r < 64; r++ {
			buf = p.RoundAppend(r, buf[:0])
		}
		for v := 0; v < p.N() && v < 16; v++ {
			p.Timetable(v)
		}
	})
}
