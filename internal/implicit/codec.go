// codec.go is the wire form of the compact plan: the disk tier of the
// serving layer persists plans in this encoding, so a restarted server can
// warm-start from files instead of re-running the O(nm) construction.
//
// The format stores only the irreducible core — the canonical parent array
// and the canonical→original vertex permutation — because everything else
// in a Plan (subtree intervals, levels, child CSR, lip bits) is a pure
// function of those two arrays. That keeps the encoding at 8 bytes per
// vertex and, more importantly, lets Decode re-derive the redundant arrays
// itself instead of trusting them: a decoded Plan is structurally valid by
// construction or Decode returns an error. Decode never panics on
// malformed input, however adversarial — the FuzzPlanDecode harness
// enforces that — because store corruption must degrade to a cache miss,
// not a dead server.
package implicit

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// codecMagic opens every encoded plan; the trailing digit is the format
// version. Bump it when the layout changes — stale store entries then fail
// decoding and are rebuilt, which is the upgrade path.
var codecMagic = [4]byte{'M', 'G', 'i', '1'}

// codecHeaderLen is magic + uint32 n + uint32 height.
const codecHeaderLen = 12

// rootMark encodes the root's parent (-1) as a uint32.
const rootMark = ^uint32(0)

// ErrCodec wraps every decoding failure, so callers can classify "bytes do
// not decode to a plan" without matching message text.
var ErrCodec = errors.New("implicit: malformed plan encoding")

// EncodedLen returns the exact byte length AppendBinary produces for p.
func (p *Plan) EncodedLen() int { return codecHeaderLen + 8*p.n }

// AppendBinary appends the plan's wire encoding to dst and returns the
// extended slice: the 12-byte header (magic, n, height), then the canonical
// parent array and the canonical→original permutation as little-endian
// uint32s. 8 bytes per vertex.
func (p *Plan) AppendBinary(dst []byte) []byte {
	dst = append(dst, codecMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.n))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.height))
	for _, par := range p.parent {
		if par < 0 {
			dst = binary.LittleEndian.AppendUint32(dst, rootMark)
		} else {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(par))
		}
	}
	for _, v := range p.vertexOf {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// Decode parses a plan encoded by AppendBinary and re-derives every
// redundant array, validating the full structural contract on the way:
// exactly preorder-consistent parents (parent precedes child, subtrees are
// contiguous label intervals), a bijective vertex permutation, and a header
// height that matches the tree. Any violation returns an error wrapping
// ErrCodec; no input can make Decode panic or allocate beyond a small
// multiple of len(data).
func Decode(data []byte) (*Plan, error) {
	if len(data) < codecHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCodec, len(data), codecHeaderLen)
	}
	if [4]byte(data[:4]) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCodec, data[:4])
	}
	n64 := int64(binary.LittleEndian.Uint32(data[4:8]))
	height := int(binary.LittleEndian.Uint32(data[8:12]))
	// The length check comes before any n-sized allocation, so a corrupt
	// header cannot demand gigabytes for a kilobyte file.
	if n64 < 1 || int64(len(data)) != codecHeaderLen+8*n64 {
		return nil, fmt.Errorf("%w: n=%d does not match %d payload bytes", ErrCodec, n64, len(data)-codecHeaderLen)
	}
	n := int(n64)

	p := &Plan{
		n:          n,
		height:     height,
		hi:         make([]int32, n),
		level:      make([]int32, n),
		parent:     make([]int32, n),
		childStart: make([]int32, n+1),
		lip:        make([]uint64, (n+63)/64),
		vertexOf:   make([]int32, n),
		labelOf:    make([]int32, n),
	}

	// Parents: the root is label 0, and in DFS preorder every other vertex's
	// parent carries a strictly smaller label.
	body := data[codecHeaderLen:]
	for v := 0; v < n; v++ {
		raw := binary.LittleEndian.Uint32(body[4*v:])
		switch {
		case v == 0:
			if raw != rootMark {
				return nil, fmt.Errorf("%w: label 0 has parent %d, want root", ErrCodec, raw)
			}
			p.parent[0] = -1
		case int64(raw) >= int64(v):
			return nil, fmt.Errorf("%w: label %d has parent %d, want < %d", ErrCodec, v, raw, v)
		default:
			p.parent[v] = int32(raw)
		}
	}

	// Vertex permutation: canonical label -> original id, bijective.
	perm := body[4*n:]
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		raw := binary.LittleEndian.Uint32(perm[4*v:])
		if int64(raw) >= int64(n) || seen[raw] {
			return nil, fmt.Errorf("%w: vertexOf[%d]=%d is out of range or repeated", ErrCodec, v, raw)
		}
		seen[raw] = true
		p.vertexOf[v] = int32(raw)
		p.labelOf[raw] = int32(v)
	}

	// Re-derive subtree intervals: a vertex's interval closes at the highest
	// label among its descendants. Processing labels in descending order
	// finalises every child before its parent folds it in.
	for v := range p.hi {
		p.hi[v] = int32(v)
	}
	for v := n - 1; v >= 1; v-- {
		par := p.parent[v]
		if p.hi[v] > p.hi[par] {
			p.hi[par] = p.hi[v]
		}
	}

	// Child CSR (children of each vertex ascend because labels are handed
	// out in preorder), then the preorder-contiguity proof: the children of
	// v must tile [v+1, hi[v]] exactly, each starting where the previous
	// subtree ended. Parents that merely precede their children do not
	// guarantee this; a plan whose closed forms index by interval does.
	for v := 1; v < n; v++ {
		p.childStart[p.parent[v]+1]++
	}
	for v := 0; v < n; v++ {
		p.childStart[v+1] += p.childStart[v]
	}
	p.children = make([]int32, n-1)
	fill := make([]int32, n)
	copy(fill, p.childStart[:n])
	for v := 1; v < n; v++ {
		par := p.parent[v]
		p.children[fill[par]] = int32(v)
		fill[par]++
	}
	for v := 0; v < n; v++ {
		expect := int32(v) + 1
		for _, c := range p.kids(int32(v)) {
			if c != expect {
				return nil, fmt.Errorf("%w: subtree of %d is not a contiguous interval (child %d, want %d)", ErrCodec, v, c, expect)
			}
			expect = p.hi[c] + 1
		}
		if len(p.kids(int32(v))) > 0 && expect != p.hi[v]+1 {
			return nil, fmt.Errorf("%w: children of %d cover up to %d, interval closes at %d", ErrCodec, v, expect-1, p.hi[v])
		}
	}

	// Levels and height; the header height is redundant and must agree.
	maxLevel := 0
	for v := 1; v < n; v++ {
		p.level[v] = p.level[p.parent[v]] + 1
		if int(p.level[v]) > maxLevel {
			maxLevel = int(p.level[v])
		}
	}
	if height != maxLevel {
		return nil, fmt.Errorf("%w: header height %d, tree height %d", ErrCodec, height, maxLevel)
	}

	// Lip bits: v is its parent's first child exactly when v == parent+1 in
	// canonical space.
	for v := 1; v < n; v++ {
		if int32(v) == p.parent[v]+1 {
			p.lip[v>>6] |= 1 << (v & 63)
		}
	}
	return p, nil
}

// ParentOriginal returns the parent of original vertex v in the plan's
// spanning tree, or -1 at the root. The disk tier uses it to check every
// tree edge of a decoded plan against the accompanying topology without
// materialising the tree.
func (p *Plan) ParentOriginal(v int) int {
	par := p.parent[p.labelOf[v]]
	if par < 0 {
		return -1
	}
	return int(p.vertexOf[par])
}
