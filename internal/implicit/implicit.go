// Package implicit is the O(n)-word representation of a ConcurrentUpDown
// plan. A materialised schedule.Schedule is a Θ(n²) object — every
// processor receives n-1 messages — but the paper's construction is
// closed-form per vertex: every transmission of ConcurrentUpDown is
// determined by the tuple (i, j, k, w, n) of the sending vertex plus the
// same tuples along its ancestor path (PAPER.md U1-U4 / D1-D3). This
// package stores exactly that — the DFS preorder intervals, levels, lip
// bits and parent/child structure of the labelled minimum-depth tree, in
// packed int32 form — and answers Round(t) and per-vertex timetables by
// evaluating the send/receive formulas on demand, with zero
// materialisation.
//
// Query model. Propagate-Up sends (U3/U4) and Propagate-Down b-message
// sends (D3, with its i = k leftmost relocation) are direct formulas. The
// only non-local rule is D1/D2 o-message forwarding: what v forwards at
// time t is what its parent sent at time t-1, minus the messages of v's
// own subtree, with arrivals at times i-k and i-k+1 held back to j-k+1
// and j-k+2. downSendAt resolves that by walking up the ancestor chain —
// one O(1) step per level, decreasing the queried time by one per hop —
// until the query lands in an ancestor's closed-form region or falls off
// the schedule. Chains are short in practice (each ancestor's b-region is
// as wide as its subtree), so a full round costs O(n) plus the few hops
// the round's in-flight o-messages need.
//
// Equivalence with the materialising builder (core.BuildConcurrentUpDown)
// is bit-exact and enforced by differential tests, property tests over the
// named topologies, and the FuzzImplicitRound harness.
package implicit

import (
	"fmt"
	"sort"

	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// Plan is a compact, immutable ConcurrentUpDown plan: O(n) words total.
// All slices are index-by-canonical-DFS-label; the vertexOf/labelOf pair
// translates to and from the network's original identifiers. Safe for
// concurrent use (no mutable state; all queries are pure).
type Plan struct {
	n      int
	height int

	// Canonical-space tree structure, packed. hi[v] closes the subtree
	// interval [v, hi[v]]; level[v] is k; parent[v] is -1 at the root.
	// childStart/children is the CSR of the child lists (sorted, which in
	// canonical space means consecutive subtree intervals).
	hi         []int32
	level      []int32
	parent     []int32
	childStart []int32
	children   []int32

	// lip[v>>6]>>(v&63)&1 is w, the lip bit: v is its parent's first child
	// (v == parent+1 in canonical space). Derivable from parent, but it is
	// the w of the paper's tuple and costs n/64 words to keep explicit.
	lip []uint64

	// vertexOf maps canonical label -> original vertex id; labelOf is the
	// inverse. Message m originates at original vertex vertexOf[m].
	vertexOf []int32
	labelOf  []int32
}

// New builds the compact plan from a DFS-labelled minimum-depth tree.
func New(l *spantree.Labeled) *Plan {
	n := l.N()
	p := &Plan{
		n:          n,
		height:     l.T.Height,
		hi:         make([]int32, n),
		level:      make([]int32, n),
		parent:     make([]int32, n),
		childStart: make([]int32, n+1),
		lip:        make([]uint64, (n+63)/64),
		vertexOf:   make([]int32, n),
		labelOf:    make([]int32, n),
	}
	for v := 0; v < n; v++ {
		p.hi[v] = int32(l.Hi[v])
		p.level[v] = int32(l.T.Level[v])
		p.parent[v] = int32(l.T.Parent[v])
		p.vertexOf[v] = int32(l.VertexOf[v])
		p.labelOf[l.VertexOf[v]] = int32(v)
		if l.LipCount(v) == 1 {
			p.lip[v>>6] |= 1 << (v & 63)
		}
	}
	kids := 0
	for v := 0; v < n; v++ {
		p.childStart[v] = int32(kids)
		kids += len(l.T.Children[v])
	}
	p.childStart[n] = int32(kids)
	p.children = make([]int32, kids)
	for v := 0; v < n; v++ {
		copy(p.children[p.childStart[v]:], int32s(l.T.Children[v]))
	}
	return p
}

func int32s(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

// Topo is a read-only view of the plan's packed canonical-space arrays,
// for engines (the sharded simulator) that evaluate the protocol directly
// over the int32 layout without re-deriving it from pointerful spantree
// structures. All slices alias the plan's storage: callers must not
// mutate them. Hi[v] closes the subtree interval [v, Hi[v]]; Level[v] is
// k; Parent[v] is -1 at the root; ChildStart/Children is the CSR child
// list; Lip[v>>6]>>(v&63)&1 is the w bit; VertexOf/LabelOf translate
// between canonical labels and original vertex ids.
type Topo struct {
	N      int
	Height int

	Hi         []int32
	Level      []int32
	Parent     []int32
	ChildStart []int32
	Children   []int32
	Lip        []uint64
	VertexOf   []int32
	LabelOf    []int32
}

// Topo returns the packed-array view of the plan. O(1): no copying.
func (p *Plan) Topo() Topo {
	return Topo{
		N:          p.n,
		Height:     p.height,
		Hi:         p.hi,
		Level:      p.level,
		Parent:     p.parent,
		ChildStart: p.childStart,
		Children:   p.children,
		Lip:        p.lip,
		VertexOf:   p.vertexOf,
		LabelOf:    p.labelOf,
	}
}

// N returns the number of processors (= messages).
func (p *Plan) N() int { return p.n }

// Height returns the labelled tree's height (= network radius).
func (p *Plan) Height() int { return p.height }

// Rounds returns the total communication time: n + height for n >= 2
// (Theorem 1), 0 for trivial plans.
func (p *Plan) Rounds() int {
	if p.n <= 1 {
		return 0
	}
	return p.n + p.height
}

// SizeBytes reports the plan's resident size: the packed arrays plus the
// struct header. This is the honest per-entry footprint the plan cache
// charges for implicit-backed plans.
func (p *Plan) SizeBytes() int64 {
	b := int64(0)
	b += int64(len(p.hi)+len(p.level)+len(p.parent)) * 4
	b += int64(len(p.childStart)+len(p.children)) * 4
	b += int64(len(p.vertexOf)+len(p.labelOf)) * 4
	b += int64(len(p.lip)) * 8
	b += 16 + 9*24 // ints + slice headers
	return b
}

// w returns the lip count of canonical vertex v (0 or 1).
func (p *Plan) w(v int32) int32 {
	return int32(p.lip[v>>6] >> (uint(v) & 63) & 1)
}

func (p *Plan) isLeaf(v int32) bool { return p.hi[v] == v }

// kids returns the canonical child list of v (shared slice; do not mutate).
func (p *Plan) kids(v int32) []int32 {
	return p.children[p.childStart[v]:p.childStart[v+1]]
}

// owner returns the child of v whose subtree interval holds message m, or
// -1 when none does (m == v or m outside v's interval).
func (p *Plan) owner(v, m int32) int32 {
	if m <= v || m > p.hi[v] {
		return -1
	}
	kids := p.kids(v)
	lo, hi := 0, len(kids)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if kids[mid] <= m {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return kids[lo]
}

// upSendAt evaluates Propagate-Up (U3/U4) at vertex v and time t: the
// message v sends to its parent, or -1. Each non-root vertex sends its
// lip-message i at time 0 (when w = 1) and every remaining b-message m in
// [i+w .. j] at time m - k.
func (p *Plan) upSendAt(v int32, t int) int32 {
	if p.parent[v] < 0 {
		return -1
	}
	i, j, k, w := v, p.hi[v], p.level[v], p.w(v)
	if w == 1 && t == 0 {
		return i
	}
	m := int32(t) + k
	if m >= i+w && m <= j {
		return m
	}
	return -1
}

// downSendAt evaluates Propagate-Down (D1-D3) at vertex v and time t: the
// message v multicasts toward its children, or -1. Leaves never send down.
//
// The b-message schedule (D3) is local: message m in [i..j] goes out at
// time m - k, except that on the leftmost DFS path (i == k) the s-message
// i is relocated to time j - k + 1 — at the root this is the paper's
// "message 0 at time n". o-message forwarding (D1/D2) recurses on what the
// parent sent one round earlier; arrivals at the D3-busy slots i-k and
// i-k+1 are held and re-emitted at j-k+1 and j-k+2 in arrival order.
func (p *Plan) downSendAt(v int32, t int) int32 {
	if t < 0 || p.isLeaf(v) {
		return -1
	}
	i, j, k := v, p.hi[v], p.level[v]
	bLo, bHi := int(i-k), int(j-k)
	if t >= bLo && t <= bHi {
		m := int32(t) + k
		if m != i || i != k {
			return m
		}
		// i == k at t == i-k: the s-message is relocated below; nothing
		// else can occupy this slot (the paper guarantees no o-message
		// arrives while the leftmost path is in its opening round).
		return -1
	}
	if i == k {
		if t == bHi+1 {
			return i // relocated s-message (root: message 0 at time n)
		}
		// Leftmost-path vertices never capture arrivals, so everything
		// else is a plain pass-through forward.
		return p.arrivalAt(v, t)
	}
	if in := p.arrivalAt(v, t); in != -1 {
		// D1: an o-message received at time t is forwarded at time t. The
		// capture slots i-k and i-k+1 lie inside the b-region and were
		// returned above, so any arrival seen here forwards immediately.
		return in
	}
	if t == bHi+1 || t == bHi+2 {
		// D2: release the messages captured at i-k and i-k+1, in arrival
		// order, at j-k+1 and j-k+2.
		first := p.arrivalAt(v, bLo)
		second := p.arrivalAt(v, bLo+1)
		queue := [2]int32{-1, -1}
		qn := 0
		if first != -1 {
			queue[qn] = first
			qn++
		}
		if second != -1 {
			queue[qn] = second
			qn++
		}
		return queue[t-(bHi+1)]
	}
	return -1
}

// arrivalAt returns the o-message v receives from its parent at time t, or
// -1: the parent's down-send of round t-1, unless that message belongs to
// v's own subtree (D3 excludes the owner child from the destination set).
func (p *Plan) arrivalAt(v int32, t int) int32 {
	par := p.parent[v]
	if par < 0 || t <= 0 {
		return -1
	}
	m := p.downSendAt(par, t-1)
	if m == -1 || (m >= v && m <= p.hi[v]) {
		return -1
	}
	return m
}

// RoundAppend appends the transmissions of round t to dst (in the
// network's original identifiers, destination sets sorted, transmissions
// ordered by canonical sender) and returns the extended slice. The layout
// is bit-identical to the materialised schedule's round t. Out-of-range
// rounds append nothing. Like append, RoundAppend treats dst's spare
// capacity as scratch — including the To slices of elements beyond
// len(dst), which it overwrites in place — so looping with dst = dst[:0]
// between rounds reuses every allocation.
func (p *Plan) RoundAppend(t int, dst []schedule.Transmission) []schedule.Transmission {
	if t < 0 || t >= p.Rounds() {
		return dst
	}
	for v := int32(0); v < int32(p.n); v++ {
		up := p.upSendAt(v, t)
		down := int32(-1)
		if !p.isLeaf(v) {
			down = p.downSendAt(v, t)
		}
		msg := up
		if down != -1 {
			if msg != -1 && msg != down {
				panic(fmt.Sprintf("implicit: vertex %d emits %d and %d at %d", v, msg, down, t))
			}
			msg = down
		}
		if msg == -1 {
			continue
		}
		var to []int32
		if down != -1 {
			kids := p.kids(v)
			if ow := p.owner(v, msg); ow != -1 {
				to = make([]int32, 0, len(kids))
				for _, c := range kids {
					if c != ow {
						to = append(to, c)
					}
				}
			} else {
				to = kids
			}
		}
		if up == -1 && len(to) == 0 {
			continue // b-message owned by an only child: empty multicast
		}
		// Reuse the destination slice of the spare slot dst is about to
		// grow into, so a caller recycling its buffer (dst = dst[:0]
		// between rounds) reaches zero steady-state allocations.
		var dests []int
		if len(dst) < cap(dst) {
			dests = dst[len(dst) : len(dst)+1][0].To[:0]
		}
		if cap(dests) < len(to)+1 {
			dests = make([]int, 0, len(to)+1)
		}
		if up != -1 {
			dests = append(dests, int(p.vertexOf[p.parent[v]]))
		}
		for _, c := range to {
			dests = append(dests, int(p.vertexOf[c]))
		}
		sort.Ints(dests)
		dst = append(dst, schedule.Transmission{
			Msg:  int(p.vertexOf[msg]),
			From: int(p.vertexOf[v]),
			To:   dests,
		})
	}
	return dst
}

// Timetable renders the per-vertex view of original vertex v in the layout
// of the paper's Tables 1-4, bit-identical to schedule.VertexView over the
// materialised schedule. Cost is O(rounds) closed-form evaluations — no
// other vertex's transmissions are computed.
func (p *Plan) Timetable(v int) *schedule.VertexTimetable {
	rounds := p.Rounds()
	rows := rounds + 1
	vt := &schedule.VertexTimetable{
		Vertex:     v,
		RecvParent: filled(rows, schedule.NoMessage),
		RecvChild:  filled(rows, schedule.NoMessage),
		SendParent: filled(rows, schedule.NoMessage),
		SendChild:  filled(rows, schedule.NoMessage),
	}
	if p.n <= 1 {
		return vt
	}
	c := p.labelOf[v]
	i, j, k := c, p.hi[c], p.level[c]

	// Sends to the parent: U3/U4 directly.
	if p.parent[c] >= 0 {
		w := p.w(c)
		if w == 1 {
			vt.SendParent[0] = int(p.vertexOf[i])
		}
		for m := i + w; m <= j; m++ {
			vt.SendParent[int(m-k)] = int(p.vertexOf[m])
		}
	}

	// Receives from the children (the paper's Propagate-Up receive rules):
	// the l-message i+1 arrives at time 1 from the first child's lip send,
	// and each r-message m in [i+2 .. j] arrives at time m - k from the
	// child owning m.
	if !p.isLeaf(c) {
		vt.RecvChild[1] = int(p.vertexOf[i+1])
		for m := i + 2; m <= j; m++ {
			vt.RecvChild[int(m-k)] = int(p.vertexOf[m])
		}
	}

	// Sends toward the children and receives from the parent: evaluate the
	// Propagate-Down formulas round by round. A b-message owned by an only
	// child has an empty owner-excluded destination set — no transmission
	// happens (unless merged with an up-send, which never adds a child
	// destination), so the SendChild row stays empty there.
	if !p.isLeaf(c) {
		onlyChild := p.childStart[c+1]-p.childStart[c] == 1
		for t := 0; t < rounds; t++ {
			if m := p.downSendAt(c, t); m != -1 {
				if onlyChild && p.owner(c, m) != -1 {
					continue
				}
				vt.SendChild[t] = int(p.vertexOf[m])
			}
		}
	}
	if p.parent[c] >= 0 {
		for t := 1; t <= rounds; t++ {
			if m := p.arrivalAt(c, t); m != -1 {
				vt.RecvParent[t] = int(p.vertexOf[m])
			}
		}
	}
	return vt
}

func filled(n, x int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = x
	}
	return s
}

// Labeled reconstructs the DFS-labelled tree (canonical tree plus the
// original-id mapping) from the packed arrays — the input New was built
// from, byte for byte. It exists so lazy materialisation and the
// distributed executor can run without the plan retaining the pointerful
// spantree structures; cost is O(n) and the result is freshly allocated.
func (p *Plan) Labeled() *spantree.Labeled {
	n := p.n
	parent := make([]int, n)
	for v := 0; v < n; v++ {
		parent[v] = int(p.parent[v])
	}
	l := &spantree.Labeled{
		T:        spantree.MustFromParents(parent),
		VertexOf: make([]int, n),
		LabelOf:  make([]int, n),
		Hi:       make([]int, n),
	}
	for v := 0; v < n; v++ {
		l.VertexOf[v] = int(p.vertexOf[v])
		l.LabelOf[p.vertexOf[v]] = v
		l.Hi[v] = int(p.hi[v])
	}
	return l
}

// OriginalTree reconstructs the minimum-depth spanning tree in the
// network's original vertex identifiers.
func (p *Plan) OriginalTree() *spantree.Tree {
	n := p.n
	parent := make([]int, n)
	for c := 0; c < n; c++ {
		if p.parent[c] < 0 {
			parent[p.vertexOf[c]] = -1
		} else {
			parent[p.vertexOf[c]] = int(p.vertexOf[p.parent[c]])
		}
	}
	return spantree.MustFromParents(parent)
}
