package implicit_test

import (
	"math/rand"
	"reflect"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/implicit"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// FuzzImplicitRound checks the closed-form evaluator against the
// materialising builder on arbitrary inputs: for a random connected graph,
// the implicit plan's RoundAppend must be bit-identical to the built
// schedule's round at a fuzzer-chosen time (including out-of-range times,
// which must yield the empty round), and a fuzzer-chosen vertex's
// Timetable must match the materialised VertexView.
func FuzzImplicitRound(f *testing.F) {
	f.Add(int64(1), uint8(7), uint8(128), uint16(3), uint8(0))
	f.Add(int64(42), uint8(0), uint8(0), uint16(0), uint8(5))
	f.Add(int64(-9), uint8(47), uint8(255), uint16(65535), uint8(200))
	f.Add(int64(2026), uint8(2), uint8(10), uint16(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, pRaw uint8, tRaw uint16, vRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%48
		p := float64(pRaw) / 255
		g := graph.RandomConnected(rng, n, p)
		tree, err := spantree.MinDepth(g)
		if err != nil {
			t.Fatalf("MinDepth on a connected graph: %v", err)
		}
		l := spantree.Label(tree)
		plan := implicit.New(l)
		s := oracle(l)
		if plan.Rounds() != s.Time() {
			t.Fatalf("n=%d: implicit rounds %d != materialised %d", n, plan.Rounds(), s.Time())
		}
		// Map tRaw over [-1, rounds+1] so out-of-range times are exercised.
		round := int(tRaw)%(plan.Rounds()+3) - 1
		got := plan.RoundAppend(round, nil)
		var want []schedule.Transmission
		if round >= 0 && round < len(s.Rounds) {
			want = s.Rounds[round]
		}
		if len(got) != 0 || len(want) != 0 {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d round %d:\ngot  %v\nwant %v", n, round, got, want)
			}
		}
		v := int(vRaw) % n
		gotTT := plan.Timetable(v)
		wantTT := schedule.VertexView(s, treeInOriginalIDs(l), v)
		if !reflect.DeepEqual(gotTT, wantTT) {
			t.Fatalf("n=%d vertex %d:\ngot  %+v\nwant %+v", n, v, gotTT, wantTT)
		}
	})
}
