package planstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"multigossip/internal/obs"
)

func openTest(t *testing.T) *Store {
	t.Helper()
	return Open(t.TempDir(), obs.NewRegistry(), t.Logf)
}

// entryFile returns the single *.plan file in the store directory.
func entryFile(t *testing.T, s *Store) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "*.plan"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one entry file, got %v (%v)", matches, err)
	}
	return matches[0]
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := openTest(t)
	payload := []byte("not a real plan, but the store does not care")
	if err := s.Save(0xDEADBEEF, 1, payload); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := s.Load(0xDEADBEEF, 1)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload changed across the disk roundtrip")
	}
	if s.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", s.Entries())
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 0 || st.Quarantined != 0 || st.Degraded {
		t.Fatalf("stats %+v after one save and one hit", st)
	}
}

func TestLoadMiss(t *testing.T) {
	s := openTest(t)
	if _, err := s.Load(42, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load of absent key: err = %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// TestKeySeparation checks the same fingerprint under two algorithms and two
// fingerprints under one algorithm land in distinct entries.
func TestKeySeparation(t *testing.T) {
	s := openTest(t)
	for _, e := range []struct {
		fp      uint64
		algo    int
		payload string
	}{{7, 0, "a"}, {7, 1, "b"}, {8, 0, "c"}} {
		if err := s.Save(e.fp, e.algo, []byte(e.payload)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []struct {
		fp      uint64
		algo    int
		payload string
	}{{7, 0, "a"}, {7, 1, "b"}, {8, 0, "c"}} {
		got, err := s.Load(e.fp, e.algo)
		if err != nil || string(got) != e.payload {
			t.Fatalf("load(%d,%d) = %q, %v; want %q", e.fp, e.algo, got, err, e.payload)
		}
	}
	if s.Entries() != 3 {
		t.Fatalf("entries = %d, want 3", s.Entries())
	}
}

// TestCorruptionQuarantined walks every corruption class the checksum header
// must catch: truncation mid-payload, truncation mid-header, a payload bit
// flip, a header (fingerprint) bit flip, and a foreign file. Each must come
// back ErrCorrupt, move the entry to quarantine/, and leave a subsequent
// Load reporting a clean miss so the caller rebuilds.
func TestCorruptionQuarantined(t *testing.T) {
	payload := bytes.Repeat([]byte("plan-bytes"), 20)
	corruptions := map[string]func(data []byte) []byte{
		"truncated payload": func(d []byte) []byte { return d[:len(d)-7] },
		"truncated header":  func(d []byte) []byte { return d[:headerLen/2] },
		"payload bit flip":  func(d []byte) []byte { d[headerLen+13] ^= 0x04; return d },
		"header bit flip":   func(d []byte) []byte { d[9] ^= 0x80; return d },
		"foreign file":      func(d []byte) []byte { return []byte("lost+found debris") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := openTest(t)
			if err := s.Save(99, 0, payload); err != nil {
				t.Fatal(err)
			}
			path := entryFile(t, s)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, err := s.Load(99, 0); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("load of corrupt entry: err = %v, want ErrCorrupt", err)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("quarantined = %d, want 1", st.Quarantined)
			}
			q, err := filepath.Glob(filepath.Join(s.Dir(), "quarantine", "*.plan.*"))
			if err != nil || len(q) != 1 {
				t.Fatalf("quarantine dir holds %v (%v), want the one bad entry", q, err)
			}
			// The store never reads the same bad bytes twice: the slot is
			// now a plain miss, and a recomputed Save fills it again.
			if _, err := s.Load(99, 0); !errors.Is(err, ErrNotFound) {
				t.Fatalf("load after quarantine: err = %v, want ErrNotFound", err)
			}
			if err := s.Save(99, 0, payload); err != nil {
				t.Fatalf("recompute save: %v", err)
			}
			got, err := s.Load(99, 0)
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("recovered load = %v, err %v", got, err)
			}
			if s.Degraded() {
				t.Fatal("corruption must not degrade the store; only write failures do")
			}
		})
	}
}

// TestWrongKeyQuarantined renames a valid entry onto another key's path —
// the on-disk analogue of a mixed-up rsync — and requires the fingerprint
// check in the header to refuse it.
func TestWrongKeyQuarantined(t *testing.T) {
	s := openTest(t)
	if err := s.Save(1, 0, []byte("plan for fingerprint 1")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.entryPath(1, 0), s.entryPath(2, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(2, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("load under the wrong key: err = %v, want ErrCorrupt", err)
	}
}

// TestUnwritableDirDegrades opens a store in a directory it cannot write
// and requires memory-only degradation rather than an error: Open succeeds,
// Degraded() is true, Save refuses with ErrDegraded, and the degraded gauge
// shows in the registry snapshot.
func TestUnwritableDirDegrades(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; chmod 0555 does not block writes")
	}
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	if err := os.Mkdir(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := Open(dir, reg, t.Logf)
	if !s.Degraded() {
		t.Fatal("store in an unwritable directory must open degraded")
	}
	if err := s.Save(5, 0, []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("save on degraded store: err = %v, want ErrDegraded", err)
	}
	if _, err := s.Load(5, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("load on degraded store: err = %v, want clean miss", err)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("planstore_degraded 1")) {
		t.Fatalf("metrics do not report planstore_degraded 1:\n%s", buf.String())
	}
}

// TestWriteFailureDegrades breaks the directory after Open (the disk "dies"
// mid-run) and requires the first failed Save to flip the store degraded
// while previously written entries stay readable.
func TestWriteFailureDegrades(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; chmod 0555 does not block writes")
	}
	s := openTest(t)
	if err := s.Save(1, 0, []byte("before the disk died")); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(s.Dir(), 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(s.Dir(), 0o755) })

	if err := s.Save(2, 0, []byte("x")); err == nil {
		t.Fatal("save into an unwritable directory succeeded")
	}
	if !s.Degraded() {
		t.Fatal("failed save must degrade the store")
	}
	if err := s.Save(3, 0, []byte("y")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("save after degradation: err = %v, want ErrDegraded without touching disk", err)
	}
	got, err := s.Load(1, 0)
	if err != nil || string(got) != "before the disk died" {
		t.Fatalf("pre-failure entry unreadable after degradation: %q, %v", got, err)
	}
	if st := s.Stats(); st.WriteErrors != 1 || !st.Degraded {
		t.Fatalf("stats %+v, want one write error and degraded", st)
	}
}

// TestWarmStartSharesDirectory reopens a store over an existing directory —
// the restart path — and requires the old entries to hit.
func TestWarmStartSharesDirectory(t *testing.T) {
	dir := t.TempDir()
	s1 := Open(dir, obs.NewRegistry(), t.Logf)
	if err := s1.Save(77, 1, []byte("survives restarts")); err != nil {
		t.Fatal(err)
	}

	s2 := Open(dir, obs.NewRegistry(), t.Logf)
	got, err := s2.Load(77, 1)
	if err != nil || string(got) != "survives restarts" {
		t.Fatalf("warm load = %q, %v", got, err)
	}
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("warm stats %+v, want pure hit", st)
	}
}

// TestSaveOverwrite replaces an entry in place and requires readers to see
// only complete states.
func TestSaveOverwrite(t *testing.T) {
	s := openTest(t)
	if err := s.Save(3, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(3, 0, []byte("v2 rather longer than before")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(3, 0)
	if err != nil || string(got) != "v2 rather longer than before" {
		t.Fatalf("load after overwrite = %q, %v", got, err)
	}
	if s.Entries() != 1 {
		t.Fatalf("entries = %d after overwrite, want 1", s.Entries())
	}
}

// TestNilRegistryAndLogger exercises the permissive Open contract.
func TestNilRegistryAndLogger(t *testing.T) {
	s := Open(t.TempDir(), nil, nil)
	if err := s.Save(1, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(1, 0); err != nil {
		t.Fatal(err)
	}
}

// TestOpenUncreatableDirDegrades roots the store where no directory can
// ever exist — under a regular file — and requires the full degradation
// contract without any permission tricks (so it runs even as root, where
// chmod-based unwritability tests cannot): Open returns a degraded store,
// Save refuses with ErrDegraded, Load still answers (with a miss), and the
// gauge reports the state.
func TestOpenUncreatableDirDegrades(t *testing.T) {
	parent := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(parent, []byte("a file"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := Open(filepath.Join(parent, "store"), reg, t.Logf)
	if !s.Degraded() {
		t.Fatal("store under a regular file did not degrade at Open")
	}
	if err := s.Save(1, 0, []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Save on degraded store = %v, want ErrDegraded", err)
	}
	// The read fails with ENOTDIR rather than ENOENT here; either way it is
	// an error, never a served entry, and it counts as a miss.
	if _, err := s.Load(1, 0); err == nil {
		t.Fatal("Load on an uncreatable dir returned an entry")
	}
	st := s.Stats()
	if !st.Degraded || st.Writes != 0 || st.Misses != 1 {
		t.Fatalf("stats %+v, want degraded with zero writes and one miss", st)
	}
	if s.Entries() != 0 {
		t.Fatalf("Entries() = %d on an uncreatable dir, want 0", s.Entries())
	}
}

// TestDropQuarantines covers the caller-driven quarantine path: an entry
// whose payload passed the checksum but failed the caller's semantic
// validation is moved aside exactly like a checksum failure, and a Drop of
// a missing key is a no-op.
func TestDropQuarantines(t *testing.T) {
	s := openTest(t)
	if err := s.Save(7, 1, []byte("checksum-valid but semantically wrong")); err != nil {
		t.Fatal(err)
	}
	s.Drop(7, 1, errors.New("decoded topology does not match the key"))
	if _, err := s.Load(7, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after Drop = %v, want ErrNotFound", err)
	}
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined counter %d after Drop, want 1", got)
	}
	quarantined, err := filepath.Glob(filepath.Join(s.Dir(), "quarantine", "*"))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantine dir holds %v (%v), want the dropped entry", quarantined, err)
	}

	s.Drop(999, 1, errors.New("never existed"))
	if got := s.Stats().Quarantined; got != 1 {
		t.Fatalf("Drop of a missing key quarantined something: counter %d", got)
	}
}
