// Package planstore is the disk tier of the serving layer's plan storage: a
// content-addressed store of encoded plans keyed by (network fingerprint,
// algorithm), written crash-safely and read defensively.
//
// Plans are expensive to construct but immutable and content-addressable
// once built, which makes the store's contract simple and strict:
//
//   - Durability. Every entry is written to a temp file in the store
//     directory, fsynced, atomically renamed into place, and the directory
//     fsynced — a crash at any instant leaves either the complete old state
//     or the complete new state, never a torn entry under the final name.
//
//   - Detection. Every entry carries a 32-byte header (magic, version,
//     algorithm, fingerprint, payload length, CRC-64/ECMA of the payload).
//     Load verifies all of it; truncation, bit flips and foreign files are
//     classified as corruption, not served.
//
//   - Quarantine. A corrupt entry is moved into the quarantine/
//     subdirectory (or deleted if even that fails) and reported as a miss,
//     so the caller recomputes and overwrites — a bad disk block costs one
//     rebuild, never a wrong answer and never a second read of the same
//     bad bytes.
//
//   - Degradation. The store never takes the serving process down with it.
//     Open probes writability and a store whose directory is unwritable or
//     whose disk fills up marks itself degraded: writes stop, reads keep
//     being attempted, and the serving layer keeps answering from memory.
//     The degraded flag and every failure class are exported as metrics.
package planstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"multigossip/internal/obs"
)

// Wire layout of one entry file: a fixed 32-byte header followed by the
// payload (the plan codec's bytes; opaque to this package).
//
//	offset  size  field
//	0       4     magic "MGS1"
//	4       1     format version (1)
//	5       1     algorithm code
//	6       2     reserved, must be zero
//	8       8     network fingerprint, little-endian
//	16      8     payload length, little-endian
//	24      8     CRC-64/ECMA of the payload, little-endian
const (
	headerLen = 32
	version   = 1
)

var magic = [4]byte{'M', 'G', 'S', '1'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrNotFound reports a clean miss: no entry exists for the key.
var ErrNotFound = errors.New("planstore: entry not found")

// ErrCorrupt reports that an entry existed but failed validation and has
// been quarantined; the caller should recompute.
var ErrCorrupt = errors.New("planstore: entry corrupt")

// ErrDegraded reports that the store has stopped writing after an earlier
// failure (unwritable directory, full disk). Reads still work.
var ErrDegraded = errors.New("planstore: store is degraded, writes disabled")

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	Quarantined int64 `json:"quarantined"`
	Degraded    bool  `json:"degraded"`
}

// Store is a crash-safe content-addressed plan store rooted at one
// directory. Safe for concurrent use: writes are atomic renames of unique
// temp files, reads are whole-file snapshots, and the degraded flag is an
// atomic. Multiple processes may even share a directory — identical keys
// hold identical bytes, so concurrent writers are idempotent.
type Store struct {
	dir      string
	degraded atomic.Bool
	logf     func(format string, args ...any)

	hits, misses, writes, writeErrs, quarantined *obs.Counter
	degradedG                                    *obs.Gauge
}

// Open roots a store at dir, creating it (and its quarantine subdirectory)
// as needed, and probes writability with a real fsynced write. Open never
// fails the caller into a worse state than memory-only serving: any
// environment problem — missing permissions, read-only filesystem, full
// disk — comes back as an already-degraded store, not an error. Counters
// and the degraded gauge register in reg under planstore_* names; a nil reg
// uses a private registry. logf receives one line per noteworthy event
// (degradation, quarantine) and may be nil.
func Open(dir string, reg *obs.Registry, logf func(format string, args ...any)) *Store {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Store{
		dir:         dir,
		logf:        logf,
		hits:        reg.Counter("planstore_hits_total"),
		misses:      reg.Counter("planstore_misses_total"),
		writes:      reg.Counter("planstore_writes_total"),
		writeErrs:   reg.Counter("planstore_write_errors_total"),
		quarantined: reg.Counter("planstore_quarantined_total"),
		degradedG:   reg.Gauge("planstore_degraded"),
	}
	if err := s.probe(); err != nil {
		s.degrade("open probe: %v", err)
	}
	return s
}

// probe proves the directory accepts durable writes the same way Save will.
func (s *Store) probe() error {
	if err := os.MkdirAll(filepath.Join(s.dir, "quarantine"), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	defer os.Remove(name)
	if _, err := f.Write([]byte("probe")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Degraded reports whether the store has given up on writes.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// degrade flips the store into memory-only mode and logs why, once.
func (s *Store) degrade(format string, args ...any) {
	if s.degraded.CompareAndSwap(false, true) {
		s.degradedG.Set(1)
		s.logf("planstore: degraded to memory-only serving: "+format, args...)
	}
}

// entryPath names the entry file for a key: content-addressed, so equal
// keys always collide onto the same file with the same bytes.
func (s *Store) entryPath(fp uint64, algo int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x-%02x.plan", fp, algo&0xFF))
}

// Save durably stores payload under (fp, algo), overwriting any previous
// entry. The write is crash-safe: temp file, fsync, atomic rename, directory
// fsync. A failed write quarantines nothing (the old entry, if any, is
// untouched) but degrades the store so later saves stop burning syscalls on
// a dead disk.
func (s *Store) Save(fp uint64, algo int, payload []byte) error {
	if s.degraded.Load() {
		return ErrDegraded
	}
	err := s.save(fp, algo, payload)
	if err != nil {
		s.writeErrs.Inc()
		s.degrade("save %016x-%02x: %v", fp, algo, err)
		return err
	}
	s.writes.Inc()
	return nil
}

func (s *Store) save(fp uint64, algo int, payload []byte) error {
	var hdr [headerLen]byte
	copy(hdr[:4], magic[:])
	hdr[4] = version
	hdr[5] = byte(algo)
	binary.LittleEndian.PutUint64(hdr[8:], fp)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(hdr[24:], crc64.Checksum(payload, crcTable))

	f, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(hdr[:]); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	final := s.entryPath(fp, algo)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse to fsync directories; losing the rename's
	// durability there is the platform's limit, not a store failure.
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// Load returns the payload stored under (fp, algo). A missing entry is
// ErrNotFound; an entry that fails any validation step — magic, version,
// algorithm, fingerprint, length, checksum — is quarantined and reported as
// ErrCorrupt. Either way the caller's move is the same: rebuild.
func (s *Store) Load(fp uint64, algo int) ([]byte, error) {
	path := s.entryPath(fp, algo)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Inc()
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("planstore: read %s: %w", filepath.Base(path), err)
	}
	payload, err := validate(data, fp, algo)
	if err != nil {
		s.quarantine(path, err)
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.hits.Inc()
	return payload, nil
}

// validate checks one entry file image against the expected key and returns
// the payload slice.
func validate(data []byte, fp uint64, algo int) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("truncated header: %d bytes", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if data[4] != version {
		return nil, fmt.Errorf("format version %d, want %d", data[4], version)
	}
	if int(data[5]) != algo&0xFF {
		return nil, fmt.Errorf("algorithm %d, want %d", data[5], algo)
	}
	if data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("reserved bytes %x %x, want zero", data[6], data[7])
	}
	if got := binary.LittleEndian.Uint64(data[8:]); got != fp {
		return nil, fmt.Errorf("fingerprint %016x, want %016x", got, fp)
	}
	payload := data[headerLen:]
	if want := binary.LittleEndian.Uint64(data[16:]); want != uint64(len(payload)) {
		return nil, fmt.Errorf("payload length %d, header says %d (torn write)", len(payload), want)
	}
	if want := binary.LittleEndian.Uint64(data[24:]); crc64.Checksum(payload, crcTable) != want {
		return nil, fmt.Errorf("payload checksum mismatch")
	}
	return payload, nil
}

// quarantine moves a corrupt entry aside so it is never read again, falling
// back to deletion when even the move fails. The timestamp suffix keeps
// repeated corruptions of one key distinguishable for post-mortems.
func (s *Store) quarantine(path string, reason error) {
	s.quarantined.Inc()
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		if rmErr := os.Remove(path); rmErr != nil {
			s.logf("planstore: quarantine of %s failed (%v) and removal failed (%v); entry will be re-detected", filepath.Base(path), err, rmErr)
		} else {
			s.logf("planstore: quarantined %s by deletion (%v): %v", filepath.Base(path), err, reason)
		}
		return
	}
	s.logf("planstore: quarantined %s: %v", filepath.Base(path), reason)
}

// Drop quarantines the entry under (fp, algo) for a reason the store could
// not see itself — the caller decoded the payload and found it semantically
// invalid despite a clean checksum. A missing entry is a no-op.
func (s *Store) Drop(fp uint64, algo int, reason error) {
	path := s.entryPath(fp, algo)
	if _, err := os.Stat(path); err != nil {
		return
	}
	s.quarantine(path, reason)
}

// Entries counts the valid-named entry files currently on disk (quarantined
// files excluded). It exists for readiness reporting and tests; it reads
// the directory, not the entries.
func (s *Store) Entries() int {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	count := 0
	for _, e := range names {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".plan" {
			count++
		}
	}
	return count
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Value(),
		Misses:      s.misses.Value(),
		Writes:      s.writes.Value(),
		WriteErrors: s.writeErrs.Value(),
		Quarantined: s.quarantined.Value(),
		Degraded:    s.degraded.Load(),
	}
}
