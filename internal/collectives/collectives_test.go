package collectives

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

func testGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(19))
	return []*graph.Graph{
		graph.Path(2), graph.Path(9), graph.Cycle(10), graph.Star(12),
		graph.Grid(3, 5), graph.Hypercube(4), graph.Petersen(), graph.Fig4(),
		graph.RandomConnected(rng, 30, 0.12), graph.RandomTree(rng, 25),
	}
}

func TestGatherOptimalAtEveryVertex(t *testing.T) {
	for _, g := range testGraphs(t) {
		for dst := 0; dst < g.N(); dst += 2 {
			s, err := Gather(g, dst)
			if err != nil {
				t.Fatalf("%v dst=%d: %v", g, dst, err)
			}
			if err := VerifyGather(g, s, dst); err != nil {
				t.Fatalf("%v dst=%d: %v", g, dst, err)
			}
			if s.Time() != g.N()-1 {
				t.Fatalf("%v dst=%d: time %d, want %d (one arrival per round is optimal)",
					g, dst, s.Time(), g.N()-1)
			}
		}
	}
}

func TestScatterOptimalAtEveryVertex(t *testing.T) {
	for _, g := range testGraphs(t) {
		for src := 0; src < g.N(); src += 2 {
			s, err := Scatter(g, src)
			if err != nil {
				t.Fatalf("%v src=%d: %v", g, src, err)
			}
			if err := VerifyScatter(g, s, src); err != nil {
				t.Fatalf("%v src=%d: %v", g, src, err)
			}
			if s.Time() != g.N()-1 {
				t.Fatalf("%v src=%d: time %d, want %d (one distinct send per round is optimal)",
					g, src, s.Time(), g.N()-1)
			}
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	g := graph.Grid(3, 4)
	s, err := Gather(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	rr := Reverse(Reverse(s))
	s.Normalize()
	rr.Normalize()
	if !s.Equal(rr) {
		t.Fatal("double reversal changed the schedule")
	}
}

func TestGatherDisconnected(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	if _, err := Gather(g, 0); err == nil {
		t.Fatal("Gather accepted disconnected graph")
	}
	if _, err := Scatter(g, 0); err == nil {
		t.Fatal("Scatter accepted disconnected graph")
	}
}

func TestGatherSingleVertex(t *testing.T) {
	g := graph.New(1)
	s, err := Gather(g, 0)
	if err != nil || s.Time() != 0 {
		t.Fatalf("n=1 gather: %v time=%d", err, s.Time())
	}
}

// TestQuickGatherScatterDuality: on random trees, scatter is the exact
// mirror of gather — same length, valid under flipped roles, for every
// source/target.
func TestQuickGatherScatterDuality(t *testing.T) {
	prop := func(seed int64, rawN, rawV uint8) bool {
		n := 2 + int(rawN)%40
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(rng, n, 0.15)
		v := int(rawV) % n
		ga, err := Gather(g, v)
		if err != nil || VerifyGather(g, ga, v) != nil || ga.Time() != n-1 {
			return false
		}
		sc, err := Scatter(g, v)
		if err != nil || VerifyScatter(g, sc, v) != nil || sc.Time() != n-1 {
			return false
		}
		return ga.Transmissions() == sc.Transmissions()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestScatterIsModelValid: the reversed schedule satisfies the raw model
// constraints (not just end-to-end delivery): run it through the strict
// validator with the scatter initial holds.
func TestScatterIsModelValid(t *testing.T) {
	g := graph.Fig4()
	s, err := Scatter(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]*schedule.Bitset, g.N())
	for v := range init {
		init[v] = schedule.NewBitset(g.N())
	}
	for m := 0; m < g.N(); m++ {
		init[0].Set(m)
	}
	if _, err := schedule.Run(g, s, schedule.Options{Initial: init, RequireUseful: true}); err != nil {
		t.Fatal(err)
	}
}
