// Package collectives builds the collective-communication primitives that
// the paper's application paragraph motivates ("gossiping arises in many
// applications that include sorting, matrix multiplication, Discrete
// Fourier Transform, solving linear equations") on top of the same tree
// machinery:
//
//   - Gather: all n messages accumulate at one processor, in n - 1 rounds
//     when the target is a tree centre — this is exactly the Propagate-Up
//     stream of algorithm Simple.
//   - Scatter: one processor delivers a distinct message to every other
//     processor. It is constructed by time-reversing the gather schedule,
//     which is a valid transformation of the communication model (see
//     Reverse), and completes in the same n - 1 rounds.
//   - Reduce / AllReduce round counts follow: a reduction is a gather with
//     on-path combining, and an all-reduce is gossip (every processor ends
//     with every operand).
package collectives

import (
	"fmt"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// Gather builds a schedule delivering every processor's message to dst.
// It pipelines messages up the BFS tree rooted at dst in DFS label order
// (the up phase of algorithm Simple): message with label m arrives at the
// root exactly at time m, so the last arrives at n - 1, which is optimal —
// the root can absorb only one message per round.
func Gather(g *graph.Graph, dst int) (*schedule.Schedule, error) {
	tr, err := spantree.BFSTree(g, dst)
	if err != nil {
		return nil, fmt.Errorf("collectives: %w", err)
	}
	l := spantree.Label(tr)
	canon := schedule.New(l.N())
	for v := 1; v < l.N(); v++ {
		k := l.T.Level[v]
		i, j := l.Interval(v)
		for m := i; m <= j; m++ {
			canon.AddSend(m-k, m, v, l.T.Parent[v])
		}
	}
	return remap(canon, l), nil
}

// Scatter builds a schedule by which src delivers a distinct message to
// every other processor; message identifiers equal their destination
// processor. It is the time reversal of Gather: if message m reaches the
// root at time m in the gather, the scatter sends it from the root at time
// n - 1 - m and it lands at its origin vertex at exactly time n - 1 - m +
// level. Total time n - 1, again optimal (the source can emit only one
// distinct message per round, and n - 1 distinct messages must leave it).
func Scatter(g *graph.Graph, src int) (*schedule.Schedule, error) {
	gather, err := Gather(g, src)
	if err != nil {
		return nil, err
	}
	return Reverse(gather), nil
}

// Reverse time-reverses a schedule, flipping every transmission's
// direction: a message sent u -> D at round t becomes, for each d in D, a
// send d -> u at round T-1-t, where T is the total time. Reversal is
// meaningful for relay schedules (each hop's payload becomes available at
// the flipped time); reversing a Gather yields a valid Scatter because the
// one-receive-per-round constraint of the forward schedule becomes the
// one-send-per-round constraint of the reverse and vice versa, and a relay
// chain u_0 -> u_1 -> ... -> u_k at increasing times turns into the same
// chain traversed backwards. The caller must re-validate under the
// intended initial hold sets; Scatter's tests do so for every topology.
func Reverse(s *schedule.Schedule) *schedule.Schedule {
	out := schedule.NewWithMessages(s.N, s.NMsg)
	T := s.Time()
	for t, round := range s.Rounds {
		for _, tx := range round {
			for _, d := range tx.To {
				out.AddSend(T-1-t, tx.Msg, d, tx.From)
			}
		}
	}
	return out
}

// VerifyGather checks that after running s on g every message reached dst.
func VerifyGather(g *graph.Graph, s *schedule.Schedule, dst int) error {
	res, err := schedule.Run(g, s, schedule.Options{})
	if err != nil {
		return err
	}
	if !res.Holds[dst].Full() {
		return fmt.Errorf("collectives: gather target %d is missing messages %v", dst, res.Holds[dst].Missing())
	}
	return nil
}

// VerifyScatter checks s as a scatter from src: message m (addressed to
// processor m) must reach processor m. Initial holds put every message at
// the source.
func VerifyScatter(g *graph.Graph, s *schedule.Schedule, src int) error {
	init := make([]*schedule.Bitset, g.N())
	for v := range init {
		init[v] = schedule.NewBitset(g.N())
	}
	for m := 0; m < g.N(); m++ {
		init[src].Set(m)
	}
	res, err := schedule.Run(g, s, schedule.Options{Initial: init})
	if err != nil {
		return err
	}
	for m := 0; m < g.N(); m++ {
		if !res.Holds[m].Has(m) {
			return fmt.Errorf("collectives: scatter message %d never reached its destination", m)
		}
	}
	return nil
}

// remap translates a canonical-label schedule back to original vertex ids.
func remap(canon *schedule.Schedule, l *spantree.Labeled) *schedule.Schedule {
	out := schedule.New(canon.N)
	for t, round := range canon.Rounds {
		for _, tx := range round {
			dests := make([]int, len(tx.To))
			for i, d := range tx.To {
				dests[i] = l.VertexOf[d]
			}
			out.AddSend(t, l.VertexOf[tx.Msg], l.VertexOf[tx.From], dests...)
		}
	}
	return out
}
