package repair

import (
	"testing"

	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// iterationsAfterLastQuarantine returns how many repair iterations ran
// after the final quarantine event — the convergence cost of replanning
// over the survivor graph.
func iterationsAfterLastQuarantine(out Outcome) int {
	if len(out.Quarantines) == 0 {
		return out.Iterations
	}
	last := out.Quarantines[len(out.Quarantines)-1]
	return out.Iterations - (last.Iteration + 1)
}

// minus returns g without edge e.
func minus(g *graph.Graph, e graph.Edge) *graph.Graph {
	h := graph.New(g.N())
	for _, f := range g.Edges() {
		if f == e {
			continue
		}
		h.AddEdge(f.U, f.V)
	}
	return h
}

// TestRunDeadLinkEveryTopology kills the first link of every named
// topology for the whole execution — schedule and repair alike — and
// checks graceful degradation: the run never stalls, always reaches
// coverage 1.0 over the survivor reachability ceiling, and when the link
// was not a cut edge it completes fully by routing around the amputation.
// Convergence after the last quarantine takes at most 3 iterations.
func TestRunDeadLinkEveryTopology(t *testing.T) {
	for name, g := range namedGraphs() {
		res := buildCUD(t, g)
		e := g.Edges()[0]
		inj := fault.DeadLink{U: e.U, V: e.V}
		holds, _, err := fault.ExecuteInjected(g, res.Schedule, inj, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(g, holds, Options{
			Injector:    inj,
			RoundOffset: res.Schedule.Time(),
			Validate:    true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Stalled {
			t.Fatalf("%s: stalled instead of quarantining the dead link: %+v", name, out)
		}
		if out.ReachableCoverage != 1.0 {
			t.Fatalf("%s: ReachableCoverage %v, want 1.0 (complete up to reachability)",
				name, out.ReachableCoverage)
		}
		if minus(g, e).IsConnected() && !out.Complete {
			t.Fatalf("%s: dead non-cut link %v not routed around (deficit %d, quarantined %v)",
				name, e, MissingPairs(out.Holds), out.QuarantinedLinks)
		}
		if got := iterationsAfterLastQuarantine(out); got > 3 {
			t.Fatalf("%s: %d iterations after the last quarantine, want <= 3", name, got)
		}
		if len(out.DownProcessors) != 0 {
			t.Fatalf("%s: dead link misattributed to processors %v", name, out.DownProcessors)
		}
	}
}

// TestRunDeadLinkPartition severs the only bridge of a path: the engine
// must quarantine exactly that link, report the two survivor components,
// and deliver every pair each side can still serve — and nothing else.
func TestRunDeadLinkPartition(t *testing.T) {
	const n = 7
	g := graph.Path(n)
	e := graph.Edge{U: 3, V: 4}
	res := buildCUD(t, g)
	inj := fault.DeadLink{U: e.U, V: e.V}
	holds, _, err := fault.ExecuteInjected(g, res.Schedule, inj, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(g, holds, Options{
		Injector:    inj,
		RoundOffset: res.Schedule.Time(),
		Validate:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete || out.Stalled {
		t.Fatalf("partitioned run reported Complete=%v Stalled=%v", out.Complete, out.Stalled)
	}
	if len(out.QuarantinedLinks) != 1 || out.QuarantinedLinks[0] != e {
		t.Fatalf("quarantined %v, want exactly %v", out.QuarantinedLinks, e)
	}
	if out.Components != 2 {
		t.Fatalf("survivor components %d, want 2", out.Components)
	}
	if out.ReachableCoverage != 1.0 {
		t.Fatalf("ReachableCoverage %v, want 1.0", out.ReachableCoverage)
	}
	// Exactly the cross-partition pairs are unreachable: the left side
	// {0..3} misses messages {4..6} and the right side {4..6} misses {0..3}.
	want := make(map[Pair]bool)
	for v := 0; v <= 3; v++ {
		for m := 4; m < n; m++ {
			want[Pair{v, m}] = true
		}
	}
	for v := 4; v < n; v++ {
		for m := 0; m <= 3; m++ {
			want[Pair{v, m}] = true
		}
	}
	if len(out.Unreachable) != len(want) {
		t.Fatalf("%d unreachable pairs, want %d: %v", len(out.Unreachable), len(want), out.Unreachable)
	}
	for _, p := range out.Unreachable {
		if !want[p] {
			t.Fatalf("pair %v reported unreachable but crosses no partition", p)
		}
	}
	if got := iterationsAfterLastQuarantine(out); got > 3 {
		t.Fatalf("%d iterations after quarantine, want <= 3", got)
	}
}

// TestRunCrashStopEveryProcessor is the crash-stop property test: for
// every processor v of every named topology, crash-stopping v before round
// 0 degrades exactly to the reachable ceiling. DownProcessors is precisely
// [v], no link is separately quarantined, coverage over the live partition
// is exactly 1.0, and — via RecordPlans — no repair batch planned after
// the quarantine touches v in either direction. When g−v stays connected
// the unreachable set is exactly v's 2(n−1) cross pairs.
func TestRunCrashStopEveryProcessor(t *testing.T) {
	for name, g := range namedGraphs() {
		n := g.N()
		res := buildCUD(t, g)
		for v := 0; v < n; v++ {
			inj := fault.CrashStop(v, 0)
			holds, _, err := fault.ExecuteInjected(g, res.Schedule, inj, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Run(g, holds, Options{
				Injector:    inj,
				RoundOffset: res.Schedule.Time(),
				Validate:    true,
				RecordPlans: true,
			})
			if err != nil {
				t.Fatalf("%s crash %d: %v", name, v, err)
			}
			if out.Stalled {
				t.Fatalf("%s crash %d: stalled instead of quarantining", name, v)
			}
			if len(out.DownProcessors) != 1 || out.DownProcessors[0] != v {
				t.Fatalf("%s crash %d: DownProcessors %v, want [%d]", name, v, out.DownProcessors, v)
			}
			if len(out.QuarantinedLinks) != 0 {
				t.Fatalf("%s crash %d: crash misattributed to links %v", name, v, out.QuarantinedLinks)
			}
			if out.ReachableCoverage != 1.0 {
				t.Fatalf("%s crash %d: ReachableCoverage %v, want exactly 1.0",
					name, v, out.ReachableCoverage)
			}
			if got := iterationsAfterLastQuarantine(out); got > 3 {
				t.Fatalf("%s crash %d: %d iterations after quarantine, want <= 3", name, v, got)
			}
			if out.Iterations > DefaultQuarantineThreshold+3 {
				t.Fatalf("%s crash %d: %d total iterations, want <= threshold+3 = %d",
					name, v, out.Iterations, DefaultQuarantineThreshold+3)
			}
			// After the quarantine event, no plan may involve v at all.
			quarIt := out.Quarantines[len(out.Quarantines)-1].Iteration
			for i := quarIt + 1; i < len(out.Plans); i++ {
				for tr, round := range out.Plans[i].Rounds {
					for _, tx := range round {
						if tx.From == v {
							t.Fatalf("%s crash %d: plan %d round %d sends from the quarantined processor",
								name, v, i, tr)
						}
						for _, d := range tx.To {
							if d == v {
								t.Fatalf("%s crash %d: plan %d round %d sends to the quarantined processor",
									name, v, i, tr)
							}
						}
					}
				}
			}
			// When removing v leaves the rest connected, the unreachable set
			// is exactly v's row and column of the pair matrix minus (v, v).
			gv := g.Clone()
			rest := graph.New(n)
			for _, e := range gv.Edges() {
				if e.U == v || e.V == v {
					continue
				}
				rest.AddEdge(e.U, e.V)
			}
			restComps := 0
			for _, c := range rest.Components() {
				if len(c) > 1 || c[0] != v {
					restComps++
				}
			}
			if restComps == 1 {
				if len(out.Unreachable) != 2*(n-1) {
					t.Fatalf("%s crash %d: %d unreachable pairs, want %d",
						name, v, len(out.Unreachable), 2*(n-1))
				}
				for _, p := range out.Unreachable {
					if p.Processor != v && p.Message != v {
						t.Fatalf("%s crash %d: pair %v unreachable but does not involve the crashed processor",
							name, v, p)
					}
				}
				wantHeld := n*n - 2*(n-1)
				held := 0
				for _, h := range out.Holds {
					held += h.Count()
				}
				if held != wantHeld {
					t.Fatalf("%s crash %d: %d pairs held, want %d (all but the crash's cross pairs)",
						name, v, held, wantHeld)
				}
			}
		}
	}
}

// TestRunStallExit sets the stall patience below the quarantine threshold,
// so a persistent dead bridge exhausts the patience before suspicion can
// fire: the run must exit early with Stalled set instead of burning the
// whole iteration budget on an unchanging deficit.
func TestRunStallExit(t *testing.T) {
	g := graph.Path(5)
	res := buildCUD(t, g)
	inj := fault.DeadLink{U: 2, V: 3}
	holds, _, err := fault.ExecuteInjected(g, res.Schedule, inj, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(g, holds, Options{
		Injector:            inj,
		RoundOffset:         res.Schedule.Time(),
		QuarantineThreshold: 10,
		StallPatience:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Stalled {
		t.Fatalf("run did not stall: %+v", out)
	}
	if out.Complete {
		t.Fatal("stalled run claimed completion")
	}
	if out.Iterations >= DefaultMaxIterations {
		t.Fatalf("stall exit did not save iterations: ran %d", out.Iterations)
	}
	if len(out.QuarantinedLinks) != 0 || len(out.DownProcessors) != 0 {
		t.Fatalf("quarantine fired below its threshold: links %v procs %v",
			out.QuarantinedLinks, out.DownProcessors)
	}
}

// TestRunQuarantineThresholdOne checks the threshold option: with K=1 a
// single failed iteration amputates the dead link immediately.
func TestRunQuarantineThresholdOne(t *testing.T) {
	g := graph.Cycle(6)
	res := buildCUD(t, g)
	inj := fault.DeadLink{U: 0, V: 1}
	holds, _, err := fault.ExecuteInjected(g, res.Schedule, inj, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(g, holds, Options{
		Injector:            inj,
		RoundOffset:         res.Schedule.Time(),
		QuarantineThreshold: 1,
		Validate:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatalf("cycle minus one link not completed: %+v", out)
	}
	if len(out.Quarantines) == 0 {
		// The planner may have routed the deficit around the dead link
		// without ever attempting it, in which case nothing is suspected;
		// but on a cycle seeded by a round-0 dead link, the deficit spans
		// both directions, so at least one attempt must cross it.
		t.Fatal("no quarantine event despite threshold 1 and a dead link in use")
	}
	if q := out.Quarantines[0]; q.Iteration != 0 {
		t.Fatalf("threshold 1 quarantined at iteration %d, want 0", q.Iteration)
	}
}

// TestRunTransientLossNeverQuarantines re-checks the transient path after
// the adaptive layer landed: seeded 1% Bernoulli loss on the repair rounds
// converges to full coverage with no amputations — retry handles it.
func TestRunTransientLossNeverQuarantines(t *testing.T) {
	for name, g := range namedGraphs() {
		res := buildCUD(t, g)
		inj := fault.LinkLoss{P: 0.01, Seed: 7}
		holds, _, err := fault.ExecuteInjected(g, res.Schedule, inj, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(g, holds, Options{
			Injector:    inj,
			RoundOffset: res.Schedule.Time(),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.Complete {
			t.Fatalf("%s: transient loss not repaired", name)
		}
		if len(out.QuarantinedLinks) != 0 || len(out.DownProcessors) != 0 {
			t.Fatalf("%s: transient loss triggered quarantine: links %v procs %v",
				name, out.QuarantinedLinks, out.DownProcessors)
		}
		if out.ReachableCoverage != 1.0 {
			t.Fatalf("%s: ReachableCoverage %v on a complete run", name, out.ReachableCoverage)
		}
	}
}

// TestSuspicionSenderMissingIsNoEvidence checks failure attribution
// directly: a delivery skipped because the sender never got the message
// (upstream propagation) must not raise suspicion against the healthy
// downstream link or its endpoints.
func TestSuspicionSenderMissingIsNoEvidence(t *testing.T) {
	s := newSuspicion(3, 1)
	for i := 0; i < 5; i++ {
		s.beginIteration()
		s.observe(i, 1, 2, 0, fault.SenderMissing)
		links, procs := s.endIteration()
		if len(links) != 0 || len(procs) != 0 {
			t.Fatalf("SenderMissing raised quarantine: links %v procs %v", links, procs)
		}
	}
	if len(s.quarantinedLinks()) != 0 || len(s.downProcessors()) != 0 {
		t.Fatal("SenderMissing accumulated suspicion")
	}
}

// TestSuspicionLinkResetOnSuccess checks that a success wipes a link's
// consecutive-failure streak: alternating fail/success never quarantines.
func TestSuspicionLinkResetOnSuccess(t *testing.T) {
	s := newSuspicion(2, 2)
	for i := 0; i < 6; i++ {
		s.beginIteration()
		outcome := fault.LostInFlight
		if i%2 == 1 {
			outcome = fault.Delivered
		}
		s.observe(i, 0, 1, 0, outcome)
		if links, procs := s.endIteration(); len(links) != 0 || len(procs) != 0 {
			t.Fatalf("iteration %d: alternating outcomes quarantined links %v procs %v", i, links, procs)
		}
	}
}

// TestComponentUnionsAndUnreachable exercises the reachability analysis on
// a hand-built disconnected survivor graph.
func TestComponentUnionsAndUnreachable(t *testing.T) {
	// Components {0,1} and {2}; messages 0..2. Processor 2 holds 2 only.
	surv := graph.New(3)
	surv.AddEdge(0, 1)
	holds := []*schedule.Bitset{
		schedule.NewBitset(3), schedule.NewBitset(3), schedule.NewBitset(3),
	}
	holds[0].Set(0)
	holds[1].Set(1)
	holds[2].Set(2)
	if got := reachableDeficit(surv, holds); got != 2 {
		// 0 can get 1, 1 can get 0; nobody can cross to or from 2.
		t.Fatalf("reachableDeficit = %d, want 2", got)
	}
	want := []Pair{{0, 2}, {1, 2}, {2, 0}, {2, 1}}
	got := unreachablePairs(surv, holds)
	if len(got) != len(want) {
		t.Fatalf("unreachablePairs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unreachablePairs = %v, want %v", got, want)
		}
	}
}
