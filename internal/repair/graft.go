package repair

// graft.go extends the repair engine from message deficits to structural
// ones: where repair.Run re-delivers the pairs a faulty execution dropped,
// GraftTree re-attaches the subtree a removed link orphaned. The two share
// the same philosophy — fix the affected region, leave the rest alone — and
// the same caller: the plan-patching layer uses GraftTree to splice a cached
// plan's spanning tree around a removed link instead of re-running the
// O(nm) minimum-depth construction.

import (
	"fmt"

	"multigossip/internal/graph"
	"multigossip/internal/spantree"
)

// GraftTree repairs spanning tree t of g after the undirected link {u, v}
// was removed from g (g must already reflect the removal; t was built before
// it). If {u, v} was not a tree edge the tree is untouched and returned
// as-is: every communication of a schedule over t used only tree edges, so
// losing a chord changes nothing. If it was a tree edge, the subtree below
// it is severed and re-attached through a surviving crossing link: among all
// g-edges {x, y} with x outside the severed subtree and y inside, the graft
// picks the one minimising (level of x, old level of y, x, y) — attaching as
// high as possible bounds the regrown depth — then reverses the parent path
// from y up to the severed root and hangs y under x. The result is a valid
// spanning tree of the post-removal graph, built in O(n + m); its height may
// exceed the new radius, which is the caller's quality policy to judge.
//
// It returns an error when no crossing link survives — the removal
// disconnected g, and no spanning tree exists to repair.
func GraftTree(g *graph.Graph, t *spantree.Tree, u, v int) (*spantree.Tree, error) {
	n := t.N()
	if g.N() != n {
		return nil, fmt.Errorf("repair: graft over %d-vertex graph, tree has %d", g.N(), n)
	}
	if u < 0 || u >= n || v < 0 || v >= n {
		return nil, fmt.Errorf("repair: graft link {%d, %d} out of range [0,%d)", u, v, n)
	}
	// Identify the child endpoint of the tree edge; a chord leaves t valid.
	var sever int
	switch {
	case t.Parent[u] == v:
		sever = u
	case t.Parent[v] == u:
		sever = v
	default:
		return t, nil
	}

	// Mark the severed subtree.
	inSub := make([]bool, n)
	stack := []int{sever}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		inSub[w] = true
		stack = append(stack, t.Children[w]...)
	}

	// Find the best surviving crossing link {x, y}, x outside, y inside.
	graftX, graftY := -1, -1
	better := func(x, y int) bool {
		switch {
		case graftX < 0:
			return true
		case t.Level[x] != t.Level[graftX]:
			return t.Level[x] < t.Level[graftX]
		case t.Level[y] != t.Level[graftY]:
			return t.Level[y] < t.Level[graftY]
		case x != graftX:
			return x < graftX
		default:
			return y < graftY
		}
	}
	for y := 0; y < n; y++ {
		if !inSub[y] {
			continue
		}
		for _, x := range g.Neighbors(y) {
			if !inSub[x] && better(x, y) {
				graftX, graftY = x, y
			}
		}
	}
	if graftX < 0 {
		return nil, fmt.Errorf("repair: removing link {%d, %d} disconnected the subtree at %d", u, v, sever)
	}

	// Reverse the parent path graftY -> sever, then hang graftY under
	// graftX. The severed tree edge disappears because sever's parent
	// pointer is overwritten (by its path child, or by graftX directly when
	// graftY == sever); every other path edge survives with its direction
	// flipped, so the new edge set is exactly (old tree - {u,v}) + {x,y}.
	parent := append([]int(nil), t.Parent...)
	prev, w := graftX, graftY
	for w != -1 && inSub[w] {
		next := parent[w]
		parent[w] = prev
		prev, w = w, next
	}
	repaired, err := spantree.FromParents(parent)
	if err != nil {
		return nil, fmt.Errorf("repair: graft produced an invalid tree: %w", err)
	}
	return repaired, nil
}
