package repair

import (
	"math/rand"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// FuzzPlanRounds checks the planner's model-safety invariant on arbitrary
// inputs: every schedule PlanRounds emits, from any hold-state on any
// random connected graph, must respect its round cap and replay cleanly
// under the full model validation of schedule.Run (senders hold what they
// multicast, one multicast per sender and at most one receive per
// processor per round, every delivery over a real link).
func FuzzPlanRounds(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(128), uint8(3), uint8(3))
	f.Add(int64(42), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int64(-7), uint8(23), uint8(255), uint8(19), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, pRaw, capRaw, fillRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%24
		p := float64(pRaw) / 255
		g := graph.RandomConnected(rng, n, p)
		// Arbitrary hold-state: every processor holds its own message (the
		// gossip invariant every execution preserves) plus a random subset
		// of the others, denser as fillRaw grows.
		holds := make([]*schedule.Bitset, n)
		for v := range holds {
			holds[v] = schedule.NewBitset(n)
			holds[v].Set(v)
			for m := 0; m < n; m++ {
				if rng.Intn(256) < int(fillRaw) {
					holds[v].Set(m)
				}
			}
		}
		maxRounds := 1 + int(capRaw)%(2*n)
		s := PlanRounds(g, holds, maxRounds)
		if s.Time() > maxRounds {
			t.Fatalf("planned %d rounds over the cap %d", s.Time(), maxRounds)
		}
		if _, err := schedule.Run(g, s, schedule.Options{Initial: holds}); err != nil {
			t.Fatalf("planned schedule violates the model on n=%d p=%v: %v", n, p, err)
		}
	})
}
