package repair

import (
	"math/rand"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/spantree"
)

// checkSpanning asserts t is a spanning tree of g: right size, and every
// tree edge present in g (FromParents already guarantees connectivity and
// acyclicity, so edge containment is the only open property).
func checkSpanning(t *testing.T, g *graph.Graph, tr *spantree.Tree) {
	t.Helper()
	if tr.N() != g.N() {
		t.Fatalf("tree has %d vertices, graph %d", tr.N(), g.N())
	}
	for v, p := range tr.Parent {
		if p >= 0 && !g.HasEdge(v, p) {
			t.Fatalf("tree edge %d-%d not in graph", v, p)
		}
	}
}

func TestGraftTreeChordIsNoop(t *testing.T) {
	g := graph.Cycle(8)
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	// Every cycle tree leaves exactly one chord; removing it must return the
	// identical tree.
	for _, e := range g.Edges() {
		if tr.Parent[e.U] == e.V || tr.Parent[e.V] == e.U {
			continue
		}
		h := g.Clone()
		h.RemoveEdge(e.U, e.V)
		got, err := GraftTree(h, tr, e.U, e.V)
		if err != nil {
			t.Fatalf("chord removal: %v", err)
		}
		if got != tr {
			t.Fatalf("chord removal rebuilt the tree")
		}
	}
}

func TestGraftTreeRepairsTreeEdge(t *testing.T) {
	g := graph.Cycle(12)
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	var te graph.Edge
	for _, e := range g.Edges() {
		if tr.Parent[e.U] == e.V || tr.Parent[e.V] == e.U {
			te = e
			break
		}
	}
	h := g.Clone()
	h.RemoveEdge(te.U, te.V)
	got, err := GraftTree(h, tr, te.U, te.V)
	if err != nil {
		t.Fatal(err)
	}
	if got == tr {
		t.Fatal("tree-edge removal returned the stale tree")
	}
	checkSpanning(t, h, got)
	if got.Root != tr.Root {
		t.Errorf("graft moved the root from %d to %d", tr.Root, got.Root)
	}
}

func TestGraftTreeDisconnection(t *testing.T) {
	g := graph.Path(6)
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	h.RemoveEdge(2, 3) // every path edge is a bridge
	if _, err := GraftTree(h, tr, 2, 3); err == nil {
		t.Fatal("bridge removal grafted a tree over a disconnected graph")
	}
}

func TestGraftTreeRejectsMismatch(t *testing.T) {
	g := graph.Cycle(8)
	tr, _ := spantree.MinDepth(g)
	if _, err := GraftTree(graph.Cycle(9), tr, 0, 1); err == nil {
		t.Error("vertex-count mismatch accepted")
	}
	if _, err := GraftTree(g, tr, -1, 3); err == nil {
		t.Error("negative endpoint accepted")
	}
	if _, err := GraftTree(g, tr, 0, 8); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

// TestGraftTreeRandomChurn removes random non-bridge links from random
// connected graphs and checks every graft yields a valid spanning tree of
// the survivor graph, with the severed subtree reattached (not rebuilt:
// the parent pointers outside the severed subtree must be untouched).
func TestGraftTreeRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := graph.RandomConnected(rng, 48+rng.Intn(32), 0.08)
		tr, err := spantree.MinDepth(g)
		if err != nil {
			t.Fatal(err)
		}
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		g.RemoveEdge(e.U, e.V)
		if !g.Reachable(e.U, e.V) {
			g.AddEdge(e.U, e.V) // bridge: skip this trial
			continue
		}
		got, err := GraftTree(g, tr, e.U, e.V)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkSpanning(t, g, got)
		if got == tr {
			continue // chord removal
		}
		// Locate the severed subtree in the old tree and check the graft was
		// surgical: parents outside it are identical.
		sever := e.U
		if tr.Parent[e.V] == e.U {
			sever = e.V
		}
		inSub := make([]bool, tr.N())
		stack := []int{sever}
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			inSub[w] = true
			stack = append(stack, tr.Children[w]...)
		}
		for v := range inSub {
			if !inSub[v] && got.Parent[v] != tr.Parent[v] {
				t.Fatalf("trial %d: graft moved vertex %d outside the severed subtree", trial, v)
			}
		}
	}
}
