// Package repair closes the loop that package fault opens: given the hold
// sets left behind by a faulty execution, it computes the residual deficit
// — which (processor, message) pairs are still missing — and greedily
// synthesizes repair rounds that deliver exactly those pairs. Repair
// schedules respect the full communication model (each processor multicasts
// at most one message and receives at most one message per round) but are
// not confined to the spanning tree the original schedule communicated
// over: any network link may carry a repair delivery, so a hole is filled
// from its nearest holder, not from its tree parent.
//
// Because repair rounds traverse the same lossy links as the original
// schedule, the engine iterates: plan a bounded batch of rounds from the
// current holds, execute it under the same fault injector, re-measure the
// deficit, and retry, up to a bounded number of iterations. Each iteration
// plans at most the network diameter rounds — enough for a wavefront from
// the holders of a message to reach every processor missing it when no
// further faults strike — so the retry loop converges geometrically under
// any sub-certain loss rate.
package repair

import (
	"fmt"

	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/obs"
	"multigossip/internal/schedule"
)

// DefaultMaxIterations bounds the retry loop when Options.MaxIterations is
// unset. Under i.i.d. loss rate p each missing pair survives an iteration
// with probability about p, so sixteen iterations put the residual deficit
// below any practical loss rate's noise floor.
const DefaultMaxIterations = 16

// MissingPairs returns the number of (processor, message) pairs absent
// from the hold sets — the size of the deficit repair must close.
func MissingPairs(holds []*schedule.Bitset) int {
	missing := 0
	for _, h := range holds {
		missing += h.Len() - h.Count()
	}
	return missing
}

// PlanRounds greedily synthesizes at most maxRounds repair rounds that
// shrink the deficit of holds on network g, assuming lossless delivery
// while planning (the caller re-executes the plan under its fault model and
// iterates). Each round assigns every deficient processor at most one
// receive: scanning its neighbours, it joins an already-planned multicast
// whose message it misses, or opens a new multicast from an idle neighbour
// holding one of its missing messages. A message received in round t is
// available for forwarding in round t+1, so each planned round advances the
// wavefront of every under-delivered message by one hop; while some
// processor misses a message held somewhere in a connected component, the
// round makes progress, and planning stops early once the deficit is empty
// or no link can supply any missing pair.
//
// holds is not modified. The returned schedule may be empty (zero rounds).
func PlanRounds(g *graph.Graph, holds []*schedule.Bitset, maxRounds int) *schedule.Schedule {
	n := g.N()
	nmsg := 0
	if n > 0 {
		nmsg = holds[0].Len()
	}
	s := schedule.NewWithMessages(n, nmsg)
	sim := make([]*schedule.Bitset, n)
	for v, h := range holds {
		sim[v] = h.Clone()
	}
	senderMsg := make([]int, n) // message processor u multicasts this round, -1 if idle
	senderTo := make([][]int, n)
	for t := 0; t < maxRounds; t++ {
		for u := range senderMsg {
			senderMsg[u] = -1
			senderTo[u] = senderTo[u][:0]
		}
		progress := false
		for d := 0; d < n; d++ {
			if sim[d].Full() {
				continue
			}
			for _, u := range g.Neighbors(d) {
				var m int
				if senderMsg[u] >= 0 {
					// u already multicasts this round; d may only join in.
					m = senderMsg[u]
					if sim[d].Has(m) {
						continue
					}
				} else {
					m = sim[u].FirstAndNot(sim[d])
					if m < 0 {
						continue
					}
					senderMsg[u] = m
				}
				senderTo[u] = append(senderTo[u], d)
				progress = true
				break // one receive per processor per round
			}
		}
		if !progress {
			break
		}
		for u, m := range senderMsg {
			if m < 0 {
				continue
			}
			s.AddSend(t, m, u, senderTo[u]...)
			for _, d := range senderTo[u] {
				sim[d].Set(m)
			}
		}
	}
	return s
}

// DefaultQuarantineThreshold is the suspicion threshold when
// Options.QuarantineThreshold is unset: after this many consecutive
// iterations in which every delivery over a link (or to a processor)
// failed, the link (processor) is quarantined and planning moves to the
// survivor subgraph. Three keeps transient loss from triggering spurious
// amputations (at loss rate p a healthy retried link is quarantined with
// probability ~p³) while bounding the rounds wasted on a permanent fault.
const DefaultQuarantineThreshold = 3

// Options configure a repair run.
type Options struct {
	// MaxIterations bounds the plan-execute-remeasure retry loop; zero
	// means DefaultMaxIterations.
	MaxIterations int
	// RoundsPerIteration caps the rounds planned per iteration; zero means
	// the survivor graph's per-component diameter, the distance a repair
	// wavefront may need to travel (recomputed after each quarantine).
	// Stalled iterations double the cap, up to the processor count, as
	// backoff against caps that turn out too tight.
	RoundsPerIteration int
	// Injector applies faults to the repair rounds themselves; nil runs
	// them lossless.
	Injector fault.Injector
	// RoundOffset is the absolute index of the first repair round — the
	// length of the schedule whose execution produced the deficit — so the
	// injector sees one consistent global round numbering.
	RoundOffset int
	// Validate re-checks every planned iteration against the communication
	// model (schedule.Run over the survivor graph with the current holds as
	// the initial state) before executing it, turning planner bugs into
	// errors instead of silently invalid repairs.
	Validate bool
	// QuarantineThreshold is the number of consecutive failed delivery
	// attempts after which a link or processor is quarantined out of the
	// survivor graph; zero means DefaultQuarantineThreshold.
	QuarantineThreshold int
	// StallPatience is the number of consecutive iterations with an
	// unchanged deficit and no quarantine change tolerated before the run
	// gives up with Outcome.Stalled set. Zero means the quarantine
	// threshold, so quarantine always gets its chance to fire before a
	// stall is declared.
	StallPatience int
	// RecordPlans retains every executed repair batch in Outcome.Plans, for
	// tests and tooling that audit what was planned when.
	RecordPlans bool
	// Observer, when non-nil, receives the structured events of the
	// observability layer: the round events of every executed repair batch
	// (absolute indices continuing from RoundOffset), one RepairIteration
	// event per plan-execute iteration, and a Quarantine event per
	// amputation.
	Observer obs.RoundObserver
}

// Outcome reports what a repair run achieved.
type Outcome struct {
	Holds      []*schedule.Bitset // final hold sets
	Iterations int                // plan-execute iterations run
	Rounds     int                // repair rounds executed across all iterations
	Dropped    int                // repair deliveries lost in flight
	Repaired   int                // (processor, message) pairs restored
	Complete   bool               // deficit fully closed

	// Stalled reports that the run gave up before exhausting its budget
	// because iterations stopped shrinking the deficit with reachable pairs
	// still missing and no quarantine left to change the topology.
	Stalled bool
	// ReachableCoverage is the fraction of reachable pairs held at the end,
	// where a missing pair is reachable when its message has a holder in
	// the destination's survivor-graph component (held pairs count as
	// trivially reachable). 1.0 means complete up to reachability: every
	// pair any repair could possibly deliver was delivered.
	ReachableCoverage float64
	// Unreachable lists the missing pairs beyond the reachable ceiling,
	// ordered by (Processor, Message).
	Unreachable []Pair
	// QuarantinedLinks and DownProcessors are the amputations the suspicion
	// tracker performed, ordered.
	QuarantinedLinks []graph.Edge
	DownProcessors   []int
	// Components is the number of connected components of the final
	// survivor graph; a quarantined processor is its own singleton, so any
	// value above 1 means the run degraded gracefully under partition.
	Components int
	// Quarantines records each amputation event with the iteration that
	// triggered it.
	Quarantines []QuarantineEvent
	// Plans holds the executed repair batches when Options.RecordPlans was
	// set, in execution order.
	Plans []*schedule.Schedule
}

// Run repairs the deficit of holds on network g: it iterates PlanRounds
// and fault.ExecuteObserved under opts until every processor holds every
// message it can still get. Transient loss is ridden out by retrying;
// permanent faults are detected by the suspicion tracker (consecutive
// failed attempts per link and per processor) and quarantined, after which
// planning continues over the survivor subgraph. The loop terminates when
// the reachable deficit is empty (complete up to reachability — under
// partition this is the best any recovery can do), when the deficit stops
// shrinking with nothing left to quarantine (Outcome.Stalled), or when the
// iteration budget runs out. holds is not modified; the returned Outcome
// reports the final hold sets, the cost, and the survivor topology.
func Run(g *graph.Graph, holds []*schedule.Bitset, opts Options) (Outcome, error) {
	n := g.N()
	if len(holds) != n {
		return Outcome{}, fmt.Errorf("repair: %d hold sets for %d processors", len(holds), n)
	}
	cur := make([]*schedule.Bitset, n)
	for v, h := range holds {
		if h.Len() != holds[0].Len() {
			return Outcome{}, fmt.Errorf("repair: hold set %d sized %d, want %d", v, h.Len(), holds[0].Len())
		}
		cur[v] = h.Clone()
	}
	out := Outcome{Holds: cur, ReachableCoverage: 1}
	deficit := MissingPairs(cur)
	if deficit == 0 {
		out.Complete = true
		out.Components = len(g.Components())
		return out, nil
	}
	initialDeficit := deficit
	iters := opts.MaxIterations
	if iters <= 0 {
		iters = DefaultMaxIterations
	}
	threshold := opts.QuarantineThreshold
	if threshold <= 0 {
		threshold = DefaultQuarantineThreshold
	}
	patience := opts.StallPatience
	if patience <= 0 {
		patience = threshold
	}
	susp := newSuspicion(n, threshold)
	surv := g
	adaptiveCap := opts.RoundsPerIteration <= 0
	baseCap := opts.RoundsPerIteration
	if adaptiveCap {
		baseCap = max(1, surv.ComponentDiameter())
	}
	capRounds := baseCap
	maxCap := max(n, baseCap)
	offset := opts.RoundOffset
	noProgress := 0
loop:
	for it := 0; it < iters && deficit > 0; it++ {
		if reachableDeficit(surv, cur) == 0 {
			break // complete up to reachability: the rest has no live holder
		}
		plan := PlanRounds(surv, cur, capRounds)
		if plan.Time() == 0 {
			// A reachable pair is always plannable (wavefront argument), so
			// an empty plan here means the planner is wedged: stop honestly.
			out.Stalled = true
			break
		}
		if opts.Validate {
			if _, err := schedule.Run(surv, plan, schedule.Options{Initial: cur}); err != nil {
				return out, fmt.Errorf("repair: planned rounds violate the model: %w", err)
			}
		}
		susp.beginIteration()
		next, dropped, err := fault.ExecuteTraced(g, plan, opts.Injector, cur, offset, susp.observe, opts.Observer)
		if err != nil {
			return out, fmt.Errorf("repair: %w", err)
		}
		out.Iterations++
		out.Rounds += plan.Time()
		out.Dropped += dropped
		offset += plan.Time()
		if opts.RecordPlans {
			out.Plans = append(out.Plans, plan)
		}
		newLinks, newProcs := susp.endIteration()
		quarantined := len(newLinks) > 0 || len(newProcs) > 0
		if opts.Observer != nil {
			opts.Observer.RepairIteration(it, obs.RepairStats{
				PlannedRounds: plan.Time(),
				DeficitBefore: deficit,
				DeficitAfter:  MissingPairs(next),
				Quarantined:   quarantined,
			})
			if quarantined {
				links := make([][2]int, len(newLinks))
				for i, e := range newLinks {
					links[i] = [2]int{e.U, e.V}
				}
				opts.Observer.Quarantine(it, links, newProcs)
			}
		}
		if quarantined {
			out.Quarantines = append(out.Quarantines, QuarantineEvent{
				Iteration: it, Links: newLinks, Processors: newProcs,
			})
			surv = susp.survivorGraph(g)
			if adaptiveCap {
				baseCap = max(1, surv.ComponentDiameter())
				// Recovery after an amputation should finish in one
				// decisive batch, not trickle diameter-sized iterations:
				// open the cap to the backoff ceiling. Receive bandwidth
				// (one message per processor per round), not wavefront
				// distance, bounds the post-quarantine deficit.
				capRounds = maxCap
			} else {
				capRounds = baseCap
			}
		}
		progressed := MissingPairs(next) < deficit
		cur = next
		deficit = MissingPairs(cur)
		switch {
		case quarantined:
			// The topology just changed; the replanned loop starts fresh
			// (and keeps the opened cap from the quarantine block).
			noProgress = 0
		case progressed:
			noProgress = 0
			capRounds = baseCap
		default:
			noProgress++
			if noProgress >= patience {
				out.Stalled = true
				break loop
			}
			// Backoff: the cap may be too tight for the survivor wavefront.
			capRounds = min(capRounds*2, maxCap)
		}
	}
	out.Holds = cur
	out.Repaired = initialDeficit - deficit
	out.Complete = deficit == 0
	out.QuarantinedLinks = susp.quarantinedLinks()
	out.DownProcessors = susp.downProcessors()
	out.Components = len(surv.Components())
	out.Unreachable = unreachablePairs(surv, cur)
	total := n * cur[0].Len()
	if reachable := total - len(out.Unreachable); reachable > 0 {
		out.ReachableCoverage = float64(total-deficit) / float64(reachable)
	}
	return out, nil
}
