// Package repair closes the loop that package fault opens: given the hold
// sets left behind by a faulty execution, it computes the residual deficit
// — which (processor, message) pairs are still missing — and greedily
// synthesizes repair rounds that deliver exactly those pairs. Repair
// schedules respect the full communication model (each processor multicasts
// at most one message and receives at most one message per round) but are
// not confined to the spanning tree the original schedule communicated
// over: any network link may carry a repair delivery, so a hole is filled
// from its nearest holder, not from its tree parent.
//
// Because repair rounds traverse the same lossy links as the original
// schedule, the engine iterates: plan a bounded batch of rounds from the
// current holds, execute it under the same fault injector, re-measure the
// deficit, and retry, up to a bounded number of iterations. Each iteration
// plans at most the network diameter rounds — enough for a wavefront from
// the holders of a message to reach every processor missing it when no
// further faults strike — so the retry loop converges geometrically under
// any sub-certain loss rate.
package repair

import (
	"fmt"

	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// DefaultMaxIterations bounds the retry loop when Options.MaxIterations is
// unset. Under i.i.d. loss rate p each missing pair survives an iteration
// with probability about p, so sixteen iterations put the residual deficit
// below any practical loss rate's noise floor.
const DefaultMaxIterations = 16

// MissingPairs returns the number of (processor, message) pairs absent
// from the hold sets — the size of the deficit repair must close.
func MissingPairs(holds []*schedule.Bitset) int {
	missing := 0
	for _, h := range holds {
		missing += h.Len() - h.Count()
	}
	return missing
}

// PlanRounds greedily synthesizes at most maxRounds repair rounds that
// shrink the deficit of holds on network g, assuming lossless delivery
// while planning (the caller re-executes the plan under its fault model and
// iterates). Each round assigns every deficient processor at most one
// receive: scanning its neighbours, it joins an already-planned multicast
// whose message it misses, or opens a new multicast from an idle neighbour
// holding one of its missing messages. A message received in round t is
// available for forwarding in round t+1, so each planned round advances the
// wavefront of every under-delivered message by one hop; while some
// processor misses a message held somewhere in a connected component, the
// round makes progress, and planning stops early once the deficit is empty
// or no link can supply any missing pair.
//
// holds is not modified. The returned schedule may be empty (zero rounds).
func PlanRounds(g *graph.Graph, holds []*schedule.Bitset, maxRounds int) *schedule.Schedule {
	n := g.N()
	nmsg := 0
	if n > 0 {
		nmsg = holds[0].Len()
	}
	s := schedule.NewWithMessages(n, nmsg)
	sim := make([]*schedule.Bitset, n)
	for v, h := range holds {
		sim[v] = h.Clone()
	}
	senderMsg := make([]int, n) // message processor u multicasts this round, -1 if idle
	senderTo := make([][]int, n)
	for t := 0; t < maxRounds; t++ {
		for u := range senderMsg {
			senderMsg[u] = -1
			senderTo[u] = senderTo[u][:0]
		}
		progress := false
		for d := 0; d < n; d++ {
			if sim[d].Full() {
				continue
			}
			for _, u := range g.Neighbors(d) {
				var m int
				if senderMsg[u] >= 0 {
					// u already multicasts this round; d may only join in.
					m = senderMsg[u]
					if sim[d].Has(m) {
						continue
					}
				} else {
					m = sim[u].FirstAndNot(sim[d])
					if m < 0 {
						continue
					}
					senderMsg[u] = m
				}
				senderTo[u] = append(senderTo[u], d)
				progress = true
				break // one receive per processor per round
			}
		}
		if !progress {
			break
		}
		for u, m := range senderMsg {
			if m < 0 {
				continue
			}
			s.AddSend(t, m, u, senderTo[u]...)
			for _, d := range senderTo[u] {
				sim[d].Set(m)
			}
		}
	}
	return s
}

// Options configure a repair run.
type Options struct {
	// MaxIterations bounds the plan-execute-remeasure retry loop; zero
	// means DefaultMaxIterations.
	MaxIterations int
	// RoundsPerIteration caps the rounds planned per iteration; zero means
	// the network diameter (computed with one full BFS sweep), the distance
	// a repair wavefront may need to travel.
	RoundsPerIteration int
	// Injector applies faults to the repair rounds themselves; nil runs
	// them lossless.
	Injector fault.Injector
	// RoundOffset is the absolute index of the first repair round — the
	// length of the schedule whose execution produced the deficit — so the
	// injector sees one consistent global round numbering.
	RoundOffset int
	// Validate re-checks every planned iteration against the communication
	// model (schedule.Run with the current holds as the initial state)
	// before executing it, turning planner bugs into errors instead of
	// silently invalid repairs.
	Validate bool
}

// Outcome reports what a repair run achieved.
type Outcome struct {
	Holds      []*schedule.Bitset // final hold sets
	Iterations int                // plan-execute iterations run
	Rounds     int                // repair rounds executed across all iterations
	Dropped    int                // repair deliveries lost in flight
	Repaired   int                // (processor, message) pairs restored
	Complete   bool               // deficit fully closed
}

// Run repairs the deficit of holds on network g: it iterates PlanRounds
// and fault.ExecuteInjected under opts until every processor holds every
// message, the iteration budget is exhausted, or no link can supply any
// missing pair (a message with no holder in a component). holds is not
// modified; the returned Outcome reports the final hold sets and the cost.
func Run(g *graph.Graph, holds []*schedule.Bitset, opts Options) (Outcome, error) {
	n := g.N()
	if len(holds) != n {
		return Outcome{}, fmt.Errorf("repair: %d hold sets for %d processors", len(holds), n)
	}
	cur := make([]*schedule.Bitset, n)
	for v, h := range holds {
		if h.Len() != holds[0].Len() {
			return Outcome{}, fmt.Errorf("repair: hold set %d sized %d, want %d", v, h.Len(), holds[0].Len())
		}
		cur[v] = h.Clone()
	}
	out := Outcome{Holds: cur}
	deficit := MissingPairs(cur)
	if deficit == 0 {
		out.Complete = true
		return out, nil
	}
	initialDeficit := deficit
	iters := opts.MaxIterations
	if iters <= 0 {
		iters = DefaultMaxIterations
	}
	cap := opts.RoundsPerIteration
	if cap <= 0 {
		res, err := g.Sweep(graph.SweepAll)
		if err != nil {
			return out, fmt.Errorf("repair: %w", err)
		}
		cap = res.Diameter
		if cap < 1 {
			cap = 1
		}
	}
	offset := opts.RoundOffset
	for it := 0; it < iters && deficit > 0; it++ {
		plan := PlanRounds(g, cur, cap)
		if plan.Time() == 0 {
			break // some missing message has no reachable holder
		}
		if opts.Validate {
			if _, err := schedule.Run(g, plan, schedule.Options{Initial: cur}); err != nil {
				return out, fmt.Errorf("repair: planned rounds violate the model: %w", err)
			}
		}
		next, dropped, err := fault.ExecuteInjected(g, plan, opts.Injector, cur, offset)
		if err != nil {
			return out, fmt.Errorf("repair: %w", err)
		}
		out.Iterations++
		out.Rounds += plan.Time()
		out.Dropped += dropped
		offset += plan.Time()
		cur = next
		deficit = MissingPairs(cur)
	}
	out.Holds = cur
	out.Repaired = initialDeficit - deficit
	out.Complete = deficit == 0
	return out, nil
}
