package repair

import (
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// basicHolds returns the basic-instance starting holds: processor p holds
// exactly message p.
func basicHolds(n int) []*schedule.Bitset {
	holds := make([]*schedule.Bitset, n)
	for v := range holds {
		holds[v] = schedule.NewBitset(n)
		holds[v].Set(v)
	}
	return holds
}

func fullHolds(n int) []*schedule.Bitset {
	holds := make([]*schedule.Bitset, n)
	for v := range holds {
		holds[v] = schedule.NewBitset(n)
		for m := 0; m < n; m++ {
			holds[v].Set(m)
		}
	}
	return holds
}

func TestMissingPairs(t *testing.T) {
	if got := MissingPairs(basicHolds(4)); got != 12 {
		t.Fatalf("basic instance deficit %d, want 12", got)
	}
	if got := MissingPairs(fullHolds(4)); got != 0 {
		t.Fatalf("full holds deficit %d, want 0", got)
	}
}

// TestPlanRoundsWavefront: a single message missing along a path reaches
// the far end in exactly its distance, the wavefront advancing one hop per
// round — the bound the per-iteration diameter cap relies on.
func TestPlanRoundsWavefront(t *testing.T) {
	g := graph.Path(6)
	holds := fullHolds(6)
	for v := 1; v < 6; v++ {
		holds[v].Clear(0) // message 0 held only by processor 0
	}
	s := PlanRounds(g, holds, 100)
	if s.Time() != 5 {
		t.Fatalf("repair took %d rounds, want 5 (distance from the holder)", s.Time())
	}
	if _, err := schedule.Run(g, s, schedule.Options{Initial: holds}); err != nil {
		t.Fatalf("planned rounds invalid: %v", err)
	}
	res, err := schedule.Run(g, s, schedule.Options{Initial: holds})
	if err != nil {
		t.Fatal(err)
	}
	for v, h := range res.Holds {
		if !h.Full() {
			t.Fatalf("processor %d still missing %v", v, h.Missing())
		}
	}
}

// TestPlanRoundsRespectsCap: the planner never emits more rounds than the
// cap, leaving the residue to the next iteration.
func TestPlanRoundsRespectsCap(t *testing.T) {
	g := graph.Path(6)
	holds := fullHolds(6)
	for v := 1; v < 6; v++ {
		holds[v].Clear(0)
	}
	s := PlanRounds(g, holds, 2)
	if s.Time() != 2 {
		t.Fatalf("cap 2 produced %d rounds", s.Time())
	}
}

// TestPlanRoundsMulticast: several processors missing the same message
// from a shared neighbour are served by one multicast, not serialized.
func TestPlanRoundsMulticast(t *testing.T) {
	g := graph.Star(5) // hub 0
	holds := fullHolds(5)
	for v := 1; v < 5; v++ {
		holds[v].Clear(0)
	}
	s := PlanRounds(g, holds, 10)
	if s.Time() != 1 {
		t.Fatalf("star repair took %d rounds, want 1", s.Time())
	}
	if got := s.Transmissions(); got != 1 {
		t.Fatalf("star repair used %d transmissions, want one multicast", got)
	}
	if got := s.Deliveries(); got != 4 {
		t.Fatalf("star repair made %d deliveries, want 4", got)
	}
}

// TestPlanRoundsUnrepairable: a message with no holder anywhere cannot be
// repaired; the planner stops instead of spinning.
func TestPlanRoundsUnrepairable(t *testing.T) {
	g := graph.Path(3)
	holds := fullHolds(3)
	for v := 0; v < 3; v++ {
		holds[v].Clear(1) // message 1 lost everywhere
	}
	s := PlanRounds(g, holds, 10)
	if s.Time() != 0 {
		t.Fatalf("planned %d rounds for an unrepairable deficit", s.Time())
	}
	out, err := Run(g, holds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete || out.Rounds != 0 {
		t.Fatalf("Run claimed completion on an unrepairable deficit: %+v", out)
	}
}

func TestRunNoDeficitIsFree(t *testing.T) {
	g := graph.Cycle(5)
	out, err := Run(g, fullHolds(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete || out.Rounds != 0 || out.Iterations != 0 || out.Repaired != 0 {
		t.Fatalf("repairing a complete state cost something: %+v", out)
	}
}

func TestRunRejectsBadHolds(t *testing.T) {
	g := graph.Path(3)
	if _, err := Run(g, basicHolds(2), Options{}); err == nil {
		t.Fatal("accepted hold-set count mismatch")
	}
	holds := basicHolds(3)
	holds[2] = schedule.NewBitset(7)
	if _, err := Run(g, holds, Options{}); err == nil {
		t.Fatal("accepted inconsistent hold-set capacity")
	}
}

// namedGraphs is the small-instance version of every named topology the
// public API exposes.
func namedGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"line":      graph.Path(7),
		"ring":      graph.Cycle(9),
		"star":      graph.Star(8),
		"complete":  graph.Complete(6),
		"mesh":      graph.Grid(3, 4),
		"torus":     graph.Torus(3, 3),
		"hypercube": graph.Hypercube(3),
		"petersen":  graph.Petersen(),
		"fig4":      graph.Fig4(),
	}
}

func buildCUD(t *testing.T, g *graph.Graph) *core.Result {
	t.Helper()
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	return core.GossipOnTree(tr)[core.ConcurrentUpDown]()
}

// TestRepairEverySingleDrop is the property test of the acceptance
// criteria: on every named topology, dropping any single delivery of the
// ConcurrentUpDown schedule (all of which are critical) is healed back to
// coverage 1.0, with per-iteration overhead bounded by the network
// diameter, and every synthesized repair batch re-validating against the
// model rules (Options.Validate).
func TestRepairEverySingleDrop(t *testing.T) {
	for name, g := range namedGraphs() {
		res := buildCUD(t, g)
		sweep, err := g.Sweep(graph.SweepAll)
		if err != nil {
			t.Fatal(err)
		}
		diameter := sweep.Diameter
		for tr, round := range res.Schedule.Rounds {
			for txIdx, tx := range round {
				for _, d := range tx.To {
					drop := fault.DropSet{{Round: tr, Tx: txIdx, Dest: d}: true}
					holds, dropped, err := fault.ExecuteInjected(g, res.Schedule, drop, nil, 0)
					if err != nil {
						t.Fatal(err)
					}
					if dropped != 1 {
						t.Fatalf("%s: drop (%d,%d,%d) hit %d deliveries", name, tr, txIdx, d, dropped)
					}
					out, err := Run(g, holds, Options{
						RoundOffset: res.Schedule.Time(),
						Validate:    true,
					})
					if err != nil {
						t.Fatalf("%s: drop (%d,%d,%d): %v", name, tr, txIdx, d, err)
					}
					if !out.Complete {
						t.Fatalf("%s: drop (%d,%d,%d) not repaired", name, tr, txIdx, d)
					}
					if out.Rounds > diameter*out.Iterations {
						t.Fatalf("%s: %d repair rounds in %d iterations exceeds diameter %d per iteration",
							name, out.Rounds, out.Iterations, diameter)
					}
					if out.Repaired != MissingPairs(holds) {
						t.Fatalf("%s: repaired %d of %d missing pairs", name, out.Repaired, MissingPairs(holds))
					}
				}
			}
		}
	}
}

// TestRepairUnderLossyRepairRounds: with the same Bernoulli loss striking
// the repair rounds too, the bounded retry loop still converges to full
// coverage on every named topology (seeded, so deterministic).
func TestRepairUnderLossyRepairRounds(t *testing.T) {
	for name, g := range namedGraphs() {
		res := buildCUD(t, g)
		inj := fault.LinkLoss{P: 0.01, Seed: 7}
		holds, _, err := fault.ExecuteInjected(g, res.Schedule, inj, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(g, holds, Options{
			Injector:    inj,
			RoundOffset: res.Schedule.Time(),
			Validate:    true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.Complete {
			t.Fatalf("%s: 1%% loss not repaired within %d iterations (deficit %d)",
				name, out.Iterations, MissingPairs(out.Holds))
		}
	}
}
