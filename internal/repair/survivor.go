// survivor.go implements the adaptive half of the repair engine: suspicion
// tracking, quarantine, and the survivor-subgraph reachability analysis.
//
// The retry loop in repair.go is sufficient against transient faults —
// under any sub-certain loss rate a retried delivery eventually lands. A
// permanently dead link or a crash-stop processor breaks that assumption:
// the same planned delivery fails every iteration and the budget burns out
// with nothing to show. Fault-tolerant gossip schemes treat such faults as
// a topology change, not a retry problem, and so does this file: repeated
// failures raise suspicion, suspicion past a threshold quarantines the
// link or processor, and planning moves to the survivor subgraph. Once the
// survivor graph is partitioned, the reachability analysis derives the
// coverage ceiling — the pairs whose message still has a holder in the
// destination's component — so the loop can terminate "complete up to
// reachability" instead of exhausting its budget on the impossible.
package repair

import (
	"sort"

	"multigossip/internal/fault"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// Pair is one (processor, message) pair of the gossip deficit: processor
// Processor does not hold message Message.
type Pair struct {
	Processor, Message int
}

// QuarantineEvent records one amputation of the topology: the repair
// iteration whose failures pushed the suspicion counters past the
// threshold, and what was removed from the survivor graph.
type QuarantineEvent struct {
	Iteration  int          // 0-based repair iteration that triggered the event
	Links      []graph.Edge // links quarantined by the event, ordered by (U, V)
	Processors []int        // processors marked down by the event, ascending
}

// linkKey is an undirected link with u < v.
type linkKey struct{ u, v int }

func mkLink(a, b int) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// suspicion accumulates delivery-failure evidence across repair iterations
// and decides quarantine. It deliberately observes only what a real system
// could: which deliveries were attempted and which landed. The executor
// does know whether a loss was an in-flight drop or a crashed receiver,
// but the tracker does not use that distinction — both are a missing
// acknowledgement. A sender that was planned to transmit and stayed
// silent (fault.SenderDown) is evidence against the sender; a skip caused
// by upstream fault propagation (fault.SenderMissing) is evidence against
// nothing, which keeps a dead link early on a repair path from smearing
// suspicion over the healthy links downstream of it.
//
// Attribution follows parsimony. A receive that failed over a single link
// is explained by that link alone, so it raises suspicion against the link
// but not the processor — otherwise one dead bridge would amputate both of
// its live endpoints. A processor is suspected only on evidence no single
// link can explain: it went silent as a transmitter, or every receive to
// it failed across two or more distinct links in the same iteration.
type suspicion struct {
	threshold int

	// Persistent counters: consecutive failed iterations per link and per
	// processor, and what has already been quarantined.
	linkFail    map[linkKey]int
	procFail    []int
	quarantined map[linkKey]bool
	down        []bool

	// Per-iteration scratch, reset by beginIteration.
	linkAttempt map[linkKey]bool
	linkOK      map[linkKey]bool
	recvFail    []map[int]bool // receiver -> senders whose transmissions to it failed
	recvOK      []bool
	senderDown  []bool
	sendOK      []bool
}

func newSuspicion(n, threshold int) *suspicion {
	return &suspicion{
		threshold:   threshold,
		linkFail:    make(map[linkKey]int),
		procFail:    make([]int, n),
		quarantined: make(map[linkKey]bool),
		down:        make([]bool, n),
		linkAttempt: make(map[linkKey]bool),
		linkOK:      make(map[linkKey]bool),
		recvFail:    make([]map[int]bool, n),
		recvOK:      make([]bool, n),
		senderDown:  make([]bool, n),
		sendOK:      make([]bool, n),
	}
}

func (s *suspicion) beginIteration() {
	clear(s.linkAttempt)
	clear(s.linkOK)
	for i := range s.recvOK {
		clear(s.recvFail[i])
		s.recvOK[i] = false
		s.senderDown[i] = false
		s.sendOK[i] = false
	}
}

// observe is the fault.Observer fed to the executor during each repair
// iteration.
func (s *suspicion) observe(_, from, to, _ int, outcome fault.DeliveryOutcome) {
	switch outcome {
	case fault.Delivered:
		k := mkLink(from, to)
		s.linkAttempt[k] = true
		s.linkOK[k] = true
		s.recvOK[to] = true
		s.sendOK[from] = true
	case fault.LostInFlight, fault.ReceiverDown:
		// A transmission entered the link and never landed: evidence
		// against the link, and against the receiver once failures span
		// more links than one.
		s.linkAttempt[mkLink(from, to)] = true
		if s.recvFail[to] == nil {
			s.recvFail[to] = make(map[int]bool)
		}
		s.recvFail[to][from] = true
	case fault.SenderDown:
		// Nothing entered the link; the silence implicates the sender only.
		s.senderDown[from] = true
	case fault.SenderMissing, fault.Superseded:
		// Upstream propagation or a same-round conflict: no evidence
		// against this link or either endpoint.
	}
}

// endIteration folds the iteration's evidence into the persistent counters
// and returns what was newly quarantined (links ordered by (U, V),
// processors ascending).
//
// Processor quarantine dominates link quarantine: when a processor is the
// parsimonious explanation — it stayed silent as a sender, or receives to
// it failed over several distinct links at once — it alone is quarantined
// and the counters of its links are dropped (its links leave the survivor
// graph with it anyway).
func (s *suspicion) endIteration() (newLinks []graph.Edge, newProcs []int) {
	for p := range s.procFail {
		if s.down[p] {
			continue
		}
		switch {
		case s.recvOK[p] || s.sendOK[p]:
			s.procFail[p] = 0
		case s.senderDown[p] || len(s.recvFail[p]) >= 2:
			s.procFail[p]++
			if s.procFail[p] >= s.threshold {
				newProcs = append(newProcs, p)
			}
		}
	}
	for _, p := range newProcs {
		s.down[p] = true
	}
	for k := range s.linkFail {
		if s.down[k.u] || s.down[k.v] {
			delete(s.linkFail, k)
		}
	}
	for k := range s.linkAttempt {
		if s.quarantined[k] || s.down[k.u] || s.down[k.v] {
			continue
		}
		if s.linkOK[k] {
			delete(s.linkFail, k)
			continue
		}
		s.linkFail[k]++
		if s.linkFail[k] >= s.threshold {
			s.quarantined[k] = true
			delete(s.linkFail, k)
			newLinks = append(newLinks, graph.Edge{U: k.u, V: k.v})
		}
	}
	sort.Slice(newLinks, func(i, j int) bool {
		if newLinks[i].U != newLinks[j].U {
			return newLinks[i].U < newLinks[j].U
		}
		return newLinks[i].V < newLinks[j].V
	})
	return newLinks, newProcs
}

// survivorGraph returns g minus the quarantined links and minus every link
// incident to a down processor — the topology the planner may still trust.
// Down processors remain as isolated vertices so indices stay stable.
func (s *suspicion) survivorGraph(g *graph.Graph) *graph.Graph {
	sg := graph.New(g.N())
	for _, e := range g.Edges() {
		if s.down[e.U] || s.down[e.V] || s.quarantined[linkKey{e.U, e.V}] {
			continue
		}
		sg.AddEdge(e.U, e.V)
	}
	return sg
}

// quarantinedLinks returns the quarantined links ordered by (U, V).
func (s *suspicion) quarantinedLinks() []graph.Edge {
	out := make([]graph.Edge, 0, len(s.quarantined))
	for k := range s.quarantined {
		out = append(out, graph.Edge{U: k.u, V: k.v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// downProcessors returns the quarantined processors, ascending.
func (s *suspicion) downProcessors() []int {
	var out []int
	for p, d := range s.down {
		if d {
			out = append(out, p)
		}
	}
	return out
}

// componentUnions labels every vertex of surv with its connected component
// and returns the per-component union of hold sets — the messages a
// component can still spread internally. A down processor is isolated in
// the survivor graph, so its singleton union is its own retained memory.
func componentUnions(surv *graph.Graph, holds []*schedule.Bitset) (compOf []int, unions []*schedule.Bitset) {
	comps := surv.Components()
	compOf = make([]int, surv.N())
	unions = make([]*schedule.Bitset, len(comps))
	nmsg := 0
	if len(holds) > 0 {
		nmsg = holds[0].Len()
	}
	for ci, comp := range comps {
		u := schedule.NewBitset(nmsg)
		for _, v := range comp {
			compOf[v] = ci
			u.Or(holds[v])
		}
		unions[ci] = u
	}
	return compOf, unions
}

// reachableDeficit counts the missing (processor, message) pairs that a
// repair over surv could still close: pairs whose message has a holder in
// the processor's survivor component.
func reachableDeficit(surv *graph.Graph, holds []*schedule.Bitset) int {
	compOf, unions := componentUnions(surv, holds)
	deficit := 0
	for v, h := range holds {
		deficit += unions[compOf[v]].CountAndNot(h)
	}
	return deficit
}

// unreachablePairs lists the missing pairs beyond the reachable ceiling,
// ordered by (Processor, Message). Held pairs are never listed: a pair
// already delivered is trivially "reachable".
func unreachablePairs(surv *graph.Graph, holds []*schedule.Bitset) []Pair {
	compOf, unions := componentUnions(surv, holds)
	var out []Pair
	for v, h := range holds {
		u := unions[compOf[v]]
		for m := 0; m < h.Len(); m++ {
			if !h.Has(m) && !u.Has(m) {
				out = append(out, Pair{Processor: v, Message: m})
			}
		}
	}
	return out
}
