package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, one edge per line, for
// visual inspection of generated topologies (cmd/gossip trace --dot).
// The optional labels map overrides vertex display names.
func (g *Graph) DOT(name string, labels map[int]string) string {
	var b strings.Builder
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(&b, "graph %s {\n", name)
	for v := 0; v < g.N(); v++ {
		if lbl, ok := labels[v]; ok {
			fmt.Fprintf(&b, "  %d [label=%q];\n", v, lbl)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %d -- %d;\n", e.U, e.V)
	}
	b.WriteString("}\n")
	return b.String()
}
