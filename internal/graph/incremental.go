package graph

// incremental.go repairs a full-sweep metric result after edge churn
// instead of re-running the O(nm) sweep. The engine is a bounded variant of
// the Takes–Kosters eccentricity-bounding technique, specialised to deltas:
//
// A single edge change moves every distance monotonically — adding an edge
// can only shorten shortest paths, removing one can only lengthen them — so
// the stale eccentricity vector is itself a valid one-sided bound on the new
// one (an upper bound after additions, a lower bound after removals). The
// other side is pinned from the affected region: exact BFS traversals seeded
// at the changed edge's endpoints propagate the triangle-inequality bounds
//
//	ecc(v) >= max(d(s, v), ecc(s) - d(s, v))
//	ecc(v) <= ecc(s) + d(s, v)
//
// to every vertex. Where the two sides meet, the stale entry is certified
// exact and kept without a traversal; vertices whose bounds stay open are
// resolved by further exact traversals, widest gap first. When the change is
// local — the common case for a single link in a large network — the seed
// traversals close every gap and the repair costs O(m) instead of O(nm).
// When it is not (a chord that rewires half the distances), the BFS budget
// runs out and the caller falls back to the full sweep; the repair never
// returns an uncertified result.

// EdgeDelta records one applied topology mutation: edge {U, V} was added
// (Added) or removed (!Added). Deltas describe changes already present in
// the graph they are applied against.
type EdgeDelta struct {
	U, V  int
	Added bool
}

// repairBudget bounds the exact traversals a repair may spend before
// declaring the change non-local: past n/8 sequential traversals the
// parallel full sweep is the cheaper path anyway. The floor keeps small
// graphs honest (seeds alone may need a handful).
func repairBudget(n, seeds int) int {
	b := n / 8
	if m := seeds + 4; b < m {
		b = m
	}
	return b
}

// RepairSweep updates a SweepAll result to match g after the given edge
// deltas, certifying every eccentricity exactly. It returns (result, true)
// on success and (nil, false) when it cannot certify cheaply — mixed
// add/remove batches (no one-sided stale bound exists), a changed vertex
// count, a disconnected graph, or a change so global the traversal budget
// runs out. A false return is not an error: the caller re-sweeps.
//
// prev must be an exact full-sweep result (Mode SweepAll) for g as it was
// before the deltas were applied; g must already contain the deltas.
func RepairSweep(g *Graph, prev *SweepResult, deltas []EdgeDelta) (*SweepResult, bool) {
	n := g.N()
	if prev == nil || prev.Mode != SweepAll || len(prev.Ecc) != n || n == 0 || len(deltas) == 0 {
		return nil, false
	}
	allAdd, allRemove := true, true
	for _, d := range deltas {
		if d.Added {
			allRemove = false
		} else {
			allAdd = false
		}
	}
	if !allAdd && !allRemove {
		return nil, false
	}

	const unbounded = int32(1) << 30
	lo := make([]int32, n)
	hi := make([]int32, n)
	for v := 0; v < n; v++ {
		if allAdd {
			// Distances only shrank: the stale eccentricity caps the new one.
			lo[v], hi[v] = 0, int32(prev.Ecc[v])
		} else {
			// Distances only grew: the stale eccentricity floors the new one.
			lo[v], hi[v] = int32(prev.Ecc[v]), unbounded
		}
	}

	// Seed set: every endpoint of the changed region, deduplicated.
	seen := make(map[int]bool, 2*len(deltas))
	var seeds []int
	for _, d := range deltas {
		for _, s := range [2]int{d.U, d.V} {
			if s >= 0 && s < n && !seen[s] {
				seen[s] = true
				seeds = append(seeds, s)
			}
		}
	}

	c := newCSR(g)
	sc := newSweepScratch(n)
	ecc := make([]int, n)
	exact := make([]bool, n)
	budget := repairBudget(n, len(seeds))

	// resolve runs one exact traversal from x and tightens every bound.
	resolve := func(x int) bool {
		e, reached, _ := sc.bfs(c, int32(x), noCutoff)
		if reached < n {
			return false // disconnected: no eccentricity to certify
		}
		ecc[x] = int(e)
		exact[x] = true
		for v := 0; v < n; v++ {
			d := sc.dist[v]
			if b := e - d; b > lo[v] {
				lo[v] = b
			}
			if d > lo[v] {
				lo[v] = d
			}
			if b := e + d; b < hi[v] {
				hi[v] = b
			}
		}
		return true
	}

	spent := 0
	for _, s := range seeds {
		if spent++; spent > budget || !resolve(s) {
			return nil, false
		}
	}
	for {
		// Selection is direction-aware, because the two triangle bounds are
		// tight on opposite sides. After additions the stale vector is the
		// upper bound, so progress means raising lower bounds — and the
		// strong lower bound ecc(s) - d(s, v) radiates from high-eccentricity
		// sources: resolve the most peripheral open vertex (largest hi).
		// After removals the stale vector is the lower bound, so progress
		// means lowering upper bounds — and the upper bound ecc(s) + d(s, v)
		// is tightest from low-eccentricity sources: resolve the most central
		// open vertex (smallest lo). Either way, widest gap breaks ties.
		next, gap := -1, int32(0)
		var bestKey int32
		for v := 0; v < n; v++ {
			if exact[v] {
				continue
			}
			if lo[v] == hi[v] {
				ecc[v] = int(lo[v])
				exact[v] = true
				continue
			}
			key := hi[v]
			if allRemove {
				key = -lo[v]
			}
			if w := hi[v] - lo[v]; next < 0 || key > bestKey || (key == bestKey && w > gap) {
				next, bestKey, gap = v, key, w
			}
		}
		if next < 0 {
			break
		}
		if spent++; spent > budget || !resolve(next) {
			return nil, false
		}
	}

	res := &SweepResult{
		Mode:     SweepAll,
		Ecc:      ecc,
		Radius:   -1,
		Diameter: -1,
		Stats:    SweepStats{Roots: n, Completed: spent, Workers: 1},
	}
	for _, e := range ecc {
		if res.Radius < 0 || e < res.Radius {
			res.Radius = e
		}
		if e > res.Diameter {
			res.Diameter = e
		}
	}
	for v, e := range ecc {
		if e == res.Radius {
			res.Centers = append(res.Centers, v)
		}
	}
	res.Center = res.Centers[0]
	return res, true
}
