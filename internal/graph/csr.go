package graph

import (
	"fmt"
	"math"
)

// csr is a flat compressed-sparse-row copy of the adjacency structure. The
// sweep engine traverses it instead of the mutable [][]int adjacency because
// one contiguous column array keeps BFS frontier expansion cache-friendly
// and int32 halves the bytes pulled per edge. Neighbour order is preserved
// from the sorted adjacency lists, so traversals over the csr discover
// vertices in exactly the order the slice-based BFS does — the determinism
// the lowest-parent tie-breaking contract depends on.
type csr struct {
	row []int32 // len n+1; neighbours of v are col[row[v]:row[v+1]]
	col []int32 // len 2m
}

// newCSR snapshots g. The graph must not be mutated while the snapshot is in
// use (the engine builds one per sweep and drops it).
func newCSR(g *Graph) *csr {
	n := g.N()
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("graph: %d vertices exceed the sweep engine's int32 layout", n))
	}
	row := make([]int32, n+1)
	total := 0
	for v, nbrs := range g.adj {
		total += len(nbrs)
		row[v+1] = int32(total)
	}
	col := make([]int32, total)
	for v, nbrs := range g.adj {
		off := int(row[v])
		for i, w := range nbrs {
			col[off+i] = int32(w)
		}
	}
	return &csr{row: row, col: col}
}
