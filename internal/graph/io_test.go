package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	graphs := []*Graph{
		New(0), New(3), Path(6), Petersen(), Fig4(),
		RandomConnected(rng, 30, 0.2),
	}
	for _, g := range graphs {
		var b strings.Builder
		if err := g.Write(&b); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round trip parse: %v\ninput:\n%s", err, b.String())
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed sizes: %v vs %v", back, g)
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				t.Fatalf("round trip lost edge %v", e)
			}
		}
	}
}

func TestEdgeListCommentsAndBlanks(t *testing.T) {
	in := `
# a custom network
n 4

0 1
# middle comment
1 2
2 3
1 2
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("parsed n=%d m=%d, want 4, 3 (duplicate ignored)", g.N(), g.M())
	}
}

func TestEdgeListRejects(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"noHeader":   "0 1\n",
		"badHeader":  "vertices 4\n0 1\n",
		"badCount":   "n minusfour\n",
		"negCount":   "n -2\n",
		"shortLine":  "n 3\n0\n",
		"longLine":   "n 3\n0 1 2\n",
		"badVertex":  "n 3\n0 x\n",
		"outOfRange": "n 3\n0 7\n",
		"selfLoop":   "n 3\n1 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
