package graph

// Named instances from the paper's figures.

// N1 returns the Fig. 1 network: a ring drawn with eight processors, on
// which the optimal gossip schedule rotates every message clockwise and
// finishes in n - 1 rounds.
func N1() *Graph { return Cycle(8) }

// Petersen returns the Fig. 2 network N2, the Petersen graph: outer cycle
// 0..4, inner pentagram 5..9, spokes i - (i+5). It has no Hamiltonian
// circuit yet admits gossiping in n - 1 = 9 rounds even under the telephone
// model, the paper's example that a Hamiltonian circuit is not necessary.
func Petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(i, i+5)         // spoke
		g.AddEdge(i+5, (i+2)%5+5) // inner pentagram
	}
	return g
}

// N3StandIn returns the substitute for the Fig. 3 network N3, whose exact
// adjacency is not recoverable from the text. The paper states only the
// properties N3 exhibits: it has no Hamiltonian circuit, gossiping completes
// in n - 1 rounds under the multicasting model, but not under the telephone
// model. K_{2,3} is the smallest 2-connected non-Hamiltonian graph; the
// exact-search experiment E3 certifies both gossip properties on it
// (see EXPERIMENTS.md).
func N3StandIn() *Graph { return CompleteBipartite(2, 3) }

// Fig5TreeParents returns the parent array of the reconstructed Fig. 5 tree
// (root 0 has parent -1). Vertex identifiers equal the DFS message labels,
// exactly as printed beside the circles in the figure. The shape is pinned
// down by the paper's Tables 1-4: n = 16, root children with intervals
// [1,3], [4,10], [11,15]; vertex 1 has leaf children 2 and 3; vertex 4 has
// children [5,7] and [8,10] each with two leaf children; the [11,15]
// subtree is reconstructed as two chains (see DESIGN.md, substitution 2).
func Fig5TreeParents() []int {
	return []int{
		-1, // 0: root
		0,  // 1
		1,  // 2
		1,  // 3
		0,  // 4
		4,  // 5
		5,  // 6
		5,  // 7
		4,  // 8
		8,  // 9
		8,  // 10
		0,  // 11
		11, // 12
		12, // 13
		11, // 14
		14, // 15
	}
}

// Fig4 returns a reconstruction of the Fig. 4 network: a 16-processor graph
// whose minimum-depth spanning tree, as built by spantree.MinDepth with its
// deterministic tie-breaking, is exactly the Fig. 5 tree with DFS labels
// equal to vertex numbers. The graph is the Fig. 5 tree plus cross edges
// chosen so that no vertex beats the root's eccentricity of 3 and no BFS
// shortcut changes a parent (golden test E4 verifies both).
func Fig4() *Graph {
	g := New(16)
	parents := Fig5TreeParents()
	for v, p := range parents {
		if p >= 0 {
			g.AddEdge(v, p)
		}
	}
	for _, e := range [][2]int{{1, 4}, {4, 11}, {2, 3}, {3, 4}, {5, 8}, {6, 7}, {9, 10}, {12, 14}} {
		g.AddEdge(e[0], e[1])
	}
	return g
}
