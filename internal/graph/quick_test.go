package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickConfig keeps generated sizes small enough for exhaustive-ish checks.
var quickConfig = &quick.Config{MaxCount: 120}

// boundedGraph derives a reproducible random connected graph from arbitrary
// quick-generated integers.
func boundedGraph(seed int64, rawN uint8, rawP uint8) *Graph {
	n := 1 + int(rawN)%24
	p := float64(rawP) / 255
	return RandomConnected(rand.New(rand.NewSource(seed)), n, p)
}

// TestQuickBFSDistanceProperties checks metric axioms of BFS distances on
// random connected graphs: d(v,v) = 0, symmetry, the triangle inequality,
// and the one-edge Lipschitz property along edges.
func TestQuickBFSDistanceProperties(t *testing.T) {
	prop := func(seed int64, rawN, rawP uint8) bool {
		g := boundedGraph(seed, rawN, rawP)
		n := g.N()
		dist := make([][]int, n)
		for v := 0; v < n; v++ {
			dist[v] = g.BFS(v)
			if dist[v][v] != 0 {
				return false
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if dist[u][v] != dist[v][u] || dist[u][v] < 0 {
					return false
				}
				for w := 0; w < n; w++ {
					if dist[u][w] > dist[u][v]+dist[v][w] {
						return false
					}
				}
			}
		}
		for _, e := range g.Edges() {
			for v := 0; v < n; v++ {
				d := dist[e.U][v] - dist[e.V][v]
				if d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRadiusDiameterRelation checks r <= D <= 2r and that the center
// vertex achieves the radius — the inequality chain the n + r bound and the
// 1.5-approximation argument rest on (r <= n/2 for connected graphs with
// n >= 2 follows from D <= n-1 only on trees/paths; here we check the
// universal relations).
func TestQuickRadiusDiameterRelation(t *testing.T) {
	prop := func(seed int64, rawN, rawP uint8) bool {
		g := boundedGraph(seed, rawN, rawP)
		if g.N() == 0 {
			return true
		}
		r, c := g.RadiusCenter()
		d := g.Diameter()
		if r > d || d > 2*r && r > 0 {
			return false
		}
		if g.Eccentricity(c) != r {
			return false
		}
		for _, v := range g.Center() {
			if g.Eccentricity(v) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRadiusAtMostHalfN checks the paper's Section 4 fact used in the
// 1.5-approximation argument: for any connected graph the radius is at most
// n/2. (Sketch: a BFS tree from a diameter midpoint has depth <= ceil(D/2)
// and D <= n-1.)
func TestQuickRadiusAtMostHalfN(t *testing.T) {
	prop := func(seed int64, rawN, rawP uint8) bool {
		g := boundedGraph(seed, rawN, rawP)
		if g.N() < 2 {
			return true
		}
		return 2*g.Radius() <= g.N()
	}
	if err := quick.Check(prop, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPruferDecodeAlwaysTree: every Prüfer sequence decodes to a
// connected acyclic graph on len(seq)+2 vertices.
func TestQuickPruferDecodeAlwaysTree(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) > 40 {
			raw = raw[:40]
		}
		n := len(raw) + 2
		seq := make([]int, len(raw))
		for i, x := range raw {
			seq[i] = int(x) % n
		}
		g := PruferDecode(seq)
		return g.N() == n && g.M() == n-1 && g.IsConnected() && g.Validate() == nil
	}
	if err := quick.Check(prop, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGeneratorsValidate: random generator parameters always produce
// structurally valid, connected graphs.
func TestQuickGeneratorsValidate(t *testing.T) {
	prop := func(seed int64, rawN uint8, rawR uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rawN)%40
		radio := 0.05 + float64(rawR)/255
		for _, g := range []*Graph{
			RandomTree(rng, n),
			RandomGeometric(rng, n, radio),
			RandomConnected(rng, n, float64(rawR)/255),
		} {
			if g.N() != n || !g.IsConnected() || g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBFSParentsFormTree: the parent pointers of a BFS traversal form
// a spanning tree whose path lengths equal the BFS distances.
func TestQuickBFSParentsFormTree(t *testing.T) {
	prop := func(seed int64, rawN, rawP, rawSrc uint8) bool {
		g := boundedGraph(seed, rawN, rawP)
		src := int(rawSrc) % g.N()
		parent, dist := g.BFSParents(src)
		for v := 0; v < g.N(); v++ {
			if v == src {
				if parent[v] != -1 || dist[v] != 0 {
					return false
				}
				continue
			}
			if parent[v] == -1 || dist[parent[v]] != dist[v]-1 || !g.HasEdge(v, parent[v]) {
				return false
			}
			// Walk to the root in exactly dist[v] steps.
			steps, x := 0, v
			for x != src {
				x = parent[x]
				steps++
				if steps > g.N() {
					return false
				}
			}
			if steps != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickConfig); err != nil {
		t.Fatal(err)
	}
}
