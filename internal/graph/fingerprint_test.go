package graph

import (
	"math/rand"
	"testing"
)

// TestFingerprintInsertionOrder checks content addressing: the same edge
// set inserted in any order fingerprints identically.
func TestFingerprintInsertionOrder(t *testing.T) {
	edges := Petersen().Edges()
	want := Petersen().Fingerprint()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(edges))
		g := New(10)
		for _, i := range perm {
			if rng.Intn(2) == 0 {
				g.AddEdge(edges[i].U, edges[i].V)
			} else {
				g.AddEdge(edges[i].V, edges[i].U)
			}
		}
		if got := g.Fingerprint(); got != want {
			t.Fatalf("trial %d: fingerprint %#x, want %#x", trial, got, want)
		}
	}
}

// TestFingerprintSensitivity checks that structural differences change the
// hash: an added edge, a removed edge, extra isolated vertices, and layouts
// whose flat column streams coincide.
func TestFingerprintSensitivity(t *testing.T) {
	base := Cycle(8)
	fp := base.Fingerprint()

	added := Cycle(8)
	added.AddEdge(0, 4)
	if added.Fingerprint() == fp {
		t.Error("adding a chord did not change the fingerprint")
	}

	grown := New(9)
	for _, e := range base.Edges() {
		grown.AddEdge(e.U, e.V)
	}
	if grown.Fingerprint() == fp {
		t.Error("an extra isolated vertex did not change the fingerprint")
	}

	// Same flat column multiset, different row structure: path 0-1-2 vs
	// the two-edge star at 1 on reordered labels.
	a := New(3)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	b := New(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("path and star fingerprints collide")
	}
}

// TestFingerprintDistinctTopologies spot-checks that the generator families
// give pairwise distinct fingerprints — a sanity guard against degenerate
// mixing, not a collision-resistance proof.
func TestFingerprintDistinctTopologies(t *testing.T) {
	gs := map[string]*Graph{
		"path16":  Path(16),
		"cycle16": Cycle(16),
		"star16":  Star(16),
		"grid4x4": Grid(4, 4),
		"hyper4":  Hypercube(4),
		"k16":     Complete(16),
	}
	seen := map[uint64]string{}
	for name, g := range gs {
		fp := g.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s and %s share fingerprint %#x", name, prev, fp)
		}
		seen[fp] = name
	}
}
