package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Edge-list text format, for loading custom topologies into the CLI tools
// and exchanging graphs with other software:
//
//	# comment lines and blank lines are ignored
//	n 5
//	0 1
//	1 2
//	...
//
// The "n <count>" header is required before the first edge so isolated
// vertices are representable.

// Write serialises g in the edge-list format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in the edge-list format, validating vertex ranges,
// rejecting self-loops, and ignoring duplicate edges (consistent with
// AddEdge).
func Read(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var g *Graph
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <count>\", got %q", lineNo, line)
			}
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[1])
			}
			g = New(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", lineNo, line)
		}
		var u, v int
		if _, err := fmt.Sscanf(fields[0], "%d", &u); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNo, fields[0])
		}
		if _, err := fmt.Sscanf(fields[1], "%d", &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNo, fields[1])
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return nil, fmt.Errorf("graph: line %d: edge %d-%d out of range [0,%d)", lineNo, u, v, g.N())
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop at %d", lineNo, u)
		}
		g.AddEdge(u, v)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input (missing \"n <count>\" header)")
	}
	return g, nil
}
