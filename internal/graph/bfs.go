package graph

// This file implements the distance machinery the paper relies on:
// breadth-first search, eccentricities, and the derived radius, diameter
// and center. The minimum-depth spanning tree of Section 3.1 is built from
// n BFS traversals (see package spantree); here we provide the raw
// traversal plus the metric helpers.

// Unreachable is the distance reported for vertices in a different
// connected component.
const Unreachable = -1

// BFS returns the distance (number of edges on a shortest path) from src to
// every vertex, with Unreachable for vertices not connected to src.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSParents runs BFS from src and returns, for every vertex, its parent on
// a shortest path tree rooted at src (the parent is the vertex from which it
// was first discovered; src and unreachable vertices get parent -1).
// Ties are broken toward the lowest-numbered parent because adjacency lists
// are sorted, which makes tree construction deterministic.
func (g *Graph) BFSParents(src int) (parent, dist []int) {
	g.check(src)
	n := g.N()
	parent = make([]int, n)
	dist = make([]int, n)
	for i := range dist {
		parent[i] = -1
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent, dist
}

// Reachable reports whether v can be reached from u, by a BFS from u that
// exits as soon as it discovers v. Used by Network.RemoveLink to decide
// whether deleting {u, v} split the component the edge lived in: the
// endpoints were connected through the edge, so they stay connected after
// its removal exactly when some alternative u-v path survives.
func (g *Graph) Reachable(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return true
	}
	seen := make([]bool, g.N())
	seen[u] = true
	queue := make([]int, 0, g.N())
	queue = append(queue, u)
	for head := 0; head < len(queue); head++ {
		for _, w := range g.adj[queue[head]] {
			if w == v {
				return true
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns the connected components as slices of vertices, each
// sorted, ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// ComponentDiameter returns the largest distance realised within any
// connected component: the diameter for a connected graph, and the worst
// per-component diameter for a disconnected one (unreachable pairs are
// ignored, so it never panics). Package repair uses it to size repair
// batches over survivor subgraphs, which are disconnected exactly when a
// partition has occurred. The empty graph has component diameter 0.
func (g *Graph) ComponentDiameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		for _, d := range g.BFS(v) {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns the greatest distance from v to any vertex.
// It panics if the graph is disconnected, because eccentricity is undefined
// there and every algorithm in this module requires connectivity.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d == Unreachable {
			panic("graph: eccentricity undefined on a disconnected graph")
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// mustSweep runs a sweep and converts disconnection into the documented
// panic the metric methods share.
func (g *Graph) mustSweep(mode SweepMode) *SweepResult {
	res, err := g.Sweep(mode)
	if err != nil {
		panic("graph: eccentricity undefined on a disconnected graph")
	}
	return res
}

// Eccentricities returns the eccentricity of every vertex. The n BFS
// traversals run on the parallel sweep engine (see Sweep); the naive O(nm)
// loop over Eccentricity is retained only as the test oracle. It panics on
// disconnected graphs.
func (g *Graph) Eccentricities() []int {
	if g.N() == 0 {
		return make([]int, 0)
	}
	return g.mustSweep(SweepAll).Ecc
}

// Radius returns the minimum eccentricity, i.e. the least r such that some
// vertex reaches every vertex within r edges. This is the r of the paper's
// n + r bound. It runs on the pruned parallel sweep (Sweep with SweepMin).
func (g *Graph) Radius() int {
	r, _ := g.RadiusCenter()
	return r
}

// Diameter returns the maximum eccentricity, via a full parallel sweep.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return 0
	}
	return g.mustSweep(SweepAll).Diameter
}

// RadiusCenter returns the radius together with the lowest-numbered center
// vertex (a vertex achieving the radius), via the pruned parallel sweep.
func (g *Graph) RadiusCenter() (radius, center int) {
	if g.N() == 0 {
		return 0, -1
	}
	res := g.mustSweep(SweepMin)
	return res.Radius, res.Center
}

// Center returns all vertices of minimum eccentricity, sorted, via the
// pruned parallel sweep.
func (g *Graph) Center() []int {
	if g.N() == 0 {
		return nil
	}
	return append([]int(nil), g.mustSweep(SweepMin).Centers...)
}
