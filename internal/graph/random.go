package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Random workloads. All generators take an explicit *rand.Rand so tests and
// experiments are reproducible from a seed; none touch the global source.

// RandomConnected returns a connected Erdős–Rényi style graph: each of the
// C(n,2) candidate edges is present with probability p, and connectivity is
// then repaired by linking each non-initial component to a uniformly random
// vertex of the growing connected part. For p = 0 the result is a random
// tree-ish sparse graph; for p = 1 it is K_n.
func RandomConnected(rng *rand.Rand, n int, p float64) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: RandomConnected needs n >= 1, got %d", n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: RandomConnected probability %v out of [0,1]", p))
	}
	g := New(n)
	if p > 0 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					g.AddEdge(u, v)
				}
			}
		}
	}
	comps := g.Components()
	if len(comps) > 1 {
		// Attach every further component to a random vertex already absorbed.
		absorbed := append([]int(nil), comps[0]...)
		for _, comp := range comps[1:] {
			u := comp[rng.Intn(len(comp))]
			v := absorbed[rng.Intn(len(absorbed))]
			g.AddEdge(u, v)
			absorbed = append(absorbed, comp...)
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices via a
// random Prüfer sequence (n >= 1).
func RandomTree(rng *rand.Rand, n int) *Graph {
	switch {
	case n < 1:
		panic(fmt.Sprintf("graph: RandomTree needs n >= 1, got %d", n))
	case n == 1:
		return New(1)
	case n == 2:
		g := New(2)
		g.AddEdge(0, 1)
		return g
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	return PruferDecode(seq)
}

// RandomGeometric returns a random geometric graph: n points uniform in the
// unit square, adjacent when within Euclidean distance radius. This is the
// standard abstraction of the wireless / static sensor networks that
// motivate multicasting in the paper (a transmission with power r^alpha
// reaches every receiver within distance r). Connectivity is repaired by
// linking each stranded component to its nearest absorbed point, modelling
// a minimal power boost for isolated sensors.
func RandomGeometric(rng *rand.Rand, n int, radius float64) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: RandomGeometric needs n >= 1, got %d", n))
	}
	if radius <= 0 {
		panic(fmt.Sprintf("graph: RandomGeometric needs radius > 0, got %v", radius))
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := New(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				g.AddEdge(u, v)
			}
		}
	}
	for comps := g.Components(); len(comps) > 1; comps = g.Components() {
		// Join the two closest vertices in different components.
		inFirst := make([]bool, n)
		for _, v := range comps[0] {
			inFirst[v] = true
		}
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for _, u := range comps[0] {
			for v := 0; v < n; v++ {
				if inFirst[v] {
					continue
				}
				dx, dy := xs[u]-xs[v], ys[u]-ys[v]
				if d := dx*dx + dy*dy; d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		g.AddEdge(bestU, bestV)
	}
	return g
}

// PruferDecode builds the labelled tree on len(seq)+2 vertices encoded by a
// Prüfer sequence. Every labelled tree corresponds to exactly one sequence,
// which the tests use to enumerate all small trees exhaustively.
func PruferDecode(seq []int) *Graph {
	n := len(seq) + 2
	g := New(n)
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		if v < 0 || v >= n {
			panic(fmt.Sprintf("graph: Prüfer symbol %d out of range [0,%d)", v, n))
		}
		degree[v]++
	}
	// Repeatedly join the smallest remaining leaf to the next sequence symbol.
	// A simple O(n log n)-ish scan is plenty for test sizes.
	used := make([]bool, n)
	for _, v := range seq {
		leaf := -1
		for u := 0; u < n; u++ {
			if !used[u] && degree[u] == 1 {
				leaf = u
				break
			}
		}
		g.AddEdge(leaf, v)
		used[leaf] = true
		degree[v]--
	}
	// Two vertices of degree 1 remain; join them.
	last := make([]int, 0, 2)
	for u := 0; u < n; u++ {
		if !used[u] && degree[u] == 1 {
			last = append(last, u)
		}
	}
	g.AddEdge(last[0], last[1])
	return g
}

// AllTrees invokes fn on every labelled tree with n vertices (n >= 1),
// enumerating all n^(n-2) Prüfer sequences for n >= 3. If fn returns false
// the enumeration stops early. Intended for exhaustive small-case tests
// (n <= 8 keeps the count at 262,144).
func AllTrees(n int, fn func(*Graph) bool) {
	switch {
	case n < 1:
		panic(fmt.Sprintf("graph: AllTrees needs n >= 1, got %d", n))
	case n == 1:
		fn(New(1))
		return
	case n == 2:
		g := New(2)
		g.AddEdge(0, 1)
		fn(g)
		return
	}
	seq := make([]int, n-2)
	for {
		if !fn(PruferDecode(seq)) {
			return
		}
		// Odometer increment over base-n digits.
		i := len(seq) - 1
		for ; i >= 0; i-- {
			seq[i]++
			if seq[i] < n {
				break
			}
			seq[i] = 0
		}
		if i < 0 {
			return
		}
	}
}
