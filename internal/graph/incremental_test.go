package graph

import (
	"math/rand"
	"testing"
)

// checkRepairAgainstSweep applies deltas to g (already applied by the
// caller), repairs prev, and — when the repair succeeds — compares every
// field against a fresh full sweep.
func checkRepairAgainstSweep(t *testing.T, g *Graph, prev *SweepResult, deltas []EdgeDelta) bool {
	t.Helper()
	got, ok := RepairSweep(g, prev, deltas)
	if !ok {
		return false
	}
	want, err := g.Sweep(SweepAll)
	if err != nil {
		t.Fatalf("oracle sweep: %v", err)
	}
	if got.Radius != want.Radius || got.Diameter != want.Diameter {
		t.Fatalf("repair (r=%d,d=%d), sweep (r=%d,d=%d)", got.Radius, got.Diameter, want.Radius, want.Diameter)
	}
	for v := range want.Ecc {
		if got.Ecc[v] != want.Ecc[v] {
			t.Fatalf("ecc[%d]=%d after repair, sweep says %d (deltas %v)", v, got.Ecc[v], want.Ecc[v], deltas)
		}
	}
	if len(got.Centers) != len(want.Centers) {
		t.Fatalf("centers %v after repair, sweep says %v", got.Centers, want.Centers)
	}
	for i := range want.Centers {
		if got.Centers[i] != want.Centers[i] {
			t.Fatalf("centers %v after repair, sweep says %v", got.Centers, want.Centers)
		}
	}
	return true
}

// TestRepairSweepRandomChurn drives random add/remove churn over several
// topologies and cross-checks every successful repair against the full
// sweep oracle. Failure to certify (ok=false) is always legal — a single
// edge delta typically shifts half the eccentricities of a gradient
// topology by exactly one, which pure bounds cannot certify (see the ±1
// wall note in DESIGN.md §13) — but a wrong certified answer never is.
func TestRepairSweepRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := map[string]*Graph{
		"cycle64":  Cycle(64),
		"grid8x8":  Grid(8, 8),
		"random96": RandomConnected(rng, 96, 0.08),
		"star96":   Star(96),
	}
	for name, g := range graphs {
		repaired, bailed := 0, 0
		for trial := 0; trial < 60; trial++ {
			prev, err := g.Sweep(SweepAll)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			var deltas []EdgeDelta
			if rng.Intn(2) == 0 {
				// Add 1-2 random absent edges.
				for k := 0; k < 1+rng.Intn(2); k++ {
					u, v := rng.Intn(g.N()), rng.Intn(g.N())
					if u != v && g.AddEdge(u, v) {
						deltas = append(deltas, EdgeDelta{U: u, V: v, Added: true})
					}
				}
			} else {
				// Remove one random non-bridge edge.
				edges := g.Edges()
				for _, i := range rng.Perm(len(edges)) {
					e := edges[i]
					g.RemoveEdge(e.U, e.V)
					if g.Reachable(e.U, e.V) {
						deltas = append(deltas, EdgeDelta{U: e.U, V: e.V})
						break
					}
					g.AddEdge(e.U, e.V) // bridge: undo and try another
				}
			}
			if len(deltas) == 0 {
				continue
			}
			if checkRepairAgainstSweep(t, g, prev, deltas) {
				repaired++
			} else {
				bailed++
			}
		}
		t.Logf("%s: %d repaired, %d fell back to full sweep", name, repaired, bailed)
	}
}

// TestRepairSweepCertifiesLocalFamilies pins the cases the engine exists
// for: topologies with enough redundancy (hubs, dense graphs) that a link
// delta leaves the distance structure certifiable from the affected region.
// These must repair without falling back.
func TestRepairSweepCertifiesLocalFamilies(t *testing.T) {
	// Star: adding or removing a leaf-to-leaf chord is absorbed by the hub.
	star := Star(128)
	prev, _ := star.Sweep(SweepAll)
	star.AddEdge(3, 77)
	if !checkRepairAgainstSweep(t, star, prev, []EdgeDelta{{U: 3, V: 77, Added: true}}) {
		t.Error("star chord addition fell back")
	}
	prev, _ = star.Sweep(SweepAll)
	star.RemoveEdge(3, 77)
	if !checkRepairAgainstSweep(t, star, prev, []EdgeDelta{{U: 3, V: 77}}) {
		t.Error("star chord removal fell back")
	}

	// Dense graph: one more edge in an already near-complete graph changes
	// nothing certifiable-from-stale.
	dense := Complete(80)
	dense.RemoveEdge(5, 6)
	dense.RemoveEdge(11, 60)
	prev, _ = dense.Sweep(SweepAll)
	dense.AddEdge(5, 6)
	if !checkRepairAgainstSweep(t, dense, prev, []EdgeDelta{{U: 5, V: 6, Added: true}}) {
		t.Error("dense-graph edge addition fell back")
	}
}

// TestRepairSweepRefuses pins the inputs RepairSweep must refuse: mixed
// batches, stale vertex counts, disconnected graphs, and min-mode results.
func TestRepairSweepRefuses(t *testing.T) {
	g := Cycle(16)
	prev, _ := g.Sweep(SweepAll)

	g.AddEdge(0, 8)
	g.RemoveEdge(0, 1)
	if _, ok := RepairSweep(g, prev, []EdgeDelta{{U: 0, V: 8, Added: true}, {U: 0, V: 1}}); ok {
		t.Error("mixed add/remove batch was certified")
	}
	g.AddEdge(0, 1)
	g.RemoveEdge(0, 8)

	if _, ok := RepairSweep(g, prev, nil); ok {
		t.Error("empty delta batch was certified")
	}
	bigger := Cycle(17)
	if _, ok := RepairSweep(bigger, prev, []EdgeDelta{{U: 0, V: 2, Added: true}}); ok {
		t.Error("changed vertex count was certified")
	}
	minRes, _ := g.Sweep(SweepMin)
	g.AddEdge(0, 8)
	if _, ok := RepairSweep(g, minRes, []EdgeDelta{{U: 0, V: 8, Added: true}}); ok {
		t.Error("SweepMin input was certified")
	}
	g.RemoveEdge(0, 8)

	// Disconnected graph: remove enough to split, then hand the repair a
	// delta batch describing it.
	split := Path(6)
	prevSplit, _ := split.Sweep(SweepAll)
	split.RemoveEdge(2, 3)
	if _, ok := RepairSweep(split, prevSplit, []EdgeDelta{{U: 2, V: 3}}); ok {
		t.Error("disconnected graph was certified")
	}
}

// TestRepairSweepLocalChangeIsCheap checks the point of the engine: a
// redundant edge added to a graph whose distances it cannot change is
// certified from the seed traversals alone, without burning the budget.
func TestRepairSweepLocalChangeIsCheap(t *testing.T) {
	g := Complete(64)
	g.RemoveEdge(0, 1)
	prev, _ := g.Sweep(SweepAll)
	g.AddEdge(0, 1)
	res, ok := RepairSweep(g, prev, []EdgeDelta{{U: 0, V: 1, Added: true}})
	if !ok {
		t.Fatal("local change on a complete graph fell back")
	}
	if res.Stats.Completed > 3 {
		t.Errorf("local repair spent %d traversals, want <= seeds + slack", res.Stats.Completed)
	}
	if res.Radius != 1 || res.Diameter != 1 {
		t.Errorf("K64 metrics (r=%d, d=%d), want (1, 1)", res.Radius, res.Diameter)
	}
}
