package graph

import "fmt"

// This file contains the deterministic topology generators used as
// workloads by the experiments: the classic interconnection families the
// gossiping literature evaluates on (paths, cycles, stars, grids, tori,
// hypercubes, trees, de Bruijn graphs) plus a few composite shapes.

// Path returns the straight-line network P_n: 0-1-2-...-(n-1).
// The odd path realises the paper's n + r - 1 lower-bound instance.
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the ring C_n (n >= 3), the Fig. 1 topology N1 on which
// gossiping completes in the optimal n - 1 rounds by rotation.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns K_{1,n-1} with vertex 0 at the center. Stars maximise the
// advantage of multicast over the telephone model: the center can push a
// message to all leaves in one round.
func Star(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: star needs n >= 1, got %d", n))
	}
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on one side and
// a..a+b-1 on the other, every cross pair adjacent. K_{2,3} is the smallest
// non-Hamiltonian 2-connected example and serves as the stand-in for the
// paper's Fig. 3 network N3 (see DESIGN.md, substitution 1).
func CompleteBipartite(a, b int) *Graph {
	if a < 1 || b < 1 {
		panic(fmt.Sprintf("graph: complete bipartite needs a,b >= 1, got %d,%d", a, b))
	}
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Grid returns the rows x cols mesh; vertex (r, c) has index r*cols + c.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: grid needs positive dimensions, got %dx%d", rows, cols))
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols mesh with wraparound edges in both
// dimensions (each dimension needs length >= 3 to avoid parallel edges;
// length 1 or 2 degenerates to the grid connectivity in that dimension).
func Torus(rows, cols int) *Graph {
	g := Grid(rows, cols)
	id := func(r, c int) int { return r*cols + c }
	if cols >= 3 {
		for r := 0; r < rows; r++ {
			g.AddEdge(id(r, cols-1), id(r, 0))
		}
	}
	if rows >= 3 {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(rows-1, c), id(0, c))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices,
// adjacent iff the vertex indices differ in exactly one bit.
func Hypercube(d int) *Graph {
	if d < 0 || d > 30 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of range [0,30]", d))
	}
	n := 1 << uint(d)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// KAryTree returns the complete k-ary tree with n vertices in level order:
// the children of vertex v are k*v+1 .. k*v+k (those below n).
func KAryTree(n, k int) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("graph: k-ary tree needs k >= 1, got %d", k))
	}
	g := New(n)
	for v := 0; v < n; v++ {
		for c := k*v + 1; c <= k*v+k && c < n; c++ {
			g.AddEdge(v, c)
		}
	}
	return g
}

// Caterpillar returns a path of spine vertices, each carrying legs leaf
// vertices. Spine vertices are 0..spine-1; the legs of spine vertex s are
// appended after the spine. Caterpillars exercise trees whose radius is
// far below n/2 while having many leaves.
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic(fmt.Sprintf("graph: caterpillar needs spine >= 1, legs >= 0, got %d,%d", spine, legs))
	}
	g := New(spine + spine*legs)
	for s := 0; s+1 < spine; s++ {
		g.AddEdge(s, s+1)
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(s, next)
			next++
		}
	}
	return g
}

// DeBruijn returns the undirected de Bruijn graph B(2, d): vertices are
// d-bit strings, with edges between x and its shifts (2x mod 2^d) and
// (2x+1 mod 2^d). Self-loops are dropped. These graphs have logarithmic
// diameter, making the n + r bound nearly optimal.
func DeBruijn(d int) *Graph {
	if d < 1 || d > 30 {
		panic(fmt.Sprintf("graph: de Bruijn dimension %d out of range [1,30]", d))
	}
	n := 1 << uint(d)
	g := New(n)
	for v := 0; v < n; v++ {
		for _, u := range []int{(2 * v) % n, (2*v + 1) % n} {
			if u != v {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// Wheel returns the wheel W_n: a cycle on vertices 1..n-1 plus hub vertex 0
// adjacent to all of them (n >= 4). Radius 1, Hamiltonian.
func Wheel(n int) *Graph {
	if n < 4 {
		panic(fmt.Sprintf("graph: wheel needs n >= 4, got %d", n))
	}
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
		next := v + 1
		if next == n {
			next = 1
		}
		g.AddEdge(v, next)
	}
	return g
}

// Spider returns legs paths of length legLen joined at a center vertex 0.
// Spider(2, m) is the odd path with its center as vertex 0; spiders with
// three or more legs are the canonical trees where the n + r - 1 lower
// bound argument applies at the center.
func Spider(legs, legLen int) *Graph {
	if legs < 1 || legLen < 1 {
		panic(fmt.Sprintf("graph: spider needs legs >= 1, legLen >= 1, got %d,%d", legs, legLen))
	}
	g := New(1 + legs*legLen)
	next := 1
	for l := 0; l < legs; l++ {
		prev := 0
		for s := 0; s < legLen; s++ {
			g.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return g
}
