// Package graph provides the network substrate for the gossiping library:
// a simple undirected graph with the traversals and distance metrics the
// paper's algorithms need (BFS, eccentricity, radius, diameter, center),
// together with the topology generators used by the experiments.
//
// Vertices are dense integer identifiers 0..n-1; they double as processor
// indices and, because every processor initially holds exactly one message,
// as message origins.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a finite simple undirected graph over vertices 0..n-1.
// The zero value is an empty graph with no vertices; use New to create a
// graph with a fixed vertex count.
type Graph struct {
	adj [][]int // adjacency lists; kept sorted by AddEdge
}

// New returns a graph with n vertices and no edges.
// n may be zero; it panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// check panics if v is not a valid vertex.
func (g *Graph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
}

// AddEdge inserts the undirected edge {u, v} and reports whether the graph
// changed. Inserting an existing edge is a no-op returning false, so
// generators may add edges without bookkeeping and incremental maintainers
// (fingerprint deltas, metric repair) can tell a real mutation from a
// duplicate. Self-loops are rejected because the communication model never
// sends a message to its current holder over a loop.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	return true
}

// RemoveEdge deletes the undirected edge {u, v} and reports whether it was
// present (removing an absent edge is a no-op returning false).
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if !g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	return true
}

func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func removeSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	nbrs := g.adj[u]
	i := sort.SearchInts(nbrs, v)
	return i < len(nbrs) && nbrs[i] == v
}

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	return g.adj[v]
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// Edges returns every edge exactly once, ordered by (U, V).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	for v, nbrs := range g.adj {
		c.adj[v] = append([]int(nil), nbrs...)
	}
	return c
}

// String returns a compact human-readable description such as
// "graph{n=4 m=3: 0-1 0-2 2-3}".
func (g *Graph) String() string {
	s := fmt.Sprintf("graph{n=%d m=%d:", g.N(), g.M())
	for _, e := range g.Edges() {
		s += fmt.Sprintf(" %d-%d", e.U, e.V)
	}
	return s + "}"
}

// Validate checks internal consistency: adjacency lists sorted, free of
// duplicates and self-loops, and symmetric. It returns a descriptive error
// for the first violation found. Graphs built exclusively through AddEdge
// always validate; the check exists for graphs assembled by hand in tests
// and for defensive use at package boundaries.
func (g *Graph) Validate() error {
	for u, nbrs := range g.adj {
		for i, v := range nbrs {
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("graph: vertex %d lists out-of-range neighbour %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			if i > 0 && nbrs[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at index %d", u, i)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", u, v)
			}
		}
	}
	return nil
}
