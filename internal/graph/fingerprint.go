package graph

// fingerprint.go content-addresses a graph: a 64-bit hash over the vertex
// count and the exact edge set. The hash is an XOR fold of one full-avalanche
// term per edge over a vertex-count base, which buys two properties at once:
// insertion-order independence (XOR commutes), and O(1) incremental
// maintenance — adding or removing edge {u, v} toggles exactly
// EdgeHash(u, v) into the running value, so a churning network never pays
// the O(n + m) rescan. Remove-then-re-add restores the original fingerprint
// bit for bit (h ^ x ^ x == h), which is what lets fingerprint-keyed cache
// entries survive link flaps. The hash is used by the plan cache as a
// content-addressed key, so it must be stable within a process but carries
// no cross-version durability promise.

// fpSeed separates the fingerprint domain from other splitmix users;
// fpEdgeSeed separates the per-edge terms from the vertex-count base.
const (
	fpSeed     = 0x9e3779b97f4a7c15
	fpEdgeSeed = 0xc2b2ae3d27d4eb4f
)

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// EdgeHash returns the fingerprint contribution of the undirected edge
// {u, v}: XOR-ing it into a graph's fingerprint accounts for adding the
// edge, XOR-ing it again for removing it. Symmetric in its arguments, and
// chained (not flat-XORed) across the two endpoints so that {0,3} and
// {1,2} do not collide.
func EdgeHash(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return mix64(mix64(fpEdgeSeed^uint64(u)) ^ uint64(v))
}

// Fingerprint returns the 64-bit content hash of the graph: equal vertex
// counts and edge sets give equal fingerprints regardless of mutation
// history; any structural difference changes the hash (up to 64-bit
// collisions). It costs one pass over the adjacency structure, O(n + m);
// callers that track their own mutations can instead fold EdgeHash deltas
// into a cached value.
func (g *Graph) Fingerprint() uint64 {
	h := mix64(fpSeed ^ uint64(len(g.adj)))
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				h ^= EdgeHash(u, v)
			}
		}
	}
	return h
}
