package graph

// fingerprint.go content-addresses a graph: a 64-bit hash over the exact
// CSR layout (vertex count, row offsets, column entries). Because AddEdge
// keeps every adjacency list sorted, the layout — and therefore the
// fingerprint — is a pure function of the vertex count and the edge set:
// two graphs built from the same edges in any insertion order hash equal,
// and any added or removed edge changes the row/col stream. The hash is
// used by the plan cache as a content-addressed key, so it must be stable
// within a process but carries no cross-version durability promise.

// fpSeed separates the fingerprint domain from other splitmix users.
const fpSeed = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fingerprint returns the 64-bit content hash of the graph. Equal vertex
// counts and edge sets give equal fingerprints regardless of AddEdge order;
// any structural difference changes the hash (up to 64-bit collisions).
// It costs one pass over the adjacency structure, O(n + m).
func (g *Graph) Fingerprint() uint64 {
	// Chain every value of the CSR stream through the finalizer so that
	// position matters: hashing the row boundary before each vertex's
	// columns disambiguates layouts like {0:[1,2]} vs {0:[1], 1:[2]} that
	// a flat column hash would conflate.
	h := mix64(fpSeed ^ uint64(len(g.adj)))
	for _, nbrs := range g.adj {
		h = mix64(h ^ uint64(len(nbrs)))
		for _, w := range nbrs {
			h = mix64(h ^ uint64(w))
		}
	}
	return h
}
