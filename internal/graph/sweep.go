package graph

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the shared BFS sweep engine. Every O(nm) all-roots question
// the library asks — the Section 3.1 minimum-depth spanning tree, the
// radius, the diameter, the center, the full eccentricity vector — reduces
// to "run a BFS from every vertex and fold the heights". The engine runs
// that sweep once, well: roots fan out over a GOMAXPROCS worker pool, each
// worker traverses a flat CSR snapshot with preallocated epoch-stamped
// scratch (zero allocations per traversal after warm-up), and for
// minimum-seeking sweeps roots are pruned with eccentricity lower bounds
// and abandoned mid-traversal as soon as they provably lose to the best
// height found so far.

// ErrDisconnected is wrapped by every sweep error caused by the graph not
// being connected, so callers can distinguish "disconnected input" from
// other failures with errors.Is.
var ErrDisconnected = errors.New("graph: disconnected")

// SweepMode selects what a sweep computes and which prunes it may apply.
type SweepMode int

const (
	// SweepAll computes the exact eccentricity of every vertex (and hence
	// radius, diameter and all centers). No pruning is possible: every
	// answer is demanded, so every root is traversed to completion.
	SweepAll SweepMode = iota
	// SweepMin computes the radius and the exact set of center vertices —
	// everything the minimum-depth spanning tree construction needs. Roots
	// that provably cannot be centers are skipped or abandoned early, so
	// Ecc entries for non-centers may be unknown and Diameter is not
	// computed.
	SweepMin
)

// SweepStats reports how much work a sweep actually did, for observability
// and for asserting that pruning fires where it should.
type SweepStats struct {
	Roots          int // vertices in the graph (one candidate root each)
	Seeds          int // sequential seed traversals (double sweep + center probe)
	Completed      int // traversals run to completion, seeds included
	Pruned         int // roots skipped outright by the eccentricity lower bound
	ShortCircuited int // traversals abandoned once they exceeded the best height
	Workers        int // size of the worker pool the roots were fanned over

	// Elapsed is the wall-clock duration of the sweep, for the
	// observability layer's sweep-timing metrics.
	Elapsed time.Duration
}

// SweepResult is the outcome of one sweep over all roots.
type SweepResult struct {
	Mode SweepMode
	// Ecc[v] is the exact eccentricity of v, or -1 when the sweep proved v
	// irrelevant without finishing its traversal (SweepMin only; SweepAll
	// fills every entry).
	Ecc []int
	// Radius is the minimum eccentricity; Center the lowest-numbered vertex
	// achieving it; Centers all vertices achieving it, ascending. These are
	// exact in every mode.
	Radius  int
	Center  int
	Centers []int
	// Diameter is the maximum eccentricity in SweepAll mode and -1 in
	// SweepMin mode (a pruned sweep learns only a lower bound on it).
	Diameter int
	Stats    SweepStats
}

// noCutoff disables early exit in a traversal.
const noCutoff = math.MaxInt32

// sweepScratch is one worker's reusable traversal state. Visitation is
// tracked by stamping mark[v] with the current epoch instead of refilling a
// distance array with -1, so starting a traversal costs O(1), not O(n), and
// a warm scratch performs a whole BFS without allocating.
type sweepScratch struct {
	dist  []int32
	mark  []uint32
	queue []int32
	epoch uint32
}

func newSweepScratch(n int) *sweepScratch {
	return &sweepScratch{
		dist:  make([]int32, n),
		mark:  make([]uint32, n),
		queue: make([]int32, n),
	}
}

// bfs traverses from src over the CSR snapshot. It returns the eccentricity
// of src, the number of vertices reached, and ok = true. If cutoff is set
// and some vertex is discovered at distance > cutoff, the traversal is
// abandoned immediately with ok = false (ecc(src) > cutoff is then proven).
// Neighbours are scanned in sorted order, preserving the deterministic
// discovery order of the slice-based BFS.
func (s *sweepScratch) bfs(c *csr, src, cutoff int32) (ecc int32, reached int, ok bool) {
	s.epoch++
	if s.epoch == 0 { // wrapped: invalidate stale stamps once
		clear(s.mark)
		s.epoch = 1
	}
	e := s.epoch
	q := s.queue[:1]
	q[0] = src
	s.mark[src] = e
	s.dist[src] = 0
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := s.dist[u]
		for i := c.row[u]; i < c.row[u+1]; i++ {
			v := c.col[i]
			if s.mark[v] == e {
				continue
			}
			if du+1 > cutoff {
				return du + 1, len(q), false
			}
			s.mark[v] = e
			s.dist[v] = du + 1
			q = append(q, v)
		}
	}
	return s.dist[q[len(q)-1]], len(q), true
}

// Sweep runs BFS traversals from every vertex and folds them according to
// mode. It parallelises roots over runtime.GOMAXPROCS workers and, in
// SweepMin mode, prunes roots with the lower bound ecc(v) >= |ecc(u) -
// d(u,v)| (and ecc(v) >= d(u,v)) taken over completed traversals — seeded
// by a double sweep from vertex 0 plus a probe of the approximate center —
// and abandons a traversal as soon as its frontier depth exceeds the best
// eccentricity found so far.
//
// Despite the pruning and the nondeterministic traversal order, the
// minimum-side answers are exact and deterministic: a root v with ecc(v)
// equal to the final radius can never be pruned (the bound would imply
// ecc(v) > radius) nor abandoned (the cutoff never drops below the final
// radius, so v's frontier never exceeds it), so every center completes and
// Radius/Center/Centers match the naive n-BFS fold bit for bit.
//
// Sweep returns an error wrapping ErrDisconnected when g is not connected,
// and an error on the empty graph, where eccentricity is undefined.
func (g *Graph) Sweep(mode SweepMode) (*SweepResult, error) {
	if mode != SweepAll && mode != SweepMin {
		return nil, fmt.Errorf("graph: unknown sweep mode %d", int(mode))
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("graph: sweep of an empty graph")
	}
	sweepStart := time.Now()
	c := newCSR(g)
	res := &SweepResult{Mode: mode, Ecc: make([]int, n), Diameter: -1}
	for i := range res.Ecc {
		res.Ecc[i] = -1
	}
	stats := &res.Stats
	stats.Roots = n

	// lb[v] is the shared, seed-derived lower bound on ecc(v); read-only
	// once the workers start. Workers refine private copies from their own
	// completed traversals.
	var lb []int32
	if mode == SweepMin {
		lb = make([]int32, n)
	}
	seedScratch := newSweepScratch(n)
	runSeed := func(root int32) (int32, error) {
		ecc, reached, _ := seedScratch.bfs(c, root, noCutoff)
		stats.Seeds++
		stats.Completed++
		if reached < n {
			for v := 0; v < n; v++ {
				if seedScratch.mark[v] != seedScratch.epoch {
					return 0, fmt.Errorf("%w: vertex %d unreachable from vertex %d", ErrDisconnected, v, root)
				}
			}
		}
		res.Ecc[root] = int(ecc)
		if lb != nil {
			for v, d := range seedScratch.dist {
				b := ecc - d
				if b < 0 {
					b = -b
				}
				if d > b {
					b = d
				}
				if b > lb[v] {
					lb[v] = b
				}
			}
		}
		return ecc, nil
	}

	// Seed phase: BFS from vertex 0 establishes connectivity (and the
	// deterministic tie-break anchor). In SweepMin mode the classic double
	// sweep follows — farthest u from 0, farthest w from u — plus a probe
	// of the approximate center between u and w, which usually lands the
	// cutoff at or near the true radius before any parallel work starts.
	ecc0, err := runSeed(0)
	if err != nil {
		return nil, err
	}
	best := ecc0
	if mode == SweepMin && n > 1 {
		dist0 := append([]int32(nil), seedScratch.dist...)
		u := lowestArgmax(dist0)
		eccU, _ := runSeed(int32(u)) // u != 0: ecc0 >= 1 on a connected n>1 graph
		if eccU < best {
			best = eccU
		}
		distU := append([]int32(nil), seedScratch.dist...)
		w := lowestArgmax(distU)
		distW := dist0
		if w != 0 && w != u {
			eccW, _ := runSeed(int32(w))
			if eccW < best {
				best = eccW
			}
			distW = seedScratch.dist
		}
		mid, midScore := 0, int32(math.MaxInt32)
		for v := 0; v < n; v++ {
			s := distU[v]
			if distW[v] > s {
				s = distW[v]
			}
			if s < midScore {
				mid, midScore = v, s
			}
		}
		if res.Ecc[mid] < 0 {
			eccM, _ := runSeed(int32(mid))
			if eccM < best {
				best = eccM
			}
		}
	}

	// Parallel phase: fan the remaining roots over the pool. Each index of
	// res.Ecc is written by at most one goroutine, and aggregation happens
	// after the join, so the slice needs no synchronisation of its own.
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	stats.Workers = workers
	var (
		nextRoot       atomic.Int64
		bestEcc        atomic.Int32
		completed      atomic.Int64
		pruned         atomic.Int64
		shortCircuited atomic.Int64
		wg             sync.WaitGroup
	)
	bestEcc.Store(best)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newSweepScratch(n) // warm-up: all traversal state for this worker
			var myLB []int32
			if mode == SweepMin {
				myLB = append([]int32(nil), lb...)
			}
			for {
				i := nextRoot.Add(1) - 1
				if i >= int64(n) {
					return
				}
				root := int32(i)
				if res.Ecc[root] >= 0 {
					continue // already answered by the seed phase
				}
				if mode == SweepAll {
					ecc, _, _ := sc.bfs(c, root, noCutoff)
					res.Ecc[root] = int(ecc)
					completed.Add(1)
					continue
				}
				b := bestEcc.Load()
				if myLB[root] > b {
					pruned.Add(1)
					continue
				}
				ecc, _, ok := sc.bfs(c, root, b)
				if !ok {
					shortCircuited.Add(1)
					continue
				}
				res.Ecc[root] = int(ecc)
				completed.Add(1)
				for cur := bestEcc.Load(); ecc < cur; cur = bestEcc.Load() {
					if bestEcc.CompareAndSwap(cur, ecc) {
						break
					}
				}
				// Refine this worker's bounds from the finished traversal
				// while its distance array is still warm.
				for v, d := range sc.dist {
					bnd := ecc - d
					if bnd < 0 {
						bnd = -bnd
					}
					if d > bnd {
						bnd = d
					}
					if bnd > myLB[v] {
						myLB[v] = bnd
					}
				}
			}
		}()
	}
	wg.Wait()
	stats.Completed += int(completed.Load())
	stats.Pruned = int(pruned.Load())
	stats.ShortCircuited = int(shortCircuited.Load())

	radius, diameter := -1, -1
	for _, e := range res.Ecc {
		if e < 0 {
			continue
		}
		if radius < 0 || e < radius {
			radius = e
		}
		if e > diameter {
			diameter = e
		}
	}
	res.Radius = radius
	for v, e := range res.Ecc {
		if e == radius {
			res.Centers = append(res.Centers, v)
		}
	}
	res.Center = res.Centers[0]
	if mode == SweepAll {
		res.Diameter = diameter
	}
	res.Stats.Elapsed = time.Since(sweepStart)
	return res, nil
}

// lowestArgmax returns the lowest index holding the maximum value.
func lowestArgmax(d []int32) int {
	arg := 0
	for v, x := range d {
		if x > d[arg] {
			arg = v
		}
	}
	return arg
}
