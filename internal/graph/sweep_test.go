package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMetrics folds the per-vertex Eccentricity oracle exactly the way the
// pre-engine implementations did: the reference the sweep must match bit
// for bit.
func naiveMetrics(g *Graph) (ecc []int, radius, diameter int, centers []int) {
	n := g.N()
	ecc = make([]int, n)
	radius, diameter = -1, 0
	for v := 0; v < n; v++ {
		ecc[v] = g.Eccentricity(v)
		if radius == -1 || ecc[v] < radius {
			radius = ecc[v]
		}
		if ecc[v] > diameter {
			diameter = ecc[v]
		}
	}
	for v, e := range ecc {
		if e == radius {
			centers = append(centers, v)
		}
	}
	return ecc, radius, diameter, centers
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSweepAllMatchesNaiveOnNamedTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	graphs := map[string]*Graph{
		"single":    New(1),
		"K2":        Complete(2),
		"path9":     Path(9),
		"cycle10":   Cycle(10),
		"cycle11":   Cycle(11),
		"star12":    Star(12),
		"complete6": Complete(6),
		"grid":      Grid(5, 7),
		"torus":     Torus(4, 6),
		"hypercube": Hypercube(4),
		"petersen":  Petersen(),
		"fig4":      Fig4(),
		"wheel":     Wheel(9),
		"spider":    Spider(5, 4),
		"random":    RandomConnected(rng, 40, 0.08),
		"geo":       RandomGeometric(rng, 50, 0.2),
	}
	for name, g := range graphs {
		wantEcc, wantR, wantD, wantCenters := naiveMetrics(g)
		all, err := g.Sweep(SweepAll)
		if err != nil {
			t.Fatalf("%s: SweepAll: %v", name, err)
		}
		if !equalInts(all.Ecc, wantEcc) {
			t.Errorf("%s: SweepAll ecc = %v, want %v", name, all.Ecc, wantEcc)
		}
		if all.Radius != wantR || all.Diameter != wantD || all.Center != wantCenters[0] {
			t.Errorf("%s: SweepAll r/D/c = %d/%d/%d, want %d/%d/%d",
				name, all.Radius, all.Diameter, all.Center, wantR, wantD, wantCenters[0])
		}
		if !equalInts(all.Centers, wantCenters) {
			t.Errorf("%s: SweepAll centers = %v, want %v", name, all.Centers, wantCenters)
		}
		min, err := g.Sweep(SweepMin)
		if err != nil {
			t.Fatalf("%s: SweepMin: %v", name, err)
		}
		if min.Radius != wantR || min.Center != wantCenters[0] {
			t.Errorf("%s: SweepMin r/c = %d/%d, want %d/%d", name, min.Radius, min.Center, wantR, wantCenters[0])
		}
		if !equalInts(min.Centers, wantCenters) {
			t.Errorf("%s: SweepMin centers = %v, want %v", name, min.Centers, wantCenters)
		}
		if min.Diameter != -1 {
			t.Errorf("%s: SweepMin diameter = %d, want -1 (not computed)", name, min.Diameter)
		}
		// Every eccentricity a pruned sweep does report must be exact.
		for v, e := range min.Ecc {
			if e >= 0 && e != wantEcc[v] {
				t.Errorf("%s: SweepMin ecc[%d] = %d, want %d", name, v, e, wantEcc[v])
			}
		}
	}
}

// TestQuickSweepMatchesNaive is the differential property test: on random
// connected graphs both sweep modes agree exactly with the naive n-BFS
// fold, including the deterministic lowest-vertex center despite the
// parallel traversal order.
func TestQuickSweepMatchesNaive(t *testing.T) {
	prop := func(seed int64, rawN, rawP uint8) bool {
		n := 1 + int(rawN)%48
		g := RandomConnected(rand.New(rand.NewSource(seed)), n, float64(rawP)/255)
		wantEcc, wantR, wantD, wantCenters := naiveMetrics(g)
		all, err := g.Sweep(SweepAll)
		if err != nil || !equalInts(all.Ecc, wantEcc) || all.Diameter != wantD {
			return false
		}
		min, err := g.Sweep(SweepMin)
		if err != nil || min.Radius != wantR || min.Center != wantCenters[0] {
			return false
		}
		return equalInts(min.Centers, wantCenters)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepAccounting(t *testing.T) {
	// Every root is accounted for exactly once: the seed phase visits
	// distinct roots (counted inside Completed via Seeds), and the parallel
	// phase resolves each remaining root as completed, pruned, or
	// short-circuited.
	rng := rand.New(rand.NewSource(9))
	for _, g := range []*Graph{Grid(16, 16), Cycle(200), RandomConnected(rng, 300, 0.03), New(1)} {
		for _, mode := range []SweepMode{SweepAll, SweepMin} {
			res, err := g.Sweep(mode)
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			if s.Roots != g.N() || s.Workers < 1 || s.Seeds < 1 || s.Completed < s.Seeds {
				t.Fatalf("implausible stats %+v", s)
			}
			if got := s.Completed + s.Pruned + s.ShortCircuited; got != s.Roots {
				t.Fatalf("mode %d: accounting %+v: covered %d roots, want %d", mode, s, got, s.Roots)
			}
			if mode == SweepAll && (s.Pruned != 0 || s.ShortCircuited != 0) {
				t.Fatalf("SweepAll pruned work: %+v", s)
			}
			known := 0
			for _, e := range res.Ecc {
				if e >= 0 {
					known++
				}
			}
			if known != s.Completed {
				t.Fatalf("mode %d: %d exact eccentricities but %d completed traversals", mode, known, s.Completed)
			}
		}
	}
}

func TestSweepPruningFiresOnGrid(t *testing.T) {
	// On a grid eccentricities vary widely (center ~ r, corners ~ 2r), so
	// the lower-bound prune and the early exit must both save real work.
	res, err := Grid(32, 32).Sweep(SweepMin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pruned+res.Stats.ShortCircuited == 0 {
		t.Fatalf("no pruning on a 32x32 grid: %+v", res.Stats)
	}
	if res.Radius != 32 { // per axis: min over i of max(i, 31-i) = 16
		t.Fatalf("grid radius = %d, want 32", res.Radius)
	}
}

func TestSweepDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	for _, mode := range []SweepMode{SweepAll, SweepMin} {
		_, err := g.Sweep(mode)
		if err == nil {
			t.Fatalf("mode %d accepted a disconnected graph", mode)
		}
		if !errors.Is(err, ErrDisconnected) {
			t.Fatalf("mode %d error %v does not wrap ErrDisconnected", mode, err)
		}
	}
}

func TestSweepEmptyAndUnknownMode(t *testing.T) {
	if _, err := New(0).Sweep(SweepAll); err == nil {
		t.Fatal("accepted empty graph")
	}
	if _, err := New(3).Sweep(SweepMode(99)); err == nil {
		t.Fatal("accepted unknown mode")
	}
}

func TestSweepScratchReuseAndEpochWrap(t *testing.T) {
	// One scratch must serve many traversals, including across the uint32
	// epoch wrap, without leaking visitation state between them.
	g := Grid(4, 4)
	c := newCSR(g)
	sc := newSweepScratch(g.N())
	want := make([]int32, g.N())
	for v := 0; v < g.N(); v++ {
		want[v] = int32(g.Eccentricity(v))
	}
	sc.epoch = ^uint32(0) - 3 // wrap mid-run
	for iter := 0; iter < 8; iter++ {
		for v := 0; v < g.N(); v++ {
			ecc, reached, ok := sc.bfs(c, int32(v), noCutoff)
			if !ok || reached != g.N() || ecc != want[v] {
				t.Fatalf("iter %d root %d: ecc=%d reached=%d ok=%v, want ecc %d", iter, v, ecc, reached, ok, want[v])
			}
		}
	}
}

// BenchmarkSweepTraversalSteadyState measures the raw engine traversal with
// a warm scratch: the steady state every sweep reaches after its workers
// allocate their buffers. Must report 0 allocs/op.
func BenchmarkSweepTraversalSteadyState(b *testing.B) {
	g := RandomConnected(rand.New(rand.NewSource(1)), 4096, 8.0/4096)
	c := newCSR(g)
	sc := newSweepScratch(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, reached, ok := sc.bfs(c, int32(i%g.N()), noCutoff); !ok || reached != g.N() {
			b.Fatal("traversal failed")
		}
	}
}

func TestSweepEarlyExitCutoff(t *testing.T) {
	// On a path, a BFS from the endpoint with the radius as cutoff must be
	// abandoned (ecc(end) = n-1 > r), while the midpoint completes.
	g := Path(9)
	c := newCSR(g)
	sc := newSweepScratch(g.N())
	if _, _, ok := sc.bfs(c, 0, 4); ok {
		t.Fatal("endpoint traversal not abandoned at cutoff 4")
	}
	if ecc, _, ok := sc.bfs(c, 4, 4); !ok || ecc != 4 {
		t.Fatalf("midpoint traversal: ecc=%d ok=%v, want 4 true", ecc, ok)
	}
}
