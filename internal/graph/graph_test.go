package graph

import (
	"math/rand"
	"testing"
)

func TestNewAndCounts(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate must be a no-op
	if g.M() != 2 {
		t.Fatalf("M() = %d after adds, want 2", g.M())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(1,1) did not panic")
		}
	}()
	g.AddEdge(1, 1)
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(0,3) did not panic")
		}
	}()
	g.AddEdge(0, 3)
}

func TestHasEdgeAndNeighbors(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(2, 1)
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("HasEdge must be symmetric")
	}
	if g.HasEdge(0, 1) {
		t.Error("HasEdge reports absent edge")
	}
	nbrs := g.Neighbors(2)
	want := []int{0, 1, 3}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want sorted %v", nbrs, want)
		}
	}
	if g.Degree(2) != 3 || g.Degree(0) != 1 {
		t.Errorf("degrees wrong: deg(2)=%d deg(0)=%d", g.Degree(2), g.Degree(0))
	}
}

func TestEdgesOrderedOnce(t *testing.T) {
	g := Cycle(4)
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i, e := range want {
		if edges[i] != e {
			t.Fatalf("Edges()[%d] = %v, want %v", i, edges[i], e)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("mutating clone affected original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := New(3)
	g.adj[0] = []int{1} // hand-corrupted: 1 does not list 0
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric adjacency")
	}
}

func TestValidateCatchesUnsorted(t *testing.T) {
	g := New(3)
	g.adj[0] = []int{2, 1}
	g.adj[1] = []int{0}
	g.adj[2] = []int{0}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted unsorted adjacency")
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for v, d := range dist {
		if d != v {
			t.Errorf("dist(0,%d) = %d, want %d", v, d, v)
		}
	}
	dist = g.BFS(2)
	want := []int{2, 1, 0, 1, 2}
	for v := range want {
		if dist[v] != want[v] {
			t.Errorf("dist(2,%d) = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != Unreachable {
		t.Fatalf("dist to isolated vertex = %d, want Unreachable", dist[2])
	}
	if g.IsConnected() {
		t.Fatal("IsConnected true on disconnected graph")
	}
}

func TestBFSParentsDeterministic(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3. BFS from 0 must pick parent 1 for 3
	// (lowest-numbered first discovery).
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	parent, dist := g.BFSParents(0)
	if parent[3] != 1 {
		t.Errorf("parent[3] = %d, want 1", parent[3])
	}
	if parent[0] != -1 || dist[0] != 0 {
		t.Errorf("root parent/dist = %d/%d, want -1/0", parent[0], dist[0])
	}
	if dist[3] != 2 {
		t.Errorf("dist[3] = %d, want 2", dist[3])
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components() found %d, want 3: %v", len(comps), comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestRadiusDiameterCenter(t *testing.T) {
	cases := []struct {
		name     string
		g        *Graph
		radius   int
		diameter int
		center   []int
	}{
		{"P5", Path(5), 2, 4, []int{2}},
		{"P4", Path(4), 2, 3, []int{1, 2}},
		{"C6", Cycle(6), 3, 3, []int{0, 1, 2, 3, 4, 5}},
		{"K4", Complete(4), 1, 1, []int{0, 1, 2, 3}},
		{"Star8", Star(8), 1, 2, []int{0}},
		{"Petersen", Petersen(), 2, 2, nil},
		{"K1", New(1), 0, 0, []int{0}},
	}
	for _, c := range cases {
		if r := c.g.Radius(); r != c.radius {
			t.Errorf("%s: radius = %d, want %d", c.name, r, c.radius)
		}
		if d := c.g.Diameter(); d != c.diameter {
			t.Errorf("%s: diameter = %d, want %d", c.name, d, c.diameter)
		}
		if c.center != nil {
			got := c.g.Center()
			if len(got) != len(c.center) {
				t.Errorf("%s: center = %v, want %v", c.name, got, c.center)
				continue
			}
			for i := range got {
				if got[i] != c.center[i] {
					t.Errorf("%s: center = %v, want %v", c.name, got, c.center)
					break
				}
			}
		}
	}
}

func TestEccentricityDisconnectedPanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Eccentricity on disconnected graph did not panic")
		}
	}()
	g.Eccentricity(0)
}

func TestOddPathRadius(t *testing.T) {
	// The paper's lower-bound instance: line with n = 2m+1 has radius m.
	for m := 1; m <= 10; m++ {
		n := 2*m + 1
		if r := Path(n).Radius(); r != m {
			t.Errorf("Path(%d): radius = %d, want %d", n, r, m)
		}
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"Path(1)", Path(1), 1, 0},
		{"Path(6)", Path(6), 6, 5},
		{"Cycle(5)", Cycle(5), 5, 5},
		{"Star(5)", Star(5), 5, 4},
		{"Complete(5)", Complete(5), 5, 10},
		{"K23", CompleteBipartite(2, 3), 5, 6},
		{"Grid(3,4)", Grid(3, 4), 12, 17},
		{"Torus(3,3)", Torus(3, 3), 9, 18},
		{"Q3", Hypercube(3), 8, 12},
		{"Q0", Hypercube(0), 1, 0},
		{"Bin15", KAryTree(15, 2), 15, 14},
		{"Cat(3,2)", Caterpillar(3, 2), 9, 8},
		{"Wheel(6)", Wheel(6), 6, 10},
		{"Spider(3,2)", Spider(3, 2), 7, 6},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
		}
		if err := c.g.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", c.name, err)
		}
		if !c.g.IsConnected() {
			t.Errorf("%s: not connected", c.name)
		}
	}
}

func TestHypercubeStructure(t *testing.T) {
	g := Hypercube(4)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Q4: degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if g.Diameter() != 4 {
		t.Fatalf("Q4: diameter = %d, want 4", g.Diameter())
	}
}

func TestDeBruijn(t *testing.T) {
	g := DeBruijn(4)
	if g.N() != 16 {
		t.Fatalf("B(2,4): n = %d, want 16", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("B(2,4) invalid: %v", err)
	}
	if !g.IsConnected() {
		t.Fatal("B(2,4) disconnected")
	}
	if d := g.Diameter(); d > 4 {
		t.Fatalf("B(2,4): diameter = %d, want <= 4", d)
	}
}

func TestPetersenProperties(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("Petersen: n=%d m=%d, want 10, 15", g.N(), g.M())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("Petersen: degree(%d) = %d, want 3 (3-regular)", v, g.Degree(v))
		}
	}
	if g.Diameter() != 2 || g.Radius() != 2 {
		t.Fatalf("Petersen: radius/diameter = %d/%d, want 2/2", g.Radius(), g.Diameter())
	}
	// Girth 5: no triangles or 4-cycles. Check no two adjacent vertices
	// share a neighbour (no triangle) and no two non-adjacent vertices
	// share two neighbours (no 4-cycle).
	common := func(u, v int) int {
		c := 0
		for _, x := range g.Neighbors(u) {
			if g.HasEdge(x, v) {
				c++
			}
		}
		return c
	}
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			c := common(u, v)
			if g.HasEdge(u, v) && c != 0 {
				t.Fatalf("Petersen: triangle through %d-%d", u, v)
			}
			if !g.HasEdge(u, v) && c != 1 {
				t.Fatalf("Petersen: %d,%d share %d neighbours, want 1", u, v, c)
			}
		}
	}
}

func TestN3StandInNotHamiltonian(t *testing.T) {
	// K_{2,3} is bipartite with unequal sides, hence non-Hamiltonian: a
	// Hamiltonian circuit alternates sides, requiring equal side sizes.
	g := N3StandIn()
	if g.N() != 5 || g.M() != 6 {
		t.Fatalf("N3 stand-in: n=%d m=%d, want 5, 6", g.N(), g.M())
	}
	// Verify bipartition {0,1} vs {2,3,4}: no intra-side edges.
	for _, e := range g.Edges() {
		uSide := e.U < 2
		vSide := e.V < 2
		if uSide == vSide {
			t.Fatalf("N3 stand-in: intra-side edge %v", e)
		}
	}
}

func TestFig4ContainsFig5Tree(t *testing.T) {
	g := Fig4()
	parents := Fig5TreeParents()
	if g.N() != 16 || len(parents) != 16 {
		t.Fatalf("Fig4/Fig5 sizes wrong: %d, %d", g.N(), len(parents))
	}
	for v, p := range parents {
		if p >= 0 && !g.HasEdge(v, p) {
			t.Errorf("Fig4 missing tree edge %d-%d", v, p)
		}
	}
	if r := g.Radius(); r != 3 {
		t.Errorf("Fig4: radius = %d, want 3", r)
	}
	if _, c := g.RadiusCenter(); c != 0 {
		t.Errorf("Fig4: lowest center = %d, want 0", c)
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0, 0.05, 0.3, 1} {
		for _, n := range []int{1, 2, 7, 40} {
			g := RandomConnected(rng, n, p)
			if g.N() != n {
				t.Fatalf("RandomConnected(n=%d): N=%d", n, g.N())
			}
			if !g.IsConnected() {
				t.Fatalf("RandomConnected(n=%d, p=%v) disconnected", n, p)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("RandomConnected invalid: %v", err)
			}
		}
	}
	if g := RandomConnected(rng, 5, 1); g.M() != 10 {
		t.Errorf("RandomConnected(p=1) not complete: m=%d", g.M())
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 10, 64} {
		g := RandomTree(rng, n)
		if g.N() != n || g.M() != max(0, n-1) {
			t.Fatalf("RandomTree(%d): n=%d m=%d", n, g.N(), g.M())
		}
		if !g.IsConnected() {
			t.Fatalf("RandomTree(%d) disconnected", n)
		}
	}
}

func TestRandomGeometricConnectedAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 5, 30, 100} {
		g := RandomGeometric(rng, n, 0.18)
		if !g.IsConnected() {
			t.Fatalf("RandomGeometric(%d) disconnected after repair", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("RandomGeometric invalid: %v", err)
		}
	}
}

func TestPruferDecodeKnown(t *testing.T) {
	// Sequence [3,3] encodes the star centered at 3 on 4 vertices.
	g := PruferDecode([]int{3, 3})
	if g.M() != 3 || g.Degree(3) != 3 {
		t.Fatalf("PruferDecode([3,3]) = %v, want star at 3", g)
	}
	// Sequence [1,2] encodes the path 0-1-2-3.
	g = PruferDecode([]int{1, 2})
	for _, e := range []Edge{{0, 1}, {1, 2}, {2, 3}} {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("PruferDecode([1,2]) missing %v: %v", e, g)
		}
	}
}

func TestAllTreesCounts(t *testing.T) {
	// Cayley's formula: n^(n-2) labelled trees.
	for n, want := range map[int]int{1: 1, 2: 1, 3: 3, 4: 16, 5: 125, 6: 1296} {
		count := 0
		AllTrees(n, func(g *Graph) bool {
			count++
			if g.N() != n || g.M() != max(0, n-1) || !g.IsConnected() {
				t.Fatalf("AllTrees(%d) produced non-tree %v", n, g)
			}
			return true
		})
		if count != want {
			t.Errorf("AllTrees(%d) enumerated %d, want %d", n, count, want)
		}
	}
}

func TestAllTreesEarlyStop(t *testing.T) {
	count := 0
	AllTrees(5, func(*Graph) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop after %d trees, want 10", count)
	}
}

func TestDOT(t *testing.T) {
	g := Path(3)
	dot := g.DOT("P3", map[int]string{0: "root"})
	for _, want := range []string{"graph P3 {", "0 -- 1;", "1 -- 2;", `0 [label="root"];`} {
		if !contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestGraphString(t *testing.T) {
	g := Path(3)
	s := g.String()
	if s != "graph{n=3 m=2: 0-1 1-2}" {
		t.Fatalf("String() = %q", s)
	}
}

func TestN1IsEightRing(t *testing.T) {
	g := N1()
	if g.N() != 8 || g.M() != 8 {
		t.Fatalf("N1: n=%d m=%d, want an 8-ring", g.N(), g.M())
	}
	for v := 0; v < 8; v++ {
		if !g.HasEdge(v, (v+1)%8) {
			t.Fatalf("N1 missing ring edge %d-%d", v, (v+1)%8)
		}
	}
}

func TestComponentDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", New(0), 0},
		{"singleton", New(1), 0},
		{"isolated", New(4), 0},
		{"path", Path(6), 5},
		{"cycle", Cycle(8), 4},
	}
	// Two components: a 5-path (diameter 4) and a triangle (diameter 1).
	split := New(8)
	for v := 0; v < 4; v++ {
		split.AddEdge(v, v+1)
	}
	split.AddEdge(5, 6)
	split.AddEdge(6, 7)
	split.AddEdge(5, 7)
	cases = append(cases, struct {
		name string
		g    *Graph
		want int
	}{"path+triangle", split, 4})
	for _, c := range cases {
		if got := c.g.ComponentDiameter(); got != c.want {
			t.Errorf("%s: ComponentDiameter() = %d, want %d", c.name, got, c.want)
		}
	}
	// On connected graphs it must agree with Diameter.
	for _, g := range []*Graph{Path(9), Cycle(10), Grid(3, 5), Petersen()} {
		if g.ComponentDiameter() != g.Diameter() {
			t.Errorf("%v: ComponentDiameter %d != Diameter %d", g, g.ComponentDiameter(), g.Diameter())
		}
	}
}
