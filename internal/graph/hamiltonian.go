package graph

// HamiltonianCircuit searches for a Hamiltonian circuit by backtracking and
// returns it as a vertex sequence starting at 0 (the successor of the last
// vertex is the first). The second result reports whether one exists.
//
// The search is exponential in the worst case and intended for the small
// named instances of the experiments (certifying that N1 and the Petersen
// graph do or do not admit a circuit); budget caps the number of extension
// steps, with budget <= 0 meaning 10^7. When the budget is exhausted the
// function returns (nil, false) conservatively.
func HamiltonianCircuit(g *Graph, budget int) ([]int, bool) {
	n := g.N()
	if n < 3 {
		return nil, false
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) < 2 {
			return nil, false
		}
	}
	if budget <= 0 {
		budget = 10_000_000
	}
	path := make([]int, 1, n)
	used := make([]bool, n)
	used[0] = true
	var extend func() bool
	extend = func() bool {
		if budget <= 0 {
			return false
		}
		budget--
		u := path[len(path)-1]
		if len(path) == n {
			return g.HasEdge(u, 0)
		}
		for _, v := range g.Neighbors(u) {
			if used[v] {
				continue
			}
			used[v] = true
			path = append(path, v)
			if extend() {
				return true
			}
			path = path[:len(path)-1]
			used[v] = false
		}
		return false
	}
	if extend() && budget > 0 {
		return path, true
	}
	return nil, false
}
