package trace

import (
	"strings"
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

func TestFormatTimetableRootTable1Shape(t *testing.T) {
	l := spantree.Label(spantree.MustFromParents(graph.Fig5TreeParents()))
	s := core.BuildConcurrentUpDown(l)
	out := FormatTimetable(schedule.VertexView(s, l.T, 0))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Root: Time header + Receive from Child + Send to Children only.
	if len(lines) != 3 {
		t.Fatalf("root table has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Time") {
		t.Fatalf("missing Time header:\n%s", out)
	}
	if !strings.Contains(out, "Receive from Child") || !strings.Contains(out, "Send to Children") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if strings.Contains(out, "Receive from Parent") {
		t.Fatalf("root table should omit parent rows:\n%s", out)
	}
	// Table 1's final entry: message 0 sent at time 16.
	if !strings.Contains(lines[2], " 0") {
		t.Fatalf("send row missing message 0:\n%s", out)
	}
}

func TestFormatTimetableLeafOmitsChildRows(t *testing.T) {
	l := spantree.Label(spantree.MustFromParents([]int{-1, 0, 0}))
	s := core.BuildConcurrentUpDown(l)
	out := FormatTimetable(schedule.VertexView(s, l.T, 2))
	if strings.Contains(out, "Receive from Child") || strings.Contains(out, "Send to Children") {
		t.Fatalf("leaf table should omit child rows:\n%s", out)
	}
}

func TestFormatTree(t *testing.T) {
	tr := spantree.MustFromParents(graph.Fig5TreeParents())
	out := FormatTree(tr, func(v int) string { return "" })
	for _, want := range []string{"0\n", "├─ 1", "└─ 11", "│  ├─ 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree rendering missing %q:\n%s", want, out)
		}
	}
	// Every vertex appears exactly once per line count.
	lines := strings.Count(out, "\n")
	if lines != tr.N() {
		t.Fatalf("tree rendering has %d lines, want %d:\n%s", lines, tr.N(), out)
	}
	withLabels := FormatTree(tr, func(v int) string { return "[msg]" })
	if strings.Count(withLabels, "[msg]") != tr.N() {
		t.Fatalf("labels missing:\n%s", withLabels)
	}
}

func TestFormatRounds(t *testing.T) {
	s := schedule.New(3)
	s.AddSend(0, 1, 1, 0)
	s.AddSend(1, 1, 0, 2)
	out := FormatRounds(s)
	if !strings.Contains(out, "t=0 | 1->[0]:m1") || !strings.Contains(out, "t=1 | 0->[2]:m1") {
		t.Fatalf("round rendering unexpected:\n%s", out)
	}
}
