// Package trace renders schedules and trees for human inspection: the
// per-vertex timetables in the layout of the paper's Tables 1-4, an ASCII
// tree view of the spanning tree with DFS labels, and round-by-round
// schedule dumps. Used by cmd/gossip and the examples.
package trace

import (
	"fmt"
	"strings"

	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// FormatTimetable renders a vertex timetable in the paper's table layout:
//
//	Time                |  0  1  2 ...
//	Receive from Parent |  -  -  1 ...
//	Receive from Child  |  -  5  - ...
//	Send to Parent      |  -  -  - ...
//	Send to Children    |  -  -  1 ...
//
// Rows that are entirely empty (a leaf's child rows, the root's parent
// rows) are omitted, as in the paper.
func FormatTimetable(vt *schedule.VertexTimetable) string {
	rows := []struct {
		name  string
		cells []int
	}{
		{"Receive from Parent", vt.RecvParent},
		{"Receive from Child", vt.RecvChild},
		{"Send to Parent", vt.SendParent},
		{"Send to Children", vt.SendChild},
	}
	width := len(vt.RecvParent)
	// Column width from the largest message label or time.
	cw := len(fmt.Sprint(width - 1))
	for _, r := range rows {
		for _, m := range r.cells {
			if w := len(fmt.Sprint(m)); m != schedule.NoMessage && w > cw {
				cw = w
			}
		}
	}
	nameW := len("Receive from Parent")
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s |", nameW, "Time")
	for t := 0; t < width; t++ {
		fmt.Fprintf(&b, " %*d", cw, t)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		empty := true
		for _, m := range r.cells {
			if m != schedule.NoMessage {
				empty = false
				break
			}
		}
		if empty {
			continue
		}
		fmt.Fprintf(&b, "%-*s |", nameW, r.name)
		for _, m := range r.cells {
			if m == schedule.NoMessage {
				fmt.Fprintf(&b, " %*s", cw, "-")
			} else {
				fmt.Fprintf(&b, " %*d", cw, m)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTree renders a rooted tree with one vertex per line, indented by
// level, annotating each vertex with an optional label (message number):
//
//	0 [msg 0]
//	├─ 1 [msg 1]
//	│  ├─ 2 [msg 2]
//	...
func FormatTree(t *spantree.Tree, label func(v int) string) string {
	var b strings.Builder
	var walk func(v int, prefix string, last bool)
	walk = func(v int, prefix string, last bool) {
		if v == t.Root {
			fmt.Fprintf(&b, "%d%s\n", v, labelOf(label, v))
		} else {
			connector := "├─ "
			if last {
				connector = "└─ "
			}
			fmt.Fprintf(&b, "%s%s%d%s\n", prefix, connector, v, labelOf(label, v))
			if last {
				prefix += "   "
			} else {
				prefix += "│  "
			}
		}
		kids := t.Children[v]
		for idx, c := range kids {
			childPrefix := prefix
			if v == t.Root {
				childPrefix = ""
			}
			walk(c, childPrefix, idx == len(kids)-1)
		}
	}
	walk(t.Root, "", true)
	return b.String()
}

func labelOf(label func(v int) string, v int) string {
	if label == nil {
		return ""
	}
	if s := label(v); s != "" {
		return " " + s
	}
	return ""
}

// FormatRounds renders a schedule one round per line with aligned columns,
// e.g. "t= 3 | 4->[0 5 8]:m7  9->[8]:m9".
func FormatRounds(s *schedule.Schedule) string {
	var b strings.Builder
	tw := len(fmt.Sprint(s.Time() - 1))
	for t, round := range s.Rounds {
		fmt.Fprintf(&b, "t=%*d |", tw, t)
		for _, tx := range round {
			fmt.Fprintf(&b, " %d->%v:m%d", tx.From, tx.To, tx.Msg)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
