package trace

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// golden compares got against testdata/<name>.golden, rewriting the file
// instead when -update is set.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test ./internal/trace -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: rendering drifted from golden file\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// fig5Schedule rebuilds the paper's running example: the Fig. 5 labelled
// tree (16 vertices, height 3) under ConcurrentUpDown, 19 rounds.
func fig5Schedule(t *testing.T) (*spantree.Labeled, *schedule.Schedule) {
	t.Helper()
	l := spantree.Label(spantree.MustFromParents(graph.Fig5TreeParents()))
	s := core.BuildConcurrentUpDown(l)
	if s.Time() != 19 {
		t.Fatalf("Fig. 5 schedule takes %d rounds, want n + r = 19", s.Time())
	}
	return l, s
}

// TestGoldenPaperTimetables pins the exact rendering of the paper's
// Tables 1-4: the per-vertex ConcurrentUpDown timetables of the vertices
// holding messages 0 (the root), 1, 4 and 8 in the Fig. 5 tree.
func TestGoldenPaperTimetables(t *testing.T) {
	l, s := fig5Schedule(t)
	for _, tc := range []struct {
		name   string
		vertex int
	}{
		{"table1_vertex0", 0},
		{"table2_vertex1", 1},
		{"table3_vertex4", 4},
		{"table4_vertex8", 8},
	} {
		golden(t, tc.name, FormatTimetable(schedule.VertexView(s, l.T, tc.vertex)))
	}
}

// TestGoldenFig5Tree pins the ASCII rendering of the Fig. 5 tree with its
// DFS message labels and levels.
func TestGoldenFig5Tree(t *testing.T) {
	l, _ := fig5Schedule(t)
	out := FormatTree(l.T, func(v int) string {
		return fmt.Sprintf("[msg %d, level %d]", l.LabelOf[v], l.T.Level[v])
	})
	golden(t, "fig5_tree", out)
}

// TestGoldenFig5Rounds pins the round-by-round rendering of the full
// 19-round Fig. 5 schedule.
func TestGoldenFig5Rounds(t *testing.T) {
	_, s := fig5Schedule(t)
	golden(t, "fig5_rounds", FormatRounds(s))
}
