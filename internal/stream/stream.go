// Package stream generates ConcurrentUpDown schedules lazily, one round at
// a time, in O(n) memory. A materialised schedule is a Θ(n²) object (every
// processor receives n-1 messages), which caps the materialising builder
// around n ≈ 10⁴ on a laptop; but the paper's construction is closed-form
// per vertex — up-sends and b-message down-sends come straight from
// (U3)/(U4)/(D3), and the only dynamic state is the o-message forwarding of
// (D1)/(D2), which needs just the previous round's arrival and at most two
// delayed messages per vertex. The generator keeps exactly that state, so
// each round costs O(active vertices) and the whole stream costs the same
// total work as materialising with none of the memory.
//
// The tests prove equivalence: for moderate n the streamed rounds are
// identical, transmission for transmission, to core.BuildConcurrentUpDown.
package stream

import (
	"fmt"

	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// Generator produces the rounds of the ConcurrentUpDown schedule on a
// DFS-labelled tree (canonical identifiers), in time order.
type Generator struct {
	l *spantree.Labeled
	t int // next round to emit

	// incoming[v] is the o-message arriving at v from its parent at time
	// g.t (computed from the previous round's sends), or -1. scratch is
	// the double buffer for the next round, reused to keep Next
	// allocation-free in steady state.
	incoming []int
	scratch  []int
	// delayed[v] holds the o-messages captured at times i-k and i-k+1,
	// to be released at j-k+1 and j-k+2 (at most two, step D2).
	delayed   [][]int
	lastRound int
}

// New returns a generator for the labelled tree. The stream has exactly
// n + height rounds for n >= 2 (0 rounds for n <= 1).
func New(l *spantree.Labeled) *Generator {
	n := l.N()
	g := &Generator{
		l:         l,
		incoming:  make([]int, n),
		scratch:   make([]int, n),
		delayed:   make([][]int, n),
		lastRound: lastRoundOf(l),
	}
	for v := range g.incoming {
		g.incoming[v] = -1
		g.scratch[v] = -1
	}
	return g
}

// lastRoundOf returns the final round index: n + height - 1 (the message 0
// relay reaching the deepest leaves), or -1 for trivial trees.
func lastRoundOf(l *spantree.Labeled) int {
	if l.N() <= 1 {
		return -1
	}
	return l.N() + l.T.Height - 1
}

// Rounds returns the total number of rounds the stream will produce.
func (g *Generator) Rounds() int { return g.lastRound + 1 }

// Next emits the transmissions of the next round, or ok=false when the
// schedule is complete. The returned slice is freshly allocated each call.
func (g *Generator) Next() (round []schedule.Transmission, ok bool) {
	if g.t > g.lastRound {
		return nil, false
	}
	t := g.t
	l := g.l
	tr := l.T
	n := l.N()
	nextIncoming := g.scratch // reset lazily: only written slots differ from -1

	for v := 0; v < n; v++ {
		// Consume (and clear, for buffer reuse) this round's arrival.
		in := g.incoming[v]
		g.incoming[v] = -1

		k := tr.Level[v]
		i, j := l.Interval(v)
		var msg = -1
		var toParent bool
		var children []int

		// Propagate-Up sends (U3, U4).
		if v != tr.Root {
			w := l.LipCount(v)
			if w == 1 && t == 0 {
				msg, toParent = i, true
			}
			if t >= i-k+w && t <= j-k {
				msg, toParent = t+k, true
			}
		}

		if !tr.IsLeaf(v) {
			// Propagate-Down b-messages (D3).
			bTime := -1
			var bMsg int
			if t >= i-k && t <= j-k {
				bMsg = t + k
				bTime = t
				if bMsg == i && i == k {
					bTime = -1 // relocated below
				}
			}
			if i == k && t == j-k+1 {
				bMsg, bTime = i, t
			}
			if bTime == t {
				if msg != -1 && msg != bMsg {
					panic(fmt.Sprintf("stream: vertex %d emits %d and %d at %d", v, msg, bMsg, t))
				}
				msg = bMsg
				children = destsExcludingOwner(l, v, bMsg)
			}

			// Propagate-Down o-forwards (D1, D2).
			oMsg := -1
			if in != -1 {
				if t == i-k || t == i-k+1 {
					g.delayed[v] = append(g.delayed[v], in)
					if len(g.delayed[v]) > 2 {
						panic(fmt.Sprintf("stream: vertex %d delayed %d messages", v, len(g.delayed[v])))
					}
				} else {
					oMsg = in
				}
			}
			if oMsg == -1 && len(g.delayed[v]) > 0 {
				if t == j-k+1 || t == j-k+2 {
					oMsg = g.delayed[v][0]
					g.delayed[v] = g.delayed[v][1:]
				}
			}
			if oMsg != -1 {
				if msg != -1 && msg != oMsg {
					panic(fmt.Sprintf("stream: vertex %d emits %d and %d at %d", v, msg, oMsg, t))
				}
				msg = oMsg
				children = tr.Children[v]
			}
		}

		if msg == -1 {
			continue
		}
		if !toParent && len(children) == 0 {
			continue
		}
		dests := make([]int, 0, len(children)+1)
		if toParent {
			dests = append(dests, tr.Parent[v])
		}
		dests = append(dests, children...)
		round = append(round, schedule.Transmission{Msg: msg, From: v, To: dests})

		// Propagate o-message arrivals for round t+1: only down-sends to
		// children that are *outside* the child's own interval matter.
		for _, c := range children {
			if msg < c || msg > l.Hi[c] {
				nextIncoming[c] = msg
			}
		}
	}
	// Swap buffers: incoming was cleared slot by slot above, so it becomes
	// the fresh scratch for the next round.
	g.incoming, g.scratch = nextIncoming, g.incoming
	g.t++
	return round, true
}

// destsExcludingOwner returns v's children minus the owner of m; message
// m == v goes to all children.
func destsExcludingOwner(l *spantree.Labeled, v, m int) []int {
	owner := l.Owner(v, m)
	kids := l.T.Children[v]
	if owner == -1 {
		return kids
	}
	out := make([]int, 0, len(kids)-1)
	for _, c := range kids {
		if c != owner {
			out = append(out, c)
		}
	}
	return out
}

// Materialize drains the generator into a full schedule (for tests and
// small n; defeats the memory advantage by design).
func (g *Generator) Materialize() *schedule.Schedule {
	s := schedule.New(g.l.N())
	for {
		round, ok := g.Next()
		if !ok {
			break
		}
		for _, tx := range round {
			s.AddSend(g.t-1, tx.Msg, tx.From, tx.To...)
		}
	}
	for len(s.Rounds) < g.Rounds() {
		s.Rounds = append(s.Rounds, nil)
	}
	return s
}

// Summary streams the whole schedule and returns aggregate statistics plus
// a completeness count check, all in O(n) memory: it verifies that every
// processor receives exactly n-1 messages, never twice in a round, and
// that rounds number exactly n + height.
type Summary struct {
	Rounds        int
	Transmissions int
	Deliveries    int
	MaxFanout     int
}

// Verify streams the schedule and checks the O(n)-checkable invariants:
// per-round single-send/single-receive, parent/child adjacency, delivery
// counts (each processor receives exactly n-1), and the total time.
// It does not track full hold sets (that is the materialising validator's
// job, quadratic memory); the equivalence tests bridge the gap.
func Verify(l *spantree.Labeled) (Summary, error) {
	g := New(l)
	n := l.N()
	recvCount := make([]int, n)
	sum := Summary{}
	recvRound := make([]int, n)
	for i := range recvRound {
		recvRound[i] = -1
	}
	sentRound := make([]int, n)
	for i := range sentRound {
		sentRound[i] = -1
	}
	t := 0
	for {
		round, ok := g.Next()
		if !ok {
			break
		}
		for _, tx := range round {
			if sentRound[tx.From] == t {
				return sum, fmt.Errorf("stream: vertex %d sends twice at %d", tx.From, t)
			}
			sentRound[tx.From] = t
			sum.Transmissions++
			if len(tx.To) > sum.MaxFanout {
				sum.MaxFanout = len(tx.To)
			}
			for _, d := range tx.To {
				if d != l.T.Parent[tx.From] && l.T.Parent[d] != tx.From {
					return sum, fmt.Errorf("stream: %d-%d is not a tree edge", tx.From, d)
				}
				if recvRound[d] == t {
					return sum, fmt.Errorf("stream: vertex %d receives twice at %d", d, t)
				}
				recvRound[d] = t
				recvCount[d]++
				sum.Deliveries++
			}
		}
		t++
	}
	sum.Rounds = t
	if n >= 2 && t != n+l.T.Height {
		return sum, fmt.Errorf("stream: %d rounds, want n + height = %d", t, n+l.T.Height)
	}
	for v, c := range recvCount {
		if n >= 2 && c != n-1 {
			return sum, fmt.Errorf("stream: vertex %d received %d messages, want %d", v, c, n-1)
		}
	}
	return sum, nil
}
