package stream

import (
	"math/rand"
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

func labeled(t *testing.T, g *graph.Graph, root int) *spantree.Labeled {
	t.Helper()
	tr, err := spantree.BFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	return spantree.Label(tr)
}

// TestStreamEqualsBuilder is the core equivalence proof: the streamed
// rounds are identical to the materialising builder's, transmission for
// transmission, across shapes and sizes.
func TestStreamEqualsBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	graphs := []*graph.Graph{
		graph.Path(2), graph.Path(17), graph.Star(20), graph.KAryTree(40, 3),
		graph.Caterpillar(6, 3), graph.RandomTree(rng, 77), graph.RandomTree(rng, 200),
	}
	graphs = append(graphs, spantree.MustFromParents(graph.Fig5TreeParents()).Graph())
	for _, g := range graphs {
		l := labeled(t, g, 0)
		want := core.BuildConcurrentUpDown(l)
		got := New(l).Materialize()
		want.Normalize()
		got.Normalize()
		if !got.Equal(want) {
			t.Fatalf("%v: stream differs from builder\nstream:\n%s\nbuilder:\n%s", g, got, want)
		}
	}
}

func TestStreamExhaustiveSmallTrees(t *testing.T) {
	maxN := 6
	if testing.Short() {
		maxN = 5
	}
	for n := 2; n <= maxN; n++ {
		graph.AllTrees(n, func(g *graph.Graph) bool {
			for root := 0; root < n; root++ {
				l := labeled(t, g, root)
				want := core.BuildConcurrentUpDown(l)
				got := New(l).Materialize()
				want.Normalize()
				got.Normalize()
				if !got.Equal(want) {
					t.Fatalf("n=%d root=%d %v: stream differs from builder", n, root, g)
				}
			}
			return true
		})
	}
}

func TestStreamVerifyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, n := range []int{2, 10, 100, 500} {
		l := labeled(t, graph.RandomTree(rng, n), rng.Intn(n))
		sum, err := Verify(l)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if sum.Rounds != n+l.T.Height {
			t.Fatalf("n=%d: rounds %d", n, sum.Rounds)
		}
		if sum.Deliveries != n*(n-1) {
			t.Fatalf("n=%d: deliveries %d, want %d", n, sum.Deliveries, n*(n-1))
		}
	}
}

// TestStreamLargeScale exercises the point of streaming: an 8,000-vertex
// tree whose materialised schedule would hold ~6x10^7 delivery entries is
// streamed and count-verified with O(n) state.
func TestStreamLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale stream skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(53))
	n := 8000
	l := labeled(t, graph.RandomTree(rng, n), 0)
	sum, err := Verify(l)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Deliveries != n*(n-1) {
		t.Fatalf("deliveries %d, want %d", sum.Deliveries, n*(n-1))
	}
	if sum.Rounds != n+l.T.Height {
		t.Fatalf("rounds %d, want %d", sum.Rounds, n+l.T.Height)
	}
}

func TestStreamTrivial(t *testing.T) {
	l := spantree.Label(spantree.MustFromParents([]int{-1}))
	g := New(l)
	if g.Rounds() != 0 {
		t.Fatalf("n=1: %d rounds", g.Rounds())
	}
	if _, ok := g.Next(); ok {
		t.Fatal("n=1: produced a round")
	}
	if sum, err := Verify(l); err != nil || sum.Rounds != 0 {
		t.Fatalf("n=1 verify: %v %+v", err, sum)
	}
}

func TestStreamedScheduleIsValidOnTree(t *testing.T) {
	// Belt and braces: feed the materialised stream through the strict
	// quadratic validator.
	rng := rand.New(rand.NewSource(54))
	l := labeled(t, graph.RandomTree(rng, 60), 3)
	s := New(l).Materialize()
	if _, err := schedule.Run(l.T.Graph(), s, schedule.Options{RequireUseful: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.CheckGossip(l.T.Graph(), s); err != nil {
		t.Fatal(err)
	}
}
