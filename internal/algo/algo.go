// Package algo is the planner registry: the single source of truth for
// every gossip algorithm the portfolio ships. The public
// multigossip.Algorithm and the internal core.Algorithm are both type
// aliases of ID, so an algorithm's identity, canonical name, accepted
// spellings, capability flags and registered rounds bound live here and
// nowhere else — the two enums that used to be defined independently (and
// could silently desync as the portfolio grew) cannot drift apart any more.
//
// Builders do not live here: an entry's constructor needs graph, schedule
// and planner packages that sit above this one in the import graph, so the
// facade keeps a builder table keyed by ID and a test asserts the table
// covers the registry exactly.
package algo

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies a registered algorithm. The zero value is
// ConcurrentUpDown, the paper's contribution and the default everywhere.
type ID int

// The registered algorithms. Values are stable: they key the plan cache
// and the disk store, so appending is safe and reordering is not.
const (
	// ConcurrentUpDown is the paper's contribution: n + r rounds (Theorem 1).
	ConcurrentUpDown ID = iota
	// Simple is the baseline of Lemma 1: 2n + r - 3 rounds.
	Simple
	// Pipelined gossips by concurrent pipelined tree floods (no gather
	// phase), after De Florio & Blondia's pipelined gossiping.
	Pipelined
	// Algebraic is the randomized network-coded baseline after Haeupler:
	// seeded GF(2) coded packets, expected-rounds reporting.
	Algebraic
	// Weighted is the paper's Section 4 weighted gossiping via virtual
	// vertex chains, run with unit counts when selected as a plain planner.
	Weighted
	// Beep is the collision-constrained variant (Hounkanli & Pelc; Wu &
	// Chrobak): a transmission reaches every neighbour and a processor
	// hearing two transmitters in one round receives nothing.
	Beep

	numAlgorithms // sentinel: one past the last registered ID
)

// BoundParams feeds an entry's rounds-bound predicate. For weighted
// gossiping with non-unit counts, Messages and ExpandedRadius describe the
// chain expansion; every other entry sees Messages == N and
// ExpandedRadius == Radius.
type BoundParams struct {
	N              int // processors
	Radius         int // network radius
	Diameter       int // network diameter
	Messages       int // total messages (== N unless weighted)
	ExpandedRadius int // radius of the weighted chain expansion (== Radius otherwise)
}

// Info is one registry entry.
type Info struct {
	ID      ID
	Name    string   // canonical name, as reported and served
	Aliases []string // additional accepted lowercase spellings
	Summary string   // one-line description for docs and CLIs

	// Deterministic: the same topology always yields the same schedule.
	// False for seeded randomized entries, whose plans are reproducible
	// only together with their seed (the cache keys them by seed).
	Deterministic bool
	// Schedulable: the plan carries a concrete round-by-round transmission
	// schedule (Round, RoundAppend, include_rounds over the wire). False
	// for coded randomized entries, which report rounds but exchange
	// packets no Transmission can express.
	Schedulable bool
	// FaultExecutable: ExecuteWithFaults can replay the plan under
	// injected faults. Implies Schedulable.
	FaultExecutable bool
	// TreeBased: the plan communicates over the minimum-depth spanning
	// tree of Section 3.1.
	TreeBased bool
	// ImplicitBacked: plans evaluate from the O(n) closed form and are
	// servable by the disk store's implicit codec.
	ImplicitBacked bool
	// ExactBound: Bound is the exact total time, not just an upper bound.
	ExactBound bool

	// Bound returns the registered inclusive rounds bound for an instance
	// with the given parameters; every plan the builder produces must
	// finish within it (the scenario matrix asserts this per cell).
	Bound func(p BoundParams) int
	// BoundName is the human-readable form of Bound, e.g. "n + r".
	BoundName string
}

// registry lists every algorithm, indexed by ID.
var registry = [numAlgorithms]Info{
	ConcurrentUpDown: {
		ID:            ConcurrentUpDown,
		Name:          "ConcurrentUpDown",
		Aliases:       []string{"cud"},
		Summary:       "the paper's Theorem 1 schedule: exactly n + r rounds",
		Deterministic: true, Schedulable: true, FaultExecutable: true,
		TreeBased: true, ImplicitBacked: true, ExactBound: true,
		Bound: func(p BoundParams) int {
			if p.N <= 1 {
				return 0
			}
			return p.N + p.Radius
		},
		BoundName: "n + r",
	},
	Simple: {
		ID:            Simple,
		Name:          "Simple",
		Summary:       "the Lemma 1 baseline: gather to the root, then pipelined broadcast",
		Deterministic: true, Schedulable: true, FaultExecutable: true,
		TreeBased: true, ExactBound: true,
		Bound: func(p BoundParams) int {
			if p.N <= 1 {
				return 0
			}
			return 2*p.N + p.Radius - 3
		},
		BoundName: "2n + r - 3",
	},
	Pipelined: {
		ID:            Pipelined,
		Name:          "Pipelined",
		Aliases:       []string{"pipelinedgossip", "flood"},
		Summary:       "concurrent pipelined tree floods (De Florio & Blondia), no gather phase",
		Deterministic: true, Schedulable: true, FaultExecutable: true,
		TreeBased: true,
		// Each flood travels at most the tree diameter (<= 2r) and label
		// arbitration delays a flood by at most one round per competing
		// message; the certified per-round progress guarantee caps the
		// schedule far below this in practice (the matrix records actuals).
		Bound: func(p BoundParams) int {
			if p.N <= 1 {
				return 0
			}
			return 2*p.N + 2*p.Radius
		},
		BoundName: "2n + 2r",
	},
	Algebraic: {
		ID:      Algebraic,
		Name:    "Algebraic",
		Aliases: []string{"algebraicgossip", "coded", "rlnc"},
		Summary: "Haeupler-style randomized GF(2) network-coded gossip; seeded, expected-rounds reporting",
		// Haeupler bounds algebraic gossip by O(n + diameter) with high
		// probability; the registered bound carries the constant the
		// seeded matrix runs must stay under.
		Bound: func(p BoundParams) int {
			if p.N <= 1 {
				return 0
			}
			return 8*(p.N+p.Diameter) + 64
		},
		BoundName: "8(n + D) + 64",
	},
	Weighted: {
		ID:            Weighted,
		Name:          "Weighted",
		Aliases:       []string{"weightedgossip"},
		Summary:       "Section 4 weighted gossiping via virtual-vertex chains (unit counts as a planner)",
		Deterministic: true, Schedulable: true, FaultExecutable: true,
		TreeBased: true, ExactBound: true,
		// Theorem 1 on the chain expansion: N total messages + expanded
		// radius; with unit counts this collapses to n + r.
		Bound: func(p BoundParams) int {
			if p.N <= 1 {
				return 0
			}
			return p.Messages + p.ExpandedRadius
		},
		BoundName: "N + R (expanded)",
	},
	Beep: {
		ID:            Beep,
		Name:          "Beep",
		Aliases:       []string{"radio", "collision"},
		Summary:       "collision-constrained greedy: transmissions reach all neighbours, two transmitters collide",
		Deterministic: true, Schedulable: true, FaultExecutable: true,
		// The greedy planner certifies at least one innovative delivery
		// per round, so n(n-1) rounds is the guaranteed worst case; actual
		// schedules sit near n + O(r) (the matrix records them).
		Bound: func(p BoundParams) int {
			if p.N <= 1 {
				return 0
			}
			return p.N * (p.N - 1)
		},
		BoundName: "n(n-1)",
	},
}

// Registry returns every registered algorithm in ID order. The slice is
// freshly allocated; entries are value copies, safe to modify.
func Registry() []Info {
	out := make([]Info, numAlgorithms)
	copy(out, registry[:])
	return out
}

// ByID returns the entry for id. It panics on an unregistered ID — the
// registry is the closed set of algorithms this build ships.
func ByID(id ID) Info {
	if id < 0 || id >= numAlgorithms {
		panic(fmt.Sprintf("algo: unregistered algorithm ID %d", int(id)))
	}
	return registry[id]
}

// Registered reports whether id names a registered algorithm.
func Registered(id ID) bool { return id >= 0 && id < numAlgorithms }

// Lookup resolves a case-insensitive name or alias to its entry.
func Lookup(name string) (Info, bool) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, info := range registry {
		if strings.ToLower(info.Name) == want {
			return info, true
		}
		for _, a := range info.Aliases {
			if a == want {
				return info, true
			}
		}
	}
	return Info{}, false
}

// Names returns the canonical lowercase name of every registered
// algorithm, sorted — the hint every "unknown algorithm" error carries, so
// it can never go stale as the portfolio grows.
func Names() []string {
	out := make([]string, 0, numAlgorithms)
	for _, info := range registry {
		out = append(out, strings.ToLower(info.Name))
	}
	sort.Strings(out)
	return out
}

// String names the algorithm: the registry entry's canonical name, or
// "Algorithm(v)" for values outside the registry.
func (id ID) String() string {
	if Registered(id) {
		return registry[id].Name
	}
	return fmt.Sprintf("Algorithm(%d)", int(id))
}
