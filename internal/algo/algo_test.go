package algo

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != int(numAlgorithms) {
		t.Fatalf("Registry returned %d entries, want %d", len(reg), int(numAlgorithms))
	}
	seenName := map[string]ID{}
	for i, info := range reg {
		if info.ID != ID(i) {
			t.Errorf("entry %d carries ID %d", i, int(info.ID))
		}
		if info.Name == "" {
			t.Errorf("entry %d has no name", i)
		}
		if info.Summary == "" {
			t.Errorf("%s has no summary", info.Name)
		}
		if info.Bound == nil || info.BoundName == "" {
			t.Errorf("%s has no rounds bound", info.Name)
		}
		if prev, dup := seenName[strings.ToLower(info.Name)]; dup {
			t.Errorf("%s collides with %v", info.Name, prev)
		}
		seenName[strings.ToLower(info.Name)] = info.ID
		if info.FaultExecutable && !info.Schedulable {
			t.Errorf("%s is FaultExecutable but not Schedulable", info.Name)
		}
		if info.ImplicitBacked && !info.Deterministic {
			t.Errorf("%s is ImplicitBacked but not Deterministic", info.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, info := range Registry() {
		for _, name := range append([]string{info.Name, strings.ToUpper(info.Name), " " + info.Name + " "}, info.Aliases...) {
			got, ok := Lookup(name)
			if !ok || got.ID != info.ID {
				t.Errorf("Lookup(%q) = (%v, %v), want %v", name, got.ID, ok, info.ID)
			}
		}
	}
	if _, ok := Lookup("quantum"); ok {
		t.Error("Lookup accepted an unregistered name")
	}
	if _, ok := Lookup(""); ok {
		t.Error("Lookup accepted the empty name (defaulting is the caller's job)")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != int(numAlgorithms) {
		t.Fatalf("Names returned %d entries, want %d", len(names), int(numAlgorithms))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not strictly sorted: %q >= %q", names[i-1], names[i])
		}
	}
	for _, n := range names {
		if _, ok := Lookup(n); !ok {
			t.Errorf("Names lists %q but Lookup rejects it", n)
		}
	}
}

func TestString(t *testing.T) {
	if got := ConcurrentUpDown.String(); got != "ConcurrentUpDown" {
		t.Errorf("ConcurrentUpDown.String() = %q", got)
	}
	if got := ID(99).String(); got != "Algorithm(99)" {
		t.Errorf("ID(99).String() = %q", got)
	}
}

func TestBounds(t *testing.T) {
	p := BoundParams{N: 64, Radius: 8, Diameter: 16, Messages: 64, ExpandedRadius: 8}
	cases := map[ID]int{
		ConcurrentUpDown: 72,
		Simple:           133,
		Pipelined:        144,
		Algebraic:        8*(64+16) + 64,
		Weighted:         72,
		Beep:             64 * 63,
	}
	for id, want := range cases {
		if got := ByID(id).Bound(p); got != want {
			t.Errorf("%v bound = %d, want %d", id, got, want)
		}
	}
	// Trivial networks bound to zero rounds everywhere.
	for _, info := range Registry() {
		if got := info.Bound(BoundParams{N: 1}); got != 0 {
			t.Errorf("%s bound at n=1 is %d, want 0", info.Name, got)
		}
	}
}

func TestByIDPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ByID(99) did not panic")
		}
	}()
	ByID(ID(99))
}
