package async

import (
	"math"
	"math/rand"
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

func schedulesFor(t *testing.T, g *graph.Graph) (cud, simple *schedule.Schedule) {
	t.Helper()
	tr, err := spantree.MinDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	builders := core.GossipOnTree(tr)
	return builders[core.ConcurrentUpDown]().Schedule, builders[core.Simple]().Schedule
}

func TestMakespanDeterministicNoJitter(t *testing.T) {
	cudS, simpleS := schedulesFor(t, graph.Grid(4, 4))
	rng := rand.New(rand.NewSource(1))
	model := UniformJitter{Base: 1, Jitter: 0}
	cud, err := Makespan(cudS, model, 0.5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every round costs exactly base + barrier.
	want := 1.5 * float64(cudS.Time())
	if math.Abs(cud.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %v, want %v", cud.Makespan, want)
	}
	simple, err := Makespan(simpleS, model, 0.5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if simple.Makespan <= cud.Makespan {
		t.Fatalf("Simple (%v) should cost more than CUD (%v) without jitter", simple.Makespan, cud.Makespan)
	}
	ratio := simple.Makespan / cud.Makespan
	wantRatio := float64(simpleS.Time()) / float64(cudS.Time())
	if math.Abs(ratio-wantRatio) > 1e-9 {
		t.Fatalf("ratio %v, want round ratio %v", ratio, wantRatio)
	}
}

func TestMakespanJitterIncreasesCost(t *testing.T) {
	cudS, _ := schedulesFor(t, graph.Star(24))
	rng := rand.New(rand.NewSource(2))
	flat, err := Makespan(cudS, UniformJitter{Base: 1, Jitter: 0}, 0, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	jittered, err := Makespan(cudS, UniformJitter{Base: 1, Jitter: 1}, 0, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if jittered.Makespan <= flat.Makespan {
		t.Fatalf("jitter did not increase makespan: %v vs %v", jittered.Makespan, flat.Makespan)
	}
	// Max of several uniforms concentrates near the top: per-round mean
	// should exceed base + half-jitter on multi-transmission rounds.
	if jittered.MeanRound <= 1.5 {
		t.Fatalf("mean round %v suspiciously low under jitter", jittered.MeanRound)
	}
}

func TestMakespanDegreeProportionalPenalisesFanout(t *testing.T) {
	cudS, _ := schedulesFor(t, graph.Star(16))
	rng := rand.New(rand.NewSource(3))
	cheap, err := Makespan(cudS, DegreeProportional{Base: 1, PerDest: 0}, 0, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Makespan(cudS, DegreeProportional{Base: 1, PerDest: 0.5}, 0, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if costly.Makespan <= cheap.Makespan {
		t.Fatalf("per-destination cost had no effect: %v vs %v", costly.Makespan, cheap.Makespan)
	}
}

func TestMakespanRejectsBadInput(t *testing.T) {
	s := schedule.New(2)
	rng := rand.New(rand.NewSource(4))
	if _, err := Makespan(s, nil, 0, 1, rng); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Makespan(s, UniformJitter{Base: 1}, 0, 0, rng); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Makespan(s, UniformJitter{Base: 1}, -1, 1, rng); err == nil {
		t.Error("negative barrier accepted")
	}
}

func TestMakespanEmptySchedule(t *testing.T) {
	s := schedule.New(3)
	res, err := Makespan(s, UniformJitter{Base: 1}, 1, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.Rounds != 0 {
		t.Fatalf("empty schedule has makespan %v over %d rounds", res.Makespan, res.Rounds)
	}
}
