// Package async estimates wall-clock makespan when a schedule executes on
// hardware with non-uniform link latencies. The paper's machines (the
// Meiko CS-2, wireless sensors) synchronise rounds with software barriers:
// a round cannot close until its slowest transmission lands, so the
// makespan is the sum over rounds of the slowest active link plus the
// barrier overhead. Under latency jitter, schedules with fewer rounds
// (ConcurrentUpDown's n + r) win proportionally over longer ones (Simple's
// 2n + r - 3) — and the gap widens with jitter because every extra round
// samples another max-of-k latency.
package async

import (
	"fmt"
	"math/rand"

	"multigossip/internal/schedule"
)

// LatencyModel draws per-transmission latencies. Implementations must be
// deterministic given their rng.
type LatencyModel interface {
	// Latency returns the time units transmission tx takes in round t.
	Latency(t int, tx schedule.Transmission, rng *rand.Rand) float64
}

// UniformJitter draws latencies uniformly from [Base, Base+Jitter].
type UniformJitter struct {
	Base   float64
	Jitter float64
}

// Latency implements LatencyModel.
func (u UniformJitter) Latency(_ int, _ schedule.Transmission, rng *rand.Rand) float64 {
	return u.Base + u.Jitter*rng.Float64()
}

// DegreeProportional models multicast cost growing with fanout (for
// networks whose multicast is implemented as a pipelined unicast tree):
// latency Base + PerDest * |To| + jitter.
type DegreeProportional struct {
	Base    float64
	PerDest float64
	Jitter  float64
}

// Latency implements LatencyModel.
func (d DegreeProportional) Latency(_ int, tx schedule.Transmission, rng *rand.Rand) float64 {
	return d.Base + d.PerDest*float64(len(tx.To)) + d.Jitter*rng.Float64()
}

// Result is a makespan estimate.
type Result struct {
	Makespan     float64 // total simulated time units
	Rounds       int     // schedule rounds (incl. idle rounds, which cost Barrier)
	MeanRound    float64 // Makespan / Rounds
	SlowestRound float64 // the single worst round
}

// Makespan simulates barrier-synchronised execution of s: each round costs
// the maximum latency among its transmissions (or zero for an idle round)
// plus the fixed barrier overhead. trials runs are averaged.
func Makespan(s *schedule.Schedule, model LatencyModel, barrier float64, trials int, rng *rand.Rand) (Result, error) {
	if model == nil {
		return Result{}, fmt.Errorf("async: nil latency model")
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("async: need at least one trial")
	}
	if barrier < 0 {
		return Result{}, fmt.Errorf("async: negative barrier cost")
	}
	var total, worst float64
	for trial := 0; trial < trials; trial++ {
		for t, round := range s.Rounds {
			slowest := 0.0
			for _, tx := range round {
				if l := model.Latency(t, tx, rng); l > slowest {
					slowest = l
				}
			}
			cost := slowest + barrier
			total += cost
			if cost > worst {
				worst = cost
			}
		}
	}
	mean := total / float64(trials)
	res := Result{Makespan: mean, Rounds: s.Time(), SlowestRound: worst}
	if s.Time() > 0 {
		res.MeanRound = mean / float64(s.Time())
	}
	return res, nil
}
