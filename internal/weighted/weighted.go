// Package weighted implements the weighted gossiping extension of
// Section 4: every processor v starts with count_v >= 1 messages and all
// messages must reach all processors. Following the paper, a processor
// with l messages is replaced by a chain of l virtual processors, the
// standard pipeline runs on the expanded network, and the splitting is then
// "mimicked": chain-internal transmissions collapse into no-ops, leaving a
// schedule in which every real processor still sends at most one message
// and receives at most one message per round.
package weighted

import (
	"fmt"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// Plan is the outcome of weighted gossiping on a network.
type Plan struct {
	// Schedule is the contracted schedule on the original n processors,
	// with NMsg = total message count; message m originates at MsgOwner[m].
	Schedule *schedule.Schedule
	// Expanded is the full ConcurrentUpDown schedule on the chain-expanded
	// network, kept for inspection; Schedule is its contraction.
	Expanded *schedule.Schedule
	// ExpandedGraph is the chain-expanded network.
	ExpandedGraph *graph.Graph
	// MsgOwner maps each message to the real processor owning it initially.
	MsgOwner []int
	// TotalMessages is the sum of all counts.
	TotalMessages int
	// ExpandedRadius is the radius of the expanded network; the expanded
	// schedule has total time TotalMessages + ExpandedRadius.
	ExpandedRadius int
	// Tree and Labeled are the expanded network's minimum-depth spanning
	// tree and its DFS labelling (identical to the original network's when
	// every count is 1; chain vertices appear beyond the real ids
	// otherwise). Sweep records the root-sweep work of that construction.
	Tree    *spantree.Tree
	Labeled *spantree.Labeled
	Sweep   graph.SweepStats
}

// InitialHolds returns the hold sets of the contracted instance: processor
// v holds exactly its own messages.
func (p *Plan) InitialHolds() []*schedule.Bitset {
	holds := make([]*schedule.Bitset, p.Schedule.N)
	for v := range holds {
		holds[v] = schedule.NewBitset(p.TotalMessages)
	}
	for m, v := range p.MsgOwner {
		holds[v].Set(m)
	}
	return holds
}

// Gossip solves weighted gossiping on connected network g where processor v
// initially holds counts[v] messages. It expands each processor into a
// chain, runs the paper's ConcurrentUpDown pipeline on the expansion
// (total time N + R for N total messages and expanded radius R), and
// contracts the schedule back to the real processors.
func Gossip(g *graph.Graph, counts []int) (*Plan, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("weighted: empty network")
	}
	if len(counts) != n {
		return nil, fmt.Errorf("weighted: %d counts for %d processors", len(counts), n)
	}
	total := 0
	for v, c := range counts {
		if c < 1 {
			return nil, fmt.Errorf("weighted: processor %d has count %d, need >= 1", v, c)
		}
		total += c
	}

	// Expansion: real processors keep ids 0..n-1; the extra chain vertices
	// of processor v are appended afterwards, each linked to its
	// predecessor in the chain. Message ids equal expanded vertex ids.
	expanded := graph.New(total)
	owner := make([]int, total)
	for v := 0; v < n; v++ {
		owner[v] = v
	}
	for _, e := range g.Edges() {
		expanded.AddEdge(e.U, e.V)
	}
	next := n
	for v := 0; v < n; v++ {
		prev := v
		for c := 1; c < counts[v]; c++ {
			expanded.AddEdge(prev, next)
			owner[next] = v
			prev = next
			next++
		}
	}

	res, err := core.Gossip(expanded, core.ConcurrentUpDown)
	if err != nil {
		return nil, fmt.Errorf("weighted: expanded pipeline: %w", err)
	}

	// Contraction: keep only transmissions from a real processor, filtered
	// to real destinations; everything chain-internal is mimicked (the real
	// processor already holds its whole message set).
	contracted := schedule.NewWithMessages(n, total)
	for t, round := range res.Schedule.Rounds {
		for _, tx := range round {
			if tx.From >= n {
				continue
			}
			var dests []int
			for _, d := range tx.To {
				if d < n {
					dests = append(dests, d)
				}
			}
			if len(dests) > 0 {
				contracted.AddSend(t, tx.Msg, tx.From, dests...)
			}
		}
	}
	// Drop trailing rounds that only served virtual chains.
	for len(contracted.Rounds) > 0 && len(contracted.Rounds[len(contracted.Rounds)-1]) == 0 {
		contracted.Rounds = contracted.Rounds[:len(contracted.Rounds)-1]
	}

	return &Plan{
		Schedule:       contracted,
		Expanded:       res.Schedule,
		ExpandedGraph:  expanded,
		MsgOwner:       owner,
		TotalMessages:  total,
		ExpandedRadius: res.Radius,
		Tree:           res.Tree,
		Labeled:        res.Labeled,
		Sweep:          res.Sweep,
	}, nil
}
