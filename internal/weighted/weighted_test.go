package weighted

import (
	"math/rand"
	"testing"

	"multigossip/internal/core"
	"multigossip/internal/graph"
	"multigossip/internal/online"
	"multigossip/internal/schedule"
	"multigossip/internal/spantree"
)

// checkPlan validates the contracted schedule on the original network with
// the weighted initial hold sets and requires full completion.
func checkPlan(t *testing.T, g *graph.Graph, p *Plan) *schedule.Result {
	t.Helper()
	res, err := schedule.Run(g, p.Schedule, schedule.Options{Initial: p.InitialHolds()})
	if err != nil {
		t.Fatalf("contracted schedule invalid: %v", err)
	}
	for v, h := range res.Holds {
		if !h.Full() {
			t.Fatalf("processor %d missing messages %v", v, h.Missing())
		}
	}
	return res
}

func TestUnitCountsMatchBasicGossip(t *testing.T) {
	// counts all 1: the contraction is the plain ConcurrentUpDown schedule.
	g := graph.Cycle(7)
	p, err := Gossip(g, []int{1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalMessages != 7 {
		t.Fatalf("TotalMessages = %d, want 7", p.TotalMessages)
	}
	if !p.Schedule.Equal(p.Expanded) {
		t.Fatal("unit-count contraction differs from expanded schedule")
	}
	checkPlan(t, g, p)
	if want := 7 + g.Radius(); p.Schedule.Time() != want {
		t.Fatalf("time %d, want %d", p.Schedule.Time(), want)
	}
}

func TestWeightedOnSmallNetworks(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		counts []int
	}{
		{"path", graph.Path(4), []int{2, 1, 3, 1}},
		{"star", graph.Star(5), []int{1, 4, 1, 2, 1}},
		{"cycle", graph.Cycle(5), []int{3, 3, 3, 3, 3}},
		{"petersen", graph.Petersen(), []int{1, 2, 1, 2, 1, 2, 1, 2, 1, 2}},
		{"single", graph.New(1), []int{5}},
	}
	for _, c := range cases {
		p, err := Gossip(c.g, c.counts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		total := 0
		for _, x := range c.counts {
			total += x
		}
		if p.TotalMessages != total {
			t.Fatalf("%s: total %d, want %d", c.name, p.TotalMessages, total)
		}
		if c.g.N() > 1 {
			checkPlan(t, c.g, p)
			// The expanded schedule obeys Theorem 1 on the expansion.
			if want := total + p.ExpandedRadius; p.Expanded.Time() != want {
				t.Fatalf("%s: expanded time %d, want %d", c.name, p.Expanded.Time(), want)
			}
			if p.Schedule.Time() > p.Expanded.Time() {
				t.Fatalf("%s: contraction longer than expansion", c.name)
			}
		}
		// Owner bookkeeping: counts[v] messages per processor.
		perOwner := make([]int, c.g.N())
		for _, v := range p.MsgOwner {
			perOwner[v]++
		}
		for v, want := range c.counts {
			if perOwner[v] != want {
				t.Fatalf("%s: processor %d owns %d messages, want %d", c.name, v, perOwner[v], want)
			}
		}
	}
}

func TestWeightedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 25; iter++ {
		n := 2 + rng.Intn(12)
		g := graph.RandomConnected(rng, n, 0.3)
		counts := make([]int, n)
		for v := range counts {
			counts[v] = 1 + rng.Intn(4)
		}
		p, err := Gossip(g, counts)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		checkPlan(t, g, p)
	}
}

func TestWeightedRejectsBadInput(t *testing.T) {
	if _, err := Gossip(graph.New(0), nil); err == nil {
		t.Error("accepted empty network")
	}
	if _, err := Gossip(graph.Path(3), []int{1, 1}); err == nil {
		t.Error("accepted wrong count length")
	}
	if _, err := Gossip(graph.Path(3), []int{1, 0, 1}); err == nil {
		t.Error("accepted zero count")
	}
}

func TestExpandedGraphShape(t *testing.T) {
	g := graph.Path(3)
	p, err := Gossip(g, []int{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 6 vertices: 0,1,2 real; 3,4 chained to 1; 5 chained to 2.
	eg := p.ExpandedGraph
	if eg.N() != 6 {
		t.Fatalf("expanded n = %d, want 6", eg.N())
	}
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 3, V: 4}, {U: 2, V: 5}}
	for _, e := range edges {
		if !eg.HasEdge(e.U, e.V) {
			t.Errorf("expanded graph missing %v", e)
		}
	}
	wantOwner := []int{0, 1, 2, 1, 1, 2}
	for m, v := range wantOwner {
		if p.MsgOwner[m] != v {
			t.Errorf("MsgOwner[%d] = %d, want %d", m, p.MsgOwner[m], v)
		}
	}
}

// TestWeightedOnlineEquivalence closes the loop on both Section 4
// extensions at once: the expanded network's schedule can be produced by
// the distributed (online) protocol — each virtual chain vertex running
// its own goroutine — and its contraction matches the offline plan.
func TestWeightedOnlineEquivalence(t *testing.T) {
	g := graph.Cycle(6)
	counts := []int{2, 1, 3, 1, 2, 1}
	plan, err := Gossip(g, counts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := spantree.MinDepth(plan.ExpandedGraph)
	if err != nil {
		t.Fatal(err)
	}
	l := spantree.Label(tr)
	got, err := online.Run(l, online.NewConcurrentUpDown(l), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := core.BuildConcurrentUpDown(l)
	got.Normalize()
	want.Normalize()
	if !got.Equal(want) {
		t.Fatal("online expanded run differs from offline")
	}
	// Contract the online run exactly as Gossip does and compare times.
	n := g.N()
	contracted := schedule.NewWithMessages(n, plan.TotalMessages)
	remapped := core.RemapToOriginal(got, l)
	for tt, round := range remapped.Rounds {
		for _, tx := range round {
			if tx.From >= n {
				continue
			}
			var dests []int
			for _, d := range tx.To {
				if d < n {
					dests = append(dests, d)
				}
			}
			if len(dests) > 0 {
				contracted.AddSend(tt, tx.Msg, tx.From, dests...)
			}
		}
	}
	for len(contracted.Rounds) > 0 && len(contracted.Rounds[len(contracted.Rounds)-1]) == 0 {
		contracted.Rounds = contracted.Rounds[:len(contracted.Rounds)-1]
	}
	contracted.Normalize()
	offline := plan.Schedule.Clone()
	offline.Normalize()
	if !contracted.Equal(offline) {
		t.Fatal("online contraction differs from offline contraction")
	}
}
