// Package cliutil holds the topology construction shared by the command
// line tools (cmd/gossip, cmd/verify): named generator families plus
// loading custom networks from edge-list files.
package cliutil

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"multigossip"
)

// Params carries every flag the topology builders understand.
type Params struct {
	N          int     // processor count for the sized families
	Rows, Cols int     // mesh / torus
	Dim        int     // hypercube dimension
	P          float64 // random network edge probability
	Radio      float64 // sensor field radio range
	Seed       int64   // random topology seed
	File       string  // edge list for "custom"
}

// Topologies lists the accepted -topology names.
const Topologies = "line|ring|star|complete|mesh|torus|hypercube|petersen|fig4|random|sensor|tree|custom"

// Build constructs the named topology. "custom" loads Params.File as an
// edge list; everything else uses the library's generators. Generator
// preconditions (e.g. a ring needs n >= 3, a hypercube dimension must be
// non-negative) surface as panics in the library; Build converts them to
// errors so command-line tools and the serving layer report invalid
// parameters as one-line failures instead of crash traces.
func Build(name string, p Params) (nw *multigossip.Network, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("invalid topology parameters: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(p.Seed))
	switch strings.ToLower(name) {
	case "line":
		return multigossip.Line(p.N), nil
	case "ring":
		return multigossip.Ring(p.N), nil
	case "star":
		return multigossip.Star(p.N), nil
	case "complete":
		return multigossip.FullyConnected(p.N), nil
	case "mesh":
		return multigossip.Mesh(p.Rows, p.Cols), nil
	case "torus":
		return multigossip.Torus(p.Rows, p.Cols), nil
	case "hypercube":
		return multigossip.Hypercube(p.Dim), nil
	case "petersen":
		return multigossip.PetersenGraph(), nil
	case "fig4":
		return multigossip.Fig4Network(), nil
	case "random":
		return multigossip.RandomNetwork(rng, p.N, p.P), nil
	case "sensor":
		return multigossip.SensorField(rng, p.N, p.Radio), nil
	case "tree":
		return multigossip.RandomTreeNetwork(rng, p.N), nil
	case "custom":
		if p.File == "" {
			return nil, fmt.Errorf("-topology custom requires -file")
		}
		f, err := os.Open(p.File)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return multigossip.LoadNetwork(f)
	default:
		return nil, fmt.Errorf("unknown topology %q (want %s)", name, Topologies)
	}
}

// Recover is the CLI-boundary panic handler: deferred first in a tool's
// main, it turns any panic that escapes the library into a one-line
// "tool: error" on stderr with exit status 1 — users of the command line
// get a diagnostic, not a goroutine dump.
func Recover(tool string) {
	if r := recover(); r != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, r)
		os.Exit(1)
	}
}
