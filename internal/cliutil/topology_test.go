package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildTopologies(t *testing.T) {
	params := Params{N: 7, Rows: 3, Cols: 4, Dim: 4, P: 0.3, Radio: 0.4, Seed: 1}
	cases := []struct {
		name string
		n    int
	}{
		{"line", 7}, {"ring", 7}, {"star", 7}, {"complete", 7},
		{"mesh", 12}, {"torus", 12}, {"hypercube", 16},
		{"petersen", 10}, {"fig4", 16}, {"random", 7}, {"sensor", 7}, {"tree", 7},
	}
	for _, c := range cases {
		nw, err := Build(c.name, params)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if nw.Processors() != c.n {
			t.Errorf("%s: processors = %d, want %d", c.name, nw.Processors(), c.n)
		}
		if !nw.Connected() {
			t.Errorf("%s: disconnected", c.name)
		}
	}
	if _, err := Build("nonsense", params); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := Build("RING", params); err != nil {
		t.Errorf("upper-case topology rejected: %v", err)
	}
}

// TestBuildInvalidParams drives every generator precondition that used to
// escape as a panic (crashing the CLIs with a goroutine dump) and requires
// a descriptive error instead.
func TestBuildInvalidParams(t *testing.T) {
	cases := []struct {
		topology string
		params   Params
	}{
		{"ring", Params{N: 2}},       // graph: cycle needs n >= 3
		{"ring", Params{N: -1}},      // negative vertex count
		{"line", Params{N: -5}},      // negative vertex count
		{"hypercube", Params{Dim: -1}},
		{"mesh", Params{Rows: -2, Cols: 3}},
		{"random", Params{N: -3, P: 0.5}},
	}
	for _, c := range cases {
		nw, err := Build(c.topology, c.params)
		if err == nil {
			t.Errorf("%s %+v: accepted, got network with %d processors", c.topology, c.params, nw.Processors())
			continue
		}
		if !strings.Contains(err.Error(), "invalid topology parameters") {
			t.Errorf("%s %+v: error %q does not name invalid parameters", c.topology, c.params, err)
		}
	}
}

func TestBuildCustom(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	nw, err := Build("custom", Params{File: path})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Processors() != 3 || nw.Links() != 2 {
		t.Fatalf("custom network wrong: n=%d m=%d", nw.Processors(), nw.Links())
	}
	if _, err := Build("custom", Params{}); err == nil {
		t.Error("custom without file accepted")
	}
	if _, err := Build("custom", Params{File: filepath.Join(dir, "missing")}); err == nil {
		t.Error("missing file accepted")
	}
}
