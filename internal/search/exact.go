// Package search finds optimal or near-optimal gossip schedules directly,
// without going through a spanning tree. The exact branch-and-bound solver
// certifies the paper's worked examples on small graphs — that gossiping on
// the Fig. 1 ring and the Fig. 3 network completes in n - 1 rounds under
// multicasting, that the telephone model cannot match that on N3, and that
// the odd line needs n + r - 1 rounds — while the randomized greedy
// heuristic scales to medium graphs such as the Petersen graph.
package search

import (
	"fmt"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// Model selects the communication model to search under.
type Model int

const (
	// Multicast is the paper's model: one message per sender per round,
	// delivered to any subset of neighbours; one receive per processor.
	Multicast Model = iota
	// Telephone restricts every transmission to a single destination.
	Telephone
)

// String returns the model name.
func (m Model) String() string {
	if m == Telephone {
		return "Telephone"
	}
	return "Multicast"
}

// maxExactN bounds the exact solver; hold sets are packed into uint32.
const maxExactN = 16

// ErrBudget is wrapped by errors reporting an exhausted search budget.
var ErrBudget = fmt.Errorf("search budget exhausted")

// Exact finds the minimum total communication time for gossiping on g under
// the given model by iterative-deepening branch and bound, together with a
// witness schedule. maxTime caps the deepening (a known upper bound such as
// n + r keeps the search finite); budget caps the number of explored search
// nodes (<= 0 means 5 million). If the optimum exceeds maxTime the return
// is (maxTime+1, nil, nil); if the budget runs out the error wraps
// ErrBudget and any conclusion drawn so far is void.
func Exact(g *graph.Graph, model Model, maxTime, budget int) (int, *schedule.Schedule, error) {
	n := g.N()
	if n == 0 || n > maxExactN {
		return 0, nil, fmt.Errorf("search: exact solver supports 1..%d vertices, got %d", maxExactN, n)
	}
	if !g.IsConnected() {
		return 0, nil, fmt.Errorf("search: graph is disconnected")
	}
	if n == 1 {
		return 0, schedule.New(1), nil
	}
	if budget <= 0 {
		budget = 5_000_000
	}
	e := &exactSearcher{g: g, model: model, budget: budget, memo: make(map[string]int)}
	full := uint32(1)<<uint(n) - 1
	init := make([]uint32, n)
	for v := range init {
		init[v] = 1 << uint(v)
	}
	for target := n - 1; target <= maxTime; target++ {
		e.moves = e.moves[:0]
		if e.dfs(init, full, target) {
			s := schedule.New(n)
			for t, round := range e.moves {
				for _, tx := range round {
					s.AddSend(t, tx.msg, tx.from, tx.to...)
				}
			}
			return target, s, nil
		}
		if e.budget <= 0 {
			return 0, nil, fmt.Errorf("search: exact(%v, target %d): %w", model, target, ErrBudget)
		}
	}
	return maxTime + 1, nil, nil
}

type exactTx struct {
	msg, from int
	to        []int
}

type exactSearcher struct {
	g      *graph.Graph
	model  Model
	budget int
	// memo[state] holds the largest roundsLeft already proved insufficient.
	memo  map[string]int
	moves [][]exactTx
}

func stateKey(holds []uint32) string {
	b := make([]byte, 4*len(holds))
	for i, h := range holds {
		b[4*i] = byte(h)
		b[4*i+1] = byte(h >> 8)
		b[4*i+2] = byte(h >> 16)
		b[4*i+3] = byte(h >> 24)
	}
	return string(b)
}

func popcount(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// dfs reports whether gossiping can finish within roundsLeft from holds,
// appending the witness rounds to e.moves on success.
func (e *exactSearcher) dfs(holds []uint32, full uint32, roundsLeft int) bool {
	done := true
	for _, h := range holds {
		if h != full {
			done = false
			break
		}
	}
	if done {
		return true
	}
	if roundsLeft == 0 || e.budget <= 0 {
		return false
	}
	// Receive-rate lower bound: a processor missing k messages needs k rounds.
	for _, h := range holds {
		if popcount(full&^h) > roundsLeft {
			return false
		}
	}
	key := stateKey(holds)
	if failed, ok := e.memo[key]; ok && failed >= roundsLeft {
		return false
	}
	e.budget--

	n := len(holds)
	senderMsg := make([]int, n) // -1 unassigned, else committed message
	for i := range senderMsg {
		senderMsg[i] = -1
	}
	recvFrom := make([]exactTx, 0, n) // per committed receiver: (msg, from, {v})

	var assign func(v int) bool
	assign = func(v int) bool {
		if e.budget <= 0 {
			return false
		}
		e.budget--
		if v == n {
			// Maximality: a skipped receiver with a compatible option means
			// this round is dominated by a strictly larger one that will be
			// enumerated separately — prune the duplicate work.
			for r := 0; r < n; r++ {
				if receiverTaken(recvFrom, r) {
					continue
				}
				if e.hasOption(holds, senderMsg, r) {
					return false
				}
			}
			if len(recvFrom) == 0 {
				return false
			}
			// Apply the round.
			next := append([]uint32(nil), holds...)
			round := make([]exactTx, 0, len(recvFrom))
			for _, rf := range recvFrom {
				next[rf.to[0]] |= 1 << uint(rf.msg)
				round = append(round, exactTx{rf.msg, rf.from, []int{rf.to[0]}})
			}
			e.moves = append(e.moves, mergeMulticasts(round))
			if e.dfs(next, full, roundsLeft-1) {
				return true
			}
			e.moves = e.moves[:len(e.moves)-1]
			return false
		}
		// Enumerate v's options: receive (u, m) or skip.
		for _, u := range e.g.Neighbors(v) {
			useful := holds[u] &^ holds[v]
			if useful == 0 {
				continue
			}
			if committed := senderMsg[u]; committed != -1 {
				// u already multicasts `committed`; under the telephone
				// model a sender has exactly one destination.
				if e.model == Telephone {
					continue
				}
				if useful&(1<<uint(committed)) == 0 {
					continue
				}
				recvFrom = append(recvFrom, exactTx{committed, u, []int{v}})
				if assign(v + 1) {
					return true
				}
				recvFrom = recvFrom[:len(recvFrom)-1]
				continue
			}
			for m := 0; m < n; m++ {
				if useful&(1<<uint(m)) == 0 {
					continue
				}
				senderMsg[u] = m
				recvFrom = append(recvFrom, exactTx{m, u, []int{v}})
				if assign(v + 1) {
					return true
				}
				recvFrom = recvFrom[:len(recvFrom)-1]
				senderMsg[u] = -1
			}
		}
		return assign(v + 1) // v receives nothing this round
	}
	if assign(0) {
		return true
	}
	if prev, ok := e.memo[key]; !ok || roundsLeft > prev {
		e.memo[key] = roundsLeft
	}
	return false
}

func receiverTaken(recvFrom []exactTx, v int) bool {
	for _, rf := range recvFrom {
		if rf.to[0] == v {
			return true
		}
	}
	return false
}

// hasOption reports whether receiver v could accept some message given the
// current sender commitments.
func (e *exactSearcher) hasOption(holds []uint32, senderMsg []int, v int) bool {
	for _, u := range e.g.Neighbors(v) {
		useful := holds[u] &^ holds[v]
		if useful == 0 {
			continue
		}
		committed := senderMsg[u]
		if committed == -1 {
			return true
		}
		if e.model == Multicast && useful&(1<<uint(committed)) != 0 {
			return true
		}
	}
	return false
}

// mergeMulticasts coalesces unicasts sharing (from, msg) into one multicast.
func mergeMulticasts(round []exactTx) []exactTx {
	merged := make([]exactTx, 0, len(round))
	index := make(map[[2]int]int)
	for _, tx := range round {
		k := [2]int{tx.from, tx.msg}
		if i, ok := index[k]; ok {
			merged[i].to = append(merged[i].to, tx.to...)
		} else {
			index[k] = len(merged)
			merged = append(merged, exactTx{tx.msg, tx.from, append([]int(nil), tx.to...)})
		}
	}
	return merged
}
