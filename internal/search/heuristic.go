package search

import (
	"fmt"
	"math/rand"
	"sort"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// Greedy builds a gossip schedule by a randomized round-by-round greedy
// under the given model and returns the best of restarts attempts (seeded
// by rng for reproducibility). Each round serves receivers in a random
// order; every receiver grabs the rarest message a neighbour can offer it,
// preferring to join an existing multicast so rounds stay dense. The result
// is always a valid schedule; its length is an upper bound on the optimum
// that, on small dense graphs, frequently matches it (experiment E2 uses
// this to exhibit an n - 1 round multicast schedule on the Petersen graph).
func Greedy(g *graph.Graph, model Model, rng *rand.Rand, restarts int) (*schedule.Schedule, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("search: empty graph")
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("search: graph is disconnected")
	}
	if restarts < 1 {
		restarts = 1
	}
	var best *schedule.Schedule
	for attempt := 0; attempt < restarts; attempt++ {
		s, err := greedyOnce(g, model, rng)
		if err != nil {
			return nil, err
		}
		if best == nil || s.Time() < best.Time() {
			best = s
		}
	}
	return best, nil
}

func greedyOnce(g *graph.Graph, model Model, rng *rand.Rand) (*schedule.Schedule, error) {
	n := g.N()
	holds := make([]*schedule.Bitset, n)
	for v := range holds {
		holds[v] = schedule.NewBitset(n)
		holds[v].Set(v)
	}
	missingTotal := n * (n - 1)
	s := schedule.New(n)
	order := rng.Perm(n)
	maxRounds := n*n + 4
	for t := 0; missingTotal > 0; t++ {
		if t >= maxRounds {
			return nil, fmt.Errorf("search: greedy did not finish within %d rounds", maxRounds)
		}
		// Message rarity: how many processors hold each message; rarer
		// messages are more urgent to spread.
		rarity := make([]int, n)
		for m := 0; m < n; m++ {
			for v := 0; v < n; v++ {
				if holds[v].Has(m) {
					rarity[m]++
				}
			}
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		senderMsg := make([]int, n)
		for i := range senderMsg {
			senderMsg[i] = -1
		}
		type pick struct{ msg, from, to int }
		var picks []pick
		for _, v := range order {
			if holds[v].Full() {
				continue
			}
			bestFrom, bestMsg, bestScore := -1, -1, -1
			for _, u := range g.Neighbors(v) {
				if committed := senderMsg[u]; committed != -1 {
					if model == Telephone {
						continue
					}
					if !holds[v].Has(committed) {
						// Joining an existing multicast costs no sender
						// slot; bias strongly toward it.
						score := 2*n - rarity[committed]
						if score > bestScore {
							bestFrom, bestMsg, bestScore = u, committed, score
						}
					}
					continue
				}
				for _, m := range holds[v].Missing() {
					if !holds[u].Has(m) {
						continue
					}
					score := n - rarity[m]
					if score > bestScore {
						bestFrom, bestMsg, bestScore = u, m, score
					}
				}
			}
			if bestFrom == -1 {
				continue
			}
			senderMsg[bestFrom] = bestMsg
			picks = append(picks, pick{bestMsg, bestFrom, v})
		}
		if len(picks) == 0 {
			return nil, fmt.Errorf("search: greedy stalled at round %d", t)
		}
		// Emit one multicast per sender.
		bySender := make(map[int][]int)
		for _, p := range picks {
			bySender[p.from] = append(bySender[p.from], p.to)
		}
		senders := make([]int, 0, len(bySender))
		for u := range bySender {
			senders = append(senders, u)
		}
		sort.Ints(senders)
		for _, u := range senders {
			s.AddSend(t, senderMsg[u], u, bySender[u]...)
		}
		for _, p := range picks {
			if !holds[p.to].Has(p.msg) {
				holds[p.to].Set(p.msg)
				missingTotal--
			}
		}
	}
	return s, nil
}

// LowerBound returns the best cheap lower bound on gossip time for g:
// max(n - 1, diameter). Every processor must receive n - 1 messages one at
// a time, and the message from u needs dist(u, v) rounds to reach v.
func LowerBound(g *graph.Graph) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	d := g.Diameter()
	if n-1 > d {
		return n - 1
	}
	return d
}
