package search

import (
	"errors"
	"math/rand"
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// exactCheck runs Exact and verifies the witness schedule.
func exactCheck(t *testing.T, g *graph.Graph, model Model, maxTime int) int {
	t.Helper()
	opt, s, err := Exact(g, model, maxTime, 0)
	if err != nil {
		t.Fatalf("%v/%v: %v", g, model, err)
	}
	if s == nil {
		return opt // optimum exceeds maxTime
	}
	if s.Time() != opt {
		t.Fatalf("%v/%v: witness time %d != reported %d", g, model, s.Time(), opt)
	}
	if _, err := schedule.CheckGossip(g, s); err != nil {
		t.Fatalf("%v/%v: witness invalid: %v", g, model, err)
	}
	if model == Telephone {
		for _, round := range s.Rounds {
			for _, tx := range round {
				if len(tx.To) != 1 {
					t.Fatalf("%v: telephone witness multicasts", g)
				}
			}
		}
	}
	return opt
}

func TestExactTinyInstances(t *testing.T) {
	// P2: one exchange round suffices under both models.
	if opt := exactCheck(t, graph.Path(2), Multicast, 3); opt != 1 {
		t.Errorf("P2 multicast optimum = %d, want 1", opt)
	}
	if opt := exactCheck(t, graph.Path(2), Telephone, 3); opt != 1 {
		t.Errorf("P2 telephone optimum = %d, want 1", opt)
	}
	// P3: the paper's Section 1 argument shows 2 rounds are impossible;
	// the optimum is n + r - 1 = 3.
	if opt := exactCheck(t, graph.Path(3), Multicast, 5); opt != 3 {
		t.Errorf("P3 multicast optimum = %d, want 3", opt)
	}
	// Triangle: n - 1 = 2.
	if opt := exactCheck(t, graph.Cycle(3), Multicast, 4); opt != 2 {
		t.Errorf("C3 optimum = %d, want 2", opt)
	}
}

func TestExactRingMatchesFig1(t *testing.T) {
	// E1 certification: the ring reaches the trivial lower bound n - 1.
	for _, n := range []int{4, 5} {
		if opt := exactCheck(t, graph.Cycle(n), Multicast, n+2); opt != n-1 {
			t.Errorf("C%d optimum = %d, want %d", n, opt, n-1)
		}
	}
}

func TestExactOddLineLowerBound(t *testing.T) {
	// E11 certification: the 5-vertex line needs exactly n + r - 1 = 6.
	if opt := exactCheck(t, graph.Path(5), Multicast, 8); opt != 6 {
		t.Errorf("P5 optimum = %d, want 6", opt)
	}
}

func TestExactStar(t *testing.T) {
	// Star on 4 vertices: hub receive bottleneck forces n + r - 1 = 4.
	if opt := exactCheck(t, graph.Star(4), Multicast, 6); opt != 4 {
		t.Errorf("Star4 optimum = %d, want 4", opt)
	}
}

// TestExactN3Separation is the E3 certification (DESIGN.md substitution 1):
// on K_{2,3} — non-Hamiltonian — gossiping needs exactly n - 1 = 4 rounds
// under multicasting but strictly more under the telephone model.
func TestExactN3Separation(t *testing.T) {
	g := graph.N3StandIn()
	multi := exactCheck(t, g, Multicast, 6)
	if multi != 4 {
		t.Errorf("N3 multicast optimum = %d, want 4", multi)
	}
	tel := exactCheck(t, g, Telephone, 7)
	if tel <= 4 {
		t.Errorf("N3 telephone optimum = %d, want > 4", tel)
	}
	t.Logf("N3 stand-in K_{2,3}: multicast=%d telephone=%d", multi, tel)
}

func TestExactBudgetExhaustion(t *testing.T) {
	_, _, err := Exact(graph.Cycle(6), Multicast, 10, 50)
	if err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget did not report ErrBudget: %v", err)
	}
}

func TestExactRejectsBadInput(t *testing.T) {
	if _, _, err := Exact(graph.New(0), Multicast, 3, 0); err == nil {
		t.Error("accepted empty graph")
	}
	if _, _, err := Exact(graph.Path(20), Multicast, 3, 0); err == nil {
		t.Error("accepted oversized graph")
	}
	d := graph.New(3)
	d.AddEdge(0, 1)
	if _, _, err := Exact(d, Multicast, 3, 0); err == nil {
		t.Error("accepted disconnected graph")
	}
}

func TestExactMaxTimeExceeded(t *testing.T) {
	// P3 needs 3 rounds; capping at 2 must report 3 with a nil schedule.
	opt, s, err := Exact(graph.Path(3), Multicast, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 || s != nil {
		t.Fatalf("opt=%d s=%v, want 3, nil", opt, s)
	}
}

func TestGreedyValidAcrossModels(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	graphs := []*graph.Graph{
		graph.Cycle(8), graph.Petersen(), graph.Grid(3, 3), graph.Star(8),
		graph.Complete(7), graph.RandomConnected(rng, 20, 0.2),
	}
	for _, g := range graphs {
		for _, model := range []Model{Multicast, Telephone} {
			s, err := Greedy(g, model, rng, 4)
			if err != nil {
				t.Fatalf("%v/%v: %v", g, model, err)
			}
			if _, err := schedule.CheckGossip(g, s); err != nil {
				t.Fatalf("%v/%v: %v", g, model, err)
			}
			if s.Time() < LowerBound(g) {
				t.Fatalf("%v/%v: time %d beats lower bound %d", g, model, s.Time(), LowerBound(g))
			}
			if model == Telephone {
				for _, round := range s.Rounds {
					for _, tx := range round {
						if len(tx.To) != 1 {
							t.Fatalf("%v: telephone greedy multicasts", g)
						}
					}
				}
			}
		}
	}
}

// TestGreedyPetersenNearOptimal is the E2 reproduction: the paper states
// gossiping on the Petersen graph completes in n - 1 = 9 rounds (even under
// the telephone model). The randomized greedy must find a multicast
// schedule at or very near that bound; hitting 9 certifies the claim.
func TestGreedyPetersenNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s, err := Greedy(graph.Petersen(), Multicast, rng, 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.CheckGossip(graph.Petersen(), s); err != nil {
		t.Fatal(err)
	}
	t.Logf("Petersen multicast greedy best: %d rounds (paper: 9)", s.Time())
	if s.Time() > 11 {
		t.Errorf("greedy found only %d rounds on Petersen, want <= 11", s.Time())
	}
}

func TestGreedyRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Greedy(graph.New(0), Multicast, rng, 1); err == nil {
		t.Error("accepted empty graph")
	}
	d := graph.New(2)
	if _, err := Greedy(d, Multicast, rng, 1); err == nil {
		t.Error("accepted disconnected graph")
	}
}

func TestLowerBound(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.New(1), 0},
		{graph.Path(2), 1},
		{graph.Path(9), 8}, // diameter 8 = n-1
		{graph.Path(3), 2}, // max(2, 2)
		{graph.Complete(5), 4},
		{graph.Cycle(10), 9}, // n-1 dominates diameter 5
	}
	for _, c := range cases {
		if got := LowerBound(c.g); got != c.want {
			t.Errorf("LowerBound(%v) = %d, want %d", c.g, got, c.want)
		}
	}
}

func TestModelString(t *testing.T) {
	if Multicast.String() != "Multicast" || Telephone.String() != "Telephone" {
		t.Fatal("model names wrong")
	}
}
