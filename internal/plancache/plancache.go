// Package plancache is the serving layer's content-addressed plan store: an
// LRU cache keyed by (network fingerprint, algorithm) with singleflight
// deduplication of concurrent misses.
//
// The cache exists because the paper's algorithm is offline: constructing a
// schedule costs an O(nm) sweep plus O(n²) rounds, while the finished plan
// is immutable and safe to share across concurrent executions. A serving
// process therefore pays construction once per distinct topology and
// answers every later request for the same edge set from memory. The
// singleflight group collapses a thundering herd — many concurrent requests
// for one uncached topology — into exactly one construction; every other
// caller blocks on that flight and shares its result (or its error).
//
// Values are opaque to the cache and MUST be immutable once stored: entries
// are handed out concurrently with no copying. Capacity is bounded both by
// entry count and by the caller-estimated total bytes; eviction is strict
// LRU over completed entries (in-flight constructions hold no cache slot).
package plancache

import (
	"container/list"
	"sync"

	"multigossip/internal/obs"
)

// Key identifies a cached plan: the network's content fingerprint (see
// graph.Fingerprint) plus the construction algorithm's code.
type Key struct {
	Fingerprint uint64
	Algo        int
}

// Sizer is implemented by cached values that can report their own resident
// size. When a built value implements Sizer, the cache charges
// SizeBytes() against the byte bound instead of the build function's
// estimate, so differently-encoded values (an O(n) implicit plan vs an
// O(n²) materialised schedule) are accounted honestly. The size is read
// once, at insert: a value that lazily grows afterwards (an implicit plan
// materialising its schedule on demand) occupies more than its accounted
// bytes until evicted.
type Sizer interface {
	SizeBytes() int64
}

// Source classifies how a Get was satisfied.
type Source int

const (
	// Miss: this caller ran the build function.
	Miss Source = iota
	// Hit: the value was already cached.
	Hit
	// Coalesced: another caller's in-flight build satisfied this request.
	Coalesced
	// Disk: the attached tier-2 store satisfied the miss, skipping the build.
	Disk
)

// String names the source in the lowercase form the serving API exposes.
func (s Source) String() string {
	switch s {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	case Disk:
		return "disk"
	}
	return "unknown"
}

// Tier2 is a second storage tier consulted between a memory miss and a
// build — in practice the disk-backed plan store, adapted to this cache's
// value type. Load returns the value, its resident size, and whether it was
// found; a corrupt or missing entry is simply "not found" (the tier handles
// quarantine itself). Store persists a freshly built value and must tolerate
// failure silently (a degraded tier reports through its own metrics).
// Both methods run outside the cache lock but inside the key's singleflight,
// so at most one Load/Store per key is in progress at a time.
type Tier2[V any] interface {
	Load(key Key) (V, int64, bool)
	Store(key Key, val V)
}

// Stats is a point-in-time snapshot of the cache counters. Hits + Misses +
// DiskHits + Coalesced equals the number of Get calls returned so far, and
// Entries equals successful Misses plus DiskHits minus Evictions — the
// reconciliation invariants the serving benchmark asserts. Misses counts
// only flights that actually ran the build function; a flight satisfied by
// the tier-2 store counts under DiskHits instead, which is what makes "warm
// start rebuilt nothing" checkable as Misses == 0 && DiskHits > 0.
type Stats struct {
	Hits, Misses, Coalesced, Evictions int64
	DiskHits                           int64
	Entries                            int
	Bytes                              int64
	Inflight                           int64
}

type entry[V any] struct {
	key   Key
	val   V
	bytes int64
	elem  *list.Element
}

// call is one in-flight construction; followers block on done and then
// read val/bytes/err (written before close, so the channel orders them).
type call[V any] struct {
	done  chan struct{}
	val   V
	bytes int64
	err   error
}

// Cache is a bounded LRU of immutable values with singleflight miss
// deduplication. Safe for concurrent use. The zero value is not usable;
// construct with New.
type Cache[V any] struct {
	mu         sync.Mutex
	entries    map[Key]*entry[V]
	lru        *list.List // front = most recently used; values are *entry[V]
	flight     map[Key]*call[V]
	tier2      Tier2[V]
	maxEntries int
	maxBytes   int64
	bytes      int64

	hits, misses, coalesced, evictions, diskHits *obs.Counter
	inflight, entriesG, bytesG                   *obs.Gauge
}

// New returns a cache bounded to at most maxEntries completed entries and
// maxBytes estimated total bytes; zero (or negative) disables that bound.
// Counters and gauges register in reg under plancache_* names; a nil reg
// uses a private registry so recording never needs a nil check.
func New[V any](maxEntries int, maxBytes int64, reg *obs.Registry) *Cache[V] {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Cache[V]{
		entries:    make(map[Key]*entry[V]),
		lru:        list.New(),
		flight:     make(map[Key]*call[V]),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		hits:       reg.Counter("plancache_hits_total"),
		misses:     reg.Counter("plancache_misses_total"),
		coalesced:  reg.Counter("plancache_coalesced_total"),
		evictions:  reg.Counter("plancache_evictions_total"),
		diskHits:   reg.Counter("plancache_disk_hits_total"),
		inflight:   reg.Gauge("plancache_inflight"),
		entriesG:   reg.Gauge("plancache_entries"),
		bytesG:     reg.Gauge("plancache_bytes"),
	}
}

// AttachTier2 wires a second storage tier under the LRU. From then on a
// memory miss first consults t2.Load (source Disk on success) and a built
// value is written through with t2.Store. Attach before serving traffic:
// the field itself is lock-protected, but flights already past their tier-2
// check will build as plain misses.
func (c *Cache[V]) AttachTier2(t2 Tier2[V]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tier2 = t2
}

// Get returns the value cached under key, or obtains it: first from the
// attached tier-2 store if any, then by running build. build returns the
// value and its estimated size in bytes (overridden by the value's own
// SizeBytes when it implements Sizer); it runs outside the cache lock, at
// most once per key however many callers race (followers of the same key
// share the winner's value and error). A build error is returned to every
// waiter of that flight and nothing is cached, so the next Get retries.
func (c *Cache[V]) Get(key Key, build func() (V, int64, error)) (V, Source, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits.Inc()
		c.mu.Unlock()
		return e.val, Hit, nil
	}
	if f, ok := c.flight[key]; ok {
		c.coalesced.Inc()
		c.mu.Unlock()
		<-f.done
		return f.val, Coalesced, f.err
	}
	f := &call[V]{done: make(chan struct{})}
	c.flight[key] = f
	tier2 := c.tier2
	c.inflight.Add(1)
	c.mu.Unlock()

	src := Miss
	if tier2 != nil {
		if val, bytes, ok := tier2.Load(key); ok {
			f.val, f.bytes, src = val, bytes, Disk
		}
	}
	if src == Miss {
		f.val, f.bytes, f.err = build()
	}
	if f.err == nil {
		if s, ok := any(f.val).(Sizer); ok {
			f.bytes = s.SizeBytes()
		}
	}

	c.mu.Lock()
	delete(c.flight, key)
	c.inflight.Add(-1)
	if src == Disk {
		c.diskHits.Inc()
	} else {
		c.misses.Inc()
	}
	if f.err == nil {
		c.insert(key, f.val, f.bytes)
	}
	c.mu.Unlock()
	close(f.done)
	// Write-through happens after followers are released: persistence is
	// the tier's concern, not part of any request's critical path beyond
	// this builder's own.
	if src == Miss && f.err == nil && tier2 != nil {
		tier2.Store(key, f.val)
	}
	return f.val, src, f.err
}

// Put stores a value the caller built outside the cache — the churn layer
// publishes patched plans this way, so a later Get for the patched
// topology's fingerprint hits instead of rebuilding. The value must be
// immutable, like every cached value; when it implements Sizer its own
// SizeBytes overrides the estimate. Put on an existing key refreshes its
// LRU position and keeps the incumbent (Get handed that value to other
// callers already; replacing it would fork the topology's identity).
func (c *Cache[V]) Put(key Key, val V, bytes int64) {
	if s, ok := any(val).(Sizer); ok {
		bytes = s.SizeBytes()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, val, bytes)
}

// Lookup returns the value cached under key without building on a miss.
// A found entry counts as a hit and refreshes its LRU position; a miss
// leaves every counter alone (no build was declined, merely not attempted).
func (c *Cache[V]) Lookup(key Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits.Inc()
		return e.val, true
	}
	var zero V
	return zero, false
}

// Peek reports whether key is cached without touching LRU order or
// counters.
func (c *Cache[V]) Peek(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// insert stores a completed value and evicts LRU entries while over either
// bound. The newly inserted entry is exempt: a single oversized value still
// caches (as the lone entry) rather than thrashing. Caller holds c.mu.
func (c *Cache[V]) insert(key Key, val V, bytes int64) {
	if e, ok := c.entries[key]; ok {
		// A racing flight for the same key can complete between this
		// flight's registration and its insert only if keys collide across
		// Get calls that missed simultaneously — the flight map prevents
		// that, but keep insert idempotent for safety.
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &entry[V]{key: key, val: val, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += bytes
	for c.lru.Len() > 1 &&
		((c.maxEntries > 0 && c.lru.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		back := c.lru.Back()
		victim := back.Value.(*entry[V])
		c.lru.Remove(back)
		delete(c.entries, victim.key)
		c.bytes -= victim.bytes
		c.evictions.Inc()
	}
	c.entriesG.Set(int64(c.lru.Len()))
	c.bytesG.Set(c.bytes)
}

// Stats snapshots the counters and current occupancy.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Coalesced: c.coalesced.Value(),
		Evictions: c.evictions.Value(),
		DiskHits:  c.diskHits.Value(),
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		Inflight:  c.inflight.Value(),
	}
}
