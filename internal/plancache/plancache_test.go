package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"multigossip/internal/obs"
)

func key(fp uint64) Key { return Key{Fingerprint: fp} }

// TestSingleflightDedup launches 100 concurrent Gets for one uncached key
// and requires exactly one build, with every caller seeing the same value
// and the counters reconciling: 1 miss, 99 coalesced, 0 hits.
func TestSingleflightDedup(t *testing.T) {
	c := New[int](0, 0, nil)
	var builds atomic.Int64
	gate := make(chan struct{})
	const callers = 100

	var wg sync.WaitGroup
	results := make([]int, callers)
	sources := make([]Source, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, src, err := c.Get(key(42), func() (int, int64, error) {
				builds.Add(1)
				return 7, 8, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
			sources[i] = src
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("%d builds for %d concurrent identical misses, want 1", got, callers)
	}
	var miss, coal int
	for i, v := range results {
		if v != 7 {
			t.Fatalf("caller %d got %d, want 7", i, v)
		}
		switch sources[i] {
		case Miss:
			miss++
		case Coalesced:
			coal++
		case Hit:
			// A caller arriving after the flight completed sees a hit;
			// with the gate this is rare but legal.
		}
	}
	if miss != 1 {
		t.Errorf("%d callers reported Miss, want 1", miss)
	}
	s := c.Stats()
	if s.Hits+s.Misses+s.Coalesced != callers {
		t.Errorf("hits %d + misses %d + coalesced %d != %d calls", s.Hits, s.Misses, s.Coalesced, callers)
	}
	if s.Misses != 1 || s.Entries != 1 || s.Bytes != 8 || s.Inflight != 0 {
		t.Errorf("stats %+v after dedup, want 1 miss, 1 entry, 8 bytes, 0 inflight", s)
	}
}

// TestLRUEvictionOrder fills a 3-entry cache, touches one entry, inserts a
// fourth, and requires the least-recently-used key to leave first.
func TestLRUEvictionOrder(t *testing.T) {
	c := New[int](3, 0, nil)
	get := func(fp uint64) {
		t.Helper()
		if _, _, err := c.Get(key(fp), func() (int, int64, error) { return int(fp), 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get(1)
	get(2)
	get(3)
	get(1) // refresh 1: LRU order is now 2, 3, 1
	get(4) // evicts 2
	if c.Peek(key(2)) {
		t.Error("key 2 survived eviction despite being least recently used")
	}
	for _, fp := range []uint64{1, 3, 4} {
		if !c.Peek(key(fp)) {
			t.Errorf("key %d evicted out of LRU order", fp)
		}
	}
	get(3) // refresh 3: order is 1, 4, 3
	get(5) // evicts 1
	if c.Peek(key(1)) {
		t.Error("key 1 survived second eviction")
	}
	if s := c.Stats(); s.Evictions != 2 || s.Entries != 3 {
		t.Errorf("stats %+v, want 2 evictions and 3 entries", s)
	}
}

// TestByteBound checks the byte cap evicts independently of the entry cap
// and that one oversized entry still caches.
func TestByteBound(t *testing.T) {
	c := New[string](0, 100, nil)
	put := func(fp uint64, bytes int64) {
		t.Helper()
		if _, _, err := c.Get(key(fp), func() (string, int64, error) { return "v", bytes, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put(1, 60)
	put(2, 60) // 120 > 100: evicts 1
	if c.Peek(key(1)) || !c.Peek(key(2)) {
		t.Errorf("byte bound evicted wrong entry: have1=%v have2=%v", c.Peek(key(1)), c.Peek(key(2)))
	}
	put(3, 500) // oversized: evicts 2, stays as the lone entry
	s := c.Stats()
	if !c.Peek(key(3)) || s.Entries != 1 || s.Bytes != 500 {
		t.Errorf("oversized entry not retained alone: %+v", s)
	}
}

// TestBuildErrorNotCached requires a failed construction to propagate its
// error and leave the key uncached so the next Get retries.
func TestBuildErrorNotCached(t *testing.T) {
	c := New[int](0, 0, nil)
	boom := errors.New("boom")
	if _, _, err := c.Get(key(9), func() (int, int64, error) { return 0, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if c.Peek(key(9)) {
		t.Fatal("failed build was cached")
	}
	v, src, err := c.Get(key(9), func() (int, int64, error) { return 5, 1, nil })
	if err != nil || v != 5 || src != Miss {
		t.Fatalf("retry after failed build: v=%d src=%v err=%v", v, src, err)
	}
}

// TestMetricsRegistry checks the counters land in a caller-supplied obs
// registry under the plancache_* names.
func TestMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	c := New[int](0, 0, reg)
	c.Get(key(1), func() (int, int64, error) { return 1, 4, nil })
	c.Get(key(1), func() (int, int64, error) { return 1, 4, nil })
	snap := reg.Snapshot()
	if snap.Counters["plancache_misses_total"] != 1 || snap.Counters["plancache_hits_total"] != 1 {
		t.Errorf("registry counters %v, want 1 miss and 1 hit", snap.Counters)
	}
	if snap.Gauges["plancache_entries"] != 1 || snap.Gauges["plancache_bytes"] != 4 {
		t.Errorf("registry gauges %v, want 1 entry and 4 bytes", snap.Gauges)
	}
}

// TestSourceString pins the wire names the serving API exposes.
func TestSourceString(t *testing.T) {
	for want, src := range map[string]Source{"hit": Hit, "miss": Miss, "coalesced": Coalesced, "unknown": Source(99)} {
		if got := src.String(); got != want {
			t.Errorf("Source(%d).String() = %q, want %q", int(src), got, want)
		}
	}
}

// TestConcurrentMixedKeys hammers the cache with distinct and shared keys
// under the race detector and checks the call-count reconciliation
// invariant at the end.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New[string](8, 0, nil)
	const callers, keys = 64, 16
	var wg sync.WaitGroup
	var calls atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				fp := uint64((i + j) % keys)
				v, _, err := c.Get(key(fp), func() (string, int64, error) {
					return fmt.Sprintf("v%d", fp), 16, nil
				})
				if err != nil || v != fmt.Sprintf("v%d", fp) {
					t.Errorf("key %d: v=%q err=%v", fp, v, err)
					return
				}
				calls.Add(1)
			}
		}(i)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses+s.Coalesced != calls.Load() {
		t.Errorf("counter sum %d != %d calls", s.Hits+s.Misses+s.Coalesced, calls.Load())
	}
	if s.Entries > 8 {
		t.Errorf("%d entries exceed the 8-entry bound", s.Entries)
	}
	if int(s.Misses)-int(s.Evictions) != s.Entries {
		t.Errorf("misses %d - evictions %d != entries %d", s.Misses, s.Evictions, s.Entries)
	}
}

// sized is a test value implementing Sizer, so Put/Get must charge its own
// SizeBytes over the caller's estimate.
type sized struct{ bytes int64 }

func (s sized) SizeBytes() int64 { return s.bytes }

// TestPutLookup covers the externally-built-value path the churn layer
// uses: Put inserts without a build, Lookup serves without building on a
// miss, a found entry counts as a hit and refreshes LRU order, and Put on
// an existing key keeps the incumbent value.
func TestPutLookup(t *testing.T) {
	c := New[string](2, 0, nil)

	if v, ok := c.Lookup(key(1)); ok || v != "" {
		t.Fatalf("Lookup on empty cache returned %q, %v", v, ok)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("a Lookup miss touched counters: %+v", st)
	}

	c.Put(key(1), "one", 10)
	v, ok := c.Lookup(key(1))
	if !ok || v != "one" {
		t.Fatalf("Lookup after Put returned %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("after Put+Lookup: %+v, want 1 hit, 1 entry, 10 bytes", st)
	}

	// Put on an existing key keeps the incumbent: Get handed that value out
	// already, so replacing it would fork the key's identity.
	c.Put(key(1), "uno", 10)
	if v, _ := c.Lookup(key(1)); v != "one" {
		t.Fatalf("Put replaced the incumbent: got %q, want %q", v, "one")
	}

	// Lookup refreshes LRU order: touch key 1, insert two more, and the
	// untouched key 2 must be the eviction victim.
	c.Put(key(2), "two", 10)
	c.Lookup(key(1))
	c.Put(key(3), "three", 10)
	if _, ok := c.Lookup(key(2)); ok {
		t.Fatal("key 2 survived eviction despite key 1's LRU refresh")
	}
	if _, ok := c.Lookup(key(1)); !ok {
		t.Fatal("key 1 evicted despite its LRU refresh")
	}
}

// TestPutSizerOverride requires Put to charge a Sizer value's own
// SizeBytes, not the caller's estimate.
func TestPutSizerOverride(t *testing.T) {
	c := New[sized](0, 0, nil)
	c.Put(key(9), sized{bytes: 640}, 1)
	if st := c.Stats(); st.Bytes != 640 {
		t.Fatalf("bytes %d, want the Sizer's 640 over the estimate 1", st.Bytes)
	}
}
