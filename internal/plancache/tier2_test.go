package plancache

import (
	"errors"
	"sync"
	"testing"
)

// mapTier2 is an in-memory Tier2 for testing the cache's load/store
// protocol without a filesystem.
type mapTier2 struct {
	mu     sync.Mutex
	data   map[Key]int
	loads  int
	stores int
}

func newMapTier2() *mapTier2 { return &mapTier2{data: map[Key]int{}} }

func (m *mapTier2) Load(k Key) (int, int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loads++
	v, ok := m.data[k]
	return v, 8, ok
}

func (m *mapTier2) Store(k Key, v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stores++
	m.data[k] = v
}

// TestTier2WriteThrough requires a built value to land in tier 2 and a
// fresh cache over the same tier to serve it as a Disk source with zero
// builds — the warm-start contract in miniature.
func TestTier2WriteThrough(t *testing.T) {
	t2 := newMapTier2()

	cold := New[int](0, 0, nil)
	cold.AttachTier2(t2)
	v, src, err := cold.Get(key(1), func() (int, int64, error) { return 11, 8, nil })
	if err != nil || v != 11 || src != Miss {
		t.Fatalf("cold get = %d, %v, %v", v, src, err)
	}
	if t2.stores != 1 {
		t.Fatalf("tier2 stores = %d after a build, want 1", t2.stores)
	}

	warm := New[int](0, 0, nil)
	warm.AttachTier2(t2)
	v, src, err = warm.Get(key(1), func() (int, int64, error) {
		t.Fatal("warm start ran the build function")
		return 0, 0, nil
	})
	if err != nil || v != 11 || src != Disk {
		t.Fatalf("warm get = %d, %v, %v; want 11, Disk", v, src, err)
	}
	s := warm.Stats()
	if s.Misses != 0 || s.DiskHits != 1 || s.Entries != 1 {
		t.Fatalf("warm stats %+v, want 0 misses, 1 disk hit, 1 entry", s)
	}
	if t2.stores != 1 {
		t.Fatalf("tier2 stores = %d after a disk hit, want still 1 (no re-store)", t2.stores)
	}

	// The disk hit populated tier 1, so the next Get is a plain memory hit
	// with no further tier-2 traffic.
	loadsBefore := t2.loads
	if _, src, _ := warm.Get(key(1), nil); src != Hit {
		t.Fatalf("second warm get source = %v, want Hit", src)
	}
	if t2.loads != loadsBefore {
		t.Fatalf("memory hit touched tier 2 (%d -> %d loads)", loadsBefore, t2.loads)
	}
}

// TestTier2MissBuilds requires a key absent from both tiers to build once
// and count as a Miss, and a build error to leave tier 2 unwritten.
func TestTier2MissBuilds(t *testing.T) {
	t2 := newMapTier2()
	c := New[int](0, 0, nil)
	c.AttachTier2(t2)

	boom := errors.New("boom")
	if _, _, err := c.Get(key(2), func() (int, int64, error) { return 0, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the build error", err)
	}
	if t2.stores != 0 {
		t.Fatal("a failed build must not write tier 2")
	}
	if s := c.Stats(); s.Misses != 1 || s.DiskHits != 0 {
		t.Fatalf("stats %+v, want 1 miss", s)
	}
}

// TestTier2Singleflight races many callers for a tier-2-resident key and
// requires exactly one tier-2 load: followers coalesce on the flight, they
// do not stampede the disk.
func TestTier2Singleflight(t *testing.T) {
	t2 := newMapTier2()
	t2.data[key(3)] = 33

	c := New[int](0, 0, nil)
	c.AttachTier2(t2)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 50
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, _, err := c.Get(key(3), func() (int, int64, error) {
				t.Error("build ran for a tier-2-resident key")
				return 0, 0, nil
			})
			if err != nil || v != 33 {
				t.Errorf("get = %d, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if t2.loads != 1 {
		t.Fatalf("tier2 loads = %d for %d racing callers, want 1", t2.loads, callers)
	}
	s := c.Stats()
	if s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("stats %+v, want exactly 1 disk hit and 0 misses", s)
	}
	if s.Hits+s.Misses+s.DiskHits+s.Coalesced != callers {
		t.Fatalf("counter reconciliation broke: %+v over %d calls", s, callers)
	}
}

// TestNoTier2Unchanged pins the pre-tier-2 behaviour: without AttachTier2
// the cache builds on miss exactly as before and DiskHits stays zero.
func TestNoTier2Unchanged(t *testing.T) {
	c := New[int](0, 0, nil)
	v, src, err := c.Get(key(4), func() (int, int64, error) { return 44, 8, nil })
	if err != nil || v != 44 || src != Miss {
		t.Fatalf("get = %d, %v, %v", v, src, err)
	}
	if s := c.Stats(); s.DiskHits != 0 {
		t.Fatalf("DiskHits = %d with no tier attached", s.DiskHits)
	}
}
