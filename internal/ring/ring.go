// Package ring implements the consistent-hash ring gossipd replicas use to
// route plan requests by network fingerprint. Each topology hashes to one
// owning replica, so a cluster pays each plan's construction cost once and
// each replica's cache and disk tier stay hot for its own key range.
//
// The ring is the textbook construction: every replica is hashed onto a
// uint64 circle at many virtual points, and a key is owned by the first
// replica point at or clockwise after the key's hash. Virtual points smooth
// the load split (with 128 points per replica the imbalance is a few
// percent), and consistency bounds the blast radius of membership changes:
// removing one replica of N moves only ~1/N of the keyspace, so a failover
// invalidates almost none of the survivors' caches.
//
// Determinism matters more than hash quality here: every replica must
// compute the same owner for the same key from nothing but the shared
// member list, with no coordination. Members are therefore sorted before
// placement and hashed with FNV-1a, which is stable across processes,
// architectures and Go versions (unlike maphash or map iteration order).
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual point count. 128 keeps the
// max/mean load ratio under ~1.1 for small clusters while the whole ring for
// 16 replicas still fits in a couple of pages.
const DefaultVirtualNodes = 128

type point struct {
	hash   uint64
	member int
}

// Ring maps uint64 keys onto a fixed member list. Immutable after New, and
// therefore safe for concurrent use.
type Ring struct {
	members []string
	points  []point
}

// New builds a ring over members with vnodes virtual points each (0 means
// DefaultVirtualNodes). Member order does not matter — the list is sorted
// internally so every process with the same set builds the same ring — but
// names must be unique and non-empty.
func New(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
	}
	r := &Ring{
		members: sorted,
		points:  make([]point, 0, len(sorted)*vnodes),
	}
	for i, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hashString(fmt.Sprintf("%s#%d", m, v)), i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// hashString is FNV-1a over the bytes of s pushed through a splitmix64
// finalizer: FNV alone clusters badly on near-identical strings (member
// names differing in one vnode digit), and clustered points defeat the
// balance virtual nodes exist to provide.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a stable, well-studied bijection that
// spreads any bias in its input across all 64 output bits.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Members returns the ring's member names in their canonical (sorted) order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key: the first virtual point at or after
// the key's position, wrapping at the top of the circle.
//
// The raw fingerprint is remixed through splitmix64 first. Fingerprints are
// already well-distributed, but remixing decouples ring placement from the
// fingerprint function so neither can be tuned against the other.
func (r *Ring) Owner(key uint64) string {
	return r.members[r.ownerIndex(key)]
}

// OwnerIndex is Owner returning the member's index in Members() order.
func (r *Ring) OwnerIndex(key uint64) int { return r.ownerIndex(key) }

func (r *Ring) ownerIndex(key uint64) int {
	target := mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= target })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}
