package ring

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	r, err := New([]string{"solo"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner(12345) != "solo" {
		t.Fatal("single-member ring must own everything")
	}
}

// TestDeterministicAcrossOrderings is the property the cluster depends on:
// every replica, given the same member set in any order, must agree on the
// owner of every key.
func TestDeterministicAcrossOrderings(t *testing.T) {
	a, err := New([]string{"http://h1:1", "http://h2:1", "http://h3:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"http://h3:1", "http://h1:1", "http://h2:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		k := rng.Uint64()
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %x: %q vs %q under reordered membership", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestBalance requires the virtual points to spread random keys within a
// reasonable factor of even: no replica above 1.4x or below 0.6x its share.
func TestBalance(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	r, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(7))
	const keys = 50000
	for i := 0; i < keys; i++ {
		counts[r.Owner(rng.Uint64())]++
	}
	mean := float64(keys) / float64(len(members))
	for _, m := range members {
		share := float64(counts[m]) / mean
		if share < 0.6 || share > 1.4 {
			t.Fatalf("member %q owns %.2fx its fair share (%d keys)", m, share, counts[m])
		}
	}
}

// TestConsistency removes one member and requires only the removed member's
// keys to move: the defining property that makes failover cheap for the
// survivors' caches.
func TestConsistency(t *testing.T) {
	full, err := New([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New([]string{"a", "b", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	moved := 0
	const keys = 20000
	for i := 0; i < keys; i++ {
		k := rng.Uint64()
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before == "c" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving members; consistent hashing moves none", moved)
	}
}

func TestMembersAndIndex(t *testing.T) {
	r, err := New([]string{"b", "a", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	ms := r.Members()
	if len(ms) != 3 || ms[0] != "a" || ms[1] != "b" || ms[2] != "c" {
		t.Fatalf("Members() = %v, want canonical sorted order", ms)
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		k := uint64(i) * 0x9E3779B97F4A7C15
		if ms[r.OwnerIndex(k)] != r.Owner(k) {
			t.Fatalf("OwnerIndex and Owner disagree for key %x", k)
		}
	}
}
