package baseline

import (
	"testing"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// TestPetersenNineRounds certifies the paper's strongest Fig. 2 claim:
// a 9-round (= n - 1, optimal) gossip schedule on the Petersen graph that
// uses only telephone-model unicasts.
func TestPetersenNineRounds(t *testing.T) {
	s, err := PetersenNineRounds()
	if err != nil {
		t.Fatal(err)
	}
	if s.Time() != 9 {
		t.Fatalf("time %d, want 9 = n - 1", s.Time())
	}
	res, err := schedule.Run(graph.Petersen(), s, schedule.Options{RequireUseful: true})
	if err != nil {
		t.Fatal(err)
	}
	for v, h := range res.Holds {
		if !h.Full() {
			t.Fatalf("vertex %d missing %v", v, h.Missing())
		}
	}
	// Strictly telephone: every transmission is a unicast, and the receive
	// bound is met with equality — every vertex receives in every round.
	recvPerRound := make(map[[2]int]bool)
	for time, round := range s.Rounds {
		for _, tx := range round {
			if len(tx.To) != 1 {
				t.Fatalf("round %d: multicast of size %d", time, len(tx.To))
			}
			recvPerRound[[2]int{time, tx.To[0]}] = true
		}
	}
	for time := 0; time < 9; time++ {
		for v := 0; v < 10; v++ {
			if !recvPerRound[[2]int{time, v}] {
				t.Fatalf("vertex %d idle at round %d — schedule not tight", v, time)
			}
		}
	}
}
