package baseline

import (
	"fmt"
	"sort"

	"multigossip/internal/graph"
	"multigossip/internal/schedule"
)

// CappedGossip builds a gossip schedule under a fanout-capped multicast
// model: each transmission reaches at most fanout destinations. fanout = 1
// is exactly the telephone model; fanout >= n-1 is the paper's unrestricted
// multicast. Sweeping the cap interpolates between the two models and
// shows where the multicast advantage saturates — in wireless terms, how
// much transmit power (coverage) a round actually needs.
//
// The builder is the same round-greedy as TelephoneGossip, extended so
// that up to fanout-1 further receivers may join an already-committed
// multicast.
func CappedGossip(g *graph.Graph, fanout, maxRounds int) (*schedule.Schedule, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty network")
	}
	if fanout < 1 {
		return nil, fmt.Errorf("baseline: fanout %d must be >= 1", fanout)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("baseline: network is disconnected")
	}
	if maxRounds <= 0 {
		maxRounds = n*n + 4
	}
	holds := make([]*schedule.Bitset, n)
	for v := range holds {
		holds[v] = schedule.NewBitset(n)
		holds[v].Set(v)
	}
	remaining := n * (n - 1)
	s := schedule.New(n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for t := 0; remaining > 0; t++ {
		if t >= maxRounds {
			return nil, fmt.Errorf("baseline: capped gossip (fanout %d) did not finish within %d rounds", fanout, maxRounds)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return holds[order[a]].Count() < holds[order[b]].Count()
		})
		senderMsg := make([]int, n) // -1 = not sending
		senderLoad := make([]int, n)
		for i := range senderMsg {
			senderMsg[i] = -1
		}
		type pick struct{ msg, from, to int }
		var picks []pick
		busyRecv := make([]bool, n)
		for _, v := range order {
			if busyRecv[v] || holds[v].Full() {
				continue
			}
			bestU, bestMsg, bestScore := -1, -1, -1
			for _, u := range g.Neighbors(v) {
				if committed := senderMsg[u]; committed != -1 {
					// Join an existing multicast while capacity remains.
					if senderLoad[u] >= fanout || holds[v].Has(committed) {
						continue
					}
					if score := 2 * n; score > bestScore {
						bestU, bestMsg, bestScore = u, committed, score
					}
					continue
				}
				for _, m := range holds[v].Missing() {
					if holds[u].Has(m) {
						if score := n; score > bestScore {
							bestU, bestMsg, bestScore = u, m, score
						}
						break
					}
				}
			}
			if bestU == -1 {
				continue
			}
			senderMsg[bestU] = bestMsg
			senderLoad[bestU]++
			busyRecv[v] = true
			picks = append(picks, pick{bestMsg, bestU, v})
		}
		if len(picks) == 0 {
			return nil, fmt.Errorf("baseline: capped gossip stalled at round %d", t)
		}
		bySender := make(map[int][]int)
		for _, p := range picks {
			bySender[p.from] = append(bySender[p.from], p.to)
		}
		senders := make([]int, 0, len(bySender))
		for u := range bySender {
			senders = append(senders, u)
		}
		sort.Ints(senders)
		for _, u := range senders {
			s.AddSend(t, senderMsg[u], u, bySender[u]...)
			for _, d := range bySender[u] {
				if !holds[d].Has(senderMsg[u]) {
					holds[d].Set(senderMsg[u])
					remaining--
				}
			}
		}
	}
	return s, nil
}
